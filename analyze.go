package sopr

import (
	"fmt"
	"strings"
)

// RuleAnalysis is the static analysis report of Section 6 of the paper:
// potential infinite loops (self-triggering rules and multi-rule cycles in
// the triggering graph) and potential ordering conflicts (unordered rule
// pairs whose relative execution order may affect the final state).
type RuleAnalysis struct {
	// Edges is the triggering graph: Edges[i] = [from, to] means from's
	// action may trigger to.
	Edges [][2]string
	// SelfLoops lists rules whose action may re-trigger themselves.
	SelfLoops []string
	// Cycles lists groups of two or more mutually-triggering rules.
	Cycles [][]string
	// Conflicts lists unordered pairs of possibly co-triggered rules with
	// interfering actions.
	Conflicts [][2]string
	// ExternalActions lists rules calling external procedures, whose
	// effects the static analysis cannot see.
	ExternalActions []string
}

// Warnings renders the report as human-readable warning lines (empty when
// the rule set is clean).
func (a *RuleAnalysis) Warnings() []string {
	var out []string
	for _, r := range a.SelfLoops {
		out = append(out, fmt.Sprintf("rule %q may trigger itself (potential infinite loop)", r))
	}
	for _, c := range a.Cycles {
		out = append(out, fmt.Sprintf("rules %s form a triggering cycle (potential infinite loop)", strings.Join(c, ", ")))
	}
	for _, p := range a.Conflicts {
		out = append(out, fmt.Sprintf("rules %q and %q may be triggered together with no declared priority; final state may depend on selection order", p[0], p[1]))
	}
	for _, r := range a.ExternalActions {
		out = append(out, fmt.Sprintf("rule %q calls an external procedure; its effects are invisible to static analysis", r))
	}
	return out
}

// AnalyzeRules runs static rule analysis over the currently defined rules.
func (db *DB) AnalyzeRules() *RuleAnalysis {
	rep := db.eng.Analyze()
	out := &RuleAnalysis{
		SelfLoops:       rep.SelfLoops,
		Cycles:          rep.Cycles,
		Conflicts:       rep.Conflicts,
		ExternalActions: rep.ExternalActions,
	}
	for _, e := range rep.Edges {
		out.Edges = append(out.Edges, [2]string{e.From, e.To})
	}
	return out
}
