package sopr

import (
	"strings"
	"testing"
)

func TestAnalyzeRules(t *testing.T) {
	db := openPaperDB(t)
	db.MustExec(`
		create rule mgr_cascade when deleted from emp
		then delete from emp where dept_no in
		     (select dept_no from dept where mgr_no in (select emp_no from deleted emp));
		     delete from dept where mgr_no in (select emp_no from deleted emp)
		end;
		create rule cut when updated emp.salary
		then update emp set dept_no = 1
		end;
		create rule raise when updated emp.salary
		then update emp set dept_no = 2
		end
	`)
	rep := db.AnalyzeRules()
	found := false
	for _, s := range rep.SelfLoops {
		if s == "mgr_cascade" {
			found = true
		}
	}
	if !found {
		t.Errorf("self-loop missed: %+v", rep)
	}
	if len(rep.Conflicts) == 0 {
		t.Errorf("cut/raise conflict missed: %+v", rep)
	}
	warnings := rep.Warnings()
	if len(warnings) == 0 {
		t.Fatal("no warnings rendered")
	}
	joined := strings.Join(warnings, "\n")
	if !strings.Contains(joined, "mgr_cascade") || !strings.Contains(joined, "selection order") {
		t.Errorf("warnings: %v", warnings)
	}

	// Declaring a priority removes the conflict warning.
	db.MustExec(`create rule priority cut before raise`)
	rep = db.AnalyzeRules()
	if len(rep.Conflicts) != 0 {
		t.Errorf("conflict persists after priority: %+v", rep.Conflicts)
	}
}

func TestAnalyzeCleanRules(t *testing.T) {
	db := openPaperDB(t)
	db.MustExec(`
		create rule cascade when deleted from dept
		then delete from emp where dept_no in (select dept_no from deleted dept)
		end
	`)
	rep := db.AnalyzeRules()
	if len(rep.SelfLoops) != 0 || len(rep.Cycles) != 0 || len(rep.Conflicts) != 0 {
		t.Errorf("clean rule set flagged: %+v", rep)
	}
	if len(rep.Warnings()) != 0 {
		t.Errorf("warnings for clean set: %v", rep.Warnings())
	}
}

func TestAnalyzeCycleAndExternal(t *testing.T) {
	db := Open()
	db.MustExec(`create table a (x int); create table b (x int)`)
	db.RegisterProcedure("p", func(*ProcContext) error { return nil })
	db.MustExec(`
		create rule ping when inserted into a then insert into b values (1) end;
		create rule pong when inserted into b then insert into a values (1) end;
		create rule ext when inserted into a then call p end
	`)
	rep := db.AnalyzeRules()
	if len(rep.Cycles) != 1 || len(rep.Cycles[0]) != 2 {
		t.Errorf("cycle: %+v", rep.Cycles)
	}
	if len(rep.ExternalActions) != 1 || rep.ExternalActions[0] != "ext" {
		t.Errorf("external: %+v", rep.ExternalActions)
	}
	if len(rep.Edges) == 0 {
		t.Error("edges missing")
	}
}
