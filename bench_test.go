package sopr_test

// Benchmark harness for the experiments of DESIGN.md §5 / EXPERIMENTS.md.
// The paper (SIGMOD 1990) reports no measurement tables — its claims about
// set-oriented rules are qualitative — so each benchmark quantifies one of
// those claims or exercises one design choice:
//
//	B1  BenchmarkSetOriented / BenchmarkInstanceOriented — per-transaction
//	    cost of set-oriented vs row-level rules as batch size k grows.
//	B2  BenchmarkEffectComposition — Definition 2.1 folding cost per op.
//	B3  BenchmarkRuleSelection — selection overhead vs number of rules.
//	B4  BenchmarkCascadeDepth — Example 4.1 recursive cascade vs depth.
//	B5  BenchmarkTransitionTables — materialization + aggregate condition
//	    evaluation vs update-set size.
//	B6  BenchmarkQueryEngine* — substrate sanity (scan/filter/join/agg).
//	B7  BenchmarkTransInfoMaintenance — Figure 1 incremental trans-info vs
//	    naive recomposition of the whole transition history.
//	B8  BenchmarkConstraintOverhead — DML cost with and without compiled
//	    integrity rules.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sopr"
	"sopr/internal/catalog"
	"sopr/internal/engine"
	"sopr/internal/exec"
	"sopr/internal/instance"
	"sopr/internal/rules"
	"sopr/internal/sqlast"
	"sopr/internal/sqlparse"
	"sopr/internal/storage"
	"sopr/internal/value"
)

// ---------------------------------------------------------------------------
// B1 — set-oriented vs instance-oriented rule execution
// ---------------------------------------------------------------------------

// insertScript builds a k-row INSERT operation block.
func insertScript(base, k int) string {
	var b strings.Builder
	b.WriteString("insert into t values ")
	for i := 0; i < k; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %d)", base+i, (base+i)%97)
	}
	return b.String()
}

var batchSizes = []int{1, 16, 256, 2048}

const b1Rule = `
	create rule log when inserted into t
	then insert into audit (select id, v from inserted t)
	end`

func BenchmarkSetOriented(b *testing.B) {
	for _, k := range batchSizes {
		b.Run(fmt.Sprintf("batch=%d", k), func(b *testing.B) {
			db := sopr.Open()
			db.MustExec(`create table t (id int, v int); create table audit (id int, v int)`)
			db.MustExec(b1Rule)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.MustExec(insertScript(i*k, k))
			}
			b.ReportMetric(float64(k), "rows/txn")
		})
	}
}

func BenchmarkInstanceOriented(b *testing.B) {
	for _, k := range batchSizes {
		b.Run(fmt.Sprintf("batch=%d", k), func(b *testing.B) {
			e := instance.New()
			if err := e.Exec(`create table t (id int, v int); create table audit (id int, v int)`); err != nil {
				b.Fatal(err)
			}
			if err := e.Exec(b1Rule); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.Exec(insertScript(i*k, k)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(k), "rows/txn")
		})
	}
}

// ---------------------------------------------------------------------------
// B2 — transition effect composition (Definition 2.1)
// ---------------------------------------------------------------------------

func BenchmarkEffectComposition(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("ops=%d", n), func(b *testing.B) {
			// Pre-generate a realistic op stream: 1/3 insert, 1/3 update,
			// 1/3 delete over a growing handle space.
			rng := rand.New(rand.NewSource(1))
			ops := make([]*exec.OpResult, 0, n)
			var live []storage.Handle
			next := storage.Handle(0)
			row := storage.Row{}
			for i := 0; i < n; i++ {
				switch {
				case len(live) == 0 || rng.Intn(3) == 0:
					next++
					live = append(live, next)
					ops = append(ops, &exec.OpResult{Table: "t", Inserted: []storage.Handle{next}})
				case rng.Intn(2) == 0:
					h := live[rng.Intn(len(live))]
					ops = append(ops, &exec.OpResult{Table: "t", Updated: []exec.UpdatedTuple{{Handle: h, OldRow: row, Cols: []int{0}}}})
				default:
					j := rng.Intn(len(live))
					h := live[j]
					live = append(live[:j], live[j+1:]...)
					ops = append(ops, &exec.OpResult{Table: "t", Deleted: []exec.DeletedTuple{{Handle: h, OldRow: row}}})
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eff := rules.NewEffect()
				for _, op := range ops {
					eff.AddOp(op)
				}
			}
			b.ReportMetric(float64(n), "ops/effect")
		})
	}
}

// ---------------------------------------------------------------------------
// B3 — rule selection overhead vs number of defined rules
// ---------------------------------------------------------------------------

func BenchmarkRuleSelection(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			db := sopr.Open()
			db.MustExec(`create table t (id int, v int); create table other (id int)`)
			// n-1 rules watch a table that never changes; one matches.
			for i := 0; i < n-1; i++ {
				db.MustExec(fmt.Sprintf(
					`create rule r%04d when inserted into other then delete from other end`, i))
			}
			db.MustExec(`create rule hit when inserted into t then delete from other end`)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.MustExec(fmt.Sprintf(`insert into t values (%d, 0)`, i))
			}
			b.ReportMetric(float64(n), "rules")
		})
	}
}

// ---------------------------------------------------------------------------
// B4 — Example 4.1 cascade vs management-tree depth
// ---------------------------------------------------------------------------

func BenchmarkCascadeDepth(b *testing.B) {
	for _, depth := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := sopr.Open()
				db.MustExec(`
					create table emp (name varchar, emp_no int, salary float, dept_no int);
					create table dept (dept_no int, mgr_no int)`)
				db.MustExec(`
					create rule mgr_cascade when deleted from emp
					then delete from emp where dept_no in
					     (select dept_no from dept where mgr_no in (select emp_no from deleted emp));
					     delete from dept where mgr_no in (select emp_no from deleted emp)
					end`)
				// Chain: dept d managed by the first employee of dept d-1.
				var emps, depts strings.Builder
				emps.WriteString("insert into emp values ('m1', 1, 0, 0)")
				depts.WriteString("insert into dept values ")
				for d := 1; d <= depth; d++ {
					fmt.Fprintf(&depts, "(%d, %d)", d, d)
					if d < depth {
						depts.WriteString(", ")
					}
					emps.WriteString(fmt.Sprintf(", ('m%d', %d, 0, %d)", d+1, d+1, d))
				}
				db.MustExec(emps.String())
				db.MustExec(depts.String())
				b.StartTimer()
				db.MustExec(`delete from emp where emp_no = 1`)
			}
			b.ReportMetric(float64(depth), "depth")
		})
	}
}

// ---------------------------------------------------------------------------
// B5 — transition table materialization vs update-set size
// ---------------------------------------------------------------------------

func BenchmarkTransitionTables(b *testing.B) {
	for _, k := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("updated=%d", k), func(b *testing.B) {
			db := sopr.Open()
			db.MustExec(`create table emp (name varchar, emp_no int, salary float, dept_no int)`)
			var ins strings.Builder
			ins.WriteString("insert into emp values ")
			for i := 0; i < k; i++ {
				if i > 0 {
					ins.WriteString(", ")
				}
				fmt.Fprintf(&ins, "('e%d', %d, %d, 1)", i, i, 1000+i)
			}
			db.MustExec(ins.String())
			// The condition forces materialization of both old and new
			// updated tables plus two aggregations (Example 3.2 pattern).
			db.MustExec(`
				create rule watch when updated emp.salary
				if (select sum(salary) from new updated emp.salary) <
				   (select sum(salary) from old updated emp.salary)
				then delete from emp where emp_no < 0
				end`)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.MustExec(`update emp set salary = salary + 1`)
			}
			b.ReportMetric(float64(k), "rows")
		})
	}
}

// ---------------------------------------------------------------------------
// B6 — query engine substrate
// ---------------------------------------------------------------------------

func queryDB(b *testing.B, rows int) *sopr.DB {
	b.Helper()
	db := sopr.Open()
	db.MustExec(`create table emp (name varchar, emp_no int, salary float, dept_no int);
		create table dept (dept_no int, mgr_no int)`)
	var ins strings.Builder
	for i := 0; i < rows; i++ {
		if i%500 == 0 {
			if i > 0 {
				db.MustExec(ins.String())
			}
			ins.Reset()
			ins.WriteString("insert into emp values ")
		} else {
			ins.WriteString(", ")
		}
		fmt.Fprintf(&ins, "('e%d', %d, %d, %d)", i, i, i%5000, i%16)
	}
	db.MustExec(ins.String())
	var dins strings.Builder
	dins.WriteString("insert into dept values ")
	for d := 0; d < 16; d++ {
		if d > 0 {
			dins.WriteString(", ")
		}
		fmt.Fprintf(&dins, "(%d, %d)", d, d)
	}
	db.MustExec(dins.String())
	return db
}

func BenchmarkQueryEngineScanFilter(b *testing.B) {
	db := queryDB(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.MustQuery(`select name from emp where salary > 2500 and dept_no = 3`)
	}
}

func BenchmarkQueryEngineJoin(b *testing.B) {
	db := queryDB(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.MustQuery(`select e.name from emp e, dept d where e.dept_no = d.dept_no and d.mgr_no = 3`)
	}
}

func BenchmarkQueryEngineAggregate(b *testing.B) {
	db := queryDB(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.MustQuery(`select dept_no, avg(salary), count(*) from emp group by dept_no having count(*) > 10`)
	}
}

// ---------------------------------------------------------------------------
// B7 — Figure 1 incremental trans-info vs naive recomposition
// ---------------------------------------------------------------------------

func makeTransitionStream(n int) []*rules.Effect {
	rng := rand.New(rand.NewSource(2))
	var live []storage.Handle
	next := storage.Handle(0)
	row := storage.Row{}
	effs := make([]*rules.Effect, n)
	for i := range effs {
		e := rules.NewEffect()
		for k := 0; k < 8; k++ {
			switch {
			case len(live) == 0 || rng.Intn(3) == 0:
				next++
				live = append(live, next)
				e.AddOp(&exec.OpResult{Table: "t", Inserted: []storage.Handle{next}})
			case rng.Intn(2) == 0:
				h := live[rng.Intn(len(live))]
				e.AddOp(&exec.OpResult{Table: "t", Updated: []exec.UpdatedTuple{{Handle: h, OldRow: row, Cols: []int{0}}}})
			default:
				j := rng.Intn(len(live))
				h := live[j]
				live = append(live[:j], live[j+1:]...)
				e.AddOp(&exec.OpResult{Table: "t", Deleted: []exec.DeletedTuple{{Handle: h, OldRow: row}}})
			}
		}
		effs[i] = e
	}
	return effs
}

func BenchmarkTransInfoMaintenance(b *testing.B) {
	for _, n := range []int{10, 100, 400} {
		stream := makeTransitionStream(n)
		b.Run(fmt.Sprintf("incremental/transitions=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Figure 1: one composite maintained by Apply after every
				// transition; the composite is read ("triggered?") each
				// step, as the algorithm does.
				acc := rules.NewEffect()
				for _, e := range stream {
					acc.Apply(e)
					_ = acc.IsEmpty()
				}
			}
		})
		b.Run(fmt.Sprintf("naive/transitions=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Naive alternative: keep the raw history; recompose the
				// whole prefix each time the composite is needed.
				for j := 1; j <= len(stream); j++ {
					acc := rules.NewEffect()
					for _, e := range stream[:j] {
						acc.Apply(e)
					}
					_ = acc.IsEmpty()
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// B8 — constraint enforcement overhead
// ---------------------------------------------------------------------------

func BenchmarkConstraintOverhead(b *testing.B) {
	setup := func(withConstraints bool) *sopr.DB {
		db := sopr.Open()
		db.MustExec(`
			create table dept (dept_no int, mgr_no int);
			create table emp (name varchar, emp_no int, salary float, dept_no int)`)
		db.MustExec(`insert into dept values (1,1), (2,2), (3,3), (4,4)`)
		if withConstraints {
			for _, c := range []sopr.Constraint{
				sopr.ForeignKey("fk", "emp", "dept_no", "dept", "dept_no", sopr.CascadeDelete),
				sopr.Check("pay", "emp", "salary >= 0"),
			} {
				if err := db.AddConstraint(c); err != nil {
					b.Fatal(err)
				}
			}
		}
		return db
	}
	b.Run("unconstrained", func(b *testing.B) {
		db := setup(false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db.MustExec(fmt.Sprintf(`insert into emp values ('e', %d, 100, %d)`, i, i%4+1))
		}
	})
	b.Run("constrained", func(b *testing.B) {
		db := setup(true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db.MustExec(fmt.Sprintf(`insert into emp values ('e', %d, 100, %d)`, i, i%4+1))
		}
	})
}

// ---------------------------------------------------------------------------
// B9 — ablation: hash equi-join fast path vs nested loops
// ---------------------------------------------------------------------------

func BenchmarkJoinAblation(b *testing.B) {
	for _, n := range []int{100, 1000, 4000} {
		st := storage.New()
		mkTable := func(name string) {
			tab, err := catalog.NewTable(name, []catalog.Column{
				{Name: "k", Type: value.KindInt},
				{Name: "v", Type: value.KindInt},
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := st.CreateTable(tab); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if _, err := st.Insert(name, storage.Row{value.NewInt(int64(i)), value.NewInt(int64(i % 7))}); err != nil {
					b.Fatal(err)
				}
			}
		}
		mkTable("l")
		mkTable("r")
		stmt, err := sqlparse.ParseStatement(`select count(*) from l, r where l.k = r.k and l.v > 2`)
		if err != nil {
			b.Fatal(err)
		}
		sel := stmt.(*sqlast.Select)
		for _, mode := range []string{"hash", "nested"} {
			b.Run(fmt.Sprintf("%s/rows=%d", mode, n), func(b *testing.B) {
				env := &exec.Env{Store: st, NoHashJoin: mode == "nested"}
				for i := 0; i < b.N; i++ {
					if _, err := env.Query(sel); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// B10 — ablation: per-rule trans-info filtering (Figure 1's "subset
// relevant to the particular rule")
// ---------------------------------------------------------------------------

func benchTransInfoFiltering(b *testing.B, full bool, spectators, k int) {
	eng := engine.New(engine.Config{FullTransInfo: full})
	exec1 := func(src string) {
		if _, err := eng.Exec(src); err != nil {
			b.Fatal(err)
		}
	}
	exec1(`create table t (id int, v int); create table sink (id int)`)
	// Spectator rules watch tables the workload never touches; without
	// filtering, every transition is cloned/applied into each of them.
	for i := 0; i < spectators; i++ {
		exec1(fmt.Sprintf(`create table w%04d (x int)`, i))
		exec1(fmt.Sprintf(`create rule spect%04d when inserted into w%04d then delete from w%04d end`, i, i, i))
	}
	// One real rule cascades a few times to force repeated modify-trans-info.
	exec1(`create rule chase when inserted into t
		then insert into sink (select id from inserted t where id % 2 = 0)
		end`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec1(insertScript(i*k, k))
	}
}

func BenchmarkTransInfoFiltering(b *testing.B) {
	for _, spectators := range []int{10, 100} {
		for _, k := range []int{64, 512} {
			b.Run(fmt.Sprintf("filtered/rules=%d/batch=%d", spectators, k), func(b *testing.B) {
				benchTransInfoFiltering(b, false, spectators, k)
			})
			b.Run(fmt.Sprintf("full/rules=%d/batch=%d", spectators, k), func(b *testing.B) {
				benchTransInfoFiltering(b, true, spectators, k)
			})
		}
	}
}

// ---------------------------------------------------------------------------
// B11 — prepared statements: parse-once vs parse-per-Exec
// ---------------------------------------------------------------------------

func BenchmarkPreparedVsParsed(b *testing.B) {
	setup := func() *sopr.DB {
		db := sopr.Open()
		db.MustExec(`create table t (id int, v int); create table audit (id int, v int)`)
		db.MustExec(b1Rule)
		return db
	}
	const script = `insert into t values (1, 1), (2, 2), (3, 3), (4, 4); delete from t`
	b.Run("parsed", func(b *testing.B) {
		db := setup()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db.MustExec(script)
		}
	})
	b.Run("prepared", func(b *testing.B) {
		db := setup()
		stmt, err := db.Prepare(script)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Exec(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
