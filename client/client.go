// Package client is the Go client for a soprd server: it speaks the wire
// protocol over TCP and returns the same Result/Rows types the in-process
// sopr API produces, so a remote engine is a drop-in for a local one.
//
//	c, err := client.Dial("localhost:5477")
//	if err != nil { ... }
//	defer c.Close()
//	res, err := c.Exec(`insert into emp values ('jane', 1, 60000, 0)`)
//	rows, err := c.Query(`select name from emp`)
//
// A Client is safe for concurrent use: requests are serialized on the one
// connection, mirroring the engine's single stream of operation blocks.
package client

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"sopr"
	"sopr/internal/wire"
)

// Error codes carried by RemoteError, mirroring the wire protocol's.
const (
	CodeParse    = wire.CodeParse
	CodeExec     = wire.CodeExec
	CodeBadFrame = wire.CodeBadFrame
	CodeTooLarge = wire.CodeTooLarge
	CodeShutdown = wire.CodeShutdown
	CodeInternal = wire.CodeInternal
	// CodeFrameTooLarge reports an oversized request frame the server
	// drained: the connection stays usable — split or shrink the request
	// and resend.
	CodeFrameTooLarge = wire.CodeFrameTooLarge

	CodeReadOnly   = wire.CodeReadOnly
	CodeNotPrimary = wire.CodeNotPrimary
	CodeLagging    = wire.CodeLagging
	CodeDiverged   = wire.CodeDiverged
	CodeFenced     = wire.CodeFenced
	CodeStaleEpoch = wire.CodeStaleEpoch
)

// RemoteError is a failure reported by the server. Line is the 1-based line
// within the submitted script for CodeParse errors, 0 otherwise. Epoch is
// the fencing epoch for CodeFenced and the node's epoch for
// CodeStaleEpoch, 0 otherwise.
type RemoteError struct {
	Code    string
	Message string
	Line    int
	Epoch   uint64
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote %s error: %s", e.Code, e.Message)
}

// ConnError is a transport-level failure: the dial, send, or receive died,
// as opposed to the server answering with an error. After a ConnError from
// a request the connection is unusable — the caller should Close and
// re-Dial; after a RemoteError it remains usable.
type ConnError struct {
	Op  string // what failed: "dial", "send exec", "recv query", ...
	Err error
}

func (e *ConnError) Error() string { return fmt.Sprintf("client: %s: %v", e.Op, e.Err) }

// Unwrap exposes the underlying network error to errors.Is/As.
func (e *ConnError) Unwrap() error { return e.Err }

// IsConn reports whether err is a transport-level failure (as opposed to a
// server-reported RemoteError).
func IsConn(err error) bool {
	var ce *ConnError
	return errors.As(err, &ce)
}

// ServerStats are the server front-end's counters (see Stats).
type ServerStats struct {
	Accepted    int64 // connections accepted
	Active      int64 // connections currently open
	Execs       int64 // Exec requests served
	BatchExecs  int64 // ExecBatch requests served
	Queries     int64 // Query requests served
	Dumps       int64 // Dump requests served
	StatsReqs   int64 // Stats requests served
	Pings       int64 // Ping requests served
	Errors      int64 // error responses sent
	BadFrames   int64 // framing errors seen
	InFlight    int64 // requests being processed right now
	DrainedReqs int64 // requests completed during shutdown drain
}

// ReplStats describes a node's replication state (see Stats.Repl); the
// fields mirror the wire protocol's ReplStats.
type ReplStats struct {
	Role             string // "primary" or "replica"
	LSN              uint64 // own position: durable LSN (primary), applied LSN (replica)
	PrimaryLSN       uint64 // replica's last view of the primary's LSN
	Lag              int64  // PrimaryLSN - LSN on a replica
	Connected        bool   // replica's stream to the primary is up
	Promoted         bool   // node was promoted from replica to writable
	Followers        int    // connected stream sessions on a primary
	MinFollowerLSN   uint64 // lowest acked LSN across followers (retention horizon)
	Epoch            uint64 // node's promotion epoch (0 before any failover)
	Durable          bool   // node persists its state in its own WAL
	Fenced           bool   // node observed a higher epoch and refuses writes
	Leader           string // upstream address a replica streams from
	SyncFollowers    int    // configured sync-commit ack quorum (0 = async)
	SyncTimeouts     int64  // commits that degraded to async on timeout
	Resets           int64  // reset-and-rebootstrap cycles on a replica
	DiscardedRecords int64  // records dropped on divergence resets
}

// Stats bundles the remote engine's counters with the server's own.
type Stats struct {
	Engine sopr.Stats
	Server ServerStats
	// Repl is the node's replication state; nil on a server that neither
	// ships nor follows a WAL stream.
	Repl *ReplStats
}

// Option configures a Client at Dial.
type Option func(*Client)

// WithMaxFrame overrides the frame-size cap (default wire.DefaultMaxFrame).
// It must not exceed the server's, or large requests will be cut off.
func WithMaxFrame(n int) Option { return func(c *Client) { c.maxFrame = n } }

// WithTimeout bounds each request round trip (default 2m; the server may
// disconnect idle clients on its own schedule regardless).
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.timeout = d } }

// WithLogf routes client-side event lines (cluster failover decisions,
// endpoint state changes) to f. Nil (the default) discards them.
func WithLogf(f func(format string, args ...any)) Option {
	return func(c *Client) { c.logf = f }
}

// WithDialRetry retries a failed dial up to n more times, sleeping backoff
// before the first retry and doubling it each attempt (capped at 30x, with
// up to 50% random jitter added so restarting fleets do not reconnect in
// lockstep). Only transient failures are retried: an unresolvable or
// malformed address fails immediately.
func WithDialRetry(n int, backoff time.Duration) Option {
	return func(c *Client) {
		c.dialRetries = n
		c.dialBackoff = backoff
	}
}

// Client is a connection to a soprd server.
type Client struct {
	mu       sync.Mutex
	conn     net.Conn
	maxFrame int
	timeout  time.Duration
	logf     func(format string, args ...any)

	dialRetries int
	dialBackoff time.Duration
}

// Dial connects to a soprd server at addr (host:port).
func Dial(addr string, opts ...Option) (*Client, error) {
	c := &Client{maxFrame: wire.DefaultMaxFrame, timeout: 2 * time.Minute, dialBackoff: 100 * time.Millisecond}
	for _, o := range opts {
		o(c)
	}
	backoff := c.dialBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	maxBackoff := 30 * backoff
	var err error
	for attempt := 0; ; attempt++ {
		var conn net.Conn
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			c.conn = conn
			return c, nil
		}
		if attempt >= c.dialRetries || !retryableDial(err) {
			break
		}
		sleep := backoff + time.Duration(rand.Int63n(int64(backoff)/2+1))
		time.Sleep(sleep)
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
	return nil, &ConnError{Op: "dial", Err: err}
}

// retryableDial distinguishes transient dial failures (refused, timeout,
// unreachable — the server may just not be up yet) from permanent ones (a
// malformed address or a name that does not resolve).
func retryableDial(err error) bool {
	var ae *net.AddrError
	if errors.As(err, &ae) {
		return false
	}
	var de *net.DNSError
	if errors.As(err, &de) {
		return de.IsTemporary || de.IsTimeout
	}
	return true
}

// Close terminates the connection. Requests in other goroutines fail.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and decodes its response into out (whose type
// must match wantType's payload; nil out for payload-less responses).
// Transport failures come back as *ConnError, server-reported failures as
// *RemoteError.
func (c *Client) roundTrip(reqType byte, req any, wantType byte, out any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		// A deadline that cannot be set means the connection is already
		// closed or broken; without one a dead peer could block us forever.
		return &ConnError{Op: "deadline " + wire.TypeName(reqType), Err: err}
	}
	if err := wire.WriteMessage(c.conn, reqType, req, c.maxFrame); err != nil {
		if errors.Is(err, wire.ErrFrameTooLarge) {
			// Nothing touched the wire; the connection is still usable.
			return fmt.Errorf("client: send %s: %w", wire.TypeName(reqType), err)
		}
		return &ConnError{Op: "send " + wire.TypeName(reqType), Err: err}
	}
	typ, payload, err := wire.ReadFrame(c.conn, c.maxFrame)
	if err != nil {
		return &ConnError{Op: "recv " + wire.TypeName(reqType), Err: err}
	}
	switch typ {
	case wantType:
		// A payload-less response (an old-style promote ack) decodes into
		// nothing; out keeps its zero value.
		if out == nil || len(payload) == 0 {
			return nil
		}
		return wire.Unmarshal(payload, out)
	case wire.MsgError:
		var er wire.ErrorResponse
		if err := wire.Unmarshal(payload, &er); err != nil {
			return err
		}
		return &RemoteError{Code: er.Code, Message: er.Message, Line: er.Line, Epoch: er.Epoch}
	default:
		return fmt.Errorf("client: unexpected %s response to %s",
			wire.TypeName(typ), wire.TypeName(reqType))
	}
}

// Exec runs a script on the server as the next operation blocks in its
// stream, exactly like sopr.DB.Exec runs it locally.
func (c *Client) Exec(src string) (*sopr.Result, error) {
	return c.ExecAt(src, 0)
}

// ExecAt is Exec carrying the caller's cluster epoch. A server at a newer
// epoch refuses with CodeStaleEpoch (the caller must re-probe the
// cluster); a server at an older one learns of the epoch and fences
// itself — the write answers CodeFenced instead of landing on a zombie
// primary's dead history. Epoch 0 claims nothing.
func (c *Client) ExecAt(src string, epoch uint64) (*sopr.Result, error) {
	var resp wire.ExecResponse
	if err := c.roundTrip(wire.MsgExec, wire.ExecRequest{Src: src, Epoch: epoch}, wire.MsgExecResult, &resp); err != nil {
		return nil, err
	}
	return decodeExecResponse(resp)
}

// ExecBatch runs a list of data-manipulation statements on the server as
// ONE operation block: one wire frame, one engine pass, one commit record,
// one (shared) fsync — exactly like sopr.DB.ExecBatch runs it locally.
// Definitions are rejected; rules process the block's net effect once, as
// they would for the same statements in one script.
func (c *Client) ExecBatch(stmts []string) (*sopr.Result, error) {
	return c.ExecBatchAt(stmts, 0)
}

// ExecBatchAt is ExecBatch carrying the caller's cluster epoch (see
// ExecAt for the epoch-gate semantics).
func (c *Client) ExecBatchAt(stmts []string, epoch uint64) (*sopr.Result, error) {
	var resp wire.ExecResponse
	req := wire.ExecBatchRequest{Stmts: stmts, Epoch: epoch}
	if err := c.roundTrip(wire.MsgExecBatch, req, wire.MsgExecBatchResult, &resp); err != nil {
		return nil, err
	}
	return decodeExecResponse(resp)
}

func decodeExecResponse(resp wire.ExecResponse) (*sopr.Result, error) {
	res := &sopr.Result{
		RolledBack: resp.RolledBack, RollbackRule: resp.RollbackRule,
		LSN: resp.LSN, Epoch: resp.Epoch, Synced: resp.Synced,
	}
	for _, f := range resp.Firings {
		res.Firings = append(res.Firings, sopr.Firing{Rule: f.Rule, Effect: f.Effect})
	}
	for _, r := range resp.Results {
		rows, err := decodeRows(r)
		if err != nil {
			return nil, err
		}
		res.Results = append(res.Results, rows)
	}
	return res, nil
}

// Query evaluates a single SELECT on the server, outside any transaction.
func (c *Client) Query(src string) (*sopr.Rows, error) {
	return c.QueryAt(src, 0)
}

// QueryAt is Query with a read-your-writes floor: a replica holds the
// read until it has applied minLSN (a token from Result.LSN), answering
// CodeLagging if it cannot in time. minLSN 0 reads current state; a
// primary ignores the floor (it is the source of truth).
func (c *Client) QueryAt(src string, minLSN uint64) (*sopr.Rows, error) {
	var resp wire.Rows
	req := wire.QueryRequest{Src: src, MinLSN: minLSN}
	if err := c.roundTrip(wire.MsgQuery, req, wire.MsgQueryResult, &resp); err != nil {
		return nil, err
	}
	return decodeRows(resp)
}

// Dump fetches a SQL script recreating the server's database.
func (c *Client) Dump() (string, error) {
	var resp wire.DumpResponse
	if err := c.roundTrip(wire.MsgDump, nil, wire.MsgDumpResult, &resp); err != nil {
		return "", err
	}
	return resp.Script, nil
}

// Stats fetches the server's engine and front-end counters.
func (c *Client) Stats() (*Stats, error) {
	var resp wire.StatsResponse
	if err := c.roundTrip(wire.MsgStats, nil, wire.MsgStatsResult, &resp); err != nil {
		return nil, err
	}
	return &Stats{
		Engine: sopr.Stats{
			Committed:           resp.Engine.Committed,
			RolledBack:          resp.Engine.RolledBack,
			ExternalTransitions: resp.Engine.ExternalTransitions,
			RuleConsiderations:  resp.Engine.RuleConsiderations,
			RuleFirings:         resp.Engine.RuleFirings,
			IndexLookups:        resp.Engine.IndexLookups,
			HeapScans:           resp.Engine.HeapScans,
			WALAppends:          resp.Engine.WALAppends,
			WALBytes:            resp.Engine.WALBytes,
			RecoveredRecords:    resp.Engine.RecoveredRecords,
			Checkpoints:         resp.Engine.Checkpoints,
			GroupCommits:        resp.Engine.GroupCommits,
			GroupedTxns:         resp.Engine.GroupedTxns,
			TxnsPerSync:         txnsPerSync(resp.Engine.GroupedTxns, resp.Engine.GroupCommits),
			PlannedQueries:      resp.Engine.PlannedQueries,
			PlanProbeFallbacks:  resp.Engine.PlanProbeFallbacks,
		},
		Server: ServerStats(resp.Server),
		Repl:   replStats(resp.Repl),
	}, nil
}

func txnsPerSync(grouped, commits int64) float64 {
	if commits == 0 {
		return 0
	}
	return float64(grouped) / float64(commits)
}

func replStats(rs *wire.ReplStats) *ReplStats {
	if rs == nil {
		return nil
	}
	out := ReplStats(*rs)
	return &out
}

// Ping checks the server is alive and answering.
func (c *Client) Ping() error {
	return c.roundTrip(wire.MsgPing, nil, wire.MsgPong, nil)
}

// Promote asks a replica to detach from its primary and accept writes in
// whatever epoch the node opens. It fails with a RemoteError on a node
// that cannot be promoted. Clients normally never call this directly —
// Cluster failover does.
func (c *Client) Promote() error {
	_, _, err := c.PromoteTo(0)
	return err
}

// PromoteTo is Promote with an explicit target epoch: the node opens
// max(epoch, its highest seen + 1), and reports the epoch actually opened
// together with its durable LSN. Epoch 0 lets the node pick.
func (c *Client) PromoteTo(epoch uint64) (openedEpoch, lsn uint64, err error) {
	var resp wire.ReplPromotedResponse
	var req any
	if epoch > 0 {
		req = wire.ReplPromoteRequest{Epoch: epoch}
	}
	if err := c.roundTrip(wire.MsgReplPromote, req, wire.MsgReplPromoted, &resp); err != nil {
		return 0, 0, err
	}
	return resp.Epoch, resp.LSN, nil
}

// Follow points the node at a leader for the given epoch: a replica
// re-points its stream and resumes from its applied LSN; a promoted node
// or old primary demotes itself into the leader's follower, truncating
// any unshipped suffix. The epoch must be current or it fails with
// CodeStaleEpoch. Cluster failover calls this on the new leader's
// siblings and, once reachable again, on the deposed primary.
func (c *Client) Follow(leader string, epoch uint64) error {
	req := wire.ReplFollowRequest{Leader: leader, Epoch: epoch}
	return c.roundTrip(wire.MsgReplFollow, req, wire.MsgReplFollowed, nil)
}

// IsRemote reports whether err is a server-reported failure with the given
// code ("" matches any RemoteError).
func IsRemote(err error, code string) bool {
	var re *RemoteError
	return errors.As(err, &re) && (code == "" || re.Code == code)
}

func decodeRows(r wire.Rows) (*sopr.Rows, error) {
	cols, data, err := r.Decode()
	if err != nil {
		return nil, err
	}
	return sopr.NewRows(cols, data), nil
}
