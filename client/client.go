// Package client is the Go client for a soprd server: it speaks the wire
// protocol over TCP and returns the same Result/Rows types the in-process
// sopr API produces, so a remote engine is a drop-in for a local one.
//
//	c, err := client.Dial("localhost:5477")
//	if err != nil { ... }
//	defer c.Close()
//	res, err := c.Exec(`insert into emp values ('jane', 1, 60000, 0)`)
//	rows, err := c.Query(`select name from emp`)
//
// A Client is safe for concurrent use: requests are serialized on the one
// connection, mirroring the engine's single stream of operation blocks.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"sopr"
	"sopr/internal/wire"
)

// Error codes carried by RemoteError, mirroring the wire protocol's.
const (
	CodeParse    = wire.CodeParse
	CodeExec     = wire.CodeExec
	CodeBadFrame = wire.CodeBadFrame
	CodeTooLarge = wire.CodeTooLarge
	CodeShutdown = wire.CodeShutdown
	CodeInternal = wire.CodeInternal
)

// RemoteError is a failure reported by the server. Line is the 1-based line
// within the submitted script for CodeParse errors, 0 otherwise.
type RemoteError struct {
	Code    string
	Message string
	Line    int
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote %s error: %s", e.Code, e.Message)
}

// ServerStats are the server front-end's counters (see Stats).
type ServerStats struct {
	Accepted    int64 // connections accepted
	Active      int64 // connections currently open
	Execs       int64 // Exec requests served
	Queries     int64 // Query requests served
	Dumps       int64 // Dump requests served
	StatsReqs   int64 // Stats requests served
	Pings       int64 // Ping requests served
	Errors      int64 // error responses sent
	BadFrames   int64 // framing errors seen
	InFlight    int64 // requests being processed right now
	DrainedReqs int64 // requests completed during shutdown drain
}

// Stats bundles the remote engine's counters with the server's own.
type Stats struct {
	Engine sopr.Stats
	Server ServerStats
}

// Option configures a Client at Dial.
type Option func(*Client)

// WithMaxFrame overrides the frame-size cap (default wire.DefaultMaxFrame).
// It must not exceed the server's, or large requests will be cut off.
func WithMaxFrame(n int) Option { return func(c *Client) { c.maxFrame = n } }

// WithTimeout bounds each request round trip (default 2m; the server may
// disconnect idle clients on its own schedule regardless).
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.timeout = d } }

// Client is a connection to a soprd server.
type Client struct {
	mu       sync.Mutex
	conn     net.Conn
	maxFrame int
	timeout  time.Duration
}

// Dial connects to a soprd server at addr (host:port).
func Dial(addr string, opts ...Option) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	c := &Client{conn: conn, maxFrame: wire.DefaultMaxFrame, timeout: 2 * time.Minute}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Close terminates the connection. Requests in other goroutines fail.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and decodes its response into out (whose type
// must match wantType's payload; nil out for payload-less responses).
func (c *Client) roundTrip(reqType byte, req any, wantType byte, out any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.conn.SetDeadline(time.Now().Add(c.timeout))
	if err := wire.WriteMessage(c.conn, reqType, req, c.maxFrame); err != nil {
		return fmt.Errorf("client: send %s: %w", wire.TypeName(reqType), err)
	}
	typ, payload, err := wire.ReadFrame(c.conn, c.maxFrame)
	if err != nil {
		return fmt.Errorf("client: %s: %w", wire.TypeName(reqType), err)
	}
	switch typ {
	case wantType:
		if out == nil {
			return nil
		}
		return wire.Unmarshal(payload, out)
	case wire.MsgError:
		var er wire.ErrorResponse
		if err := wire.Unmarshal(payload, &er); err != nil {
			return err
		}
		return &RemoteError{Code: er.Code, Message: er.Message, Line: er.Line}
	default:
		return fmt.Errorf("client: unexpected %s response to %s",
			wire.TypeName(typ), wire.TypeName(reqType))
	}
}

// Exec runs a script on the server as the next operation blocks in its
// stream, exactly like sopr.DB.Exec runs it locally.
func (c *Client) Exec(src string) (*sopr.Result, error) {
	var resp wire.ExecResponse
	if err := c.roundTrip(wire.MsgExec, wire.ExecRequest{Src: src}, wire.MsgExecResult, &resp); err != nil {
		return nil, err
	}
	res := &sopr.Result{RolledBack: resp.RolledBack, RollbackRule: resp.RollbackRule}
	for _, f := range resp.Firings {
		res.Firings = append(res.Firings, sopr.Firing{Rule: f.Rule, Effect: f.Effect})
	}
	for _, r := range resp.Results {
		rows, err := decodeRows(r)
		if err != nil {
			return nil, err
		}
		res.Results = append(res.Results, rows)
	}
	return res, nil
}

// Query evaluates a single SELECT on the server, outside any transaction.
func (c *Client) Query(src string) (*sopr.Rows, error) {
	var resp wire.Rows
	if err := c.roundTrip(wire.MsgQuery, wire.QueryRequest{Src: src}, wire.MsgQueryResult, &resp); err != nil {
		return nil, err
	}
	return decodeRows(resp)
}

// Dump fetches a SQL script recreating the server's database.
func (c *Client) Dump() (string, error) {
	var resp wire.DumpResponse
	if err := c.roundTrip(wire.MsgDump, nil, wire.MsgDumpResult, &resp); err != nil {
		return "", err
	}
	return resp.Script, nil
}

// Stats fetches the server's engine and front-end counters.
func (c *Client) Stats() (*Stats, error) {
	var resp wire.StatsResponse
	if err := c.roundTrip(wire.MsgStats, nil, wire.MsgStatsResult, &resp); err != nil {
		return nil, err
	}
	return &Stats{
		Engine: sopr.Stats{
			Committed:           resp.Engine.Committed,
			RolledBack:          resp.Engine.RolledBack,
			ExternalTransitions: resp.Engine.ExternalTransitions,
			RuleConsiderations:  resp.Engine.RuleConsiderations,
			RuleFirings:         resp.Engine.RuleFirings,
			IndexLookups:        resp.Engine.IndexLookups,
			HeapScans:           resp.Engine.HeapScans,
		},
		Server: ServerStats(resp.Server),
	}, nil
}

// Ping checks the server is alive and answering.
func (c *Client) Ping() error {
	return c.roundTrip(wire.MsgPing, nil, wire.MsgPong, nil)
}

// IsRemote reports whether err is a server-reported failure with the given
// code ("" matches any RemoteError).
func IsRemote(err error, code string) bool {
	var re *RemoteError
	return errors.As(err, &re) && (code == "" || re.Code == code)
}

func decodeRows(r wire.Rows) (*sopr.Rows, error) {
	cols, data, err := r.Decode()
	if err != nil {
		return nil, err
	}
	return sopr.NewRows(cols, data), nil
}
