package client_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"sopr"
	"sopr/client"
	"sopr/internal/server"
)

func startServer(t *testing.T, db *sopr.DB) string {
	t.Helper()
	srv := server.New(sopr.Synchronized(db), server.Config{})
	ln, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ln.Addr().String()
}

func TestDialFailure(t *testing.T) {
	c, err := client.Dial("127.0.0.1:1")
	if err == nil {
		c.Close()
		t.Fatal("Dial to a closed port succeeded")
	}
	if !client.IsConn(err) {
		t.Fatalf("dial failure is not a ConnError: %v", err)
	}
}

// TestDialRetry: the server comes up while the client is already dialing;
// WithDialRetry must ride out the refused attempts and connect.
func TestDialRetry(t *testing.T) {
	// Reserve a port, then free it so the first dial attempts get refused.
	ln, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	db := sopr.Open()
	db.MustExec(`create table t (id int)`)
	srv := server.New(sopr.Synchronized(db), server.Config{})
	go func() {
		time.Sleep(200 * time.Millisecond)
		ln, err := server.Listen(addr)
		if err != nil {
			return // the test's dial loop will fail and report
		}
		srv.Serve(ln)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	c, err := client.Dial(addr, client.WithDialRetry(20, 50*time.Millisecond))
	if err != nil {
		t.Fatalf("Dial with retry never connected: %v", err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping after retried dial: %v", err)
	}

	// A malformed address is permanent: no retries, immediate failure.
	start := time.Now()
	if c2, err := client.Dial("not a host:port at all", client.WithDialRetry(10, time.Second)); err == nil {
		c2.Close()
		t.Fatal("Dial accepted a malformed address")
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("permanent dial failure was retried")
	}
}

// TestSharedClientConcurrency hammers ONE client from many goroutines; the
// client must serialize its requests on the single connection (run with
// -race).
func TestSharedClientConcurrency(t *testing.T) {
	db := sopr.Open()
	db.MustExec(`create table t (id int)`)
	addr := startServer(t, db)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers = 8
	const per = 20
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := c.Exec(fmt.Sprintf(`insert into t values (%d)`, w*per+i)); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	rows, err := c.Query(`select count(*) from t`)
	if err != nil {
		t.Fatal(err)
	}
	if n := rows.Data[0][0].(int64); n != workers*per {
		t.Errorf("count = %d, want %d", n, workers*per)
	}
}

func TestRemoteErrorShape(t *testing.T) {
	db := sopr.Open()
	addr := startServer(t, db)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Query(`select * from nosuch`)
	if !client.IsRemote(err, client.CodeExec) || !client.IsRemote(err, "") {
		t.Fatalf("err = %v, want exec RemoteError", err)
	}
	if client.IsRemote(err, client.CodeParse) {
		t.Error("exec error matched the parse code")
	}
	if !strings.Contains(err.Error(), "remote exec error") {
		t.Errorf("message: %q", err.Error())
	}
	if client.IsRemote(fmt.Errorf("local"), "") {
		t.Error("plain error matched IsRemote")
	}
}

func TestClientMaxFrameGuard(t *testing.T) {
	db := sopr.Open()
	db.MustExec(`create table t (a int)`)
	addr := startServer(t, db)
	c, err := client.Dial(addr, client.WithMaxFrame(256), client.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A script bigger than the client's own cap is refused before sending.
	big := "insert into t values " + strings.Repeat("(1), ", 200) + "(1)"
	if _, err := c.Exec(big); err == nil {
		t.Fatal("oversized request was sent")
	}
	// The connection is still clean for small requests.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after refused send: %v", err)
	}
}
