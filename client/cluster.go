// Cluster: client-side read/write routing over one primary and its read
// replicas. Writes go to the primary; reads fan out round-robin across
// replicas (falling back to the primary), each carrying the
// read-your-writes LSN token from the cluster's last write so a replica
// never answers with state older than the caller's own writes.
//
// Failover is epoch-fenced: when the primary dies mid-write the cluster
// promotes the best reachable replica — highest applied LSN, durable
// (-data) nodes winning ties, lowest address as the deterministic final
// tie-break — into the next epoch, and every write from then on carries
// that epoch. A durable winner ships WAL itself, so the cluster re-points
// the surviving siblings at it (Follow) and they resume from their
// applied LSN; only a non-durable winner orphans them into the sticky
// "stale" state. A deposed primary that comes back is discovered by the
// next probe and demoted under the current leader, truncating whatever
// suffix it accepted on the losing side of the partition.
package client

import (
	"errors"
	"fmt"
	"sync"

	"sopr"
)

// ErrNoEndpoints reports that no cluster endpoint could serve the request.
var ErrNoEndpoints = errors.New("client: no reachable cluster endpoint")

// ErrNoPrimary reports that no endpoint accepts writes and failover could
// not promote one.
var ErrNoPrimary = errors.New("client: no writable endpoint in cluster")

// endpoint is one cluster member: its address, a lazily-(re)dialed
// connection, and what the last stats probe said about it.
type endpoint struct {
	addr    string
	c       *Client // nil when down / not yet dialed
	role    string  // "primary", "replica", "stale", or "" before the first probe
	lsn     uint64  // position from the last probe
	epoch   uint64  // promotion epoch from the last probe
	durable bool    // node has its own WAL (can lead after promotion)
	fenced  bool    // node saw a newer epoch and refuses writes
}

// Cluster routes requests across a primary and its replicas. It is safe
// for concurrent use; routing state is internally locked and per-request
// round trips are serialized by each endpoint's Client.
type Cluster struct {
	opts []Option
	logf func(format string, args ...any)

	mu      sync.Mutex
	eps     []*endpoint
	primary int    // index into eps, -1 when unknown
	rr      int    // round-robin cursor over read endpoints
	token   uint64 // read-your-writes LSN floor
	epoch   uint64 // highest promotion epoch seen anywhere
}

// DialCluster connects to a cluster given its member addresses in any
// order. Roles are discovered by probing stats: the writable member
// becomes the write target, every reachable member serves reads. At least
// one member must be reachable; the primary may be discovered later (a
// write with no known primary re-probes first).
func DialCluster(addrs []string, opts ...Option) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("client: DialCluster needs at least one address")
	}
	cl := &Cluster{opts: opts, primary: -1}
	// Options configure Clients; extract the cluster-relevant ones by
	// applying them to a scratch instance.
	var scratch Client
	for _, o := range opts {
		o(&scratch)
	}
	cl.logf = scratch.logf
	for _, a := range addrs {
		cl.eps = append(cl.eps, &endpoint{addr: a})
	}
	if n := cl.probeAll(); n == 0 {
		_ = cl.Close()
		return nil, ErrNoEndpoints
	}
	return cl, nil
}

func (cl *Cluster) log(format string, args ...any) {
	if cl.logf != nil {
		cl.logf(format, args...)
	}
}

// Close closes every endpoint connection.
func (cl *Cluster) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var first error
	for _, ep := range cl.eps {
		if ep.c != nil {
			if err := ep.c.Close(); err != nil && first == nil {
				first = err
			}
			ep.c = nil
		}
	}
	return first
}

// ensure returns the endpoint's live client, dialing if needed.
// Callers hold cl.mu.
func (cl *Cluster) ensure(ep *endpoint) (*Client, error) {
	if ep.c != nil {
		return ep.c, nil
	}
	c, err := Dial(ep.addr, cl.opts...)
	if err != nil {
		return nil, err
	}
	ep.c = c
	return c, nil
}

// markDown drops the endpoint's connection so the next use re-dials.
// Callers hold cl.mu.
func (cl *Cluster) markDown(ep *endpoint) {
	if ep.c != nil {
		_ = ep.c.Close() // already failing; the re-dial is what matters
		ep.c = nil
	}
	if cl.primary >= 0 && cl.eps[cl.primary] == ep {
		cl.primary = -1
	}
}

// probe refreshes one endpoint's role and position. A "stale" role —
// a replica orphaned by the promotion of a non-durable sibling — heals
// only if the node has reconnected into the current epoch's replication
// tree; otherwise it stays out of the read set for the life of this
// cluster handle. Callers hold cl.mu.
func (cl *Cluster) probe(ep *endpoint) error {
	c, err := cl.ensure(ep)
	if err != nil {
		return err
	}
	st, err := c.Stats()
	if err != nil {
		if IsConn(err) {
			cl.markDown(ep)
		}
		return err
	}
	role := "primary" // no replication state = standalone, writable
	var lsn, epoch uint64
	var durable, fenced bool
	connected := false
	if st.Repl != nil {
		role, lsn = st.Repl.Role, st.Repl.LSN
		epoch, durable = st.Repl.Epoch, st.Repl.Durable
		connected, fenced = st.Repl.Connected, st.Repl.Fenced
	}
	if epoch > cl.epoch {
		cl.epoch = epoch
	}
	if ep.role == "stale" && role == "replica" && !(connected && epoch >= cl.epoch) {
		ep.lsn, ep.epoch, ep.durable, ep.fenced = lsn, epoch, durable, fenced
		return nil
	}
	ep.role, ep.lsn, ep.epoch, ep.durable, ep.fenced = role, lsn, epoch, durable, fenced
	return nil
}

// probeAll refreshes every endpoint and re-elects the write target,
// returning how many members are reachable. When more than one node
// claims to be primary — a healed partition returning a deposed leader —
// the highest epoch wins and the losers are demoted under it on the spot.
func (cl *Cluster) probeAll() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	reachable := 0
	cl.primary = -1
	for i, ep := range cl.eps {
		if err := cl.probe(ep); err != nil {
			continue
		}
		reachable++
		if ep.role != "primary" || ep.fenced {
			// A fenced "primary" knows it lost its epoch; it is a demotion
			// candidate, never the write target.
			continue
		}
		if cl.primary < 0 || ep.epoch > cl.eps[cl.primary].epoch {
			cl.primary = i
		}
	}
	if cl.primary >= 0 {
		leader := cl.eps[cl.primary]
		if leader.durable {
			for _, ep := range cl.eps {
				if ep == leader || ep.c == nil || ep.role != "primary" {
					continue
				}
				if ep.epoch >= leader.epoch && !ep.fenced {
					continue
				}
				// A zombie: it led an epoch the cluster has moved past.
				// Demote it under the real leader; its unshipped suffix is
				// truncated on rejoin (loudly, in its stats).
				if err := ep.c.Follow(leader.addr, leader.epoch); err != nil {
					cl.log("client: demote stale primary %s under %s (epoch %d): %v", ep.addr, leader.addr, leader.epoch, err)
					if IsConn(err) {
						cl.markDown(ep)
					}
					continue
				}
				cl.log("client: demoted stale primary %s under %s at epoch %d", ep.addr, leader.addr, leader.epoch)
				ep.role = "replica"
				ep.epoch = leader.epoch
				ep.fenced = false
			}
		}
	}
	return reachable
}

// Refresh re-probes every endpoint, re-electing the write target and
// demoting any deposed primary a healed partition has returned. Call it
// after repairing the cluster; routine operation self-heals through the
// write path's failover.
func (cl *Cluster) Refresh() int { return cl.probeAll() }

// Leader reports the current write target's address and the cluster's
// epoch ("" when no primary is known).
func (cl *Cluster) Leader() (addr string, epoch uint64) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.primary >= 0 {
		addr = cl.eps[cl.primary].addr
	}
	return addr, cl.epoch
}

// writeTarget returns the current primary's client, re-probing when the
// primary is unknown.
func (cl *Cluster) writeTarget() (*Client, error) {
	cl.mu.Lock()
	if cl.primary < 0 {
		cl.mu.Unlock()
		cl.probeAll()
		cl.mu.Lock()
	}
	defer cl.mu.Unlock()
	if cl.primary < 0 {
		return nil, ErrNoPrimary
	}
	return cl.ensure(cl.eps[cl.primary])
}

// Exec runs a script on the primary, carrying the cluster's epoch so a
// zombie primary is fenced instead of accepting the write. On a transport
// failure or a write refusal it fails over — promoting the best reachable
// replica into the next epoch — and retries the write once there. The
// retry makes Exec at-least-once across failover: a write the dead
// primary committed but never acknowledged may be applied again on the
// new one.
func (cl *Cluster) Exec(src string) (*sopr.Result, error) {
	return cl.write(func(c *Client, epoch uint64) (*sopr.Result, error) {
		return c.ExecAt(src, epoch)
	})
}

// ExecBatch runs a list of data-manipulation statements on the primary as
// one operation block (see Client.ExecBatch), with Exec's epoch-carrying
// and failover-retry semantics. The whole batch is one transaction, so the
// at-least-once caveat applies to the block as a unit: across a failover
// either every statement is re-applied or none is.
func (cl *Cluster) ExecBatch(stmts []string) (*sopr.Result, error) {
	return cl.write(func(c *Client, epoch uint64) (*sopr.Result, error) {
		return c.ExecBatchAt(stmts, epoch)
	})
}

// write routes one write through the current primary, carrying the
// cluster's epoch so a zombie primary is fenced instead of accepting it;
// on a transport failure or a write refusal it fails over and retries
// once on the new leader.
func (cl *Cluster) write(do func(c *Client, epoch uint64) (*sopr.Result, error)) (*sopr.Result, error) {
	c, err := cl.writeTarget()
	if errors.Is(err, ErrNoPrimary) {
		// No member is writable at all — the primary died before this
		// client ever reached it. Electing here gives a fresh client the
		// same failover authority as one that watched the primary die.
		if ferr := cl.failover(); ferr != nil {
			return nil, fmt.Errorf("%w (failover also failed: %v)", err, ferr)
		}
		c, err = cl.writeTarget()
	}
	if err != nil {
		return nil, err
	}
	cl.mu.Lock()
	epoch := cl.epoch
	cl.mu.Unlock()
	res, err := do(c, epoch)
	if err == nil {
		cl.noteWrite(res)
		return res, nil
	}
	var re *RemoteError
	switch {
	case errors.As(err, &re) && re.Code == CodeStaleEpoch:
		// The cluster moved past our view (another client failed over).
		// Adopt the server's epoch and re-probe; no promotion needed.
		cl.noteEpoch(re.Epoch)
		cl.probeAll()
	case IsConn(err) || IsRemote(err, CodeReadOnly) || IsRemote(err, CodeShutdown) || IsRemote(err, CodeFenced):
		if ferr := cl.failover(); ferr != nil {
			return nil, fmt.Errorf("%w (failover also failed: %v)", err, ferr)
		}
	default:
		return nil, err // a genuine script error: the cluster is healthy
	}
	c, err2 := cl.writeTarget()
	if err2 != nil {
		return nil, err2
	}
	cl.mu.Lock()
	epoch = cl.epoch
	cl.mu.Unlock()
	res, err2 = do(c, epoch)
	if err2 != nil {
		return nil, err2
	}
	cl.noteWrite(res)
	return res, nil
}

// noteWrite advances the read-your-writes token and the epoch view.
func (cl *Cluster) noteWrite(res *sopr.Result) {
	cl.mu.Lock()
	if res.LSN > cl.token {
		cl.token = res.LSN
	}
	if res.Epoch > cl.epoch {
		cl.epoch = res.Epoch
	}
	cl.mu.Unlock()
}

// noteEpoch adopts a higher epoch learned from an error or probe.
func (cl *Cluster) noteEpoch(epoch uint64) {
	cl.mu.Lock()
	if epoch > cl.epoch {
		cl.epoch = epoch
	}
	cl.mu.Unlock()
}

// betterCandidate orders promotion candidates: most history first (an
// acknowledged async write lives only where it was applied), durable
// nodes breaking LSN ties (a durable winner keeps every sibling in the
// cluster; an in-memory one orphans them), address as the final,
// deterministic tie-break so concurrent failovers pick the same node.
func betterCandidate(a, b *endpoint) bool {
	if a.lsn != b.lsn {
		return a.lsn > b.lsn
	}
	if a.durable != b.durable {
		return a.durable
	}
	return a.addr < b.addr
}

// failover elects a new primary: mark the old one down, re-probe
// everyone, and — if no member is already writable — promote the best
// reachable replica (see betterCandidate) into the next epoch. A durable
// winner then re-points the surviving siblings at itself; a non-durable
// winner cannot feed them, so they go sticky-stale.
func (cl *Cluster) failover() error {
	cl.mu.Lock()
	if cl.primary >= 0 {
		cl.markDown(cl.eps[cl.primary])
	}
	cl.mu.Unlock()
	if cl.probeAll() == 0 {
		return ErrNoEndpoints
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.primary >= 0 {
		return nil // someone is already writable (e.g. the primary came back)
	}
	best := -1
	for i, ep := range cl.eps {
		if ep.c == nil || ep.role != "replica" {
			continue
		}
		if best < 0 || betterCandidate(ep, cl.eps[best]) {
			best = i
		}
	}
	if best < 0 {
		return ErrNoPrimary
	}
	ep := cl.eps[best]
	newEpoch, lsn, err := ep.c.PromoteTo(cl.epoch + 1)
	if err != nil {
		cl.markDown(ep)
		return fmt.Errorf("promote %s: %w", ep.addr, err)
	}
	if newEpoch == 0 {
		newEpoch = cl.epoch + 1 // legacy server: trust our own target
	}
	ep.role = "primary"
	ep.epoch = newEpoch
	if lsn > ep.lsn {
		ep.lsn = lsn
	}
	cl.primary = best
	if newEpoch > cl.epoch {
		cl.epoch = newEpoch
	}
	cl.log("client: failover promoted %s at epoch %d (durable=%v, lsn %d)", ep.addr, newEpoch, ep.durable, ep.lsn)
	if !ep.durable {
		// The old primary's other replicas are now permanently stale: the
		// promoted node ships no WAL to feed them. Out of the read set.
		for _, other := range cl.eps {
			if other != ep && other.role == "replica" {
				other.role = "stale"
			}
		}
		return nil
	}
	// The winner ships WAL: re-point every surviving replica at it so they
	// resume from their applied LSN instead of going stale.
	for _, other := range cl.eps {
		if other == ep || other.role != "replica" || other.c == nil {
			continue
		}
		if err := other.c.Follow(ep.addr, newEpoch); err != nil {
			cl.log("client: re-point %s at %s (epoch %d): %v", other.addr, ep.addr, newEpoch, err)
			if IsConn(err) {
				cl.markDown(other)
			}
			continue
		}
		cl.log("client: re-pointed %s at %s (epoch %d)", other.addr, ep.addr, newEpoch)
		other.epoch = newEpoch
	}
	return nil
}

// readPlan snapshots the endpoints to try for a read: replicas first in
// round-robin order, the primary last, plus the current token. Stale
// endpoints (replicas orphaned by a failover) are skipped entirely —
// they hold a forked, frozen view.
func (cl *Cluster) readPlan() ([]*endpoint, uint64) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var replicas, primaries []*endpoint
	for _, ep := range cl.eps {
		if ep.role == "stale" {
			continue
		}
		if cl.primary >= 0 && cl.eps[cl.primary] == ep {
			primaries = append(primaries, ep)
		} else {
			replicas = append(replicas, ep)
		}
	}
	if len(replicas) > 1 {
		rot := cl.rr % len(replicas)
		cl.rr++
		replicas = append(replicas[rot:], replicas[:rot]...)
	}
	return append(replicas, primaries...), cl.token
}

// read runs op against each endpoint in read order until one succeeds.
// Transport failures mark the endpoint down and move on — idempotent
// reads are safe to retry elsewhere — as do read_only/lagging refusals;
// any other server-reported error is returned as-is (a parse error will
// not get better on the next replica).
func (cl *Cluster) read(op func(c *Client) error) error {
	eps, _ := cl.readPlan()
	var lastErr error
	for _, ep := range eps {
		cl.mu.Lock()
		c, err := cl.ensure(ep)
		cl.mu.Unlock()
		if err != nil {
			lastErr = err
			continue
		}
		err = op(c)
		if err == nil {
			return nil
		}
		if IsConn(err) {
			cl.mu.Lock()
			cl.markDown(ep)
			cl.mu.Unlock()
			lastErr = err
			continue
		}
		if IsRemote(err, CodeLagging) || IsRemote(err, CodeShutdown) {
			lastErr = err
			continue
		}
		return err
	}
	if lastErr == nil {
		lastErr = ErrNoEndpoints
	}
	return lastErr
}

// Query evaluates a SELECT on a replica (or the primary when no replica
// can serve it), never seeing state older than the cluster's own writes.
func (cl *Cluster) Query(src string) (*sopr.Rows, error) {
	cl.mu.Lock()
	token := cl.token
	cl.mu.Unlock()
	var rows *sopr.Rows
	err := cl.read(func(c *Client) error {
		r, err := c.QueryAt(src, token)
		if err == nil {
			rows = r
		}
		return err
	})
	return rows, err
}

// Dump fetches a recreation script from any read endpoint.
func (cl *Cluster) Dump() (string, error) {
	var script string
	err := cl.read(func(c *Client) error {
		s, err := c.Dump()
		if err == nil {
			script = s
		}
		return err
	})
	return script, err
}

// Stats fetches counters from any read endpoint.
func (cl *Cluster) Stats() (*Stats, error) {
	var st *Stats
	err := cl.read(func(c *Client) error {
		s, err := c.Stats()
		if err == nil {
			st = s
		}
		return err
	})
	return st, err
}

// Token reports the cluster's current read-your-writes LSN token (the
// highest LSN returned by a write through this cluster).
func (cl *Cluster) Token() uint64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.token
}

// Epoch reports the highest promotion epoch this cluster handle has seen.
func (cl *Cluster) Epoch() uint64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.epoch
}
