// Cluster: client-side read/write routing over one primary and its read
// replicas. Writes go to the primary; reads fan out round-robin across
// replicas (falling back to the primary), each carrying the
// read-your-writes LSN token from the cluster's last write so a replica
// never answers with state older than the caller's own writes. When the
// primary dies mid-write, the cluster fails over: it promotes the
// reachable replica with the highest applied LSN and retries the write
// once there.
package client

import (
	"errors"
	"fmt"
	"sync"

	"sopr"
)

// ErrNoEndpoints reports that no cluster endpoint could serve the request.
var ErrNoEndpoints = errors.New("client: no reachable cluster endpoint")

// ErrNoPrimary reports that no endpoint accepts writes and failover could
// not promote one.
var ErrNoPrimary = errors.New("client: no writable endpoint in cluster")

// endpoint is one cluster member: its address, a lazily-(re)dialed
// connection, and what the last stats probe said about it.
type endpoint struct {
	addr string
	c    *Client // nil when down / not yet dialed
	role string  // "primary", "replica", or "" before the first probe
	lsn  uint64  // position from the last probe
}

// Cluster routes requests across a primary and its replicas. It is safe
// for concurrent use; routing state is internally locked and per-request
// round trips are serialized by each endpoint's Client.
type Cluster struct {
	opts []Option

	mu      sync.Mutex
	eps     []*endpoint
	primary int // index into eps, -1 when unknown
	rr      int // round-robin cursor over read endpoints
	token   uint64
}

// DialCluster connects to a cluster given its member addresses in any
// order. Roles are discovered by probing stats: the writable member
// becomes the write target, every reachable member serves reads. At least
// one member must be reachable; the primary may be discovered later (a
// write with no known primary re-probes first).
func DialCluster(addrs []string, opts ...Option) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("client: DialCluster needs at least one address")
	}
	cl := &Cluster{opts: opts, primary: -1}
	for _, a := range addrs {
		cl.eps = append(cl.eps, &endpoint{addr: a})
	}
	if n := cl.probeAll(); n == 0 {
		_ = cl.Close()
		return nil, ErrNoEndpoints
	}
	return cl, nil
}

// Close closes every endpoint connection.
func (cl *Cluster) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var first error
	for _, ep := range cl.eps {
		if ep.c != nil {
			if err := ep.c.Close(); err != nil && first == nil {
				first = err
			}
			ep.c = nil
		}
	}
	return first
}

// ensure returns the endpoint's live client, dialing if needed.
// Callers hold cl.mu.
func (cl *Cluster) ensure(ep *endpoint) (*Client, error) {
	if ep.c != nil {
		return ep.c, nil
	}
	c, err := Dial(ep.addr, cl.opts...)
	if err != nil {
		return nil, err
	}
	ep.c = c
	return c, nil
}

// markDown drops the endpoint's connection so the next use re-dials.
// Callers hold cl.mu.
func (cl *Cluster) markDown(ep *endpoint) {
	if ep.c != nil {
		_ = ep.c.Close() // already failing; the re-dial is what matters
		ep.c = nil
	}
	if cl.primary >= 0 && cl.eps[cl.primary] == ep {
		cl.primary = -1
	}
}

// probe refreshes one endpoint's role and position. A "stale" role is
// sticky: replicas of a failed-over primary can never catch up (the
// promoted node ships no WAL), so they stay out of the read set for the
// life of this cluster handle. Callers hold cl.mu.
func (cl *Cluster) probe(ep *endpoint) error {
	c, err := cl.ensure(ep)
	if err != nil {
		return err
	}
	st, err := c.Stats()
	if err != nil {
		if IsConn(err) {
			cl.markDown(ep)
		}
		return err
	}
	role := "primary" // no replication state = standalone, writable
	var lsn uint64
	if st.Repl != nil {
		role, lsn = st.Repl.Role, st.Repl.LSN
	}
	if ep.role == "stale" && role == "replica" {
		ep.lsn = lsn
		return nil
	}
	ep.role, ep.lsn = role, lsn
	return nil
}

// probeAll refreshes every endpoint and re-elects the write target,
// returning how many members are reachable.
func (cl *Cluster) probeAll() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	reachable := 0
	cl.primary = -1
	for i, ep := range cl.eps {
		if err := cl.probe(ep); err != nil {
			continue
		}
		reachable++
		if ep.role == "primary" && cl.primary < 0 {
			cl.primary = i
		}
	}
	return reachable
}

// writeTarget returns the current primary's client, re-probing when the
// primary is unknown.
func (cl *Cluster) writeTarget() (*Client, error) {
	cl.mu.Lock()
	if cl.primary < 0 {
		cl.mu.Unlock()
		cl.probeAll()
		cl.mu.Lock()
	}
	defer cl.mu.Unlock()
	if cl.primary < 0 {
		return nil, ErrNoPrimary
	}
	return cl.ensure(cl.eps[cl.primary])
}

// Exec runs a script on the primary. On a transport failure it fails
// over — promoting the reachable replica with the highest applied LSN —
// and retries the write once there. The retry makes Exec at-least-once
// across failover: a write the dead primary committed but never
// acknowledged may be applied again on the new one.
func (cl *Cluster) Exec(src string) (*sopr.Result, error) {
	c, err := cl.writeTarget()
	if err != nil {
		return nil, err
	}
	res, err := c.Exec(src)
	if err == nil {
		cl.noteWrite(res.LSN)
		return res, nil
	}
	if !IsConn(err) && !IsRemote(err, CodeReadOnly) && !IsRemote(err, CodeShutdown) {
		return nil, err // a genuine script error: the cluster is healthy
	}
	if ferr := cl.failover(); ferr != nil {
		return nil, fmt.Errorf("%w (failover also failed: %v)", err, ferr)
	}
	c, err2 := cl.writeTarget()
	if err2 != nil {
		return nil, err2
	}
	res, err2 = c.Exec(src)
	if err2 != nil {
		return nil, err2
	}
	cl.noteWrite(res.LSN)
	return res, nil
}

// noteWrite advances the read-your-writes token.
func (cl *Cluster) noteWrite(lsn uint64) {
	cl.mu.Lock()
	if lsn > cl.token {
		cl.token = lsn
	}
	cl.mu.Unlock()
}

// failover elects a new primary: mark the old one down, re-probe
// everyone, and — if no member is already writable — promote the
// reachable replica with the highest applied LSN (losing any committed
// records past it; replication is asynchronous).
func (cl *Cluster) failover() error {
	cl.mu.Lock()
	if cl.primary >= 0 {
		cl.markDown(cl.eps[cl.primary])
	}
	cl.mu.Unlock()
	if cl.probeAll() == 0 {
		return ErrNoEndpoints
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.primary >= 0 {
		return nil // someone is already writable (e.g. the primary came back)
	}
	best := -1
	for i, ep := range cl.eps {
		if ep.c == nil || ep.role != "replica" {
			continue
		}
		if best < 0 || ep.lsn > cl.eps[best].lsn {
			best = i
		}
	}
	if best < 0 {
		return ErrNoPrimary
	}
	ep := cl.eps[best]
	if err := ep.c.Promote(); err != nil {
		cl.markDown(ep)
		return fmt.Errorf("promote %s: %w", ep.addr, err)
	}
	ep.role = "primary"
	cl.primary = best
	// The old primary's other replicas are now permanently stale: the
	// promoted node cannot feed them. Take them out of the read set.
	for _, other := range cl.eps {
		if other != ep && other.role == "replica" {
			other.role = "stale"
		}
	}
	return nil
}

// readPlan snapshots the endpoints to try for a read: replicas first in
// round-robin order, the primary last, plus the current token. Stale
// endpoints (replicas orphaned by a failover) are skipped entirely —
// they hold a forked, frozen view.
func (cl *Cluster) readPlan() ([]*endpoint, uint64) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var replicas, primaries []*endpoint
	for _, ep := range cl.eps {
		if ep.role == "stale" {
			continue
		}
		if cl.primary >= 0 && cl.eps[cl.primary] == ep {
			primaries = append(primaries, ep)
		} else {
			replicas = append(replicas, ep)
		}
	}
	if len(replicas) > 1 {
		rot := cl.rr % len(replicas)
		cl.rr++
		replicas = append(replicas[rot:], replicas[:rot]...)
	}
	return append(replicas, primaries...), cl.token
}

// read runs op against each endpoint in read order until one succeeds.
// Transport failures mark the endpoint down and move on — idempotent
// reads are safe to retry elsewhere — as do read_only/lagging refusals;
// any other server-reported error is returned as-is (a parse error will
// not get better on the next replica).
func (cl *Cluster) read(op func(c *Client) error) error {
	eps, _ := cl.readPlan()
	var lastErr error
	for _, ep := range eps {
		cl.mu.Lock()
		c, err := cl.ensure(ep)
		cl.mu.Unlock()
		if err != nil {
			lastErr = err
			continue
		}
		err = op(c)
		if err == nil {
			return nil
		}
		if IsConn(err) {
			cl.mu.Lock()
			cl.markDown(ep)
			cl.mu.Unlock()
			lastErr = err
			continue
		}
		if IsRemote(err, CodeLagging) || IsRemote(err, CodeShutdown) {
			lastErr = err
			continue
		}
		return err
	}
	if lastErr == nil {
		lastErr = ErrNoEndpoints
	}
	return lastErr
}

// Query evaluates a SELECT on a replica (or the primary when no replica
// can serve it), never seeing state older than the cluster's own writes.
func (cl *Cluster) Query(src string) (*sopr.Rows, error) {
	cl.mu.Lock()
	token := cl.token
	cl.mu.Unlock()
	var rows *sopr.Rows
	err := cl.read(func(c *Client) error {
		r, err := c.QueryAt(src, token)
		if err == nil {
			rows = r
		}
		return err
	})
	return rows, err
}

// Dump fetches a recreation script from any read endpoint.
func (cl *Cluster) Dump() (string, error) {
	var script string
	err := cl.read(func(c *Client) error {
		s, err := c.Dump()
		if err == nil {
			script = s
		}
		return err
	})
	return script, err
}

// Stats fetches counters from any read endpoint.
func (cl *Cluster) Stats() (*Stats, error) {
	var st *Stats
	err := cl.read(func(c *Client) error {
		s, err := c.Stats()
		if err == nil {
			st = s
		}
		return err
	})
	return st, err
}

// Token reports the cluster's current read-your-writes LSN token (the
// highest LSN returned by a write through this cluster).
func (cl *Cluster) Token() uint64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.token
}
