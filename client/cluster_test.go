// Cluster routing tests against a real three-node group: one durable
// primary, two streaming replicas. Covers write routing, read fan-out
// with read-your-writes tokens, read retry across dead endpoints, and
// failover by promoting the freshest replica.
package client_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"sopr"
	"sopr/client"
	"sopr/internal/repl"
	"sopr/internal/server"
)

const clusterSchema = `create table kv (k string, v int);`

type clusterNodes struct {
	primaryAddr string
	sdb         *sopr.SynchronizedDB
	db          *sopr.DB
	psrv        *server.Server
	replicas    []*replicaNode
}

type replicaNode struct {
	addr string
	fl   *repl.Follower
	srv  *server.Server
}

func startCluster(t *testing.T, nReplicas int) *clusterNodes {
	t.Helper()
	db, err := sopr.OpenDurable(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sdb := sopr.Synchronized(db)
	src := repl.NewSource(db.WALLog(), repl.SourceConfig{Heartbeat: 50 * time.Millisecond})
	psrv := server.New(sdb, server.Config{Repl: src, ReplWaitTimeout: 2 * time.Second})
	pln, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go psrv.Serve(pln)
	cn := &clusterNodes{primaryAddr: pln.Addr().String(), sdb: sdb, db: db, psrv: psrv}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = cn.psrv.Shutdown(ctx)
		_ = sdb.Close()
	})
	for i := 0; i < nReplicas; i++ {
		cn.addReplica(t, "")
	}
	return cn
}

// addReplica attaches a follower to the cluster's primary; a non-empty
// dir makes it durable (own WAL, preferred at failover ties).
func (cn *clusterNodes) addReplica(t *testing.T, dir string) *replicaNode {
	t.Helper()
	fl, err := repl.NewFollower(repl.FollowerConfig{
		Primary:      cn.primaryAddr,
		DataDir:      dir,
		ReconnectMin: 10 * time.Millisecond,
		ReconnectMax: 200 * time.Millisecond,
		AckInterval:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	go fl.Run()
	rsrv := server.New(fl, server.Config{ReplWaitTimeout: 2 * time.Second})
	rln, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rsrv.Serve(rln)
	rn := &replicaNode{addr: rln.Addr().String(), fl: fl, srv: rsrv}
	cn.replicas = append(cn.replicas, rn)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = rn.srv.Shutdown(ctx)
		rn.fl.Close()
	})
	return rn
}

func (cn *clusterNodes) addrs() []string {
	out := []string{cn.primaryAddr}
	for _, r := range cn.replicas {
		out = append(out, r.addr)
	}
	return out
}

func (cn *clusterNodes) waitCaughtUp(t *testing.T) {
	t.Helper()
	want := cn.db.CurrentLSN()
	deadline := time.Now().Add(15 * time.Second)
	for _, r := range cn.replicas {
		for r.fl.AppliedLSN() < want {
			if time.Now().After(deadline) {
				t.Fatalf("replica %s stuck at lsn %d, want %d", r.addr, r.fl.AppliedLSN(), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func TestClusterRoutesWritesAndReads(t *testing.T) {
	cn := startCluster(t, 2)
	// Hand DialCluster the addresses replicas-first: it must discover the
	// primary by role, not by position.
	addrs := []string{cn.replicas[0].addr, cn.replicas[1].addr, cn.primaryAddr}
	cl, err := client.DialCluster(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Exec(clusterSchema); err != nil {
		t.Fatalf("cluster exec: %v", err)
	}
	res, err := cl.Exec(`insert into kv values ('a', 1);`)
	if err != nil {
		t.Fatal(err)
	}
	if res.LSN == 0 || cl.Token() != res.LSN {
		t.Fatalf("token = %d, exec lsn = %d", cl.Token(), res.LSN)
	}
	// Reads carry the token, so they see the write no matter which node
	// answers — run several to sweep across the round-robin.
	for i := 0; i < 6; i++ {
		rows, err := cl.Query(`select v from kv where k = 'a';`)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(rows.Data) != 1 || rows.Data[0][0].(int64) != 1 {
			t.Fatalf("query %d rows = %+v", i, rows.Data)
		}
	}
	// The replicas actually served reads (tokens made them wait, not miss).
	cn.waitCaughtUp(t)
	served := int64(0)
	for _, r := range cn.replicas {
		c, err := client.Dial(r.addr)
		if err != nil {
			t.Fatal(err)
		}
		st, err := c.Stats()
		c.Close()
		if err != nil {
			t.Fatal(err)
		}
		served += st.Server.Queries
	}
	if served == 0 {
		t.Fatal("no replica served a single read; routing sent everything to the primary")
	}
}

// TestClusterReadRetriesPastDeadEndpoint: killing a replica mid-run must
// not fail reads — the cluster retries the idempotent request on the next
// endpoint.
func TestClusterReadRetriesPastDeadEndpoint(t *testing.T) {
	cn := startCluster(t, 2)
	cl, err := client.DialCluster(cn.addrs())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Exec(clusterSchema + `insert into kv values ('a', 1);`); err != nil {
		t.Fatal(err)
	}
	cn.waitCaughtUp(t)

	// Kill one replica out from under the cluster's open connections.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = cn.replicas[0].srv.Shutdown(ctx)
	cn.replicas[0].fl.Close()

	for i := 0; i < 6; i++ {
		rows, err := cl.Query(`select v from kv where k = 'a';`)
		if err != nil {
			t.Fatalf("query %d after replica death: %v", i, err)
		}
		if len(rows.Data) != 1 {
			t.Fatalf("query %d rows = %+v", i, rows.Data)
		}
	}
	if _, err := cl.Dump(); err != nil {
		t.Fatalf("dump after replica death: %v", err)
	}
	if _, err := cl.Stats(); err != nil {
		t.Fatalf("stats after replica death: %v", err)
	}
}

// TestClusterFailover: the primary dies; the next write must promote the
// freshest reachable replica and land there, and subsequent reads see it.
func TestClusterFailover(t *testing.T) {
	cn := startCluster(t, 2)
	cl, err := client.DialCluster(cn.addrs())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Exec(clusterSchema + `insert into kv values ('a', 1);`); err != nil {
		t.Fatal(err)
	}
	cn.waitCaughtUp(t)

	// Primary dies hard.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = cn.psrv.Shutdown(ctx)
	_ = cn.sdb.Close()

	res, err := cl.Exec(`insert into kv values ('b', 2);`)
	if err != nil {
		t.Fatalf("exec after primary death: %v", err)
	}
	_ = res
	// Exactly one replica got promoted, and the write is readable.
	promoted := 0
	for _, r := range cn.replicas {
		if r.fl.Promoted() {
			promoted++
		}
	}
	if promoted != 1 {
		t.Fatalf("%d replicas promoted, want exactly 1", promoted)
	}
	rows, err := cl.Query(`select v from kv where k = 'b';`)
	if err != nil {
		t.Fatalf("query after failover: %v", err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].(int64) != 2 {
		t.Fatalf("rows after failover = %+v", rows.Data)
	}
	// The pre-failover data survived the promotion.
	rows, err = cl.Query(`select v from kv where k = 'a';`)
	if err != nil || len(rows.Data) != 1 {
		t.Fatalf("pre-failover data = %+v, err %v", rows, err)
	}
}

// TestClusterDialAfterPrimaryDeathPromotes: a client that dials the
// cluster AFTER the primary is already gone must still be able to
// write — its first Exec finds no writable member and elects one, with
// the same authority as a client that watched the primary die.
func TestClusterDialAfterPrimaryDeathPromotes(t *testing.T) {
	cn := startCluster(t, 2)
	seed, err := client.DialCluster(cn.addrs())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seed.Exec(clusterSchema + `insert into kv values ('a', 1);`); err != nil {
		t.Fatal(err)
	}
	_ = seed.Close()
	cn.waitCaughtUp(t)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = cn.psrv.Shutdown(ctx)
	_ = cn.sdb.Close()

	cl, err := client.DialCluster(cn.addrs())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.Exec(`insert into kv values ('b', 2);`)
	if err != nil {
		t.Fatalf("exec on freshly dialed primary-less cluster: %v", err)
	}
	if res.Epoch == 0 {
		t.Fatalf("write accepted at epoch 0, want a post-failover epoch")
	}
	promoted := 0
	for _, r := range cn.replicas {
		if r.fl.Promoted() {
			promoted++
		}
	}
	if promoted != 1 {
		t.Fatalf("%d replicas promoted, want exactly 1", promoted)
	}
	rows, err := cl.Query(`select v from kv where k = 'b';`)
	if err != nil || len(rows.Data) != 1 {
		t.Fatalf("read-back after dial-time failover = %+v, err %v", rows, err)
	}
}

// TestClusterFailoverPrefersDurableReplica: at equal LSN the failover
// tie-break must pick the durable replica — an in-memory winner would
// orphan every sibling, a durable one keeps feeding them — and re-point
// the in-memory survivor at the new leader instead of going stale.
func TestClusterFailoverPrefersDurableReplica(t *testing.T) {
	cn := startCluster(t, 0)
	inmem := cn.addReplica(t, "")
	durable := cn.addReplica(t, t.TempDir())
	cl, err := client.DialCluster(cn.addrs())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Exec(clusterSchema + `insert into kv values ('a', 1);`); err != nil {
		t.Fatal(err)
	}
	cn.waitCaughtUp(t)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = cn.psrv.Shutdown(ctx)
	_ = cn.sdb.Close()

	res, err := cl.Exec(`insert into kv values ('b', 2);`)
	if err != nil {
		t.Fatalf("exec after primary death: %v", err)
	}
	if !durable.fl.Promoted() || inmem.fl.Promoted() {
		t.Fatalf("promoted: durable=%v inmem=%v; the durable replica must win the tie",
			durable.fl.Promoted(), inmem.fl.Promoted())
	}
	if res.Epoch != 1 {
		t.Fatalf("post-failover write epoch = %d, want 1", res.Epoch)
	}
	if addr, epoch := cl.Leader(); addr != durable.addr || epoch != 1 {
		t.Fatalf("leader = %s epoch %d, want %s epoch 1", addr, epoch, durable.addr)
	}
	// The in-memory survivor is re-pointed, not orphaned: it streams from
	// the new leader and keeps serving reads.
	deadline := time.Now().Add(15 * time.Second)
	for inmem.fl.Leader() != durable.addr || inmem.fl.AppliedLSN() < res.LSN {
		if time.Now().After(deadline) {
			t.Fatalf("in-memory replica never re-pointed: leader %s, lsn %d (want %s, %d)",
				inmem.fl.Leader(), inmem.fl.AppliedLSN(), durable.addr, res.LSN)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := inmem.fl.ReplStats(); st.Role != "replica" {
		t.Fatalf("in-memory survivor role = %s, want replica", st.Role)
	}
	rows, err := cl.Query(`select v from kv where k = 'b';`)
	if err != nil || len(rows.Data) != 1 {
		t.Fatalf("read after failover = %+v, err %v", rows, err)
	}
}

// TestClusterFailoverTieBreakDeterministic: two durable replicas at the
// same LSN — the lowest address must win, so concurrent failovers (or a
// re-run) elect the same node.
func TestClusterFailoverTieBreakDeterministic(t *testing.T) {
	cn := startCluster(t, 0)
	r1 := cn.addReplica(t, t.TempDir())
	r2 := cn.addReplica(t, t.TempDir())
	cl, err := client.DialCluster(cn.addrs())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Exec(clusterSchema + `insert into kv values ('a', 1);`); err != nil {
		t.Fatal(err)
	}
	cn.waitCaughtUp(t)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = cn.psrv.Shutdown(ctx)
	_ = cn.sdb.Close()

	if _, err := cl.Exec(`insert into kv values ('b', 2);`); err != nil {
		t.Fatalf("exec after primary death: %v", err)
	}
	want, other := r1, r2
	if r2.addr < r1.addr {
		want, other = r2, r1
	}
	if !want.fl.Promoted() || other.fl.Promoted() {
		t.Fatalf("promoted %v/%v (addrs %s < %s): tie-break must pick the lowest address",
			r1.fl.Promoted(), r2.fl.Promoted(), want.addr, other.addr)
	}
}

// TestClusterScriptErrorsAreNotRetried: a parse error is the caller's
// bug, not a routing problem — it must come back once, unchanged, with
// no failover attempt.
func TestClusterScriptErrorsAreNotRetried(t *testing.T) {
	cn := startCluster(t, 1)
	cl, err := client.DialCluster(cn.addrs())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Exec(clusterSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(`this is not sql;`); !client.IsRemote(err, client.CodeParse) {
		t.Fatalf("parse error came back as %v", err)
	}
	if _, err := cl.Query(`select nope from missing;`); !client.IsRemote(err, "") {
		t.Fatalf("bad query came back as %v", err)
	}
	for _, r := range cn.replicas {
		if r.fl.Promoted() {
			t.Fatal("script error triggered a promotion")
		}
	}
}

func TestDialClusterNeedsAReachableEndpoint(t *testing.T) {
	if _, err := client.DialCluster([]string{"127.0.0.1:1"}); err == nil {
		t.Fatal("DialCluster to a dead address succeeded")
	}
	if _, err := client.DialCluster(nil); err == nil {
		t.Fatal("DialCluster with no addresses succeeded")
	}
}

func ExampleDialCluster() {
	// Connect to a primary and two replicas; writes go to the primary,
	// reads fan out, and the cluster follows a failover automatically.
	cl, err := client.DialCluster([]string{"db1:5477", "db2:5477", "db3:5477"})
	if err != nil {
		fmt.Println("no endpoint reachable")
		return
	}
	defer cl.Close()
	if _, err := cl.Exec(`insert into emp values ('jane', 1, 60000, 0)`); err != nil {
		fmt.Println(err)
	}
	rows, err := cl.Query(`select name from emp`) // sees jane: read-your-writes
	_, _ = rows, err
	// Output: no endpoint reachable
}
