package main

import (
	"fmt"
	"time"

	"sopr/internal/gen"
	"sopr/internal/oracle"
)

// f1 measures the differential semantics harness itself: how many
// generated workloads per second the engine-vs-oracle comparison sustains
// (every transaction is executed by up to three engine configurations and
// the reference interpreter, with dump-reload, WAL-replay and permutation
// checks on top), and what behavior mix the generator actually produces —
// the coverage numbers that justify trusting a green differential run.
func f1() {
	header("F1", "differential oracle harness: throughput and coverage (testing apparatus)")
	const n = 500
	var txns, firings, rollbacks, runaways, committed, ordIndep, diverged int
	t0 := time.Now()
	for seed := int64(0); seed < n; seed++ {
		w := gen.Generate(seed)
		if w.OrderIndependent {
			ordIndep++
		}
		if d := oracle.RunDiff(w, oracle.Options{Salt: uint64(seed)}); d != nil {
			diverged++
			fmt.Printf("  DIVERGENCE seed %d: %v\n", seed, d)
		}
		odb := oracle.New(w, oracle.Chooser(uint64(seed)))
		for _, txn := range w.Txns {
			txns++
			out := odb.RunTxn(txn)
			firings += len(out.Firings)
			switch {
			case out.Kind == oracle.RolledBack:
				rollbacks++
			case out.Kind == oracle.Errored && out.Runaway:
				runaways++
			case out.Kind == oracle.Committed:
				committed++
			}
		}
		benchSink = odb.State()
	}
	el := time.Since(t0)
	fmt.Printf("workloads          %8d (%.0f/sec, %v total)\n", n, float64(n)/el.Seconds(), el.Round(time.Millisecond))
	fmt.Printf("transactions       %8d (%d committed, %d rolled back, %d runaway-capped)\n",
		txns, committed, rollbacks, runaways)
	fmt.Printf("rule firings       %8d\n", firings)
	fmt.Printf("order-independent  %8d workloads (permutation-checked)\n", ordIndep)
	fmt.Printf("divergences        %8d\n", diverged)
}
