// Command soprbench regenerates the experiment tables recorded in
// EXPERIMENTS.md. The paper (SIGMOD 1990) is a semantics paper with no
// measurement tables; these experiments validate its worked examples (E1)
// and quantify its qualitative performance claims (B1–B8). See DESIGN.md §5
// for the experiment index.
//
//	go run ./cmd/soprbench            # run everything
//	go run ./cmd/soprbench -exp B1    # one experiment
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sopr"
	"sopr/client"
	"sopr/internal/catalog"
	"sopr/internal/engine"
	"sopr/internal/exec"
	"sopr/internal/instance"
	"sopr/internal/rules"
	"sopr/internal/server"
	"sopr/internal/sqlast"
	"sopr/internal/sqlparse"
	sstorage "sopr/internal/storage"
	"sopr/internal/value"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: E1, E5, B1..B14, B13b, S1..S5, S1b, F1, or all")
	flag.IntVar(&s2TotalOps, "s2ops", 2000, "total read operations per S2 table cell")
	flag.IntVar(&s3TotalOps, "s3ops", 2000, "total read operations per S3 table row")
	flag.IntVar(&s4TotalOps, "s4ops", 2000, "total read operations per S4 table row")
	flag.IntVar(&s5Txns, "s5txns", 300, "committed transactions per S5 table row")
	flag.Parse()
	runs := map[string]func(){
		"E1": e1, "E5": e5, "B1": b1, "B2": b2, "B3": b3, "B4": b4,
		"B5": b5, "B6": b6, "B7": b7, "B8": b8, "B9": b9, "B10": b10,
		"B12": b12, "B13": b13, "B13B": b13b, "B14": b14, "S1": s1, "S1B": s1b,
		"S2": s2, "S3": s3, "S4": s4, "S5": s5, "F1": f1,
	}
	if *exp != "all" {
		fn, ok := runs[strings.ToUpper(*exp)]
		if !ok {
			fmt.Println("unknown experiment; use E1, B1..B14, B13b, S1..S5, S1b, F1 or all")
			return
		}
		fn()
		return
	}
	var keys []string
	for k := range runs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		runs[k]()
		fmt.Println()
	}
}

// benchSink receives each measured computation's result so the compiler
// cannot prove the work dead and elide it (a blank assignment carries no
// such guarantee).
var benchSink any

// timeIt returns the median wall time of reps runs of fn.
func timeIt(reps int, fn func()) time.Duration {
	ds := make([]time.Duration, reps)
	for i := range ds {
		t0 := time.Now()
		fn()
		ds[i] = time.Since(t0)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

func header(name, desc string) {
	fmt.Printf("== %s — %s ==\n", name, desc)
}

// ---------------------------------------------------------------------------

// e1 replays the Example 4.3 interaction and prints the firing sequence
// next to the paper's narration.
func e1() {
	header("E1", "Example 4.3 rule-interaction trace (paper §4.5)")
	db := sopr.Open()
	db.MustExec(`
		create table emp (name varchar, emp_no int not null, salary float, dept_no int);
		create table dept (dept_no int, mgr_no int)`)
	db.MustExec(`
		create rule mgr_cascade when deleted from emp
		then delete from emp where dept_no in
		     (select dept_no from dept where mgr_no in (select emp_no from deleted emp));
		     delete from dept where mgr_no in (select emp_no from deleted emp)
		end;
		create rule salary_watch when updated emp.salary
		if (select avg(salary) from new updated emp.salary) > 50000
		then delete from emp
		     where emp_no in (select emp_no from new updated emp.salary) and salary > 80000
		end;
		create rule priority salary_watch before mgr_cascade`)
	db.MustExec(`
		insert into emp values ('jane',1,60000,0), ('mary',2,70000,1), ('jim',3,55000,1),
			('bill',4,25000,2), ('sam',5,40000,3), ('sue',6,45000,3);
		insert into dept values (1,1), (2,2), (3,3)`)
	res := db.MustExec(`
		delete from emp where name = 'jane';
		update emp set salary = 30000 where name = 'bill';
		update emp set salary = 85000 where name = 'mary'`)

	paper := []string{
		"R2 deletes Mary (updated set {bill, mary}, avg > 50K)",
		"R1 deletes Jim, Bill + depts 1,2 (deleted set {jane, mary})",
		"R1 deletes Sam, Sue + dept 3 (deleted set {jim, bill})",
		"R1 deletes nothing (deleted set {sam, sue}); processing stops",
	}
	fmt.Printf("%-4s %-14s %-22s %s\n", "#", "rule", "effect", "paper narration")
	for i, f := range res.Firings {
		narr := ""
		if i < len(paper) {
			narr = paper[i]
		}
		fmt.Printf("%-4d %-14s %-22s %s\n", i+1, f.Rule, f.Effect, narr)
	}
	emp := db.MustQuery(`select count(*) from emp`).Data[0][0]
	dept := db.MustQuery(`select count(*) from dept`).Data[0][0]
	fmt.Printf("final: emp=%v dept=%v (paper: both empty)\n", emp, dept)
}

// ---------------------------------------------------------------------------

func insertScript(base, k int) string {
	var b strings.Builder
	b.WriteString("insert into t values ")
	for i := 0; i < k; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %d)", base+i, (base+i)%97)
	}
	return b.String()
}

const b1Rule = `
	create rule log when inserted into t
	then insert into audit (select id, v from inserted t)
	end`

// b1 compares set-oriented vs instance-oriented rule execution.
func b1() {
	header("B1", "set-oriented vs instance-oriented rules (paper §1 claim)")
	fmt.Printf("%-8s %14s %14s %8s\n", "batch", "set µs/txn", "inst µs/txn", "ratio")
	for _, k := range []int{1, 4, 16, 64, 256, 1024, 2048} {
		db := sopr.Open()
		db.MustExec(`create table t (id int, v int); create table audit (id int, v int)`)
		db.MustExec(b1Rule)
		base := 0
		set := timeIt(7, func() { db.MustExec(insertScript(base, k)); base += k })

		ie := instance.New()
		must(ie.Exec(`create table t (id int, v int); create table audit (id int, v int)`))
		must(ie.Exec(b1Rule))
		base = 0
		inst := timeIt(7, func() { must(ie.Exec(insertScript(base, k))); base += k })

		fmt.Printf("%-8d %14.1f %14.1f %8.2f\n", k,
			float64(set.Microseconds()), float64(inst.Microseconds()),
			float64(inst)/float64(set))
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// ---------------------------------------------------------------------------

func opStream(n int) []*exec.OpResult {
	var live []sstorage.Handle
	next := sstorage.Handle(0)
	row := sstorage.Row{}
	ops := make([]*exec.OpResult, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case len(live) == 0 || i%3 == 0:
			next++
			live = append(live, next)
			ops = append(ops, &exec.OpResult{Table: "t", Inserted: []sstorage.Handle{next}})
		case i%3 == 1:
			h := live[i%len(live)]
			ops = append(ops, &exec.OpResult{Table: "t", Updated: []exec.UpdatedTuple{{Handle: h, OldRow: row, Cols: []int{0}}}})
		default:
			j := i % len(live)
			h := live[j]
			live = append(live[:j], live[j+1:]...)
			ops = append(ops, &exec.OpResult{Table: "t", Deleted: []exec.DeletedTuple{{Handle: h, OldRow: row}}})
		}
	}
	return ops
}

func b2() {
	header("B2", "transition effect composition cost (Definition 2.1)")
	fmt.Printf("%-10s %12s %14s\n", "ops/block", "µs/block", "ns/op")
	for _, n := range []int{10, 100, 1000, 10000} {
		ops := opStream(n)
		d := timeIt(9, func() {
			eff := rules.NewEffect()
			for _, op := range ops {
				eff.AddOp(op)
			}
		})
		fmt.Printf("%-10d %12.1f %14.1f\n", n,
			float64(d.Microseconds()), float64(d.Nanoseconds())/float64(n))
	}
}

// ---------------------------------------------------------------------------

func b3() {
	header("B3", "rule selection overhead vs number of defined rules (§4.4)")
	fmt.Printf("%-8s %14s\n", "rules", "µs/txn")
	for _, n := range []int{1, 10, 100, 1000} {
		db := sopr.Open()
		db.MustExec(`create table t (id int, v int); create table other (id int)`)
		for i := 0; i < n-1; i++ {
			db.MustExec(fmt.Sprintf(`create rule r%04d when inserted into other then delete from other end`, i))
		}
		db.MustExec(`create rule hit when inserted into t then delete from other end`)
		i := 0
		d := timeIt(9, func() { db.MustExec(fmt.Sprintf(`insert into t values (%d, 0)`, i)); i++ })
		fmt.Printf("%-8d %14.1f\n", n, float64(d.Microseconds()))
	}
}

// ---------------------------------------------------------------------------

func b4() {
	header("B4", "Example 4.1 recursive cascade vs management-chain depth")
	fmt.Printf("%-8s %14s %12s\n", "depth", "µs/cascade", "firings")
	for _, depth := range []int{2, 4, 8, 16, 32, 64} {
		var firings int
		d := timeIt(5, func() {
			db := sopr.Open()
			db.MustExec(`
				create table emp (name varchar, emp_no int, salary float, dept_no int);
				create table dept (dept_no int, mgr_no int)`)
			db.MustExec(`
				create rule mgr_cascade when deleted from emp
				then delete from emp where dept_no in
				     (select dept_no from dept where mgr_no in (select emp_no from deleted emp));
				     delete from dept where mgr_no in (select emp_no from deleted emp)
				end`)
			var emps, depts strings.Builder
			emps.WriteString("insert into emp values ('m1', 1, 0, 0)")
			depts.WriteString("insert into dept values ")
			for d := 1; d <= depth; d++ {
				fmt.Fprintf(&depts, "(%d, %d)", d, d)
				if d < depth {
					depts.WriteString(", ")
				}
				fmt.Fprintf(&emps, ", ('m%d', %d, 0, %d)", d+1, d+1, d)
			}
			db.MustExec(emps.String())
			db.MustExec(depts.String())
			res := db.MustExec(`delete from emp where emp_no = 1`)
			firings = len(res.Firings)
		})
		fmt.Printf("%-8d %14.1f %12d\n", depth, float64(d.Microseconds()), firings)
	}
	fmt.Println("(setup included; firings = depth+1: one per level plus the empty fixpoint firing)")
}

// ---------------------------------------------------------------------------

func b5() {
	header("B5", "transition-table materialization vs update-set size (§3)")
	fmt.Printf("%-10s %14s\n", "updated", "µs/txn")
	for _, k := range []int{10, 100, 1000, 5000} {
		db := sopr.Open()
		db.MustExec(`create table emp (name varchar, emp_no int, salary float, dept_no int)`)
		var ins strings.Builder
		ins.WriteString("insert into emp values ")
		for i := 0; i < k; i++ {
			if i > 0 {
				ins.WriteString(", ")
			}
			fmt.Fprintf(&ins, "('e%d', %d, %d, 1)", i, i, 1000+i)
		}
		db.MustExec(ins.String())
		db.MustExec(`
			create rule watch when updated emp.salary
			if (select sum(salary) from new updated emp.salary) <
			   (select sum(salary) from old updated emp.salary)
			then delete from emp where emp_no < 0
			end`)
		d := timeIt(5, func() { db.MustExec(`update emp set salary = salary + 1`) })
		fmt.Printf("%-10d %14.1f\n", k, float64(d.Microseconds()))
	}
}

// ---------------------------------------------------------------------------

func b6() {
	header("B6", "query engine substrate (scan / join / aggregate)")
	db := sopr.Open()
	db.MustExec(`create table emp (name varchar, emp_no int, salary float, dept_no int);
		create table dept (dept_no int, mgr_no int)`)
	var ins strings.Builder
	const rows = 10000
	for i := 0; i < rows; i++ {
		if i%500 == 0 {
			if i > 0 {
				db.MustExec(ins.String())
			}
			ins.Reset()
			ins.WriteString("insert into emp values ")
		} else {
			ins.WriteString(", ")
		}
		fmt.Fprintf(&ins, "('e%d', %d, %d, %d)", i, i, i%5000, i%16)
	}
	db.MustExec(ins.String())
	var dins strings.Builder
	dins.WriteString("insert into dept values ")
	for d := 0; d < 16; d++ {
		if d > 0 {
			dins.WriteString(", ")
		}
		fmt.Fprintf(&dins, "(%d, %d)", d, d)
	}
	db.MustExec(dins.String())

	cases := []struct{ label, q string }{
		{"scan+filter 10k rows", `select name from emp where salary > 2500 and dept_no = 3`},
		{"join 10k x 16", `select e.name from emp e, dept d where e.dept_no = d.dept_no and d.mgr_no = 3`},
		{"group-by 10k rows", `select dept_no, avg(salary), count(*) from emp group by dept_no having count(*) > 10`},
		{"correlated subquery 100", `select name from emp e1 where emp_no < 100 and salary > 2 * (select avg(salary) from emp e2 where e2.dept_no = e1.dept_no and e2.emp_no < 100)`},
	}
	fmt.Printf("%-28s %14s\n", "query", "ms/query")
	for _, c := range cases {
		d := timeIt(5, func() { db.MustQuery(c.q) })
		fmt.Printf("%-28s %14.2f\n", c.label, float64(d.Microseconds())/1000)
	}
}

// ---------------------------------------------------------------------------

func b7() {
	header("B7", "Figure 1 incremental trans-info vs naive recomposition")
	fmt.Printf("%-13s %16s %14s %8s\n", "transitions", "incremental µs", "naive µs", "ratio")
	for _, n := range []int{10, 50, 100, 400} {
		// Pre-build n transition effects of 8 ops each.
		stream := make([]*rules.Effect, n)
		ops := opStream(n * 8)
		for i := range stream {
			e := rules.NewEffect()
			for _, op := range ops[i*8 : (i+1)*8] {
				e.AddOp(op)
			}
			stream[i] = e
		}
		inc := timeIt(7, func() {
			acc := rules.NewEffect()
			for _, e := range stream {
				acc.Apply(e)
				benchSink = acc.IsEmpty()
			}
		})
		naive := timeIt(7, func() {
			for j := 1; j <= len(stream); j++ {
				acc := rules.NewEffect()
				for _, e := range stream[:j] {
					acc.Apply(e)
				}
				benchSink = acc.IsEmpty()
			}
		})
		fmt.Printf("%-13d %16.1f %14.1f %8.1f\n", n,
			float64(inc.Microseconds()), float64(naive.Microseconds()),
			float64(naive)/float64(inc))
	}
}

// ---------------------------------------------------------------------------

func b8() {
	header("B8", "compiled integrity-rule overhead (CW90 facility, §6)")
	mk := func(withConstraints bool) *sopr.DB {
		db := sopr.Open()
		db.MustExec(`
			create table dept (dept_no int, mgr_no int);
			create table emp (name varchar, emp_no int, salary float, dept_no int)`)
		db.MustExec(`insert into dept values (1,1), (2,2), (3,3), (4,4)`)
		if withConstraints {
			must2(db.AddConstraint(sopr.ForeignKey("fk", "emp", "dept_no", "dept", "dept_no", sopr.CascadeDelete)))
			must2(db.AddConstraint(sopr.Check("pay", "emp", "salary >= 0")))
		}
		return db
	}
	fmt.Printf("%-16s %14s\n", "configuration", "µs/insert")
	for _, w := range []bool{false, true} {
		db := mk(w)
		i := 0
		d := timeIt(9, func() {
			db.MustExec(fmt.Sprintf(`insert into emp values ('e', %d, 100, %d)`, i, i%4+1))
			i++
		})
		label := "unconstrained"
		if w {
			label = "constrained"
		}
		fmt.Printf("%-16s %14.1f\n", label, float64(d.Microseconds()))
	}
}

func must2(err error) {
	if err != nil {
		panic(err)
	}
}

// ---------------------------------------------------------------------------

func b9() {
	header("B9", "ablation: hash equi-join fast path vs nested loops")
	fmt.Printf("%-8s %14s %14s %10s\n", "rows", "hash ms", "nested ms", "speedup")
	for _, n := range []int{100, 500, 1000, 2000} {
		st := sstorage.New()
		for _, name := range []string{"l", "r"} {
			tab, err := catalog.NewTable(name, []catalog.Column{
				{Name: "k", Type: value.KindInt},
				{Name: "v", Type: value.KindInt},
			})
			must(err)
			must(st.CreateTable(tab))
			for i := 0; i < n; i++ {
				_, err := st.Insert(name, sstorage.Row{value.NewInt(int64(i)), value.NewInt(int64(i % 7))})
				must(err)
			}
		}
		stmt, err := sqlparse.ParseStatement(`select count(*) from l, r where l.k = r.k and l.v > 2`)
		must(err)
		sel := stmt.(*sqlast.Select)
		hashEnv := &exec.Env{Store: st}
		nestedEnv := &exec.Env{Store: st, NoHashJoin: true}
		hash := timeIt(5, func() { _, err := hashEnv.Query(sel); must(err) })
		nested := timeIt(3, func() { _, err := nestedEnv.Query(sel); must(err) })
		fmt.Printf("%-8d %14.2f %14.2f %10.1f\n", n,
			float64(hash.Microseconds())/1000, float64(nested.Microseconds())/1000,
			float64(nested)/float64(hash))
	}
}

// ---------------------------------------------------------------------------

func b10() {
	header("B10", "ablation: per-rule trans-info filtering (Fig. 1 note)")
	fmt.Printf("%-24s %14s %12s %8s\n", "rules x batch", "filtered ms", "full ms", "speedup")
	for _, spectators := range []int{10, 100, 400} {
		for _, k := range []int{64, 512} {
			run := func(full bool) time.Duration {
				eng := engine.New(engine.Config{FullTransInfo: full})
				exec1 := func(s string) {
					_, err := eng.Exec(s)
					must(err)
				}
				exec1(`create table t (id int, v int); create table sink (id int)`)
				for i := 0; i < spectators; i++ {
					exec1(fmt.Sprintf(`create table w%04d (x int)`, i))
					exec1(fmt.Sprintf(`create rule spect%04d when inserted into w%04d then delete from w%04d end`, i, i, i))
				}
				exec1(`create rule chase when inserted into t
					then insert into sink (select id from inserted t where id % 2 = 0)
					end`)
				base := 0
				return timeIt(5, func() { exec1(insertScript(base, k)); base += k })
			}
			filtered := run(false)
			full := run(true)
			fmt.Printf("%-24s %14.2f %12.2f %8.1f\n",
				fmt.Sprintf("%d rules, %d rows", spectators, k),
				float64(filtered.Microseconds())/1000, float64(full.Microseconds())/1000,
				float64(full)/float64(filtered))
		}
	}
}

// ---------------------------------------------------------------------------

// b12 measures the secondary hash index access path (CREATE INDEX) against
// the heap-scan fallback: selective equality lookups on a 10k-row table,
// and a rule cascade whose action selects children by parent id through an
// IN-subselect. Both configurations run identical statements; the only
// difference is whether indexes exist.
func b12() {
	header("B12", "secondary hash index vs heap scan (CREATE INDEX)")

	const rows = 10000
	mkFlat := func(indexed bool) *sopr.DB {
		db := sopr.Open()
		db.MustExec(`create table t (id int, v int)`)
		var ins strings.Builder
		for i := 0; i < rows; i++ {
			if i%500 == 0 {
				if i > 0 {
					db.MustExec(ins.String())
				}
				ins.Reset()
				ins.WriteString("insert into t values ")
			} else {
				ins.WriteString(", ")
			}
			fmt.Fprintf(&ins, "(%d, %d)", i, i%97)
		}
		db.MustExec(ins.String())
		if indexed {
			db.MustExec(`create index t_id on t (id)`)
		}
		return db
	}
	fmt.Printf("%-30s %12s %12s %8s\n", "workload", "indexed µs", "scan µs", "speedup")
	withIdx, noIdx := mkFlat(true), mkFlat(false)
	probe := func(db *sopr.DB) func() {
		k := 0
		return func() {
			k = (k*7 + 13) % rows
			benchSink = db.MustQuery(fmt.Sprintf(`select v from t where id = %d`, k))
		}
	}
	pi := timeIt(9, probe(withIdx))
	ps := timeIt(9, probe(noIdx))
	fmt.Printf("%-30s %12.1f %12.1f %8.1f\n", "point lookup, 10k rows",
		float64(pi.Microseconds()), float64(ps.Microseconds()),
		float64(ps)/float64(pi))

	// Rule cascade: deleting one parent fires a rule that removes its
	// children via `pid in (select id from deleted parent)`. The indexed
	// configuration serves both the outer DELETE's WHERE and the rule's
	// child lookup from hash indexes.
	const parents, fanout = 1000, 10
	mkCascade := func(indexed bool) *sopr.DB {
		db := sopr.Open()
		db.MustExec(`create table parent (id int, tag int);
			create table child (id int, pid int)`)
		var ins strings.Builder
		ins.WriteString("insert into parent values ")
		for i := 0; i < parents; i++ {
			if i > 0 {
				ins.WriteString(", ")
			}
			fmt.Fprintf(&ins, "(%d, %d)", i, i%7)
		}
		db.MustExec(ins.String())
		for i := 0; i < parents*fanout; i++ {
			if i%500 == 0 {
				if i > 0 {
					db.MustExec(ins.String())
				}
				ins.Reset()
				ins.WriteString("insert into child values ")
			} else {
				ins.WriteString(", ")
			}
			fmt.Fprintf(&ins, "(%d, %d)", i, i%parents)
		}
		db.MustExec(ins.String())
		db.MustExec(`create rule cascade when deleted from parent
			then delete from child where pid in (select id from deleted parent)
			end`)
		if indexed {
			db.MustExec(`create index parent_id on parent (id);
				create index child_pid on child (pid)`)
		}
		return db
	}
	del := func(db *sopr.DB) func() {
		k := 0
		return func() {
			db.MustExec(fmt.Sprintf(`delete from parent where id = %d`, k))
			k++
		}
	}
	ci := timeIt(9, del(mkCascade(true)))
	cs := timeIt(9, del(mkCascade(false)))
	fmt.Printf("%-30s %12.1f %12.1f %8.1f\n", "delete cascade rule, 10x1k",
		float64(ci.Microseconds()), float64(cs.Microseconds()),
		float64(cs)/float64(ci))
}

// b13 measures write-ahead-log durability cost: committed-transaction
// throughput under each fsync policy, against the in-memory engine as the
// ceiling. Each transaction is one single-row INSERT that fires an update
// rule, so every commit logs a rule-composed net effect (Definition 2.1).
// The log lives on the real filesystem — fsync latency IS the experiment.
func b13() {
	header("B13", "fsync policy vs committed-txn throughput (WAL)")

	const txns = 300
	schema := `create table t (id int, v int);
		create rule bump when inserted into t
		then update t set v = v + 1 where id in (select id from inserted t)
		end`
	workload := func(db interface{ MustExec(string) *sopr.Result }) func() {
		i := 0
		return func() {
			for j := 0; j < txns; j++ {
				db.MustExec(fmt.Sprintf(`insert into t values (%d, 0)`, i))
				i++
			}
		}
	}

	type cfg struct {
		name string
		open func(dir string) *sopr.DB
	}
	cfgs := []cfg{
		{"memory (no log)", func(string) *sopr.DB { return sopr.Open() }},
		{"fsync=never", func(dir string) *sopr.DB {
			db, err := sopr.OpenDurable(dir, sopr.WithFsync(sopr.FsyncNever))
			must(err)
			return db
		}},
		{"fsync=interval (100ms)", func(dir string) *sopr.DB {
			db, err := sopr.OpenDurable(dir, sopr.WithFsync(sopr.FsyncInterval))
			must(err)
			return db
		}},
		{"fsync=always", func(dir string) *sopr.DB {
			db, err := sopr.OpenDurable(dir, sopr.WithFsync(sopr.FsyncAlways))
			must(err)
			return db
		}},
	}
	fmt.Printf("%-24s %12s %12s\n", "policy", "txn/s", "µs/txn")
	for _, c := range cfgs {
		dir, err := os.MkdirTemp("", "soprbench-b13-*")
		must(err)
		db := c.open(dir)
		db.MustExec(schema)
		d := timeIt(3, workload(db))
		must(db.Close())
		must(os.RemoveAll(dir))
		perTxn := float64(d.Microseconds()) / txns
		fmt.Printf("%-24s %12.0f %12.1f\n", c.name, 1e6/perTxn, perTxn)
	}
	fmt.Println("\n(fsync=always pays one fsync per commit; interval amortizes them at a")
	fmt.Println(" bounded-loss window; never leaves durability to the OS page cache)")
}

// b13b measures group commit: committed-transaction throughput at
// fsync=always as concurrent committers grow. B13 is one committer paying
// one fsync per commit; here overlapping committers park on the commit
// queue and the group leader's single fsync acknowledges every queued
// transaction, so throughput should climb with concurrency while
// txns/sync — transactions acknowledged per physical fsync — rises above
// 1. Each transaction is one single-row UPDATE of the committer's own row
// that fires a counter-bump rule; both mutated tables stay at a constant
// size, so per-transaction engine work is constant and the fsync is the
// bottleneck being amortized. (A growing table would bury the effect:
// every commit publishes a snapshot, so the next mutation's copy-on-write
// table clone is O(rows).) The log lives on the real filesystem, as in
// B13.
func b13b() {
	header("B13b", "group commit: fsync=always txn throughput vs concurrent committers")
	const txns = 200 // committed transactions per committer
	fmt.Printf("%-12s %12s %12s %12s %11s %8s\n",
		"committers", "txns", "txn/s", "µs/txn", "txns/sync", "vs 1")
	var base float64
	for _, nw := range []int{1, 2, 4, 8, 16} {
		dir, err := os.MkdirTemp("", "soprbench-b13b-*")
		must(err)
		db, err := sopr.OpenDurable(dir, sopr.WithFsync(sopr.FsyncAlways))
		must(err)
		sdb := sopr.Synchronized(db)
		sdb.MustExec(`create table t (id int, v int); create table agg (n int);
			create rule tally when updated t.v
			then update agg set n = n + 1
			end`)
		for w := 0; w < nw; w++ {
			sdb.MustExec(fmt.Sprintf(`insert into t values (%d, 0)`, w))
		}
		sdb.MustExec(`insert into agg values (0)`)
		var wg sync.WaitGroup
		t0 := time.Now()
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				stmt := fmt.Sprintf(`update t set v = v + 1 where id = %d`, w)
				for j := 0; j < txns; j++ {
					sdb.MustExec(stmt)
				}
			}(w)
		}
		wg.Wait()
		d := time.Since(t0)
		st := sdb.Stats()
		must(sdb.Close())
		must(os.RemoveAll(dir))
		total := nw * txns
		perTxn := float64(d.Microseconds()) / float64(total)
		txnSec := 1e6 / perTxn
		if nw == 1 {
			base = txnSec
		}
		fmt.Printf("%-12d %12d %12.0f %12.1f %11.2f %7.1fx\n",
			nw, total, txnSec, perTxn, st.TxnsPerSync, txnSec/base)
	}
	fmt.Println("\n(committers that overlap share the leader's fsync; txns/sync is the")
	fmt.Println(" amortization factor — 1.00 means every commit paid its own fsync)")
}

// ---------------------------------------------------------------------------

// b14 measures the cost-based join planner on multi-join rule cascades:
// two chained rules whose conditions each join a transition table against
// two base tables, with the FROM clause deliberately listing the largest
// table first. With the planner off the engine evaluates the condition in
// FROM order — a three-way nested loop over big × mid × inserted. The
// planner reorders the join to start from the (tiny) transition table and
// hash-joins outward, so the per-consideration cost collapses from
// O(|big|·|mid|) to O(|big|+|mid|). The chosen plan is printed via EXPLAIN
// so the mechanism is visible next to the numbers.
func b14() {
	header("B14", "cost-based join planner vs naive nested loops (rule-condition joins)")
	load := func(eng *engine.Engine, table string, n, mod int) {
		var b strings.Builder
		fmt.Fprintf(&b, "insert into %s values ", table)
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%d, %d)", i, i%mod)
		}
		_, err := eng.Exec(b.String())
		must(err)
	}
	setup := func(noPlanner bool, n int) *engine.Engine {
		eng := engine.New(engine.Config{NoPlanner: noPlanner})
		exec1 := func(s string) {
			_, err := eng.Exec(s)
			must(err)
		}
		exec1(`create table ev (k int, v int); create table big (k int, j int);
			create table mid (j int, w int); create table sink (k int, v int);
			create table sink2 (k int, v int)`)
		load(eng, "big", n, 97)
		load(eng, "mid", n/10, 97)
		exec1(`create rule stage1 when inserted into ev
			if exists (select * from big b, mid m, inserted ev e
			           where b.k = e.k and b.j = m.j)
			then insert into sink (select k, v from inserted ev) end`)
		exec1(`create rule stage2 when inserted into sink
			if exists (select * from big b, mid m, inserted sink s
			           where b.k = s.k and b.j = m.j)
			then insert into sink2 (select k, v from inserted sink) end`)
		return eng
	}
	fmt.Printf("%-10s %14s %14s %10s\n", "big rows", "planned ms", "naive ms", "speedup")
	for _, n := range []int{500, 1000, 2000} {
		run := func(noPlanner bool) time.Duration {
			eng := setup(noPlanner, n)
			base := 0
			reps := 5
			if noPlanner {
				reps = 3
			}
			return timeIt(reps, func() {
				_, err := eng.Exec(fmt.Sprintf(
					"insert into ev values (%d, 0), (%d, 0), (%d, 0), (%d, 0)",
					base%n, (base+1)%n, (base+2)%n, (base+3)%n))
				must(err)
				base += 4
			})
		}
		planned := run(false)
		naive := run(true)
		fmt.Printf("%-10d %14.2f %14.2f %10.1f\n", n,
			float64(planned.Microseconds())/1000, float64(naive.Microseconds())/1000,
			float64(naive)/float64(planned))
	}
	eng := setup(false, 2000)
	res, err := eng.QueryString(`explain select * from big b, mid m, inserted ev e where b.k = e.k and b.j = m.j`)
	must(err)
	fmt.Println("chosen plan for the stage-1 condition join (2000 base rows):")
	fmt.Print(res.String())
}

// s1 measures the soprd network front-end: sustained operation throughput
// as the number of concurrent clients grows. Every operation is one
// single-row insert transaction that fires the B1 audit rule, so each
// request runs the full stack: wire framing, the serialized engine stream,
// rule processing, response framing. Because the engine is one serialized
// stream (paper §2.1), throughput should saturate once enough clients keep
// it busy; beyond that, added clients only add queueing.
func s1() {
	header("S1", "soprd server throughput vs concurrent clients")
	fmt.Printf("%-10s %12s %12s %12s\n", "clients", "ops", "ops/sec", "µs/op")
	for _, nc := range []int{1, 2, 4, 8, 16, 32} {
		ops, elapsed := s1run(nc, 4096)
		opsSec := float64(ops) / elapsed.Seconds()
		fmt.Printf("%-10d %12d %12.0f %12.1f\n", nc, ops,
			opsSec, float64(elapsed.Microseconds())/float64(ops))
	}
	fmt.Println("(one serialized engine stream; ops/sec should plateau once clients cover the round-trip latency)")
}

// s1run starts a server on a loopback port, hammers it with totalOps
// single-row insert transactions spread over nc concurrent clients, and
// reports the operations completed and the wall time taken.
func s1run(nc, totalOps int) (int, time.Duration) {
	db := sopr.Open()
	db.MustExec(`create table t (id int, v int); create table audit (id int, v int)`)
	db.MustExec(b1Rule)
	srv := server.New(sopr.Synchronized(db), server.Config{})
	ln, err := server.Listen("127.0.0.1:0")
	must(err)
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		must(srv.Shutdown(ctx))
	}()

	per := totalOps / nc
	clients := make([]*client.Client, nc)
	for i := range clients {
		c, err := client.Dial(ln.Addr().String())
		must(err)
		clients[i] = c
		defer c.Close()
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	t0 := time.Now()
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			<-start
			base := i * 1_000_000
			for j := 0; j < per; j++ {
				_, err := c.Exec(fmt.Sprintf(`insert into t values (%d, %d)`, base+j, j%97))
				must(err)
			}
		}(i, c)
	}
	close(start)
	wg.Wait()
	return nc * per, time.Since(t0)
}

// s1b measures set-oriented batch submission: the S1 workload resubmitted
// through MsgExecBatch in blocks of k statements. Each block is one wire
// round trip and ONE operation block — one parse-and-execute engine pass,
// one rule-processing point over the block's net effect, one commit — so
// per-statement cost should fall as k grows until engine work dominates
// framing. The batch=1 row isolates the protocol overhead of the batch
// frame itself against plain Exec.
func s1b() {
	header("S1b", "batch Exec throughput vs batch size (MsgExecBatch)")
	const nc, totalOps = 4, 4096
	ops, elapsed := s1run(nc, totalOps)
	baseSec := float64(ops) / elapsed.Seconds()
	fmt.Printf("%-12s %12s %12s %12s %8s\n", "batch", "ops", "ops/sec", "µs/op", "vs S1")
	fmt.Printf("%-12s %12d %12.0f %12.1f %8s\n", "Exec", ops, baseSec,
		float64(elapsed.Microseconds())/float64(ops), "1.0x")
	for _, k := range []int{1, 4, 8, 32} {
		ops, d := s1brun(nc, k, totalOps)
		opsSec := float64(ops) / d.Seconds()
		fmt.Printf("%-12d %12d %12.0f %12.1f %7.1fx\n", k, ops, opsSec,
			float64(d.Microseconds())/float64(ops), opsSec/baseSec)
	}
	fmt.Println("(each batch is one round trip and one operation block: framing,")
	fmt.Println(" engine dispatch, and rule processing amortize over k statements)")
}

// s1brun is s1run with batching: totalOps single-row inserts spread over
// nc concurrent clients, each client submitting its share as ExecBatch
// blocks of k statements.
func s1brun(nc, k, totalOps int) (int, time.Duration) {
	db := sopr.Open()
	db.MustExec(`create table t (id int, v int); create table audit (id int, v int)`)
	db.MustExec(b1Rule)
	srv := server.New(sopr.Synchronized(db), server.Config{})
	ln, err := server.Listen("127.0.0.1:0")
	must(err)
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		must(srv.Shutdown(ctx))
	}()

	per := totalOps / nc / k * k // whole blocks per client
	clients := make([]*client.Client, nc)
	for i := range clients {
		c, err := client.Dial(ln.Addr().String())
		must(err)
		clients[i] = c
		defer c.Close()
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	t0 := time.Now()
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			<-start
			base := i * 1_000_000
			for j := 0; j < per; j += k {
				stmts := make([]string, k)
				for s := range stmts {
					stmts[s] = fmt.Sprintf(`insert into t values (%d, %d)`, base+j+s, (j+s)%97)
				}
				_, err := c.ExecBatch(stmts)
				must(err)
			}
		}(i, c)
	}
	close(start)
	wg.Wait()
	return nc * per, time.Since(t0)
}

// ---------------------------------------------------------------------------

// s2TotalOps is the number of read operations measured per S2 table cell
// (the -s2ops flag; CI smoke runs shrink it).
var s2TotalOps = 2000

// s2 measures the lock-free read path: aggregate query throughput as
// reader goroutines grow, with and without a concurrent writer. Queries
// acquire nothing — they run against the published MVCC snapshot (one
// atomic pointer load); they perform no transition and trigger no rules,
// so nothing in the paper's §2.1 single-stream model requires them to
// serialize with anything — while the writer's Exec takes the write
// mutex. Each read is a filtered COUNT over a 4k-row heap scan (no index
// on v), so per-operation work dominates snapshot-load overhead; the
// writer runs rule-firing insert+delete transactions that keep the
// scanned table at a constant size. On a multi-core host read-only
// throughput scales with readers until cores run out; on a single core
// the curve is flat (time-slicing, no parallelism) and the interesting
// number is that added readers cost nothing. S1 is the historical
// contrast: before reads left the write stream, queries funneled through
// one mutex and the plateau was single-core throughput no matter the
// client count; S3 compares this snapshot path against the intermediate
// shared-lock design head to head.
func s2() {
	header("S2", "concurrent read throughput vs reader goroutines (snapshot reads)")
	db := sopr.Open()
	db.MustExec(`create table t (id int, v int); create table audit (id int, v int)`)
	db.MustExec(b1Rule)
	var ins strings.Builder
	const rows = 4000
	for i := 0; i < rows; i++ {
		if i%500 == 0 {
			if i > 0 {
				db.MustExec(ins.String())
			}
			ins.Reset()
			ins.WriteString("insert into t values ")
		} else {
			ins.WriteString(", ")
		}
		fmt.Fprintf(&ins, "(%d, %d)", i, i%97)
	}
	db.MustExec(ins.String())
	sdb := sopr.Synchronized(db)

	fmt.Printf("%-9s %-12s %12s %12s %12s\n", "readers", "writer", "reads/sec", "µs/read", "writes/sec")
	var base float64
	for _, withWriter := range []bool{false, true} {
		for _, nr := range []int{1, 2, 4, 8} {
			elapsed, writes := s2run(sdb, nr, s2TotalOps, withWriter)
			total := (s2TotalOps / nr) * nr
			rps := float64(total) / elapsed.Seconds()
			wlabel := "none"
			wps := "-"
			if withWriter {
				wlabel = "1 (busy)"
				wps = fmt.Sprintf("%12.0f", float64(writes)/elapsed.Seconds())
			} else if nr == 1 {
				base = rps
			}
			fmt.Printf("%-9d %-12s %12.0f %12.1f %12s\n", nr, wlabel,
				rps, float64(elapsed.Microseconds())/float64(total), wps)
		}
	}
	if base > 0 {
		fmt.Printf("(GOMAXPROCS=%d; read-only scaling is bounded by cores — expect ~min(readers, cores)× the 1-reader row)\n",
			runtime.GOMAXPROCS(0))
	}
}

// s2run drives nr reader goroutines through total/nr queries each (plus,
// optionally, one writer goroutine looping rule-firing transactions until
// the readers finish) and returns the readers' wall time and the number
// of write transactions that committed meanwhile.
func s2run(sdb *sopr.SynchronizedDB, nr, total int, withWriter bool) (time.Duration, int64) {
	stop := make(chan struct{})
	var writes atomic.Int64
	var wwg sync.WaitGroup
	if withWriter {
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			i := 1_000_000_000 // ids disjoint from the resident rows
			for {
				select {
				case <-stop:
					return
				default:
				}
				sdb.MustExec(fmt.Sprintf(`insert into t values (%d, %d)`, i, i%97))
				sdb.MustExec(fmt.Sprintf(`delete from t where id = %d`, i))
				writes.Add(2)
				i++
			}
		}()
	}
	per := total / nr
	var wg sync.WaitGroup
	start := make(chan struct{})
	for r := 0; r < nr; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			for j := 0; j < per; j++ {
				benchSink = sdb.MustQuery(fmt.Sprintf(`select count(*) from t where v = %d`, (r*31+j)%97))
			}
		}(r)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)
	close(stop)
	wwg.Wait()
	return elapsed, writes.Load()
}

// ---------------------------------------------------------------------------

// e5 responds to the paper's §4.4 remark that "for a thorough comparison
// and evaluation of rule selection strategies we must consider a number of
// large-scale examples": it runs a workload against an order-processing
// rule program under each selection strategy, with and without declared
// priorities, reporting work done and whether final states agree.
func e5() {
	header("E5", "rule selection strategies on a larger example (§4.4)")

	build := func(strat sopr.Strategy, withPriorities bool) (*sopr.DB, string) {
		db := sopr.Open(sopr.WithStrategy(strat))
		db.MustExec(`
			create table orders (id int, qty int, status varchar);
			create table stock (qty int);
			create table backlog (id int);
			create table audit (id int, note varchar)`)
		db.MustExec(`insert into stock values (100)`)
		// Three interacting rules: fulfiller consumes stock, backlogger
		// files unfulfillable orders, auditor records everything. The
		// fulfiller/backlogger pair conflicts (both react to new orders
		// and their effects depend on order of execution against stock).
		db.MustExec(`
			create rule fulfill when inserted into orders
			then update orders set status = 'ok'
			     where status = 'new' and qty <= (select qty from stock);
			     update stock set qty = qty - (select coalesce(sum(qty), 0) from orders where status = 'ok')
			end;
			create rule backlogger when inserted into orders or updated orders.status
			then insert into backlog
			     (select id from orders o where status = 'new'
			      and qty > (select qty from stock)
			      and id not in (select id from backlog))
			end;
			create rule auditor when inserted into orders
			then insert into audit (select id, 'seen' from inserted orders)
			end`)
		if withPriorities {
			db.MustExec(`create rule priority fulfill before backlogger;
				create rule priority backlogger before auditor`)
		}
		rng := 0
		for i := 0; i < 20; i++ {
			rng = (rng*1103515245 + 12345) % 97
			db.MustExec(fmt.Sprintf(`insert into orders values (%d, %d, 'new')`, i, 5+rng%40))
		}
		dump, err := db.DumpString()
		must(err)
		return db, dump
	}

	strategies := []struct {
		name string
		s    sopr.Strategy
	}{
		{"least-recent", sopr.LeastRecentlyConsidered},
		{"most-recent", sopr.MostRecentlyConsidered},
		{"name-order", sopr.NameOrder},
	}
	for _, withP := range []bool{false, true} {
		label := "no priorities"
		if withP {
			label = "with priorities"
		}
		fmt.Printf("\n%s:\n%-14s %10s %14s %10s\n", label, "strategy", "firings", "considerations", "state")
		var first string
		states := map[string]string{}
		for _, st := range strategies {
			db, dump := build(st.s, withP)
			s := db.Stats()
			if first == "" {
				first = dump
			}
			verdict := "same"
			if dump != first {
				verdict = "DIFFERS"
			}
			states[st.name] = verdict
			fmt.Printf("%-14s %10d %14d %10s\n", st.name, s.RuleFirings, s.RuleConsiderations, verdict)
		}
		benchSink = states
	}
	fmt.Println("\n(the static analyzer conservatively flags the fulfill/backlogger pair;")
	fmt.Println(" this workload happens to be confluent — final states agree — but the")
	fmt.Println(" amount of work differs across strategies until priorities pin the order)")
}
