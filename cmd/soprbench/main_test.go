package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"
)

// capture redirects os.Stdout around fn.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b bytes.Buffer
		b.ReadFrom(r)
		done <- b.String()
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

// TestE1Trace verifies the experiment driver reproduces the Example 4.3
// firing sequence (the assertions mirror TestExample43Trace in the engine
// package; here we check the printed table).
func TestE1Trace(t *testing.T) {
	out := capture(t, e1)
	for _, frag := range []string{
		"salary_watch",
		"[I:0 D:1 U:0 S:0]",
		"[I:0 D:4 U:0 S:0]",
		"[I:0 D:3 U:0 S:0]",
		"[I:0 D:0 U:0 S:0]",
		"final: emp=0 dept=0",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("E1 output missing %q:\n%s", frag, out)
		}
	}
	if n := strings.Count(out, "mgr_cascade"); n != 3 {
		t.Errorf("mgr_cascade fired %d times in the table, want 3", n)
	}
}

func TestTimeIt(t *testing.T) {
	calls := 0
	d := timeIt(5, func() { calls++; time.Sleep(time.Millisecond) })
	if calls != 5 {
		t.Errorf("calls = %d", calls)
	}
	if d < 500*time.Microsecond {
		t.Errorf("median implausibly small: %v", d)
	}
}

// TestB2Runs smoke-tests one fast experiment end to end.
func TestB2Runs(t *testing.T) {
	out := capture(t, b2)
	if !strings.Contains(out, "B2") || !strings.Contains(out, "ns/op") {
		t.Errorf("B2 output: %q", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 5 {
		t.Errorf("B2 table too short:\n%s", out)
	}
}

// TestS1Run smoke-tests the server-throughput harness at small scale: all
// operations must complete and land in the audited table.
func TestS1Run(t *testing.T) {
	ops, elapsed := s1run(4, 64)
	if ops != 64 {
		t.Errorf("ops = %d, want 64", ops)
	}
	if elapsed <= 0 {
		t.Errorf("elapsed = %v", elapsed)
	}
}

func TestOpStreamShape(t *testing.T) {
	ops := opStream(300)
	if len(ops) != 300 {
		t.Fatalf("ops = %d", len(ops))
	}
	var ins, del, upd int
	for _, op := range ops {
		switch {
		case len(op.Inserted) > 0:
			ins++
		case len(op.Deleted) > 0:
			del++
		case len(op.Updated) > 0:
			upd++
		}
	}
	if ins == 0 || del == 0 || upd == 0 {
		t.Errorf("op mix degenerate: ins=%d del=%d upd=%d", ins, del, upd)
	}
}
