// S3: lock-free snapshot reads vs the previous shared-lock design, under
// a hot writer. SynchronizedDB's Query now performs no mutex acquisition
// at all — it loads the published MVCC snapshot with one atomic pointer
// read — while the pre-snapshot design took a sync.RWMutex shared for
// every query and exclusive for every write. The difference only shows
// under write pressure: RLock readers stall whenever the writer holds the
// exclusive lock (and the writer in turn waits out reader batches), so
// shared-lock read throughput collapses toward the writer's duty cycle,
// while snapshot readers never wait on anything and scale with cores.
// This experiment pits both against the same workload: the in-bench
// rwDB wrapper reproduces the old locking verbatim, and the real
// SynchronizedDB provides the snapshot path.
package main

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sopr"
)

// s3TotalOps is the number of read operations measured per S3 table row
// (the -s3ops flag; CI smoke runs shrink it).
var s3TotalOps = 2000

// rwDB reproduces the repository's previous concurrency design: one
// sync.RWMutex over the whole database, shared for queries, exclusive for
// writes. It exists only as the S3 baseline.
type rwDB struct {
	mu sync.RWMutex
	db *sopr.DB
}

func (s *rwDB) Exec(src string) (*sopr.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Exec(src)
}

func (s *rwDB) Query(src string) (*sopr.Rows, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.Query(src)
}

// s3reader abstracts the two read paths so s3run drives them identically.
type s3reader interface {
	Exec(src string) (*sopr.Result, error)
	Query(src string) (*sopr.Rows, error)
}

// sdbAdapter narrows SynchronizedDB to the s3reader shape.
type sdbAdapter struct{ sdb *sopr.SynchronizedDB }

func (a sdbAdapter) Exec(src string) (*sopr.Result, error) { return a.sdb.Exec(src) }
func (a sdbAdapter) Query(src string) (*sopr.Rows, error)  { return a.sdb.Query(src) }

func s3() {
	header("S3", "snapshot reads vs shared-lock reads under a hot writer")
	fmt.Printf("%-9s %-12s %12s %12s %12s\n", "readers", "path", "reads/sec", "µs/read", "writes/sec")
	for _, nr := range []int{1, 2, 4, 8} {
		for _, path := range []string{"rwlock", "snapshot"} {
			var r s3reader
			if path == "rwlock" {
				r = &rwDB{db: s3seed()}
			} else {
				r = sdbAdapter{sdb: sopr.Synchronized(s3seed())}
			}
			elapsed, writes := s3run(r, nr, s3TotalOps)
			total := (s3TotalOps / nr) * nr
			fmt.Printf("%-9d %-12s %12.0f %12.1f %12.0f\n", nr, path,
				float64(total)/elapsed.Seconds(),
				float64(elapsed.Microseconds())/float64(total),
				float64(writes)/elapsed.Seconds())
		}
	}
	fmt.Printf("(GOMAXPROCS=%d; same workload as S2 with the writer always on. The rwlock\n", runtime.GOMAXPROCS(0))
	fmt.Println(" rows reproduce the pre-MVCC design: readers block behind the writer's")
	fmt.Println(" exclusive sections. Snapshot rows acquire nothing — one atomic load —")
	fmt.Println(" so reads scale with cores and the writer never stalls a reader.)")
}

// s3seed builds the S2 dataset: 4k resident rows, audit-mirror rules, so
// each read is a filtered COUNT heap scan and each write fires rules.
func s3seed() *sopr.DB {
	db := sopr.Open()
	db.MustExec(`create table t (id int, v int); create table audit (id int, v int)`)
	db.MustExec(b1Rule)
	var ins strings.Builder
	const rows = 4000
	for i := 0; i < rows; i++ {
		if i%500 == 0 {
			if i > 0 {
				db.MustExec(ins.String())
			}
			ins.Reset()
			ins.WriteString("insert into t values ")
		} else {
			ins.WriteString(", ")
		}
		fmt.Fprintf(&ins, "(%d, %d)", i, i%97)
	}
	db.MustExec(ins.String())
	return db
}

// s3run drives nr reader goroutines through total/nr filtered-COUNT
// queries each while one writer loops rule-firing insert+delete
// transactions, returning the readers' wall time and committed writes.
func s3run(r s3reader, nr, total int) (time.Duration, int64) {
	stop := make(chan struct{})
	var writes atomic.Int64
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		i := 1_000_000_000 // ids disjoint from the resident rows
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := r.Exec(fmt.Sprintf(`insert into t values (%d, %d)`, i, i%97)); err != nil {
				panic(err)
			}
			if _, err := r.Exec(fmt.Sprintf(`delete from t where id = %d`, i)); err != nil {
				panic(err)
			}
			writes.Add(2)
			i++
		}
	}()
	per := total / nr
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < nr; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for j := 0; j < per; j++ {
				rows, err := r.Query(fmt.Sprintf(`select count(*) from t where v = %d`, (g*31+j)%97))
				if err != nil {
					panic(err)
				}
				benchSink = rows
			}
		}(g)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)
	close(stop)
	wwg.Wait()
	return elapsed, writes.Load()
}
