// S4: read throughput scaling across WAL-shipping read replicas. One
// durable primary takes a hot rule-firing write stream while reader
// goroutines fan filtered-COUNT queries across the replica set through
// client.DialCluster. S2 showed shared-lock reads scale inside one
// process until its cores run out; S4 moves past that wall by adding
// engines: each replica replays the primary's net-effect stream into its
// own copy and serves reads from it, so the read path never contends
// with the primary's write lock at all.
package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sopr"
	"sopr/client"
	"sopr/internal/repl"
	"sopr/internal/server"
)

// s4TotalOps is the number of read operations measured per S4 table row
// (the -s4ops flag; CI smoke runs shrink it).
var s4TotalOps = 2000

const s4Readers = 8

func s4() {
	header("S4", "read throughput vs replica count (WAL-shipping replication)")
	fmt.Printf("%-10s %12s %12s %12s %12s\n",
		"replicas", "reads/sec", "µs/read", "writes/sec", "final lag")
	for _, nrep := range []int{0, 1, 2, 4} {
		rps, usPerRead, wps, lag := s4run(nrep, s4TotalOps)
		fmt.Printf("%-10d %12.0f %12.1f %12.0f %12d\n", nrep, rps, usPerRead, wps, lag)
	}
	fmt.Printf("(GOMAXPROCS=%d, %d reader goroutines; replicas add whole engines, so the\n",
		runtime.GOMAXPROCS(0), s4Readers)
	fmt.Println(" ceiling is cores, not one engine's lock — and a busy writer no longer")
	fmt.Println(" stalls readers. Final lag is records the slowest replica still owes.)")
}

// s4run boots a primary plus nrep replicas, drives total reads through
// s4Readers cluster handles under a continuous writer, and reports
// reads/sec, µs/read, writes/sec, and the worst follower lag at the end.
func s4run(nrep, total int) (rps, usPerRead, wps float64, lag uint64) {
	dir, err := os.MkdirTemp("", "soprbench-s4-*")
	must(err)
	defer os.RemoveAll(dir)
	db, err := sopr.OpenDurable(dir, sopr.WithFsync(sopr.FsyncNever))
	must(err)
	sdb := sopr.Synchronized(db)
	defer sdb.Close()
	sdb.MustExec(`create table t (id int, v int); create table audit (id int, v int)`)
	sdb.MustExec(b1Rule)
	const rows = 4000
	for base := 0; base < rows; base += 500 {
		sdb.MustExec(insertScript(base, 500))
	}

	src := repl.NewSource(db.WALLog(), repl.SourceConfig{Heartbeat: 100 * time.Millisecond})
	psrv := server.New(sdb, server.Config{Repl: src})
	pln, err := server.Listen("127.0.0.1:0")
	must(err)
	go psrv.Serve(pln)
	addrs := []string{pln.Addr().String()}
	shutdown := func(srv *server.Server) {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		must(srv.Shutdown(ctx))
	}
	defer shutdown(psrv)

	followers := make([]*repl.Follower, nrep)
	for i := range followers {
		fl, err := repl.NewFollower(repl.FollowerConfig{
			Primary:     pln.Addr().String(),
			AckInterval: 20 * time.Millisecond,
		})
		must(err)
		go fl.Run()
		defer fl.Close()
		rsrv := server.New(fl, server.Config{})
		rln, err := server.Listen("127.0.0.1:0")
		must(err)
		go rsrv.Serve(rln)
		defer shutdown(rsrv)
		followers[i] = fl
		addrs = append(addrs, rln.Addr().String())
	}
	// Let every replica finish bootstrapping before the clock starts.
	for _, fl := range followers {
		for fl.AppliedLSN() < db.CurrentLSN() {
			time.Sleep(time.Millisecond)
		}
	}

	// Hot writer: rule-firing insert/delete pairs on the primary for the
	// whole measurement window, shipping every net effect to the replicas.
	stop := make(chan struct{})
	var writes atomic.Int64
	var wwg sync.WaitGroup
	wc, err := client.Dial(pln.Addr().String())
	must(err)
	defer wc.Close()
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		i := 1_000_000_000 // ids disjoint from the resident rows
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, err := wc.Exec(fmt.Sprintf(`insert into t values (%d, %d); delete from t where id = %d`, i, i%97, i))
			must(err)
			writes.Add(1)
			i++
		}
	}()

	// Readers: each goroutine owns a cluster handle (per-endpoint
	// connections serialize round trips) and fans reads over the group.
	per := total / s4Readers
	var wg sync.WaitGroup
	start := make(chan struct{})
	for r := 0; r < s4Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cl, err := client.DialCluster(addrs)
			must(err)
			defer cl.Close()
			<-start
			for j := 0; j < per; j++ {
				rows, err := cl.Query(fmt.Sprintf(`select count(*) from t where v = %d`, (r*31+j)%97))
				must(err)
				benchSink = rows
			}
		}(r)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)
	close(stop)
	wwg.Wait()

	primaryLSN := db.CurrentLSN()
	for _, fl := range followers {
		if applied := fl.AppliedLSN(); primaryLSN > applied && primaryLSN-applied > lag {
			lag = primaryLSN - applied
		}
	}
	done := per * s4Readers
	return float64(done) / elapsed.Seconds(),
		float64(elapsed.Microseconds()) / float64(done),
		float64(writes.Load()) / elapsed.Seconds(),
		lag
}
