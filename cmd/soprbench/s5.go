// S5: the price of synchronous commit. One durable primary takes the B13
// write workload (single-row INSERTs firing an update rule) through the
// full server stack while N of its followers must ack each commit's LSN
// before the client is acknowledged. N=0 is the async baseline — the same
// configuration B13 prices locally — so the delta is pure replication
// wait: one ack round-trip over loopback plus the follower's apply. The
// table reports how much durability-across-nodes costs on top of
// durability-on-disk.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"sopr"
	"sopr/client"
	"sopr/internal/repl"
	"sopr/internal/server"
)

// s5Txns is the number of committed transactions per S5 table row (the
// -s5txns flag; CI smoke runs shrink it).
var s5Txns = 300

func s5() {
	header("S5", "synchronous commit: follower acks per txn vs throughput")
	fmt.Printf("%-16s %12s %12s %10s\n", "sync-followers", "txn/s", "µs/txn", "synced")
	for _, n := range []int{0, 1, 2} {
		tps, usPerTxn, synced := s5run(n, s5Txns)
		fmt.Printf("%-16d %12.0f %12.1f %9.0f%%\n", n, tps, usPerTxn, synced)
	}
	fmt.Println("\n(N=0 acks at local durability, as in B13; N>0 additionally holds each")
	fmt.Println(" commit until N follower acks cover its LSN. 'synced' is the share of")
	fmt.Println(" commits confirmed within the sync timeout rather than degraded to async.)")
}

// s5run boots a primary with two durable followers, drives txns rule-firing
// writes through a client with SyncFollowers=n, and reports throughput,
// latency, and the fraction of commits that were confirmed synchronously.
func s5run(n, txns int) (tps, usPerTxn, syncedPct float64) {
	dir, err := os.MkdirTemp("", "soprbench-s5-*")
	must(err)
	defer os.RemoveAll(dir)
	db, err := sopr.OpenDurable(dir, sopr.WithFsync(sopr.FsyncNever))
	must(err)
	p, err := repl.NewPrimary(db, repl.PrimaryConfig{
		SyncFollowers: n,
		SyncTimeout:   5 * time.Second,
		Source:        repl.SourceConfig{Heartbeat: 100 * time.Millisecond},
	})
	must(err)
	defer func() { must(p.Close()) }()
	psrv := server.New(p, server.Config{})
	pln, err := server.Listen("127.0.0.1:0")
	must(err)
	go psrv.Serve(pln)
	shutdown := func(srv *server.Server) {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		must(srv.Shutdown(ctx))
	}
	defer shutdown(psrv)

	for i := 0; i < 2; i++ {
		fdir, err := os.MkdirTemp("", "soprbench-s5-f-*")
		must(err)
		defer os.RemoveAll(fdir)
		fl, err := repl.NewFollower(repl.FollowerConfig{
			Primary:     pln.Addr().String(),
			DataDir:     fdir,
			AckInterval: 5 * time.Millisecond,
		})
		must(err)
		go fl.Run()
		defer fl.Close()
	}

	c, err := client.Dial(pln.Addr().String())
	must(err)
	defer c.Close()
	_, err = c.Exec(`create table t (id int, v int);
		create rule bump when inserted into t
		then update t set v = v + 1 where id in (select id from inserted t)
		end`)
	must(err)
	// Both followers caught up before the clock starts: the first measured
	// commit should wait on an ack round-trip, not a bootstrap.
	if n > 0 {
		for {
			if st := p.ReplStats(); st.MinFollowerLSN >= p.CurrentLSN() && st.Followers == 2 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}

	synced := 0
	t0 := time.Now()
	for i := 0; i < txns; i++ {
		res, err := c.Exec(fmt.Sprintf(`insert into t values (%d, 0)`, i))
		must(err)
		if res.Synced {
			synced++
		}
	}
	elapsed := time.Since(t0)
	perTxn := float64(elapsed.Microseconds()) / float64(txns)
	return 1e6 / perTxn, perTxn, 100 * float64(synced) / float64(txns)
}
