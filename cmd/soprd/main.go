// Command soprd serves a sopr database over TCP with the wire protocol, so
// many concurrent clients (the client package, soprsh -connect) share one
// rule engine. Operation blocks are serialized across connections,
// preserving the paper's single-stream model of execution (Section 2.1).
//
//	$ soprd -addr :5477 -init schema.sql
//	$ soprsh -connect localhost:5477
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, idle
// sessions are disconnected, and transactions already executing drain
// before the process exits (bounded by -shutdown-timeout).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sopr"
	"sopr/internal/server"
)

type options struct {
	addr            string
	initFile        string
	maxFrame        int
	readTimeout     time.Duration
	writeTimeout    time.Duration
	shutdownTimeout time.Duration
	selectTriggers  bool
	maxTransitions  int
	trace           bool
	verbose         bool
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":5477", "listen address")
	flag.StringVar(&o.initFile, "init", "", "SQL script (e.g. a .dump) executed before serving")
	flag.IntVar(&o.maxFrame, "max-frame", 0, "max request/response frame payload in bytes (0 = 8 MiB)")
	flag.DurationVar(&o.readTimeout, "read-timeout", 0, "disconnect clients idle this long (0 = 5m)")
	flag.DurationVar(&o.writeTimeout, "write-timeout", 0, "max time to write one response (0 = 30s)")
	flag.DurationVar(&o.shutdownTimeout, "shutdown-timeout", 30*time.Second, "max time to drain in-flight transactions on shutdown")
	flag.BoolVar(&o.selectTriggers, "select-triggers", false, "enable Section 5.1 select-triggered rules")
	flag.IntVar(&o.maxTransitions, "max-transitions", 0, "runaway guard: max rule transitions per transaction (0 = default)")
	flag.BoolVar(&o.trace, "trace", false, "log rule-processing events to stderr")
	flag.BoolVar(&o.verbose, "v", false, "log connection events")
	flag.Parse()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	if err := run(o, sigc, nil); err != nil {
		log.Fatal(err)
	}
}

// run builds the database and server, serves until a signal arrives on
// sigc, then drains and exits. When ready is non-nil it receives the bound
// address once the listener is up (used by tests to pick a free port).
func run(o options, sigc <-chan os.Signal, ready chan<- net.Addr) error {
	logger := log.New(os.Stderr, "soprd: ", log.LstdFlags)

	var opts []sopr.Option
	if o.selectTriggers {
		opts = append(opts, sopr.WithSelectTriggers())
	}
	if o.maxTransitions > 0 {
		opts = append(opts, sopr.WithMaxRuleTransitions(o.maxTransitions))
	}
	db := sopr.Open(opts...)
	if o.initFile != "" {
		f, err := os.Open(o.initFile)
		if err != nil {
			return err
		}
		err = db.Load(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("init script %s: %w", o.initFile, err)
		}
		logger.Printf("loaded %s (%d tables, %d rules)", o.initFile, len(db.Tables()), len(db.Rules()))
	}
	sdb := sopr.Synchronized(db)
	if o.trace {
		sdb.TraceTo(os.Stderr)
	}

	cfg := server.Config{
		MaxFrame:     o.maxFrame,
		ReadTimeout:  o.readTimeout,
		WriteTimeout: o.writeTimeout,
	}
	if o.verbose {
		cfg.Logf = logger.Printf
	}
	srv := server.New(sdb, cfg)
	ln, err := server.Listen(o.addr)
	if err != nil {
		return err
	}
	logger.Printf("listening on %s", ln.Addr())
	if ready != nil {
		ready <- ln.Addr()
	}

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	select {
	case sig := <-sigc:
		logger.Printf("%v: draining (timeout %v)", sig, o.shutdownTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), o.shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Printf("drain incomplete: %v", err)
		}
		<-serveDone
		st := srv.Stats()
		logger.Printf("served %d connections, %d execs, %d queries; %d requests drained",
			st.Accepted, st.Execs, st.Queries, st.DrainedReqs)
		return nil
	case err := <-serveDone:
		return err
	}
}
