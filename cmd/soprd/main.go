// Command soprd serves a sopr database over TCP with the wire protocol, so
// many concurrent clients (the client package, soprsh -connect) share one
// rule engine. Operation blocks are serialized across connections,
// preserving the paper's single-stream model of execution (Section 2.1).
//
//	$ soprd -addr :5477 -init schema.sql
//	$ soprd -addr :5477 -data /var/lib/sopr -fsync always
//	$ soprsh -connect localhost:5477
//
// With -data, committed transactions are written ahead to a segmented log
// of net transition effects and the database survives restarts: startup
// loads the newest checkpoint, replays the log tail, and refuses to serve
// if recovery fails. The -init script runs only when the data directory is
// fresh. SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// idle sessions are disconnected, transactions already executing drain
// (bounded by -shutdown-timeout), and a final checkpoint is written.
//
// A durable soprd also serves WAL-shipping replication: read replicas run
//
//	$ soprd -addr :5478 -follow primary-host:5477
//	$ soprd -addr :5479 -follow primary-host:5477 -data /var/lib/sopr-replica
//
// and keep a copy current by replaying the primary's record stream
// (bootstrapping from its newest checkpoint), serving queries, dumps, and
// stats while rejecting writes. A plain -follow replica keeps no local
// state; with -data it is a durable follower — it persists the stream in
// its own write-ahead log, restarts from local state, and after a
// failover promotion serves as a full WAL-shipping primary that the
// surviving replicas re-point to. Promotions are fenced by monotonically
// increasing epochs carried on every frame: a deposed primary's writes
// answer a typed "fenced" error, and it demotes itself under the new
// leader when the partition heals. With -sync-followers N, the primary
// holds each commit's ack until N followers have acknowledged the
// record's LSN (degrading to an async ack, with a warning, after
// -sync-timeout).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sopr"
	"sopr/internal/repl"
	"sopr/internal/server"
)

type options struct {
	addr            string
	initFile        string
	dataDir         string
	follow          string
	fsync           string
	fsyncInterval   time.Duration
	ckptInterval    time.Duration
	maxFrame        int
	readTimeout     time.Duration
	writeTimeout    time.Duration
	shutdownTimeout time.Duration
	selectTriggers  bool
	maxTransitions  int
	syncFollowers   int
	syncTimeout     time.Duration
	trace           bool
	verbose         bool
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":5477", "listen address")
	flag.StringVar(&o.initFile, "init", "", "SQL script (e.g. a .dump) executed before serving (with -data: only when the directory is fresh)")
	flag.StringVar(&o.dataDir, "data", "", "data directory for the write-ahead log and checkpoints (empty = in-memory)")
	flag.StringVar(&o.follow, "follow", "", "run as a read replica of the primary soprd at this address")
	flag.StringVar(&o.fsync, "fsync", "always", "log fsync policy: always, interval, or never")
	flag.DurationVar(&o.fsyncInterval, "fsync-interval", 0, "background sync period for -fsync interval (0 = 100ms)")
	flag.DurationVar(&o.ckptInterval, "checkpoint-interval", 0, "write a checkpoint this often (0 = only at shutdown)")
	flag.IntVar(&o.maxFrame, "max-frame", 0, "max request/response frame payload in bytes (0 = 8 MiB)")
	flag.DurationVar(&o.readTimeout, "read-timeout", 0, "disconnect clients idle this long (0 = 5m)")
	flag.DurationVar(&o.writeTimeout, "write-timeout", 0, "max time to write one response (0 = 30s)")
	flag.DurationVar(&o.shutdownTimeout, "shutdown-timeout", 30*time.Second, "max time to drain in-flight transactions on shutdown")
	flag.BoolVar(&o.selectTriggers, "select-triggers", false, "enable Section 5.1 select-triggered rules")
	flag.IntVar(&o.maxTransitions, "max-transitions", 0, "runaway guard: max rule transitions per transaction (0 = default)")
	flag.IntVar(&o.syncFollowers, "sync-followers", 0, "hold each commit ack until this many followers ack its LSN (0 = async replication)")
	flag.DurationVar(&o.syncTimeout, "sync-timeout", 0, "max sync-commit wait before degrading to an async ack (0 = 2s)")
	flag.BoolVar(&o.trace, "trace", false, "log rule-processing events to stderr")
	flag.BoolVar(&o.verbose, "v", false, "log connection events")
	flag.Parse()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	if err := run(o, sigc, nil); err != nil {
		log.Fatal(err)
	}
}

// openDB builds the database per the options: durable when -data is set
// (recovering prior state, running -init only on a fresh directory),
// in-memory otherwise. Any failure — unparseable -fsync, recovery error,
// broken init script — is returned before anything serves: a half
// initialized database must never reach the listener.
func openDB(o options, logger *log.Logger) (*sopr.DB, error) {
	var opts []sopr.Option
	if o.selectTriggers {
		opts = append(opts, sopr.WithSelectTriggers())
	}
	if o.maxTransitions > 0 {
		opts = append(opts, sopr.WithMaxRuleTransitions(o.maxTransitions))
	}

	loadInit := func(db *sopr.DB) error {
		f, err := os.Open(o.initFile)
		if err != nil {
			return err
		}
		lerr := db.Load(f)
		cerr := f.Close()
		if lerr != nil {
			// db.Load surfaces *sopr.ParseError, so the message carries the
			// offending line and column.
			return fmt.Errorf("init script %s: %w", o.initFile, lerr)
		}
		if cerr != nil {
			return fmt.Errorf("init script %s: %w", o.initFile, cerr)
		}
		logger.Printf("loaded %s (%d tables, %d rules)", o.initFile, len(db.Tables()), len(db.Rules()))
		return nil
	}

	if o.dataDir == "" {
		db := sopr.Open(opts...)
		if o.initFile != "" {
			if err := loadInit(db); err != nil {
				return nil, err
			}
		}
		return db, nil
	}

	policy, err := sopr.ParseSyncPolicy(o.fsync)
	if err != nil {
		return nil, err
	}
	opts = append(opts, sopr.WithFsync(policy))
	if o.fsyncInterval > 0 {
		opts = append(opts, sopr.WithFsyncInterval(o.fsyncInterval))
	}
	db, err := sopr.OpenDurable(o.dataDir, opts...)
	if err != nil {
		return nil, err
	}
	rec := db.Recovery()
	for _, skipped := range rec.SkippedCheckpoints {
		logger.Printf("warning: skipped unreadable checkpoint %s", skipped)
	}
	if db.Recovered() {
		if rec.TruncatedBytes > 0 {
			logger.Printf("truncated %d torn bytes from the log tail", rec.TruncatedBytes)
		}
		logger.Printf("recovered %s: checkpoint=%v, %d records replayed (%d tables, %d rules)",
			o.dataDir, rec.CheckpointLoaded, rec.RecordsReplayed, len(db.Tables()), len(db.Rules()))
		if o.initFile != "" {
			logger.Printf("data directory has prior state; ignoring -init %s", o.initFile)
		}
		if rec.RecordsReplayed > 0 {
			// Compact right away so the next restart replays nothing.
			if err := db.Checkpoint(); err != nil {
				_ = db.Close() // first error wins
				return nil, fmt.Errorf("checkpoint after recovery: %w", err)
			}
		}
		return db, nil
	}
	if o.initFile != "" {
		if err := loadInit(db); err != nil {
			_ = db.Close() // first error wins
			return nil, err
		}
	}
	return db, nil
}

// run builds the database and server, serves until a signal arrives on
// sigc, then drains and exits. When ready is non-nil it receives the bound
// address once the listener is up (used by tests to pick a free port).
func run(o options, sigc <-chan os.Signal, ready chan<- net.Addr) error {
	logger := log.New(os.Stderr, "soprd: ", log.LstdFlags)

	cfg := server.Config{
		MaxFrame:     o.maxFrame,
		ReadTimeout:  o.readTimeout,
		WriteTimeout: o.writeTimeout,
	}
	if o.verbose {
		cfg.Logf = logger.Printf
	}

	var backend server.DB
	durable := o.dataDir != ""
	// checkpoint and shutdown route through whichever backend owns the log.
	var checkpoint func() error
	var shutdown func()
	if o.follow != "" {
		// A replica bootstraps from the primary's checkpoint and replays
		// its stream, so an init script would only be silently ignored —
		// refuse it instead. With -data the replica persists the stream in
		// its own log (a durable follower); without it, replay state is
		// memory-only and a restart rejoins from scratch.
		if o.initFile != "" {
			return fmt.Errorf("-follow and -init are mutually exclusive: replicas bootstrap from the primary")
		}
		if o.trace {
			return fmt.Errorf("-trace is not supported on a replica: replay runs with rules disabled")
		}
		if o.syncFollowers > 0 && !durable {
			return fmt.Errorf("-sync-followers needs -data: only a durable follower can lead after promotion")
		}
		fl, err := repl.NewFollower(repl.FollowerConfig{
			Primary:            o.follow,
			DataDir:            o.dataDir,
			SyncFollowers:      o.syncFollowers,
			SyncTimeout:        o.syncTimeout,
			SelectTriggers:     o.selectTriggers,
			MaxRuleTransitions: o.maxTransitions,
			Logf:               logger.Printf,
		})
		if err != nil {
			return err
		}
		go fl.Run()
		defer fl.Close()
		backend = fl
		if durable {
			checkpoint = fl.Checkpoint
			logger.Printf("replica: following %s (durable, %s, applied lsn %d, epoch %d)",
				o.follow, o.dataDir, fl.AppliedLSN(), fl.KnownEpoch())
		} else {
			logger.Printf("replica: following %s", o.follow)
		}
	} else {
		db, err := openDB(o, logger)
		if err != nil {
			return err
		}
		if durable {
			// A durable primary ships its WAL to any replica that joins,
			// fences itself when the cluster elects a newer epoch, and —
			// with -sync-followers — holds commit acks for follower acks.
			p, err := repl.NewPrimary(db, repl.PrimaryConfig{
				SyncFollowers: o.syncFollowers,
				SyncTimeout:   o.syncTimeout,
				Logf:          logger.Printf,
			})
			if err != nil {
				_ = db.Close()
				return err
			}
			defer func() { _ = p.Close() }() // error paths below close explicitly
			if o.trace {
				p.DB().TraceTo(os.Stderr)
			}
			backend = p
			checkpoint = p.Checkpoint
			shutdown = func() {
				if err := p.Checkpoint(); err != nil {
					logger.Printf("final checkpoint: %v", err)
				}
				if err := p.Close(); err != nil {
					logger.Printf("close log: %v", err)
				}
			}
		} else {
			if o.syncFollowers > 0 {
				return fmt.Errorf("-sync-followers needs -data: an in-memory server ships no WAL")
			}
			sdb := sopr.Synchronized(db)
			defer func() { _ = sdb.Close() }()
			if o.trace {
				sdb.TraceTo(os.Stderr)
			}
			backend = sdb
		}
	}

	srv := server.New(backend, cfg)
	ln, err := server.Listen(o.addr)
	if err != nil {
		return err
	}
	logger.Printf("listening on %s", ln.Addr())
	if ready != nil {
		ready <- ln.Addr()
	}

	// Periodic checkpoints compact the log while serving; a failed
	// checkpoint is logged but not fatal (the log still has everything).
	ckptStop := make(chan struct{})
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		if checkpoint == nil || o.ckptInterval <= 0 {
			return
		}
		t := time.NewTicker(o.ckptInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := checkpoint(); err != nil {
					logger.Printf("checkpoint: %v", err)
				}
			case <-ckptStop:
				return
			}
		}
	}()

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	select {
	case sig := <-sigc:
		logger.Printf("%v: draining (timeout %v)", sig, o.shutdownTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), o.shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Printf("drain incomplete: %v", err)
		}
		<-serveDone
		close(ckptStop)
		<-ckptDone
		if shutdown != nil {
			shutdown()
		} else if checkpoint != nil {
			// A durable follower: persist its state as a checkpoint image
			// so the next start replays only the records since.
			if err := checkpoint(); err != nil {
				logger.Printf("final checkpoint: %v", err)
			}
		}
		st := srv.Stats()
		logger.Printf("served %d connections, %d execs, %d queries; %d requests drained",
			st.Accepted, st.Execs, st.Queries, st.DrainedReqs)
		return nil
	case err := <-serveDone:
		close(ckptStop)
		<-ckptDone
		return err
	}
}
