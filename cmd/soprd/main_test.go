package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"sopr"
	"sopr/client"
)

// TestRunServesAndShutsDown boots the daemon on a random port with an init
// script, exercises it through the client package, then delivers SIGTERM
// and checks run returns cleanly.
func TestRunServesAndShutsDown(t *testing.T) {
	init := filepath.Join(t.TempDir(), "init.sql")
	seed := sopr.Open()
	seed.MustExec(`create table t (a int);
		create rule neg when inserted into t then delete from t where a < 0 end`)
	seed.MustExec(`insert into t values (7)`)
	script, err := seed.DumpString()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(init, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}

	sigc := make(chan os.Signal, 1)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(options{
			addr:            "127.0.0.1:0",
			initFile:        init,
			shutdownTimeout: 5 * time.Second,
		}, sigc, ready)
	}()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	c, err := client.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec(`insert into t values (1), (-2)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Firings) != 1 || res.Firings[0].Rule != "neg" {
		t.Errorf("firings = %+v", res.Firings)
	}
	rows, err := c.Query(`select count(*) from t`)
	if err != nil {
		t.Fatal(err)
	}
	if n := rows.Data[0][0].(int64); n != 2 { // seeded 7 plus surviving 1
		t.Errorf("count = %d, want 2", n)
	}

	sigc <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
	if err := c.Ping(); err == nil {
		t.Error("server still answering after shutdown")
	}
}

func TestRunBadInitScript(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.sql")
	if err := os.WriteFile(bad, []byte("definitely not sql"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(options{addr: "127.0.0.1:0", initFile: bad}, nil, nil)
	if err == nil {
		t.Fatal("run accepted a broken init script")
	}
}

// TestRunBadInitReportsLineCol: a syntax error in the init script must
// surface the offending line and column, not just "parse error".
func TestRunBadInitReportsLineCol(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.sql")
	script := "create table t (a int);\ninsert into t values (1);\nselect wat wat wat;\n"
	if err := os.WriteFile(bad, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(options{addr: "127.0.0.1:0", initFile: bad}, nil, nil)
	if err == nil {
		t.Fatal("run accepted a broken init script")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error does not name the failing line: %v", err)
	}
}

// bootDurable starts run() against dir and waits for the listener.
func bootDurable(t *testing.T, dir, init string) (net.Addr, chan os.Signal, chan error) {
	t.Helper()
	sigc := make(chan os.Signal, 1)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(options{
			addr:            "127.0.0.1:0",
			initFile:        init,
			dataDir:         dir,
			fsync:           "always",
			shutdownTimeout: 5 * time.Second,
		}, sigc, ready)
	}()
	select {
	case addr := <-ready:
		return addr, sigc, done
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	panic("unreachable")
}

func stopDurable(t *testing.T, sigc chan os.Signal, done chan error) {
	t.Helper()
	sigc <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
}

// TestDurableRestartRecovers: a -data server survives a restart with its
// committed state intact, runs -init only on the first boot, and leaves a
// checkpoint behind at shutdown.
func TestDurableRestartRecovers(t *testing.T) {
	base := t.TempDir()
	dataDir := filepath.Join(base, "data")
	init := filepath.Join(base, "init.sql")
	// The marker row would double if -init ran again on the second boot.
	script := `create table t (a int);
		create rule neg when inserted into t then delete from t where a < 0 end;
		insert into t values (100);`
	if err := os.WriteFile(init, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}

	addr, sigc, done := bootDurable(t, dataDir, init)
	c, err := client.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`insert into t values (1), (-2)`); err != nil {
		t.Fatal(err)
	}
	c.Close()
	stopDurable(t, sigc, done)

	// Graceful shutdown wrote a checkpoint.
	entries, err := os.ReadDir(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	hasCkpt := false
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "checkpoint-") {
			hasCkpt = true
		}
	}
	if !hasCkpt {
		t.Errorf("no checkpoint after graceful shutdown; dir has %v", entries)
	}

	addr, sigc, done = bootDurable(t, dataDir, init)
	c, err = client.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rows, err := c.Query(`select count(*) from t`)
	if err != nil {
		t.Fatal(err)
	}
	// 100 from init (once!) and 1 from the client; -2 was deleted by the
	// rule. 3 would mean -init ran twice; 1 would mean recovery lost data.
	if n := rows.Data[0][0].(int64); n != 2 {
		t.Errorf("count after restart = %d, want 2", n)
	}
	// Rules recovered too.
	res, err := c.Exec(`insert into t values (-7)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Firings) != 1 || res.Firings[0].Rule != "neg" {
		t.Errorf("rule not live after restart: %+v", res)
	}
	stopDurable(t, sigc, done)
}

// TestRunRefusesCorruptDataDir: when recovery cannot account for all
// committed records, the daemon must exit with an error instead of
// serving a silently regressed database.
func TestRunRefusesCorruptDataDir(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "data")
	db, err := sopr.OpenDurable(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`create table t (a int); insert into t values (1)`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Rename the first segment out of sequence: the log now starts at an
	// LSN the (absent) checkpoint does not cover — a hole, not a tear.
	old := filepath.Join(dataDir, "wal-0000000000000001.log")
	if err := os.Rename(old, filepath.Join(dataDir, "wal-0000000000000009.log")); err != nil {
		t.Fatal(err)
	}
	err = run(options{addr: "127.0.0.1:0", dataDir: dataDir, fsync: "always"}, nil, nil)
	if err == nil {
		t.Fatal("run served from an unrecoverable data directory")
	}
}
