package main

import (
	"net"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"sopr"
	"sopr/client"
)

// TestRunServesAndShutsDown boots the daemon on a random port with an init
// script, exercises it through the client package, then delivers SIGTERM
// and checks run returns cleanly.
func TestRunServesAndShutsDown(t *testing.T) {
	init := filepath.Join(t.TempDir(), "init.sql")
	seed := sopr.Open()
	seed.MustExec(`create table t (a int);
		create rule neg when inserted into t then delete from t where a < 0 end`)
	seed.MustExec(`insert into t values (7)`)
	script, err := seed.DumpString()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(init, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}

	sigc := make(chan os.Signal, 1)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(options{
			addr:            "127.0.0.1:0",
			initFile:        init,
			shutdownTimeout: 5 * time.Second,
		}, sigc, ready)
	}()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	c, err := client.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec(`insert into t values (1), (-2)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Firings) != 1 || res.Firings[0].Rule != "neg" {
		t.Errorf("firings = %+v", res.Firings)
	}
	rows, err := c.Query(`select count(*) from t`)
	if err != nil {
		t.Fatal(err)
	}
	if n := rows.Data[0][0].(int64); n != 2 { // seeded 7 plus surviving 1
		t.Errorf("count = %d, want 2", n)
	}

	sigc <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
	if err := c.Ping(); err == nil {
		t.Error("server still answering after shutdown")
	}
}

func TestRunBadInitScript(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.sql")
	if err := os.WriteFile(bad, []byte("definitely not sql"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(options{addr: "127.0.0.1:0", initFile: bad}, nil, nil)
	if err == nil {
		t.Fatal("run accepted a broken init script")
	}
}
