// Three-node replication e2e at the daemon level: one durable primary
// and two -follow replicas, each a full run() instance talking over real
// sockets. Covers bounded replication lag, read-your-writes through the
// cluster client, byte-identical dumps, write rejection on replicas, and
// a follower being killed and rejoining.
package main

import (
	"net"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"sopr/client"
)

// bootFollower starts run() in -follow mode against primaryAddr and
// waits for its listener.
func bootFollower(t *testing.T, primaryAddr string) (net.Addr, chan os.Signal, chan error) {
	t.Helper()
	sigc := make(chan os.Signal, 1)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(options{
			addr:            "127.0.0.1:0",
			follow:          primaryAddr,
			shutdownTimeout: 5 * time.Second,
		}, sigc, ready)
	}()
	select {
	case addr := <-ready:
		return addr, sigc, done
	case err := <-done:
		t.Fatalf("follower run exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("follower never became ready")
	}
	panic("unreachable")
}

// waitLag polls the node's stats until it reports being connected with
// its applied LSN at least want, failing after the deadline. This is the
// bounded-lag smoke: a healthy follower must close the gap quickly.
func waitLag(t *testing.T, addr string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		c, err := client.Dial(addr)
		if err == nil {
			st, serr := c.Stats()
			c.Close()
			if serr == nil && st.Repl != nil && st.Repl.Connected && st.Repl.LSN >= want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %s lagging: stats %+v, want lsn >= %d", addr, st.Repl, want)
			}
		} else if time.Now().After(deadline) {
			t.Fatalf("replica %s unreachable: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestReplicationThreeNodeE2E(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "data")
	primaryAddr, psig, pdone := bootDurable(t, dataDir, "")

	r1Addr, r1sig, r1done := bootFollower(t, primaryAddr.String())
	r2Addr, _, _ := bootFollower(t, primaryAddr.String())

	// Drive the whole group through the cluster client: writes land on
	// the primary, reads carry the LSN token so replicas answer them the
	// moment they catch up.
	cl, err := client.DialCluster([]string{r1Addr.String(), r2Addr.String(), primaryAddr.String()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.Exec(`create table t (a int);
		create rule neg when inserted into t then delete from t where a < 0 end;
		insert into t values (1), (-2), (3);`)
	if err != nil {
		t.Fatal(err)
	}
	if res.LSN == 0 {
		t.Fatal("primary write reported no LSN")
	}
	rows, err := cl.Query(`select count(*) from t`)
	if err != nil {
		t.Fatal(err)
	}
	if n := rows.Data[0][0].(int64); n != 2 { // -2 removed by the rule
		t.Fatalf("count = %d, want 2", n)
	}

	// Bounded lag: both replicas reach the primary's LSN promptly.
	waitLag(t, r1Addr.String(), res.LSN)
	waitLag(t, r2Addr.String(), res.LSN)

	// At the same LSN the dump must be byte-identical on every node.
	pc, err := client.Dial(primaryAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	want, err := pc.Dump()
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range []string{r1Addr.String(), r2Addr.String()} {
		rc, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		got, derr := rc.Dump()
		// A replica refuses writes with the typed read-only code.
		_, xerr := rc.Exec(`insert into t values (9)`)
		rc.Close()
		if derr != nil {
			t.Fatal(derr)
		}
		if got != want {
			t.Errorf("replica %s dump diverged:\n--- primary ---\n%s\n--- replica ---\n%s", addr, want, got)
		}
		if !client.IsRemote(xerr, client.CodeReadOnly) {
			t.Errorf("replica %s exec = %v, want code %s", addr, xerr, client.CodeReadOnly)
		}
	}

	// Kill follower 1 and keep writing: the group must keep serving.
	r1sig <- syscall.SIGTERM
	select {
	case err := <-r1done:
		if err != nil {
			t.Fatalf("follower shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower did not exit after SIGTERM")
	}
	res, err = cl.Exec(`insert into t values (10)`)
	if err != nil {
		t.Fatalf("write after follower death: %v", err)
	}
	if _, err := cl.Query(`select count(*) from t`); err != nil {
		t.Fatalf("read after follower death: %v", err)
	}

	// Rejoin: a fresh follower on a new port catches up to the new LSN
	// and serves an identical dump.
	r3Addr, _, _ := bootFollower(t, primaryAddr.String())
	waitLag(t, r3Addr.String(), res.LSN)
	want, err = pc.Dump()
	if err != nil {
		t.Fatal(err)
	}
	rc, err := client.Dial(r3Addr.String())
	if err != nil {
		t.Fatal(err)
	}
	got, err := rc.Dump()
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("rejoined follower dump diverged:\n%s\nvs\n%s", got, want)
	}

	stopDurable(t, psig, pdone)
}

// TestFollowFlagConflicts: -follow still excludes init scripts and rule
// tracing (-data is now allowed: that is a durable follower), and
// -sync-followers requires a WAL to ship from. Each conflicting
// combination must be refused before anything serves.
func TestFollowFlagConflicts(t *testing.T) {
	cases := []options{
		{addr: "127.0.0.1:0", follow: "localhost:5477", initFile: "x.sql"},
		{addr: "127.0.0.1:0", follow: "localhost:5477", trace: true},
		{addr: "127.0.0.1:0", follow: "localhost:5477", syncFollowers: 1},
		{addr: "127.0.0.1:0", syncFollowers: 1}, // in-memory primary ships no WAL
	}
	for i, o := range cases {
		if err := run(o, nil, nil); err == nil {
			t.Errorf("case %d: run accepted conflicting flags %+v", i, o)
		}
	}
}
