// Command soprsh is an interactive shell for the set-oriented production
// rules engine: type SQL and rule-language statements terminated by ';',
// and meta-commands starting with '.'.
//
//	$ go run ./cmd/soprsh
//	sopr> create table t (a int);
//	sopr> create rule r when inserted into t then delete from t where a < 0 end;
//	sopr> insert into t values (1), (-2);
//	rule r fired [I:0 D:1 U:0 S:0]
//	sopr> select * from t;
//	a
//	-
//	1
//
// With -connect ADDR the same REPL runs against a remote soprd server
// instead of an in-process engine.
//
// Meta-commands: .tables  .rules  .analyze  .trace on|off  .help  .quit
// (.stats, .dump and .ping also work remotely).
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sopr"
	"sopr/client"
	"sopr/internal/sqlast"
	"sopr/internal/sqlparse"
	"sopr/internal/wal"
)

// execer is the part of the engine the statement loop needs; *sopr.DB
// (local mode) and remoteSession (-connect mode) both provide it.
type execer interface {
	Exec(src string) (*sopr.Result, error)
}

// remoteSession adapts a client.Client to the statement loop. A lone
// SELECT or EXPLAIN is sent as a query request — the read path the server answers
// with no locking and, on a replica, the only path there is (replicas
// refuse exec with a read_only error). A multi-statement buffer of
// data-manipulation statements (`insert ...; delete ...;` on one input
// line) ships as ONE batch frame, which the server runs as one operation
// block with one commit fsync. Everything else — definitions, or anything
// this client cannot parse — goes through the script exec path, letting
// the server report its own (line-numbered) errors.
type remoteSession struct{ c *client.Client }

func (s remoteSession) Exec(src string) (*sopr.Result, error) {
	stmts, err := sqlparse.ParseStatements(src)
	if err != nil || len(stmts) == 0 {
		return s.c.Exec(src)
	}
	if len(stmts) == 1 {
		switch stmts[0].(type) {
		case *sqlast.Select, *sqlast.Explain:
			rows, err := s.c.Query(src)
			if err != nil {
				return nil, err
			}
			return &sopr.Result{Results: []*sopr.Rows{rows}}, nil
		}
		return s.c.Exec(src)
	}
	batch := make([]string, len(stmts))
	for i, st := range stmts {
		switch st := st.(type) {
		case *sqlast.Insert:
			batch[i] = st.String()
		case *sqlast.Delete:
			batch[i] = st.String()
		case *sqlast.Update:
			batch[i] = st.String()
		case *sqlast.Select:
			batch[i] = st.String()
		case *sqlast.ProcessRules:
			batch[i] = st.String()
		default:
			// A definition in the buffer: not batchable, script path.
			return s.c.Exec(src)
		}
	}
	return s.c.ExecBatch(batch)
}

func main() {
	selectTriggers := flag.Bool("select-triggers", false, "enable Section 5.1 select-triggered rules")
	maxTransitions := flag.Int("max-transitions", 0, "runaway guard: max rule transitions per transaction (0 = default)")
	connect := flag.String("connect", "", "address of a soprd server; run the REPL against it instead of a local engine")
	flag.Parse()

	var db *sopr.DB
	var session execer
	var cl *client.Client
	if *connect != "" {
		var err error
		cl, err = client.Dial(*connect)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer cl.Close()
		if err := cl.Ping(); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		session = remoteSession{cl}
	} else {
		var opts []sopr.Option
		if *selectTriggers {
			opts = append(opts, sopr.WithSelectTriggers())
		}
		if *maxTransitions > 0 {
			opts = append(opts, sopr.WithMaxRuleTransitions(*maxTransitions))
		}
		db = sopr.Open(opts...)
		session = db
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1024*1024), 1024*1024)
	interactive := isInteractive()
	var buf strings.Builder
	lineNo := 0    // lines read from the input so far
	startLine := 1 // input line where the buffered statement began
	prompt := func() {
		if interactive {
			if buf.Len() == 0 {
				fmt.Print("sopr> ")
			} else {
				fmt.Print("  ... ")
			}
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		lineNo++
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, ".") {
			var more bool
			if cl != nil {
				more = metaRemote(cl, trimmed)
			} else {
				more = meta(db, trimmed)
			}
			if !more {
				return
			}
			prompt()
			continue
		}
		if buf.Len() == 0 {
			startLine = lineNo
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			runAt(session, buf.String(), startLine)
			buf.Reset()
		}
		prompt()
	}
	if err := in.Err(); err != nil {
		// e.g. a single input line over the 1 MiB scanner buffer; without
		// this the shell would end silently mid-script.
		fmt.Fprintf(os.Stderr, "error: reading input after line %d: %v\n", lineNo, err)
		os.Exit(1)
	}
	if buf.Len() > 0 {
		runAt(session, buf.String(), startLine)
	}
}

func isInteractive() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// run executes one statement buffer counting lines from 1 (tests and
// single-statement callers).
func run(db execer, src string) { runAt(db, src, 1) }

// runAt executes one statement buffer that began at input line startLine,
// so errors point at the failing line of the overall input rather than
// echoing only the error text.
func runAt(db execer, src string, startLine int) {
	res, err := db.Exec(src)
	if err != nil {
		reportError(err, startLine)
		return
	}
	for _, f := range res.Firings {
		fmt.Printf("rule %s fired %s\n", f.Rule, f.Effect)
	}
	if res.RolledBack {
		fmt.Printf("transaction ROLLED BACK by rule %q\n", res.RollbackRule)
	}
	for _, q := range res.Results {
		fmt.Println(q)
		fmt.Printf("(%d row(s))\n", len(q.Data))
	}
}

// reportError prints err with the failing input line. Parse errors know
// their line within the submitted buffer, which is offset to an absolute
// input line; execution errors are attributed to the statement's start.
func reportError(err error, startLine int) {
	var pe *sopr.ParseError
	var re *client.RemoteError
	switch {
	case errors.As(err, &pe):
		fmt.Fprintf(os.Stderr, "error: syntax error at line %d, column %d: %s\n",
			startLine-1+pe.Line, pe.Col, pe.Msg)
	case errors.As(err, &re) && re.Code == client.CodeParse && re.Line > 0:
		fmt.Fprintf(os.Stderr, "error at line %d: remote: %s\n", startLine-1+re.Line, re.Message)
	default:
		fmt.Fprintf(os.Stderr, "error in statement at line %d: %v\n", startLine, err)
	}
}

// meta handles dot-commands against the local engine; it returns false to
// quit.
func meta(db *sopr.DB, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ".quit", ".exit":
		return false
	case ".tables":
		for _, t := range db.Tables() {
			fmt.Println(t)
		}
	case ".rules":
		for _, r := range db.Rules() {
			fmt.Println(r)
		}
	case ".analyze":
		rep := db.AnalyzeRules()
		warnings := rep.Warnings()
		if len(warnings) == 0 {
			fmt.Println("no warnings")
		}
		for _, w := range warnings {
			fmt.Println("warning:", w)
		}
		for _, e := range rep.Edges {
			fmt.Printf("may trigger: %s -> %s\n", e[0], e[1])
		}
	case ".stats":
		s := db.Stats()
		printEngineStats(s)
	case ".dump":
		if len(fields) == 2 {
			// Crash-safe: the script lands in a temp file that is fsynced
			// and renamed over the target, so a crash mid-dump can never
			// leave a truncated file where a good dump (or nothing) was.
			err := wal.AtomicWriteFile(wal.OS{}, fields[1], func(w io.Writer) error {
				return db.Dump(w)
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			} else {
				fmt.Println("dumped to", fields[1])
			}
			return true
		}
		if err := db.Dump(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	case ".load":
		if len(fields) != 2 {
			fmt.Fprintln(os.Stderr, "usage: .load FILE")
			return true
		}
		f, err := os.Open(fields[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return true
		}
		defer f.Close()
		if err := db.Load(f); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		} else {
			fmt.Println("loaded", fields[1])
		}
	case ".trace":
		if len(fields) == 2 && fields[1] == "on" {
			db.TraceTo(os.Stdout)
			fmt.Println("trace on")
		} else {
			db.TraceTo(nil)
			fmt.Println("trace off")
		}
	case ".help":
		fmt.Println(`statements end with ';' and may span lines
meta-commands:
  .tables          list tables
  .rules           list rules
  .analyze         static rule analysis (Section 6)
  .stats           cumulative engine counters
  .trace on|off    show the Figure 1 algorithm's steps
  .dump [FILE]     write a script recreating the database
  .load FILE       execute a dump script
  .quit            exit`)
	default:
		fmt.Fprintf(os.Stderr, "unknown meta-command %s (try .help)\n", fields[0])
	}
	return true
}

// metaRemote handles dot-commands in -connect mode; it returns false to
// quit.
func metaRemote(c *client.Client, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ".quit", ".exit":
		return false
	case ".ping":
		if err := c.Ping(); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		} else {
			fmt.Println("pong")
		}
	case ".stats":
		st, err := c.Stats()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return true
		}
		printEngineStats(st.Engine)
		s := st.Server
		fmt.Printf("server: connections=%d active=%d execs=%d queries=%d errors=%d in_flight=%d\n",
			s.Accepted, s.Active, s.Execs, s.Queries, s.Errors, s.InFlight)
		if r := st.Repl; r != nil {
			fmt.Printf("repl: role=%s epoch=%d lsn=%d durable=%t", r.Role, r.Epoch, r.LSN, r.Durable)
			if r.Role == "replica" {
				fmt.Printf(" leader=%s connected=%t lag=%d resets=%d discarded=%d",
					r.Leader, r.Connected, r.Lag, r.Resets, r.DiscardedRecords)
			} else {
				fmt.Printf(" followers=%d min_follower_lsn=%d", r.Followers, r.MinFollowerLSN)
				if r.SyncFollowers > 0 {
					fmt.Printf(" sync_followers=%d sync_timeouts=%d", r.SyncFollowers, r.SyncTimeouts)
				}
			}
			if r.Fenced {
				fmt.Print(" FENCED")
			}
			fmt.Println()
		}
	case ".dump":
		script, err := c.Dump()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return true
		}
		if len(fields) == 2 {
			err := wal.AtomicWriteFile(wal.OS{}, fields[1], func(w io.Writer) error {
				_, werr := io.WriteString(w, script)
				return werr
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			} else {
				fmt.Println("dumped to", fields[1])
			}
			return true
		}
		fmt.Print(script)
	case ".help":
		fmt.Println(`statements end with ';' and may span lines
meta-commands (remote session):
  .stats           engine + server counters
  .dump [FILE]     write a script recreating the remote database
  .ping            check the server is alive
  .quit            exit`)
	case ".tables", ".rules", ".analyze", ".trace", ".load":
		fmt.Fprintf(os.Stderr, "%s is not available over -connect (try .dump or .help)\n", fields[0])
	default:
		fmt.Fprintf(os.Stderr, "unknown meta-command %s (try .help)\n", fields[0])
	}
	return true
}

func printEngineStats(s sopr.Stats) {
	fmt.Printf("committed=%d rolled_back=%d external_transitions=%d rule_considerations=%d rule_firings=%d index_lookups=%d heap_scans=%d\n",
		s.Committed, s.RolledBack, s.ExternalTransitions, s.RuleConsiderations, s.RuleFirings, s.IndexLookups, s.HeapScans)
	fmt.Printf("wal: appends=%d bytes=%d recovered_records=%d checkpoints=%d\n",
		s.WALAppends, s.WALBytes, s.RecoveredRecords, s.Checkpoints)
	if s.GroupCommits > 0 {
		fmt.Printf("wal: group_commits=%d grouped_txns=%d txns_per_sync=%.2f\n",
			s.GroupCommits, s.GroupedTxns, s.TxnsPerSync)
	}
	if s.PlannedQueries > 0 || s.PlanProbeFallbacks > 0 {
		fmt.Printf("planner: planned_queries=%d probe_fallbacks=%d\n",
			s.PlannedQueries, s.PlanProbeFallbacks)
	}
}
