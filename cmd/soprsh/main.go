// Command soprsh is an interactive shell for the set-oriented production
// rules engine: type SQL and rule-language statements terminated by ';',
// and meta-commands starting with '.'.
//
//	$ go run ./cmd/soprsh
//	sopr> create table t (a int);
//	sopr> create rule r when inserted into t then delete from t where a < 0 end;
//	sopr> insert into t values (1), (-2);
//	rule r fired [I:0 D:1 U:0 S:0]
//	sopr> select * from t;
//	a
//	-
//	1
//
// Meta-commands: .tables  .rules  .analyze  .trace on|off  .help  .quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"sopr"
)

func main() {
	selectTriggers := flag.Bool("select-triggers", false, "enable Section 5.1 select-triggered rules")
	maxTransitions := flag.Int("max-transitions", 0, "runaway guard: max rule transitions per transaction (0 = default)")
	flag.Parse()

	var opts []sopr.Option
	if *selectTriggers {
		opts = append(opts, sopr.WithSelectTriggers())
	}
	if *maxTransitions > 0 {
		opts = append(opts, sopr.WithMaxRuleTransitions(*maxTransitions))
	}
	db := sopr.Open(opts...)

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1024*1024), 1024*1024)
	interactive := isInteractive()
	var buf strings.Builder
	prompt := func() {
		if interactive {
			if buf.Len() == 0 {
				fmt.Print("sopr> ")
			} else {
				fmt.Print("  ... ")
			}
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, ".") {
			if !meta(db, trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			run(db, buf.String())
			buf.Reset()
		}
		prompt()
	}
	if buf.Len() > 0 {
		run(db, buf.String())
	}
}

func isInteractive() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

func run(db *sopr.DB, src string) {
	res, err := db.Exec(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return
	}
	for _, f := range res.Firings {
		fmt.Printf("rule %s fired %s\n", f.Rule, f.Effect)
	}
	if res.RolledBack {
		fmt.Printf("transaction ROLLED BACK by rule %q\n", res.RollbackRule)
	}
	for _, q := range res.Results {
		fmt.Println(q)
		fmt.Printf("(%d row(s))\n", len(q.Data))
	}
}

// meta handles dot-commands; it returns false to quit.
func meta(db *sopr.DB, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ".quit", ".exit":
		return false
	case ".tables":
		for _, t := range db.Tables() {
			fmt.Println(t)
		}
	case ".rules":
		for _, r := range db.Rules() {
			fmt.Println(r)
		}
	case ".analyze":
		rep := db.AnalyzeRules()
		warnings := rep.Warnings()
		if len(warnings) == 0 {
			fmt.Println("no warnings")
		}
		for _, w := range warnings {
			fmt.Println("warning:", w)
		}
		for _, e := range rep.Edges {
			fmt.Printf("may trigger: %s -> %s\n", e[0], e[1])
		}
	case ".stats":
		s := db.Stats()
		fmt.Printf("committed=%d rolled_back=%d external_transitions=%d rule_considerations=%d rule_firings=%d\n",
			s.Committed, s.RolledBack, s.ExternalTransitions, s.RuleConsiderations, s.RuleFirings)
	case ".dump":
		if len(fields) == 2 {
			f, err := os.Create(fields[1])
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return true
			}
			defer f.Close()
			if err := db.Dump(f); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			} else {
				fmt.Println("dumped to", fields[1])
			}
			return true
		}
		if err := db.Dump(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	case ".load":
		if len(fields) != 2 {
			fmt.Fprintln(os.Stderr, "usage: .load FILE")
			return true
		}
		f, err := os.Open(fields[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return true
		}
		defer f.Close()
		if err := db.Load(f); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		} else {
			fmt.Println("loaded", fields[1])
		}
	case ".trace":
		if len(fields) == 2 && fields[1] == "on" {
			db.OnTrace(func(ev sopr.TraceEvent) {
				switch ev.Kind {
				case sopr.TraceExternalTransition:
					fmt.Printf("-- external transition %s\n", ev.Effect)
				case sopr.TraceRuleConsidered:
					fmt.Printf("-- consider %s (condition=%v) %s\n", ev.Rule, ev.CondHeld, ev.Effect)
				case sopr.TraceRuleFired:
					fmt.Printf("-- fire %s %s\n", ev.Rule, ev.Effect)
				case sopr.TraceRollback:
					fmt.Printf("-- rollback by %s\n", ev.Rule)
				case sopr.TraceCommit:
					fmt.Println("-- commit")
				}
			})
			fmt.Println("trace on")
		} else {
			db.OnTrace(nil)
			fmt.Println("trace off")
		}
	case ".help":
		fmt.Println(`statements end with ';' and may span lines
meta-commands:
  .tables          list tables
  .rules           list rules
  .analyze         static rule analysis (Section 6)
  .stats           cumulative engine counters
  .trace on|off    show the Figure 1 algorithm's steps
  .dump [FILE]     write a script recreating the database
  .load FILE       execute a dump script
  .quit            exit`)
	default:
		fmt.Fprintf(os.Stderr, "unknown meta-command %s (try .help)\n", fields[0])
	}
	return true
}
