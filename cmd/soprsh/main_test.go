package main

import (
	"bytes"
	"context"
	"os"
	"strings"
	"testing"
	"time"

	"sopr"
	"sopr/client"
	"sopr/internal/server"
)

// capture redirects os.Stdout around fn and returns what was printed.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b bytes.Buffer
		b.ReadFrom(r)
		done <- b.String()
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

func shellDB(t *testing.T) *sopr.DB {
	t.Helper()
	db := sopr.Open()
	db.MustExec(`create table t (a int)`)
	db.MustExec(`create rule r when inserted into t then delete from t where a < 0 end`)
	return db
}

func TestRunStatement(t *testing.T) {
	db := shellDB(t)
	out := capture(t, func() { run(db, `insert into t values (1), (-2);`) })
	if !strings.Contains(out, "rule r fired") {
		t.Errorf("firing not reported: %q", out)
	}
	out = capture(t, func() { run(db, `select * from t;`) })
	if !strings.Contains(out, "1 row(s)") {
		t.Errorf("row count missing: %q", out)
	}
}

func TestRunRollbackReported(t *testing.T) {
	db := shellDB(t)
	db.MustExec(`create rule guard when inserted into t
		if exists (select * from inserted t where a = 13) then rollback`)
	out := capture(t, func() { run(db, `insert into t values (13);`) })
	if !strings.Contains(out, "ROLLED BACK") || !strings.Contains(out, "guard") {
		t.Errorf("rollback not reported: %q", out)
	}
}

func TestRunError(t *testing.T) {
	db := shellDB(t)
	// Errors go to stderr; stdout stays clean and the shell keeps going.
	out := capture(t, func() { run(db, `select * from nosuch;`) })
	if strings.Contains(out, "nosuch") {
		t.Errorf("error leaked to stdout: %q", out)
	}
}

// captureStderr redirects os.Stderr around fn and returns what was printed.
func captureStderr(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	done := make(chan string)
	go func() {
		var b bytes.Buffer
		b.ReadFrom(r)
		done <- b.String()
	}()
	fn()
	w.Close()
	os.Stderr = old
	return <-done
}

// TestErrorLineReporting checks that a failing statement in a
// multi-statement script is reported with its line in the overall input,
// not just the error text relative to the one statement.
func TestErrorLineReporting(t *testing.T) {
	db := shellDB(t)
	// Parse error: the statement buffer began at input line 10, the bad
	// token is on the buffer's second line => input line 11.
	out := captureStderr(t, func() {
		runAt(db, "insert into t values (1);\nnot sql at all;", 10)
	})
	if !strings.Contains(out, "line 11") {
		t.Errorf("parse error not mapped to input line 11: %q", out)
	}
	// Execution error: no position of its own, attributed to the
	// statement's starting line.
	out = captureStderr(t, func() {
		runAt(db, "select * from nosuch;", 7)
	})
	if !strings.Contains(out, "line 7") {
		t.Errorf("exec error not attributed to line 7: %q", out)
	}
	// run() keeps the old relative numbering.
	out = captureStderr(t, func() {
		run(db, "insert into t values (1);\nnot sql at all;")
	})
	if !strings.Contains(out, "line 2") {
		t.Errorf("run: %q", out)
	}
}

// startTestServer serves db for the -connect path tests.
func startTestServer(t *testing.T, db *sopr.DB) string {
	t.Helper()
	srv := server.New(sopr.Synchronized(db), server.Config{})
	ln, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ln.Addr().String()
}

// TestConnectModeRun drives run() and the remote meta-commands against a
// live server, mirroring what `soprsh -connect addr` does.
func TestConnectModeRun(t *testing.T) {
	addr := startTestServer(t, func() *sopr.DB {
		db := sopr.Open()
		db.MustExec(`create table t (a int)`)
		db.MustExec(`create rule r when inserted into t then delete from t where a < 0 end`)
		return db
	}())
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	out := capture(t, func() { run(c, `insert into t values (1), (-2);`) })
	if !strings.Contains(out, "rule r fired") {
		t.Errorf("remote firing not reported: %q", out)
	}
	out = capture(t, func() { run(c, `select * from t;`) })
	if !strings.Contains(out, "1 row(s)") {
		t.Errorf("remote rows missing: %q", out)
	}
	// Remote parse errors map to input lines too.
	errOut := captureStderr(t, func() {
		runAt(c, "insert into t values (2);\nnot sql at all;", 20)
	})
	if !strings.Contains(errOut, "line 21") {
		t.Errorf("remote parse error not mapped to line 21: %q", errOut)
	}

	out = capture(t, func() { metaRemote(c, ".ping") })
	if !strings.Contains(out, "pong") {
		t.Errorf(".ping: %q", out)
	}
	out = capture(t, func() { metaRemote(c, ".stats") })
	if !strings.Contains(out, "committed=") || !strings.Contains(out, "server:") {
		t.Errorf(".stats: %q", out)
	}
	out = capture(t, func() { metaRemote(c, ".dump") })
	if !strings.Contains(out, "CREATE TABLE t") {
		t.Errorf(".dump: %q", out)
	}
	out = capture(t, func() { metaRemote(c, ".help") })
	if !strings.Contains(out, "remote session") {
		t.Errorf(".help: %q", out)
	}
	captureStderr(t, func() {
		if !metaRemote(c, ".tables") {
			t.Error(".tables terminated the remote shell")
		}
	})
	if metaRemote(c, ".quit") {
		t.Error(".quit should terminate")
	}
}

func TestMetaCommands(t *testing.T) {
	db := shellDB(t)
	cases := []struct {
		cmd  string
		want string
	}{
		{".tables", "t"},
		{".rules", "r"},
		{".analyze", "no warnings"},
		{".stats", "committed="},
		{".help", ".dump"},
		{".nosuchcmd", ""}, // error on stderr, nothing on stdout
	}
	for _, c := range cases {
		out := capture(t, func() {
			if !meta(db, c.cmd) {
				t.Errorf("%s terminated the shell", c.cmd)
			}
		})
		if c.want != "" && !strings.Contains(out, c.want) {
			t.Errorf("%s output %q missing %q", c.cmd, out, c.want)
		}
	}
	if meta(db, ".quit") {
		t.Error(".quit should terminate")
	}
	if meta(db, ".exit") {
		t.Error(".exit should terminate")
	}
}

func TestMetaTrace(t *testing.T) {
	db := shellDB(t)
	out := capture(t, func() {
		meta(db, ".trace on")
		run(db, `insert into t values (-5);`)
		meta(db, ".trace off")
	})
	for _, frag := range []string{"trace on", "external transition", "fire r", "commit", "trace off"} {
		if !strings.Contains(out, frag) {
			t.Errorf("trace output missing %q:\n%s", frag, out)
		}
	}
}

func TestMetaDumpLoad(t *testing.T) {
	db := shellDB(t)
	db.MustExec(`insert into t values (7)`)
	dir := t.TempDir()
	file := dir + "/dump.sql"
	out := capture(t, func() { meta(db, ".dump "+file) })
	if !strings.Contains(out, "dumped to") {
		t.Fatalf("dump: %q", out)
	}
	db2 := sopr.Open()
	out = capture(t, func() { meta(db2, ".load "+file) })
	if !strings.Contains(out, "loaded") {
		t.Fatalf("load: %q", out)
	}
	if db2.MustQuery(`select a from t`).Data[0][0] != int64(7) {
		t.Error("loaded data wrong")
	}
	// Dump to stdout.
	out = capture(t, func() { meta(db, ".dump") })
	if !strings.Contains(out, "CREATE TABLE t") {
		t.Errorf("stdout dump: %q", out)
	}
	// Load usage / missing file errors stay off stdout.
	capture(t, func() { meta(db, ".load") })
	capture(t, func() { meta(db, ".load /nonexistent/nope.sql") })
}
