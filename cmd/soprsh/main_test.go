package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"sopr"
)

// capture redirects os.Stdout around fn and returns what was printed.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b bytes.Buffer
		b.ReadFrom(r)
		done <- b.String()
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

func shellDB(t *testing.T) *sopr.DB {
	t.Helper()
	db := sopr.Open()
	db.MustExec(`create table t (a int)`)
	db.MustExec(`create rule r when inserted into t then delete from t where a < 0 end`)
	return db
}

func TestRunStatement(t *testing.T) {
	db := shellDB(t)
	out := capture(t, func() { run(db, `insert into t values (1), (-2);`) })
	if !strings.Contains(out, "rule r fired") {
		t.Errorf("firing not reported: %q", out)
	}
	out = capture(t, func() { run(db, `select * from t;`) })
	if !strings.Contains(out, "1 row(s)") {
		t.Errorf("row count missing: %q", out)
	}
}

func TestRunRollbackReported(t *testing.T) {
	db := shellDB(t)
	db.MustExec(`create rule guard when inserted into t
		if exists (select * from inserted t where a = 13) then rollback`)
	out := capture(t, func() { run(db, `insert into t values (13);`) })
	if !strings.Contains(out, "ROLLED BACK") || !strings.Contains(out, "guard") {
		t.Errorf("rollback not reported: %q", out)
	}
}

func TestRunError(t *testing.T) {
	db := shellDB(t)
	// Errors go to stderr; stdout stays clean and the shell keeps going.
	out := capture(t, func() { run(db, `select * from nosuch;`) })
	if strings.Contains(out, "nosuch") {
		t.Errorf("error leaked to stdout: %q", out)
	}
}

func TestMetaCommands(t *testing.T) {
	db := shellDB(t)
	cases := []struct {
		cmd  string
		want string
	}{
		{".tables", "t"},
		{".rules", "r"},
		{".analyze", "no warnings"},
		{".stats", "committed="},
		{".help", ".dump"},
		{".nosuchcmd", ""}, // error on stderr, nothing on stdout
	}
	for _, c := range cases {
		out := capture(t, func() {
			if !meta(db, c.cmd) {
				t.Errorf("%s terminated the shell", c.cmd)
			}
		})
		if c.want != "" && !strings.Contains(out, c.want) {
			t.Errorf("%s output %q missing %q", c.cmd, out, c.want)
		}
	}
	if meta(db, ".quit") {
		t.Error(".quit should terminate")
	}
	if meta(db, ".exit") {
		t.Error(".exit should terminate")
	}
}

func TestMetaTrace(t *testing.T) {
	db := shellDB(t)
	out := capture(t, func() {
		meta(db, ".trace on")
		run(db, `insert into t values (-5);`)
		meta(db, ".trace off")
	})
	for _, frag := range []string{"trace on", "external transition", "fire r", "commit", "trace off"} {
		if !strings.Contains(out, frag) {
			t.Errorf("trace output missing %q:\n%s", frag, out)
		}
	}
}

func TestMetaDumpLoad(t *testing.T) {
	db := shellDB(t)
	db.MustExec(`insert into t values (7)`)
	dir := t.TempDir()
	file := dir + "/dump.sql"
	out := capture(t, func() { meta(db, ".dump "+file) })
	if !strings.Contains(out, "dumped to") {
		t.Fatalf("dump: %q", out)
	}
	db2 := sopr.Open()
	out = capture(t, func() { meta(db2, ".load "+file) })
	if !strings.Contains(out, "loaded") {
		t.Fatalf("load: %q", out)
	}
	if db2.MustQuery(`select a from t`).Data[0][0] != int64(7) {
		t.Error("loaded data wrong")
	}
	// Dump to stdout.
	out = capture(t, func() { meta(db, ".dump") })
	if !strings.Contains(out, "CREATE TABLE t") {
		t.Errorf("stdout dump: %q", out)
	}
	// Load usage / missing file errors stay off stdout.
	capture(t, func() { meta(db, ".load") })
	capture(t, func() { meta(db, ".load /nonexistent/nope.sql") })
}
