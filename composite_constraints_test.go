package sopr

import (
	"strings"
	"testing"
)

func compositeDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	db.MustExec(`
		create table region (country varchar, city varchar, pop int);
		create table office (name varchar, country varchar, city varchar);
	`)
	db.MustExec(`insert into region values ('us', 'sf', 800), ('us', 'ny', 8000), ('de', 'muc', 1500)`)
	return db
}

func TestCompositeForeignKey(t *testing.T) {
	db := compositeDB(t)
	fk := ForeignKeyComposite("office_region", "office",
		[]string{"country", "city"}, "region", []string{"country", "city"}, CascadeDelete)
	if err := db.AddConstraint(fk); err != nil {
		t.Fatal(err)
	}
	// Valid reference.
	res := db.MustExec(`insert into office values ('hq', 'us', 'sf')`)
	if res.RolledBack {
		t.Fatal("valid composite reference rejected")
	}
	// Key exists only as a pair: ('us','muc') has both halves present in
	// some row, but not together.
	res = db.MustExec(`insert into office values ('bad', 'us', 'muc')`)
	if !res.RolledBack {
		t.Error("cross-pair reference accepted")
	}
	// All-NULL key = no reference, allowed.
	res = db.MustExec(`insert into office values ('nowhere', null, null)`)
	if res.RolledBack {
		t.Error("all-NULL composite key rejected")
	}
	// Partially NULL key rejected.
	res = db.MustExec(`insert into office values ('half', 'us', null)`)
	if !res.RolledBack {
		t.Error("partially NULL composite key accepted")
	}
	// Updating one key column to break the pair rolls back.
	res = db.MustExec(`update office set city = 'muc' where name = 'hq'`)
	if !res.RolledBack {
		t.Error("FK-breaking update accepted")
	}
	// Cascade on parent delete removes matching children only.
	db.MustExec(`insert into office values ('branch', 'us', 'ny')`)
	res = db.MustExec(`delete from region where city = 'sf'`)
	if res.RolledBack {
		t.Fatal("cascade rolled back")
	}
	rows := db.MustQuery(`select name from office where country is not null order by name`)
	if len(rows.Data) != 1 || rows.Data[0][0] != "branch" {
		t.Errorf("after cascade: %v", rows.Data)
	}
}

func TestCompositeForeignKeyRestrictAndSetNull(t *testing.T) {
	db := compositeDB(t)
	if err := db.AddConstraint(ForeignKeyComposite("fk", "office",
		[]string{"country", "city"}, "region", []string{"country", "city"}, RestrictDelete)); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`insert into office values ('hq', 'us', 'sf')`)
	if res := db.MustExec(`delete from region where city = 'sf'`); !res.RolledBack {
		t.Error("restrict did not roll back")
	}
	if res := db.MustExec(`delete from region where city = 'muc'`); res.RolledBack {
		t.Error("unreferenced parent delete rolled back")
	}

	db2 := compositeDB(t)
	if err := db2.AddConstraint(ForeignKeyComposite("fk", "office",
		[]string{"country", "city"}, "region", []string{"country", "city"}, SetNullDelete)); err != nil {
		t.Fatal(err)
	}
	db2.MustExec(`insert into office values ('hq', 'us', 'sf')`)
	if res := db2.MustExec(`delete from region where city = 'sf'`); res.RolledBack {
		t.Fatal("set-null rolled back")
	}
	rows := db2.MustQuery(`select country, city from office where name = 'hq'`)
	if rows.Data[0][0] != nil || rows.Data[0][1] != nil {
		t.Errorf("set-null: %v", rows.Data)
	}
}

func TestUniqueColumns(t *testing.T) {
	db := compositeDB(t)
	if err := db.AddConstraint(UniqueColumns("region_key", "region", "country", "city")); err != nil {
		t.Fatal(err)
	}
	if res := db.MustExec(`insert into region values ('us', 'sf', 1)`); !res.RolledBack {
		t.Error("duplicate composite key accepted")
	}
	if res := db.MustExec(`insert into region values ('us', 'muc', 1)`); res.RolledBack {
		t.Error("fresh pair rejected")
	}
	// Updates re-check.
	if res := db.MustExec(`update region set city = 'ny' where city = 'sf'`); !res.RolledBack {
		t.Error("update to duplicate pair accepted")
	}
	// NULL in any key column exempts the row.
	if res := db.MustExec(`insert into region values ('us', null, 1), ('us', null, 2)`); res.RolledBack {
		t.Error("NULL-keyed rows rejected")
	}
}

func TestCompositeCompileErrors(t *testing.T) {
	if _, err := CompileConstraint(ForeignKeyComposite("x", "c", []string{"a"}, "p", []string{"k1", "k2"}, CascadeDelete)); err == nil {
		t.Error("mismatched key lengths accepted")
	}
	if _, err := CompileConstraint(ForeignKeyComposite("x", "c", nil, "p", nil, CascadeDelete)); err == nil {
		t.Error("empty key lists accepted")
	}
	if _, err := CompileConstraint(UniqueColumns("x", "t")); err == nil {
		t.Error("empty unique column list accepted")
	}
	if _, err := CompileConstraint(UniqueColumns("x", "t", "a b")); err == nil {
		t.Error("bad identifier accepted")
	}
	stmts, err := CompileConstraint(UniqueColumns("k", "t", "a", "b"))
	if err != nil || len(stmts) != 1 || !strings.Contains(stmts[0], "group by a, b") {
		t.Errorf("compile: %v %v", stmts, err)
	}
}
