package sopr

import (
	"fmt"
	"io"
	"sync"
)

// The paper's model of system execution is a single stream of operation
// blocks — "multiple users, concurrent processing, and failures are all
// transparent" (Section 2.1) — so DB itself is not safe for concurrent use.
// SynchronizedDB shares one DB between goroutines with a reader-writer
// lock.
//
// The single-stream constraint binds *writes* only: an operation block
// produces a transition, triggers rules, and must therefore occupy the
// stream alone, so Exec (and the other mutating entry points) take the
// lock exclusively — concurrent Execs are simply interleaved as a stream
// of transactions, and rule semantics are unchanged. Queries perform no
// transition and trigger no rules (Section 2.1 places them outside the
// operation-block stream unless the Section 5.1 select-trigger extension
// routes them through Exec), so Query, Stats, Dump, and Recovered take
// the lock shared: any number of them run concurrently, scaling reads
// across cores, and every one of them still observes a committed,
// writer-free state. This is sound because the engine's read path is
// mutation-free — the only state it touches concurrently, the access-path
// counters, is atomic (see storage.AccessStats), and the trace handler is
// swapped atomically and emitted only from the exclusive path.
type SynchronizedDB struct {
	mu sync.RWMutex
	db *DB
}

// Synchronized wraps a DB for concurrent use. The wrapped DB must not be
// used directly afterwards.
func Synchronized(db *DB) *SynchronizedDB {
	return &SynchronizedDB{db: db}
}

// Exec runs a script as one serialized operation block, under the
// exclusive lock: writes preserve the paper's single-stream semantics.
func (s *SynchronizedDB) Exec(src string) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Exec(src)
}

// MustExec is Exec that panics on error — for examples and tests.
func (s *SynchronizedDB) MustExec(src string) *Result {
	res, err := s.Exec(src)
	if err != nil {
		panic(fmt.Sprintf("sopr: %v", err))
	}
	return res
}

// Query evaluates a SELECT under the shared lock: queries run concurrently
// with each other (never with a write) and see only committed state.
func (s *SynchronizedDB) Query(src string) (*Rows, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.Query(src)
}

// MustQuery is Query that panics on error.
func (s *SynchronizedDB) MustQuery(src string) *Rows {
	r, err := s.Query(src)
	if err != nil {
		panic(fmt.Sprintf("sopr: %v", err))
	}
	return r
}

// TraceTo installs (or, with nil, removes) a line-per-event trace writer on
// the wrapped DB, under the exclusive lock. Trace events are emitted only
// while some goroutine holds the exclusive lock in Exec, so writes to w
// are serialized and no shared-lock reader ever runs the handler.
func (s *SynchronizedDB) TraceTo(w io.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.db.TraceTo(w)
}

// Stats returns counters under the shared lock. The access-path counters
// it reads are updated atomically by concurrent queries, so a snapshot
// taken while other readers run is well-defined (each counter is a value
// that was current at some instant during the call).
func (s *SynchronizedDB) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.Stats()
}

// Dump serializes the database under the shared lock; with no writer
// running, the image is a consistent committed snapshot.
func (s *SynchronizedDB) Dump(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.Dump(w)
}

// Checkpoint writes a checkpoint image under the exclusive lock (no
// transaction can be in flight while it runs, so the image is a consistent
// snapshot). Exclusive rather than shared because it also prunes log
// segments — a durable-state mutation.
func (s *SynchronizedDB) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Checkpoint()
}

// Close closes the wrapped database's write-ahead log under the exclusive
// lock.
func (s *SynchronizedDB) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Close()
}

// CurrentLSN reports the last durable log sequence number under the
// shared lock — the read-your-writes token the server attaches to exec
// responses.
func (s *SynchronizedDB) CurrentLSN() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.CurrentLSN()
}

// Recovered reports whether the wrapped database recovered prior state,
// under the shared lock (the flag is set once at open and never mutated).
func (s *SynchronizedDB) Recovered() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.Recovered()
}

// TraceTo writes a human-readable line per rule-processing event to w
// (the same format the soprsh `.trace on` command uses). Pass nil to stop
// tracing. It is a convenience over OnTrace.
func (db *DB) TraceTo(w io.Writer) {
	if w == nil {
		db.OnTrace(nil)
		return
	}
	db.OnTrace(func(ev TraceEvent) {
		switch ev.Kind {
		case TraceExternalTransition:
			fmt.Fprintf(w, "-- external transition %s\n", ev.Effect)
		case TraceRuleConsidered:
			fmt.Fprintf(w, "-- consider %s (condition=%v) %s\n", ev.Rule, ev.CondHeld, ev.Effect)
		case TraceRuleFired:
			fmt.Fprintf(w, "-- fire %s %s\n", ev.Rule, ev.Effect)
		case TraceRollback:
			fmt.Fprintf(w, "-- rollback by %s\n", ev.Rule)
		case TraceCommit:
			fmt.Fprintf(w, "-- commit\n")
		}
	})
}
