package sopr

import (
	"fmt"
	"io"
	"sync"
)

// The paper's model of system execution is a single stream of operation
// blocks — "multiple users, concurrent processing, and failures are all
// transparent" (Section 2.1) — so DB itself is not safe for concurrent use.
// SynchronizedDB serializes a DB behind a mutex for callers that want to
// share one database between goroutines; each Exec call remains one
// operation block, so rule semantics are unchanged: concurrent Execs are
// simply interleaved as a stream of transactions.
type SynchronizedDB struct {
	mu sync.Mutex
	db *DB
}

// Synchronized wraps a DB for concurrent use. The wrapped DB must not be
// used directly afterwards.
func Synchronized(db *DB) *SynchronizedDB {
	return &SynchronizedDB{db: db}
}

// Exec runs a script as one serialized operation block.
func (s *SynchronizedDB) Exec(src string) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Exec(src)
}

// MustExec is Exec that panics on error — for examples and tests.
func (s *SynchronizedDB) MustExec(src string) *Result {
	res, err := s.Exec(src)
	if err != nil {
		panic(fmt.Sprintf("sopr: %v", err))
	}
	return res
}

// Query evaluates a SELECT under the lock.
func (s *SynchronizedDB) Query(src string) (*Rows, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Query(src)
}

// MustQuery is Query that panics on error.
func (s *SynchronizedDB) MustQuery(src string) *Rows {
	r, err := s.Query(src)
	if err != nil {
		panic(fmt.Sprintf("sopr: %v", err))
	}
	return r
}

// TraceTo installs (or, with nil, removes) a line-per-event trace writer on
// the wrapped DB, under the lock. Trace events are emitted while some
// goroutine holds the lock in Exec, so writes to w are serialized.
func (s *SynchronizedDB) TraceTo(w io.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.db.TraceTo(w)
}

// Stats returns counters under the lock.
func (s *SynchronizedDB) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Stats()
}

// Dump serializes the database under the lock.
func (s *SynchronizedDB) Dump(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Dump(w)
}

// Checkpoint writes a checkpoint image under the lock (no transaction can
// be in flight while it runs, so the image is a consistent snapshot).
func (s *SynchronizedDB) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Checkpoint()
}

// Close closes the wrapped database's write-ahead log under the lock.
func (s *SynchronizedDB) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Close()
}

// Recovered reports whether the wrapped database recovered prior state.
func (s *SynchronizedDB) Recovered() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Recovered()
}

// TraceTo writes a human-readable line per rule-processing event to w
// (the same format the soprsh `.trace on` command uses). Pass nil to stop
// tracing. It is a convenience over OnTrace.
func (db *DB) TraceTo(w io.Writer) {
	if w == nil {
		db.OnTrace(nil)
		return
	}
	db.OnTrace(func(ev TraceEvent) {
		switch ev.Kind {
		case TraceExternalTransition:
			fmt.Fprintf(w, "-- external transition %s\n", ev.Effect)
		case TraceRuleConsidered:
			fmt.Fprintf(w, "-- consider %s (condition=%v) %s\n", ev.Rule, ev.CondHeld, ev.Effect)
		case TraceRuleFired:
			fmt.Fprintf(w, "-- fire %s %s\n", ev.Rule, ev.Effect)
		case TraceRollback:
			fmt.Fprintf(w, "-- rollback by %s\n", ev.Rule)
		case TraceCommit:
			fmt.Fprintf(w, "-- commit\n")
		}
	})
}
