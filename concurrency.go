package sopr

import (
	"fmt"
	"io"
	"sync"
)

// The paper's model of system execution is a single stream of operation
// blocks — "multiple users, concurrent processing, and failures are all
// transparent" (Section 2.1) — so DB itself is not safe for concurrent
// mutation. SynchronizedDB shares one DB between goroutines: writes are
// serialized by a mutex, reads take no lock at all.
//
// The single-stream constraint binds *writes* only: an operation block
// produces a transition, triggers rules, and must therefore occupy the
// stream alone, so Exec (and the other mutating entry points) take the
// mutex — concurrent Execs are simply interleaved as a stream of
// transactions, and rule semantics are unchanged. Queries perform no
// transition and trigger no rules (Section 2.1 places them outside the
// operation-block stream unless the Section 5.1 select-trigger extension
// routes them through Exec), so Query, Stats, Dump, CurrentLSN and
// Recovered acquire nothing: every commit publishes an immutable snapshot
// of the whole committed state behind an atomic pointer (see
// internal/storage's copy-on-write tables), and each read loads that
// pointer once and traverses frozen structures. Readers never wait behind
// a writer, never contend with each other, and always observe some
// committed point-in-time state — read throughput scales with cores (the
// S3 experiment in EXPERIMENTS.md measures it against the previous
// shared-lock design). The only words readers share with anyone are the
// storage layer's atomic access-path counters.
type SynchronizedDB struct {
	mu sync.Mutex
	db *DB
}

// Synchronized wraps a DB for concurrent use. The wrapped DB must not be
// used directly afterwards.
func Synchronized(db *DB) *SynchronizedDB {
	return &SynchronizedDB{db: db}
}

// Exec runs a script as one serialized operation block, under the write
// mutex: writes preserve the paper's single-stream semantics. The
// durability wait happens *after* the mutex is released: the engine pass
// (parse, rules, append to the log, in-memory commit) is serialized, but
// the commit-record fsync is not — overlapping committers park on the
// write-ahead log's commit queue and one leader fsync acknowledges all of
// them (group commit). A transaction is still only acknowledged once its
// record is durable; what changed is how many acknowledgements one fsync
// covers.
func (s *SynchronizedDB) Exec(src string) (*Result, error) {
	s.mu.Lock()
	res, lsn, err := s.db.execNoWait(src)
	s.mu.Unlock()
	return s.db.finish(res, lsn, err)
}

// ExecBatch runs a batch of data-manipulation statements as one operation
// block (see DB.ExecBatch), serialized under the write mutex with the
// durability wait outside it — the batch pays one engine pass, one commit
// record, and one (shared) fsync no matter how many statements it holds.
func (s *SynchronizedDB) ExecBatch(stmts []string) (*Result, error) {
	s.mu.Lock()
	res, lsn, err := s.db.execBatchNoWait(stmts)
	s.mu.Unlock()
	return s.db.finish(res, lsn, err)
}

// MustExec is Exec that panics on error — for examples and tests.
func (s *SynchronizedDB) MustExec(src string) *Result {
	res, err := s.Exec(src)
	if err != nil {
		panic(fmt.Sprintf("sopr: %v", err))
	}
	return res
}

// Query evaluates a SELECT with zero locking: it runs against the
// currently published committed snapshot (one atomic pointer load),
// concurrent with other readers and with the write path, and always sees
// a consistent committed state.
func (s *SynchronizedDB) Query(src string) (*Rows, error) {
	return s.db.Query(src)
}

// MustQuery is Query that panics on error.
func (s *SynchronizedDB) MustQuery(src string) *Rows {
	r, err := s.Query(src)
	if err != nil {
		panic(fmt.Sprintf("sopr: %v", err))
	}
	return r
}

// TraceTo installs (or, with nil, removes) a line-per-event trace writer on
// the wrapped DB, under the write mutex. Trace events are emitted only
// while some goroutine holds the mutex in Exec, so writes to w are
// serialized and no lock-free reader ever runs the handler.
func (s *SynchronizedDB) TraceTo(w io.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.db.TraceTo(w)
}

// Stats returns counters with zero locking: the engine and WAL counters
// were captured into the published snapshot by the write path, and the
// access-path counters are atomic (concurrent readers advance them), so
// each counter is a value that was current at some instant during the
// call.
func (s *SynchronizedDB) Stats() Stats {
	return s.db.Stats()
}

// Dump serializes the published committed snapshot with zero locking. The
// image is a consistent point-in-time state — schema, data, indexes and
// rules from the same instant — even while a writer runs; an in-flight
// transaction is simply not visible.
func (s *SynchronizedDB) Dump(w io.Writer) error {
	return s.db.Dump(w)
}

// Checkpoint writes a checkpoint image under the write mutex (no
// transaction can be in flight while it runs, so the image is a consistent
// snapshot). It takes the mutex because it also prunes log segments — a
// durable-state mutation.
func (s *SynchronizedDB) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Checkpoint()
}

// Close closes the wrapped database's write-ahead log under the write
// mutex.
func (s *SynchronizedDB) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Close()
}

// CurrentLSN reports the last durable log sequence number captured with
// the published snapshot — the read-your-writes token the server attaches
// to exec responses. Lock-free: one atomic pointer load.
func (s *SynchronizedDB) CurrentLSN() uint64 {
	return s.db.CurrentLSN()
}

// Recovered reports whether the wrapped database recovered prior state
// (the flag is set once at open and never mutated, so no synchronization
// is needed).
func (s *SynchronizedDB) Recovered() bool {
	return s.db.Recovered()
}

// TraceTo writes a human-readable line per rule-processing event to w
// (the same format the soprsh `.trace on` command uses). Pass nil to stop
// tracing. It is a convenience over OnTrace.
func (db *DB) TraceTo(w io.Writer) {
	if w == nil {
		db.OnTrace(nil)
		return
	}
	db.OnTrace(func(ev TraceEvent) {
		switch ev.Kind {
		case TraceExternalTransition:
			fmt.Fprintf(w, "-- external transition %s\n", ev.Effect)
		case TraceRuleConsidered:
			fmt.Fprintf(w, "-- consider %s (condition=%v) %s\n", ev.Rule, ev.CondHeld, ev.Effect)
		case TraceRuleFired:
			fmt.Fprintf(w, "-- fire %s %s\n", ev.Rule, ev.Effect)
		case TraceRollback:
			fmt.Fprintf(w, "-- rollback by %s\n", ev.Rule)
		case TraceCommit:
			fmt.Fprintf(w, "-- commit\n")
		}
	})
}
