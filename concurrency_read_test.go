package sopr

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRowsSnapshotImmutable pins the snapshot guarantee documented on
// wrapResult: a Rows returned by Query shares no memory with live storage,
// so later mutations of the database never change a result the caller is
// still holding. The same must hold for Dump output — it is rendered from
// cloned tuples of an immutable published snapshot, so a dump taken before
// a mutation reloads to exactly the pre-mutation state. This is what makes
// it safe for SynchronizedDB to serve Query and Dump with no lock while a
// writer proceeds.
func TestRowsSnapshotImmutable(t *testing.T) {
	db := Open()
	db.MustExec(`create table t (id int, name varchar, score float)`)
	db.MustExec(`insert into t values (1, 'ann', 1.5), (2, 'bob', 2.5), (3, 'cid', 3.5)`)

	rows := db.MustQuery(`select id, name, score from t order by id`)
	if len(rows.Data) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows.Data))
	}
	// Deep-copy the snapshot before mutating the database, and take a dump
	// of the same state.
	wantTable := rows.String()
	want := make([][]any, len(rows.Data))
	for i, r := range rows.Data {
		want[i] = append([]any(nil), r...)
	}
	var preDump strings.Builder
	if err := db.Dump(&preDump); err != nil {
		t.Fatal(err)
	}

	db.MustExec(`update t set name = 'zap', score = 0.0 where id = 2`)
	db.MustExec(`delete from t where id = 1`)
	db.MustExec(`insert into t values (4, 'new', 4.5)`)

	// The held dump describes the pre-mutation state: a fresh database
	// restored from it answers the original query with the original rows.
	restored := Open()
	restored.MustExec(preDump.String())
	if got := restored.MustQuery(`select id, name, score from t order by id`).String(); got != wantTable {
		t.Errorf("dump taken before mutation restored to a different state:\n%s\nwant:\n%s", got, wantTable)
	}
	// A dump taken now reflects the new state (the snapshot advanced).
	var postDump strings.Builder
	if err := db.Dump(&postDump); err != nil {
		t.Fatal(err)
	}
	if postDump.String() == preDump.String() {
		t.Error("dump after mutation is identical to dump before mutation")
	}

	if rows.String() != wantTable {
		t.Errorf("held Rows table changed after mutation:\n%s", rows.String())
	}
	for i, r := range rows.Data {
		for j, cell := range r {
			if cell != want[i][j] {
				t.Errorf("held Rows.Data[%d][%d] = %v, want %v", i, j, cell, want[i][j])
			}
		}
	}
	// And the new query sees the new state (the snapshot is a copy, not a cache).
	after := db.MustQuery(`select count(*) from t`)
	if after.Data[0][0] != int64(3) {
		t.Errorf("post-mutation count = %v, want 3", after.Data[0][0])
	}
}

// stressSchema is the shared setup for the reader/writer stress test: a base
// table, an audit table, and rules that keep audit an exact mirror of t
// across both inserts and deletes. Because rules run inside the triggering
// transaction (Section 4), every committed state satisfies
// count(t) = count(audit) and sum(t.id) = sum(audit.id) — which is exactly
// what concurrent readers assert about each snapshot.
const stressSchema = `
	create table t (id int, v int);
	create table audit (id int, v int);
	create rule mirror when inserted into t
	then insert into audit (select id, v from inserted t)
	end;
	create rule unmirror when deleted from t
	then delete from audit where id in (select id from deleted t)
	end;
`

// stressScript generates the writer's deterministic operation sequence.
func stressScript(n int) []string {
	var ops []string
	for i := 0; i < n; i++ {
		ops = append(ops, fmt.Sprintf(`insert into t values (%d, %d)`, i, i%7))
		if i%7 == 3 && i >= 3 {
			ops = append(ops, fmt.Sprintf(`delete from t where id = %d`, i-3))
		}
	}
	return ops
}

// TestConcurrentReadersWriterStress runs reader goroutines against one
// writer over a rule-triggering workload. Run under -race (CI does), it
// checks the two halves of the concurrency contract:
//
//   - every Rows snapshot a reader observes is internally consistent — the
//     mirror/unmirror rule invariant holds in every committed state a
//     shared-lock query can see;
//   - the writer's effect is identical to serial execution — the final dump
//     equals a shadow database that executed the same script sequentially.
func TestConcurrentReadersWriterStress(t *testing.T) {
	const readers = 4
	const writerOps = 200

	db := Open()
	db.MustExec(stressSchema)
	sdb := Synchronized(db)
	script := stressScript(writerOps)

	var done atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for _, op := range script {
			if _, err := sdb.Exec(op); err != nil {
				errs <- fmt.Errorf("writer: %w", err)
				return
			}
		}
	}()

	const invariantQuery = `
		select (select count(*) from t), (select count(*) from audit),
		       (select sum(id) from t), (select sum(id) from audit)`
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !done.Load(); i++ {
				rows, err := sdb.Query(invariantQuery)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				row := rows.Data[0]
				if row[0] != row[1] || row[2] != row[3] {
					errs <- fmt.Errorf("reader %d: inconsistent snapshot: count %v vs %v, sum %v vs %v",
						r, row[0], row[1], row[2], row[3])
					return
				}
				switch {
				case i%16 == 5:
					s := sdb.Stats()
					if s.Committed < 0 || s.HeapScans < 0 {
						errs <- fmt.Errorf("reader %d: bogus stats %+v", r, s)
						return
					}
				case i%64 == 9:
					if err := sdb.Dump(io.Discard); err != nil {
						errs <- fmt.Errorf("reader %d: dump: %w", r, err)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The concurrent run must be indistinguishable from serial execution:
	// replay the identical script on a fresh shadow database, one statement
	// at a time, and compare full dumps.
	shadow := Open()
	shadow.MustExec(stressSchema)
	for _, op := range script {
		shadow.MustExec(op)
	}
	var got strings.Builder
	if err := sdb.Dump(&got); err != nil {
		t.Fatal(err)
	}
	want, err := shadow.DumpString()
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want {
		t.Errorf("concurrent dump differs from serial shadow:\n--- concurrent ---\n%s\n--- serial ---\n%s", got.String(), want)
	}
	// Sanity: the workload actually exercised the rule system.
	s := sdb.Stats()
	if s.RuleFirings == 0 || s.Committed == 0 {
		t.Errorf("workload fired no rules: %+v", s)
	}
}
