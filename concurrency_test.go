package sopr

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestSynchronizedDB(t *testing.T) {
	db := Open()
	db.MustExec(`create table t (id int, v int)`)
	db.MustExec(`
		create rule nonneg when inserted into t
		if exists (select * from inserted t where v < 0)
		then rollback
	`)
	sdb := Synchronized(db)

	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := w*perWorker + i
				v := id % 5
				if id%10 == 0 {
					v = -1 // every tenth insert is rejected by the rule
				}
				if _, err := sdb.Exec(fmt.Sprintf(`insert into t values (%d, %d)`, id, v)); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	rows, err := sdb.Query(`select count(*) from t`)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(workers*perWorker - workers*perWorker/10)
	if rows.Data[0][0] != want {
		t.Errorf("count = %v, want %d", rows.Data[0][0], want)
	}
	s := sdb.Stats()
	if s.Committed != want || s.RolledBack != int64(workers*perWorker/10) {
		t.Errorf("stats: %+v", s)
	}
	var b strings.Builder
	if err := sdb.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "CREATE TABLE t") {
		t.Error("dump through wrapper")
	}
}

// TestSynchronizedDBPassthroughs checks the wrapper is a drop-in for *DB:
// MustExec/MustQuery behave like their DB counterparts (including the panic
// on error) and TraceTo writes the same event lines.
func TestSynchronizedDBPassthroughs(t *testing.T) {
	sdb := Synchronized(Open())
	sdb.MustExec(`create table t (a int)`)
	sdb.MustExec(`create rule r when inserted into t then delete from t where a < 0 end`)

	var b strings.Builder
	sdb.TraceTo(&b)
	res := sdb.MustExec(`insert into t values (1), (-2)`)
	if len(res.Firings) != 1 || res.Firings[0].Rule != "r" {
		t.Errorf("firings = %+v", res.Firings)
	}
	for _, frag := range []string{"external transition", "fire r", "commit"} {
		if !strings.Contains(b.String(), frag) {
			t.Errorf("trace missing %q:\n%s", frag, b.String())
		}
	}
	sdb.TraceTo(nil)
	n := len(b.String())

	rows := sdb.MustQuery(`select a from t`)
	if len(rows.Data) != 1 || rows.Data[0][0] != int64(1) {
		t.Errorf("rows = %+v", rows.Data)
	}
	if len(b.String()) != n {
		t.Error("tracing not stopped")
	}

	for name, fn := range map[string]func(){
		"MustExec":  func() { sdb.MustExec(`insert into nosuch values (1)`) },
		"MustQuery": func() { sdb.MustQuery(`select * from nosuch`) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on error", name)
				}
			}()
			fn()
		}()
	}
}

func TestParseErrorPosition(t *testing.T) {
	db := Open()
	db.MustExec(`create table t (a int)`)
	_, err := db.Exec("insert into t values (1);\n insert bogus;")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *ParseError", err, err)
	}
	if pe.Line != 2 || pe.Col < 2 {
		t.Errorf("position = %d:%d, want line 2", pe.Line, pe.Col)
	}
	if !strings.Contains(err.Error(), "syntax error at line 2") {
		t.Errorf("message: %q", err.Error())
	}
	// Execution failures are not ParseErrors.
	if _, err := db.Exec(`select * from nosuch`); errors.As(err, &pe) {
		t.Errorf("exec failure classified as parse error: %v", err)
	}
	if _, err := db.Query(`select from from`); !errors.As(err, &pe) {
		t.Errorf("Query parse failure not a ParseError: %v", err)
	}
}

func TestTraceTo(t *testing.T) {
	db := Open()
	db.MustExec(`create table t (a int)`)
	db.MustExec(`create rule r when inserted into t then delete from t where a < 0 end`)
	var b strings.Builder
	db.TraceTo(&b)
	db.MustExec(`insert into t values (-1)`)
	out := b.String()
	for _, frag := range []string{"external transition", "consider r", "fire r", "commit"} {
		if !strings.Contains(out, frag) {
			t.Errorf("trace missing %q:\n%s", frag, out)
		}
	}
	db.TraceTo(nil)
	n := len(b.String())
	db.MustExec(`insert into t values (2)`)
	if len(b.String()) != n {
		t.Error("tracing not stopped")
	}
	// Rollback events traced too.
	db.MustExec(`create rule g when deleted from t then rollback`)
	var b2 strings.Builder
	db.TraceTo(&b2)
	db.MustExec(`delete from t`)
	if !strings.Contains(b2.String(), "rollback by g") {
		t.Errorf("rollback trace: %q", b2.String())
	}
}
