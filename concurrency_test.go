package sopr

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestSynchronizedDB(t *testing.T) {
	db := Open()
	db.MustExec(`create table t (id int, v int)`)
	db.MustExec(`
		create rule nonneg when inserted into t
		if exists (select * from inserted t where v < 0)
		then rollback
	`)
	sdb := Synchronized(db)

	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := w*perWorker + i
				v := id % 5
				if id%10 == 0 {
					v = -1 // every tenth insert is rejected by the rule
				}
				if _, err := sdb.Exec(fmt.Sprintf(`insert into t values (%d, %d)`, id, v)); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	rows, err := sdb.Query(`select count(*) from t`)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(workers*perWorker - workers*perWorker/10)
	if rows.Data[0][0] != want {
		t.Errorf("count = %v, want %d", rows.Data[0][0], want)
	}
	s := sdb.Stats()
	if s.Committed != want || s.RolledBack != int64(workers*perWorker/10) {
		t.Errorf("stats: %+v", s)
	}
	var b strings.Builder
	if err := sdb.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "CREATE TABLE t") {
		t.Error("dump through wrapper")
	}
}

func TestTraceTo(t *testing.T) {
	db := Open()
	db.MustExec(`create table t (a int)`)
	db.MustExec(`create rule r when inserted into t then delete from t where a < 0 end`)
	var b strings.Builder
	db.TraceTo(&b)
	db.MustExec(`insert into t values (-1)`)
	out := b.String()
	for _, frag := range []string{"external transition", "consider r", "fire r", "commit"} {
		if !strings.Contains(out, frag) {
			t.Errorf("trace missing %q:\n%s", frag, out)
		}
	}
	db.TraceTo(nil)
	n := len(b.String())
	db.MustExec(`insert into t values (2)`)
	if len(b.String()) != n {
		t.Error("tracing not stopped")
	}
	// Rollback events traced too.
	db.MustExec(`create rule g when deleted from t then rollback`)
	var b2 strings.Builder
	db.TraceTo(&b2)
	db.MustExec(`delete from t`)
	if !strings.Contains(b2.String(), "rollback by g") {
		t.Errorf("rollback trace: %q", b2.String())
	}
}
