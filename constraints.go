package sopr

import (
	"fmt"

	"sopr/internal/constraints"
)

// DeleteAction selects referential-integrity behavior when referenced
// parent rows are deleted.
type DeleteAction int

// Delete actions for referential integrity.
const (
	// CascadeDelete removes referencing child rows (the paper's
	// Example 3.1 "cascaded delete" method).
	CascadeDelete DeleteAction = iota
	// RestrictDelete rolls back transactions that would orphan child rows.
	RestrictDelete
	// SetNullDelete sets referencing columns to NULL.
	SetNullDelete
)

// Constraint is a declarative integrity constraint compiled into production
// rules, per the facility sketched in Section 6 of the paper and developed
// in [CW90]. Obtain instances from the constructor functions below and
// install them with DB.AddConstraint.
type Constraint struct {
	inner constraints.Constraint
}

// ForeignKey declares child.fk → parent.pk referential integrity with the
// given delete action. Inserting or re-pointing child rows to missing
// parents, and updating referenced parent keys, roll the transaction back.
func ForeignKey(name, child, fk, parent, pk string, onDelete DeleteAction) Constraint {
	return Constraint{inner: constraints.ReferentialIntegrity{
		Name:     name,
		Child:    child,
		FK:       fk,
		Parent:   parent,
		PK:       pk,
		OnDelete: constraints.DeleteAction(onDelete),
	}}
}

// Check declares a row-level domain constraint: every inserted or updated
// row of table must satisfy the SQL predicate check.
func Check(name, table, check string) Constraint {
	return Constraint{inner: constraints.Domain{Name: name, Table: table, Check: check}}
}

// UniqueColumn declares that a column's non-NULL values must be unique.
func UniqueColumn(name, table, column string) Constraint {
	return Constraint{inner: constraints.Unique{Name: name, Table: table, Column: column}}
}

// MaintainAggregate keeps the two-column table target(group, total) equal
// to SELECT groupCol, agg(aggCol) FROM source GROUP BY groupCol — derived
// data maintained automatically by a production rule.
func MaintainAggregate(name, target, source, groupCol, agg, aggCol string) Constraint {
	return Constraint{inner: constraints.Aggregate{
		Name:     name,
		Target:   target,
		Source:   source,
		GroupCol: groupCol,
		Agg:      agg,
		AggCol:   aggCol,
	}}
}

// ForeignKeyComposite declares multi-column referential integrity:
// child.(fk...) → parent.(pk...). All-NULL keys mean "no reference";
// partially NULL keys are rejected.
func ForeignKeyComposite(name, child string, fk []string, parent string, pk []string, onDelete DeleteAction) Constraint {
	return Constraint{inner: constraints.CompositeForeignKey{
		Name:     name,
		Child:    child,
		FK:       fk,
		Parent:   parent,
		PK:       pk,
		OnDelete: constraints.DeleteAction(onDelete),
	}}
}

// UniqueColumns declares a multi-column unique key (rows with any NULL key
// column are exempt).
func UniqueColumns(name, table string, columns ...string) Constraint {
	return Constraint{inner: constraints.CompositeUnique{Name: name, Table: table, Columns: columns}}
}

// CompileConstraint returns the CREATE RULE statements a constraint
// compiles into (for inspection or manual editing).
func CompileConstraint(c Constraint) ([]string, error) {
	return c.inner.Compile()
}

// AddConstraint compiles the constraint and installs its rules.
func (db *DB) AddConstraint(c Constraint) error {
	stmts, err := c.inner.Compile()
	if err != nil {
		return err
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			// Roll back already-installed rules of this constraint.
			for _, name := range c.inner.RuleNames() {
				db.Exec("drop rule " + name) //nolint:errcheck
			}
			return fmt.Errorf("sopr: installing constraint: %w", err)
		}
	}
	return nil
}

// DropConstraint removes the rules of a previously added constraint.
func (db *DB) DropConstraint(c Constraint) error {
	var firstErr error
	for _, name := range c.inner.RuleNames() {
		if _, err := db.Exec("drop rule " + name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
