package sopr

import (
	"strings"
	"testing"
)

func constraintDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	db.MustExec(`
		create table dept (dept_no int, mgr_no int);
		create table emp (name varchar, emp_no int, salary float, dept_no int);
	`)
	db.MustExec(`insert into dept values (1, 10), (2, 20)`)
	return db
}

func TestForeignKeyCascade(t *testing.T) {
	db := constraintDB(t)
	fk := ForeignKey("emp_dept", "emp", "dept_no", "dept", "dept_no", CascadeDelete)
	if err := db.AddConstraint(fk); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`insert into emp values ('a', 1, 10, 1), ('b', 2, 10, 2)`)

	// Orphan insert rolls back.
	res := db.MustExec(`insert into emp values ('x', 3, 10, 99)`)
	if !res.RolledBack {
		t.Error("orphan insert not rolled back")
	}
	// NULL FK is allowed.
	res = db.MustExec(`insert into emp values ('n', 4, 10, null)`)
	if res.RolledBack {
		t.Error("NULL FK rejected")
	}
	// Re-pointing to a missing parent rolls back.
	res = db.MustExec(`update emp set dept_no = 77 where emp_no = 1`)
	if !res.RolledBack {
		t.Error("orphan update not rolled back")
	}
	// Parent delete cascades.
	res = db.MustExec(`delete from dept where dept_no = 1`)
	if res.RolledBack {
		t.Fatal("cascade rolled back")
	}
	if db.MustQuery(`select count(*) from emp where dept_no = 1`).Data[0][0] != int64(0) {
		t.Error("cascade delete failed")
	}
	// Updating a referenced parent key rolls back.
	res = db.MustExec(`update dept set dept_no = 5 where dept_no = 2`)
	if !res.RolledBack {
		t.Error("referenced key update not rolled back")
	}
	// Dropping the constraint removes enforcement.
	if err := db.DropConstraint(fk); err != nil {
		t.Fatal(err)
	}
	res = db.MustExec(`insert into emp values ('x', 9, 10, 99)`)
	if res.RolledBack {
		t.Error("constraint still enforced after drop")
	}
}

func TestForeignKeyRestrictAndSetNull(t *testing.T) {
	db := constraintDB(t)
	if err := db.AddConstraint(ForeignKey("fk", "emp", "dept_no", "dept", "dept_no", RestrictDelete)); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`insert into emp values ('a', 1, 10, 1)`)
	res := db.MustExec(`delete from dept where dept_no = 1`)
	if !res.RolledBack {
		t.Error("restrict did not roll back")
	}
	// Unreferenced parent can go.
	res = db.MustExec(`delete from dept where dept_no = 2`)
	if res.RolledBack {
		t.Error("restrict rolled back unreferenced delete")
	}

	db2 := constraintDB(t)
	if err := db2.AddConstraint(ForeignKey("fk", "emp", "dept_no", "dept", "dept_no", SetNullDelete)); err != nil {
		t.Fatal(err)
	}
	db2.MustExec(`insert into emp values ('a', 1, 10, 1)`)
	res = db2.MustExec(`delete from dept where dept_no = 1`)
	if res.RolledBack {
		t.Fatal("set-null rolled back")
	}
	if db2.MustQuery(`select dept_no from emp where emp_no = 1`).Data[0][0] != nil {
		t.Error("FK not set to NULL")
	}
}

func TestCheckConstraint(t *testing.T) {
	db := constraintDB(t)
	if err := db.AddConstraint(Check("pay", "emp", "salary >= 0 and salary <= 1000000")); err != nil {
		t.Fatal(err)
	}
	res := db.MustExec(`insert into emp values ('ok', 1, 500, 1)`)
	if res.RolledBack {
		t.Error("valid row rejected")
	}
	res = db.MustExec(`insert into emp values ('bad', 2, -1, 1)`)
	if !res.RolledBack {
		t.Error("negative salary accepted")
	}
	res = db.MustExec(`update emp set salary = 2000000 where emp_no = 1`)
	if !res.RolledBack {
		t.Error("out-of-range update accepted")
	}
	if db.MustQuery(`select salary from emp`).Data[0][0] != 500.0 {
		t.Error("state corrupted")
	}
}

func TestUniqueConstraint(t *testing.T) {
	db := constraintDB(t)
	if err := db.AddConstraint(UniqueColumn("u", "emp", "emp_no")); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`insert into emp values ('a', 1, 10, 1)`)
	res := db.MustExec(`insert into emp values ('b', 1, 10, 1)`)
	if !res.RolledBack {
		t.Error("duplicate accepted")
	}
	res = db.MustExec(`insert into emp values ('b', 2, 10, 1)`)
	if res.RolledBack {
		t.Error("distinct value rejected")
	}
	// Two NULLs are fine.
	db.MustExec(`create table t (a int)`)
	if err := db.AddConstraint(UniqueColumn("tn", "t", "a")); err != nil {
		t.Fatal(err)
	}
	res = db.MustExec(`insert into t values (null), (null)`)
	if res.RolledBack {
		t.Error("multiple NULLs rejected")
	}
}

func TestMaintainAggregate(t *testing.T) {
	db := constraintDB(t)
	db.MustExec(`create table totals (dept_no int, total float)`)
	if err := db.AddConstraint(MaintainAggregate("payroll", "totals", "emp", "dept_no", "sum", "salary")); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`insert into emp values ('a', 1, 100, 1), ('b', 2, 50, 1), ('c', 3, 70, 2)`)
	rows := db.MustQuery(`select dept_no, total from totals order by dept_no`)
	if len(rows.Data) != 2 || rows.Data[0][1] != 150.0 || rows.Data[1][1] != 70.0 {
		t.Fatalf("totals after insert: %v", rows.Data)
	}
	db.MustExec(`update emp set salary = 200 where emp_no = 1`)
	rows = db.MustQuery(`select total from totals where dept_no = 1`)
	if rows.Data[0][0] != 250.0 {
		t.Errorf("totals after update: %v", rows.Data)
	}
	db.MustExec(`delete from emp where dept_no = 1`)
	rows = db.MustQuery(`select dept_no from totals order by dept_no`)
	if len(rows.Data) != 1 || rows.Data[0][0] != int64(2) {
		t.Errorf("totals after delete: %v", rows.Data)
	}
}

func TestAddConstraintErrors(t *testing.T) {
	db := constraintDB(t)
	// Bad identifiers surface compile errors.
	if err := db.AddConstraint(Check("bad name", "emp", "true")); err == nil {
		t.Error("invalid constraint name accepted")
	}
	// Unknown table surfaces install errors and rolls back partial rules.
	err := db.AddConstraint(ForeignKey("fk", "nosuch", "a", "dept", "dept_no", CascadeDelete))
	if err == nil {
		t.Fatal("constraint on missing table accepted")
	}
	if !strings.Contains(err.Error(), "installing constraint") {
		t.Errorf("error: %v", err)
	}
	if len(db.Rules()) != 0 {
		t.Errorf("partial rules left installed: %v", db.Rules())
	}
	// CompileConstraint exposes the generated SQL.
	stmts, err := CompileConstraint(Check("c", "emp", "salary >= 0"))
	if err != nil || len(stmts) != 1 || !strings.Contains(stmts[0], "create rule c_domain") {
		t.Errorf("CompileConstraint: %v, %v", stmts, err)
	}
	// DropConstraint on a never-added constraint errors.
	if err := db.DropConstraint(Check("ghost", "emp", "true")); err == nil {
		t.Error("dropping missing constraint succeeded")
	}
}

func TestConstraintsCompose(t *testing.T) {
	// Multiple constraints interact: cascade delete keeps the aggregate
	// fresh through rule cascading.
	db := constraintDB(t)
	db.MustExec(`create table totals (dept_no int, total float)`)
	if err := db.AddConstraint(ForeignKey("fk", "emp", "dept_no", "dept", "dept_no", CascadeDelete)); err != nil {
		t.Fatal(err)
	}
	if err := db.AddConstraint(MaintainAggregate("agg", "totals", "emp", "dept_no", "sum", "salary")); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`insert into emp values ('a', 1, 100, 1), ('b', 2, 60, 2)`)
	db.MustExec(`delete from dept where dept_no = 1`)
	rows := db.MustQuery(`select dept_no, total from totals order by dept_no`)
	if len(rows.Data) != 1 || rows.Data[0][0] != int64(2) || rows.Data[0][1] != 60.0 {
		t.Errorf("composed constraints: %v", rows.Data)
	}
}
