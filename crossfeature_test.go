package sopr

// Cross-feature interaction tests: combinations of extensions that could
// plausibly conflict.

import (
	"strings"
	"testing"
)

// TestSelectTriggersWithProcessRulesAndRollback — Section 5.1 selections,
// a 5.3 triggering point, and a rollback guard in one transaction.
func TestSelectTriggersWithProcessRulesAndRollback(t *testing.T) {
	db := Open(WithSelectTriggers())
	db.MustExec(`
		create table secrets (k varchar);
		create table audit (n int)
	`)
	db.MustExec(`
		create rule watch when selected secrets
		then insert into audit values (1)
		end;
		create rule limit_reads when inserted into audit
		if (select count(*) from audit) > 2
		then rollback
	`)
	db.MustExec(`insert into secrets values ('a'), ('b')`)
	// Two reads are fine.
	db.MustExec(`select * from secrets`)
	db.MustExec(`select * from secrets`)
	if db.MustQuery(`select count(*) from audit`).Data[0][0] != int64(2) {
		t.Fatal("audit count")
	}
	// The third read trips the guard: the whole transaction — including
	// the audit insert — rolls back, and the read's results are still
	// returned (the query ran before the rollback).
	res := db.MustExec(`select * from secrets`)
	if !res.RolledBack || res.RollbackRule != "limit_reads" {
		t.Fatalf("expected rollback: %+v", res)
	}
	if len(res.Results) != 1 || len(res.Results[0].Data) != 2 {
		t.Errorf("query results: %+v", res.Results)
	}
	if db.MustQuery(`select count(*) from audit`).Data[0][0] != int64(2) {
		t.Error("rolled-back audit entry persisted")
	}
}

// TestCompositeConstraintsSurviveDumpLoad — constraint-generated rules are
// plain rules, so dump/load preserves multi-column enforcement.
func TestCompositeConstraintsSurviveDumpLoad(t *testing.T) {
	db := Open()
	db.MustExec(`
		create table region (country varchar, city varchar);
		create table office (name varchar, country varchar, city varchar)
	`)
	db.MustExec(`insert into region values ('us', 'sf')`)
	if err := db.AddConstraint(ForeignKeyComposite("loc", "office",
		[]string{"country", "city"}, "region", []string{"country", "city"}, RestrictDelete)); err != nil {
		t.Fatal(err)
	}
	script, err := db.DumpString()
	if err != nil {
		t.Fatal(err)
	}
	db2 := Open()
	if err := db2.LoadString(script); err != nil {
		t.Fatalf("load: %v\n%s", err, script)
	}
	if res := db2.MustExec(`insert into office values ('x', 'us', 'nope')`); !res.RolledBack {
		t.Error("composite FK not enforced after load")
	}
	db2.MustExec(`insert into office values ('x', 'us', 'sf')`)
	if res := db2.MustExec(`delete from region`); !res.RolledBack {
		t.Error("restrict not enforced after load")
	}
}

// TestConstraintPlusUserRulePriorities — user rules can be prioritized
// against constraint-generated rules by their generated names.
func TestConstraintPlusUserRulePriorities(t *testing.T) {
	db := Open()
	db.MustExec(`
		create table t (a int);
		create table trace (who varchar)
	`)
	if err := db.AddConstraint(Check("nonneg", "t", "a >= 0")); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`
		create rule logger when inserted into t
		then insert into trace values ('logger')
		end;
		create rule priority nonneg_domain before logger
	`)
	// Violation: the guard wins before the logger runs, so no trace row
	// survives (and none was written: rollback precedes logger).
	res := db.MustExec(`insert into t values (-1)`)
	if !res.RolledBack {
		t.Fatal("check not enforced")
	}
	if db.MustQuery(`select count(*) from trace`).Data[0][0] != int64(0) {
		t.Error("logger output survived rollback")
	}
	// Valid insert: guard condition false, logger runs.
	db.MustExec(`insert into t values (5)`)
	if db.MustQuery(`select count(*) from trace`).Data[0][0] != int64(1) {
		t.Error("logger did not run")
	}
}

// TestPreparedWithTrace — prepared execution emits the same trace events
// as textual execution.
func TestPreparedWithTrace(t *testing.T) {
	db := Open()
	db.MustExec(`create table t (a int)`)
	db.MustExec(`create rule r when inserted into t then delete from t where a < 0 end`)
	var b1, b2 strings.Builder
	stmt, err := db.Prepare(`insert into t values (-1)`)
	if err != nil {
		t.Fatal(err)
	}
	db.TraceTo(&b1)
	if _, err := stmt.Exec(); err != nil {
		t.Fatal(err)
	}
	db.TraceTo(&b2)
	db.MustExec(`insert into t values (-1)`)
	db.TraceTo(nil)
	if b1.String() != b2.String() {
		t.Errorf("prepared trace differs:\n%s\nvs\n%s", b1.String(), b2.String())
	}
}
