package sopr

import (
	"io"
	"strings"
)

// Dump writes a SQL script recreating the database: schemas, data (before
// the rules, so reloading does not fire them), rule definitions, priorities
// and deactivations. Rules whose actions call external procedures are
// emitted but need the procedures registered before the script is loaded.
func (db *DB) Dump(w io.Writer) error { return db.eng.Dump(w) }

// DumpString is Dump into a string.
func (db *DB) DumpString() (string, error) {
	var b strings.Builder
	if err := db.Dump(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Load executes a dump script against this database. Syntax errors are
// reported as *ParseError with their 1-based position, like Exec.
func (db *DB) Load(r io.Reader) error { return wrapErr(db.eng.Load(r)) }

// LoadString is Load from a string.
func (db *DB) LoadString(src string) error { return wrapErr(db.eng.Load(strings.NewReader(src))) }
