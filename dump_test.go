package sopr

import (
	"strings"
	"testing"
)

// populateForDump builds a database with schema, data (including NULLs,
// strings needing escaping, floats, booleans), rules, a priority, and a
// deactivated rule.
func populateForDump(t *testing.T) *DB {
	t.Helper()
	db := Open()
	db.MustExec(`
		create table emp (name varchar, emp_no int not null, salary float, dept_no int);
		create table dept (dept_no int, mgr_no int);
		create table flags (label varchar, onoff boolean);
	`)
	db.MustExec(`
		insert into emp values ('o''hara', 1, 95000.5, 1), ('sue', 2, null, null);
		insert into dept values (1, 1);
		insert into flags values ('a', true), ('b', false)
	`)
	db.MustExec(`
		create rule cascade when deleted from dept
		then delete from emp where dept_no in (select dept_no from deleted dept)
		end;
		create rule guard when updated emp.salary
		if exists (select * from new updated emp.salary where salary < 0)
		then rollback;
		create rule sleeper when inserted into flags then delete from flags end;
		create rule priority guard before cascade;
		deactivate rule sleeper
	`)
	return db
}

func TestDumpLoadRoundTrip(t *testing.T) {
	db := populateForDump(t)
	script, err := db.DumpString()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"CREATE TABLE emp", "CREATE TABLE dept", "CREATE TABLE flags",
		"'o''hara'", "NULL", "TRUE", "FALSE",
		"CREATE RULE cascade", "CREATE RULE guard", "ROLLBACK",
		"CREATE RULE PRIORITY guard BEFORE cascade",
		"DEACTIVATE RULE sleeper",
	} {
		if !strings.Contains(script, frag) {
			t.Errorf("dump missing %q:\n%s", frag, script)
		}
	}
	// Data must appear before the first rule so loading does not fire
	// rules.
	if strings.Index(script, "INSERT INTO") > strings.Index(script, "CREATE RULE") {
		t.Error("dump emits rules before data")
	}

	// Load into a fresh database and compare observable state.
	db2 := Open()
	if err := db2.LoadString(script); err != nil {
		t.Fatalf("load: %v\n%s", err, script)
	}
	for _, q := range []string{
		`select count(*) from emp`,
		`select count(*) from dept`,
		`select name from emp order by emp_no`,
		`select salary from emp order by emp_no`,
		`select label, onoff from flags order by label`,
	} {
		a := db.MustQuery(q)
		b := db2.MustQuery(q)
		if len(a.Data) != len(b.Data) {
			t.Fatalf("%s: %v vs %v", q, a.Data, b.Data)
		}
		for i := range a.Data {
			for j := range a.Data[i] {
				if a.Data[i][j] != b.Data[i][j] {
					t.Errorf("%s row %d col %d: %v vs %v", q, i, j, a.Data[i][j], b.Data[i][j])
				}
			}
		}
	}
	if got, want := strings.Join(db2.Rules(), ","), strings.Join(db.Rules(), ","); got != want {
		t.Errorf("rules after load: %s, want %s", got, want)
	}

	// Behavior round-trips: cascade still works, guard still rolls back,
	// sleeper stays deactivated, priority survives.
	res := db2.MustExec(`update emp set salary = -5 where emp_no = 1`)
	if !res.RolledBack || res.RollbackRule != "guard" {
		t.Errorf("guard after load: %+v", res)
	}
	res = db2.MustExec(`insert into flags values ('c', true)`)
	if len(res.Firings) != 0 {
		t.Error("deactivated rule fired after load")
	}
	db2.MustExec(`delete from dept`)
	if db2.MustQuery(`select count(*) from emp where dept_no = 1`).Data[0][0] != int64(0) {
		t.Error("cascade after load failed")
	}

	// A dump of the loaded database is stable (fixpoint), modulo the
	// changes we just made — so compare dumps taken before mutation.
	db3 := Open()
	if err := db3.LoadString(script); err != nil {
		t.Fatal(err)
	}
	script3, err := db3.DumpString()
	if err != nil {
		t.Fatal(err)
	}
	if script3 != script {
		t.Errorf("dump not stable across load:\n--- first ---\n%s\n--- second ---\n%s", script, script3)
	}
}

func TestDumpEmptyDatabase(t *testing.T) {
	db := Open()
	s, err := db.DumpString()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(s) != "" {
		t.Errorf("empty dump: %q", s)
	}
	db2 := Open()
	if err := db2.LoadString(s); err != nil {
		t.Errorf("loading empty dump: %v", err)
	}
}

func TestDumpManyRowsBatches(t *testing.T) {
	db := Open()
	db.MustExec(`create table t (a int)`)
	var b strings.Builder
	b.WriteString("insert into t values ")
	for i := 0; i < 1200; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(1)")
	}
	db.MustExec(b.String())
	script, err := db.DumpString()
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(script, "INSERT INTO t"); n != 3 {
		t.Errorf("batches: %d, want 3 (500+500+200)", n)
	}
	db2 := Open()
	if err := db2.LoadString(script); err != nil {
		t.Fatal(err)
	}
	if db2.MustQuery(`select count(*) from t`).Data[0][0] != int64(1200) {
		t.Error("row count after load")
	}
}
