package sopr

import (
	"fmt"
	"time"

	"sopr/internal/engine"
	"sopr/internal/wal"
)

// SyncPolicy selects when the write-ahead log fsyncs appended records.
type SyncPolicy int

// Fsync policies for OpenDurable.
const (
	// FsyncAlways fsyncs after every commit record: an acknowledged
	// transaction is durable. The default.
	FsyncAlways SyncPolicy = SyncPolicy(wal.SyncAlways)
	// FsyncInterval fsyncs on a background timer: a crash loses at most the
	// last interval's acknowledged transactions, never corrupts the log.
	FsyncInterval SyncPolicy = SyncPolicy(wal.SyncInterval)
	// FsyncNever leaves persistence timing to the operating system.
	FsyncNever SyncPolicy = SyncPolicy(wal.SyncNever)
)

// String renders the policy as its flag spelling.
func (p SyncPolicy) String() string { return wal.SyncPolicy(p).String() }

// ParseSyncPolicy converts "always", "interval" or "never" (a -fsync flag
// value) to a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	p, err := wal.ParseSyncPolicy(s)
	return SyncPolicy(p), err
}

// durConfig is the durability half of config (see sopr.go).
type durConfig struct {
	fs          wal.FS
	policy      wal.SyncPolicy
	interval    time.Duration
	segmentSize int64
}

// WithFsync sets the log's fsync policy (default FsyncAlways). Ignored by
// the plain in-memory Open.
func WithFsync(p SyncPolicy) Option {
	return func(c *config) { c.dur.policy = wal.SyncPolicy(p) }
}

// WithFsyncInterval sets the background sync period used by FsyncInterval
// (default 100ms).
func WithFsyncInterval(d time.Duration) Option {
	return func(c *config) { c.dur.interval = d }
}

// withFS routes the log through an alternate filesystem — the fault
// injection hook used by the crash-recovery tests.
func withFS(fs wal.FS) Option {
	return func(c *config) { c.dur.fs = fs }
}

// withSegmentSize overrides the log rotation threshold (tests).
func withSegmentSize(n int64) Option {
	return func(c *config) { c.dur.segmentSize = n }
}

// RecoveryInfo summarizes what OpenDurable found in the data directory.
type RecoveryInfo struct {
	// CheckpointLoaded reports whether a checkpoint image was installed.
	CheckpointLoaded bool
	// RecordsReplayed is the number of log records replayed after the
	// checkpoint (or from the beginning, with no checkpoint).
	RecordsReplayed int
	// TruncatedBytes counts torn-tail bytes discarded from the final log
	// segment — the residue of a crash mid-append.
	TruncatedBytes int64
	// SkippedCheckpoints lists checkpoint files that failed to load; an
	// older checkpoint (or the full log) was used instead.
	SkippedCheckpoints []string
}

// OpenDurable opens (creating if necessary) a database whose committed
// state lives in dir: a write-ahead log of net transition effects
// (Definition 2.1 of the paper) plus periodic checkpoint images. Recovery
// loads the newest readable checkpoint, replays the log tail with rule
// processing disabled — net effects already include every rule-generated
// transition, so replay cannot diverge no matter how rule selection would
// have gone (Section 4) — and lands on exactly the pre-crash committed
// state. A recovery error leaves nothing half-installed: the returned DB
// is nil and the directory is untouched.
func OpenDurable(dir string, opts ...Option) (*DB, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	return openDurable(dir, cfg)
}

func openDurable(dir string, cfg config) (*DB, error) {
	l, rec, err := wal.Open(dir, wal.Options{
		FS:          cfg.dur.fs,
		Policy:      cfg.dur.policy,
		Interval:    cfg.dur.interval,
		SegmentSize: cfg.dur.segmentSize,
	})
	if err != nil {
		return nil, fmt.Errorf("sopr: open %s: %w", dir, err)
	}
	eng := engine.New(cfg.eng)
	if rec.Checkpoint != nil {
		if err := eng.LoadCheckpoint(rec.Checkpoint); err != nil {
			_ = l.Close() // recovery already failed
			return nil, fmt.Errorf("sopr: recover %s: %w", dir, err)
		}
	}
	for _, r := range rec.Records {
		if err := eng.ReplayRecord(r); err != nil {
			_ = l.Close() // recovery already failed
			return nil, fmt.Errorf("sopr: recover %s: %w", dir, err)
		}
	}
	eng.AttachWAL(l)
	db := &DB{
		eng:    eng,
		walLog: l,
		recovery: RecoveryInfo{
			CheckpointLoaded:   rec.Checkpoint != nil,
			RecordsReplayed:    len(rec.Records),
			TruncatedBytes:     rec.TruncatedBytes,
			SkippedCheckpoints: rec.SkippedCheckpoints,
		},
	}
	db.recovered = db.recovery.CheckpointLoaded || db.recovery.RecordsReplayed > 0
	return db, nil
}

// Recovered reports whether OpenDurable found prior state in the data
// directory (as opposed to initializing a fresh database). Servers use it
// to decide whether to run an init script.
func (db *DB) Recovered() bool { return db.recovered }

// Recovery returns what OpenDurable found in the data directory.
func (db *DB) Recovery() RecoveryInfo { return db.recovery }

// Checkpoint writes a full database image to the data directory and prunes
// the log segments it covers. Recovery after a checkpoint replays only the
// records appended since. It is an error on a database without a log.
func (db *DB) Checkpoint() error {
	return db.eng.Checkpoint()
}

// CurrentLSN reports the last durable log sequence number (0 on an
// in-memory database, or before the first commit). It is the
// read-your-writes token replication clients carry from a write on the
// primary to reads on replicas. The value is captured with the published
// engine snapshot at every commit/DDL/checkpoint, so reading it is one
// atomic pointer load — no WAL mutex on the read path.
func (db *DB) CurrentLSN() uint64 {
	return db.eng.SnapshotLSN()
}

// WALLog exposes the attached write-ahead log (nil on an in-memory
// database). The soprd daemon hands it to the replication source so
// stream sessions can tail and pin it.
func (db *DB) WALLog() *wal.Log { return db.walLog }

// Engine exposes the underlying engine. The replication package uses it
// when a demoted primary must re-home its engine under a follower that
// shares the same log; it is not part of the stable public surface.
func (db *DB) Engine() *engine.Engine { return db.eng }

// Close flushes and closes the write-ahead log. Executing against a closed
// durable database fails. Close on an in-memory database is a no-op.
func (db *DB) Close() error {
	if db.walLog == nil {
		return nil
	}
	return db.walLog.Close()
}
