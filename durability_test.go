// Durability tests: OpenDurable round trips, checkpoints, and the
// crash-recovery property test from the fault-injection harness — a
// randomized rule-triggering workload applied in lockstep to a durable
// database (on a fault-injected filesystem) and an in-memory shadow,
// crashed at a random byte, recovered, and compared dump-for-dump.
package sopr

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"sopr/internal/wal"
)

// durSchema is a rule-rich starting point: a cascading delete, a salary
// floor maintained by an update rule, and a rollback guard (Section 2's
// examples, roughly).
const durSchema = `
	create table emp (name varchar, emp_no int not null, salary float, dept_no int);
	create table dept (dept_no int, mgr_no int);
	create index emp_dept on emp (dept_no);
	create rule cascade when deleted from dept
	then delete from emp where dept_no in (select dept_no from deleted dept)
	end;
	create rule floor when inserted into emp
	then update emp set salary = 40
		where emp_no in (select emp_no from inserted emp) and salary < 40 and salary >= 0
	end;
	create rule guard when inserted into emp
	if exists (select * from inserted emp where salary < 0)
	then rollback;
`

func mustDump(t *testing.T, db *DB) string {
	t.Helper()
	s, err := db.DumpString()
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	return s
}

func TestOpenDurableRoundTrip(t *testing.T) {
	dir := t.TempDir() // the real filesystem, end to end
	db, err := OpenDurable(dir)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	if db.Recovered() {
		t.Fatal("fresh directory reported prior state")
	}
	db.MustExec(durSchema)
	db.MustExec(`insert into dept values (1, 100), (2, 200)`)
	db.MustExec(`insert into emp values ('jane', 1, 60, 1), ('sue', 2, 10, 2)`) // floor fires for sue
	res := db.MustExec(`delete from dept where dept_no = 2`)                    // cascade fires
	if len(res.Firings) == 0 {
		t.Fatal("cascade did not fire; workload is not exercising rules")
	}
	want := mustDump(t, db)
	st := db.Stats()
	if st.WALAppends == 0 || st.WALBytes == 0 {
		t.Fatalf("no WAL activity recorded: %+v", st)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2, err := OpenDurable(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if !db2.Recovered() || db2.Recovery().RecordsReplayed == 0 {
		t.Fatalf("reopen did not recover: %+v", db2.Recovery())
	}
	if got := mustDump(t, db2); got != want {
		t.Fatalf("recovered state diverges:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	if got := db2.Stats().RecoveredRecords; got == 0 {
		t.Fatal("RecoveredRecords not counted")
	}
	// The recovered database keeps working, rules included.
	res = db2.MustExec(`insert into emp values ('low', 9, 5, 1)`)
	if len(res.Firings) != 1 || res.Firings[0].Rule != "floor" {
		t.Fatalf("rules dead after recovery: %+v", res)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	mem := wal.NewMemFS()
	db, err := OpenDurable("data", withFS(mem))
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	db.MustExec(durSchema)
	db.MustExec(`insert into dept values (1, 100)`)
	db.MustExec(`insert into emp values ('jane', 1, 60, 1), ('bob', 2, 50, 1)`)
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if got := db.Stats().Checkpoints; got != 1 {
		t.Fatalf("Checkpoints stat = %d", got)
	}
	// Post-checkpoint traffic addresses pre-checkpoint tuples by handle:
	// replay works only if the checkpoint preserved them.
	db.MustExec(`update emp set salary = salary + 1 where name = 'jane'`)
	db.MustExec(`delete from emp where name = 'bob'`)
	want := mustDump(t, db)
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2, err := OpenDurable("data", withFS(mem))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rec := db2.Recovery()
	if !rec.CheckpointLoaded {
		t.Fatalf("checkpoint not loaded: %+v", rec)
	}
	if rec.RecordsReplayed != 2 {
		t.Fatalf("replayed %d records, want the 2 post-checkpoint ones", rec.RecordsReplayed)
	}
	if got := mustDump(t, db2); got != want {
		t.Fatalf("checkpoint recovery diverges:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	// A second reopen right away replays from the same checkpoint again.
	db2.Close()
	db3, err := OpenDurable("data", withFS(mem))
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	defer db3.Close()
	if got := mustDump(t, db3); got != want {
		t.Fatal("second recovery diverges")
	}
}

func TestRolledBackTransactionsNotLogged(t *testing.T) {
	mem := wal.NewMemFS()
	db, err := OpenDurable("data", withFS(mem))
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	db.MustExec(durSchema)
	before := db.Stats().WALAppends
	res := db.MustExec(`insert into emp values ('bad', 1, -5, 1)`) // guard rolls back
	if !res.RolledBack {
		t.Fatalf("guard did not roll back: %+v", res)
	}
	if got := db.Stats().WALAppends; got != before {
		t.Fatalf("rolled-back transaction appended to the log (%d -> %d)", before, got)
	}
	want := mustDump(t, db)
	db.Close()
	db2, err := OpenDurable("data", withFS(mem))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if got := mustDump(t, db2); got != want {
		t.Fatal("recovery diverges after rollback")
	}
}

func TestOpenDurableRefusesCorruptLog(t *testing.T) {
	mem := wal.NewMemFS()
	db, err := OpenDurable("data", withFS(mem), withSegmentSize(64))
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	db.MustExec(`create table t (a int)`)
	for i := 0; i < 6; i++ {
		db.MustExec(fmt.Sprintf(`insert into t values (%d)`, i))
	}
	db.Close()
	// Corrupt a NON-final segment: that is a hole, not a tear, and serving
	// from it would silently lose committed data.
	names, err := mem.ReadDir("data")
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, n := range names {
		if strings.HasPrefix(n, "wal-") {
			segs = append(segs, n)
		}
	}
	if len(segs) < 2 {
		t.Fatalf("want multiple segments, got %v", segs)
	}
	f, err := mem.OpenAppend("data/" + segs[0])
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xff, 0xff, 0xff}) //nolint:errcheck // test corruption
	f.Close()
	if _, err := OpenDurable("data", withFS(mem)); err == nil {
		t.Fatal("OpenDurable served from a log with a mid-stream hole")
	}
}

// crashWorkload is one deterministic randomized trial: grow a durable DB
// and an in-memory shadow in lockstep until the injected crash fires (or
// the workload ends), then recover and compare.
func crashWorkload(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	mem := wal.NewMemFS()
	ffs := wal.NewFaultFS(mem)

	dur, err := OpenDurable("data", withFS(ffs), withSegmentSize(512))
	if err != nil {
		t.Fatalf("seed %d: OpenDurable: %v", seed, err)
	}
	shadow := Open()
	dur.MustExec(durSchema)
	shadow.MustExec(durSchema)

	// Everything before this point is safe; the crash lands somewhere in
	// the next few thousand log bytes (sometimes past the end: a clean run).
	ffs.CrashAtByte = int64(1 + rng.Intn(6000))

	crashed := false
	isCrash := func(err error) bool {
		return errors.Is(err, wal.ErrInjected) || errors.Is(err, wal.ErrLogFailed)
	}
	for op := 0; op < 80 && !crashed; op++ {
		var stmt string
		switch k := rng.Intn(10); {
		case k < 4:
			stmt = fmt.Sprintf(`insert into emp values ('e%d', %d, %d, %d)`,
				op, 1000+op, rng.Intn(120)-10, 1+rng.Intn(3)) // salaries below 40 and 0 trigger floor/guard
		case k < 5:
			stmt = fmt.Sprintf(`insert into dept values (%d, %d)`, 1+rng.Intn(3), op)
		case k < 7:
			stmt = fmt.Sprintf(`update emp set salary = salary + %d where dept_no = %d`, rng.Intn(9)+1, 1+rng.Intn(3))
		case k < 8:
			stmt = fmt.Sprintf(`delete from emp where emp_no = %d`, 1000+rng.Intn(op+1))
		case k < 9:
			stmt = fmt.Sprintf(`delete from dept where dept_no = %d`, 1+rng.Intn(3)) // cascade
		default:
			stmt = fmt.Sprintf(`create table side%d (x int)`, op) // DDL in the stream
		}
		res, err := dur.Exec(stmt)
		if err != nil {
			if !isCrash(err) {
				t.Fatalf("seed %d op %d: unexpected failure %q: %v", seed, op, stmt, err)
			}
			crashed = true
			break
		}
		// Acknowledged by the durable side: the shadow must agree.
		sres, serr := shadow.Exec(stmt)
		if serr != nil {
			t.Fatalf("seed %d op %d: shadow rejected %q: %v", seed, op, stmt, serr)
		}
		if res.RolledBack != sres.RolledBack || len(res.Firings) != len(sres.Firings) {
			t.Fatalf("seed %d op %d: engines diverged on %q: %+v vs %+v", seed, op, stmt, res, sres)
		}
		if op%17 == 16 {
			if err := dur.Checkpoint(); err != nil {
				if !isCrash(err) {
					t.Fatalf("seed %d op %d: checkpoint: %v", seed, op, err)
				}
				crashed = true
			}
		}
	}
	dur.Close() //nolint:errcheck // the log may already be dead

	// The machine reboots: unsynced bytes are gone, then a fresh process
	// recovers from what fsync made durable.
	mem.DropUnsynced()
	rec, err := OpenDurable("data", withFS(mem), withSegmentSize(512))
	if err != nil {
		t.Fatalf("seed %d (crashed=%v): recovery failed: %v", seed, crashed, err)
	}
	defer rec.Close()
	want, got := mustDump(t, shadow), mustDump(t, rec)
	if got != want {
		t.Fatalf("seed %d (crashed=%v): recovered state diverges from shadow\n--- shadow ---\n%s\n--- recovered ---\n%s",
			seed, crashed, want, got)
	}
	// And the recovered instance still takes writes.
	if _, err := rec.Exec(`insert into dept values (9, 9)`); err != nil {
		t.Fatalf("seed %d: recovered database rejects writes: %v", seed, err)
	}
}

// TestCrashRecoveryProperty is the fault-injection harness's main theorem:
// for any crash point, recovery reproduces exactly the acknowledged
// transactions — with FsyncAlways, nothing more and nothing less. Run with
// -race (CI does).
func TestCrashRecoveryProperty(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 6
	}
	for seed := 0; seed < trials; seed++ {
		crashWorkload(t, int64(seed))
	}
}

// crashGroupWorkload is one randomized crash-mid-group trial: 8 concurrent
// committers (a mix of single Execs and multi-statement ExecBatch blocks)
// drive a SynchronizedDB whose commits share group-commit fsyncs, the disk
// crashes at a random byte, and recovery must satisfy, per committer,
// acked ⊆ recovered ⊆ submitted — a leader must never have acknowledged a
// follower beyond what its fsync actually covered.
func crashGroupWorkload(t *testing.T, seed int64) {
	const (
		workers = 8
		perW    = 24
	)
	rng := rand.New(rand.NewSource(seed))
	mem := wal.NewMemFS()
	ffs := wal.NewFaultFS(mem)
	dur, err := OpenDurable("data", withFS(ffs), withSegmentSize(1024))
	if err != nil {
		t.Fatalf("seed %d: OpenDurable: %v", seed, err)
	}
	sdb := Synchronized(dur)
	sdb.MustExec(`create table g (worker int, seq int)`)
	ffs.CrashAtByte = int64(1 + rng.Intn(8000))

	isCrash := func(err error) bool {
		return errors.Is(err, wal.ErrInjected) || errors.Is(err, wal.ErrLogFailed)
	}
	acked := make([]int, workers)     // highest seq whose txn was acknowledged
	submitted := make([]int, workers) // highest seq ever sent
	fatal := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, batchy bool) {
			defer wg.Done()
			seq := 0
			for seq < perW {
				var stmts []string
				n := 1
				if batchy && seq%3 == 0 {
					n = 2 + seq%2 // a 2- or 3-statement batch block
				}
				for i := 0; i < n && seq+i < perW; i++ {
					stmts = append(stmts, fmt.Sprintf(`insert into g values (%d, %d)`, w, seq+i+1))
				}
				submitted[w] = seq + len(stmts)
				var err error
				if len(stmts) == 1 {
					_, err = sdb.Exec(stmts[0])
				} else {
					_, err = sdb.ExecBatch(stmts)
				}
				if err != nil {
					if !isCrash(err) {
						fatal <- fmt.Errorf("seed %d worker %d seq %d: %v", seed, w, seq, err)
					}
					return
				}
				seq += len(stmts)
				acked[w] = seq
			}
		}(w, w%2 == 0)
	}
	wg.Wait()
	close(fatal)
	for err := range fatal {
		t.Fatal(err)
	}
	sdb.Close() //nolint:errcheck // the log may already be dead

	mem.DropUnsynced()
	rec, err := OpenDurable("data", withFS(mem), withSegmentSize(1024))
	if err != nil {
		t.Fatalf("seed %d: recovery failed: %v", seed, err)
	}
	defer rec.Close()
	for w := 0; w < workers; w++ {
		rows, err := rec.Query(fmt.Sprintf(`select seq from g where worker = %d`, w))
		if err != nil {
			t.Fatalf("seed %d: query worker %d: %v", seed, w, err)
		}
		got := make(map[int64]bool, len(rows.Data))
		for _, r := range rows.Data {
			got[r[0].(int64)] = true
		}
		k := len(got)
		if k != len(rows.Data) {
			t.Fatalf("seed %d worker %d: duplicate seqs recovered", seed, w)
		}
		// Per-worker transactions are sequential and recovery replays a
		// byte prefix of the log, so the recovered seqs must be exactly
		// 1..k with acked <= k <= submitted.
		if k < acked[w] || k > submitted[w] {
			t.Fatalf("seed %d worker %d: recovered %d txns, acked %d, submitted %d — "+
				"an acknowledgement outran its fsync", seed, w, k, acked[w], submitted[w])
		}
		for s := 1; s <= k; s++ {
			if !got[int64(s)] {
				t.Fatalf("seed %d worker %d: recovered %d txns but seq %d missing (hole)", seed, w, k, s)
			}
		}
	}
}

// TestCrashRecoveryMidGroupCommit crashes the disk while concurrent
// committers are parked on shared group-commit fsyncs, across many seeds.
// Run with -race (CI does).
func TestCrashRecoveryMidGroupCommit(t *testing.T) {
	trials := 20
	if testing.Short() {
		trials = 5
	}
	for seed := 0; seed < trials; seed++ {
		crashGroupWorkload(t, int64(seed))
	}
}

func TestSynchronizedDurable(t *testing.T) {
	mem := wal.NewMemFS()
	db, err := OpenDurable("data", withFS(mem))
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	s := Synchronized(db)
	if s.Recovered() {
		t.Fatal("fresh dir recovered")
	}
	s.MustExec(`create table t (a int); insert into t values (1)`)
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := s.Exec(`insert into t values (2)`); err == nil {
		t.Fatal("exec after Close succeeded")
	}
}
