package sopr_test

import (
	"fmt"

	"sopr"
)

// ExampleOpen shows the paper's Example 3.1: cascaded-delete referential
// integrity via a set-oriented production rule.
func ExampleOpen() {
	db := sopr.Open()
	db.MustExec(`create table emp (name varchar, emp_no int, salary float, dept_no int)`)
	db.MustExec(`create table dept (dept_no int, mgr_no int)`)
	db.MustExec(`
		create rule cascade when deleted from dept
		then delete from emp where dept_no in (select dept_no from deleted dept)
		end`)
	db.MustExec(`
		insert into emp values ('ann', 1, 100, 7), ('bob', 2, 90, 7), ('cay', 3, 80, 8);
		insert into dept values (7, 1), (8, 3)`)

	res := db.MustExec(`delete from dept where dept_no = 7`)
	fmt.Println("firings:", len(res.Firings), res.Firings[0].Rule)
	fmt.Println(db.MustQuery(`select name from emp order by name`))
	// Output:
	// firings: 1 cascade
	// name
	// ----
	// cay
}

// ExampleDB_AddConstraint compiles a declarative CHECK constraint into a
// production rule with a ROLLBACK action ([CW90] facility).
func ExampleDB_AddConstraint() {
	db := sopr.Open()
	db.MustExec(`create table emp (name varchar, emp_no int, salary float, dept_no int)`)
	if err := db.AddConstraint(sopr.Check("pay", "emp", "salary >= 0")); err != nil {
		panic(err)
	}
	res := db.MustExec(`insert into emp values ('bad', 1, -5, 1)`)
	fmt.Println("rolled back:", res.RolledBack, "by", res.RollbackRule)
	// Output:
	// rolled back: true by pay_domain
}

// ExampleDB_OnTrace observes the Figure 1 algorithm's steps.
func ExampleDB_OnTrace() {
	db := sopr.Open()
	db.MustExec(`create table t (a int)`)
	db.MustExec(`create rule r when inserted into t then delete from t where a < 0 end`)
	db.OnTrace(func(ev sopr.TraceEvent) {
		if ev.Kind == sopr.TraceRuleFired {
			fmt.Println("fired", ev.Rule, ev.Effect)
		}
	})
	db.MustExec(`insert into t values (1), (-2), (-3)`)
	// The rule's set-oriented action deletes both negative rows at once.
	// Output:
	// fired r [I:0 D:2 U:0 S:0]
}

// ExampleDB_Query shows transition tables carrying old and new values
// (paper Example 3.2 pattern).
func ExampleDB_Query() {
	db := sopr.Open()
	db.MustExec(`create table emp (name varchar, salary float)`)
	db.MustExec(`create table raises (name varchar, old_sal float, new_sal float)`)
	db.MustExec(`
		create rule log_raises when updated emp.salary
		then insert into raises
		     (select o.name, o.salary, n.salary
		      from old updated emp.salary o, new updated emp.salary n
		      where o.name = n.name)
		end`)
	db.MustExec(`insert into emp values ('ann', 1000)`)
	db.MustExec(`update emp set salary = salary * 1.1`)
	rows := db.MustQuery(`select name, old_sal, new_sal from raises`)
	fmt.Println(rows.Data[0])
	// Output:
	// [ann 1000 1100]
}
