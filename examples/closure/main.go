// Closure shows the paper's "knowledge-base and expert systems" motivation
// (Section 1): a self-triggering set-oriented rule performs forward-chaining
// inference — here, computing the transitive closure of a flight network
// (semi-naive datalog evaluation, for free, from the Section 4 semantics:
// each firing sees only the tuples *its previous firing* derived, so the
// iteration converges without recomputing old facts).
//
//	go run ./examples/closure
package main

import (
	"fmt"

	"sopr"
)

func main() {
	db := sopr.Open()
	db.MustExec(`
		create table flight (src varchar, dst varchar);
		create table reach  (src varchar, dst varchar);
	`)

	// Base facts seed the closure...
	db.MustExec(`
		create rule seed when inserted into flight
		then insert into reach
		     (select src, dst from inserted flight f
		      where not exists (select * from reach r
		                        where r.src = f.src and r.dst = f.dst))
		end
	`)
	// ...and each batch of newly derived reach tuples joins with the whole
	// flight relation to derive the next frontier. The rule triggers
	// itself until a firing derives nothing new (Section 4.1 fixpoint).
	db.MustExec(`
		create rule derive when inserted into reach
		then insert into reach
		     (select distinct n.src, f.dst
		      from inserted reach n, flight f
		      where n.dst = f.src
		        and not exists (select * from reach r
		                        where r.src = n.src and r.dst = f.dst))
		end
	`)

	// Semi-naive evaluation needs both delta rules: the one above extends
	// new paths forward through base edges; this one extends existing
	// paths through newly derived ones (needed when a new edge lands in
	// the middle or at the end of old paths).
	db.MustExec(`
		create rule derive_back when inserted into reach
		then insert into reach
		     (select distinct r.src, n.dst
		      from reach r, inserted reach n
		      where r.dst = n.src
		        and not exists (select * from reach r2
		                        where r2.src = r.src and r2.dst = n.dst))
		end
	`)

	// The static analyzer knows both that seed feeds derive and that
	// derive is recursive.
	fmt.Println("static analysis:")
	for _, w := range db.AnalyzeRules().Warnings() {
		fmt.Println("  warning:", w)
	}

	fmt.Println("\ninserting flight legs: sfo→jfk→lhr→cdg, sfo→ord→jfk, cdg→fra")
	res := db.MustExec(`
		insert into flight values
			('sfo','jfk'), ('jfk','lhr'), ('lhr','cdg'),
			('sfo','ord'), ('ord','jfk'), ('cdg','fra')
	`)
	fmt.Printf("rule firings to fixpoint: %d\n", len(res.Firings))
	for i, f := range res.Firings {
		fmt.Printf("  %d. %-7s %s\n", i+1, f.Rule, f.Effect)
	}

	fmt.Println("\neverywhere reachable from sfo:")
	fmt.Println(db.MustQuery(`select dst from reach where src = 'sfo' order by dst`))

	// Incremental maintenance: adding one leg extends the closure without
	// recomputation from scratch.
	fmt.Println("adding fra→svo extends the closure incrementally:")
	res = db.MustExec(`insert into flight values ('fra','svo')`)
	fmt.Printf("  %d firings\n", len(res.Firings))
	fmt.Println(db.MustQuery(`select src from reach where dst = 'svo' order by src`))
}
