// Integrity demonstrates the constraint-compilation facility of Section 6
// (developed in [CW90]): declarative constraints — foreign keys, domain
// checks, uniqueness, derived aggregates — are compiled into sets of
// production rules that enforce them, including via ROLLBACK actions.
//
//	go run ./examples/integrity
package main

import (
	"fmt"

	"sopr"
)

func main() {
	db := sopr.Open()
	db.MustExec(`
		create table dept (dept_no int, mgr_no int);
		create table emp (name varchar, emp_no int not null, salary float, dept_no int);
		create table payroll (dept_no int, total float);
	`)

	constraintsToAdd := []struct {
		label string
		c     sopr.Constraint
	}{
		{"emp.dept_no → dept.dept_no (cascade delete)",
			sopr.ForeignKey("emp_dept", "emp", "dept_no", "dept", "dept_no", sopr.CascadeDelete)},
		{"salaries must lie in [0, 1M]",
			sopr.Check("pay_range", "emp", "salary >= 0 and salary <= 1000000")},
		{"employee numbers are unique",
			sopr.UniqueColumn("emp_no_uniq", "emp", "emp_no")},
		{"payroll(dept_no, total) mirrors sum(salary) by department",
			sopr.MaintainAggregate("payroll_sum", "payroll", "emp", "dept_no", "sum", "salary")},
	}
	for _, x := range constraintsToAdd {
		stmts, err := sopr.CompileConstraint(x.c)
		if err != nil {
			panic(err)
		}
		fmt.Printf("constraint %q compiles to %d rule(s)\n", x.label, len(stmts))
		if err := db.AddConstraint(x.c); err != nil {
			panic(err)
		}
	}
	fmt.Println("\ninstalled rules:", db.Rules())

	db.MustExec(`insert into dept values (1, 10), (2, 20)`)
	db.MustExec(`insert into emp values ('ann', 1, 80000, 1), ('bob', 2, 60000, 1), ('cay', 3, 75000, 2)`)

	fmt.Println("\nderived payroll table (maintained by a rule):")
	fmt.Println(db.MustQuery(`select dept_no, total from payroll order by dept_no`))

	show := func(label string, script string) {
		res := db.MustExec(script)
		verdict := "committed"
		if res.RolledBack {
			verdict = fmt.Sprintf("ROLLED BACK by rule %q", res.RollbackRule)
		}
		fmt.Printf("%-46s → %s\n", label, verdict)
	}

	fmt.Println("\nattempting violations:")
	show("insert employee into missing dept 99", `insert into emp values ('eve', 4, 50000, 99)`)
	show("negative salary", `insert into emp values ('neg', 5, -10, 1)`)
	show("duplicate employee number", `insert into emp values ('dup', 1, 50000, 1)`)
	show("re-point referenced dept key", `update dept set dept_no = 7 where dept_no = 1`)
	show("legal raise for ann", `update emp set salary = 90000 where emp_no = 1`)

	fmt.Println("\ncascade: deleting dept 1 removes its employees and refreshes payroll")
	db.MustExec(`delete from dept where dept_no = 1`)
	fmt.Println(db.MustQuery(`select name, dept_no from emp order by emp_no`))
	fmt.Println(db.MustQuery(`select dept_no, total from payroll order by dept_no`))
}
