// Inventory is an active-database scenario (the paper's introduction cites
// condition monitoring and expert systems as motivating uses): a warehouse
// where set-oriented rules reorder stock, audit price changes through an
// external procedure (Section 5.2), and use PROCESS RULES triggering points
// (Section 5.3) to interleave rule processing inside one transaction.
//
//	go run ./examples/inventory
package main

import (
	"fmt"

	"sopr"
)

func main() {
	db := sopr.Open()
	db.MustExec(`
		create table stock  (sku varchar, qty int, price float, reorder_at int, reorder_qty int);
		create table orders (sku varchar, qty int);
		create table price_log (sku varchar, old_price float, new_price float);
	`)

	// Rule 1 — automatic reordering. Set-oriented: one firing covers every
	// SKU that fell below its threshold in the transition, and the action
	// is a single set-oriented insert.
	db.MustExec(`
		create rule reorder when updated stock.qty
		then insert into orders
		     (select sku, reorder_qty from new updated stock.qty
		      where qty < reorder_at
		        and sku not in (select sku from orders))
		end
	`)

	// Rule 2 — a guard: stock can never go negative; violating
	// transactions are rolled back in full (Section 4.2 rollback actions).
	db.MustExec(`
		create rule no_negative when updated stock.qty
		if exists (select * from new updated stock.qty where qty < 0)
		then rollback
	`)

	// Rule 3 — price auditing through an external procedure: the Go
	// callback reads the rule's old/new transition tables and writes an
	// audit trail.
	db.RegisterProcedure("audit_prices", func(ctx *sopr.ProcContext) error {
		rows, err := ctx.Query(`
			select o.sku, o.price, n.price
			from old updated stock.price o, new updated stock.price n
			where o.sku = n.sku`)
		if err != nil {
			return err
		}
		for _, r := range rows.Data {
			if err := ctx.Exec(fmt.Sprintf(
				`insert into price_log values ('%s', %v, %v)`, r[0], r[1], r[2])); err != nil {
				return err
			}
		}
		return nil
	})
	db.MustExec(`create rule price_audit when updated stock.price then call audit_prices end`)

	db.MustExec(`
		insert into stock values
			('bolt',   100, 0.10, 20, 200),
			('nut',     50, 0.05, 20, 500),
			('washer',  30, 0.02, 25, 300)
	`)

	fmt.Println("initial stock:")
	fmt.Println(db.MustQuery(`select sku, qty, price from stock order by sku`))

	// One business transaction: a big shipment draws down three SKUs, then
	// a triggering point processes rules mid-transaction, then prices move.
	fmt.Println("\nshipping 85 bolts, 35 nuts, 5 washers; then repricing (one transaction):")
	res := db.MustExec(`
		update stock set qty = qty - 85 where sku = 'bolt';
		update stock set qty = qty - 35 where sku = 'nut';
		update stock set qty = qty - 5 where sku = 'washer';
		process rules;
		update stock set price = price * 1.10 where sku in ('bolt', 'nut')
	`)
	for _, f := range res.Firings {
		fmt.Printf("  fired %-12s %s\n", f.Rule, f.Effect)
	}

	fmt.Println("\nautomatic reorders (bolt and nut fell below threshold; washer did not):")
	fmt.Println(db.MustQuery(`select sku, qty from orders order by sku`))

	fmt.Println("\nprice audit trail (written by the external procedure):")
	fmt.Println(db.MustQuery(`select sku, old_price, new_price from price_log order by sku`))

	// Guard rule: drawing below zero rolls the whole transaction back.
	fmt.Println("\nattempting to ship 1000 washers:")
	res = db.MustExec(`update stock set qty = qty - 1000 where sku = 'washer'`)
	if res.RolledBack {
		fmt.Printf("  rolled back by rule %q; stock unchanged:\n", res.RollbackRule)
	}
	fmt.Println(db.MustQuery(`select sku, qty from stock where sku = 'washer'`))
}
