// Payroll reproduces the paper's running example end to end: the emp/dept
// schema of Section 3.1, the recursive manager-deletion rule of Example
// 4.1, the salary-control rule of Example 4.2, and — with R2 prioritized
// over R1 — the full multi-rule cascade of Example 4.3, printing the rule
// processing trace so the Section 4 semantics can be followed step by step.
//
//	go run ./examples/payroll
package main

import (
	"fmt"

	"sopr"
)

func main() {
	db := sopr.Open()

	db.MustExec(`
		create table emp (name varchar, emp_no int not null, salary float, dept_no int);
		create table dept (dept_no int, mgr_no int);
	`)

	// Example 4.1: whenever managers are deleted, delete the employees of
	// the departments they manage, and the departments themselves. The
	// rule triggers itself until the cascade reaches a fixpoint.
	db.MustExec(`
		create rule mgr_cascade when deleted from emp
		then delete from emp
		     where dept_no in (select dept_no from dept
		                       where mgr_no in (select emp_no from deleted emp));
		     delete from dept
		     where mgr_no in (select emp_no from deleted emp)
		end
	`)

	// Example 4.2: whenever salaries are updated, if the average updated
	// salary exceeds 50K, delete every updated employee now above 80K.
	db.MustExec(`
		create rule salary_watch when updated emp.salary
		if (select avg(salary) from new updated emp.salary) > 50000
		then delete from emp
		     where emp_no in (select emp_no from new updated emp.salary)
		       and salary > 80000
		end
	`)

	// Example 4.3 orders R2 (salary_watch) before R1 (mgr_cascade).
	db.MustExec(`create rule priority salary_watch before mgr_cascade`)

	// Management structure: Jane manages Mary and Jim; Mary manages Bill;
	// Jim manages Sam and Sue (department d is managed by employee d).
	db.MustExec(`
		insert into emp values
			('jane', 1, 60000, 0),
			('mary', 2, 70000, 1),
			('jim',  3, 55000, 1),
			('bill', 4, 25000, 2),
			('sam',  5, 40000, 3),
			('sue',  6, 45000, 3);
		insert into dept values (1, 1), (2, 2), (3, 3)
	`)

	fmt.Println("initial state:")
	fmt.Println(db.MustQuery(`select name, emp_no, salary, dept_no from emp order by emp_no`))

	// Static analysis (Section 6) knows mgr_cascade may self-trigger.
	fmt.Println("\nstatic rule analysis:")
	for _, w := range db.AnalyzeRules().Warnings() {
		fmt.Println("  warning:", w)
	}

	// Follow the Figure 1 algorithm live.
	db.OnTrace(func(ev sopr.TraceEvent) {
		switch ev.Kind {
		case sopr.TraceExternalTransition:
			fmt.Printf("  external transition, effect %s\n", ev.Effect)
		case sopr.TraceRuleConsidered:
			fmt.Printf("  consider %-13s trans-info %s condition=%v\n", ev.Rule, ev.Effect, ev.CondHeld)
		case sopr.TraceRuleFired:
			fmt.Printf("  fire     %-13s effect %s\n", ev.Rule, ev.Effect)
		case sopr.TraceRollback:
			fmt.Printf("  rollback by %s\n", ev.Rule)
		case sopr.TraceCommit:
			fmt.Println("  commit")
		}
	})

	// The Example 4.3 external block: delete Jane; update salaries so the
	// updated average exceeds 50K and Mary lands above 80K.
	fmt.Println("\nexternal block: delete jane; raise bill to 30K and mary to 85K")
	res := db.MustExec(`
		delete from emp where name = 'jane';
		update emp set salary = 30000 where name = 'bill';
		update emp set salary = 85000 where name = 'mary'
	`)

	fmt.Println("\nrule firings:")
	for i, f := range res.Firings {
		fmt.Printf("  %d. %-13s %s\n", i+1, f.Rule, f.Effect)
	}

	fmt.Println("\nfinal state (the cascade empties both tables):")
	fmt.Println(db.MustQuery(`select count(*) employees from emp`))
	fmt.Println(db.MustQuery(`select count(*) departments from dept`))
}
