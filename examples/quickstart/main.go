// Quickstart: define a table, a set-oriented production rule, and watch it
// fire once for a whole set of changes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"sopr"
)

func main() {
	db := sopr.Open()

	db.MustExec(`
		create table emp (name varchar, emp_no int not null, salary float, dept_no int);
		create table dept (dept_no int, mgr_no int);
	`)

	// Example 3.1 of the paper: "cascaded delete" referential integrity.
	// Whenever departments are deleted, delete all their employees — in one
	// set-oriented action, no matter how many departments went away.
	db.MustExec(`
		create rule cascade
		when deleted from dept
		then delete from emp
		     where dept_no in (select dept_no from deleted dept)
		end
	`)

	db.MustExec(`
		insert into emp values
			('jane', 1, 95000, 1), ('mary', 2, 70000, 1),
			('jim',  3, 60000, 2), ('bill', 4, 25000, 2),
			('sam',  5, 40000, 3);
		insert into dept values (1, 1), (2, 3), (3, 5)
	`)

	fmt.Println("before:")
	fmt.Println(db.MustQuery(`select name, dept_no from emp order by emp_no`))

	// One operation block deletes two departments; the rule fires once and
	// removes all four affected employees together.
	res := db.MustExec(`delete from dept where dept_no in (1, 2)`)
	for _, f := range res.Firings {
		fmt.Printf("\nrule %q fired, transition effect %s\n", f.Rule, f.Effect)
	}

	fmt.Println("\nafter:")
	fmt.Println(db.MustQuery(`select name, dept_no from emp order by emp_no`))
}
