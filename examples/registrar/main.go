// Registrar is a larger case study in the spirit of the one the paper
// cites ([CW90]): a university registrar database where several interacting
// rule sets — compiled constraints, hand-written set-oriented rules with
// priorities, a waitlist-promotion cascade, and a derived statistics table —
// cooperate inside single transactions.
//
//	go run ./examples/registrar
package main

import (
	"fmt"

	"sopr"
)

func main() {
	db := sopr.Open()
	db.MustExec(`
		create table student (sid int not null, name varchar, year int);
		create table course  (cid varchar, capacity int);
		create table enrolled (sid int, cid varchar);
		create table waitlist (sid int, cid varchar, pos int);
		create table stats (cid varchar, n int);
	`)

	// Compiled constraints (Section 6 facility): enrollments must point at
	// real students and courses; course sizes are derived data.
	for _, c := range []sopr.Constraint{
		sopr.ForeignKey("enr_student", "enrolled", "sid", "student", "sid", sopr.CascadeDelete),
		sopr.UniqueColumn("student_id", "student", "sid"),
		sopr.Check("year_range", "student", "year >= 1 and year <= 4"),
		sopr.MaintainAggregate("class_size", "stats", "enrolled", "cid", "count", "sid"),
	} {
		if err := db.AddConstraint(c); err != nil {
			panic(err)
		}
	}

	// Hand-written rules. capacity_guard rejects transactions that
	// over-fill any course; it must be considered before promotions, so
	// it gets priority.
	db.MustExec(`
		create rule capacity_guard when inserted into enrolled
		if exists (select e.cid from enrolled e, course c
		           where e.cid = c.cid
		           group by e.cid, c.capacity
		           having count(*) > c.capacity)
		then rollback
	`)
	// When students drop a course, promote the head of its waitlist:
	// set-oriented — one firing handles every course that lost students.
	db.MustExec(`
		create rule promote when deleted from enrolled
		then insert into enrolled
		     (select w.sid, w.cid from waitlist w
		      where w.cid in (select cid from deleted enrolled)
		        and w.pos = (select min(pos) from waitlist w2 where w2.cid = w.cid));
		     delete from waitlist
		     where sid in (select sid from enrolled)
		       and cid in (select cid from enrolled e where e.sid = waitlist.sid)
		end;
		create rule priority capacity_guard before promote
	`)

	db.MustExec(`
		insert into student values (1,'ana',1), (2,'ben',2), (3,'cyn',3), (4,'dan',4), (5,'eve',2);
		insert into course values ('db', 2), ('os', 3);
		insert into enrolled values (1,'db'), (2,'db'), (3,'os');
		insert into waitlist values (4,'db',1), (5,'db',2)
	`)

	fmt.Println("class sizes (derived table, maintained by a rule):")
	fmt.Println(db.MustQuery(`select cid, n from stats order by cid`))

	fmt.Println("\nover-enrolling 'db' beyond capacity 2 is rolled back:")
	res := db.MustExec(`insert into enrolled values (4, 'db')`)
	fmt.Printf("  → rolled back by %q: %v\n", res.RollbackRule, res.RolledBack)

	fmt.Println("\nana drops 'db' — the waitlist head (dan) is auto-promoted:")
	res = db.MustExec(`delete from enrolled where sid = 1 and cid = 'db'`)
	for _, f := range res.Firings {
		fmt.Printf("  fired %-24s %s\n", f.Rule, f.Effect)
	}
	fmt.Println(db.MustQuery(`select e.sid, s.name, e.cid from enrolled e, student s where e.sid = s.sid order by e.cid, e.sid`))
	fmt.Println(db.MustQuery(`select sid, cid, pos from waitlist order by pos`))

	fmt.Println("\ndeleting student ben cascades through the FK, promotes eve, refreshes stats:")
	db.MustExec(`delete from student where sid = 2`)
	fmt.Println(db.MustQuery(`select e.sid, s.name, e.cid from enrolled e, student s where e.sid = s.sid order by e.cid, e.sid`))
	fmt.Println(db.MustQuery(`select cid, n from stats order by cid`))

	fmt.Println("\nstatic analysis of the installed rule set:")
	warnings := db.AnalyzeRules().Warnings()
	if len(warnings) == 0 {
		fmt.Println("  (no warnings)")
	}
	for _, w := range warnings {
		fmt.Println("  warning:", w)
	}
}
