package sopr_test

// Smoke tests: every example program must build and run to completion.
// They use `go run` so the examples are exercised exactly as the README
// instructs.

import (
	"os/exec"
	"strings"
	"testing"
)

func runExample(t *testing.T, name string, wantFrags ...string) {
	t.Helper()
	cmd := exec.Command("go", "run", "./examples/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("example %s failed: %v\n%s", name, err, out)
	}
	for _, frag := range wantFrags {
		if !strings.Contains(string(out), frag) {
			t.Errorf("example %s output missing %q:\n%s", name, frag, out)
		}
	}
}

func TestExampleQuickstart(t *testing.T) {
	runExample(t, "quickstart", `rule "cascade" fired`, "[I:0 D:4 U:0 S:0]", "sam")
}

func TestExamplePayroll(t *testing.T) {
	runExample(t, "payroll",
		"fire     salary_watch",
		"fire     mgr_cascade",
		"may trigger itself",
		"commit")
}

func TestExampleIntegrity(t *testing.T) {
	runExample(t, "integrity",
		`ROLLED BACK by rule "emp_dept_child_check"`,
		`ROLLED BACK by rule "pay_range_domain"`,
		`ROLLED BACK by rule "emp_no_uniq_unique"`,
		"committed")
}

func TestExampleInventory(t *testing.T) {
	runExample(t, "inventory",
		"fired reorder",
		"fired price_audit",
		`rolled back by rule "no_negative"`)
}

func TestExampleClosure(t *testing.T) {
	runExample(t, "closure", "cdg", "fra", "svo", "triggering cycle")
}

func TestExampleRegistrar(t *testing.T) {
	runExample(t, "registrar",
		`rolled back by "capacity_guard"`,
		"fired promote",
		"eve")
}
