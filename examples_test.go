package sopr_test

import (
	"bytes"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the examples' golden files from current output")

// TestExamplesGolden runs every example program via `go run` — exactly as
// the README instructs — and compares its full stdout against a checked-in
// golden file. The examples are the repo's executable documentation of the
// paper's motivating applications; pinning their complete output (not just
// fragments) means an engine change that alters any visible behavior —
// row order, firing order, transition-effect rendering, rollback messages
// — fails loudly instead of silently rewriting the documentation.
//
// Regenerate after an intentional change with:
//
//	go test -run TestExamplesGolden -update
func TestExamplesGolden(t *testing.T) {
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		ran++
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./examples/"+name)
			var out, stderr bytes.Buffer
			cmd.Stdout = &out
			cmd.Stderr = &stderr
			if err := cmd.Run(); err != nil {
				t.Fatalf("example %s failed: %v\nstderr:\n%s", name, err, stderr.String())
			}
			golden := filepath.Join("testdata", "examples", name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (regenerate: go test -run TestExamplesGolden -update): %v", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output differs from %s\n--- got ---\n%s--- want ---\n%s", golden, out.String(), want)
			}
		})
	}
	if ran == 0 {
		t.Fatal("no example programs found")
	}
}
