module sopr

go 1.22
