// Package analysis implements the static rule analysis facility proposed in
// Section 6 of the paper: "the programmer might benefit from knowing that a
// set of rules may create an infinite loop, or from knowing that ordering
// between certain rules may affect the final database state."
//
// The analysis is conservative (may-analysis): it builds a triggering graph
// whose edge R1 → R2 means "some operation of R1's action may satisfy one
// of R2's basic transition predicates", reports self-loops and cycles as
// potential infinite loops, and reports unordered pairs of rules that can
// be triggered together and whose actions interfere as potential ordering
// conflicts.
package analysis

import (
	"sort"
	"strings"

	"sopr/internal/sqlast"
)

// RuleDef is the analyzable surface of a rule definition.
type RuleDef struct {
	Name      string
	Preds     []sqlast.TransPred
	Condition sqlast.Expr
	Action    sqlast.RuleAction
}

// Edge is one arc of the triggering graph: From's action may trigger To.
type Edge struct {
	From, To string
}

// Report is the analysis result.
type Report struct {
	// Edges is the triggering graph, sorted.
	Edges []Edge
	// SelfLoops lists rules whose own action may re-trigger them — the
	// self-triggering pattern of Section 4.1, legitimate for recursive
	// rules (Example 4.1) but a divergence risk flagged by footnote 7.
	SelfLoops []string
	// Cycles lists strongly connected components of two or more rules:
	// multi-rule potential infinite loops.
	Cycles [][]string
	// Conflicts lists unordered pairs that may be triggered simultaneously
	// and whose actions interfere; the final state may depend on the rule
	// selection order (Section 4.4).
	Conflicts [][2]string
	// ExternalActions lists rules whose action calls an external procedure
	// — their writes are unknown, so they are treated as writing nothing;
	// reported so users know the analysis is incomplete for them.
	ExternalActions []string
}

// write is one change an action may make.
type write struct {
	op    sqlast.TransPredOp // PredInserted / PredDeleted / PredUpdated
	table string
	cols  map[string]bool // for updates; nil means every column
}

// Analyze builds the report. higher reports declared priority (a strictly
// before b); it may be nil when no priorities exist.
func Analyze(defs []RuleDef, higher func(a, b string) bool) *Report {
	if higher == nil {
		higher = func(a, b string) bool { return false }
	}
	rep := &Report{}

	writes := make(map[string][]write, len(defs))
	reads := make(map[string]map[string]bool, len(defs))
	for _, d := range defs {
		if d.Action.Call != "" {
			rep.ExternalActions = append(rep.ExternalActions, d.Name)
		}
		writes[d.Name] = actionWrites(d.Action)
		reads[d.Name] = ruleReads(d)
	}

	// Triggering graph.
	adj := make(map[string][]string, len(defs))
	for _, from := range defs {
		for _, to := range defs {
			if mayTrigger(writes[from.Name], to.Preds) {
				rep.Edges = append(rep.Edges, Edge{From: from.Name, To: to.Name})
				if from.Name == to.Name {
					rep.SelfLoops = append(rep.SelfLoops, from.Name)
				} else {
					adj[from.Name] = append(adj[from.Name], to.Name)
				}
			}
		}
	}
	sort.Slice(rep.Edges, func(i, j int) bool {
		if rep.Edges[i].From != rep.Edges[j].From {
			return rep.Edges[i].From < rep.Edges[j].From
		}
		return rep.Edges[i].To < rep.Edges[j].To
	})
	sort.Strings(rep.SelfLoops)

	// Multi-rule cycles: strongly connected components of size ≥ 2.
	for _, scc := range stronglyConnected(ruleNames(defs), adj) {
		if len(scc) >= 2 {
			sort.Strings(scc)
			rep.Cycles = append(rep.Cycles, scc)
		}
	}
	sort.Slice(rep.Cycles, func(i, j int) bool {
		return strings.Join(rep.Cycles[i], ",") < strings.Join(rep.Cycles[j], ",")
	})

	// Ordering conflicts.
	for i, a := range defs {
		for _, b := range defs[i+1:] {
			if higher(a.Name, b.Name) || higher(b.Name, a.Name) {
				continue
			}
			if !predsOverlap(a.Preds, b.Preds) {
				continue
			}
			if interfere(writes[a.Name], reads[b.Name]) || interfere(writes[b.Name], reads[a.Name]) ||
				writesCollide(writes[a.Name], writes[b.Name]) {
				pair := [2]string{a.Name, b.Name}
				if pair[0] > pair[1] {
					pair[0], pair[1] = pair[1], pair[0]
				}
				rep.Conflicts = append(rep.Conflicts, pair)
			}
		}
	}
	sort.Slice(rep.Conflicts, func(i, j int) bool {
		if rep.Conflicts[i][0] != rep.Conflicts[j][0] {
			return rep.Conflicts[i][0] < rep.Conflicts[j][0]
		}
		return rep.Conflicts[i][1] < rep.Conflicts[j][1]
	})
	return rep
}

func ruleNames(defs []RuleDef) []string {
	names := make([]string, len(defs))
	for i, d := range defs {
		names[i] = d.Name
	}
	return names
}

// actionWrites extracts the changes a rule's action may make. External
// procedures are opaque: no writes are assumed (reported separately).
func actionWrites(a sqlast.RuleAction) []write {
	var out []write
	for _, op := range a.Block {
		switch s := op.(type) {
		case *sqlast.Insert:
			out = append(out, write{op: sqlast.PredInserted, table: s.Table})
		case *sqlast.Delete:
			out = append(out, write{op: sqlast.PredDeleted, table: s.Table})
		case *sqlast.Update:
			cols := make(map[string]bool, len(s.Set))
			for _, as := range s.Set {
				cols[as.Column] = true
			}
			out = append(out, write{op: sqlast.PredUpdated, table: s.Table, cols: cols})
		}
	}
	return out
}

// ruleReads collects the base tables a rule's condition and action read.
func ruleReads(d RuleDef) map[string]bool {
	tables := make(map[string]bool)
	collect := func(tr *sqlast.TableRef) error {
		if tr.Trans == sqlast.TransNone {
			tables[tr.Table] = true
		}
		return nil
	}
	walkExprRefs(d.Condition, collect)
	for _, op := range d.Action.Block {
		walkStmtRefs(op, collect)
		// The targets of action DML are also "read" (their predicates
		// filter the table's rows).
		switch s := op.(type) {
		case *sqlast.Insert:
			tables[s.Table] = true
		case *sqlast.Delete:
			tables[s.Table] = true
		case *sqlast.Update:
			tables[s.Table] = true
		}
	}
	return tables
}

// mayTrigger reports whether any write can satisfy any predicate.
func mayTrigger(ws []write, preds []sqlast.TransPred) bool {
	for _, w := range ws {
		for _, p := range preds {
			if w.table != p.Table {
				continue
			}
			switch p.Op {
			case sqlast.PredInserted:
				if w.op == sqlast.PredInserted {
					return true
				}
			case sqlast.PredDeleted:
				if w.op == sqlast.PredDeleted {
					return true
				}
			case sqlast.PredUpdated:
				if w.op == sqlast.PredUpdated && (p.Column == "" || w.cols == nil || w.cols[p.Column]) {
					return true
				}
				// insert-then-update composition cannot resurrect an
				// update predicate; inserts alone never satisfy UPDATED.
			case sqlast.PredSelected:
				// Writes do not satisfy SELECTED; reads would, but rule
				// actions reading tables are handled conservatively by the
				// conflict analysis, not the triggering graph.
			}
		}
	}
	return false
}

// predsOverlap reports whether one external change could trigger both rules
// at once.
func predsOverlap(a, b []sqlast.TransPred) bool {
	for _, pa := range a {
		for _, pb := range b {
			if pa.Table != pb.Table {
				continue
			}
			if pa.Op != pb.Op {
				continue
			}
			if pa.Op == sqlast.PredUpdated && pa.Column != "" && pb.Column != "" && pa.Column != pb.Column {
				continue
			}
			return true
		}
	}
	return false
}

// interfere reports whether ws writes any table in reads.
func interfere(ws []write, reads map[string]bool) bool {
	for _, w := range ws {
		if reads[w.table] {
			return true
		}
	}
	return false
}

// writesCollide reports whether two write sets touch a common table.
func writesCollide(a, b []write) bool {
	for _, wa := range a {
		for _, wb := range b {
			if wa.table == wb.table {
				return true
			}
		}
	}
	return false
}

// stronglyConnected returns the SCCs of the graph (Tarjan).
func stronglyConnected(nodes []string, adj map[string][]string) [][]string {
	index := make(map[string]int, len(nodes))
	low := make(map[string]int, len(nodes))
	onStack := make(map[string]bool, len(nodes))
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}

// walkExprRefs / walkStmtRefs visit table references in expressions and
// statements (duplicated from rules to keep package dependencies acyclic —
// analysis depends only on sqlast).
func walkExprRefs(e sqlast.Expr, fn func(*sqlast.TableRef) error) {
	switch x := e.(type) {
	case *sqlast.Unary:
		walkExprRefs(x.X, fn)
	case *sqlast.Binary:
		walkExprRefs(x.L, fn)
		walkExprRefs(x.R, fn)
	case *sqlast.IsNull:
		walkExprRefs(x.X, fn)
	case *sqlast.Between:
		walkExprRefs(x.X, fn)
		walkExprRefs(x.Lo, fn)
		walkExprRefs(x.Hi, fn)
	case *sqlast.Like:
		walkExprRefs(x.X, fn)
		walkExprRefs(x.Pattern, fn)
	case *sqlast.InList:
		walkExprRefs(x.X, fn)
		for _, el := range x.List {
			walkExprRefs(el, fn)
		}
	case *sqlast.InSelect:
		walkExprRefs(x.X, fn)
		walkSelectRefs(x.Sub, fn)
	case *sqlast.Exists:
		walkSelectRefs(x.Sub, fn)
	case *sqlast.ScalarSub:
		walkSelectRefs(x.Sub, fn)
	case *sqlast.SubCompare:
		walkExprRefs(x.X, fn)
		walkSelectRefs(x.Sub, fn)
	case *sqlast.FuncCall:
		for _, a := range x.Args {
			walkExprRefs(a, fn)
		}
	case *sqlast.Case:
		walkExprRefs(x.Operand, fn)
		for _, w := range x.Whens {
			walkExprRefs(w.Cond, fn)
			walkExprRefs(w.Result, fn)
		}
		walkExprRefs(x.Else, fn)
	}
}

func walkSelectRefs(sel *sqlast.Select, fn func(*sqlast.TableRef) error) {
	if sel == nil {
		return
	}
	for _, tr := range sel.From {
		fn(tr) //nolint:errcheck
	}
	for _, it := range sel.Items {
		walkExprRefs(it.Expr, fn)
	}
	walkExprRefs(sel.Where, fn)
	for _, g := range sel.GroupBy {
		walkExprRefs(g, fn)
	}
	walkExprRefs(sel.Having, fn)
	for _, o := range sel.OrderBy {
		walkExprRefs(o.Expr, fn)
	}
}

func walkStmtRefs(st sqlast.Statement, fn func(*sqlast.TableRef) error) {
	switch s := st.(type) {
	case *sqlast.Insert:
		for _, row := range s.Rows {
			for _, e := range row {
				walkExprRefs(e, fn)
			}
		}
		walkSelectRefs(s.Query, fn)
	case *sqlast.Delete:
		walkExprRefs(s.Where, fn)
	case *sqlast.Update:
		for _, a := range s.Set {
			walkExprRefs(a.Expr, fn)
		}
		walkExprRefs(s.Where, fn)
	case *sqlast.Select:
		walkSelectRefs(s, fn)
	}
}
