package analysis

import (
	"reflect"
	"testing"

	"sopr/internal/sqlast"
	"sopr/internal/sqlparse"
)

func def(t *testing.T, src string) RuleDef {
	t.Helper()
	st, err := sqlparse.ParseStatement(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	cr := st.(*sqlast.CreateRule)
	return RuleDef{Name: cr.Name, Preds: cr.Preds, Condition: cr.Condition, Action: cr.Action}
}

func TestSelfLoopDetection(t *testing.T) {
	// Example 4.1's recursive rule self-triggers: delete from emp in the
	// action, deleted from emp in the predicate.
	rep := Analyze([]RuleDef{def(t, `
		create rule mgr_cascade when deleted from emp
		then delete from emp where dept_no in
		     (select dept_no from dept where mgr_no in (select emp_no from deleted emp));
		     delete from dept where mgr_no in (select emp_no from deleted emp)
		end`)}, nil)
	if len(rep.SelfLoops) != 1 || rep.SelfLoops[0] != "mgr_cascade" {
		t.Errorf("self-loops: %v", rep.SelfLoops)
	}
	if len(rep.Cycles) != 0 {
		t.Errorf("single self-loop is not a multi-rule cycle: %v", rep.Cycles)
	}
}

func TestNoFalseSelfLoop(t *testing.T) {
	// Example 3.1's cascade writes emp but listens to dept: no self-loop.
	rep := Analyze([]RuleDef{def(t, `
		create rule cascade when deleted from dept
		then delete from emp where dept_no in (select dept_no from deleted dept)
		end`)}, nil)
	if len(rep.SelfLoops) != 0 {
		t.Errorf("false self-loop: %v", rep.SelfLoops)
	}
	if len(rep.Edges) != 0 {
		t.Errorf("false edges: %v", rep.Edges)
	}
}

func TestTwoRuleCycle(t *testing.T) {
	defs := []RuleDef{
		def(t, `create rule ping when inserted into a then insert into b values (1) end`),
		def(t, `create rule pong when inserted into b then insert into a values (1) end`),
	}
	rep := Analyze(defs, nil)
	if len(rep.Cycles) != 1 || !reflect.DeepEqual(rep.Cycles[0], []string{"ping", "pong"}) {
		t.Errorf("cycles: %v", rep.Cycles)
	}
	wantEdges := []Edge{{From: "ping", To: "pong"}, {From: "pong", To: "ping"}}
	if !reflect.DeepEqual(rep.Edges, wantEdges) {
		t.Errorf("edges: %v", rep.Edges)
	}
}

func TestAcyclicChainNoCycle(t *testing.T) {
	defs := []RuleDef{
		def(t, `create rule a when inserted into t1 then insert into t2 values (1) end`),
		def(t, `create rule b when inserted into t2 then insert into t3 values (1) end`),
		def(t, `create rule c when inserted into t3 then delete from t4 end`),
	}
	rep := Analyze(defs, nil)
	if len(rep.Cycles) != 0 || len(rep.SelfLoops) != 0 {
		t.Errorf("chain flagged: cycles=%v selfloops=%v", rep.Cycles, rep.SelfLoops)
	}
	if len(rep.Edges) != 2 {
		t.Errorf("edges: %v", rep.Edges)
	}
}

func TestUpdateColumnPrecision(t *testing.T) {
	// An action updating only t.a must not be flagged as triggering a rule
	// watching t.b, but must trigger whole-table and t.a watchers.
	defs := []RuleDef{
		def(t, `create rule writer when inserted into src then update t set a = 1 end`),
		def(t, `create rule watch_b when updated t.b then delete from log end`),
		def(t, `create rule watch_a when updated t.a then delete from log end`),
		def(t, `create rule watch_t when updated t then delete from log end`),
	}
	rep := Analyze(defs, nil)
	want := []Edge{{From: "writer", To: "watch_a"}, {From: "writer", To: "watch_t"}}
	if !reflect.DeepEqual(rep.Edges, want) {
		t.Errorf("edges: %v, want %v", rep.Edges, want)
	}
}

func TestConflictDetection(t *testing.T) {
	// Both rules trigger on the same event and write the same table with
	// no declared order: the final state depends on selection order.
	defs := []RuleDef{
		def(t, `create rule cut when updated emp.salary then update emp set salary = 1 end`),
		def(t, `create rule raise when updated emp.salary then update emp set salary = 2 end`),
	}
	rep := Analyze(defs, nil)
	if len(rep.Conflicts) != 1 || rep.Conflicts[0] != [2]string{"cut", "raise"} {
		t.Errorf("conflicts: %v", rep.Conflicts)
	}
	// A declared priority silences the warning.
	higher := func(a, b string) bool { return a == "cut" && b == "raise" }
	rep = Analyze(defs, higher)
	if len(rep.Conflicts) != 0 {
		t.Errorf("ordered pair still flagged: %v", rep.Conflicts)
	}
}

func TestNoConflictDisjointRules(t *testing.T) {
	// Different trigger tables: cannot be co-triggered by one change.
	defs := []RuleDef{
		def(t, `create rule a when inserted into t1 then delete from x end`),
		def(t, `create rule b when inserted into t2 then delete from x end`),
	}
	rep := Analyze(defs, nil)
	if len(rep.Conflicts) != 0 {
		t.Errorf("disjoint rules flagged: %v", rep.Conflicts)
	}
	// Same trigger but non-interfering actions: no conflict.
	defs = []RuleDef{
		def(t, `create rule a when inserted into t then delete from x end`),
		def(t, `create rule b when inserted into t then delete from y end`),
	}
	rep = Analyze(defs, nil)
	if len(rep.Conflicts) != 0 {
		t.Errorf("non-interfering rules flagged: %v", rep.Conflicts)
	}
}

func TestConflictViaReadWrite(t *testing.T) {
	// b reads what a writes (condition subquery on x): order matters.
	defs := []RuleDef{
		def(t, `create rule a when inserted into t then insert into x values (1) end`),
		def(t, `create rule b when inserted into t
		        if exists (select * from x) then delete from y end`),
	}
	rep := Analyze(defs, nil)
	if len(rep.Conflicts) != 1 {
		t.Errorf("read-write conflict missed: %v", rep.Conflicts)
	}
}

func TestColumnDisjointUpdatePredsNoOverlap(t *testing.T) {
	// updated t.a and updated t.b cannot be satisfied by the same
	// single-column write... but CAN be co-triggered by one block updating
	// both. The analysis treats distinct columns as non-overlapping (a
	// documented approximation favoring fewer false positives).
	defs := []RuleDef{
		def(t, `create rule a when updated t.a then delete from x end`),
		def(t, `create rule b when updated t.b then delete from x end`),
	}
	rep := Analyze(defs, nil)
	if len(rep.Conflicts) != 0 {
		t.Errorf("column-disjoint rules flagged: %v", rep.Conflicts)
	}
}

func TestExternalActionsReported(t *testing.T) {
	defs := []RuleDef{
		def(t, `create rule a when inserted into t then call audit end`),
	}
	rep := Analyze(defs, nil)
	if len(rep.ExternalActions) != 1 || rep.ExternalActions[0] != "a" {
		t.Errorf("external actions: %v", rep.ExternalActions)
	}
}

func TestRollbackActionNoWrites(t *testing.T) {
	defs := []RuleDef{
		def(t, `create rule guard when inserted into t then rollback`),
		def(t, `create rule watch when inserted into t then insert into t values (1) end`),
	}
	rep := Analyze(defs, nil)
	for _, e := range rep.Edges {
		if e.From == "guard" {
			t.Errorf("rollback rule has outgoing edge: %v", e)
		}
	}
	// watch self-loops (inserts into its own trigger table).
	if len(rep.SelfLoops) != 1 || rep.SelfLoops[0] != "watch" {
		t.Errorf("self-loops: %v", rep.SelfLoops)
	}
}

func TestThreeRuleCycleSCC(t *testing.T) {
	defs := []RuleDef{
		def(t, `create rule r1 when inserted into a then insert into b values (1) end`),
		def(t, `create rule r2 when inserted into b then insert into c values (1) end`),
		def(t, `create rule r3 when inserted into c then insert into a values (1) end`),
		def(t, `create rule out when inserted into a then delete from z end`),
	}
	rep := Analyze(defs, nil)
	if len(rep.Cycles) != 1 || len(rep.Cycles[0]) != 3 {
		t.Errorf("cycles: %v", rep.Cycles)
	}
}
