package analysis

import (
	"testing"
)

// TestReadsThroughEveryExprForm — rules whose conditions bury a base-table
// read inside each expression construct must be seen as readers of that
// table (driving walkExprRefs through every branch).
func TestReadsThroughEveryExprForm(t *testing.T) {
	conditions := []string{
		`not exists (select * from shared)`,
		`(select count(*) from shared) > 0 and true`,
		`(select count(*) from shared) is null`,
		`1 between 0 and (select count(*) from shared)`,
		`(select min(x) from shared) like 'a%'`,
		`1 in (2, (select count(*) from shared))`,
		`1 in (select x from shared)`,
		`1 > all (select x from shared)`,
		`coalesce((select count(*) from shared), 0) > 0`,
		`-(select count(*) from shared) < 0`,
		`case when exists (select * from shared) then true else false end`,
		`exists (select (select count(*) from shared) from t group by x having count(*) > 0 order by x)`,
	}
	for _, cond := range conditions {
		defs := []RuleDef{
			def(t, `create rule writer when inserted into t then insert into shared values (1) end`),
			def(t, `create rule reader when inserted into t if `+cond+` then delete from other end`),
		}
		rep := Analyze(defs, nil)
		// writer writes `shared`, reader reads it, both trigger on t: the
		// pair must be flagged.
		if len(rep.Conflicts) != 1 {
			t.Errorf("condition %q: read of shared not detected (conflicts=%v)", cond, rep.Conflicts)
		}
	}
}

// TestReadsInActionPositions — reads hidden inside action statements.
func TestReadsInActionPositions(t *testing.T) {
	actions := []string{
		`insert into other (select x from shared)`,
		`insert into other values ((select count(*) from shared))`,
		`delete from other where x in (select x from shared)`,
		`update other set x = (select count(*) from shared)`,
		`update other set x = 1 where x in (select x from shared)`,
		`select * from shared`,
	}
	for _, act := range actions {
		defs := []RuleDef{
			def(t, `create rule writer when inserted into t then insert into shared values (1) end`),
			def(t, `create rule reader when inserted into t then `+act+` end`),
		}
		rep := Analyze(defs, nil)
		if len(rep.Conflicts) != 1 {
			t.Errorf("action %q: read of shared not detected (conflicts=%v)", act, rep.Conflicts)
		}
	}
}
