// Package catalog maintains the database schema: the set of named tables,
// each with a fixed list of named, typed columns. The paper (Section 2)
// assumes a fixed schema of named tables with named, typed columns; for
// convenience we allow tables to be created and dropped between
// transactions, but not during rule processing.
package catalog

import (
	"fmt"
	"sort"
	"strings"

	"sopr/internal/value"
)

// Column describes one column of a table.
type Column struct {
	Name string
	Type value.Kind
	// NotNull, if set, rejects NULL assignments to this column. It is a
	// storage-level convenience; the paper enforces richer constraints via
	// production rules (see internal/constraints).
	NotNull bool
}

// Table describes the schema of one table.
type Table struct {
	Name    string
	Columns []Column
	byName  map[string]int
}

// NewTable builds a table schema, validating column names.
func NewTable(name string, cols []Column) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("catalog: empty table name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("catalog: table %q has no columns", name)
	}
	t := &Table{Name: strings.ToLower(name), byName: make(map[string]int, len(cols))}
	for _, c := range cols {
		cn := strings.ToLower(c.Name)
		if cn == "" {
			return nil, fmt.Errorf("catalog: table %q has an unnamed column", name)
		}
		if _, dup := t.byName[cn]; dup {
			return nil, fmt.Errorf("catalog: table %q has duplicate column %q", name, cn)
		}
		if c.Type == value.KindNull {
			return nil, fmt.Errorf("catalog: column %q of table %q has NULL type", cn, name)
		}
		t.byName[cn] = len(t.Columns)
		t.Columns = append(t.Columns, Column{Name: cn, Type: c.Type, NotNull: c.NotNull})
	}
	return t, nil
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	i, ok := t.byName[strings.ToLower(name)]
	if !ok {
		return -1
	}
	return i
}

// HasColumn reports whether the table has the named column.
func (t *Table) HasColumn(name string) bool { return t.ColumnIndex(name) >= 0 }

// NumColumns returns the number of columns.
func (t *Table) NumColumns() int { return len(t.Columns) }

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	return names
}

// String renders the schema as a CREATE TABLE statement.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString("CREATE TABLE ")
	b.WriteString(t.Name)
	b.WriteString(" (")
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
		if c.NotNull {
			b.WriteString(" NOT NULL")
		}
	}
	b.WriteString(")")
	return b.String()
}

// Catalog is the set of defined tables. It is not safe for concurrent
// mutation; the engine serializes access (the paper's model is
// single-stream: "multiple users, concurrent processing, and failures are
// all transparent").
type Catalog struct {
	tables  map[string]*Table
	indexes map[string]*Index
}

// Index describes a secondary hash index over one column of a table.
// The catalog records the definition; the physical structure lives in
// internal/storage alongside the table's heap.
type Index struct {
	Name   string
	Table  string
	Column string
}

// String renders the definition as a CREATE INDEX statement.
func (ix *Index) String() string {
	return "CREATE INDEX " + ix.Name + " ON " + ix.Table + " (" + ix.Column + ")"
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Table), indexes: make(map[string]*Index)}
}

// Clone returns a copy of the catalog that shares the (immutable) table
// and index definitions but owns its maps. The storage layer clones the
// catalog before every DDL mutation so that published snapshots keep
// reading the old version without locking.
func (c *Catalog) Clone() *Catalog {
	n := &Catalog{
		tables:  make(map[string]*Table, len(c.tables)),
		indexes: make(map[string]*Index, len(c.indexes)),
	}
	for k, t := range c.tables {
		n.tables[k] = t
	}
	for k, ix := range c.indexes {
		n.indexes[k] = ix
	}
	return n
}

// Create adds a table schema. It fails if the name is taken.
func (c *Catalog) Create(t *Table) error {
	if _, ok := c.tables[t.Name]; ok {
		return fmt.Errorf("catalog: table %q already exists", t.Name)
	}
	c.tables[t.Name] = t
	return nil
}

// Drop removes a table schema along with any indexes defined on the table.
// It fails if the table does not exist.
func (c *Catalog) Drop(name string) error {
	n := strings.ToLower(name)
	if _, ok := c.tables[n]; !ok {
		return fmt.Errorf("catalog: table %q does not exist", name)
	}
	delete(c.tables, n)
	for ixName, ix := range c.indexes {
		if ix.Table == n {
			delete(c.indexes, ixName)
		}
	}
	return nil
}

// Lookup returns the named table schema, or an error.
func (c *Catalog) Lookup(name string) (*Table, error) {
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: table %q does not exist", name)
	}
	return t, nil
}

// Has reports whether the named table exists.
func (c *Catalog) Has(name string) bool {
	_, ok := c.tables[strings.ToLower(name)]
	return ok
}

// Names returns the sorted table names.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CreateIndex records a secondary index definition after validating that
// the index name is free, the table exists, and the column exists. Names
// are normalized to lower case, like table and column names. Index names
// share one namespace across all tables (as in DROP INDEX name). The
// returned definition has all names normalized.
func (c *Catalog) CreateIndex(name, table, column string) (*Index, error) {
	n := strings.ToLower(name)
	if n == "" {
		return nil, fmt.Errorf("catalog: empty index name")
	}
	if _, ok := c.indexes[n]; ok {
		return nil, fmt.Errorf("catalog: index %q already exists", n)
	}
	t, err := c.Lookup(table)
	if err != nil {
		return nil, err
	}
	col := strings.ToLower(column)
	if !t.HasColumn(col) {
		return nil, fmt.Errorf("catalog: table %q has no column %q", t.Name, col)
	}
	ix := &Index{Name: n, Table: t.Name, Column: col}
	c.indexes[n] = ix
	return ix, nil
}

// DropIndex removes an index definition. It fails if the index does not
// exist.
func (c *Catalog) DropIndex(name string) error {
	n := strings.ToLower(name)
	if _, ok := c.indexes[n]; !ok {
		return fmt.Errorf("catalog: index %q does not exist", name)
	}
	delete(c.indexes, n)
	return nil
}

// Index returns the named index definition, or an error.
func (c *Catalog) Index(name string) (*Index, error) {
	ix, ok := c.indexes[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: index %q does not exist", name)
	}
	return ix, nil
}

// IndexNames returns the sorted names of all indexes.
func (c *Catalog) IndexNames() []string {
	names := make([]string, 0, len(c.indexes))
	for n := range c.indexes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// IndexesOn returns the indexes defined on the named table, sorted by
// index name.
func (c *Catalog) IndexesOn(table string) []*Index {
	t := strings.ToLower(table)
	var out []*Index
	for _, ix := range c.indexes {
		if ix.Table == t {
			out = append(out, ix)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
