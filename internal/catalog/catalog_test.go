package catalog

import (
	"strings"
	"testing"

	"sopr/internal/value"
)

func mustTable(t *testing.T, name string, cols []Column) *Table {
	t.Helper()
	tab, err := NewTable(name, cols)
	if err != nil {
		t.Fatalf("NewTable(%q): %v", name, err)
	}
	return tab
}

func empCols() []Column {
	return []Column{
		{Name: "name", Type: value.KindString},
		{Name: "emp_no", Type: value.KindInt, NotNull: true},
		{Name: "salary", Type: value.KindFloat},
		{Name: "dept_no", Type: value.KindInt},
	}
}

func TestNewTable(t *testing.T) {
	tab := mustTable(t, "EMP", empCols())
	if tab.Name != "emp" {
		t.Errorf("table name not lowercased: %q", tab.Name)
	}
	if tab.NumColumns() != 4 {
		t.Errorf("NumColumns = %d", tab.NumColumns())
	}
	if i := tab.ColumnIndex("SALARY"); i != 2 {
		t.Errorf("ColumnIndex(SALARY) = %d, want 2 (case-insensitive)", i)
	}
	if tab.ColumnIndex("missing") != -1 {
		t.Error("ColumnIndex(missing) should be -1")
	}
	if !tab.HasColumn("emp_no") || tab.HasColumn("nope") {
		t.Error("HasColumn wrong")
	}
	want := []string{"name", "emp_no", "salary", "dept_no"}
	got := tab.ColumnNames()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ColumnNames[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestNewTableErrors(t *testing.T) {
	if _, err := NewTable("", empCols()); err == nil {
		t.Error("empty table name accepted")
	}
	if _, err := NewTable("t", nil); err == nil {
		t.Error("zero columns accepted")
	}
	if _, err := NewTable("t", []Column{{Name: "", Type: value.KindInt}}); err == nil {
		t.Error("unnamed column accepted")
	}
	if _, err := NewTable("t", []Column{
		{Name: "a", Type: value.KindInt},
		{Name: "A", Type: value.KindInt},
	}); err == nil {
		t.Error("duplicate column (case-insensitive) accepted")
	}
	if _, err := NewTable("t", []Column{{Name: "a", Type: value.KindNull}}); err == nil {
		t.Error("NULL-typed column accepted")
	}
}

func TestTableString(t *testing.T) {
	tab := mustTable(t, "emp", empCols())
	s := tab.String()
	for _, frag := range []string{"CREATE TABLE emp", "name VARCHAR", "emp_no INTEGER NOT NULL", "salary FLOAT"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestCatalogCRUD(t *testing.T) {
	c := New()
	emp := mustTable(t, "emp", empCols())
	if err := c.Create(emp); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := c.Create(emp); err == nil {
		t.Error("duplicate Create accepted")
	}
	if !c.Has("EMP") {
		t.Error("Has is not case-insensitive")
	}
	got, err := c.Lookup("Emp")
	if err != nil || got != emp {
		t.Errorf("Lookup: %v, %v", got, err)
	}
	if _, err := c.Lookup("dept"); err == nil {
		t.Error("Lookup of missing table should error")
	}
	dept := mustTable(t, "dept", []Column{
		{Name: "dept_no", Type: value.KindInt},
		{Name: "mgr_no", Type: value.KindInt},
	})
	if err := c.Create(dept); err != nil {
		t.Fatalf("Create dept: %v", err)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "dept" || names[1] != "emp" {
		t.Errorf("Names = %v", names)
	}
	if err := c.Drop("emp"); err != nil {
		t.Errorf("Drop: %v", err)
	}
	if err := c.Drop("emp"); err == nil {
		t.Error("double Drop accepted")
	}
	if c.Has("emp") {
		t.Error("dropped table still present")
	}
}

func TestCatalogIndexes(t *testing.T) {
	c := New()
	emp := mustTable(t, "emp", []Column{
		{Name: "name", Type: value.KindString},
		{Name: "emp_no", Type: value.KindInt},
	})
	if err := c.Create(emp); err != nil {
		t.Fatal(err)
	}
	ix, err := c.CreateIndex("Emp_No_IX", "EMP", "Emp_No")
	if err != nil {
		t.Fatal(err)
	}
	// Names are normalized to lower case, like tables.
	if ix.Name != "emp_no_ix" || ix.Table != "emp" || ix.Column != "emp_no" {
		t.Errorf("index not lowercased: %+v", ix)
	}
	if ix.String() != "CREATE INDEX emp_no_ix ON emp (emp_no)" {
		t.Errorf("String: %s", ix)
	}
	if got, err := c.Index("EMP_NO_IX"); err != nil || got != ix {
		t.Errorf("Index lookup: %v, %v", got, err)
	}
	if _, err := c.CreateIndex("emp_no_ix", "emp", "name"); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := c.CreateIndex("", "emp", "name"); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := c.CreateIndex("x", "nosuch", "a"); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := c.CreateIndex("x", "emp", "nosuch"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := c.CreateIndex("name_ix", "emp", "name"); err != nil {
		t.Fatal(err)
	}
	if names := c.IndexNames(); len(names) != 2 || names[0] != "emp_no_ix" || names[1] != "name_ix" {
		t.Errorf("IndexNames = %v", names)
	}
	on := c.IndexesOn("emp")
	if len(on) != 2 || on[0].Name != "emp_no_ix" || on[1].Name != "name_ix" {
		t.Errorf("IndexesOn = %v", on)
	}
	if err := c.DropIndex("name_ix"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropIndex("name_ix"); err == nil {
		t.Error("double DropIndex accepted")
	}
	// Dropping a table removes its indexes.
	if err := c.Drop("emp"); err != nil {
		t.Fatal(err)
	}
	if len(c.IndexNames()) != 0 {
		t.Errorf("indexes survived table drop: %v", c.IndexNames())
	}
}
