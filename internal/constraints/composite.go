package constraints

import (
	"fmt"
	"strings"
)

// CompositeUnique enforces uniqueness of a multi-column key (rows where any
// key column is NULL are exempt, mirroring SQL UNIQUE semantics).
type CompositeUnique struct {
	Name    string
	Table   string
	Columns []string
}

// RuleNames implements Constraint.
func (c CompositeUnique) RuleNames() []string { return []string{c.Name + "_unique"} }

// Compile implements Constraint.
func (c CompositeUnique) Compile() ([]string, error) {
	ids := append([]string{c.Name, c.Table}, c.Columns...)
	if err := identOK(ids...); err != nil {
		return nil, err
	}
	if len(c.Columns) == 0 {
		return nil, fmt.Errorf("constraints: composite unique %q has no columns", c.Name)
	}
	var preds, notNull []string
	preds = append(preds, "inserted into "+c.Table)
	for _, col := range c.Columns {
		preds = append(preds, fmt.Sprintf("updated %s.%s", c.Table, col))
		notNull = append(notNull, col+" is not null")
	}
	cols := strings.Join(c.Columns, ", ")
	return []string{fmt.Sprintf(`create rule %s_unique
when %s
if exists (select %s from %s
           where %s
           group by %s having count(*) > 1)
then rollback`,
		c.Name,
		strings.Join(preds, " or "),
		cols, c.Table,
		strings.Join(notNull, " and "),
		cols)}, nil
}

// CompositeForeignKey enforces referential integrity over a multi-column
// key: child.(FK1..FKn) → parent.(PK1..PKn). Rows whose key columns are all
// NULL are exempt ("no reference"); partially-NULL keys are rejected.
type CompositeForeignKey struct {
	Name     string
	Child    string
	FK       []string
	Parent   string
	PK       []string
	OnDelete DeleteAction
}

// RuleNames implements Constraint.
func (c CompositeForeignKey) RuleNames() []string {
	return []string{c.Name + "_child_check", c.Name + "_parent_delete"}
}

// Compile implements Constraint.
func (c CompositeForeignKey) Compile() ([]string, error) {
	ids := append([]string{c.Name, c.Child, c.Parent}, c.FK...)
	ids = append(ids, c.PK...)
	if err := identOK(ids...); err != nil {
		return nil, err
	}
	if len(c.FK) == 0 || len(c.FK) != len(c.PK) {
		return nil, fmt.Errorf("constraints: composite FK %q: key column lists must be non-empty and equal length", c.Name)
	}
	var out []string

	// Helper fragments, all relative to a child binding "ch" or a
	// transition-table binding.
	match := func(childBind, parentBind string) string {
		var conds []string
		for i := range c.FK {
			conds = append(conds, fmt.Sprintf("%s.%s = %s.%s", parentBind, c.PK[i], childBind, c.FK[i]))
		}
		return strings.Join(conds, " and ")
	}
	allNull := func(bind string) string {
		var conds []string
		for _, f := range c.FK {
			conds = append(conds, fmt.Sprintf("%s.%s is null", bind, f))
		}
		return strings.Join(conds, " and ")
	}

	// (1) Child-side check: for inserts and for updates of any FK column,
	// every affected row must either have an all-NULL key or match a
	// parent row. A violating row is one that is not all-NULL and has no
	// matching parent (this also rejects partially-NULL keys, since NULL
	// comparisons cannot match).
	preds := []string{"inserted into " + c.Child}
	for _, f := range c.FK {
		preds = append(preds, fmt.Sprintf("updated %s.%s", c.Child, f))
	}
	var violations []string
	violations = append(violations, fmt.Sprintf(
		`exists (select * from inserted %s ch
         where not (%s)
           and not exists (select * from %s p where %s))`,
		c.Child, allNull("ch"), c.Parent, match("ch", "p")))
	for _, f := range c.FK {
		violations = append(violations, fmt.Sprintf(
			`exists (select * from new updated %s.%s ch
         where not (%s)
           and not exists (select * from %s p where %s))`,
			c.Child, f, allNull("ch"), c.Parent, match("ch", "p")))
	}
	out = append(out, fmt.Sprintf(`create rule %s_child_check
when %s
if %s
then rollback`,
		c.Name, strings.Join(preds, " or "), strings.Join(violations, "\nor ")))

	// (2) Parent-side delete handling via a correlated EXISTS over the
	// deleted parent rows.
	delMatch := func(childBind string) string {
		var conds []string
		for i := range c.FK {
			conds = append(conds, fmt.Sprintf("d.%s = %s.%s", c.PK[i], childBind, c.FK[i]))
		}
		return strings.Join(conds, " and ")
	}
	switch c.OnDelete {
	case Cascade:
		out = append(out, fmt.Sprintf(`create rule %s_parent_delete
when deleted from %s
then delete from %s ch
     where exists (select * from deleted %s d where %s)
end`,
			c.Name, c.Parent, c.Child, c.Parent, delMatch("ch")))
	case Restrict:
		out = append(out, fmt.Sprintf(`create rule %s_parent_delete
when deleted from %s
if exists (select * from %s ch
           where exists (select * from deleted %s d where %s))
then rollback`,
			c.Name, c.Parent, c.Child, c.Parent, delMatch("ch")))
	case SetNull:
		var sets []string
		for _, f := range c.FK {
			sets = append(sets, f+" = null")
		}
		out = append(out, fmt.Sprintf(`create rule %s_parent_delete
when deleted from %s
then update %s ch set %s
     where exists (select * from deleted %s d where %s)
end`,
			c.Name, c.Parent, c.Child, strings.Join(sets, ", "), c.Parent, delMatch("ch")))
	default:
		return nil, fmt.Errorf("constraints: unknown delete action %d", int(c.OnDelete))
	}
	return out, nil
}
