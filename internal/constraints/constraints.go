// Package constraints implements the higher-level facility sketched in
// Section 6 of the paper (and developed in the companion work [CW90],
// "Deriving production rules for constraint maintenance"): users state
// integrity constraints in a non-procedural form and the system translates
// them into sets of lower-level production rules that maintain the
// constraints.
//
// Each constraint compiles to one or more CREATE RULE statements in the
// paper's rule language; the caller installs them with the engine. Rule
// names are derived from the constraint name so that a constraint can be
// dropped as a unit.
package constraints

import (
	"fmt"
	"strings"
)

// Constraint is any integrity constraint compilable to production rules.
type Constraint interface {
	// RuleNames lists the names of the generated rules.
	RuleNames() []string
	// Compile returns the CREATE RULE (and CREATE RULE PRIORITY)
	// statements implementing the constraint.
	Compile() ([]string, error)
}

// DeleteAction selects referential-integrity behavior when referenced
// parent rows are deleted [IBM88 terminology, as in the paper's
// Example 3.1].
type DeleteAction int

// Delete actions.
const (
	// Cascade deletes the referencing child rows (Example 3.1's "cascaded
	// delete" method).
	Cascade DeleteAction = iota
	// Restrict rolls back any transaction that would orphan child rows.
	Restrict
	// SetNull sets the referencing columns to NULL.
	SetNull
)

// ReferentialIntegrity enforces child.FK → parent.PK:
//
//   - inserting or re-pointing a child row whose FK matches no parent PK
//     rolls the transaction back;
//   - deleting parent rows applies OnDelete (cascade / restrict / set
//     null);
//   - updating a parent's PK is restricted (rolled back when referenced) —
//     cascading key updates cannot pair old and new values in the rule
//     language without a second immutable key, as [CW90] also observes.
type ReferentialIntegrity struct {
	Name     string // constraint name; rule names derive from it
	Child    string
	FK       string
	Parent   string
	PK       string
	OnDelete DeleteAction
}

// RuleNames implements Constraint.
func (c ReferentialIntegrity) RuleNames() []string {
	return []string{c.Name + "_child_check", c.Name + "_parent_delete", c.Name + "_parent_key"}
}

// Compile implements Constraint.
func (c ReferentialIntegrity) Compile() ([]string, error) {
	if err := identOK(c.Name, c.Child, c.FK, c.Parent, c.PK); err != nil {
		return nil, err
	}
	var out []string

	// (1) Child-side check: INSERT into child, or UPDATE of child.FK, must
	// reference an existing parent (NULL FK means "no reference").
	out = append(out, fmt.Sprintf(`create rule %s_child_check
when inserted into %s or updated %s.%s
if exists (select * from inserted %s
           where %s is not null
             and %s not in (select %s from %s))
or exists (select * from new updated %s.%s
           where %s is not null
             and %s not in (select %s from %s))
then rollback`,
		c.Name,
		c.Child, c.Child, c.FK,
		c.Child, c.FK, c.FK, c.PK, c.Parent,
		c.Child, c.FK, c.FK, c.FK, c.PK, c.Parent))

	// (2) Parent-side delete handling.
	switch c.OnDelete {
	case Cascade:
		out = append(out, fmt.Sprintf(`create rule %s_parent_delete
when deleted from %s
then delete from %s
     where %s in (select %s from deleted %s)
end`,
			c.Name, c.Parent, c.Child, c.FK, c.PK, c.Parent))
	case Restrict:
		out = append(out, fmt.Sprintf(`create rule %s_parent_delete
when deleted from %s
if exists (select * from %s
           where %s in (select %s from deleted %s))
then rollback`,
			c.Name, c.Parent, c.Child, c.FK, c.PK, c.Parent))
	case SetNull:
		out = append(out, fmt.Sprintf(`create rule %s_parent_delete
when deleted from %s
then update %s set %s = null
     where %s in (select %s from deleted %s)
end`,
			c.Name, c.Parent, c.Child, c.FK, c.FK, c.PK, c.Parent))
	default:
		return nil, fmt.Errorf("constraints: unknown delete action %d", int(c.OnDelete))
	}

	// (3) Parent key updates: restrict when the old key is referenced.
	out = append(out, fmt.Sprintf(`create rule %s_parent_key
when updated %s.%s
if exists (select * from %s
           where %s in (select %s from old updated %s.%s))
then rollback`,
		c.Name, c.Parent, c.PK, c.Child, c.FK, c.PK, c.Parent, c.PK))
	return out, nil
}

// Domain enforces a row-level predicate over a table: every inserted or
// updated row must satisfy Check (an SQL predicate over the table's
// columns); violations roll the transaction back.
type Domain struct {
	Name  string
	Table string
	Check string
}

// RuleNames implements Constraint.
func (c Domain) RuleNames() []string { return []string{c.Name + "_domain"} }

// Compile implements Constraint.
func (c Domain) Compile() ([]string, error) {
	if err := identOK(c.Name, c.Table); err != nil {
		return nil, err
	}
	if strings.TrimSpace(c.Check) == "" {
		return nil, fmt.Errorf("constraints: domain %q has an empty check", c.Name)
	}
	return []string{fmt.Sprintf(`create rule %s_domain
when inserted into %s or updated %s
if exists (select * from inserted %s where not (%s))
or exists (select * from new updated %s where not (%s))
then rollback`,
		c.Name,
		c.Table, c.Table,
		c.Table, c.Check,
		c.Table, c.Check)}, nil
}

// Unique enforces uniqueness of a column's non-NULL values.
type Unique struct {
	Name   string
	Table  string
	Column string
}

// RuleNames implements Constraint.
func (c Unique) RuleNames() []string { return []string{c.Name + "_unique"} }

// Compile implements Constraint.
func (c Unique) Compile() ([]string, error) {
	if err := identOK(c.Name, c.Table, c.Column); err != nil {
		return nil, err
	}
	return []string{fmt.Sprintf(`create rule %s_unique
when inserted into %s or updated %s.%s
if exists (select %s from %s
           where %s is not null
           group by %s having count(*) > 1)
then rollback`,
		c.Name,
		c.Table, c.Table, c.Column,
		c.Column, c.Table,
		c.Column,
		c.Column)}, nil
}

// Aggregate maintains a derived table Target(GroupCol, total) holding
// Agg(AggCol) of Source grouped by GroupCol — the "maintenance of derived
// data" use that the paper's introduction (citing [Esw76]) motivates. The
// generated rule recomputes the summary whenever the source changes; since
// it writes only the target, it does not retrigger itself.
type Aggregate struct {
	Name     string
	Target   string // two-column table: (group, total)
	Source   string
	GroupCol string
	Agg      string // sum, avg, min, max, count
	AggCol   string
}

// RuleNames implements Constraint.
func (c Aggregate) RuleNames() []string { return []string{c.Name + "_refresh"} }

// Compile implements Constraint.
func (c Aggregate) Compile() ([]string, error) {
	if err := identOK(c.Name, c.Target, c.Source, c.GroupCol, c.Agg, c.AggCol); err != nil {
		return nil, err
	}
	switch strings.ToLower(c.Agg) {
	case "sum", "avg", "min", "max", "count":
	default:
		return nil, fmt.Errorf("constraints: unsupported aggregate %q", c.Agg)
	}
	return []string{fmt.Sprintf(`create rule %s_refresh
when inserted into %s or deleted from %s or updated %s
then delete from %s;
     insert into %s (select %s, %s(%s) from %s group by %s)
end`,
		c.Name,
		c.Source, c.Source, c.Source,
		c.Target,
		c.Target, c.GroupCol, c.Agg, c.AggCol, c.Source, c.GroupCol)}, nil
}

// identOK rejects empty or non-identifier strings (a safety net: the
// generated SQL re-parses through the normal parser, but clear errors here
// beat parser errors later).
func identOK(ids ...string) error {
	for _, id := range ids {
		if id == "" {
			return fmt.Errorf("constraints: empty identifier")
		}
		for i, r := range id {
			ok := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || (i > 0 && r >= '0' && r <= '9')
			if !ok {
				return fmt.Errorf("constraints: invalid identifier %q", id)
			}
		}
	}
	return nil
}
