package constraints

import (
	"strings"
	"testing"

	"sopr/internal/sqlast"
	"sopr/internal/sqlparse"
)

// compileAndParse compiles the constraint and re-parses every generated
// statement, ensuring the compiler emits valid rule language.
func compileAndParse(t *testing.T, c Constraint) []sqlast.Statement {
	t.Helper()
	stmts, err := c.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(stmts) == 0 {
		t.Fatal("no statements generated")
	}
	var parsed []sqlast.Statement
	for _, s := range stmts {
		st, err := sqlparse.ParseStatement(s)
		if err != nil {
			t.Fatalf("generated SQL does not parse: %v\n%s", err, s)
		}
		parsed = append(parsed, st)
	}
	return parsed
}

func TestReferentialIntegrityCompile(t *testing.T) {
	for _, action := range []DeleteAction{Cascade, Restrict, SetNull} {
		ri := ReferentialIntegrity{
			Name: "emp_dept", Child: "emp", FK: "dept_no",
			Parent: "dept", PK: "dept_no", OnDelete: action,
		}
		stmts := compileAndParse(t, ri)
		if len(stmts) != 3 {
			t.Fatalf("action %d: %d statements, want 3", action, len(stmts))
		}
		names := ri.RuleNames()
		for i, st := range stmts {
			cr, ok := st.(*sqlast.CreateRule)
			if !ok {
				t.Fatalf("statement %d is %T", i, st)
			}
			if cr.Name != names[i] {
				t.Errorf("rule %d name %q, want %q", i, cr.Name, names[i])
			}
		}
		del := stmts[1].(*sqlast.CreateRule)
		switch action {
		case Cascade:
			if len(del.Action.Block) != 1 || del.Action.Rollback {
				t.Errorf("cascade action: %+v", del.Action)
			}
			if _, ok := del.Action.Block[0].(*sqlast.Delete); !ok {
				t.Error("cascade should DELETE")
			}
		case Restrict:
			if !del.Action.Rollback {
				t.Error("restrict should ROLLBACK")
			}
		case SetNull:
			if _, ok := del.Action.Block[0].(*sqlast.Update); !ok {
				t.Error("set-null should UPDATE")
			}
		}
	}
}

func TestDomainCompile(t *testing.T) {
	d := Domain{Name: "pay", Table: "emp", Check: "salary >= 0"}
	stmts := compileAndParse(t, d)
	cr := stmts[0].(*sqlast.CreateRule)
	if !cr.Action.Rollback || cr.Condition == nil {
		t.Errorf("domain rule: %+v", cr)
	}
	if len(cr.Preds) != 2 {
		t.Errorf("domain rule preds: %+v", cr.Preds)
	}
	if _, err := (Domain{Name: "x", Table: "t", Check: "  "}).Compile(); err == nil {
		t.Error("empty check accepted")
	}
}

func TestUniqueCompile(t *testing.T) {
	u := Unique{Name: "empno", Table: "emp", Column: "emp_no"}
	stmts := compileAndParse(t, u)
	cr := stmts[0].(*sqlast.CreateRule)
	if !cr.Action.Rollback {
		t.Error("unique should ROLLBACK")
	}
	if !strings.Contains(stmts[0].String(), "GROUP BY") {
		t.Errorf("unique rule should use GROUP BY/HAVING: %s", stmts[0])
	}
}

func TestAggregateCompile(t *testing.T) {
	a := Aggregate{Name: "payroll", Target: "totals", Source: "emp",
		GroupCol: "dept_no", Agg: "sum", AggCol: "salary"}
	stmts := compileAndParse(t, a)
	cr := stmts[0].(*sqlast.CreateRule)
	if len(cr.Action.Block) != 2 {
		t.Errorf("aggregate action ops: %d, want 2 (delete + insert)", len(cr.Action.Block))
	}
	if len(cr.Preds) != 3 {
		t.Errorf("aggregate preds: %d, want 3", len(cr.Preds))
	}
	if _, err := (Aggregate{Name: "x", Target: "t", Source: "s",
		GroupCol: "g", Agg: "median", AggCol: "a"}).Compile(); err == nil {
		t.Error("unsupported aggregate accepted")
	}
}

func TestCompositeCompileParses(t *testing.T) {
	for _, action := range []DeleteAction{Cascade, Restrict, SetNull} {
		fk := CompositeForeignKey{
			Name: "loc", Child: "office", FK: []string{"country", "city"},
			Parent: "region", PK: []string{"country", "city"}, OnDelete: action,
		}
		stmts := compileAndParse(t, fk)
		if len(stmts) != 2 {
			t.Fatalf("action %d: %d statements", action, len(stmts))
		}
		check := stmts[0].(*sqlast.CreateRule)
		// inserted into child + one updated pred per FK column.
		if len(check.Preds) != 3 {
			t.Errorf("child-check preds: %d", len(check.Preds))
		}
		if !check.Action.Rollback {
			t.Error("child check should ROLLBACK")
		}
	}
	u := CompositeUnique{Name: "k", Table: "t", Columns: []string{"a", "b"}}
	stmts := compileAndParse(t, u)
	cr := stmts[0].(*sqlast.CreateRule)
	if len(cr.Preds) != 3 { // inserted + 2 updated columns
		t.Errorf("composite unique preds: %d", len(cr.Preds))
	}
}

func TestIdentValidation(t *testing.T) {
	bad := []Constraint{
		ReferentialIntegrity{Name: "", Child: "c", FK: "f", Parent: "p", PK: "k"},
		ReferentialIntegrity{Name: "x", Child: "c; drop table emp", FK: "f", Parent: "p", PK: "k"},
		Domain{Name: "1bad", Table: "t", Check: "true"},
		Unique{Name: "u", Table: "t", Column: "a b"},
		Aggregate{Name: "a", Target: "t'", Source: "s", GroupCol: "g", Agg: "sum", AggCol: "c"},
	}
	for i, c := range bad {
		if _, err := c.Compile(); err == nil {
			t.Errorf("case %d: invalid identifiers accepted", i)
		}
	}
	if err := identOK("ok_name2"); err != nil {
		t.Errorf("valid identifier rejected: %v", err)
	}
}

func TestBadDeleteAction(t *testing.T) {
	ri := ReferentialIntegrity{Name: "x", Child: "c", FK: "f", Parent: "p", PK: "k", OnDelete: DeleteAction(99)}
	if _, err := ri.Compile(); err == nil {
		t.Error("unknown delete action accepted")
	}
}
