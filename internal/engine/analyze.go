package engine

import (
	"sopr/internal/analysis"
)

// Analyze runs the static rule analysis of Section 6 over the currently
// defined rules, taking declared priorities into account for
// ordering-conflict warnings.
func (e *Engine) Analyze() *analysis.Report {
	defs := make([]analysis.RuleDef, 0, len(e.defOrder))
	for _, name := range e.defOrder {
		r := e.ruleSet[name]
		defs = append(defs, analysis.RuleDef{
			Name:      r.Name,
			Preds:     r.Preds,
			Condition: r.Condition,
			Action:    r.Action,
		})
	}
	return analysis.Analyze(defs, e.selector.Higher)
}
