package engine

// Differential tests tying independent implementations and analyses
// together:
//
//   - For single-tuple transactions with audit-style rules (conditions and
//     actions reading only the rule's own transition tables, actions
//     writing only unwatched tables), the set-oriented semantics of the
//     paper coincides with classic row-level trigger semantics — so the
//     engine and the internal/instance baseline must produce identical
//     final states.
//
//   - For rule sets the static analyzer certifies conflict-free, the final
//     database state must be independent of the rule selection strategy
//     (the §4.4 ordering freedom is harmless exactly when no conflicts are
//     reported).

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sopr/internal/exec"
	"sopr/internal/instance"
	"sopr/internal/rules"
)

const diffSchema = `
	create table t (id int, v int);
	create table ins_log (id int, v int);
	create table del_log (id int, v int);
	create table upd_log (id int, oldv int, newv int)`

const diffRules = `
	create rule on_ins when inserted into t
	then insert into ins_log (select id, v from inserted t)
	end;
	create rule on_del when deleted from t
	then insert into del_log (select id, v from deleted t)
	end;
	create rule on_upd when updated t.v
	then insert into upd_log (select o.id, o.v, n.v
	     from old updated t.v o, new updated t.v n where o.id = n.id)
	end`

// TestSetVsInstanceAgreement runs a random stream of single-tuple
// transactions through both engines and compares every table.
func TestSetVsInstanceAgreement(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		eng := New(Config{})
		mustExec(t, eng, diffSchema)
		mustExec(t, eng, diffRules)
		inst := instance.New()
		if err := inst.Exec(diffSchema); err != nil {
			t.Fatal(err)
		}
		if err := inst.Exec(diffRules); err != nil {
			t.Fatal(err)
		}

		live := []int{}
		nextID := 0
		for i := 0; i < 120; i++ {
			var stmt string
			switch {
			case len(live) == 0 || rng.Intn(3) == 0:
				stmt = fmt.Sprintf(`insert into t values (%d, %d)`, nextID, rng.Intn(50))
				live = append(live, nextID)
				nextID++
			case rng.Intn(2) == 0:
				j := rng.Intn(len(live))
				stmt = fmt.Sprintf(`delete from t where id = %d`, live[j])
				live = append(live[:j], live[j+1:]...)
			default:
				stmt = fmt.Sprintf(`update t set v = %d where id = %d`,
					rng.Intn(50), live[rng.Intn(len(live))])
			}
			if _, err := eng.Exec(stmt); err != nil {
				t.Fatalf("seed %d set-engine %q: %v", seed, stmt, err)
			}
			if err := inst.Exec(stmt); err != nil {
				t.Fatalf("seed %d instance %q: %v", seed, stmt, err)
			}
		}

		for _, table := range []string{"t", "ins_log", "del_log", "upd_log"} {
			q := fmt.Sprintf(`select * from %s order by 0 + id`, table)
			// ORDER BY the first column; both engines sort identically.
			a, err := eng.QueryString(q)
			if err != nil {
				t.Fatal(err)
			}
			b, err := inst.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Rows) != len(b.Rows) {
				t.Fatalf("seed %d table %s: %d vs %d rows", seed, table, len(a.Rows), len(b.Rows))
			}
			// Compare as multisets (row order within equal ids may differ).
			if !equalMultiset(multiset(rowStrings(a)), multiset(rowStrings(b))) {
				t.Errorf("seed %d table %s differs:\nset:      %v\ninstance: %v",
					seed, table, a.Rows, b.Rows)
			}
		}
	}
}

func rowStrings(res *exec.Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r.String()
	}
	return out
}

func multiset(rows []string) map[string]int {
	m := make(map[string]int)
	for _, r := range rows {
		m[r]++
	}
	return m
}

func equalMultiset(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// TestConflictFreeRulesStrategyIndependent: the analyzer reports no
// conflicts for this rule set, so all three selection strategies must
// yield byte-identical final dumps on the same workload.
func TestConflictFreeRulesStrategyIndependent(t *testing.T) {
	build := func(strat rules.Strategy) string {
		e := New(Config{Strategy: strat})
		mustExec(t, e, `
			create table orders (id int, amount int);
			create table big (id int);
			create table small (id int);
			create table totals (n int)`)
		// Three rules on the same event writing disjoint tables, none read
		// by another: conflict-free by construction.
		mustExec(t, e, `
			create rule r_big when inserted into orders
			then insert into big (select id from inserted orders where amount >= 100)
			end;
			create rule r_small when inserted into orders
			then insert into small (select id from inserted orders where amount < 100)
			end;
			create rule r_count when inserted into orders
			then insert into totals (select count(*) from inserted orders)
			end`)
		rep := e.Analyze()
		if len(rep.Conflicts) != 0 {
			t.Fatalf("rule set not conflict-free: %v", rep.Conflicts)
		}
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 30; i++ {
			k := 1 + rng.Intn(4)
			var b strings.Builder
			b.WriteString("insert into orders values ")
			for j := 0; j < k; j++ {
				if j > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "(%d, %d)", i*10+j, rng.Intn(200))
			}
			mustExec(t, e, b.String())
		}
		var out strings.Builder
		if err := e.Dump(&out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	lru := build(rules.StrategyLeastRecent)
	mru := build(rules.StrategyMostRecent)
	name := build(rules.StrategyNameOrder)
	if lru != mru || lru != name {
		t.Error("conflict-free rule set produced strategy-dependent state")
	}
}
