package engine

import (
	"fmt"
	"io"
	"strings"

	"sopr/internal/catalog"
	"sopr/internal/rules"
	"sopr/internal/sqlast"
)

// insertBatch is the number of rows emitted per INSERT statement in dumps.
const insertBatch = 500

// Dump writes a script that recreates the database: CREATE TABLE
// statements, batched INSERTs, then rule definitions, priorities and
// deactivations. Data precedes rules so that reloading the script does not
// fire the rules. External procedures cannot be serialized; rules calling
// them are emitted and will fail to re-install unless the procedures are
// registered before loading.
//
// Dump reads the published engine snapshot — schema, data, indexes, rules
// and LSN all from one consistent committed cut — so it is lock-free and
// may run at any time, concurrent with the write path; an in-flight
// transaction is simply not visible.
func (e *Engine) Dump(w io.Writer) error {
	sn := e.snap.Load()
	cat := sn.store.Catalog()
	if err := dumpTables(w, cat); err != nil {
		return err
	}
	for _, name := range cat.Names() {
		tuples, err := sn.store.Tuples(name)
		if err != nil {
			return err
		}
		for start := 0; start < len(tuples); start += insertBatch {
			end := start + insertBatch
			if end > len(tuples) {
				end = len(tuples)
			}
			var b strings.Builder
			b.WriteString("INSERT INTO ")
			b.WriteString(name)
			b.WriteString(" VALUES ")
			for i, tup := range tuples[start:end] {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(tup.Values.String())
			}
			b.WriteString(";\n")
			if _, err := io.WriteString(w, b.String()); err != nil {
				return err
			}
		}
	}
	// Indexes after the data (a reload bulk-builds each index once) and
	// before the rules. The rule script was rendered at publish time (rule
	// structures are writer-private), so it is consistent with the data.
	if err := dumpIndexes(w, cat); err != nil {
		return err
	}
	_, err := io.WriteString(w, sn.rules)
	return err
}

// dumpTables writes the CREATE TABLE statements for the given catalog.
// Shared by Dump (snapshot catalog) and the WAL checkpoint writer (live
// catalog, on the exclusive path).
func dumpTables(w io.Writer, cat *catalog.Catalog) error {
	for _, name := range cat.Names() {
		t, err := cat.Lookup(name)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s;\n", t.String()); err != nil {
			return err
		}
	}
	return nil
}

// dumpIndexes writes the CREATE INDEX statements.
func dumpIndexes(w io.Writer, cat *catalog.Catalog) error {
	for _, name := range cat.IndexNames() {
		ix, err := cat.Index(name)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "CREATE INDEX %s ON %s (%s);\n", ix.Name, ix.Table, ix.Column); err != nil {
			return err
		}
	}
	return nil
}

// dumpRules writes the rule definitions, priorities and deactivations.
func (e *Engine) dumpRules(w io.Writer) error {
	for _, name := range e.defOrder {
		r := e.ruleSet[name]
		cr := &sqlast.CreateRule{
			Name:      r.Name,
			Preds:     r.Preds,
			Condition: r.Condition,
			Action:    r.Action,
		}
		switch r.Scope {
		case rules.ScopeSinceConsidered:
			cr.Scope = sqlast.ScopeSinceConsidered
		case rules.ScopeSinceTriggered:
			cr.Scope = sqlast.ScopeSinceTriggered
		}
		if _, err := fmt.Fprintf(w, "%s;\n", cr.String()); err != nil {
			return err
		}
	}
	for _, edge := range e.selector.Edges() {
		if _, err := fmt.Fprintf(w, "CREATE RULE PRIORITY %s BEFORE %s;\n", edge[0], edge[1]); err != nil {
			return err
		}
	}
	for _, name := range e.defOrder {
		if !e.ruleSet[name].Active {
			if _, err := fmt.Fprintf(w, "DEACTIVATE RULE %s;\n", name); err != nil {
				return err
			}
		}
	}
	return nil
}

// Load executes a dump script. It is Exec with a reader.
func (e *Engine) Load(r io.Reader) error {
	src, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	_, err = e.Exec(string(src))
	return err
}
