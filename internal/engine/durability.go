// Durability: the engine's attachment to the write-ahead log.
//
// The durable unit is the composed net transition effect [I, D, U] of a
// committed transaction (Definition 2.1) — not the statements that produced
// it. Rule selection among unordered triggered rules is arbitrary
// (Section 4), so replaying statements with rule processing enabled could
// legally diverge from the pre-crash execution; replaying net effects with
// rule processing disabled lands on a byte-identical state. Definition
// statements are the exception: they execute between transactions and never
// trigger rules, so they are logged and replayed as SQL text.
package engine

import (
	"fmt"
	"sort"
	"strings"

	"sopr/internal/rules"
	"sopr/internal/sqlast"
	"sopr/internal/sqlparse"
	"sopr/internal/storage"
	"sopr/internal/value"
	"sopr/internal/wal"
)

// ckptBatch is the number of tuples per CkptRows record in a checkpoint.
const ckptBatch = 512

// AttachWAL connects the engine to an open log. Every subsequent committed
// transaction appends its net effect before the in-memory commit, and every
// definition statement appends its text. Attach after recovery has been
// replayed (LoadCheckpoint and ReplayRecord do not re-log what they apply);
// attaching publishes the engine snapshot, making the fully-recovered state
// (and its LSN) visible to lock-free readers in one step.
func (e *Engine) AttachWAL(l *wal.Log) {
	e.wal = l
	e.PublishSnapshot()
}

// WAL returns the attached log, nil if the engine is not durable.
func (e *Engine) WAL() *wal.Log { return e.wal }

// valueToCell converts one engine value for the log.
func valueToCell(v value.Value) (wal.Cell, error) {
	switch v.Kind() {
	case value.KindNull:
		return wal.CellOf(nil)
	case value.KindInt:
		return wal.CellOf(v.Int())
	case value.KindFloat:
		return wal.CellOf(v.Float())
	case value.KindString:
		return wal.CellOf(v.Str())
	case value.KindBool:
		return wal.CellOf(v.Bool())
	default:
		return wal.Cell{}, fmt.Errorf("engine: cannot log value of kind %v", v.Kind())
	}
}

// cellToValue converts one logged cell back.
func cellToValue(c wal.Cell) (value.Value, error) {
	raw, err := c.Value()
	if err != nil {
		return value.Null, err
	}
	switch x := raw.(type) {
	case nil:
		return value.Null, nil
	case int64:
		return value.NewInt(x), nil
	case float64:
		return value.NewFloat(x), nil
	case string:
		return value.NewString(x), nil
	case bool:
		return value.NewBool(x), nil
	default:
		return value.Null, fmt.Errorf("engine: unexpected logged value %T", raw)
	}
}

// rowToCells converts a whole row.
func rowToCells(row storage.Row) ([]wal.Cell, error) {
	cells := make([]wal.Cell, len(row))
	for i, v := range row {
		c, err := valueToCell(v)
		if err != nil {
			return nil, err
		}
		cells[i] = c
	}
	return cells, nil
}

// cellsToRow converts a logged row back.
func cellsToRow(cells []wal.Cell) (storage.Row, error) {
	row := make(storage.Row, len(cells))
	for i, c := range cells {
		v, err := cellToValue(c)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

// walHandles returns the effect-map keys in ascending order so commit
// records are deterministic for a given effect.
func walHandles[V any](m map[storage.Handle]V) []storage.Handle {
	hs := make([]storage.Handle, 0, len(m))
	for h := range m {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	return hs
}

// buildCommitRecord converts a transaction's composed net effect into a
// durable commit record. It runs before store.Commit, while the transaction
// is still applied, so inserted and updated tuples' final values are read
// from the live store. LastHandle captures the allocation counter: handles
// consumed by rolled-back work are deliberately not reproduced on replay —
// handles need uniqueness and monotonicity, not density (Section 2).
func (e *Engine) buildCommitRecord(eff *rules.Effect) (*wal.CommitRecord, error) {
	byTable := make(map[string]*wal.TableEffect)
	tab := func(name string) *wal.TableEffect {
		t, ok := byTable[name]
		if !ok {
			t = &wal.TableEffect{Table: name}
			byTable[name] = t
		}
		return t
	}
	liveRow := func(h storage.Handle) ([]wal.Cell, error) {
		tup, ok := e.store.Get(h)
		if !ok {
			return nil, fmt.Errorf("engine: wal: handle %d in net effect but not in store", h)
		}
		return rowToCells(tup.Values)
	}
	for _, h := range walHandles(eff.Ins) {
		cells, err := liveRow(h)
		if err != nil {
			return nil, err
		}
		t := tab(eff.Ins[h])
		t.Ins = append(t.Ins, wal.TupleRec{Handle: uint64(h), Row: cells})
	}
	for _, h := range walHandles(eff.Del) {
		t := tab(eff.Del[h].Table)
		t.Del = append(t.Del, uint64(h))
	}
	for _, h := range walHandles(eff.Upd) {
		cells, err := liveRow(h)
		if err != nil {
			return nil, err
		}
		t := tab(eff.Upd[h].Table)
		t.Upd = append(t.Upd, wal.TupleRec{Handle: uint64(h), Row: cells})
	}
	names := make([]string, 0, len(byTable))
	for name := range byTable {
		names = append(names, name)
	}
	sort.Strings(names)
	rec := &wal.CommitRecord{LastHandle: uint64(e.store.NextHandle()) - 1}
	for _, name := range names {
		rec.Tables = append(rec.Tables, *byTable[name])
	}
	return rec, nil
}

// logCommit appends the transaction's net effect and returns its LSN.
// Called immediately before store.Commit; an error fails the transaction
// (log-before-commit: a transaction is only acknowledged once its record
// is in the log, so the log can lose at most unacknowledged work, never
// acknowledged work). The append is asynchronous with respect to
// durability: the record is framed and written but not yet fsynced — the
// owner must call wal.Log.WaitDurable on the returned LSN before
// acknowledging the transaction, which is where concurrent committers
// coalesce onto one group-commit fsync (sopr.DB and SynchronizedDB do
// this after releasing the write mutex).
func (e *Engine) logCommit(eff *rules.Effect) (uint64, error) {
	rec, err := e.buildCommitRecord(eff)
	if err != nil {
		return 0, err
	}
	lsn, err := e.wal.AppendCommitAsync(rec)
	if err != nil {
		return 0, fmt.Errorf("engine: log commit: %w", err)
	}
	return lsn, nil
}

// logDefinition appends a successfully-executed definition statement.
func (e *Engine) logDefinition(st sqlast.Statement) error {
	if err := e.wal.AppendDDL(st.String()); err != nil {
		return fmt.Errorf("engine: log definition: %w", err)
	}
	return nil
}

// ReplayRecord applies one recovered log record with rule processing
// disabled: commit records replay their net effect by handle, definition
// records re-execute their SQL text. The engine must not have a WAL
// attached yet (replayed work is already in the log).
//
// Commit replays deliberately do not publish a read snapshot: publishing
// freezes every table, so the next replayed record would clone its table
// again — per-record publishes would make recovery quadratic. Recovery
// publishes once at the end (AttachWAL); a replication follower, which
// wants per-record read visibility, calls PublishSnapshot after each
// record and pays the copy-on-write clone as the price.
func (e *Engine) ReplayRecord(rec wal.Record) error {
	switch rec.Kind {
	case wal.KindCommit:
		if rec.Commit == nil {
			return fmt.Errorf("engine: replay: commit record lsn %d has no payload", rec.LSN)
		}
		if err := e.replayCommit(rec.Commit); err != nil {
			return fmt.Errorf("engine: replay lsn %d: %w", rec.LSN, err)
		}
	case wal.KindDDL:
		if rec.DDL == nil {
			return fmt.Errorf("engine: replay: ddl record lsn %d has no payload", rec.LSN)
		}
		st, err := sqlparse.ParseStatement(rec.DDL.Stmt)
		if err != nil {
			return fmt.Errorf("engine: replay lsn %d: parse %q: %w", rec.LSN, rec.DDL.Stmt, err)
		}
		if err := e.execDefinition(st); err != nil {
			return fmt.Errorf("engine: replay lsn %d: %w", rec.LSN, err)
		}
	case wal.KindEpoch:
		// Promotion epochs fence the replication stream (repl package);
		// they occupy an LSN but carry no database effect.
		if rec.Epoch == nil {
			return fmt.Errorf("engine: replay: epoch record lsn %d has no payload", rec.LSN)
		}
	default:
		return fmt.Errorf("engine: replay: unexpected record kind %d at lsn %d", rec.Kind, rec.LSN)
	}
	e.stats.RecoveredRecords++
	return nil
}

// replayCommit applies one net effect. The [I, D, U] sets of a composed
// effect are disjoint (Definition 2.1), so the order among them is free.
func (e *Engine) replayCommit(rec *wal.CommitRecord) error {
	for _, t := range rec.Tables {
		for _, h := range t.Del {
			if err := e.store.ReplayDelete(storage.Handle(h)); err != nil {
				return err
			}
		}
		for _, u := range t.Upd {
			row, err := cellsToRow(u.Row)
			if err != nil {
				return err
			}
			if err := e.store.ReplaySet(storage.Handle(u.Handle), row); err != nil {
				return err
			}
		}
		for _, ins := range t.Ins {
			row, err := cellsToRow(ins.Row)
			if err != nil {
				return err
			}
			if err := e.store.ReplayInsert(t.Table, storage.Handle(ins.Handle), row); err != nil {
				return err
			}
		}
	}
	e.store.RestoreNextHandle(storage.Handle(rec.LastHandle))
	return nil
}

// Checkpoint writes a full database image through the attached log and
// prunes the segments it covers. The image preserves tuple handles (a plain
// SQL dump would reassign them, and the log tail addresses tuples by
// handle); its schema and rule scripts are exactly what Dump emits.
func (e *Engine) Checkpoint() error {
	if e.wal == nil {
		return fmt.Errorf("engine: no write-ahead log attached")
	}
	return e.CheckpointTo(e.wal)
}

// CheckpointTo writes the image through an explicit log. A durable
// replication follower checkpoints its engine into its own log this way:
// the follower's engine has no WAL attached (replayed records are already
// in the log), but its log still needs periodic images for pruning and for
// bootstrapping siblings after a promotion.
func (e *Engine) CheckpointTo(l *wal.Log) error {
	if e.store.InTxn() {
		return fmt.Errorf("engine: cannot checkpoint during a transaction")
	}
	err := l.WriteCheckpoint(func(cw *wal.CheckpointWriter) error {
		var schema strings.Builder
		if err := dumpTables(&schema, e.store.Catalog()); err != nil {
			return err
		}
		if err := dumpIndexes(&schema, e.store.Catalog()); err != nil {
			return err
		}
		if err := cw.Meta(uint64(e.store.NextHandle())-1, schema.String()); err != nil {
			return err
		}
		cat := e.store.Catalog()
		for _, name := range cat.Names() {
			tuples, err := e.store.Tuples(name)
			if err != nil {
				return err
			}
			for start := 0; start < len(tuples); start += ckptBatch {
				end := start + ckptBatch
				if end > len(tuples) {
					end = len(tuples)
				}
				batch := make([]wal.TupleRec, 0, end-start)
				for _, tup := range tuples[start:end] {
					cells, err := rowToCells(tup.Values)
					if err != nil {
						return err
					}
					batch = append(batch, wal.TupleRec{Handle: uint64(tup.Handle), Row: cells})
				}
				if err := cw.Rows(name, batch); err != nil {
					return err
				}
			}
		}
		var ruleSQL strings.Builder
		if err := e.dumpRules(&ruleSQL); err != nil {
			return err
		}
		return cw.Rules(ruleSQL.String())
	})
	if err != nil {
		return err
	}
	e.stats.Checkpoints++
	// Data is unchanged, but the counters and (after pruning) the WAL
	// stats moved; republish for lock-free Stats readers.
	e.publish()
	return nil
}

// LoadCheckpoint installs a recovered checkpoint image into an empty
// engine: schema script, tuples with their original handles, rule script,
// handle counter. Call before replaying the log tail and before AttachWAL.
func (e *Engine) LoadCheckpoint(ck *wal.Checkpoint) error {
	if e.wal != nil {
		return fmt.Errorf("engine: load checkpoint after WAL attach")
	}
	if _, err := e.Exec(ck.Meta.Schema); err != nil {
		return fmt.Errorf("engine: checkpoint schema: %w", err)
	}
	for _, batch := range ck.Tables {
		for _, tup := range batch.Tuples {
			row, err := cellsToRow(tup.Row)
			if err != nil {
				return err
			}
			if err := e.store.ReplayInsert(batch.Table, storage.Handle(tup.Handle), row); err != nil {
				return fmt.Errorf("engine: checkpoint rows: %w", err)
			}
		}
	}
	if ck.Rules != "" {
		if _, err := e.Exec(ck.Rules); err != nil {
			return fmt.Errorf("engine: checkpoint rules: %w", err)
		}
	}
	e.store.RestoreNextHandle(storage.Handle(ck.Meta.LastHandle))
	// One publish for the whole image: the replayed rows went in without
	// per-record publishes (see ReplayRecord).
	e.PublishSnapshot()
	return nil
}
