// Package engine ties the substrates together into the system of the
// paper: it executes externally-generated operation blocks as transactions,
// maintains per-rule composite transition information, and runs the rule
// execution algorithm of Figure 1 — including rollback actions, the
// runaway-rule guard suggested by footnote 7, the rule triggering points of
// Section 5.3, select-triggered rules of Section 5.1, and external
// procedure actions of Section 5.2.
package engine

import (
	"fmt"
	"sync/atomic"
	"time"

	"sopr/internal/exec"
	"sopr/internal/rules"
	"sopr/internal/sqlast"
	"sopr/internal/sqlparse"
	"sopr/internal/storage"
	"sopr/internal/wal"
)

// Config controls engine behavior.
type Config struct {
	// MaxRuleTransitions caps the number of rule-generated transitions per
	// transaction — the run-time guard against divergent rule sets that
	// footnote 7 of the paper suggests. Exceeding the cap rolls the
	// transaction back with ErrRunaway. Zero means the default (10000).
	MaxRuleTransitions int
	// Strategy is the tie-break among equal-priority triggered rules
	// (Section 4.4 discusses the design space).
	Strategy rules.Strategy
	// SelectHook, when non-nil, overrides Strategy: among the triggered
	// rules maximal in the priority partial order it is handed the
	// candidate names in ascending order and returns the chosen one (see
	// rules.Selector.Choose). The differential test harness uses it to
	// drive the engine and the reference oracle through identical
	// selection sequences — any order it produces is legal under the
	// paper's Section 4.4 freedom.
	SelectHook func(candidates []string) string
	// DefaultScope is the triggering scope given to newly defined rules
	// (the paper's semantics by default; footnote 8 alternatives
	// available).
	DefaultScope rules.TriggerScope
	// EnableSelectTriggers turns on the Section 5.1 extension: select
	// operations join operation blocks, transition effects gain an S
	// component, and `selected t` predicates become meaningful.
	EnableSelectTriggers bool
	// RuleTimeout, when positive, bounds wall-clock time spent in rule
	// processing per transaction — the "run-time detection using a timeout
	// mechanism" of footnote 7. Exceeding it rolls the transaction back.
	RuleTimeout time.Duration
	// FullTransInfo disables the per-rule filtering of transition
	// information to the rule's predicate tables (Figure 1's "we need only
	// save the subset ... relevant to the particular rule"). Used by the
	// B10 ablation benchmark; semantics are identical either way.
	FullTransInfo bool
	// NoIndex disables the secondary-index access path for every
	// evaluation the engine performs (queries, conditions, actions),
	// forcing heap scans — the engine-wide form of exec.Env.NoIndex.
	// Used by the differential harness's index-ablation parity check;
	// semantics are identical either way.
	NoIndex bool
	// NoHashJoin disables the hash equi-join fast path engine-wide (see
	// exec.Env.NoHashJoin). Semantics are identical either way.
	NoHashJoin bool
	// NoPlanner disables the cost-based join planner engine-wide (see
	// exec.Env.NoPlanner), leaving the legacy access paths. Used by the
	// differential harness's planner-ablation parity check; semantics are
	// identical either way.
	NoPlanner bool
}

const defaultMaxRuleTransitions = 10000

// ErrRunaway is returned (wrapped) when a transaction exceeds
// MaxRuleTransitions; the transaction is rolled back.
var ErrRunaway = fmt.Errorf("engine: rule processing exceeded the transition limit (possible infinite loop; see footnote 7)")

// ErrTimeout is returned (wrapped) when a transaction exceeds RuleTimeout;
// the transaction is rolled back (footnote 7's run-time timeout detection).
var ErrTimeout = fmt.Errorf("engine: rule processing exceeded the time limit (possible infinite loop; see footnote 7)")

// ProcContext is handed to external procedures (Section 5.2). It gives the
// procedure access to the database and to the triggering rule's transition
// tables; data manipulation performed through it is folded into the
// rule-generated transition like any other action operation.
type ProcContext struct {
	RuleName string
	env      *exec.Env
	eff      *rules.Effect
}

// Exec runs one or more data manipulation operations (a fragment of the
// action's operation block).
func (c *ProcContext) Exec(src string) error {
	stmts, err := sqlparse.ParseStatements(src)
	if err != nil {
		return err
	}
	for _, st := range stmts {
		switch st.(type) {
		case *sqlast.Insert, *sqlast.Delete, *sqlast.Update:
			res, err := c.env.ExecOp(st)
			if err != nil {
				return err
			}
			c.eff.AddOp(res)
		default:
			return fmt.Errorf("engine: external procedures may only perform data manipulation, got %T", st)
		}
	}
	return nil
}

// Query evaluates a SELECT with the rule's transition tables in scope.
func (c *ProcContext) Query(src string) (*exec.Result, error) {
	st, err := sqlparse.ParseStatement(src)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sqlast.Select)
	if !ok {
		return nil, fmt.Errorf("engine: Query requires a SELECT, got %T", st)
	}
	return c.env.Query(sel)
}

// ProcFunc is an external procedure registered with the engine.
type ProcFunc func(*ProcContext) error

// TraceKind classifies trace events.
type TraceKind int

// Trace event kinds.
const (
	TraceExternalTransition TraceKind = iota // an external operation block executed
	TraceRuleConsidered                      // a triggered rule's condition was evaluated
	TraceRuleFired                           // a rule's action executed, creating a transition
	TraceRollback                            // a rollback action fired
	TraceCommit                              // the transaction committed
)

// TraceEvent describes one step of rule processing; used by tests, the
// shell, and the examples to surface the Section 4 semantics.
type TraceEvent struct {
	Kind      TraceKind
	Rule      string // rule involved (empty for external transitions)
	CondHeld  bool   // for TraceRuleConsidered
	Effect    string // effect summary for transitions
	Transient int    // rule-generated transition count so far
}

// Firing records one rule action execution within a transaction.
type Firing struct {
	Rule   string
	Effect string
}

// TxnResult summarizes one committed or rolled-back transaction.
type TxnResult struct {
	RolledBack   bool
	RollbackRule string
	Firings      []Firing
	// Queries holds the results of SELECT statements executed in the
	// transaction's operation block, in order.
	Queries []*exec.Result
	// LastLSN is the log position of the newest commit record this
	// execution appended (0 without a WAL, or when nothing committed).
	// The record is written but not necessarily fsynced yet: the owner
	// must pass it to wal.Log.WaitDurable before acknowledging the work,
	// so that concurrent committers share one group-commit fsync.
	LastLSN uint64
}

// Engine is the database system with the production rules facility.
type Engine struct {
	store    *storage.Store
	ruleSet  map[string]*rules.Rule
	defOrder []string
	selector *rules.Selector
	procs    map[string]ProcFunc
	cfg      Config
	seq      int64
	stats    Stats
	// wal, when attached, receives every committed transaction's net
	// effect and every definition statement (see durability.go). walEff
	// accumulates the current transaction's composed effect for the log.
	wal    *wal.Log
	walEff *rules.Effect
	// traceFn, when set, receives rule-processing events. It is swapped
	// atomically (SetTrace) so installation can never be observed
	// half-done by a concurrent lock-free reader; events themselves are
	// emitted only from the exclusive (write) path — queries perform no
	// transition and therefore never trace.
	traceFn atomic.Pointer[func(TraceEvent)]
	// snap is the engine's published read state (see snapshot.go): queries,
	// dumps, stats and LSN reads load it atomically and touch nothing else,
	// so they run with zero locking concurrent with the write path.
	snap atomic.Pointer[snapState]
	// planCounters is shared planner telemetry (atomics; advanced by both
	// the write path and concurrent lock-free readers).
	planCounters exec.PlanCounters
}

// New returns an engine with an empty database.
func New(cfg Config) *Engine {
	if cfg.MaxRuleTransitions == 0 {
		cfg.MaxRuleTransitions = defaultMaxRuleTransitions
	}
	sel := rules.NewSelector()
	sel.Strategy = cfg.Strategy
	sel.Choose = cfg.SelectHook
	e := &Engine{
		store:    storage.New(),
		ruleSet:  make(map[string]*rules.Rule),
		selector: sel,
		procs:    make(map[string]ProcFunc),
		cfg:      cfg,
	}
	e.publish()
	return e
}

// Store exposes the underlying storage engine (read-mostly helpers for
// tests, tools and benchmarks).
func (e *Engine) Store() *storage.Store { return e.store }

// RegisterProcedure installs an external procedure callable from rule
// actions via `THEN CALL name` (Section 5.2).
func (e *Engine) RegisterProcedure(name string, fn ProcFunc) {
	e.procs[name] = fn
}

// Rules returns the defined rule names in definition order.
func (e *Engine) Rules() []string {
	out := make([]string, len(e.defOrder))
	copy(out, e.defOrder)
	return out
}

// Rule returns a defined rule by name.
func (e *Engine) Rule(name string) (*rules.Rule, bool) {
	r, ok := e.ruleSet[name]
	return r, ok
}

// SetRuleScope overrides one rule's triggering scope (footnote 8).
func (e *Engine) SetRuleScope(name string, scope rules.TriggerScope) error {
	r, ok := e.ruleSet[name]
	if !ok {
		return fmt.Errorf("engine: rule %q does not exist", name)
	}
	r.Scope = scope
	e.publish()
	return nil
}

// SetTrace installs (or, with nil, removes) the trace hook. The swap is a
// single atomic store: a concurrent reader of the hook sees either the
// old handler or the new one, never a partial write.
func (e *Engine) SetTrace(fn func(TraceEvent)) {
	if fn == nil {
		e.traceFn.Store(nil)
		return
	}
	e.traceFn.Store(&fn)
}

func (e *Engine) trace(ev TraceEvent) {
	if fn := e.traceFn.Load(); fn != nil {
		(*fn)(ev)
	}
}

// ---------------------------------------------------------------------------
// Statement dispatch
// ---------------------------------------------------------------------------

// isBlockOp reports whether a statement belongs in an operation block.
func (e *Engine) isBlockOp(st sqlast.Statement) bool {
	switch st.(type) {
	case *sqlast.Insert, *sqlast.Delete, *sqlast.Update:
		return true
	case *sqlast.ProcessRules:
		return true
	case *sqlast.Select:
		// With Section 5.1 enabled, select operations join operation
		// blocks; otherwise they are evaluated standalone.
		return e.cfg.EnableSelectTriggers
	default:
		return false
	}
}

// Exec parses and executes a script. Consecutive data manipulation
// statements form a single operation block — one externally-generated
// transition, hence one transaction (Section 4): rules are considered and
// executed just before that transaction commits. Definition statements
// (CREATE TABLE, CREATE RULE, priorities, ...) execute immediately between
// transactions. Without the Section 5.1 option, a SELECT also ends the
// current block (it is evaluated standalone, between transactions); with
// EnableSelectTriggers, SELECTs join blocks and contribute S components.
func (e *Engine) Exec(src string) (*TxnResult, error) {
	stmts, err := sqlparse.ParseStatements(src)
	if err != nil {
		return nil, err
	}
	return e.ExecStatements(stmts)
}

// ExecStatements executes parsed statements (see Exec). The returned
// TxnResult is the merge of all transactions run by the script.
func (e *Engine) ExecStatements(stmts []sqlast.Statement) (*TxnResult, error) {
	total := &TxnResult{}
	var block []sqlast.Statement
	flush := func() error {
		if len(block) == 0 {
			return nil
		}
		res, err := e.RunTransaction(block)
		block = nil
		if res != nil {
			total.Firings = append(total.Firings, res.Firings...)
			total.Queries = append(total.Queries, res.Queries...)
			if res.RolledBack {
				total.RolledBack = true
				total.RollbackRule = res.RollbackRule
			}
			if res.LastLSN > total.LastLSN {
				total.LastLSN = res.LastLSN
			}
		}
		return err
	}
	for _, st := range stmts {
		if e.isBlockOp(st) {
			block = append(block, st)
			continue
		}
		if err := flush(); err != nil {
			return total, err
		}
		switch s := st.(type) {
		case *sqlast.Select:
			res, err := e.Query(s)
			if err != nil {
				return total, err
			}
			total.Queries = append(total.Queries, res)
		case *sqlast.Explain:
			res, err := e.Explain(s)
			if err != nil {
				return total, err
			}
			total.Queries = append(total.Queries, res)
		default:
			if err := e.execDefinition(st); err != nil {
				return total, err
			}
		}
	}
	if err := flush(); err != nil {
		return total, err
	}
	return total, nil
}

// ExecBatch executes a batch of statement sources as ONE operation block
// — one externally-generated transition, one transaction, one commit
// record — regardless of how the statements are split across the batch
// entries. This is the set-oriented submission path: Section 5.3's
// PROCESS RULES semantics already decouple rule processing from statement
// boundaries, so the rules see the batch's composed net effect exactly as
// if the statements had arrived as one consecutive block. SELECTs are
// evaluated inside the block (they observe the batch's preceding writes,
// and with EnableSelectTriggers contribute S components); PROCESS RULES
// statements are triggering points as usual. Definition statements
// execute between transactions and are therefore rejected here — submit
// them through Exec.
func (e *Engine) ExecBatch(srcs []string) (*TxnResult, error) {
	var ops []sqlast.Statement
	for i, src := range srcs {
		stmts, err := sqlparse.ParseStatements(src)
		if err != nil {
			return nil, fmt.Errorf("batch statement %d: %w", i+1, err)
		}
		for _, st := range stmts {
			switch st.(type) {
			case *sqlast.Insert, *sqlast.Delete, *sqlast.Update, *sqlast.Select, *sqlast.ProcessRules:
				ops = append(ops, st)
			default:
				return nil, fmt.Errorf("engine: batch statement %d: %T is a definition; definitions execute between transactions and cannot join a batch block", i+1, st)
			}
		}
	}
	if len(ops) == 0 {
		return &TxnResult{}, nil
	}
	return e.RunTransaction(ops)
}

// Query evaluates a SELECT against the currently published committed
// snapshot, outside any rule context. The whole path is lock-free: one
// atomic pointer load fetches the snapshot, evaluation runs a fresh Env
// over its frozen structures, and the only shared words touched are the
// atomic access-path counters — so any number of Query calls run
// concurrently with each other and with the write path, each seeing a
// consistent committed state (sopr.SynchronizedDB relies on exactly this
// property).
func (e *Engine) Query(sel *sqlast.Select) (*exec.Result, error) {
	env := &exec.Env{Store: e.snap.Load().store, NoIndex: e.cfg.NoIndex,
		NoHashJoin: e.cfg.NoHashJoin, NoPlanner: e.cfg.NoPlanner, Counters: &e.planCounters}
	return env.Query(sel)
}

// Explain renders the plan the executor would choose for the wrapped
// statement, against the published committed snapshot, without executing
// it.
func (e *Engine) Explain(ex *sqlast.Explain) (*exec.Result, error) {
	env := &exec.Env{Store: e.snap.Load().store, NoIndex: e.cfg.NoIndex,
		NoHashJoin: e.cfg.NoHashJoin, NoPlanner: e.cfg.NoPlanner}
	return env.Explain(ex.Stmt)
}

// newEnv returns a fresh evaluation environment carrying the engine's
// ablation flags (and, inside rule processing, the rule's transition
// tables). Every evaluation the engine performs goes through here so that
// Config.NoIndex/NoHashJoin ablations cover conditions and actions, not
// just top-level queries.
func (e *Engine) newEnv(trans *rules.TransSource) *exec.Env {
	env := &exec.Env{Store: e.store, NoIndex: e.cfg.NoIndex,
		NoHashJoin: e.cfg.NoHashJoin, NoPlanner: e.cfg.NoPlanner, Counters: &e.planCounters}
	if trans != nil {
		env.Trans = trans
	}
	return env
}

// QueryString parses and evaluates a single SELECT (or EXPLAIN, whose
// plan rendering is served through the same read-only path).
func (e *Engine) QueryString(src string) (*exec.Result, error) {
	st, err := sqlparse.ParseStatement(src)
	if err != nil {
		return nil, err
	}
	switch s := st.(type) {
	case *sqlast.Select:
		return e.Query(s)
	case *sqlast.Explain:
		return e.Explain(s)
	default:
		return nil, fmt.Errorf("engine: QueryString requires a SELECT or EXPLAIN, got %T", st)
	}
}

// execDefinition handles DDL and rule-management statements, logging each
// successful one to the write-ahead log when attached. (Recovery replays
// definitions through this path too — before AttachWAL, so nothing is
// re-logged.)
func (e *Engine) execDefinition(st sqlast.Statement) error {
	if err := e.applyDefinition(st); err != nil {
		return err
	}
	if e.wal != nil {
		if err := e.logDefinition(st); err != nil {
			return err
		}
	}
	// Definitions change what readers see (schema, indexes, rule text, the
	// durable LSN), so each one republishes the engine snapshot.
	e.publish()
	return nil
}

func (e *Engine) applyDefinition(st sqlast.Statement) error {
	switch s := st.(type) {
	case *sqlast.CreateTable:
		tab, err := exec.CreateTableSchema(s)
		if err != nil {
			return err
		}
		return e.store.CreateTable(tab)
	case *sqlast.DropTable:
		return e.store.DropTable(s.Name)
	case *sqlast.CreateIndex:
		return e.store.CreateIndex(s.Name, s.Table, s.Column)
	case *sqlast.DropIndex:
		return e.store.DropIndex(s.Name)
	case *sqlast.CreateRule:
		return e.DefineRule(s)
	case *sqlast.CreateRulePriority:
		return e.AddPriority(s.Before, s.After)
	case *sqlast.DropRule:
		return e.DropRule(s.Name)
	case *sqlast.SetRuleActive:
		r, ok := e.ruleSet[s.Name]
		if !ok {
			return fmt.Errorf("engine: rule %q does not exist", s.Name)
		}
		r.Active = s.Active
		return nil
	default:
		return fmt.Errorf("engine: unsupported statement %T", st)
	}
}

// DefineRule validates and installs a production rule.
func (e *Engine) DefineRule(cr *sqlast.CreateRule) error {
	if _, dup := e.ruleSet[cr.Name]; dup {
		return fmt.Errorf("engine: rule %q already exists", cr.Name)
	}
	if err := rules.ValidateRule(cr, e.store.Catalog()); err != nil {
		return err
	}
	if cr.Action.Call != "" {
		if _, ok := e.procs[cr.Action.Call]; !ok {
			return fmt.Errorf("engine: rule %q calls unregistered procedure %q", cr.Name, cr.Action.Call)
		}
	}
	for _, p := range cr.Preds {
		if p.Op == sqlast.PredSelected && !e.cfg.EnableSelectTriggers {
			return fmt.Errorf("engine: rule %q uses SELECTED predicates but select triggering is not enabled", cr.Name)
		}
	}
	scope := e.cfg.DefaultScope
	switch cr.Scope {
	case sqlast.ScopeSinceConsidered:
		scope = rules.ScopeSinceConsidered
	case sqlast.ScopeSinceTriggered:
		scope = rules.ScopeSinceTriggered
	}
	e.seq++
	r := &rules.Rule{
		Name:           cr.Name,
		Preds:          cr.Preds,
		Condition:      cr.Condition,
		Action:         cr.Action,
		Active:         true,
		Scope:          scope,
		LastConsidered: e.seq,
	}
	if !e.cfg.FullTransInfo {
		r.PredTables = make(map[string]bool, len(cr.Preds))
		for _, p := range cr.Preds {
			r.PredTables[p.Table] = true
		}
	}
	e.ruleSet[cr.Name] = r
	e.defOrder = append(e.defOrder, cr.Name)
	return nil
}

// DropRule removes a rule and its priority edges.
func (e *Engine) DropRule(name string) error {
	if _, ok := e.ruleSet[name]; !ok {
		return fmt.Errorf("engine: rule %q does not exist", name)
	}
	delete(e.ruleSet, name)
	for i, n := range e.defOrder {
		if n == name {
			e.defOrder = append(e.defOrder[:i], e.defOrder[i+1:]...)
			break
		}
	}
	e.selector.DropRule(name)
	return nil
}

// AddPriority declares `create rule priority before BEFORE after`
// (Section 4.4).
func (e *Engine) AddPriority(before, after string) error {
	if _, ok := e.ruleSet[before]; !ok {
		return fmt.Errorf("engine: rule %q does not exist", before)
	}
	if _, ok := e.ruleSet[after]; !ok {
		return fmt.Errorf("engine: rule %q does not exist", after)
	}
	return e.selector.AddPriority(before, after)
}

// ---------------------------------------------------------------------------
// Transactions and the Figure 1 algorithm
// ---------------------------------------------------------------------------

// selCollector accumulates the S component (Section 5.1) during query
// evaluation.
type selCollector struct {
	eff *rules.Effect
}

func (c *selCollector) TupleSelected(table string, h storage.Handle) {
	c.eff.AddSelected(table, []storage.Handle{h})
}

// RunTransaction executes one externally-generated operation block (with
// optional PROCESS RULES triggering points) as a transaction: the block's
// transition is computed, each rule's transition information is
// initialized, and rules are repeatedly selected, considered, and executed
// until none are eligible (Figure 1). The transaction then commits — or
// rolls back on a rollback action, an error, or the runaway guard.
func (e *Engine) RunTransaction(ops []sqlast.Statement) (*TxnResult, error) {
	if err := e.store.Begin(); err != nil {
		return nil, err
	}
	res := &TxnResult{}
	if e.wal != nil {
		e.walEff = rules.NewEffect()
	}

	fail := func(err error) (*TxnResult, error) {
		e.store.Rollback()
		e.clearTransInfo()
		e.walEff = nil
		e.stats.RolledBack++
		// The data snapshot is unchanged (rollback restored the published
		// state), but the counters moved; republish so Stats readers see
		// the rollback.
		e.publish()
		return res, err
	}

	// Split the block at PROCESS RULES triggering points (Section 5.3).
	segments := splitAtTriggeringPoints(ops)
	first := true
	transitions := 0
	var deadline time.Time
	if e.cfg.RuleTimeout > 0 {
		deadline = time.Now().Add(e.cfg.RuleTimeout)
	}
	for _, seg := range segments {
		blockEff, err := e.execExternalSegment(seg, res)
		if err != nil {
			return fail(err)
		}
		e.stats.ExternalTransitions++
		e.trace(TraceEvent{Kind: TraceExternalTransition, Effect: blockEff.String()})
		if e.walEff != nil {
			e.walEff.Apply(blockEff)
		}
		if first {
			// init-trans-info for every rule, restricted to the tables the
			// rule can reference.
			for _, r := range e.ruleSet {
				r.TransInfo = blockEff.CloneFiltered(r.Keep)
			}
			first = false
		} else {
			// Later external segments compose like rule transitions.
			e.applyToAll(nil, blockEff)
		}
		done, err := e.processRules(res, &transitions, deadline)
		if err != nil {
			return fail(err)
		}
		if done { // rolled back by a rule
			e.clearTransInfo()
			e.walEff = nil
			e.stats.RolledBack++
			e.publish()
			return res, nil
		}
	}

	// Log before commit: the net effect is appended (and its LSN recorded
	// in the result) before the in-memory commit, so the log can run
	// behind the database only by unacknowledged work. A log failure
	// rolls the transaction back. Durability is deferred: the owner calls
	// WaitDurable(LastLSN) before acknowledging, outside its write lock,
	// which is where concurrent committers share one group-commit fsync.
	if e.wal != nil {
		lsn, err := e.logCommit(e.walEff)
		if err != nil {
			return fail(err)
		}
		res.LastLSN = lsn
	}
	if err := e.store.Commit(); err != nil {
		return fail(err)
	}
	e.clearTransInfo()
	e.walEff = nil
	e.stats.Committed++
	// store.Commit published the new storage snapshot; republish the
	// engine state so readers pick it up together with the new counters
	// and LSN.
	e.publish()
	e.trace(TraceEvent{Kind: TraceCommit})
	return res, nil
}

// clearTransInfo drops per-transaction rule state.
func (e *Engine) clearTransInfo() {
	for _, r := range e.ruleSet {
		r.TransInfo = nil
	}
}

func splitAtTriggeringPoints(ops []sqlast.Statement) [][]sqlast.Statement {
	var segs [][]sqlast.Statement
	var cur []sqlast.Statement
	for _, op := range ops {
		if _, ok := op.(*sqlast.ProcessRules); ok {
			segs = append(segs, cur)
			cur = nil
			continue
		}
		cur = append(cur, op)
	}
	segs = append(segs, cur)
	return segs
}

// execExternalSegment runs the operations of one external transition and
// returns its composed effect.
func (e *Engine) execExternalSegment(ops []sqlast.Statement, res *TxnResult) (*rules.Effect, error) {
	eff := rules.NewEffect()
	env := e.newEnv(nil)
	if e.cfg.EnableSelectTriggers {
		env.Observer = &selCollector{eff: eff}
	}
	for _, op := range ops {
		if sel, ok := op.(*sqlast.Select); ok {
			qres, err := env.Query(sel)
			if err != nil {
				return nil, err
			}
			res.Queries = append(res.Queries, qres)
			continue
		}
		opRes, err := env.ExecOp(op)
		if err != nil {
			return nil, err
		}
		eff.AddOp(opRes)
	}
	return eff, nil
}

// processRules is the rule-processing loop of Figure 1 (select-eligible-rule
// plus action execution), run at a triggering point or before commit. It
// returns done=true if a rollback action fired (the store has been rolled
// back and the result updated).
func (e *Engine) processRules(res *TxnResult, transitions *int, deadline time.Time) (done bool, err error) {
	// consideredFalse holds rules whose condition failed against their
	// current transition information; they are reconsidered only after a
	// new transition occurs (Section 4.2: a rule whose condition was found
	// false "may be reconsidered in S2 as long as it is still triggered by
	// the composite effect").
	consideredFalse := make(map[string]bool)
	for {
		r, err := e.selectTriggeredRule(consideredFalse)
		if err != nil {
			return false, err
		}
		if r == nil {
			return false, nil
		}
		e.seq++
		r.LastConsidered = e.seq

		// Evaluate the condition with the rule's transition tables.
		env := e.newEnv(&rules.TransSource{Store: e.store, Effect: r.TransInfo})
		condHeld, err := env.EvalPredicate(r.Condition)
		if err != nil {
			return false, fmt.Errorf("engine: rule %q condition: %w", r.Name, err)
		}
		e.stats.RuleConsiderations++
		e.trace(TraceEvent{Kind: TraceRuleConsidered, Rule: r.Name, CondHeld: condHeld, Effect: r.TransInfo.String()})

		if r.Scope == rules.ScopeSinceConsidered && !condHeld {
			// Footnote 8 alternative: the evaluation window restarts at
			// every consideration.
			r.TransInfo = rules.NewEffect()
		}
		if !condHeld {
			consideredFalse[r.Name] = true
			continue
		}

		if r.Action.Rollback {
			e.trace(TraceEvent{Kind: TraceRollback, Rule: r.Name})
			if err := e.store.Rollback(); err != nil {
				return false, err
			}
			res.RolledBack = true
			res.RollbackRule = r.Name
			return true, nil
		}

		*transitions++
		if !deadline.IsZero() && time.Now().After(deadline) {
			return false, fmt.Errorf("%w (rule %q, limit %v)", ErrTimeout, r.Name, e.cfg.RuleTimeout)
		}
		if *transitions > e.cfg.MaxRuleTransitions {
			return false, fmt.Errorf("%w (rule %q, limit %d)", ErrRunaway, r.Name, e.cfg.MaxRuleTransitions)
		}

		actEff, delivered, err := e.execRuleAction(r)
		if err != nil {
			return false, fmt.Errorf("engine: rule %q action: %w", r.Name, err)
		}
		res.Queries = append(res.Queries, delivered...)
		e.stats.RuleFirings++
		res.Firings = append(res.Firings, Firing{Rule: r.Name, Effect: actEff.String()})
		e.trace(TraceEvent{Kind: TraceRuleFired, Rule: r.Name, Effect: actEff.String(), Transient: *transitions})

		// Figure 1: the executing rule gets fresh transition information
		// (init-trans-info); every other rule composes (modify-trans-info).
		r.TransInfo = actEff.CloneFiltered(r.Keep)
		e.applyToAll(r, actEff)
		if e.walEff != nil {
			e.walEff.Apply(actEff)
		}

		// A new transition occurred: previously false conditions may now
		// hold (or rules may be newly triggered) — reconsider everything.
		consideredFalse = make(map[string]bool)
	}
}

// selectTriggeredRule returns a triggered, active, not-yet-rejected rule
// chosen by the selector, or nil.
func (e *Engine) selectTriggeredRule(consideredFalse map[string]bool) (*rules.Rule, error) {
	var triggered []*rules.Rule
	for _, name := range e.defOrder {
		r := e.ruleSet[name]
		if !r.Active || consideredFalse[name] {
			continue
		}
		ok, err := r.Triggered(e.store.Catalog())
		if err != nil {
			return nil, err
		}
		if ok {
			triggered = append(triggered, r)
		}
	}
	return e.selector.Select(triggered), nil
}

// execRuleAction runs a rule's action (operation block or external
// procedure) and returns the effect of the created transition plus any
// result sets its SELECT operations retrieved (the Section 5.1 "data
// retrieval in rules' actions" extension: results are delivered to the
// client with the transaction result).
func (e *Engine) execRuleAction(r *rules.Rule) (*rules.Effect, []*exec.Result, error) {
	eff := rules.NewEffect()
	env := e.newEnv(&rules.TransSource{Store: e.store, Effect: r.TransInfo})
	if e.cfg.EnableSelectTriggers {
		env.Observer = &selCollector{eff: eff}
	}
	if r.Action.Call != "" {
		proc, ok := e.procs[r.Action.Call]
		if !ok {
			return nil, nil, fmt.Errorf("procedure %q is not registered", r.Action.Call)
		}
		ctx := &ProcContext{RuleName: r.Name, env: env, eff: eff}
		if err := proc(ctx); err != nil {
			return nil, nil, err
		}
		return eff, nil, nil
	}
	var delivered []*exec.Result
	for _, op := range r.Action.Block {
		if sel, ok := op.(*sqlast.Select); ok {
			qres, err := env.Query(sel)
			if err != nil {
				return nil, nil, err
			}
			delivered = append(delivered, qres)
			continue
		}
		opRes, err := env.ExecOp(op)
		if err != nil {
			return nil, nil, err
		}
		eff.AddOp(opRes)
	}
	return eff, delivered, nil
}

// applyToAll folds a new transition's effect into every rule's transition
// information except the rule that generated it (exclude may be nil). The
// footnote 8 since-triggered scope restarts a rule's window at any
// transition that by itself satisfies the rule's predicate.
func (e *Engine) applyToAll(exclude *rules.Rule, eff *rules.Effect) {
	for _, r := range e.ruleSet {
		if r == exclude {
			continue
		}
		if r.TransInfo == nil {
			r.TransInfo = eff.CloneFiltered(r.Keep)
			continue
		}
		if r.Scope == rules.ScopeSinceTriggered {
			if ok, _ := rules.EffectSatisfies(eff, r.Preds, e.store.Catalog()); ok {
				r.TransInfo = eff.CloneFiltered(r.Keep)
				continue
			}
		}
		r.TransInfo.ApplyFiltered(eff, r.Keep)
	}
}
