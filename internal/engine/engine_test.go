package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"sopr/internal/rules"
)

// newEmpEngine builds an engine with the paper's emp/dept schema.
func newEmpEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	mustExec(t, e, `
		create table emp (name varchar, emp_no int not null, salary float, dept_no int);
		create table dept (dept_no int, mgr_no int);
	`)
	return e
}

func mustExec(t *testing.T, e *Engine, src string) *TxnResult {
	t.Helper()
	res, err := e.Exec(src)
	if err != nil {
		t.Fatalf("Exec(%q): %v", src, err)
	}
	return res
}

func count(t *testing.T, e *Engine, table string) int {
	t.Helper()
	n, err := e.Store().Count(table)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func names(t *testing.T, e *Engine, src string) []string {
	t.Helper()
	res, err := e.QueryString(src)
	if err != nil {
		t.Fatalf("query %q: %v", src, err)
	}
	var out []string
	for _, row := range res.Rows {
		out = append(out, row[0].Str())
	}
	return out
}

func TestDDLAndDML(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `insert into emp values ('a', 1, 10, 1), ('b', 2, 20, 1)`)
	if count(t, e, "emp") != 2 {
		t.Fatal("insert failed")
	}
	res := mustExec(t, e, `select name from emp order by name`)
	if len(res.Queries) != 1 || len(res.Queries[0].Rows) != 2 {
		t.Fatalf("query via Exec: %+v", res.Queries)
	}
	mustExec(t, e, `update emp set salary = 99 where name = 'a'; delete from emp where name = 'b'`)
	if count(t, e, "emp") != 1 {
		t.Fatal("update/delete block failed")
	}
	if _, err := e.Exec(`drop table emp`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(`select * from emp`); err == nil {
		t.Fatal("dropped table still queryable")
	}
}

func TestExecErrors(t *testing.T) {
	e := newEmpEngine(t, Config{})
	for _, src := range []string{
		`this is not sql`,
		`create table emp (x int)`, // duplicate
		`drop table nosuch`,
		`insert into nosuch values (1)`,
		`drop rule nosuch`,
		`activate rule nosuch`,
		`create rule priority a before b`, // rules don't exist
	} {
		if _, err := e.Exec(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
	if _, err := e.QueryString(`insert into emp values ('a',1,1,1)`); err == nil {
		t.Error("QueryString accepted non-SELECT")
	}
}

func TestBlockAtomicityOnError(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `insert into emp values ('keep', 1, 10, 1)`)
	// Second op fails (NOT NULL violation) → whole block rolls back.
	_, err := e.Exec(`insert into emp values ('gone', 2, 10, 1);
		insert into emp (name) values ('bad')`)
	if err == nil {
		t.Fatal("expected error")
	}
	if got := count(t, e, "emp"); got != 1 {
		t.Errorf("block not atomic: %d rows", got)
	}
}

func TestBasicRuleTriggering(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `create table audit (what varchar, who varchar)`)
	mustExec(t, e, `
		create rule log_hires
		when inserted into emp
		then insert into audit (select 'hire', name from inserted emp)
		end
	`)
	res := mustExec(t, e, `insert into emp values ('a', 1, 10, 1), ('b', 2, 20, 1)`)
	if len(res.Firings) != 1 || res.Firings[0].Rule != "log_hires" {
		t.Fatalf("firings: %+v", res.Firings)
	}
	if got := names(t, e, `select who from audit order by who`); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("audit rows: %v (set-oriented rule should see both inserts at once)", got)
	}
	// A block touching another table does not trigger the rule.
	res = mustExec(t, e, `insert into dept values (1, 1)`)
	if len(res.Firings) != 0 {
		t.Errorf("rule fired for unrelated table: %+v", res.Firings)
	}
	// An update to emp does not satisfy `inserted into emp`.
	res = mustExec(t, e, `update emp set salary = 1`)
	if len(res.Firings) != 0 {
		t.Errorf("rule fired for update: %+v", res.Firings)
	}
}

func TestConditionGatesAction(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `
		create rule cap
		when inserted into emp
		if (select count(*) from emp) > 2
		then delete from emp where emp_no in (select emp_no from inserted emp)
		end
	`)
	mustExec(t, e, `insert into emp values ('a', 1, 10, 1)`)
	mustExec(t, e, `insert into emp values ('b', 2, 10, 1)`)
	if count(t, e, "emp") != 2 {
		t.Fatal("condition should not have held yet")
	}
	// Third insert crosses the threshold: the rule deletes it again.
	mustExec(t, e, `insert into emp values ('c', 3, 10, 1)`)
	if got := count(t, e, "emp"); got != 2 {
		t.Errorf("emp count = %d, want 2", got)
	}
}

func TestNetEffectNoTrigger(t *testing.T) {
	// Insert-then-delete inside one block has empty net effect: no rules
	// trigger (paper §2.2).
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `
		create rule r when inserted into emp or deleted from emp
		then insert into dept values (999, 999)
		end
	`)
	res := mustExec(t, e, `insert into emp values ('x', 1, 1, 1); delete from emp where emp_no = 1`)
	if len(res.Firings) != 0 {
		t.Errorf("rule fired on empty net effect: %+v", res.Firings)
	}
	if count(t, e, "dept") != 0 {
		t.Error("action ran")
	}
}

func TestUpdatedColumnPredicate(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `
		create rule watch_salary when updated emp.salary
		then insert into dept values (1, 1)
		end
	`)
	mustExec(t, e, `insert into emp values ('a', 1, 10, 1)`)
	res := mustExec(t, e, `update emp set dept_no = 2`)
	if len(res.Firings) != 0 {
		t.Error("column predicate fired for different column")
	}
	res = mustExec(t, e, `update emp set salary = 11`)
	if len(res.Firings) != 1 {
		t.Error("column predicate did not fire")
	}
	// No-op update (same value) still triggers (paper §2.1).
	res = mustExec(t, e, `update emp set salary = salary`)
	if len(res.Firings) != 1 {
		t.Error("no-op update should still trigger")
	}
}

func TestTransitionTablesSeeOldAndNew(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `create table log (name varchar, old_sal float, new_sal float)`)
	mustExec(t, e, `
		create rule log_raises when updated emp.salary
		then insert into log (select n.name, o.salary, n.salary
			from old updated emp.salary o, new updated emp.salary n
			where o.emp_no = n.emp_no)
		end
	`)
	mustExec(t, e, `insert into emp values ('a', 1, 100, 1), ('b', 2, 200, 1)`)
	mustExec(t, e, `update emp set salary = salary * 2 where name = 'a'`)
	res, _ := e.QueryString(`select old_sal, new_sal from log`)
	if len(res.Rows) != 1 || res.Rows[0][0].Float() != 100 || res.Rows[0][1].Float() != 200 {
		t.Errorf("old/new updated: %v", res.Rows)
	}
}

func TestRollbackAction(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `insert into emp values ('a', 1, 100, 1)`)
	mustExec(t, e, `
		create rule no_pay_cuts when updated emp.salary
		if exists (select * from new updated emp.salary n, old updated emp.salary o
		           where n.emp_no = o.emp_no and n.salary < o.salary)
		then rollback
	`)
	// A raise is fine.
	res := mustExec(t, e, `update emp set salary = 150`)
	if res.RolledBack {
		t.Fatal("raise rolled back")
	}
	// A cut rolls the whole transaction back.
	res = mustExec(t, e, `update emp set salary = 50; insert into dept values (1,1)`)
	if !res.RolledBack || res.RollbackRule != "no_pay_cuts" {
		t.Fatalf("rollback result: %+v", res)
	}
	q, _ := e.QueryString(`select salary from emp`)
	if q.Rows[0][0].Float() != 150 {
		t.Errorf("salary after rollback = %v, want 150", q.Rows[0][0])
	}
	if count(t, e, "dept") != 0 {
		t.Error("sibling op survived rollback")
	}
}

func TestSelfTriggeringFixpoint(t *testing.T) {
	// A self-triggering rule runs to fixpoint (Section 4.1): repeatedly
	// halve salaries above a threshold.
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `
		create rule halve when updated emp.salary
		if exists (select * from emp where salary > 100)
		then update emp set salary = salary / 2 where salary > 100
		end
	`)
	mustExec(t, e, `insert into emp values ('a', 1, 1000, 1)`)
	res := mustExec(t, e, `update emp set salary = 800 where emp_no = 1`)
	// 800 → 400 → 200 → 100: three firings.
	if len(res.Firings) != 3 {
		t.Fatalf("firings = %d, want 3 (%v)", len(res.Firings), res.Firings)
	}
	q, _ := e.QueryString(`select salary from emp`)
	if q.Rows[0][0].Float() != 100 {
		t.Errorf("final salary %v", q.Rows[0][0])
	}
}

func TestRunawayGuard(t *testing.T) {
	e := newEmpEngine(t, Config{MaxRuleTransitions: 25})
	mustExec(t, e, `
		create rule diverge when updated emp.salary
		then update emp set salary = salary + 1
		end
	`)
	mustExec(t, e, `insert into emp values ('a', 1, 0, 1)`)
	_, err := e.Exec(`update emp set salary = 1`)
	if err == nil || !errors.Is(err, ErrRunaway) {
		t.Fatalf("expected ErrRunaway, got %v", err)
	}
	// The transaction rolled back entirely.
	q, _ := e.QueryString(`select salary from emp`)
	if q.Rows[0][0].Float() != 0 {
		t.Errorf("salary after runaway rollback = %v, want 0", q.Rows[0][0])
	}
}

func TestRuleConsideredOncePerTransition(t *testing.T) {
	// Two rules triggered, first (by priority) has a false condition: it
	// must be skipped and the other considered — no infinite loop.
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `
		create rule never when inserted into emp
		if 1 = 2
		then delete from emp
		end;
		create rule log when inserted into emp
		then insert into dept values (1, 1)
		end;
		create rule priority never before log
	`)
	res := mustExec(t, e, `insert into emp values ('a', 1, 1, 1)`)
	if len(res.Firings) != 1 || res.Firings[0].Rule != "log" {
		t.Fatalf("firings: %+v", res.Firings)
	}
	// `never` was reconsidered after log's transition (still false): fine.
	if count(t, e, "dept") != 1 {
		t.Error("log action missing")
	}
}

func TestPriorityOrdersFirings(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `create table trace (step varchar)`)
	mustExec(t, e, `
		create rule second when inserted into emp
		then insert into trace values ('second')
		end;
		create rule first when inserted into emp
		then insert into trace values ('first')
		end;
		create rule priority first before second
	`)
	res := mustExec(t, e, `insert into emp values ('a', 1, 1, 1)`)
	if len(res.Firings) != 2 || res.Firings[0].Rule != "first" || res.Firings[1].Rule != "second" {
		t.Fatalf("firing order: %+v", res.Firings)
	}
}

func TestDeactivateRule(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `
		create rule r when inserted into emp then insert into dept values (1,1) end
	`)
	mustExec(t, e, `deactivate rule r`)
	res := mustExec(t, e, `insert into emp values ('a', 1, 1, 1)`)
	if len(res.Firings) != 0 {
		t.Error("deactivated rule fired")
	}
	mustExec(t, e, `activate rule r`)
	res = mustExec(t, e, `insert into emp values ('b', 2, 1, 1)`)
	if len(res.Firings) != 1 {
		t.Error("reactivated rule did not fire")
	}
}

func TestDropRule(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `create rule r when inserted into emp then insert into dept values (1,1) end`)
	if got := e.Rules(); len(got) != 1 || got[0] != "r" {
		t.Fatalf("Rules() = %v", got)
	}
	mustExec(t, e, `drop rule r`)
	if len(e.Rules()) != 0 {
		t.Error("rule not dropped")
	}
	res := mustExec(t, e, `insert into emp values ('a', 1, 1, 1)`)
	if len(res.Firings) != 0 {
		t.Error("dropped rule fired")
	}
}

func TestDuplicateRuleRejected(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `create rule r when inserted into emp then delete from emp end`)
	if _, err := e.Exec(`create rule r when deleted from emp then delete from dept end`); err == nil {
		t.Error("duplicate rule name accepted")
	}
}

func TestRuleValidationAtDefinition(t *testing.T) {
	e := newEmpEngine(t, Config{})
	// Transition table without corresponding predicate (Section 3
	// restriction).
	_, err := e.Exec(`
		create rule bad when inserted into emp
		then delete from emp where emp_no in (select emp_no from deleted emp)
		end
	`)
	if err == nil || !strings.Contains(err.Error(), "no corresponding") {
		t.Errorf("invalid transition-table reference accepted: %v", err)
	}
	// SELECTED predicate requires the extension to be enabled.
	_, err = e.Exec(`create rule s when selected emp then delete from emp end`)
	if err == nil || !strings.Contains(err.Error(), "select triggering") {
		t.Errorf("selected predicate accepted without extension: %v", err)
	}
}

func TestProcessRulesTriggeringPoint(t *testing.T) {
	// Section 5.3: PROCESS RULES completes the current transition,
	// processes rules, then a new transition begins in the same
	// transaction.
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `create table trace (n int)`)
	mustExec(t, e, `
		create rule snapshot when inserted into emp
		then insert into trace (select count(*) from inserted emp)
		end
	`)
	mustExec(t, e, `
		insert into emp values ('a', 1, 1, 1);
		insert into emp values ('b', 2, 1, 1);
		process rules;
		insert into emp values ('c', 3, 1, 1)
	`)
	res, _ := e.QueryString(`select n from trace order by n`)
	// First processing sees two inserts; second sees only the third
	// (snapshot's trans-info was reset by its own firing, and the new
	// external segment composes from there).
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 1 || res.Rows[1][0].Int() != 2 {
		t.Errorf("trace: %v", res.Rows)
	}
}

func TestExternalProcedureAction(t *testing.T) {
	e := newEmpEngine(t, Config{})
	var calls int
	e.RegisterProcedure("audit", func(ctx *ProcContext) error {
		calls++
		res, err := ctx.Query(`select count(*) from inserted emp`)
		if err != nil {
			return err
		}
		n := res.Rows[0][0].Int()
		return ctx.Exec(fmt.Sprintf(`insert into dept values (%d, %d)`, n, n))
	})
	mustExec(t, e, `create rule r when inserted into emp then call audit end`)
	mustExec(t, e, `insert into emp values ('a', 1, 1, 1), ('b', 2, 1, 1)`)
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
	res, _ := e.QueryString(`select dept_no from dept`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 2 {
		t.Errorf("proc saw %v, want inserted-count 2", res.Rows)
	}
	// Unregistered procedure rejected at definition time.
	if _, err := e.Exec(`create rule bad when inserted into emp then call nosuch end`); err == nil {
		t.Error("unregistered procedure accepted")
	}
}

func TestProcedureDMLTriggersOtherRules(t *testing.T) {
	// Section 5.2: "the effect on the database of executing an external
	// procedure still corresponds to a sequence of data manipulation
	// operations" — so it cascades like any transition.
	e := newEmpEngine(t, Config{})
	e.RegisterProcedure("adddept", func(ctx *ProcContext) error {
		return ctx.Exec(`insert into dept values (7, 7)`)
	})
	mustExec(t, e, `create table trace (x int)`)
	mustExec(t, e, `
		create rule r1 when inserted into emp then call adddept end;
		create rule r2 when inserted into dept then insert into trace values (1) end
	`)
	res := mustExec(t, e, `insert into emp values ('a', 1, 1, 1)`)
	if len(res.Firings) != 2 {
		t.Fatalf("firings: %+v", res.Firings)
	}
	if count(t, e, "trace") != 1 {
		t.Error("cascade through procedure failed")
	}
}

func TestSelectTriggers(t *testing.T) {
	e := newEmpEngine(t, Config{EnableSelectTriggers: true})
	mustExec(t, e, `create table audit (n int)`)
	mustExec(t, e, `
		create rule watch when selected emp
		then insert into audit (select count(*) from selected emp)
		end
	`)
	mustExec(t, e, `insert into emp values ('a', 1, 10, 1), ('b', 2, 20, 1), ('c', 3, 30, 2)`)
	if count(t, e, "audit") != 0 {
		t.Fatal("insert alone should not satisfy SELECTED")
	}
	// A top-level select inside a transaction triggers the rule; only rows
	// surviving WHERE count as selected.
	res := mustExec(t, e, `select name from emp where dept_no = 1`)
	if len(res.Queries) != 1 || len(res.Queries[0].Rows) != 2 {
		t.Fatalf("query results: %+v", res.Queries)
	}
	q, _ := e.QueryString(`select n from audit`)
	if len(q.Rows) != 1 || q.Rows[0][0].Int() != 2 {
		t.Errorf("audit: %v, want one row counting 2 selected tuples", q.Rows)
	}
}

func TestTraceEvents(t *testing.T) {
	e := newEmpEngine(t, Config{})
	var kinds []TraceKind
	e.SetTrace(func(ev TraceEvent) { kinds = append(kinds, ev.Kind) })
	mustExec(t, e, `create rule r when inserted into emp then delete from dept end`)
	mustExec(t, e, `insert into emp values ('a', 1, 1, 1)`)
	// After firing, r's trans-info is its own (empty-delete) effect → not
	// triggered again; no further consideration events occur.
	want := []TraceKind{TraceExternalTransition, TraceRuleConsidered, TraceRuleFired, TraceCommit}
	if len(kinds) != len(want) {
		t.Fatalf("trace kinds: %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("trace[%d] = %v, want %v (all: %v)", i, kinds[i], want[i], kinds)
		}
	}
}

func TestScopeSinceConsidered(t *testing.T) {
	// Footnote 8: under since-considered scope, a rule whose condition was
	// evaluated loses its pending transition window.
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `create table trace (x int)`)
	mustExec(t, e, `
		create rule helper when inserted into dept
		then insert into trace values (0)
		end;
		create rule watcher when inserted into emp
		if (select count(*) from trace) > 0
		then insert into trace values (99)
		end;
		create rule priority watcher before helper
	`)
	if err := e.SetRuleScope("watcher", rules.ScopeSinceConsidered); err != nil {
		t.Fatal(err)
	}
	// Insert into emp (watcher considered, condition false → window reset)
	// and dept (helper fires). watcher is NOT reconsidered after helper's
	// transition because its window was reset and helper's transition does
	// not insert into emp.
	res := mustExec(t, e, `insert into emp values ('a',1,1,1); insert into dept values (1,1)`)
	for _, f := range res.Firings {
		if f.Rule == "watcher" {
			t.Errorf("watcher fired despite since-considered reset: %+v", res.Firings)
		}
	}
	// Under the default scope it does fire: the helper transition arrives
	// while emp's insert is still in the watcher's window.
	e2 := newEmpEngine(t, Config{})
	mustExec(t, e2, `create table trace (x int)`)
	mustExec(t, e2, `
		create rule helper when inserted into dept
		then insert into trace values (0)
		end;
		create rule watcher when inserted into emp
		if (select count(*) from trace) > 0
		then insert into trace values (99)
		end;
		create rule priority watcher before helper
	`)
	res = mustExec(t, e2, `insert into emp values ('a',1,1,1); insert into dept values (1,1)`)
	fired := false
	for _, f := range res.Firings {
		if f.Rule == "watcher" {
			fired = true
		}
	}
	if !fired {
		t.Errorf("watcher did not fire under default scope: %+v", res.Firings)
	}
}

func TestScopeSinceTriggered(t *testing.T) {
	// Under since-triggered scope, each transition satisfying the
	// predicate restarts the window, so the rule sees only the latest
	// matching transition, not the composite.
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `create table trace (n int)`)
	mustExec(t, e, `
		create rule grow when inserted into dept
		if (select count(*) from dept) < 3
		then insert into dept (select dept_no + 1, 0 from inserted dept)
		end;
		create rule watch when inserted into dept
		then insert into trace (select count(*) from inserted dept)
		end;
		create rule priority grow before watch
	`)
	if err := e.SetRuleScope("watch", rules.ScopeSinceTriggered); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, `insert into dept values (1, 0)`)
	res, _ := e.QueryString(`select n from trace order by n`)
	// grow fires twice (until 3 rows); watch then sees only the last
	// grow transition: 1 inserted tuple — not the composite 3.
	if len(res.Rows) == 0 {
		t.Fatal("watch never fired")
	}
	last := res.Rows[len(res.Rows)-1][0].Int()
	if last != 1 {
		t.Errorf("since-triggered window saw %d inserts, want 1", last)
	}
}

func TestStoreBeginGuard(t *testing.T) {
	e := newEmpEngine(t, Config{})
	e.Store().Begin()
	if _, err := e.Exec(`insert into emp values ('a',1,1,1)`); err == nil {
		t.Error("transaction inside open store txn accepted")
	}
	e.Store().Rollback()
}
