package engine

// This file reproduces the worked examples of the paper (Sections 3.1 and
// 4.5) as executable integration tests. Test names reference the paper's
// example numbers; EXPERIMENTS.md records the expected-vs-observed
// outcomes.

import (
	"testing"
)

// paperSchema loads the two-table schema used throughout the paper:
//
//	emp(name, emp_no, salary, dept_no)
//	dept(dept_no, mgr_no)
func paperEngine(t *testing.T) *Engine {
	t.Helper()
	return newEmpEngine(t, Config{})
}

// TestExample31 — "cascaded delete" referential integrity: whenever
// departments are deleted, delete all employees in the deleted departments.
func TestExample31(t *testing.T) {
	e := paperEngine(t)
	mustExec(t, e, `
		create rule cascade when deleted from dept
		then delete from emp
		     where dept_no in (select dept_no from deleted dept)
		end
	`)
	mustExec(t, e, `
		insert into emp values ('a', 1, 10, 1), ('b', 2, 10, 1), ('c', 3, 10, 2), ('d', 4, 10, 3);
		insert into dept values (1, 1), (2, 3), (3, 4)
	`)
	// Deleting two departments in one block removes all their employees in
	// one set-oriented firing.
	res := mustExec(t, e, `delete from dept where dept_no in (1, 2)`)
	if len(res.Firings) != 1 || res.Firings[0].Rule != "cascade" {
		t.Fatalf("firings: %+v", res.Firings)
	}
	if got := names(t, e, `select name from emp order by name`); len(got) != 1 || got[0] != "d" {
		t.Errorf("remaining employees: %v, want [d]", got)
	}
	// Deleting no departments fires nothing.
	res = mustExec(t, e, `delete from dept where dept_no = 999`)
	if len(res.Firings) != 0 {
		t.Errorf("rule fired with empty effect: %+v", res.Firings)
	}
}

// TestExample32 — whenever salaries are updated, if the total of the
// updated salaries exceeds their total before the updates, cut department
// #2 by 5% and department #3 by 15%.
func TestExample32(t *testing.T) {
	e := paperEngine(t)
	mustExec(t, e, `
		create rule budget when updated emp.salary
		if (select sum(salary) from new updated emp.salary) >
		   (select sum(salary) from old updated emp.salary)
		then update emp set salary = 0.95 * salary where dept_no = 2;
		     update emp set salary = 0.85 * salary where dept_no = 3
		end
	`)
	mustExec(t, e, `insert into emp values
		('a', 1, 1000, 1), ('b', 2, 1000, 2), ('c', 3, 1000, 3)`)

	// A net raise triggers the cuts. The rule's own action updates
	// salaries, re-triggering it — but the second firing's old/new totals
	// are equal or lower (cuts), so the condition fails and processing
	// stops (self-triggering with a false condition, Section 4.1).
	res := mustExec(t, e, `update emp set salary = 1200 where emp_no = 1`)
	if len(res.Firings) != 1 {
		t.Fatalf("firings = %d, want 1: %+v", len(res.Firings), res.Firings)
	}
	q, _ := e.QueryString(`select salary from emp order by emp_no`)
	if q.Rows[0][0].Float() != 1200 || q.Rows[1][0].Float() != 950 || q.Rows[2][0].Float() != 850 {
		t.Errorf("salaries: %v", q.Rows)
	}

	// A net cut does not trigger the action.
	res = mustExec(t, e, `update emp set salary = 100 where emp_no = 1`)
	if len(res.Firings) != 0 {
		t.Errorf("net cut fired: %+v", res.Firings)
	}
}

// TestExample33 — composite transition predicate with a correlated
// condition: if any employee earns more than twice his department's
// average, delete the manager of department #5.
func TestExample33(t *testing.T) {
	e := paperEngine(t)
	mustExec(t, e, `
		create rule overpaid
		when inserted into emp
		  or deleted from emp
		  or updated emp.salary
		  or updated emp.dept_no
		if exists (select * from emp e1
		           where salary > 2 * (select avg(salary) from emp e2
		                               where e2.dept_no = e1.dept_no))
		then delete from emp
		     where emp_no = (select mgr_no from dept where dept_no = 5)
		end
	`)
	mustExec(t, e, `
		insert into dept values (5, 100);
		insert into emp values ('mgr5', 100, 50, 5),
			('a', 1, 100, 1), ('b', 2, 100, 1), ('c', 3, 100, 1)
	`)
	if count(t, e, "emp") != 4 {
		t.Fatalf("setup: %d employees", count(t, e, "emp"))
	}
	// Raise a's salary beyond twice the dept-1 average → manager of dept 5
	// is deleted. (Trigger is updated emp.salary.)
	mustExec(t, e, `update emp set salary = 500 where emp_no = 1`)
	if got := names(t, e, `select name from emp where emp_no = 100`); len(got) != 0 {
		t.Errorf("mgr5 survived: %v", got)
	}
	// Normalize salaries so no one is overpaid (this update triggers the
	// rule, but dept 5 has no manager row left, so the action deletes
	// nothing). Then the rule also triggers on inserts and dept_no
	// updates; with no overpaid employee the new manager survives.
	mustExec(t, e, `update emp set salary = 100 where emp_no = 1`)
	mustExec(t, e, `insert into emp values ('mgr5b', 100, 50, 5)`)
	mustExec(t, e, `update emp set dept_no = dept_no where emp_no = 2`)
	if got := names(t, e, `select name from emp where emp_no = 100`); len(got) != 1 {
		t.Errorf("mgr5b deleted without cause: %v", got)
	}
}

// example41Rule is the recursive manager-deletion rule of Example 4.1.
const example41Rule = `
	create rule mgr_cascade when deleted from emp
	then delete from emp
	     where dept_no in (select dept_no from dept
	                       where mgr_no in (select emp_no from deleted emp));
	     delete from dept
	     where mgr_no in (select emp_no from deleted emp)
	end
`

// loadManagementTree installs the Example 4.3 database: Jane manages Mary
// and Jim; Mary manages Bill; Jim manages Sam and Sue. Department d is
// managed by employee with the same number as its dept_no.
func loadManagementTree(t *testing.T, e *Engine) {
	t.Helper()
	mustExec(t, e, `
		insert into emp values
			('jane', 1, 60000, 0),
			('mary', 2, 70000, 1),
			('jim',  3, 55000, 1),
			('bill', 4, 25000, 2),
			('sam',  5, 40000, 3),
			('sue',  6, 45000, 3);
		insert into dept values (1, 1), (2, 2), (3, 3)
	`)
}

// TestExample41Fixpoint — deleting the root manager recursively deletes the
// whole subtree, via self-triggering to fixpoint.
func TestExample41Fixpoint(t *testing.T) {
	e := paperEngine(t)
	mustExec(t, e, example41Rule)
	loadManagementTree(t, e)

	res := mustExec(t, e, `delete from emp where name = 'jane'`)
	// Firing 1: deleted {jane} → delete mary, jim (dept 1), dept 1.
	// Firing 2: deleted {mary, jim} → delete bill (dept 2), sam, sue
	//           (dept 3), depts 2, 3.
	// Firing 3: deleted {bill, sam, sue} → nothing; fixpoint.
	if len(res.Firings) != 3 {
		t.Fatalf("firings = %d, want 3: %+v", len(res.Firings), res.Firings)
	}
	if count(t, e, "emp") != 0 || count(t, e, "dept") != 0 {
		t.Errorf("emp=%d dept=%d after cascade, want 0/0", count(t, e, "emp"), count(t, e, "dept"))
	}

	// Deleting a leaf manager takes only its own subtree.
	e2 := paperEngine(t)
	mustExec(t, e2, example41Rule)
	loadManagementTree(t, e2)
	mustExec(t, e2, `delete from emp where name = 'jim'`)
	got := names(t, e2, `select name from emp order by emp_no`)
	want := []string{"jane", "mary", "bill"}
	if len(got) != len(want) {
		t.Fatalf("survivors: %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("survivors: %v, want %v", got, want)
		}
	}
}

// example42Rule is the salary-update control rule of Example 4.2 (50K and
// 80K thresholds per the paper).
const example42Rule = `
	create rule salary_watch when updated emp.salary
	if (select avg(salary) from new updated emp.salary) > 50000
	then delete from emp
	     where emp_no in (select emp_no from new updated emp.salary)
	       and salary > 80000
	end
`

// TestExample42 — Bill 25K→30K and Mary 70K→85K in one block: the average
// of the updated salaries (57.5K) exceeds 50K, so Mary (now over 80K) is
// deleted.
func TestExample42(t *testing.T) {
	e := paperEngine(t)
	mustExec(t, e, example42Rule)
	mustExec(t, e, `insert into emp values ('bill', 4, 25000, 2), ('mary', 2, 70000, 1)`)
	res := mustExec(t, e, `
		update emp set salary = 30000 where name = 'bill';
		update emp set salary = 85000 where name = 'mary'
	`)
	if len(res.Firings) != 1 {
		t.Fatalf("firings: %+v", res.Firings)
	}
	got := names(t, e, `select name from emp`)
	if len(got) != 1 || got[0] != "bill" {
		t.Errorf("survivors: %v, want [bill]", got)
	}

	// If the average stays at or below 50K, nothing happens.
	e2 := paperEngine(t)
	mustExec(t, e2, example42Rule)
	mustExec(t, e2, `insert into emp values ('bill', 4, 25000, 2), ('mary', 2, 70000, 1)`)
	res = mustExec(t, e2, `update emp set salary = 26000 where name = 'bill'`)
	if len(res.Firings) != 0 {
		t.Errorf("fired below threshold: %+v", res.Firings)
	}
}

// TestExample43Trace — the paper's full two-rule interaction (experiment
// E1): external block deletes Jane and updates salaries (Bill → 30K, Mary
// → 85K); with R2 (salary_watch) prioritized over R1 (mgr_cascade), the
// paper's Section 4.5 narrates:
//
//  1. R2 fires on updated set {bill, mary}: deletes Mary.
//  2. R1 fires on composite deleted set {jane, mary}: deletes Jim and Bill
//     and departments 1, 2.
//  3. R1 fires on its own transition's deleted set {jim, bill}: deletes Sam
//     and Sue and department 3.
//  4. R1 fires on {sam, sue}: deletes nothing; processing stops.
func TestExample43Trace(t *testing.T) {
	e := paperEngine(t)
	mustExec(t, e, example41Rule)
	mustExec(t, e, example42Rule)
	mustExec(t, e, `create rule priority salary_watch before mgr_cascade`)
	loadManagementTree(t, e)

	res := mustExec(t, e, `
		delete from emp where name = 'jane';
		update emp set salary = 30000 where name = 'bill';
		update emp set salary = 85000 where name = 'mary'
	`)

	wantFirings := []Firing{
		{Rule: "salary_watch", Effect: "[I:0 D:1 U:0 S:0]"}, // Mary
		{Rule: "mgr_cascade", Effect: "[I:0 D:4 U:0 S:0]"},  // Jim, Bill + depts 1, 2
		{Rule: "mgr_cascade", Effect: "[I:0 D:3 U:0 S:0]"},  // Sam, Sue + dept 3
		{Rule: "mgr_cascade", Effect: "[I:0 D:0 U:0 S:0]"},  // fixpoint
	}
	if len(res.Firings) != len(wantFirings) {
		t.Fatalf("firings = %+v,\nwant %+v", res.Firings, wantFirings)
	}
	for i, w := range wantFirings {
		if res.Firings[i] != w {
			t.Errorf("firing %d = %+v, want %+v", i, res.Firings[i], w)
		}
	}
	if count(t, e, "emp") != 0 || count(t, e, "dept") != 0 {
		t.Errorf("final state emp=%d dept=%d, want empty", count(t, e, "emp"), count(t, e, "dept"))
	}
}

// TestExample43CompositeDeletedValues — the deleted transition table seen
// by R1's first firing must contain Mary's *pre-transaction* tuple
// (salary 70000), not the 85000 she was updated to before deletion
// (Figure 1 get-old-value through update-then-delete across transitions).
func TestExample43CompositeDeletedValues(t *testing.T) {
	e := paperEngine(t)
	mustExec(t, e, `create table seen (name varchar, salary float)`)
	mustExec(t, e, example42Rule)
	mustExec(t, e, `
		create rule record_deleted when deleted from emp
		then insert into seen (select name, salary from deleted emp)
		end
	`)
	mustExec(t, e, `create rule priority salary_watch before record_deleted`)
	loadManagementTree(t, e)
	mustExec(t, e, `
		delete from emp where name = 'jane';
		update emp set salary = 30000 where name = 'bill';
		update emp set salary = 85000 where name = 'mary'
	`)
	res, _ := e.QueryString(`select name, salary from seen order by name`)
	if len(res.Rows) != 2 {
		t.Fatalf("seen rows: %v", res.Rows)
	}
	if res.Rows[0][0].Str() != "jane" || res.Rows[0][1].Float() != 60000 {
		t.Errorf("jane row: %v", res.Rows[0])
	}
	if res.Rows[1][0].Str() != "mary" || res.Rows[1][1].Float() != 70000 {
		t.Errorf("mary row: %v (must show pre-transaction salary 70000)", res.Rows[1])
	}
}
