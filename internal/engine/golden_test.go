package engine

// Golden-file regression tests: every script in testdata/scripts is
// executed on a fresh engine and its observable output — rule firings,
// rollbacks, query result tables, and the final database dump — is compared
// against the committed .golden file. Regenerate with:
//
//	go test ./internal/engine -run TestGoldenScripts -update
//
// The scripts intentionally mix features (paper examples, constraints
// compiled by hand, scopes, priorities, triggering points) so that a
// semantics regression anywhere surfaces as a diff here.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sopr/internal/rules"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestGoldenScripts(t *testing.T) {
	scripts, err := filepath.Glob("testdata/scripts/*.sql")
	if err != nil {
		t.Fatal(err)
	}
	if len(scripts) == 0 {
		t.Fatal("no golden scripts found")
	}
	for _, script := range scripts {
		name := strings.TrimSuffix(filepath.Base(script), ".sql")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(script)
			if err != nil {
				t.Fatal(err)
			}
			got := runGolden(t, string(src))
			goldenPath := strings.TrimSuffix(script, ".sql") + ".golden"
			if *updateGolden {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// runGolden executes the script statement-group by statement-group (groups
// are separated by a line containing only "--") and renders all observable
// output. A first line of the form `-- config: select-triggers` enables
// engine options.
func runGolden(t *testing.T, src string) string {
	t.Helper()
	var cfg Config
	if strings.HasPrefix(src, "-- config:") {
		line, rest, _ := strings.Cut(src, "\n")
		src = rest
		if strings.Contains(line, "select-triggers") {
			cfg.EnableSelectTriggers = true
		}
		if strings.Contains(line, "most-recent") {
			cfg.Strategy = rules.StrategyMostRecent
		}
	}
	e := New(cfg)
	var out strings.Builder
	for i, group := range strings.Split(src, "\n--\n") {
		group = strings.TrimSpace(group)
		if group == "" {
			continue
		}
		fmt.Fprintf(&out, "== group %d ==\n", i+1)
		res, err := e.Exec(group)
		if err != nil {
			fmt.Fprintf(&out, "error: %v\n", err)
			continue
		}
		for _, f := range res.Firings {
			fmt.Fprintf(&out, "fired %s %s\n", f.Rule, f.Effect)
		}
		if res.RolledBack {
			fmt.Fprintf(&out, "rolled back by %s\n", res.RollbackRule)
		}
		for _, q := range res.Queries {
			out.WriteString(q.String())
			out.WriteString("\n")
		}
	}
	out.WriteString("== final dump ==\n")
	if err := e.Dump(&out); err != nil {
		fmt.Fprintf(&out, "dump error: %v\n", err)
	}
	return out.String()
}
