package engine

import (
	"strings"
	"testing"
)

// TestCreateIndexEndToEnd: CREATE INDEX flows through Exec, serves rule
// conditions and actions, survives a dump/load round-trip, and shows up in
// the stats counters.
func TestCreateIndexEndToEnd(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `insert into emp values ('a', 1, 10, 1), ('b', 2, 20, 1), ('c', 3, 30, 2)`)
	mustExec(t, e, `create index emp_no_ix on emp (emp_no)`)
	mustExec(t, e, `create rule cascade when deleted from emp
		then delete from dept where mgr_no in (select emp_no from deleted emp)
		end`)
	mustExec(t, e, `insert into dept values (1, 1), (2, 2), (3, 3)`)

	before := e.Stats()
	res := mustExec(t, e, `select name from emp where emp_no = 2`)
	if len(res.Queries) != 1 || len(res.Queries[0].Rows) != 1 || res.Queries[0].Rows[0][0].Str() != "b" {
		t.Fatalf("indexed select: %+v", res.Queries)
	}
	after := e.Stats()
	if after.IndexLookups <= before.IndexLookups {
		t.Errorf("IndexLookups did not advance: %d -> %d", before.IndexLookups, after.IndexLookups)
	}

	// The cascade rule fires through the indexed access path.
	mustExec(t, e, `delete from emp where emp_no = 1`)
	if count(t, e, "dept") != 2 {
		t.Fatalf("cascade with index: dept count = %d, want 2", count(t, e, "dept"))
	}

	// Dump emits CREATE INDEX after data and before rules; a reload
	// rebuilds an equivalent database.
	var out strings.Builder
	if err := e.Dump(&out); err != nil {
		t.Fatal(err)
	}
	script := out.String()
	ixAt := strings.Index(script, "CREATE INDEX emp_no_ix ON emp (emp_no);")
	ruleAt := strings.Index(script, "CREATE RULE")
	insAt := strings.Index(script, "INSERT INTO")
	if ixAt < 0 {
		t.Fatalf("dump lacks CREATE INDEX:\n%s", script)
	}
	if insAt < 0 || ruleAt < 0 || !(insAt < ixAt && ixAt < ruleAt) {
		t.Errorf("dump ordering wrong (insert=%d index=%d rule=%d):\n%s", insAt, ixAt, ruleAt, script)
	}
	e2 := New(Config{})
	if err := e2.Load(strings.NewReader(script)); err != nil {
		t.Fatalf("reload: %v", err)
	}
	r2 := mustExec(t, e2, `select name from emp where emp_no = 2`)
	if len(r2.Queries[0].Rows) != 1 || r2.Queries[0].Rows[0][0].Str() != "b" {
		t.Fatalf("reloaded indexed select: %+v", r2.Queries)
	}
	if s2 := e2.Stats(); s2.IndexLookups == 0 {
		t.Error("reloaded database did not use the index")
	}
	if err := e2.Store().CheckIndexes(); err != nil {
		t.Fatal(err)
	}

	// DROP INDEX works through Exec, and index DDL errors surface.
	mustExec(t, e, `drop index emp_no_ix`)
	for _, bad := range []string{
		`drop index emp_no_ix`,
		`create index ix on nosuch (a)`,
		`create index ix on emp (nosuch)`,
	} {
		if _, err := e.Exec(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
