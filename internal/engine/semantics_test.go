package engine

// Additional semantics tests: determinism, strategy behavior, triggering
// points interacting with rollback, scope syntax, and dump fidelity for
// engine-level features.

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"sopr/internal/rules"
	"sopr/internal/storage"
	"sopr/internal/value"
)

// TestDeterminism — the engine is fully deterministic: the same script run
// on two fresh engines yields byte-identical dumps, across strategies and
// random workloads.
func TestDeterminism(t *testing.T) {
	for _, strat := range []rules.Strategy{rules.StrategyLeastRecent, rules.StrategyMostRecent, rules.StrategyNameOrder} {
		rng := rand.New(rand.NewSource(77))
		script := randomWorkload(rng, 40)
		dump1 := runAndDump(t, strat, script)
		dump2 := runAndDump(t, strat, script)
		if dump1 != dump2 {
			t.Errorf("strategy %v: nondeterministic result", strat)
		}
	}
}

func runAndDump(t *testing.T, strat rules.Strategy, script []string) string {
	t.Helper()
	e := New(Config{Strategy: strat})
	mustExec(t, e, `
		create table t (id int, grp int, val int);
		create table log (id int, grp int)`)
	mustExec(t, e, `
		create rule audit when inserted into t
		then insert into log (select id, grp from inserted t)
		end;
		create rule purge when inserted into log
		if (select count(*) from log) > 30
		then delete from log where id < 10
		end;
		create rule bump when updated t.val
		then update t set grp = grp + 1 where val < 0
		end`)
	for _, stmt := range script {
		if _, err := e.Exec(stmt); err != nil {
			t.Fatalf("exec %q: %v", stmt, err)
		}
	}
	var b strings.Builder
	if err := e.Dump(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func randomWorkload(rng *rand.Rand, n int) []string {
	var out []string
	id := 0
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			k := 1 + rng.Intn(5)
			var b strings.Builder
			b.WriteString("insert into t values ")
			for j := 0; j < k; j++ {
				if j > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "(%d, %d, %d)", id, rng.Intn(4), rng.Intn(20)-10)
				id++
			}
			out = append(out, b.String())
		case 1:
			out = append(out, fmt.Sprintf("update t set val = val - %d where grp = %d", rng.Intn(5), rng.Intn(4)))
		default:
			out = append(out, fmt.Sprintf("delete from t where id %% 7 = %d", rng.Intn(7)))
		}
	}
	return out
}

// TestStrategyAffectsOrder — MRU runs cascades depth-first, LRU
// round-robins; with two chained rules this shows as different interleaving
// of a third rule.
func TestStrategyAffectsOrder(t *testing.T) {
	run := func(strat rules.Strategy) []string {
		e := New(Config{Strategy: strat})
		mustExec(t, e, `
			create table t (a int); create table u (a int); create table trace (who varchar)`)
		// Both rules trigger on inserted t; `chain` also re-triggers itself
		// once via u... keep simple: two independent rules on the same event.
		mustExec(t, e, `
			create rule r_a when inserted into t
			then insert into trace values ('a'); insert into u values (1)
			end;
			create rule r_b when inserted into t or inserted into u
			then insert into trace values ('b')
			end`)
		res := mustExec(t, e, `insert into t values (1)`)
		var order []string
		for _, f := range res.Firings {
			order = append(order, f.Rule)
		}
		return order
	}
	lru := run(rules.StrategyLeastRecent)
	// LRU: r_a then r_b (r_a defined first → least recently considered).
	if strings.Join(lru, ",") != "r_a,r_b" {
		t.Errorf("LRU order: %v", lru)
	}
	name := run(rules.StrategyNameOrder)
	if strings.Join(name, ",") != "r_a,r_b" {
		t.Errorf("name order: %v", name)
	}
}

// TestProcessRulesRollbackSpansSegments — a rollback fired after a
// triggering point undoes the entire transaction, including segments whose
// rules already ran.
func TestProcessRulesRollbackSpansSegments(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `create table log (x int)`)
	mustExec(t, e, `
		create rule audit when inserted into emp
		then insert into log values (1)
		end;
		create rule guard when inserted into dept
		then rollback
	`)
	res := mustExec(t, e, `
		insert into emp values ('a', 1, 1, 1);
		process rules;
		insert into dept values (1, 1)
	`)
	if !res.RolledBack || res.RollbackRule != "guard" {
		t.Fatalf("result: %+v", res)
	}
	// The first segment's insert and its rule's log entry are both gone.
	if count(t, e, "emp") != 0 || count(t, e, "log") != 0 {
		t.Errorf("segments not rolled back together: emp=%d log=%d",
			count(t, e, "emp"), count(t, e, "log"))
	}
	// The audit rule did fire before the rollback.
	if len(res.Firings) != 1 || res.Firings[0].Rule != "audit" {
		t.Errorf("firings: %+v", res.Firings)
	}
}

// TestScopeSyntaxAndDump — the SCOPE SINCE clause sets the footnote 8
// semantics and survives dump/load.
func TestScopeSyntaxAndDump(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `
		create rule w scope since considered when inserted into emp
		then insert into dept values (1, 1)
		end`)
	r, ok := e.Rule("w")
	if !ok || r.Scope != rules.ScopeSinceConsidered {
		t.Fatalf("scope: %+v", r)
	}
	var b strings.Builder
	if err := e.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "SCOPE SINCE CONSIDERED") {
		t.Errorf("dump lost scope:\n%s", b.String())
	}
	e2 := New(Config{})
	if err := e2.Load(strings.NewReader(b.String())); err != nil {
		t.Fatal(err)
	}
	r2, ok := e2.Rule("w")
	if !ok || r2.Scope != rules.ScopeSinceConsidered {
		t.Errorf("scope after load: %+v", r2)
	}
}

// TestMultipleRollbackRulesFirstWins — with two rollback rules triggered,
// only the first (by priority) fires; the transaction ends immediately.
func TestMultipleRollbackRulesFirstWins(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `
		create rule g1 when inserted into emp then rollback;
		create rule g2 when inserted into emp then rollback;
		create rule priority g2 before g1
	`)
	res := mustExec(t, e, `insert into emp values ('a', 1, 1, 1)`)
	if !res.RolledBack || res.RollbackRule != "g2" {
		t.Errorf("result: %+v", res)
	}
	if len(res.Firings) != 0 {
		t.Errorf("rollback is not a firing: %+v", res.Firings)
	}
}

// TestRollbackConditionFalseDoesNotRollBack — a rollback rule whose
// condition fails lets the transaction commit.
func TestRollbackConditionFalseDoesNotRollBack(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `
		create rule guard when inserted into emp
		if exists (select * from inserted emp where salary < 0)
		then rollback
	`)
	res := mustExec(t, e, `insert into emp values ('a', 1, 100, 1)`)
	if res.RolledBack {
		t.Error("rolled back with false condition")
	}
	if count(t, e, "emp") != 1 {
		t.Error("insert lost")
	}
}

// TestEmptyExternalBlockNoRules — a transaction whose net effect is empty
// considers no rules at all.
func TestEmptyExternalBlockNoRules(t *testing.T) {
	e := newEmpEngine(t, Config{})
	considered := 0
	e.SetTrace(func(ev TraceEvent) {
		if ev.Kind == TraceRuleConsidered {
			considered++
		}
	})
	mustExec(t, e, `create rule r when inserted into emp or deleted from emp or updated emp then rollback`)
	mustExec(t, e, `delete from emp where emp_no = 42`) // matches nothing
	if considered != 0 {
		t.Errorf("rules considered on empty effect: %d", considered)
	}
}

// TestCascadeThroughThreeRules — A→B→C chains across tables, each firing
// exactly once, demonstrating composite-effect bookkeeping across a chain.
func TestCascadeThroughThreeRules(t *testing.T) {
	e := New(Config{})
	mustExec(t, e, `
		create table a (x int); create table b (x int);
		create table c (x int); create table d (x int)`)
	mustExec(t, e, `
		create rule ab when inserted into a then insert into b (select x + 1 from inserted a) end;
		create rule bc when inserted into b then insert into c (select x + 1 from inserted b) end;
		create rule cd when inserted into c then insert into d (select x + 1 from inserted c) end
	`)
	res := mustExec(t, e, `insert into a values (0)`)
	if len(res.Firings) != 3 {
		t.Fatalf("firings: %+v", res.Firings)
	}
	q, _ := e.QueryString(`select x from d`)
	if len(q.Rows) != 1 || q.Rows[0][0].Int() != 3 {
		t.Errorf("chain result: %v", q.Rows)
	}
}

// TestConditionErrorAbortsTransaction — a runtime error inside a rule
// condition rolls back the transaction and surfaces the rule name.
func TestConditionErrorAbortsTransaction(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `
		create rule bad when inserted into emp
		if (select salary / 0 from inserted emp) > 1
		then rollback
	`)
	_, err := e.Exec(`insert into emp values ('a', 1, 1, 1)`)
	if err == nil || !strings.Contains(err.Error(), `rule "bad" condition`) {
		t.Fatalf("error: %v", err)
	}
	if count(t, e, "emp") != 0 {
		t.Error("failed txn not rolled back")
	}
}

// TestActionErrorAbortsTransaction — same for action errors.
func TestActionErrorAbortsTransaction(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `
		create rule bad when inserted into emp
		then update emp set salary = salary / 0
		end
	`)
	_, err := e.Exec(`insert into emp values ('a', 1, 1, 1)`)
	if err == nil || !strings.Contains(err.Error(), `rule "bad" action`) {
		t.Fatalf("error: %v", err)
	}
	if count(t, e, "emp") != 0 {
		t.Error("failed txn not rolled back")
	}
}

// TestEngineStatsDirect — the counters (also covered via the public API).
func TestEngineStatsDirect(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `insert into emp values ('a', 1, 1, 1)`)
	s := e.Stats()
	if s.Committed != 1 || s.ExternalTransitions != 1 {
		t.Errorf("stats: %+v", s)
	}
}

// TestProcContextErrors — external procedures get clean errors for
// non-DML Exec and non-SELECT Query.
func TestProcContextErrors(t *testing.T) {
	e := newEmpEngine(t, Config{})
	var execErr, queryErr, parseErr error
	e.RegisterProcedure("p", func(ctx *ProcContext) error {
		execErr = ctx.Exec(`drop table emp`)
		_, queryErr = ctx.Query(`insert into dept values (1,1)`)
		_, parseErr = ctx.Query(`not sql`)
		return nil
	})
	mustExec(t, e, `create rule r when inserted into emp then call p end`)
	mustExec(t, e, `insert into emp values ('a', 1, 1, 1)`)
	if execErr == nil || !strings.Contains(execErr.Error(), "data manipulation") {
		t.Errorf("Exec non-DML: %v", execErr)
	}
	if queryErr == nil || !strings.Contains(queryErr.Error(), "SELECT") {
		t.Errorf("Query non-SELECT: %v", queryErr)
	}
	if parseErr == nil {
		t.Error("Query parse error swallowed")
	}
	// Parse errors in ProcContext.Exec too.
	e.RegisterProcedure("p2", func(ctx *ProcContext) error { return ctx.Exec(`bogus`) })
	mustExec(t, e, `create rule r2 when deleted from emp then call p2 end`)
	if _, err := e.Exec(`delete from emp`); err == nil {
		t.Error("proc parse error swallowed")
	}
}

// TestSelectTriggerCondition — a SELECTED-triggered rule whose condition
// inspects the `selected` transition table (authorization-style check, the
// §5.1 motivation).
func TestSelectTriggerCondition(t *testing.T) {
	e := newEmpEngine(t, Config{EnableSelectTriggers: true})
	mustExec(t, e, `create table alerts (n int)`)
	mustExec(t, e, `
		create rule snoop when selected emp
		if exists (select * from selected emp where salary > 100000)
		then insert into alerts (select count(*) from selected emp)
		end
	`)
	mustExec(t, e, `insert into emp values ('ceo', 1, 500000, 0), ('ic', 2, 90000, 1)`)
	// Reading only the modest salary does not alert.
	mustExec(t, e, `select name from emp where emp_no = 2`)
	if count(t, e, "alerts") != 0 {
		t.Fatal("alert on non-sensitive read")
	}
	// A scan that touches the executive row alerts, counting all selected
	// tuples.
	mustExec(t, e, `select name from emp`)
	q, _ := e.QueryString(`select n from alerts`)
	if len(q.Rows) != 1 || q.Rows[0][0].Int() != 2 {
		t.Errorf("alerts: %v", q.Rows)
	}
}

// TestProcessRulesAlone — a bare triggering point is a no-op transaction.
func TestProcessRulesAlone(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `create rule r when inserted into emp then delete from dept end`)
	res := mustExec(t, e, `process rules`)
	if res.RolledBack || len(res.Firings) != 0 {
		t.Errorf("bare PROCESS RULES: %+v", res)
	}
	// Leading and trailing triggering points around real work.
	res = mustExec(t, e, `process rules; insert into emp values ('a',1,1,1); process rules`)
	if len(res.Firings) != 1 {
		t.Errorf("firings: %+v", res.Firings)
	}
}

// TestDumpDuringTransactionSeesCommittedState — Dump reads the published
// snapshot, so mid-transaction state is never serialized: a dump taken
// while a transaction is open is byte-identical to one taken before it
// began, uncommitted changes and all.
func TestDumpDuringTransactionSeesCommittedState(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `insert into emp values ('a', 1, 1, 1)`)
	var before strings.Builder
	if err := e.Dump(&before); err != nil {
		t.Fatal(err)
	}
	if err := e.Store().Begin(); err != nil {
		t.Fatal(err)
	}
	defer e.Store().Rollback()
	row := storage.Row{value.NewString("b"), value.NewInt(2), value.NewInt(2), value.NewInt(2)}
	if _, err := e.Store().Insert("emp", row); err != nil {
		t.Fatal(err)
	}
	var during strings.Builder
	if err := e.Dump(&during); err != nil {
		t.Fatalf("dump during transaction: %v", err)
	}
	if during.String() != before.String() {
		t.Errorf("dump during transaction differs from committed state:\nbefore:\n%s\nduring:\n%s", before.String(), during.String())
	}
}

// TestEmptyTransitionTableForOtherPred — a rule with a disjunctive trigger
// may reference all its transition tables; the ones whose predicate did not
// fire are simply empty.
func TestEmptyTransitionTableForOtherPred(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `create table log (ins int, del int)`)
	mustExec(t, e, `
		create rule both when inserted into emp or deleted from emp
		then insert into log
		     (select (select count(*) from inserted emp), (select count(*) from deleted emp))
		end
	`)
	mustExec(t, e, `insert into emp values ('a', 1, 1, 1)`)
	q, _ := e.QueryString(`select ins, del from log`)
	if len(q.Rows) != 1 || q.Rows[0][0].Int() != 1 || q.Rows[0][1].Int() != 0 {
		t.Errorf("counts: %v", q.Rows)
	}
}

// TestTriggerPermanence — the introduction's "Trigger permanence" question:
// "If several rules are triggered simultaneously, what happens if execution
// of one rule's action negates another rule's condition?" Section 4.2's
// answer: a rule remains triggered "as long as transition T2 does not undo
// the changes that initially caused [it] to be triggered" — i.e. triggering
// is re-evaluated against the composite net effect.
func TestTriggerPermanence(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `create table log (x int)`)
	// `undo` deletes every newly inserted employee; `react` also watches
	// inserts but runs second. After undo's transition, the composite
	// effect for react is insert-then-delete = nothing, so react must not
	// run even though it was triggered in the intermediate state.
	mustExec(t, e, `
		create rule undo when inserted into emp
		then delete from emp where emp_no in (select emp_no from inserted emp)
		end;
		create rule react when inserted into emp
		then insert into log values (1)
		end;
		create rule priority undo before react
	`)
	res := mustExec(t, e, `insert into emp values ('a', 1, 1, 1)`)
	if len(res.Firings) != 1 || res.Firings[0].Rule != "undo" {
		t.Fatalf("firings: %+v", res.Firings)
	}
	if count(t, e, "log") != 0 {
		t.Error("react ran although its triggering changes were undone")
	}

	// Conversely, with the priority reversed react runs first (trigger
	// still standing), then undo cleans up.
	e2 := newEmpEngine(t, Config{})
	mustExec(t, e2, `create table log (x int)`)
	mustExec(t, e2, `
		create rule undo when inserted into emp
		then delete from emp where emp_no in (select emp_no from inserted emp)
		end;
		create rule react when inserted into emp
		then insert into log values (1)
		end;
		create rule priority react before undo
	`)
	res = mustExec(t, e2, `insert into emp values ('a', 1, 1, 1)`)
	if len(res.Firings) != 2 {
		t.Fatalf("firings: %+v", res.Firings)
	}
	if count(t, e2, "log") != 1 {
		t.Error("react should have run before undo")
	}
}

// TestConditionNegatedByEarlierRule — the condition (not just the trigger)
// is also evaluated against the state after earlier rules ran.
func TestConditionNegatedByEarlierRule(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `create table log (x int)`)
	mustExec(t, e, `
		create rule drain when inserted into emp
		then update emp set salary = 0
		end;
		create rule rich when inserted into emp
		if exists (select * from emp where salary > 100)
		then insert into log values (1)
		end;
		create rule priority drain before rich
	`)
	mustExec(t, e, `insert into emp values ('a', 1, 500, 1)`)
	if count(t, e, "log") != 0 {
		t.Error("rich ran although drain negated its condition")
	}
}

// TestRuleTimeout — footnote 7's "run-time detection using a timeout
// mechanism": a divergent rule set is stopped by wall-clock deadline and
// the transaction rolls back.
func TestRuleTimeout(t *testing.T) {
	e := newEmpEngine(t, Config{RuleTimeout: 20 * time.Millisecond, MaxRuleTransitions: 1 << 30})
	mustExec(t, e, `
		create rule diverge when updated emp.salary
		then update emp set salary = salary + 1
		end
	`)
	mustExec(t, e, `insert into emp values ('a', 1, 0, 1)`)
	_, err := e.Exec(`update emp set salary = 1`)
	if err == nil || !errors.Is(err, ErrTimeout) {
		t.Fatalf("expected ErrTimeout, got %v", err)
	}
	q, _ := e.QueryString(`select salary from emp`)
	if q.Rows[0][0].Float() != 0 {
		t.Errorf("timeout txn not rolled back: %v", q.Rows[0][0])
	}
}

// TestWF89aBooleanCombination — Section 3 notes that "it is possible to
// use the condition part of a rule to obtain the effect of arbitrary
// boolean combinations of basic transition predicates" [WF89a]. This rule
// fires only when the transition BOTH inserted into emp AND deleted from
// emp (conjunction — not expressible as a transition predicate, which is a
// disjunction).
func TestWF89aBooleanCombination(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `create table log (x int)`)
	mustExec(t, e, `
		create rule churn when inserted into emp or deleted from emp
		if exists (select * from inserted emp)
		   and exists (select * from deleted emp)
		then insert into log values (1)
		end
	`)
	mustExec(t, e, `insert into emp values ('a', 1, 1, 1), ('b', 2, 1, 1)`)
	if count(t, e, "log") != 0 {
		t.Fatal("insert-only transition fired the conjunction")
	}
	mustExec(t, e, `delete from emp where emp_no = 1`)
	if count(t, e, "log") != 0 {
		t.Fatal("delete-only transition fired the conjunction")
	}
	mustExec(t, e, `insert into emp values ('c', 3, 1, 1); delete from emp where emp_no = 2`)
	if count(t, e, "log") != 1 {
		t.Error("insert+delete transition did not fire the conjunction")
	}
}

// TestRetrievalAction — Section 5.1's "data retrieval in rules' actions":
// a rule can SELECT, and the result set is delivered with the transaction
// result (the paper's example: "a rule that automatically delivers a
// summary of employee data whenever salaries are updated").
func TestRetrievalAction(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `
		create rule summary when updated emp.salary
		then select name, salary from new updated emp.salary order by name
		end
	`)
	mustExec(t, e, `insert into emp values ('a', 1, 100, 1), ('b', 2, 200, 1)`)
	res := mustExec(t, e, `update emp set salary = salary + 10`)
	if len(res.Queries) != 1 {
		t.Fatalf("delivered results: %d", len(res.Queries))
	}
	q := res.Queries[0]
	if len(q.Rows) != 2 || q.Rows[0][1].Float() != 110 || q.Rows[1][1].Float() != 210 {
		t.Errorf("summary rows: %v", q.Rows)
	}
	// The retrieval-only action creates an empty transition: the rule must
	// not re-trigger itself.
	if len(res.Firings) != 1 {
		t.Errorf("firings: %+v", res.Firings)
	}
	// Mixed action: retrieval plus DML still cascades normally.
	e2 := newEmpEngine(t, Config{})
	mustExec(t, e2, `
		create rule mixed when inserted into emp
		then select count(*) from inserted emp;
		     insert into dept values (1, 1)
		end
	`)
	res = mustExec(t, e2, `insert into emp values ('a', 1, 1, 1)`)
	if len(res.Queries) != 1 || res.Queries[0].Rows[0][0].Int() != 1 {
		t.Errorf("mixed action query: %+v", res.Queries)
	}
	if count(t, e2, "dept") != 1 {
		t.Error("mixed action DML missing")
	}
}

// TestUpdateWholeTablePredicate — `updated t` (no column) matches updates
// to any column.
func TestUpdateWholeTablePredicate(t *testing.T) {
	e := newEmpEngine(t, Config{})
	mustExec(t, e, `create rule r when updated emp then insert into dept values (1,1) end`)
	mustExec(t, e, `insert into emp values ('a', 1, 1, 1)`)
	res := mustExec(t, e, `update emp set name = 'b'`)
	if len(res.Firings) != 1 {
		t.Errorf("whole-table update predicate: %+v", res.Firings)
	}
	res = mustExec(t, e, `update emp set salary = 5`)
	if len(res.Firings) != 1 {
		t.Errorf("second column: %+v", res.Firings)
	}
}
