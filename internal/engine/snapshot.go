package engine

import (
	"strings"

	"sopr/internal/storage"
)

// snapState is one published point-in-time state of the whole engine: the
// storage snapshot plus everything else a lock-free reader may ask for —
// the rule-definition script (rendered eagerly, because rule structures
// are writer-private), the last durable LSN, and the engine counters as of
// the publish. One atomic pointer holds all of it so Dump sees a single
// consistent cut: data, indexes, rules, and stats all from the same
// instant, never old tables with new rules.
type snapState struct {
	store *storage.Snapshot
	rules string // dumpRules output at publish time
	lsn   uint64 // last durable LSN at publish time (0 without a WAL)
	stats Stats  // engine + WAL counters at publish time
}

// publish captures the current committed state behind the engine's atomic
// snapshot pointer. It runs only on the exclusive write path — after a
// commit, rollback (for the counters), definition statement, checkpoint,
// or replayed batch — so it may freely read writer-private state: the rule
// set, the plain engine counters, and the WAL's mutex-guarded counters.
// Readers then get all of it from one atomic load, with zero locking.
func (e *Engine) publish() {
	st := e.stats
	var lsn uint64
	if e.wal != nil {
		ws := e.wal.Stats()
		st.WALAppends, st.WALBytes = ws.Appends, ws.Bytes
		st.WALGroupCommits, st.WALGroupedTxns = ws.GroupCommits, ws.GroupedTxns
		lsn = e.wal.NextLSN() - 1
	}
	var rules strings.Builder
	// dumpRules only fails on writer errors; strings.Builder has none.
	_ = e.dumpRules(&rules)
	e.snap.Store(&snapState{
		store: e.store.Snapshot(),
		rules: rules.String(),
		lsn:   lsn,
		stats: st,
	})
}

// PublishSnapshot republishes the engine's read snapshot from the current
// storage state. The normal write paths publish implicitly; this explicit
// form exists for the replay paths: crash recovery publishes once after
// the whole log tail (per-record publishes would re-trigger the
// copy-on-write clone per record), while a replication follower calls it
// after every applied record so snapshot readers see replicated state as
// it arrives.
func (e *Engine) PublishSnapshot() {
	e.store.PublishSnapshot()
	e.publish()
}

// SnapshotLSN reports the last durable log sequence number captured with
// the current read snapshot (0 on an in-memory engine). Lock-free.
func (e *Engine) SnapshotLSN() uint64 {
	return e.snap.Load().lsn
}

// Snapshot returns the engine's current committed storage snapshot — the
// state lock-free readers query. Exposed for tests and tools that want to
// read a consistent cut while the writer runs.
func (e *Engine) Snapshot() *storage.Snapshot {
	return e.snap.Load().store
}
