package engine

// Stats are cumulative counters over the engine's lifetime, exposed for
// observability and for the benchmark harness.
type Stats struct {
	// Transactions committed and rolled back (rule rollbacks, errors and
	// the runaway guard all count as rollbacks).
	Committed  int64
	RolledBack int64
	// ExternalTransitions counts externally-generated transitions
	// (PROCESS RULES triggering points split one transaction into several).
	ExternalTransitions int64
	// RuleConsiderations counts condition evaluations; RuleFirings counts
	// action executions (rule-generated transitions).
	RuleConsiderations int64
	RuleFirings        int64
	// Access-path counters from the storage layer: selections served from
	// a secondary hash index (CREATE INDEX) vs. full heap table scans.
	IndexLookups int64
	HeapScans    int64
	// Durability counters: write-ahead-log appends and bytes (zero when no
	// log is attached), records replayed during crash recovery, and
	// checkpoints written.
	WALAppends       int64
	WALBytes         int64
	RecoveredRecords int64
	Checkpoints      int64
	// Group-commit counters (SyncAlways durable path): leader fsyncs
	// issued from the commit queue and the committers they acknowledged.
	// WALGroupedTxns/WALGroupCommits is the fsync amortization factor.
	WALGroupCommits int64
	WALGroupedTxns  int64
	// Planner counters: query blocks executed through the cost-based join
	// planner, and index probes that fell back to a heap scan at lookup
	// time (the 2^53 integer-keyspace fallback).
	PlannedQueries     int64
	PlanProbeFallbacks int64
}

// Stats returns a snapshot of the engine's counters, lock-free: the
// engine-level and WAL counters were captured into the published snapshot
// state by the write path (see snapshot.go), so this reads them with one
// atomic pointer load — no engine field, no WAL mutex. The access-path
// counters are overlaid live from the storage layer's atomic pair, since
// concurrent readers (not just the writer) advance them.
func (e *Engine) Stats() Stats {
	sn := e.snap.Load()
	s := sn.stats
	s.HeapScans, s.IndexLookups = sn.store.AccessStats()
	s.PlannedQueries = e.planCounters.Planned.Load()
	s.PlanProbeFallbacks = e.planCounters.ProbeFallbacks.Load()
	return s
}
