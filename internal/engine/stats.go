package engine

// Stats are cumulative counters over the engine's lifetime, exposed for
// observability and for the benchmark harness.
type Stats struct {
	// Transactions committed and rolled back (rule rollbacks, errors and
	// the runaway guard all count as rollbacks).
	Committed  int64
	RolledBack int64
	// ExternalTransitions counts externally-generated transitions
	// (PROCESS RULES triggering points split one transaction into several).
	ExternalTransitions int64
	// RuleConsiderations counts condition evaluations; RuleFirings counts
	// action executions (rule-generated transitions).
	RuleConsiderations int64
	RuleFirings        int64
	// Access-path counters from the storage layer: selections served from
	// a secondary hash index (CREATE INDEX) vs. full heap table scans.
	IndexLookups int64
	HeapScans    int64
	// Durability counters: write-ahead-log appends and bytes (zero when no
	// log is attached), records replayed during crash recovery, and
	// checkpoints written.
	WALAppends       int64
	WALBytes         int64
	RecoveredRecords int64
	Checkpoints      int64
}

// Stats returns a snapshot of the engine's counters. Safe under
// SynchronizedDB's shared lock: the engine-level counters (e.stats) are
// written only from the exclusive write path, which the reader-writer
// lock orders against this read; the access-path counters are atomic
// because concurrent queries increment them while Stats reads (see
// storage.AccessStats); and the WAL keeps its counters behind its own
// mutex.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.HeapScans, s.IndexLookups = e.store.AccessStats()
	if e.wal != nil {
		ws := e.wal.Stats()
		s.WALAppends, s.WALBytes = ws.Appends, ws.Bytes
	}
	return s
}
