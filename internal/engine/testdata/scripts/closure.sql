create table flight (src varchar, dst varchar);
create table reach (src varchar, dst varchar)
--
create rule seed when inserted into flight
then insert into reach
     (select src, dst from inserted flight f
      where not exists (select * from reach r where r.src = f.src and r.dst = f.dst))
end;
create rule derive when inserted into reach
then insert into reach
     (select distinct n.src, f.dst from inserted reach n, flight f
      where n.dst = f.src
        and not exists (select * from reach r where r.src = n.src and r.dst = f.dst))
end;
create rule derive_back when inserted into reach
then insert into reach
     (select distinct r.src, n.dst from reach r, inserted reach n
      where r.dst = n.src
        and not exists (select * from reach r2 where r2.src = r.src and r2.dst = n.dst))
end
--
insert into flight values ('a','b'), ('b','c'), ('c','d')
--
select src, dst from reach order by src, dst
--
insert into flight values ('d','e')
--
select src from reach where dst = 'e' order by src
