create table dept (dept_no int, mgr_no int);
create table emp (name varchar, emp_no int, salary float, dept_no int)
--
create rule fk_check when inserted into emp or updated emp.dept_no
if exists (select * from inserted emp
           where dept_no is not null and dept_no not in (select dept_no from dept))
or exists (select * from new updated emp.dept_no
           where dept_no is not null and dept_no not in (select dept_no from dept))
then rollback;
create rule fk_cascade when deleted from dept
then delete from emp where dept_no in (select dept_no from deleted dept)
end;
create rule pay_floor when inserted into emp or updated emp.salary
if exists (select * from inserted emp where salary < 0)
or exists (select * from new updated emp.salary where salary < 0)
then rollback
--
insert into dept values (1, 10), (2, 20);
insert into emp values ('ok', 1, 100, 1)
--
insert into emp values ('orphan', 2, 100, 99)
--
update emp set salary = -1
--
delete from dept where dept_no = 1
--
select name, dept_no from emp order by emp_no;
select count(*) n from dept
