create table t (a int not null)
--
insert into t values (null)
--
insert into t values (1);
insert into t values (2)
--
create rule diverge when updated t.a then update t set a = a + 1 end
--
update t set a = a + 1
--
select count(*) n, max(a) m from t
