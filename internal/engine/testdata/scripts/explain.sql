create table emp (name varchar, emp_no int, salary float, dept_no int);
create table dept (dept_no int, dname varchar);
create table proj (pno int, dept_no int, budget float);
create index emp_no_ix on emp (emp_no);
create index dept_ix on dept (dept_no)
--
insert into emp values ('a', 1, 100.0, 1), ('b', 2, 200.0, 1), ('c', 3, 300.0, 2), ('d', 4, 120.0, 2), ('e', 5, 90.0, 3), ('f', 6, 130.0, 3), ('g', 7, 400.0, 1), ('h', 8, 80.0, 2);
insert into dept values (1, 'eng'), (2, 'ops'), (3, 'hr');
insert into proj values (10, 1, 5.0), (11, 2, 6.0)
--
explain select name from emp where emp_no = 3
--
explain select name from emp where salary > 100.0
--
explain select name from emp where emp_no in (1, 3, 5) order by name
--
explain select name from emp where emp_no = 9007199254740993.0
--
explain select name, dname from emp, dept where emp.dept_no = dept.dept_no and salary > 100.0
--
explain select name, dname, pno from emp, dept, proj where emp.dept_no = dept.dept_no and dept.dept_no = proj.dept_no
--
explain select dname, count(*) n from emp, dept where emp.dept_no = dept.dept_no group by dname order by n desc limit 2
--
explain delete from emp where emp_no = 3;
explain update emp set salary = 1.0 where dept_no = 2;
explain insert into proj values (12, 3, 1.0)
--
explain select name, pno from emp, proj where emp.dept_no = proj.dept_no
--
insert into proj values (20, 1, 1.0), (21, 1, 1.0), (22, 2, 1.0), (23, 2, 1.0), (24, 3, 1.0), (25, 3, 1.0), (26, 1, 1.0), (27, 2, 1.0), (28, 3, 1.0), (29, 1, 1.0), (30, 2, 1.0), (31, 3, 1.0)
--
explain select name, pno from emp, proj where emp.dept_no = proj.dept_no
