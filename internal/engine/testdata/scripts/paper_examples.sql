create table emp (name varchar, emp_no int not null, salary float, dept_no int);
create table dept (dept_no int, mgr_no int)
--
create rule mgr_cascade when deleted from emp
then delete from emp
     where dept_no in (select dept_no from dept
                       where mgr_no in (select emp_no from deleted emp));
     delete from dept
     where mgr_no in (select emp_no from deleted emp)
end;
create rule salary_watch when updated emp.salary
if (select avg(salary) from new updated emp.salary) > 50000
then delete from emp
     where emp_no in (select emp_no from new updated emp.salary)
       and salary > 80000
end;
create rule priority salary_watch before mgr_cascade
--
insert into emp values
    ('jane', 1, 60000, 0),
    ('mary', 2, 70000, 1),
    ('jim',  3, 55000, 1),
    ('bill', 4, 25000, 2),
    ('sam',  5, 40000, 3),
    ('sue',  6, 45000, 3);
insert into dept values (1, 1), (2, 2), (3, 3)
--
delete from emp where name = 'jane';
update emp set salary = 30000 where name = 'bill';
update emp set salary = 85000 where name = 'mary'
--
select count(*) total_emps from emp;
select count(*) total_depts from dept
