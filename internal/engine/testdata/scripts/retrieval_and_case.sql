create table emp (name varchar, salary float, grade varchar)
--
create rule grade_and_report when updated emp.salary
then update emp set grade = case when salary >= 1000 then 'high'
                                 when salary >= 500 then 'mid'
                                 else 'low' end
     where name in (select name from new updated emp.salary);
     select name, salary, grade from emp order by name
end
--
insert into emp values ('a', 100, 'x'), ('b', 800, 'x'), ('c', 2000, 'x')
--
update emp set salary = salary * 2
--
select name, grade from emp order by name
