create table t (a int);
create table log (n int)
--
create rule snapshot when inserted into t
then insert into log (select count(*) from inserted t)
end
--
insert into t values (1);
insert into t values (2);
process rules;
insert into t values (3)
--
select n from log order by n
--
create rule sc scope since considered when inserted into t
if (select count(*) from t) > 100
then delete from t
end
--
insert into t values (4)
--
select count(*) remaining from t
