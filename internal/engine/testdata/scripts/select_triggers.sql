-- config: select-triggers
create table emp (name varchar, salary float);
create table audit (n int)
--
create rule watch when selected emp
if exists (select * from selected emp where salary > 1000)
then insert into audit (select count(*) from selected emp)
end
--
insert into emp values ('a', 100), ('b', 5000)
--
select name from emp where salary < 500
--
select name from emp
--
select n from audit
