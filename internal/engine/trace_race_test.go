package engine

import (
	"fmt"
	"sync"
	"testing"
)

// TestSetTraceConcurrentWithExec exercises the atomic trace-handler swap:
// one goroutine repeatedly installs and removes a handler while another runs
// trace-emitting transactions. Under -race this fails if the handler were a
// plain field; with the atomic.Pointer swap every emission sees either the
// old handler, the new one, or none — never a torn state.
func TestSetTraceConcurrentWithExec(t *testing.T) {
	e := New(Config{})
	if _, err := e.Exec(`create table t (a int);
		create rule r when inserted into t then delete from t where a < 0 end`); err != nil {
		t.Fatal(err)
	}

	var seen sync.Map // collected by whichever handler is installed
	handler := func(ev TraceEvent) { seen.Store(ev.Kind, true) }

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				e.SetTrace(handler)
			} else {
				e.SetTrace(nil)
			}
		}
	}()

	for i := 0; i < 200; i++ {
		if _, err := e.Exec(fmt.Sprintf(`insert into t values (%d), (-%d)`, i, i+1)); err != nil {
			close(stop)
			wg.Wait()
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// With the swapper toggling every iteration, some emissions must have
	// landed on an installed handler.
	if _, ok := seen.Load(TraceRuleFired); !ok {
		e.SetTrace(handler)
		if _, err := e.Exec(`insert into t values (0), (-1)`); err != nil {
			t.Fatal(err)
		}
		if _, ok := seen.Load(TraceRuleFired); !ok {
			t.Error("handler never observed a rule firing")
		}
	}
}
