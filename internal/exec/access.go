package exec

// Index-aware access path. evalSelect and matchTuples materialize their
// base-table inputs through this sargability pass: a top-level AND
// conjunct of the form `col = <probe>` or `col IN (<probes>)`, where col
// belongs to the table being materialized and every probe is independent
// of the current query block, lets the storage layer's secondary hash
// index (CREATE INDEX) produce the candidate tuples instead of a full
// heap scan.
//
// Semantics preservation: the index returns, in heap-scan order, exactly
// the tuples for which the conjunct's comparison is True, and the full
// WHERE clause is still evaluated on every candidate afterwards, so
// three-valued logic, residual predicates, result order and
// select-observation (Section 5.1) are indistinguishable from the scan
// path. Whenever a conjunct cannot be proven independent of the block —
// or an index cannot answer a probe exactly (see storage.probeKey) — the
// pass declines and the scan path runs. Like the hash-join fast path,
// indexed access evaluates WHERE only on candidate rows, so a predicate
// whose evaluation errors on non-candidate rows may not error here.

import (
	"sopr/internal/catalog"
	"sopr/internal/sqlast"
	"sopr/internal/storage"
	"sopr/internal/value"
)

// fromBinding is the planning-time view of one FROM entry: enough to
// resolve column references before any rows are materialized. schema is
// nil when the table is unknown (the scan path will report the error).
type fromBinding struct {
	binding string
	schema  *catalog.Table
}

// planBindings builds the planning view of a FROM list, tolerating
// unknown tables.
func (e *Env) planBindings(from []*sqlast.TableRef) []fromBinding {
	infos := make([]fromBinding, len(from))
	for i, tr := range from {
		infos[i].binding = tr.Binding()
		if schema, err := e.lookupSchema(tr.Table); err == nil {
			infos[i].schema = schema
		}
	}
	return infos
}

// indexProbe is a planned index access on one FROM entry: the column
// position and the probe values of an equality (one value) or IN
// (several values) conjunct.
type indexProbe struct {
	col  int
	vals []value.Value
}

// materializeFrom resolves one FROM entry of sel, routing base-table
// entries through a secondary index when a sargable conjunct allows it
// and falling back to resolveTableRef (heap scan) otherwise.
func (e *Env) materializeFrom(tr *sqlast.TableRef, target int, sel *sqlast.Select, infos []fromBinding, parent *scope) (*relation, error) {
	if tr.Trans == sqlast.TransNone && !e.NoIndex && sel.Where != nil && infos[target].schema != nil {
		if probe := e.findIndexProbe(sel.Where, target, infos, parent); probe != nil {
			schema := infos[target].schema
			tuples, ok, err := e.Store.IndexedLookup(schema.Name, probe.col, probe.vals...)
			if err != nil {
				return nil, err
			}
			if ok {
				rel := &relation{binding: tr.Binding(), table: schema.Name, cols: schema.ColumnNames()}
				for _, t := range tuples {
					rel.rows = append(rel.rows, TransRow{Handle: t.Handle, Values: t.Values})
				}
				return rel, nil
			}
			// Planned probe declined at lookup time (the 2^53
			// integer-keyspace fallback): count it, then heap scan.
			if e.Counters != nil {
				e.Counters.ProbeFallbacks.Add(1)
			}
		}
	}
	return e.resolveTableRef(tr)
}

// findIndexProbe searches the top-level AND conjuncts of where for a
// sargable conjunct on FROM entry target: `col = probe`, `probe = col`,
// `col IN (probes)`, or `col IN (subquery)`. It returns nil when no such
// conjunct exists, when no index covers the column, or when a probe
// cannot be proven independent of the current block; the caller then
// scans.
func (e *Env) findIndexProbe(where sqlast.Expr, target int, infos []fromBinding, parent *scope) *indexProbe {
	switch x := where.(type) {
	case *sqlast.Binary:
		if x.Op == sqlast.OpAnd {
			if p := e.findIndexProbe(x.L, target, infos, parent); p != nil {
				return p
			}
			return e.findIndexProbe(x.R, target, infos, parent)
		}
		if x.Op != sqlast.OpEq {
			return nil
		}
		if p := e.probeFromEq(x.L, x.R, target, infos, parent); p != nil {
			return p
		}
		return e.probeFromEq(x.R, x.L, target, infos, parent)
	case *sqlast.InList:
		if x.Negate {
			return nil
		}
		col, ok := e.sargableCol(x.X, target, infos)
		if !ok {
			return nil
		}
		vals := make([]value.Value, 0, len(x.List))
		for _, item := range x.List {
			v, ok := e.probeValue(item, infos, parent)
			if !ok {
				return nil
			}
			vals = append(vals, v)
		}
		return &indexProbe{col: col, vals: vals}
	case *sqlast.InSelect:
		if x.Negate || e.Observer != nil {
			// With select-triggered rules on, plan-time evaluation of the
			// subquery could observe tuples the per-row scan path would
			// not (e.g. when the outer table is empty); decline.
			return nil
		}
		col, ok := e.sargableCol(x.X, target, infos)
		if !ok {
			return nil
		}
		if e.selectMayReferToBlock(x.Sub, infos, nil) {
			return nil
		}
		res, err := e.evalSelect(x.Sub, parent)
		if err != nil || len(res.Columns) != 1 {
			// The scan path reports any genuine error per row; declining
			// reproduces its behavior exactly (including the no-rows case
			// where the error never surfaces).
			return nil
		}
		vals := make([]value.Value, len(res.Rows))
		for i, r := range res.Rows {
			vals[i] = r[0]
		}
		return &indexProbe{col: col, vals: vals}
	default:
		return nil
	}
}

// probeFromEq plans `lhs = rhs` with lhs the indexed column: lhs must be
// a column reference resolving uniquely to the target entry, an index
// must cover it, and rhs must evaluate independently of the block.
func (e *Env) probeFromEq(lhs, rhs sqlast.Expr, target int, infos []fromBinding, parent *scope) *indexProbe {
	col, ok := e.sargableCol(lhs, target, infos)
	if !ok {
		return nil
	}
	v, ok := e.probeValue(rhs, infos, parent)
	if !ok {
		return nil
	}
	return &indexProbe{col: col, vals: []value.Value{v}}
}

// sargableCol resolves ref as a column reference landing uniquely on FROM
// entry target (mirroring scope.lookup's innermost-level resolution) and
// reports whether a secondary index covers that column. Ambiguous or
// foreign references decline.
func (e *Env) sargableCol(ref sqlast.Expr, target int, infos []fromBinding) (int, bool) {
	cr, ok := ref.(*sqlast.ColumnRef)
	if !ok {
		return 0, false
	}
	entry, col := -1, -1
	for i, fb := range infos {
		if fb.schema == nil {
			continue
		}
		if cr.Qualifier != "" && cr.Qualifier != fb.binding {
			continue
		}
		if j := fb.schema.ColumnIndex(cr.Column); j >= 0 {
			if entry >= 0 {
				return 0, false // ambiguous in this block
			}
			entry, col = i, j
		}
	}
	if entry != target {
		return 0, false
	}
	return col, e.Store.HasIndex(infos[target].schema.Name, col)
}

// probeValue evaluates a probe expression that must be independent of the
// current block: literals (including arithmetic over them), outer-scope
// column references, and — when select observation is off — subqueries
// free of block references. ok is false when independence cannot be
// proven or evaluation fails (the scan path then reproduces any genuine
// error).
func (e *Env) probeValue(rhs sqlast.Expr, infos []fromBinding, parent *scope) (value.Value, bool) {
	if e.mayReferToBlock(rhs, infos, nil) {
		return value.Null, false
	}
	if e.Observer != nil && exprUsesSelect(rhs) {
		return value.Null, false
	}
	if parent == nil {
		parent = &scope{}
	}
	v, err := e.evalExpr(parent, rhs)
	if err != nil {
		return value.Null, false
	}
	return v, true
}

// mayReferToBlock conservatively reports whether x contains a column
// reference that would resolve to one of the current block's FROM
// bindings. shadows holds the FROM bindings of enclosing subqueries
// between x and the block; a reference they bind never escapes to the
// block (resolution is innermost-out, as in scope.lookup). Unknown
// constructs report true (decline).
func (e *Env) mayReferToBlock(x sqlast.Expr, block []fromBinding, shadows [][]fromBinding) bool {
	switch v := x.(type) {
	case nil:
		return false
	case *sqlast.Literal:
		return false
	case *sqlast.ColumnRef:
		for _, level := range shadows {
			if refResolvesIn(v, level) {
				return false
			}
		}
		return refResolvesIn(v, block)
	case *sqlast.Binary:
		return e.mayReferToBlock(v.L, block, shadows) || e.mayReferToBlock(v.R, block, shadows)
	case *sqlast.Unary:
		return e.mayReferToBlock(v.X, block, shadows)
	case *sqlast.IsNull:
		return e.mayReferToBlock(v.X, block, shadows)
	case *sqlast.InList:
		if e.mayReferToBlock(v.X, block, shadows) {
			return true
		}
		for _, item := range v.List {
			if e.mayReferToBlock(item, block, shadows) {
				return true
			}
		}
		return false
	case *sqlast.InSelect:
		return e.mayReferToBlock(v.X, block, shadows) || e.selectMayReferToBlock(v.Sub, block, shadows)
	case *sqlast.Exists:
		return e.selectMayReferToBlock(v.Sub, block, shadows)
	case *sqlast.ScalarSub:
		return e.selectMayReferToBlock(v.Sub, block, shadows)
	case *sqlast.SubCompare:
		return e.mayReferToBlock(v.X, block, shadows) || e.selectMayReferToBlock(v.Sub, block, shadows)
	case *sqlast.Between:
		return e.mayReferToBlock(v.X, block, shadows) ||
			e.mayReferToBlock(v.Lo, block, shadows) ||
			e.mayReferToBlock(v.Hi, block, shadows)
	case *sqlast.Like:
		return e.mayReferToBlock(v.X, block, shadows) || e.mayReferToBlock(v.Pattern, block, shadows)
	case *sqlast.FuncCall:
		for _, a := range v.Args {
			if e.mayReferToBlock(a, block, shadows) {
				return true
			}
		}
		return false
	case *sqlast.Case:
		if e.mayReferToBlock(v.Operand, block, shadows) || e.mayReferToBlock(v.Else, block, shadows) {
			return true
		}
		for _, w := range v.Whens {
			if e.mayReferToBlock(w.Cond, block, shadows) || e.mayReferToBlock(w.Result, block, shadows) {
				return true
			}
		}
		return false
	default:
		return true
	}
}

// selectMayReferToBlock extends mayReferToBlock into a subquery: the
// subquery's own FROM list shadows the block for every expression inside
// it. An unresolvable FROM table reports true (decline).
func (e *Env) selectMayReferToBlock(sel *sqlast.Select, block []fromBinding, shadows [][]fromBinding) bool {
	level := e.planBindings(sel.From)
	for _, fb := range level {
		if fb.schema == nil {
			return true
		}
	}
	inner := append([][]fromBinding{level}, shadows...)
	for _, it := range sel.Items {
		if !it.Star && e.mayReferToBlock(it.Expr, block, inner) {
			return true
		}
	}
	if e.mayReferToBlock(sel.Where, block, inner) || e.mayReferToBlock(sel.Having, block, inner) {
		return true
	}
	for _, g := range sel.GroupBy {
		if e.mayReferToBlock(g, block, inner) {
			return true
		}
	}
	for _, ob := range sel.OrderBy {
		if e.mayReferToBlock(ob.Expr, block, inner) {
			return true
		}
	}
	return false
}

// refResolvesIn reports whether the reference resolves against any
// binding at one scope level, mirroring scope.lookup's matching.
func refResolvesIn(cr *sqlast.ColumnRef, level []fromBinding) bool {
	for _, fb := range level {
		if fb.schema == nil {
			continue
		}
		if cr.Qualifier != "" && cr.Qualifier != fb.binding {
			continue
		}
		if fb.schema.HasColumn(cr.Column) {
			return true
		}
	}
	return false
}

// exprUsesSelect reports whether the expression embeds any subquery.
func exprUsesSelect(x sqlast.Expr) bool {
	switch v := x.(type) {
	case *sqlast.InSelect, *sqlast.Exists, *sqlast.ScalarSub, *sqlast.SubCompare:
		return true
	case *sqlast.Binary:
		return exprUsesSelect(v.L) || exprUsesSelect(v.R)
	case *sqlast.Unary:
		return exprUsesSelect(v.X)
	case *sqlast.IsNull:
		return exprUsesSelect(v.X)
	case *sqlast.InList:
		if exprUsesSelect(v.X) {
			return true
		}
		for _, item := range v.List {
			if exprUsesSelect(item) {
				return true
			}
		}
		return false
	case *sqlast.Between:
		return exprUsesSelect(v.X) || exprUsesSelect(v.Lo) || exprUsesSelect(v.Hi)
	case *sqlast.Like:
		return exprUsesSelect(v.X) || exprUsesSelect(v.Pattern)
	case *sqlast.FuncCall:
		for _, a := range v.Args {
			if exprUsesSelect(a) {
				return true
			}
		}
		return false
	case *sqlast.Case:
		if v.Operand != nil && exprUsesSelect(v.Operand) {
			return true
		}
		if v.Else != nil && exprUsesSelect(v.Else) {
			return true
		}
		for _, w := range v.Whens {
			if exprUsesSelect(w.Cond) || exprUsesSelect(w.Result) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// indexedMatches serves matchTuples' predicate scan through an index when
// where carries a sargable conjunct on the single bound table. ok is
// false when the pass declines (caller scans). The returned tuples are in
// heap-scan order and still need the full predicate applied.
func (e *Env) indexedMatches(schema *catalog.Table, binding string, where sqlast.Expr) (tuples []*storage.Tuple, ok bool, err error) {
	if e.NoIndex || where == nil {
		return nil, false, nil
	}
	infos := []fromBinding{{binding: binding, schema: schema}}
	probe := e.findIndexProbe(where, 0, infos, nil)
	if probe == nil {
		return nil, false, nil
	}
	tuples, ok, err = e.Store.IndexedLookup(schema.Name, probe.col, probe.vals...)
	if err == nil && !ok && e.Counters != nil {
		e.Counters.ProbeFallbacks.Add(1)
	}
	return tuples, ok, err
}
