package exec

// Tests for evaluator paths not covered by the main suite: EvalPredicate,
// scalar-function edge cases, hash keys, and aggregate detection across
// every expression form.

import (
	"math"
	"testing"

	"sopr/internal/sqlast"
	"sopr/internal/sqlparse"
	"sopr/internal/value"
)

func evalPred(t *testing.T, e *Env, src string) (bool, error) {
	t.Helper()
	expr, err := sqlparse.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return e.EvalPredicate(expr)
}

func TestEvalPredicate(t *testing.T) {
	e := testEnv(t)
	cases := []struct {
		src  string
		want bool
		err  bool
	}{
		{`1 = 1`, true, false},
		{`1 = 2`, false, false},
		{`null = 1`, false, false}, // Unknown is not true
		{`exists (select * from emp)`, true, false},
		{`(select count(*) from emp) > 3`, true, false},
		{`(select avg(salary) from emp) > 100000`, false, false},
		{`1 + 1`, false, true},        // non-boolean
		{`nosuch = 1`, false, true},   // unresolvable column (no row scope)
		{`1 / 0 = 1`, false, true},    // runtime error
		{`'a' > 1`, false, true},      // incomparable
		{`not (1 = 1)`, false, false}, // negation
	}
	for _, c := range cases {
		got, err := evalPred(t, e, c.src)
		if (err != nil) != c.err {
			t.Errorf("%q: err = %v, want err=%v", c.src, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
	// Nil condition means IF TRUE (paper Section 3).
	if ok, err := e.EvalPredicate(nil); err != nil || !ok {
		t.Errorf("nil predicate: %v, %v", ok, err)
	}
}

func TestScalarFuncErrors(t *testing.T) {
	e := testEnv(t)
	bad := []string{
		`select abs() from emp`,
		`select abs(1, 2) from emp`,
		`select abs(name) from emp`,
		`select round('x') from emp`,
		`select upper(1) from emp`,
		`select lower(salary) from emp`,
		`select length(salary) from emp`,
		`select nullif(1) from emp`,
	}
	for _, src := range bad {
		if err := queryErr(t, e, src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
	// NULL propagation through scalar functions.
	res := mustQuery(t, e, `select abs(salary), round(salary), upper(nullif('a','a')), length(nullif('a','a'))
		from emp where name = 'sue'`)
	for i, v := range res.Rows[0] {
		if !v.IsNull() {
			t.Errorf("col %d: %v, want NULL", i, v)
		}
	}
	// ceil / ceiling aliases; int passthrough.
	res = mustQuery(t, e, `select ceiling(1.2), ceil(dept_no), round(dept_no), floor(dept_no) from emp where name = 'jane'`)
	if res.Rows[0][0].Float() != 2 || res.Rows[0][1].Int() != 1 {
		t.Errorf("ceil family: %v", res.Rows[0])
	}
}

func TestHashKeyNormalization(t *testing.T) {
	if _, ok := value.KeyNumeric(value.Null); ok {
		t.Error("NULL must not produce a key")
	}
	ik, _ := value.KeyNumeric(value.NewInt(3))
	fk, _ := value.KeyNumeric(value.NewFloat(3.0))
	if ik != fk {
		t.Errorf("3 and 3.0 float-image keys differ: %v vs %v", ik, fk)
	}
	sk, _ := value.KeyNumeric(value.NewString("3"))
	if sk == ik {
		t.Error("string '3' collides with number 3")
	}
	bt, _ := value.KeyNumeric(value.NewBool(true))
	bf, _ := value.KeyNumeric(value.NewBool(false))
	if bt == bf {
		t.Error("booleans collide")
	}
	// The exact keyspace keeps int64s above 2^53 distinct (the old string
	// keys collapsed them through float64), while the float-image keyspace
	// intentionally matches value.Compare's cross-kind conversion.
	const big = int64(1) << 53
	a, _ := value.KeyExact(value.NewInt(big))
	b, _ := value.KeyExact(value.NewInt(big + 1))
	if a == b {
		t.Error("exact keys collapse 2^53 and 2^53+1")
	}
	na, _ := value.KeyNumeric(value.NewInt(big))
	nb, _ := value.KeyNumeric(value.NewFloat(float64(big)))
	if na != nb {
		t.Error("float-image keys split 2^53 and its float64 image")
	}
	z, _ := value.KeyNumeric(value.NewFloat(0.0))
	nz, _ := value.KeyNumeric(value.NewFloat(math.Copysign(0, -1)))
	if z != nz {
		t.Error("0.0 and -0.0 keys differ (they compare equal)")
	}
}

func TestExprHasAggregateForms(t *testing.T) {
	with := []string{
		`sum(a)`,
		`1 + count(*)`,
		`-min(a)`,
		`max(a) is null`,
		`avg(a) between 1 and 2`,
		`upper(name) like coalesce(min(name), 'x')`,
		`count(*) in (1, 2)`,
		`sum(a) in (select b from t)`,
		`count(*) > all (select b from t)`,
		`coalesce(sum(a), 0)`,
		`case when count(*) > 1 then 1 else 0 end`,
		`case a when 1 then sum(b) end`,
	}
	for _, src := range with {
		e, err := sqlparse.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if !exprHasAggregate(e) {
			t.Errorf("aggregate not detected in %q", src)
		}
	}
	without := []string{
		`a + b`,
		`exists (select sum(x) from t)`, // aggregate belongs to the subquery
		`(select count(*) from t)`,
		`a in (select sum(b) from t)`,
		`upper(name)`,
		`case when a > 1 then b else c end`,
	}
	for _, src := range without {
		e, err := sqlparse.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if exprHasAggregate(e) {
			t.Errorf("false aggregate in %q", src)
		}
	}
}

func TestAggregateErrors(t *testing.T) {
	e := testEnv(t)
	bad := []string{
		`select sum(*) from emp`,
		`select min(name, salary) from emp`,
		`select max(salary) from emp group by dept_no having sum(name) > 0`,
	}
	for _, src := range bad {
		if err := queryErr(t, e, src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
	// min/max over strings works.
	res := mustQuery(t, e, `select min(name), max(name) from emp`)
	if res.Rows[0][0].Str() != "bill" || res.Rows[0][1].Str() != "sue" {
		t.Errorf("string min/max: %v", res.Rows[0])
	}
	// sum of ints stays int; avg of ints is float.
	res = mustQuery(t, e, `select sum(dept_no), avg(dept_no) from emp`)
	if res.Rows[0][0].Kind() != value.KindInt {
		t.Errorf("int sum kind: %v", res.Rows[0][0].Kind())
	}
	if res.Rows[0][1].Kind() != value.KindFloat {
		t.Errorf("int avg kind: %v", res.Rows[0][1].Kind())
	}
	// sum(distinct).
	res = mustQuery(t, e, `select sum(distinct dept_no) from emp`)
	if res.Rows[0][0].Int() != 6 {
		t.Errorf("sum distinct: %v", res.Rows[0][0])
	}
}

func TestBetweenAndLikeEdges(t *testing.T) {
	e := testEnv(t)
	res := mustQuery(t, e, `select name from emp where salary not between 0 and 50000 order by name`)
	if len(res.Rows) != 3 { // jane, mary, jim above 50k; sue NULL excluded
		t.Errorf("NOT BETWEEN: %v", res.Rows)
	}
	res = mustQuery(t, e, `select name from emp where name like 'j%' order by name`)
	if len(res.Rows) != 2 {
		t.Errorf("LIKE: %v", res.Rows)
	}
	res = mustQuery(t, e, `select name from emp where name not like '%e'`)
	// jane/sue end with e; mary, jim, bill, sam don't.
	if len(res.Rows) != 4 {
		t.Errorf("NOT LIKE: %v", res.Rows)
	}
}

func TestUnaryAndBoolErrors(t *testing.T) {
	e := testEnv(t)
	if err := queryErr(t, e, `select -name from emp`); err == nil {
		t.Error("negated string accepted")
	}
	if err := queryErr(t, e, `select not name from emp`); err == nil {
		t.Error("NOT string accepted")
	}
	if err := queryErr(t, e, `select name from emp where name and true`); err == nil {
		t.Error("string AND accepted")
	}
	// Short-circuit: (false AND error-expr) never evaluates the error.
	res := mustQuery(t, e, `select name from emp where 1 = 2 and 1 / 0 = 1`)
	if len(res.Rows) != 0 {
		t.Errorf("short-circuit AND: %v", res.Rows)
	}
	res = mustQuery(t, e, `select name from emp where 1 = 1 or 1 / 0 = 1`)
	if len(res.Rows) != 6 {
		t.Errorf("short-circuit OR: %v", res.Rows)
	}
}

// fixedErrSource forces a TransRows error path through a query.
type fixedErrSource struct{}

func (fixedErrSource) TransRows(kind sqlast.TransKind, table, column string) ([]TransRow, error) {
	return nil, errTrans
}

var errTrans = errFor("boom")

type errFor string

func (e errFor) Error() string { return string(e) }

func TestTransSourceErrorPropagates(t *testing.T) {
	e := testEnv(t)
	e.Trans = fixedErrSource{}
	if err := queryErr(t, e, `select * from inserted emp`); err == nil {
		t.Error("trans source error swallowed")
	}
}
