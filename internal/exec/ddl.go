package exec

import (
	"sopr/internal/catalog"
	"sopr/internal/sqlast"
)

// CreateTableSchema converts a parsed CREATE TABLE statement into a catalog
// schema.
func CreateTableSchema(ct *sqlast.CreateTable) (*catalog.Table, error) {
	cols := make([]catalog.Column, len(ct.Columns))
	for i, c := range ct.Columns {
		cols[i] = catalog.Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull}
	}
	return catalog.NewTable(ct.Name, cols)
}
