package exec

import (
	"fmt"
	"sort"

	"sopr/internal/sqlast"
	"sopr/internal/storage"
	"sopr/internal/value"
)

// DeletedTuple records one tuple removed by a delete operation: its handle
// and its values at the time of deletion.
type DeletedTuple struct {
	Handle storage.Handle
	OldRow storage.Row
}

// UpdatedTuple records one tuple changed by an update operation: its
// handle, pre-update values, and the indexes of the assigned columns.
// Following Section 2.1 of the paper, a tuple selected by an update belongs
// to the affected set even if the assigned values equal the old values.
type UpdatedTuple struct {
	Handle storage.Handle
	OldRow storage.Row
	Cols   []int
}

// OpResult is the affected set of one executed operation (Section 2.1):
// exactly one of Inserted, Deleted, Updated is populated.
type OpResult struct {
	Table    string
	Inserted []storage.Handle
	Deleted  []DeletedTuple
	Updated  []UpdatedTuple
}

// ExecOp executes a single data manipulation operation and returns its
// affected set. Errors leave any partial changes in place; the caller (the
// engine) rolls back the enclosing transaction.
func (e *Env) ExecOp(stmt sqlast.Statement) (*OpResult, error) {
	switch s := stmt.(type) {
	case *sqlast.Insert:
		return e.execInsert(s)
	case *sqlast.Delete:
		return e.execDelete(s)
	case *sqlast.Update:
		return e.execUpdate(s)
	default:
		return nil, fmt.Errorf("exec: %T is not a data manipulation operation", stmt)
	}
}

// columnTargets maps an optional column-name list to schema indexes.
func (e *Env) columnTargets(table string, columns []string) ([]int, int, error) {
	schema, err := e.lookupSchema(table)
	if err != nil {
		return nil, 0, err
	}
	if columns == nil {
		idx := make([]int, schema.NumColumns())
		for i := range idx {
			idx[i] = i
		}
		return idx, schema.NumColumns(), nil
	}
	idx := make([]int, len(columns))
	for i, c := range columns {
		j := schema.ColumnIndex(c)
		if j < 0 {
			return nil, 0, fmt.Errorf("exec: table %q has no column %q", table, c)
		}
		idx[i] = j
	}
	return idx, schema.NumColumns(), nil
}

func (e *Env) execInsert(s *sqlast.Insert) (*OpResult, error) {
	targets, width, err := e.columnTargets(s.Table, s.Columns)
	if err != nil {
		return nil, err
	}
	schema, err := e.lookupSchema(s.Table)
	if err != nil {
		return nil, err
	}
	res := &OpResult{Table: schema.Name}

	buildRow := func(vals storage.Row) (storage.Row, error) {
		if len(vals) != len(targets) {
			return nil, fmt.Errorf("exec: INSERT into %q expects %d values, got %d", s.Table, len(targets), len(vals))
		}
		full := make(storage.Row, width)
		for i := range full {
			full[i] = value.Null
		}
		for i, v := range vals {
			full[targets[i]] = v
		}
		return full, nil
	}

	// Gather all rows to insert before touching the table, so a
	// select-form insert reading its own target sees the pre-insert state.
	var rows []storage.Row
	if s.Query != nil {
		qres, err := e.evalSelect(s.Query, nil)
		if err != nil {
			return nil, err
		}
		for _, r := range qres.Rows {
			full, err := buildRow(r)
			if err != nil {
				return nil, err
			}
			rows = append(rows, full)
		}
	} else {
		sc := &scope{}
		for _, exprRow := range s.Rows {
			vals := make(storage.Row, len(exprRow))
			for i, ex := range exprRow {
				v, err := e.evalExpr(sc, ex)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			full, err := buildRow(vals)
			if err != nil {
				return nil, err
			}
			rows = append(rows, full)
		}
	}

	for _, r := range rows {
		h, err := e.Store.Insert(schema.Name, r)
		if err != nil {
			return nil, err
		}
		res.Inserted = append(res.Inserted, h)
	}
	return res, nil
}

// matchTuples scans the target table and returns the tuples satisfying the
// predicate (all tuples when the predicate is omitted — "where true",
// Section 2.1). The predicate is evaluated with the row bound under the
// statement's alias (or table name), and may contain embedded selects,
// which see the pre-operation state because nothing has been modified yet.
func (e *Env) matchTuples(table, alias string, where sqlast.Expr) ([]*storage.Tuple, error) {
	schema, err := e.lookupSchema(table)
	if err != nil {
		return nil, err
	}
	binding := alias
	if binding == "" {
		binding = schema.Name
	}
	b := &boundRow{binding: binding, table: schema.Name, cols: schema.ColumnNames()}
	sc := &scope{vars: []*boundRow{b}}
	var matched []*storage.Tuple
	keep := func(t *storage.Tuple) (bool, error) {
		if where == nil {
			return true, nil
		}
		b.row = t.Values
		b.handle = t.Handle
		v, err := e.evalExpr(sc, where)
		if err != nil {
			return false, err
		}
		tb, err := truth(v)
		if err != nil {
			return false, err
		}
		return tb.IsTrue(), nil
	}
	// Indexed access path: a sargable conjunct narrows the candidates; the
	// full predicate is still applied to each, in heap-scan order.
	if cands, ok, err := e.indexedMatches(schema, binding, where); err != nil {
		return nil, err
	} else if ok {
		for _, t := range cands {
			hit, err := keep(t)
			if err != nil {
				return nil, err
			}
			if hit {
				matched = append(matched, t)
			}
		}
		return matched, nil
	}
	var evalErr error
	scanErr := e.Store.Scan(schema.Name, func(t *storage.Tuple) bool {
		hit, err := keep(t)
		if err != nil {
			evalErr = err
			return false
		}
		if hit {
			matched = append(matched, t)
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	if evalErr != nil {
		return nil, evalErr
	}
	return matched, nil
}

func (e *Env) execDelete(s *sqlast.Delete) (*OpResult, error) {
	schema, err := e.lookupSchema(s.Table)
	if err != nil {
		return nil, err
	}
	matched, err := e.matchTuples(s.Table, s.Alias, s.Where)
	if err != nil {
		return nil, err
	}
	res := &OpResult{Table: schema.Name}
	for _, t := range matched {
		_, old, err := e.Store.Delete(t.Handle)
		if err != nil {
			return nil, err
		}
		res.Deleted = append(res.Deleted, DeletedTuple{Handle: t.Handle, OldRow: old})
	}
	return res, nil
}

func (e *Env) execUpdate(s *sqlast.Update) (*OpResult, error) {
	schema, err := e.lookupSchema(s.Table)
	if err != nil {
		return nil, err
	}
	// Resolve assignment targets.
	colIdx := make([]int, len(s.Set))
	for i, a := range s.Set {
		j := schema.ColumnIndex(a.Column)
		if j < 0 {
			return nil, fmt.Errorf("exec: table %q has no column %q", s.Table, a.Column)
		}
		colIdx[i] = j
	}
	matched, err := e.matchTuples(s.Table, s.Alias, s.Where)
	if err != nil {
		return nil, err
	}

	// Set-oriented semantics: evaluate every assignment against the
	// pre-update state before applying any change.
	binding := s.Alias
	if binding == "" {
		binding = schema.Name
	}
	b := &boundRow{binding: binding, table: schema.Name, cols: schema.ColumnNames()}
	sc := &scope{vars: []*boundRow{b}}
	type pending struct {
		handle storage.Handle
		assign map[int]value.Value
	}
	plans := make([]pending, 0, len(matched))
	for _, t := range matched {
		b.row = t.Values
		b.handle = t.Handle
		assign := make(map[int]value.Value, len(s.Set))
		for i, a := range s.Set {
			v, err := e.evalExpr(sc, a.Expr)
			if err != nil {
				return nil, err
			}
			assign[colIdx[i]] = v
		}
		plans = append(plans, pending{handle: t.Handle, assign: assign})
	}

	cols := append([]int(nil), colIdx...)
	sort.Ints(cols)
	res := &OpResult{Table: schema.Name}
	for _, p := range plans {
		_, old, err := e.Store.Update(p.handle, p.assign)
		if err != nil {
			return nil, err
		}
		res.Updated = append(res.Updated, UpdatedTuple{Handle: p.handle, OldRow: old, Cols: cols})
	}
	return res, nil
}
