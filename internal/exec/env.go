// Package exec is the query and DML executor: a tree-walking evaluator for
// the SQL dialect of the paper, over the storage engine. It supports
// arbitrarily complex predicates with embedded (and correlated) select
// operations, scalar and quantified subqueries, aggregates with GROUP
// BY/HAVING, and — crucially for the rule system — FROM-clause references
// to the paper's transition tables, resolved through a TransTableSource
// supplied by the rule engine.
package exec

import (
	"fmt"

	"sopr/internal/catalog"
	"sopr/internal/sqlast"
	"sopr/internal/storage"
	"sopr/internal/value"
)

// TransTableSource materializes transition tables (Section 3 of the paper)
// for the rule currently being evaluated. Rows use the base table's column
// order. The handle reported with each row identifies the underlying tuple
// (live for `inserted`/`new updated`, historical for `deleted`/`old
// updated`).
type TransTableSource interface {
	// TransRows returns the contents of the transition table of the given
	// kind for table (and, for updated-kind tables, column; column is ""
	// for whole-table forms).
	TransRows(kind sqlast.TransKind, table, column string) ([]TransRow, error)
}

// TransRow is one row of a materialized transition table.
type TransRow struct {
	Handle storage.Handle
	Values storage.Row
}

// SelectObserver is notified of tuples read by top-level query evaluation
// when select-triggered rules (Section 5.1) are enabled.
type SelectObserver interface {
	TupleSelected(table string, h storage.Handle)
}

// Store is the executor's window onto stored data: the methods evaluation
// and data manipulation need, satisfied by both the live *storage.Store
// (the write path, which sees in-transaction state) and the immutable
// *storage.Snapshot (the lock-free read path, whose mutating methods
// fail). The executor cannot tell the two apart — indexed and scanned
// access, catalog lookups, and DML all go through here.
type Store interface {
	Catalog() *catalog.Catalog
	Scan(table string, fn func(*storage.Tuple) bool) error
	IndexedLookup(table string, col int, vals ...value.Value) ([]*storage.Tuple, bool, error)
	HasIndex(table string, col int) bool
	// Count, ColumnStats and ClassifyProbe feed the cost-based planner
	// (plan.go, explain.go): table cardinality, per-column cardinality
	// statistics, and plan-time classification of an index probe
	// (including the 2^53 integer-keyspace fallback).
	Count(table string) (int, error)
	ColumnStats(table string, col int) (storage.ColStats, error)
	ClassifyProbe(table string, col int, vals ...value.Value) storage.ProbeClass
	Insert(table string, row storage.Row) (storage.Handle, error)
	Delete(h storage.Handle) (table string, old storage.Row, err error)
	Update(h storage.Handle, assign map[int]value.Value) (table string, old storage.Row, err error)
}

var (
	_ Store = (*storage.Store)(nil)
	_ Store = (*storage.Snapshot)(nil)
)

// Env carries everything expression evaluation needs: the store (live or
// snapshot), the optional transition-table source (inside rule
// conditions/actions), and the optional select observer.
//
// An Env is per-evaluation scratch state: every query gets a fresh one,
// and evaluation keeps all intermediate state (scopes, materialized
// relations, hash-join tables, aggregate groups) local to the call. That
// discipline is load-bearing for concurrency — the lock-free read path
// (sopr.SynchronizedDB) runs many Envs over published snapshots at once,
// so nothing here may write to the Store or to any package-level state.
// The only shared words the read path touches are the storage layer's
// atomic access-path counters.
type Env struct {
	Store    Store
	Trans    TransTableSource
	Observer SelectObserver
	// NoHashJoin disables the hash equi-join fast path (used by the
	// ablation benchmark; semantics are identical either way).
	NoHashJoin bool
	// NoIndex disables the secondary-index access path (see access.go),
	// forcing heap scans. Used by the differential tests and the ablation
	// benchmark; semantics are identical either way.
	NoIndex bool
	// NoPlanner disables the cost-based Volcano join planner (plan.go),
	// leaving only the legacy two-relation hash fast path. Ablation flag
	// for the differential tests and benchmarks; semantics are identical
	// either way.
	NoPlanner bool
	// JoinBuildBudget caps the build-side row count of a planned hash
	// join; larger build sides use a sort-merge join instead. 0 means the
	// default (defaultJoinBuildBudget).
	JoinBuildBudget int
	// Counters, when non-nil, receives planner telemetry (shared across
	// the engine's Envs; all fields are atomics).
	Counters *PlanCounters
}

// boundRow is one variable binding in a scope: the relation's binding name,
// its column names, the current row, and the underlying tuple handle (0 for
// synthetic rows such as projected subquery output).
type boundRow struct {
	binding string
	table   string // base table name ("" for derived)
	cols    []string
	row     storage.Row
	handle  storage.Handle
	// trans marks rows from transition tables: rule-local data whose reads
	// are not "selections" of the database (Section 5.1).
	trans bool
}

// scope is a lexical scope: the bindings of one query block. Scopes nest
// for correlated subqueries; resolution searches innermost-out.
type scope struct {
	parent *scope
	vars   []*boundRow
	// groupRows, when non-nil, marks an aggregate evaluation context:
	// aggregate functions range over these rows (each a full set of
	// bindings for this scope's FROM list).
	groupRows [][]*boundRow
}

// lookup resolves a column reference to (binding, column index).
func (s *scope) lookup(qualifier, column string) (*boundRow, int, error) {
	for sc := s; sc != nil; sc = sc.parent {
		var found *boundRow
		idx := -1
		for _, b := range sc.vars {
			if qualifier != "" && b.binding != qualifier {
				continue
			}
			for i, c := range b.cols {
				if c == column {
					if found != nil {
						return nil, 0, fmt.Errorf("exec: ambiguous column reference %q", refName(qualifier, column))
					}
					found = b
					idx = i
				}
			}
		}
		if found != nil {
			return found, idx, nil
		}
	}
	return nil, 0, fmt.Errorf("exec: unknown column %q", refName(qualifier, column))
}

func refName(q, c string) string {
	if q != "" {
		return q + "." + c
	}
	return c
}

// relation is a materialized input to a query block: a binding name, its
// columns, and its rows.
type relation struct {
	binding string
	table   string
	cols    []string
	rows    []TransRow
	trans   bool // transition table (see boundRow.trans)
}

// resolveTableRef materializes a FROM-clause entry.
func (e *Env) resolveTableRef(tr *sqlast.TableRef) (*relation, error) {
	if tr.Trans == sqlast.TransNone {
		schema, err := e.Store.Catalog().Lookup(tr.Table)
		if err != nil {
			return nil, err
		}
		rel := &relation{binding: tr.Binding(), table: schema.Name, cols: schema.ColumnNames()}
		err = e.Store.Scan(schema.Name, func(t *storage.Tuple) bool {
			rel.rows = append(rel.rows, TransRow{Handle: t.Handle, Values: t.Values})
			return true
		})
		if err != nil {
			return nil, err
		}
		return rel, nil
	}
	// Transition table.
	if e.Trans == nil {
		return nil, fmt.Errorf("exec: transition table %q referenced outside a rule", tr.String())
	}
	schema, err := e.Store.Catalog().Lookup(tr.Table)
	if err != nil {
		return nil, err
	}
	if tr.Column != "" && !schema.HasColumn(tr.Column) {
		return nil, fmt.Errorf("exec: table %q has no column %q", tr.Table, tr.Column)
	}
	rows, err := e.Trans.TransRows(tr.Trans, schema.Name, tr.Column)
	if err != nil {
		return nil, err
	}
	return &relation{binding: tr.Binding(), table: schema.Name, cols: schema.ColumnNames(), rows: rows, trans: true}, nil
}

// lookupSchema returns the catalog schema for a base table.
func (e *Env) lookupSchema(name string) (*catalog.Table, error) {
	return e.Store.Catalog().Lookup(name)
}

// observe reports a base-table tuple read, when select observation is on.
// Transition-table rows are rule-local data and are never observed.
func (e *Env) observe(b *boundRow) {
	if e.Observer != nil && !b.trans && b.handle != 0 && b.table != "" {
		e.Observer.TupleSelected(b.table, b.handle)
	}
}

// truth converts an evaluated value into a Tribool for predicate contexts:
// NULL is Unknown, booleans map directly, any other kind is an error.
func truth(v value.Value) (value.Tribool, error) {
	switch v.Kind() {
	case value.KindNull:
		return value.Unknown, nil
	case value.KindBool:
		return value.FromBool(v.Bool()), nil
	default:
		return value.Unknown, fmt.Errorf("exec: predicate evaluated to non-boolean %s", v)
	}
}
