package exec

import (
	"fmt"
	"math"
	"strings"

	"sopr/internal/sqlast"
	"sopr/internal/value"
)

// aggregateNames is the set of aggregate functions.
var aggregateNames = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

// evalExpr evaluates an expression in a scope. Predicate-valued expressions
// yield KindBool or NULL (for Unknown).
func (e *Env) evalExpr(sc *scope, expr sqlast.Expr) (value.Value, error) {
	switch x := expr.(type) {
	case *sqlast.Literal:
		return x.Val, nil

	case *sqlast.ColumnRef:
		b, idx, err := sc.lookup(x.Qualifier, x.Column)
		if err != nil {
			return value.Null, err
		}
		return b.row[idx], nil

	case *sqlast.Unary:
		v, err := e.evalExpr(sc, x.X)
		if err != nil {
			return value.Null, err
		}
		if x.Op == sqlast.OpNeg {
			return value.Neg(v)
		}
		t, err := truth(v)
		if err != nil {
			return value.Null, err
		}
		return triboolValue(t.Not()), nil

	case *sqlast.Binary:
		return e.evalBinary(sc, x)

	case *sqlast.IsNull:
		v, err := e.evalExpr(sc, x.X)
		if err != nil {
			return value.Null, err
		}
		return value.NewBool(v.IsNull() != x.Negate), nil

	case *sqlast.Between:
		v, err := e.evalExpr(sc, x.X)
		if err != nil {
			return value.Null, err
		}
		lo, err := e.evalExpr(sc, x.Lo)
		if err != nil {
			return value.Null, err
		}
		hi, err := e.evalExpr(sc, x.Hi)
		if err != nil {
			return value.Null, err
		}
		ge, err := compareTri(v, lo, sqlast.OpGe)
		if err != nil {
			return value.Null, err
		}
		le, err := compareTri(v, hi, sqlast.OpLe)
		if err != nil {
			return value.Null, err
		}
		t := ge.And(le)
		if x.Negate {
			t = t.Not()
		}
		return triboolValue(t), nil

	case *sqlast.Like:
		v, err := e.evalExpr(sc, x.X)
		if err != nil {
			return value.Null, err
		}
		pat, err := e.evalExpr(sc, x.Pattern)
		if err != nil {
			return value.Null, err
		}
		t := value.Like(v, pat)
		if x.Negate {
			t = t.Not()
		}
		return triboolValue(t), nil

	case *sqlast.InList:
		v, err := e.evalExpr(sc, x.X)
		if err != nil {
			return value.Null, err
		}
		t := value.False
		if v.IsNull() {
			t = value.Unknown
		} else {
			sawNull := false
			for _, el := range x.List {
				ev, err := e.evalExpr(sc, el)
				if err != nil {
					return value.Null, err
				}
				if ev.IsNull() {
					sawNull = true
					continue
				}
				if cmp, ok := value.Compare(v, ev); ok && cmp == 0 {
					t = value.True
					break
				}
			}
			if t != value.True && sawNull {
				t = value.Unknown
			}
		}
		if x.Negate {
			t = t.Not()
		}
		return triboolValue(t), nil

	case *sqlast.InSelect:
		v, err := e.evalExpr(sc, x.X)
		if err != nil {
			return value.Null, err
		}
		res, err := e.evalSelect(x.Sub, sc)
		if err != nil {
			return value.Null, err
		}
		if len(res.Columns) != 1 {
			return value.Null, fmt.Errorf("exec: IN subquery must return one column, got %d", len(res.Columns))
		}
		t := value.False
		if v.IsNull() {
			if len(res.Rows) > 0 {
				t = value.Unknown
			}
		} else {
			sawNull := false
			for _, row := range res.Rows {
				if row[0].IsNull() {
					sawNull = true
					continue
				}
				if cmp, ok := value.Compare(v, row[0]); ok && cmp == 0 {
					t = value.True
					break
				}
			}
			if t != value.True && sawNull {
				t = value.Unknown
			}
		}
		if x.Negate {
			t = t.Not()
		}
		return triboolValue(t), nil

	case *sqlast.Exists:
		res, err := e.evalSelect(x.Sub, sc)
		if err != nil {
			return value.Null, err
		}
		return value.NewBool((len(res.Rows) > 0) != x.Negate), nil

	case *sqlast.ScalarSub:
		res, err := e.evalSelect(x.Sub, sc)
		if err != nil {
			return value.Null, err
		}
		if len(res.Columns) != 1 {
			return value.Null, fmt.Errorf("exec: scalar subquery must return one column, got %d", len(res.Columns))
		}
		switch len(res.Rows) {
		case 0:
			return value.Null, nil
		case 1:
			return res.Rows[0][0], nil
		default:
			return value.Null, fmt.Errorf("exec: scalar subquery returned %d rows", len(res.Rows))
		}

	case *sqlast.SubCompare:
		v, err := e.evalExpr(sc, x.X)
		if err != nil {
			return value.Null, err
		}
		res, err := e.evalSelect(x.Sub, sc)
		if err != nil {
			return value.Null, err
		}
		if len(res.Columns) != 1 {
			return value.Null, fmt.Errorf("exec: quantified subquery must return one column, got %d", len(res.Columns))
		}
		var t value.Tribool
		if x.Quant == sqlast.QuantAny {
			t = value.False
			for _, row := range res.Rows {
				c, err := compareTri(v, row[0], x.Op)
				if err != nil {
					return value.Null, err
				}
				t = t.Or(c)
				if t == value.True {
					break
				}
			}
		} else { // ALL
			t = value.True
			for _, row := range res.Rows {
				c, err := compareTri(v, row[0], x.Op)
				if err != nil {
					return value.Null, err
				}
				t = t.And(c)
				if t == value.False {
					break
				}
			}
		}
		return triboolValue(t), nil

	case *sqlast.FuncCall:
		name := strings.ToLower(x.Name)
		if aggregateNames[name] {
			return e.evalAggregate(sc, name, x)
		}
		return e.evalScalarFunc(sc, name, x)

	case *sqlast.Case:
		return e.evalCase(sc, x)

	default:
		return value.Null, fmt.Errorf("exec: unsupported expression %T", expr)
	}
}

// triboolValue maps a Tribool to a SQL value: Unknown becomes NULL.
func triboolValue(t value.Tribool) value.Value {
	switch t {
	case value.True:
		return value.NewBool(true)
	case value.False:
		return value.NewBool(false)
	default:
		return value.Null
	}
}

// compareTri applies a comparison operator with three-valued semantics.
func compareTri(a, b value.Value, op sqlast.BinOp) (value.Tribool, error) {
	if a.IsNull() || b.IsNull() {
		return value.Unknown, nil
	}
	cmp, ok := value.Compare(a, b)
	if !ok {
		return value.Unknown, fmt.Errorf("exec: cannot compare %s with %s", a.Kind(), b.Kind())
	}
	switch op {
	case sqlast.OpEq:
		return value.FromBool(cmp == 0), nil
	case sqlast.OpNe:
		return value.FromBool(cmp != 0), nil
	case sqlast.OpLt:
		return value.FromBool(cmp < 0), nil
	case sqlast.OpLe:
		return value.FromBool(cmp <= 0), nil
	case sqlast.OpGt:
		return value.FromBool(cmp > 0), nil
	case sqlast.OpGe:
		return value.FromBool(cmp >= 0), nil
	default:
		return value.Unknown, fmt.Errorf("exec: %v is not a comparison", op)
	}
}

var arithOps = map[sqlast.BinOp]value.ArithOp{
	sqlast.OpAdd: value.OpAdd,
	sqlast.OpSub: value.OpSub,
	sqlast.OpMul: value.OpMul,
	sqlast.OpDiv: value.OpDiv,
	sqlast.OpMod: value.OpMod,
}

func (e *Env) evalBinary(sc *scope, x *sqlast.Binary) (value.Value, error) {
	switch x.Op {
	case sqlast.OpAnd, sqlast.OpOr:
		lv, err := e.evalExpr(sc, x.L)
		if err != nil {
			return value.Null, err
		}
		lt, err := truth(lv)
		if err != nil {
			return value.Null, err
		}
		// Short-circuit when the left side is decisive.
		if x.Op == sqlast.OpAnd && lt == value.False {
			return value.NewBool(false), nil
		}
		if x.Op == sqlast.OpOr && lt == value.True {
			return value.NewBool(true), nil
		}
		rv, err := e.evalExpr(sc, x.R)
		if err != nil {
			return value.Null, err
		}
		rt, err := truth(rv)
		if err != nil {
			return value.Null, err
		}
		if x.Op == sqlast.OpAnd {
			return triboolValue(lt.And(rt)), nil
		}
		return triboolValue(lt.Or(rt)), nil

	case sqlast.OpEq, sqlast.OpNe, sqlast.OpLt, sqlast.OpLe, sqlast.OpGt, sqlast.OpGe:
		lv, err := e.evalExpr(sc, x.L)
		if err != nil {
			return value.Null, err
		}
		rv, err := e.evalExpr(sc, x.R)
		if err != nil {
			return value.Null, err
		}
		t, err := compareTri(lv, rv, x.Op)
		if err != nil {
			return value.Null, err
		}
		return triboolValue(t), nil

	default:
		lv, err := e.evalExpr(sc, x.L)
		if err != nil {
			return value.Null, err
		}
		rv, err := e.evalExpr(sc, x.R)
		if err != nil {
			return value.Null, err
		}
		return value.Arith(arithOps[x.Op], lv, rv)
	}
}

// evalAggregate computes an aggregate over the scope's group rows.
func (e *Env) evalAggregate(sc *scope, name string, x *sqlast.FuncCall) (value.Value, error) {
	// Find the nearest enclosing scope with a group context.
	gsc := sc
	for gsc != nil && gsc.groupRows == nil {
		gsc = gsc.parent
	}
	if gsc == nil {
		return value.Null, fmt.Errorf("exec: aggregate %s used outside an aggregate query", strings.ToUpper(name))
	}
	if x.Star {
		if name != "count" {
			return value.Null, fmt.Errorf("exec: %s(*) is not valid", strings.ToUpper(name))
		}
		return value.NewInt(int64(len(gsc.groupRows))), nil
	}
	if len(x.Args) != 1 {
		return value.Null, fmt.Errorf("exec: aggregate %s takes one argument", strings.ToUpper(name))
	}

	// Evaluate the argument once per group row, with this scope's bindings
	// temporarily replaced. The group context is cleared during argument
	// evaluation so nested aggregates are rejected.
	var vals []value.Value
	saveVars, saveGroup := gsc.vars, gsc.groupRows
	gsc.groupRows = nil
	var evalErr error
	for _, rowSet := range saveGroup {
		gsc.vars = rowSet
		v, err := e.evalExpr(sc, x.Args[0])
		if err != nil {
			evalErr = err
			break
		}
		if !v.IsNull() {
			vals = append(vals, v)
		}
	}
	gsc.vars, gsc.groupRows = saveVars, saveGroup
	if evalErr != nil {
		return value.Null, evalErr
	}

	if x.Distinct {
		vals = distinctValues(vals)
	}
	switch name {
	case "count":
		return value.NewInt(int64(len(vals))), nil
	case "sum", "avg":
		if len(vals) == 0 {
			return value.Null, nil
		}
		sumI := int64(0)
		sumF := 0.0
		allInt := true
		for _, v := range vals {
			switch v.Kind() {
			case value.KindInt:
				sumI += v.Int()
				sumF += float64(v.Int())
			case value.KindFloat:
				allInt = false
				sumF += v.Float()
			default:
				return value.Null, fmt.Errorf("exec: %s over non-numeric value %s", strings.ToUpper(name), v)
			}
		}
		if name == "avg" {
			return value.NewFloat(sumF / float64(len(vals))), nil
		}
		if allInt {
			return value.NewInt(sumI), nil
		}
		return value.NewFloat(sumF), nil
	case "min", "max":
		if len(vals) == 0 {
			return value.Null, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			cmp, ok := value.Compare(v, best)
			if !ok {
				return value.Null, fmt.Errorf("exec: %s over incomparable values", strings.ToUpper(name))
			}
			if (name == "min" && cmp < 0) || (name == "max" && cmp > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return value.Null, fmt.Errorf("exec: unknown aggregate %s", name)
	}
}

func distinctValues(vals []value.Value) []value.Value {
	var out []value.Value
	for _, v := range vals {
		dup := false
		for _, w := range out {
			if v.Equal(w) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	return out
}

// evalScalarFunc evaluates the built-in scalar functions.
func (e *Env) evalScalarFunc(sc *scope, name string, x *sqlast.FuncCall) (value.Value, error) {
	args := make([]value.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := e.evalExpr(sc, a)
		if err != nil {
			return value.Null, err
		}
		args[i] = v
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("exec: %s takes %d argument(s), got %d", strings.ToUpper(name), n, len(args))
		}
		return nil
	}
	switch name {
	case "abs":
		if err := need(1); err != nil {
			return value.Null, err
		}
		switch args[0].Kind() {
		case value.KindNull:
			return value.Null, nil
		case value.KindInt:
			i := args[0].Int()
			if i < 0 {
				i = -i
			}
			return value.NewInt(i), nil
		case value.KindFloat:
			return value.NewFloat(math.Abs(args[0].Float())), nil
		default:
			return value.Null, fmt.Errorf("exec: ABS of non-numeric %s", args[0])
		}
	case "round", "floor", "ceil", "ceiling":
		if err := need(1); err != nil {
			return value.Null, err
		}
		switch args[0].Kind() {
		case value.KindNull:
			return value.Null, nil
		case value.KindInt:
			return args[0], nil
		case value.KindFloat:
			f := args[0].Float()
			switch name {
			case "round":
				return value.NewFloat(math.Round(f)), nil
			case "floor":
				return value.NewFloat(math.Floor(f)), nil
			default:
				return value.NewFloat(math.Ceil(f)), nil
			}
		default:
			return value.Null, fmt.Errorf("exec: %s of non-numeric %s", strings.ToUpper(name), args[0])
		}
	case "upper", "lower":
		if err := need(1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		if args[0].Kind() != value.KindString {
			return value.Null, fmt.Errorf("exec: %s of non-string %s", strings.ToUpper(name), args[0])
		}
		if name == "upper" {
			return value.NewString(strings.ToUpper(args[0].Str())), nil
		}
		return value.NewString(strings.ToLower(args[0].Str())), nil
	case "length":
		if err := need(1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		if args[0].Kind() != value.KindString {
			return value.Null, fmt.Errorf("exec: LENGTH of non-string %s", args[0])
		}
		return value.NewInt(int64(len(args[0].Str()))), nil
	case "coalesce":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return value.Null, nil
	case "nullif":
		if err := need(2); err != nil {
			return value.Null, err
		}
		if cmp, ok := value.Compare(args[0], args[1]); ok && cmp == 0 {
			return value.Null, nil
		}
		return args[0], nil
	default:
		return value.Null, fmt.Errorf("exec: unknown function %q", name)
	}
}

// evalCase evaluates a CASE expression. A simple CASE (with operand)
// matches arms by equality (NULL operands match nothing); a searched CASE
// takes the first arm whose condition is True.
func (e *Env) evalCase(sc *scope, x *sqlast.Case) (value.Value, error) {
	var operand value.Value
	if x.Operand != nil {
		v, err := e.evalExpr(sc, x.Operand)
		if err != nil {
			return value.Null, err
		}
		operand = v
	}
	for _, w := range x.Whens {
		cv, err := e.evalExpr(sc, w.Cond)
		if err != nil {
			return value.Null, err
		}
		var hit bool
		if x.Operand != nil {
			t, err := compareTri(operand, cv, sqlast.OpEq)
			if err != nil {
				return value.Null, err
			}
			hit = t.IsTrue()
		} else {
			t, err := truth(cv)
			if err != nil {
				return value.Null, err
			}
			hit = t.IsTrue()
		}
		if hit {
			return e.evalExpr(sc, w.Result)
		}
	}
	if x.Else != nil {
		return e.evalExpr(sc, x.Else)
	}
	return value.Null, nil
}

// exprHasAggregate reports whether the expression contains an aggregate
// call not nested inside a subquery (subqueries get their own contexts).
func exprHasAggregate(expr sqlast.Expr) bool {
	switch x := expr.(type) {
	case nil:
		return false
	case *sqlast.Literal, *sqlast.ColumnRef, *sqlast.Exists, *sqlast.ScalarSub:
		return false
	case *sqlast.Unary:
		return exprHasAggregate(x.X)
	case *sqlast.Binary:
		return exprHasAggregate(x.L) || exprHasAggregate(x.R)
	case *sqlast.IsNull:
		return exprHasAggregate(x.X)
	case *sqlast.Between:
		return exprHasAggregate(x.X) || exprHasAggregate(x.Lo) || exprHasAggregate(x.Hi)
	case *sqlast.Like:
		return exprHasAggregate(x.X) || exprHasAggregate(x.Pattern)
	case *sqlast.InList:
		if exprHasAggregate(x.X) {
			return true
		}
		for _, el := range x.List {
			if exprHasAggregate(el) {
				return true
			}
		}
		return false
	case *sqlast.InSelect:
		return exprHasAggregate(x.X)
	case *sqlast.SubCompare:
		return exprHasAggregate(x.X)
	case *sqlast.FuncCall:
		if aggregateNames[strings.ToLower(x.Name)] {
			return true
		}
		for _, a := range x.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
		return false
	case *sqlast.Case:
		if exprHasAggregate(x.Operand) || exprHasAggregate(x.Else) {
			return true
		}
		for _, w := range x.Whens {
			if exprHasAggregate(w.Cond) || exprHasAggregate(w.Result) {
				return true
			}
		}
		return false
	default:
		return false
	}
}
