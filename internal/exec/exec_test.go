package exec

import (
	"strings"
	"testing"

	"sopr/internal/sqlast"
	"sopr/internal/sqlparse"
	"sopr/internal/storage"
	"sopr/internal/value"
)

// testEnv builds a store with the paper's emp/dept schema plus sample data.
func testEnv(t *testing.T) *Env {
	t.Helper()
	e := &Env{Store: storage.New()}
	ddl := []string{
		`create table emp (name varchar, emp_no int not null, salary float, dept_no int)`,
		`create table dept (dept_no int, mgr_no int)`,
	}
	for _, src := range ddl {
		mustExecDDL(t, e, src)
	}
	dml := []string{
		`insert into emp values ('jane', 1, 100000, 1), ('mary', 2, 70000, 1),
			('jim', 3, 60000, 2), ('bill', 4, 25000, 2), ('sam', 5, 40000, 3), ('sue', 6, NULL, 3)`,
		`insert into dept values (1, 1), (2, 2), (3, 3)`,
	}
	for _, src := range dml {
		mustOp(t, e, src)
	}
	return e
}

func mustExecDDL(t *testing.T, e *Env, src string) {
	t.Helper()
	st, err := sqlparse.ParseStatement(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	tab, err := CreateTableSchema(st.(*sqlast.CreateTable))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Store.(*storage.Store).CreateTable(tab); err != nil {
		t.Fatal(err)
	}
}

func mustOp(t *testing.T, e *Env, src string) *OpResult {
	t.Helper()
	st, err := sqlparse.ParseStatement(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	res, err := e.ExecOp(st)
	if err != nil {
		t.Fatalf("exec %q: %v", src, err)
	}
	return res
}

func mustQuery(t *testing.T, e *Env, src string) *Result {
	t.Helper()
	st, err := sqlparse.ParseStatement(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	res, err := e.Query(st.(*sqlast.Select))
	if err != nil {
		t.Fatalf("query %q: %v", src, err)
	}
	return res
}

func queryErr(t *testing.T, e *Env, src string) error {
	t.Helper()
	st, err := sqlparse.ParseStatement(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	_, err = e.Query(st.(*sqlast.Select))
	return err
}

func TestSimpleSelect(t *testing.T) {
	e := testEnv(t)
	res := mustQuery(t, e, `select name, salary from emp where dept_no = 1 order by name`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Columns[0] != "name" || res.Columns[1] != "salary" {
		t.Errorf("columns = %v", res.Columns)
	}
	if res.Rows[0][0].Str() != "jane" || res.Rows[1][0].Str() != "mary" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestSelectStar(t *testing.T) {
	e := testEnv(t)
	res := mustQuery(t, e, `select * from dept order by dept_no`)
	if len(res.Columns) != 2 || len(res.Rows) != 3 {
		t.Fatalf("star: %v / %d rows", res.Columns, len(res.Rows))
	}
	res = mustQuery(t, e, `select e.*, d.mgr_no from emp e, dept d where e.dept_no = d.dept_no and e.name = 'jane'`)
	if len(res.Columns) != 5 || res.Rows[0][4].Int() != 1 {
		t.Fatalf("qualified star: %v %v", res.Columns, res.Rows)
	}
}

func TestWhereThreeValuedLogic(t *testing.T) {
	e := testEnv(t)
	// sue has NULL salary: excluded by both salary > 0 and NOT(salary > 0).
	if n := len(mustQuery(t, e, `select name from emp where salary > 0`).Rows); n != 5 {
		t.Errorf("salary > 0: %d rows, want 5", n)
	}
	if n := len(mustQuery(t, e, `select name from emp where not salary > 0`).Rows); n != 0 {
		t.Errorf("NOT salary > 0: %d rows, want 0", n)
	}
	if n := len(mustQuery(t, e, `select name from emp where salary is null`).Rows); n != 1 {
		t.Errorf("IS NULL: %d rows, want 1", n)
	}
	if n := len(mustQuery(t, e, `select name from emp where salary is not null`).Rows); n != 5 {
		t.Errorf("IS NOT NULL: %d rows, want 5", n)
	}
}

func TestJoin(t *testing.T) {
	e := testEnv(t)
	res := mustQuery(t, e, `select e.name, d.mgr_no from emp e, dept d
		where e.dept_no = d.dept_no order by e.name`)
	if len(res.Rows) != 6 {
		t.Fatalf("join rows = %d", len(res.Rows))
	}
	// Self-join.
	res = mustQuery(t, e, `select e1.name, e2.name from emp e1, emp e2
		where e1.dept_no = e2.dept_no and e1.emp_no < e2.emp_no order by e1.name`)
	if len(res.Rows) != 3 {
		t.Fatalf("self-join rows = %d, want 3", len(res.Rows))
	}
}

func TestAggregates(t *testing.T) {
	e := testEnv(t)
	res := mustQuery(t, e, `select count(*), count(salary), sum(salary), avg(salary), min(salary), max(salary) from emp`)
	row := res.Rows[0]
	if row[0].Int() != 6 || row[1].Int() != 5 {
		t.Errorf("counts: %v", row)
	}
	if row[2].Float() != 295000 {
		t.Errorf("sum: %v", row[2])
	}
	if row[3].Float() != 59000 {
		t.Errorf("avg ignores NULLs: %v", row[3])
	}
	if row[4].Float() != 25000 || row[5].Float() != 100000 {
		t.Errorf("min/max: %v %v", row[4], row[5])
	}
}

func TestAggregateEmptyTable(t *testing.T) {
	e := testEnv(t)
	mustOp(t, e, `delete from emp`)
	res := mustQuery(t, e, `select count(*), sum(salary), avg(salary), min(salary) from emp`)
	row := res.Rows[0]
	if row[0].Int() != 0 {
		t.Errorf("count over empty: %v", row[0])
	}
	for i := 1; i < 4; i++ {
		if !row[i].IsNull() {
			t.Errorf("aggregate %d over empty should be NULL: %v", i, row[i])
		}
	}
}

func TestGroupByHaving(t *testing.T) {
	e := testEnv(t)
	res := mustQuery(t, e, `select dept_no, count(*) n, sum(salary) total from emp
		group by dept_no order by dept_no`)
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	if res.Rows[0][1].Int() != 2 || res.Rows[0][2].Float() != 170000 {
		t.Errorf("dept 1: %v", res.Rows[0])
	}
	if res.Rows[2][1].Int() != 2 || res.Rows[2][2].Float() != 40000 {
		t.Errorf("dept 3 (NULL salary ignored in sum): %v", res.Rows[2])
	}
	res = mustQuery(t, e, `select dept_no from emp group by dept_no having count(*) > 1 and sum(salary) > 50000 order by dept_no`)
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 1 || res.Rows[1][0].Int() != 2 {
		t.Errorf("having: %v", res.Rows)
	}
}

func TestCountDistinct(t *testing.T) {
	e := testEnv(t)
	res := mustQuery(t, e, `select count(distinct dept_no) from emp`)
	if res.Rows[0][0].Int() != 3 {
		t.Errorf("count distinct: %v", res.Rows[0][0])
	}
}

func TestDistinctAndOrderBy(t *testing.T) {
	e := testEnv(t)
	res := mustQuery(t, e, `select distinct dept_no from emp order by dept_no desc`)
	if len(res.Rows) != 3 || res.Rows[0][0].Int() != 3 || res.Rows[2][0].Int() != 1 {
		t.Errorf("distinct+order: %v", res.Rows)
	}
	// ORDER BY alias.
	res = mustQuery(t, e, `select name, salary * 2 AS double_sal from emp where salary is not null order by double_sal desc`)
	if res.Rows[0][0].Str() != "jane" {
		t.Errorf("order by alias: %v", res.Rows)
	}
	// NULLs sort first ascending.
	res = mustQuery(t, e, `select name from emp order by salary`)
	if res.Rows[0][0].Str() != "sue" {
		t.Errorf("NULL first: %v", res.Rows)
	}
}

func TestOrderByOrdinalAndAggregate(t *testing.T) {
	e := testEnv(t)
	// ORDER BY 2 sorts by the second output column.
	res := mustQuery(t, e, `select name, salary from emp where salary is not null order by 2 desc`)
	if res.Rows[0][0].Str() != "jane" || res.Rows[4][0].Str() != "bill" {
		t.Errorf("ordinal order: %v", res.Rows)
	}
	// Out-of-range ordinals error.
	if err := queryErr(t, e, `select name from emp order by 2`); err == nil {
		t.Error("out-of-range ordinal accepted")
	}
	if err := queryErr(t, e, `select name from emp order by 0`); err == nil {
		t.Error("zero ordinal accepted")
	}
	// Aggregates in ORDER BY of a grouped query.
	res = mustQuery(t, e, `select dept_no, count(*) from emp group by dept_no order by count(*) desc, dept_no`)
	if len(res.Rows) != 3 || res.Rows[0][1].Int() != 2 {
		t.Errorf("aggregate order: %v", res.Rows)
	}
}

func TestSubqueries(t *testing.T) {
	e := testEnv(t)
	// IN subquery.
	res := mustQuery(t, e, `select name from emp where dept_no in (select dept_no from dept where mgr_no > 1) order by name`)
	if len(res.Rows) != 4 {
		t.Errorf("IN: %d rows", len(res.Rows))
	}
	// Scalar subquery.
	// avg over non-NULL salaries is 59000, so jane, mary and jim qualify.
	res = mustQuery(t, e, `select name from emp where salary > (select avg(salary) from emp)`)
	if len(res.Rows) != 3 {
		t.Errorf("scalar sub: %d rows, want 3 (jane, mary, jim)", len(res.Rows))
	}
	// Correlated subquery (paper Example 3.3 pattern).
	res = mustQuery(t, e, `select name from emp e1
		where salary > 1.4 * (select avg(salary) from emp e2 where e2.dept_no = e1.dept_no)`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "jim" {
		t.Errorf("correlated: %v", res.Rows)
	}
	// EXISTS / NOT EXISTS.
	res = mustQuery(t, e, `select dept_no from dept d where exists (select * from emp where dept_no = d.dept_no and salary > 90000)`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Errorf("exists: %v", res.Rows)
	}
	res = mustQuery(t, e, `select dept_no from dept d where not exists (select * from emp where dept_no = d.dept_no and salary > 90000) order by dept_no`)
	if len(res.Rows) != 2 {
		t.Errorf("not exists: %v", res.Rows)
	}
	// Quantified comparison.
	res = mustQuery(t, e, `select name from emp where salary >= all (select salary from emp where salary is not null)`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "jane" {
		t.Errorf("ALL: %v", res.Rows)
	}
	// Everyone below 100000 qualifies; jane (=100000) and sue (NULL) do not.
	res = mustQuery(t, e, `select name from emp where salary < any (select salary from emp where dept_no = 1) order by name`)
	if len(res.Rows) != 4 {
		t.Errorf("ANY: %d rows, want 4", len(res.Rows))
	}
}

func TestInNullSemantics(t *testing.T) {
	e := testEnv(t)
	// 25000 NOT IN (salaries incl. NULL): bill's salary matches, others get
	// Unknown because of the NULL → excluded.
	res := mustQuery(t, e, `select name from emp where salary not in (select salary from emp where dept_no = 3)`)
	if len(res.Rows) != 0 {
		t.Errorf("NOT IN with NULL in list must be empty, got %v", res.Rows)
	}
	res = mustQuery(t, e, `select name from emp where salary in (select salary from emp where dept_no = 3)`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "sam" {
		t.Errorf("IN with NULL in list: %v", res.Rows)
	}
	// IN literal list.
	res = mustQuery(t, e, `select name from emp where dept_no in (1, 3) order by name`)
	if len(res.Rows) != 4 {
		t.Errorf("IN list: %d", len(res.Rows))
	}
}

func TestScalarFunctions(t *testing.T) {
	e := testEnv(t)
	res := mustQuery(t, e, `select upper(name), length(name), abs(0 - salary), coalesce(salary, 0), nullif(dept_no, 1) from emp where name = 'jane'`)
	row := res.Rows[0]
	if row[0].Str() != "JANE" || row[1].Int() != 4 || row[2].Float() != 100000 ||
		row[3].Float() != 100000 || !row[4].IsNull() {
		t.Errorf("scalar funcs: %v", row)
	}
	res = mustQuery(t, e, `select coalesce(salary, -1) from emp where name = 'sue'`)
	if res.Rows[0][0].Int() != -1 {
		t.Errorf("coalesce null: %v", res.Rows[0][0])
	}
	res = mustQuery(t, e, `select round(2.5), floor(2.7), ceil(2.1), lower('AbC')`)
	row = res.Rows[0]
	if row[0].Float() != 3 || row[1].Float() != 2 || row[2].Float() != 3 || row[3].Str() != "abc" {
		t.Errorf("math/string funcs: %v", row)
	}
}

func TestCaseExpressions(t *testing.T) {
	e := testEnv(t)
	// Searched CASE with NULL falling to ELSE.
	res := mustQuery(t, e, `select name,
		case when salary >= 70000 then 'high'
		     when salary >= 40000 then 'mid'
		     else 'low-or-unknown' end AS band
		from emp order by emp_no`)
	want := []string{"high", "high", "mid", "low-or-unknown", "mid", "low-or-unknown"}
	for i, w := range want {
		if got := res.Rows[i][1].Str(); got != w {
			t.Errorf("row %d band = %q, want %q", i, got, w)
		}
	}
	// Simple CASE; no ELSE → NULL.
	res = mustQuery(t, e, `select case dept_no when 1 then 'eng' when 2 then 'ops' end from emp order by emp_no`)
	if res.Rows[0][0].Str() != "eng" || res.Rows[2][0].Str() != "ops" || !res.Rows[4][0].IsNull() {
		t.Errorf("simple case: %v", res.Rows)
	}
	// CASE with aggregates inside an aggregate query.
	res = mustQuery(t, e, `select case when count(*) > 3 then 'many' else 'few' end from emp`)
	if res.Rows[0][0].Str() != "many" {
		t.Errorf("aggregate case: %v", res.Rows)
	}
	// CASE in UPDATE SET (conditional assignment).
	mustOp(t, e, `update emp set salary = case when salary is null then 0 else salary end`)
	res = mustQuery(t, e, `select count(*) from emp where salary is null`)
	if res.Rows[0][0].Int() != 0 {
		t.Errorf("case in update: %v", res.Rows)
	}
	// Error inside an arm propagates.
	if err := queryErr(t, e, `select case when salary > 0 then 1/0 else 0 end from emp`); err == nil {
		t.Error("arm error swallowed")
	}
	if err := queryErr(t, e, `select case when name then 1 else 0 end from emp`); err == nil {
		t.Error("non-boolean searched condition accepted")
	}
}

func TestSelectNoFrom(t *testing.T) {
	e := testEnv(t)
	res := mustQuery(t, e, `select 1 + 2, 'x'`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 3 {
		t.Errorf("no-from: %v", res.Rows)
	}
}

func TestQueryErrors(t *testing.T) {
	e := testEnv(t)
	bad := []string{
		`select * from nosuch`,
		`select nosuch from emp`,
		`select dept_no from emp, dept`, // ambiguous
		`select * from emp, emp`,        // duplicate binding
		`select e.x from emp e`,
		`select name from emp where salary`,        // non-boolean predicate
		`select name from emp where name > salary`, // incomparable
		`select sum(name) from emp`,
		`select sum(salary, dept_no) from emp`,
		`select avg(*) from emp`,
		`select max(sum(salary)) from emp`, // nested aggregate
		`select nosuchfunc(1)`,
		`select name from emp where dept_no in (select * from dept)`,     // multi-col IN
		`select name from emp where salary > (select * from dept)`,       // multi-col scalar
		`select name from emp where salary > (select dept_no from dept)`, // multi-row scalar
		`select q.* from emp e`,
		`select upper(1) from emp`,
		`select abs('x') from emp`,
		`select length(1) from emp`,
		`select name from emp order by nosuch`,
		`select name from emp where salary > all (select * from dept)`,
		`select * from inserted emp`, // transition table outside a rule
	}
	for _, src := range bad {
		if err := queryErr(t, e, src); err == nil {
			t.Errorf("accepted bad query %q", src)
		}
	}
}

func TestInsertForms(t *testing.T) {
	e := testEnv(t)
	// Column-list insert with defaults.
	res := mustOp(t, e, `insert into emp (name, emp_no) values ('new', 7)`)
	if len(res.Inserted) != 1 {
		t.Fatalf("inserted: %v", res.Inserted)
	}
	tup, _ := e.Store.(*storage.Store).Get(res.Inserted[0])
	if !tup.Values[2].IsNull() || !tup.Values[3].IsNull() {
		t.Errorf("unspecified columns should be NULL: %v", tup.Values)
	}
	// Select-form insert (paper §2.1), reading the target table itself.
	res = mustOp(t, e, `insert into dept (select dept_no + 100, mgr_no from dept)`)
	if len(res.Inserted) != 3 {
		t.Fatalf("select-form inserted %d", len(res.Inserted))
	}
	if n, _ := e.Store.(*storage.Store).Count("dept"); n != 6 {
		t.Errorf("dept count = %d", n)
	}
	// Multi-row VALUES.
	res = mustOp(t, e, `insert into dept values (7, 7), (8, 8)`)
	if len(res.Inserted) != 2 {
		t.Errorf("multi-row values: %v", res.Inserted)
	}
}

func TestInsertErrors(t *testing.T) {
	e := testEnv(t)
	for _, src := range []string{
		`insert into nosuch values (1)`,
		`insert into dept values (1)`,                       // arity
		`insert into dept values (1, 2, 3)`,                 // arity
		`insert into dept (nosuch) values (1)`,              // bad column
		`insert into emp (name) values (1)`,                 // type error: int into varchar
		`insert into dept (select * from emp)`,              // width mismatch
		`insert into emp (name, emp_no) values ('x', NULL)`, // NOT NULL
	} {
		st, err := sqlparse.ParseStatement(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := e.ExecOp(st); err == nil {
			t.Errorf("accepted bad insert %q", src)
		}
	}
}

func TestDelete(t *testing.T) {
	e := testEnv(t)
	res := mustOp(t, e, `delete from emp where dept_no = 2`)
	if len(res.Deleted) != 2 {
		t.Fatalf("deleted %d, want 2", len(res.Deleted))
	}
	for _, d := range res.Deleted {
		if d.OldRow == nil {
			t.Error("deleted tuple missing old row")
		}
	}
	if n, _ := e.Store.(*storage.Store).Count("emp"); n != 4 {
		t.Errorf("emp count = %d", n)
	}
	// Unqualified delete empties the table ("where true").
	res = mustOp(t, e, `delete from emp`)
	if len(res.Deleted) != 4 {
		t.Errorf("delete all: %d", len(res.Deleted))
	}
	// Deleting from empty table affects nothing.
	res = mustOp(t, e, `delete from emp`)
	if len(res.Deleted) != 0 {
		t.Errorf("delete from empty: %d", len(res.Deleted))
	}
}

func TestDeleteWithSubquerySeesPreOpState(t *testing.T) {
	e := testEnv(t)
	// Delete everyone whose salary is below the (pre-delete) average.
	// avg = 59000 → bill (25000), sam (40000) go. The subquery must not be
	// re-evaluated mid-deletion.
	res := mustOp(t, e, `delete from emp where salary < (select avg(salary) from emp)`)
	if len(res.Deleted) != 2 {
		t.Errorf("deleted %d, want 2", len(res.Deleted))
	}
}

func TestUpdate(t *testing.T) {
	e := testEnv(t)
	res := mustOp(t, e, `update emp set salary = salary * 2 where dept_no = 1`)
	if len(res.Updated) != 2 {
		t.Fatalf("updated %d", len(res.Updated))
	}
	for _, u := range res.Updated {
		if len(u.Cols) != 1 || u.Cols[0] != 2 {
			t.Errorf("updated cols: %v", u.Cols)
		}
		cur, _ := e.Store.(*storage.Store).Get(u.Handle)
		if cur.Values[2].Float() != u.OldRow[2].Float()*2 {
			t.Errorf("update math: old %v new %v", u.OldRow[2], cur.Values[2])
		}
	}
	// No-op update still counts as affected (paper §2.1).
	res = mustOp(t, e, `update emp set salary = salary where dept_no = 2`)
	if len(res.Updated) != 2 {
		t.Errorf("no-op update affected %d, want 2", len(res.Updated))
	}
	// Multi-column update.
	res = mustOp(t, e, `update emp set name = 'x', dept_no = 9 where emp_no = 1`)
	if len(res.Updated) != 1 || len(res.Updated[0].Cols) != 2 {
		t.Errorf("multi-col: %+v", res.Updated)
	}
}

func TestUpdateSetOriented(t *testing.T) {
	e := testEnv(t)
	// Swap-style update: every salary becomes the pre-update max. If
	// assignments were applied row-at-a-time with re-evaluation this could
	// diverge.
	mustOp(t, e, `update emp set salary = (select max(salary) from emp)`)
	res := mustQuery(t, e, `select distinct salary from emp`)
	if len(res.Rows) != 1 || res.Rows[0][0].Float() != 100000 {
		t.Errorf("set-oriented update: %v", res.Rows)
	}
}

func TestUpdateErrors(t *testing.T) {
	e := testEnv(t)
	for _, src := range []string{
		`update nosuch set a = 1`,
		`update emp set nosuch = 1`,
		`update emp set emp_no = NULL`,  // NOT NULL
		`update emp set salary = 'x'`,   // type
		`update emp set salary = 1 / 0`, // runtime arithmetic error
	} {
		st, err := sqlparse.ParseStatement(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := e.ExecOp(st); err == nil {
			t.Errorf("accepted bad update %q", src)
		}
	}
}

func TestExecOpRejectsNonDML(t *testing.T) {
	e := testEnv(t)
	st, _ := sqlparse.ParseStatement(`select * from emp`)
	if _, err := e.ExecOp(st); err == nil {
		t.Error("ExecOp accepted a SELECT")
	}
}

func TestResultString(t *testing.T) {
	e := testEnv(t)
	res := mustQuery(t, e, `select name, salary from emp where emp_no = 1`)
	s := res.String()
	if !strings.Contains(s, "name") || !strings.Contains(s, "jane") || !strings.Contains(s, "100000") {
		t.Errorf("Result.String: %q", s)
	}
}

// fixedTransSource serves canned transition rows for testing FROM-clause
// transition tables.
type fixedTransSource struct {
	rows map[sqlast.TransKind][]TransRow
}

func (f *fixedTransSource) TransRows(kind sqlast.TransKind, table, column string) ([]TransRow, error) {
	return f.rows[kind], nil
}

func TestTransitionTableResolution(t *testing.T) {
	e := testEnv(t)
	e.Trans = &fixedTransSource{rows: map[sqlast.TransKind][]TransRow{
		sqlast.TransDeleted: {
			{Handle: 101, Values: storage.Row{value.NewString("ghost"), value.NewInt(99), value.NewFloat(1), value.NewInt(1)}},
		},
		sqlast.TransInserted: {},
	}}
	res := mustQuery(t, e, `select name, emp_no from deleted emp`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "ghost" {
		t.Fatalf("deleted emp: %v", res.Rows)
	}
	// Alias and join with a base table.
	res = mustQuery(t, e, `select d.name from deleted emp d, dept where dept.dept_no = d.dept_no`)
	if len(res.Rows) != 1 {
		t.Fatalf("deleted join: %v", res.Rows)
	}
	// Empty transition table yields no rows.
	res = mustQuery(t, e, `select * from inserted emp`)
	if len(res.Rows) != 0 {
		t.Errorf("inserted emp should be empty: %v", res.Rows)
	}
	// Unknown column on transition table errors.
	if err := queryErr(t, e, `select * from old updated emp.nosuch`); err == nil {
		t.Error("bad transition column accepted")
	}
}

type recordingObserver struct {
	seen map[storage.Handle]bool
}

func (r *recordingObserver) TupleSelected(table string, h storage.Handle) {
	r.seen[h] = true
}

func TestSelectObserver(t *testing.T) {
	e := testEnv(t)
	obs := &recordingObserver{seen: make(map[storage.Handle]bool)}
	e.Observer = obs
	mustQuery(t, e, `select name from emp where dept_no = 1`)
	if len(obs.seen) != 2 {
		t.Errorf("observer saw %d tuples, want 2 (only WHERE-surviving rows)", len(obs.seen))
	}
}
