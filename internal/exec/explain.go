package exec

// EXPLAIN: render the plan the executor would choose for a statement,
// without executing it. The output is one "plan" column whose rows are the
// lines of an indented operator tree — access paths with cardinality
// estimates from the storage layer's statistics, the cost-based join
// order (shared with the execution-time planner via orderJoins), and the
// post-processing pipeline (filter, aggregate, distinct, order by, limit).

import (
	"fmt"
	"strings"

	"sopr/internal/sqlast"
	"sopr/internal/storage"
	"sopr/internal/value"
)

// Explain renders the chosen plan for a SELECT or DML statement.
func (e *Env) Explain(stmt sqlast.Statement) (*Result, error) {
	var lines []string
	var err error
	switch s := stmt.(type) {
	case *sqlast.Select:
		lines, err = e.explainSelect(s, 0)
	case *sqlast.Insert:
		lines, err = e.explainInsert(s)
	case *sqlast.Delete:
		lines, err = e.explainMatch("delete from "+s.Table, s.Table, s.Alias, s.Where)
	case *sqlast.Update:
		lines, err = e.explainMatch("update "+s.Table, s.Table, s.Alias, s.Where)
	default:
		return nil, fmt.Errorf("exec: cannot explain %T", stmt)
	}
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: []string{"plan"}, Rows: make([]storage.Row, len(lines))}
	for i, l := range lines {
		res.Rows[i] = storage.Row{value.NewString(l)}
	}
	return res, nil
}

// accessPath is the plan-time view of one FROM entry.
type accessPath struct {
	desc string  // rendered node, without indentation
	rows float64 // estimated input cardinality
}

// explainSelect renders one query block at the given indent depth.
func (e *Env) explainSelect(sel *sqlast.Select, depth int) ([]string, error) {
	ind := strings.Repeat("  ", depth)
	mode := "cost-based planner"
	if e.NoPlanner {
		mode = "planner disabled"
	}
	lines := []string{ind + "select (" + mode + ")"}
	add := func(extra int, s string) {
		lines = append(lines, ind+strings.Repeat("  ", extra+1)+s)
	}

	infos := e.planBindings(sel.From)
	paths := make([]accessPath, len(sel.From))
	for i, tr := range sel.From {
		p, err := e.explainAccess(tr, i, sel, infos)
		if err != nil {
			return nil, err
		}
		paths[i] = p
	}

	// Post-processing pipeline, outermost first.
	if sel.Limit != nil {
		add(0, "limit "+sel.Limit.String())
	}
	if len(sel.OrderBy) > 0 {
		parts := make([]string, len(sel.OrderBy))
		for i, ob := range sel.OrderBy {
			parts[i] = ob.Expr.String()
			if ob.Desc {
				parts[i] += " DESC"
			}
		}
		add(0, "order by "+strings.Join(parts, ", "))
	}
	if sel.Distinct {
		add(0, "distinct")
	}
	hasAgg := len(sel.GroupBy) > 0 || sel.Having != nil
	if !hasAgg {
		for _, it := range sel.Items {
			if !it.Star && exprHasAggregate(it.Expr) {
				hasAgg = true
				break
			}
		}
	}
	if hasAgg {
		if len(sel.GroupBy) > 0 {
			parts := make([]string, len(sel.GroupBy))
			for i, g := range sel.GroupBy {
				parts[i] = g.String()
			}
			add(0, "aggregate group by "+strings.Join(parts, ", "))
		} else {
			add(0, "aggregate (single group)")
		}
	}
	if sel.Where != nil {
		add(0, "filter "+sel.Where.String())
	}

	// Join tree (or the single/zero-relation base).
	switch {
	case len(sel.From) == 0:
		add(0, "no from (one empty binding)")
	case len(sel.From) == 1:
		add(0, paths[0].desc)
	default:
		joinLines, err := e.explainJoins(sel, infos, paths)
		if err != nil {
			return nil, err
		}
		for _, jl := range joinLines {
			add(0, jl)
		}
	}
	return lines, nil
}

// explainAccess mirrors materializeFrom's choice for one FROM entry, using
// ClassifyProbe to cost the probe at plan time — including the 2^53
// integer-keyspace fallback, which is reported (and costed) as a scan.
func (e *Env) explainAccess(tr *sqlast.TableRef, target int, sel *sqlast.Select, infos []fromBinding) (accessPath, error) {
	name := tr.Binding()
	if tr.Trans != sqlast.TransNone {
		return accessPath{desc: "transition scan " + strings.ToLower(tr.String()) + " (rows ?)", rows: 1}, nil
	}
	schema := infos[target].schema
	if schema == nil {
		return accessPath{}, fmt.Errorf("exec: unknown table %q", tr.Table)
	}
	rows, err := e.Store.Count(schema.Name)
	if err != nil {
		return accessPath{}, err
	}
	label := schema.Name
	if name != schema.Name {
		label += " " + name
	}
	seq := accessPath{desc: fmt.Sprintf("seq scan %s (rows %d)", label, rows), rows: float64(rows)}
	if e.NoIndex || sel.Where == nil {
		return seq, nil
	}
	probe := e.findIndexProbe(sel.Where, target, infos, nil)
	if probe == nil {
		return seq, nil
	}
	col := schema.Columns[probe.col].Name
	switch e.Store.ClassifyProbe(schema.Name, probe.col, probe.vals...) {
	case storage.ProbeFallback:
		seq.desc = fmt.Sprintf("seq scan %s (rows %d; index on %s cannot answer probe exactly, costed as scan)", label, rows, col)
		return seq, nil
	case storage.ProbeIndexed:
		est := float64(rows)
		if cs, err := e.Store.ColumnStats(schema.Name, probe.col); err == nil && cs.Distinct > 0 {
			est = float64(rows) / float64(cs.Distinct) * float64(len(probe.vals))
			if est > float64(rows) {
				est = float64(rows)
			}
		}
		what := fmt.Sprintf("%s = %s", col, probe.vals[0])
		if len(probe.vals) != 1 {
			what = fmt.Sprintf("%s IN (%d values)", col, len(probe.vals))
		}
		return accessPath{
			desc: fmt.Sprintf("index probe %s (%s) (est rows %.0f)", label, what, est),
			rows: est,
		}, nil
	default:
		return seq, nil
	}
}

// explainJoins renders the join tree for a multi-relation block: the
// cost-based left-deep order when the planner applies, the nested-loop
// (FROM-order) tree otherwise.
func (e *Env) explainJoins(sel *sqlast.Select, infos []fromBinding, paths []accessPath) ([]string, error) {
	prels := make([]*relation, len(infos))
	for i, fb := range infos {
		rel := &relation{binding: fb.binding}
		if fb.schema != nil {
			rel.table = fb.schema.Name
			rel.cols = fb.schema.ColumnNames()
		}
		rel.trans = sel.From[i].Trans != sqlast.TransNone
		prels[i] = rel
	}
	var conds []equiCond
	if sel.Where != nil {
		conds = e.collectEquiConds(sel.Where, prels)
	}
	planned := !e.NoPlanner && !e.NoHashJoin && len(conds) > 0

	if !planned {
		lines := []string{"nested loop (FROM order)"}
		for _, p := range paths {
			lines = append(lines, "  "+p.desc)
		}
		if n := len(prels); n == 2 && !e.NoHashJoin && sel.Where != nil {
			if c0, c1, ok := equiJoinConjunct(sel.Where, prels[0], prels[1]); ok {
				lines[0] = fmt.Sprintf("hash join (%s.%s = %s.%s)",
					prels[0].binding, prels[0].cols[c0], prels[1].binding, prels[1].cols[c1])
				for i := range paths {
					lines[i+1] = "  " + paths[i].desc
				}
			}
		}
		return lines, nil
	}

	rows := make([]float64, len(prels))
	for i, p := range paths {
		rows[i] = p.rows
	}
	dist := e.statsDistinctEstimator(prels)
	start, steps := orderJoins(rows, dist, conds, e.joinBuildBudget())

	// Render the left-deep tree from the root down.
	lines := []string{paths[start].desc}
	for _, st := range steps {
		algo := "hash join"
		if st.merge {
			algo = "merge join"
		}
		var on []string
		for _, c := range st.conds {
			eq := fmt.Sprintf("%s.%s = %s.%s",
				prels[c.lrel].binding, prels[c.lrel].cols[c.lcol],
				prels[c.rrel].binding, prels[c.rrel].cols[c.rcol])
			if c.exact {
				eq += " [exact]"
			}
			on = append(on, eq)
		}
		head := fmt.Sprintf("%s (%s) (est rows %.0f)", algo, strings.Join(on, " and "), st.est)
		if len(st.conds) == 0 {
			head = fmt.Sprintf("cross join (est rows %.0f)", st.est)
		}
		next := []string{head}
		for _, l := range lines {
			next = append(next, "  "+l)
		}
		next = append(next, "  "+paths[st.right].desc)
		lines = next
	}
	return lines, nil
}

// statsDistinctEstimator is the plan-time (no materialized rows) variant
// of distinctEstimator: base tables use column statistics, everything else
// estimates a single distinct value.
func (e *Env) statsDistinctEstimator(rels []*relation) func(rel, col int) float64 {
	return func(rel, col int) float64 {
		r := rels[rel]
		if !r.trans && r.table != "" {
			if cs, err := e.Store.ColumnStats(r.table, col); err == nil {
				return float64(cs.Distinct)
			}
		}
		return 1
	}
}

func (e *Env) explainInsert(s *sqlast.Insert) ([]string, error) {
	if _, err := e.lookupSchema(s.Table); err != nil {
		return nil, err
	}
	if s.Query != nil {
		lines := []string{fmt.Sprintf("insert into %s (from select)", s.Table)}
		sub, err := e.explainSelect(s.Query, 1)
		if err != nil {
			return nil, err
		}
		return append(lines, sub...), nil
	}
	return []string{fmt.Sprintf("insert into %s (%d rows)", s.Table, len(s.Rows))}, nil
}

// explainMatch renders the access path of a DELETE/UPDATE predicate scan
// (matchTuples in dml.go).
func (e *Env) explainMatch(head, table, alias string, where sqlast.Expr) ([]string, error) {
	schema, err := e.lookupSchema(table)
	if err != nil {
		return nil, err
	}
	binding := alias
	if binding == "" {
		binding = schema.Name
	}
	rows, err := e.Store.Count(schema.Name)
	if err != nil {
		return nil, err
	}
	lines := []string{head}
	if where != nil {
		lines = append(lines, "  filter "+where.String())
	}
	seq := fmt.Sprintf("seq scan %s (rows %d)", schema.Name, rows)
	if where == nil || e.NoIndex {
		return append(lines, "  "+seq), nil
	}
	infos := []fromBinding{{binding: binding, schema: schema}}
	probe := e.findIndexProbe(where, 0, infos, nil)
	if probe == nil {
		return append(lines, "  "+seq), nil
	}
	col := schema.Columns[probe.col].Name
	switch e.Store.ClassifyProbe(schema.Name, probe.col, probe.vals...) {
	case storage.ProbeFallback:
		return append(lines, fmt.Sprintf("  seq scan %s (rows %d; index on %s cannot answer probe exactly, costed as scan)", schema.Name, rows, col)), nil
	case storage.ProbeIndexed:
		est := float64(rows)
		if cs, err := e.Store.ColumnStats(schema.Name, probe.col); err == nil && cs.Distinct > 0 {
			est = float64(rows) / float64(cs.Distinct) * float64(len(probe.vals))
			if est > float64(rows) {
				est = float64(rows)
			}
		}
		what := fmt.Sprintf("%s = %s", col, probe.vals[0])
		if len(probe.vals) != 1 {
			what = fmt.Sprintf("%s IN (%d values)", col, len(probe.vals))
		}
		return append(lines, fmt.Sprintf("  index probe %s (%s) (est rows %.0f)", schema.Name, what, est)), nil
	default:
		return append(lines, "  "+seq), nil
	}
}
