package exec

import (
	"sopr/internal/sqlast"
	"sopr/internal/value"
)

// The paper's introduction argues that set-oriented processing "permits
// efficient execution of non-procedural queries through extensive
// optimization ... not inhibited by the presence of our set-oriented
// production rules; furthermore, it is directly applicable to the rules
// themselves". This file supplies one such optimization: a hash equi-join
// fast path for two-relation FROM lists whose WHERE contains an equi-join
// conjunct. The full WHERE predicate is still evaluated on every candidate
// combination, so residual predicates and three-valued logic are untouched;
// the hash index only skips combinations the equi-conjunct already rules
// out. Result order is identical to the nested-loop order.

// joinKeyable reports whether the expression tree is a conjunction
// containing `a.x = b.y` with the two column references resolving to the
// two different relations; it returns the column indexes.
func equiJoinConjunct(where sqlast.Expr, r0, r1 *relation) (c0, c1 int, ok bool) {
	switch x := where.(type) {
	case *sqlast.Binary:
		if x.Op == sqlast.OpAnd {
			if c0, c1, ok = equiJoinConjunct(x.L, r0, r1); ok {
				return c0, c1, true
			}
			return equiJoinConjunct(x.R, r0, r1)
		}
		if x.Op != sqlast.OpEq {
			return 0, 0, false
		}
		lref, lok := x.L.(*sqlast.ColumnRef)
		rref, rok := x.R.(*sqlast.ColumnRef)
		if !lok || !rok {
			return 0, 0, false
		}
		li, lrel := resolveInPair(lref, r0, r1)
		ri, rrel := resolveInPair(rref, r0, r1)
		if lrel == nil || rrel == nil || lrel == rrel {
			return 0, 0, false
		}
		if lrel == r0 {
			return li, ri, true
		}
		return ri, li, true
	default:
		return 0, 0, false
	}
}

// resolveInPair resolves a column reference against exactly one of the two
// relations. Ambiguous or unresolvable references return nil (the caller
// falls back to nested loops, where full scope resolution applies and will
// report any genuine ambiguity).
func resolveInPair(ref *sqlast.ColumnRef, r0, r1 *relation) (int, *relation) {
	find := func(rel *relation) int {
		if ref.Qualifier != "" && ref.Qualifier != rel.binding {
			return -1
		}
		for i, c := range rel.cols {
			if c == ref.Column {
				return i
			}
		}
		return -1
	}
	i0, i1 := find(r0), find(r1)
	switch {
	case i0 >= 0 && i1 >= 0:
		return 0, nil // ambiguous
	case i0 >= 0:
		return i0, r0
	case i1 >= 0:
		return i1, r1
	default:
		return 0, nil
	}
}

// joinKeysExact selects the keyspace for the equi-join's hash table:
// when both join columns are declared INTEGER every stored value is an
// int64 (coerceRow enforces column kind homogeneity) and int-int
// comparison is exact, so the exact-integer keyspace applies and distinct
// int64s above 2^53 keep distinct buckets. Any other combination goes
// through the float-image keyspace, matching value.Compare's cross-kind
// equality (which converts mixed int/float operands to float64).
func (e *Env) joinKeysExact(rels []*relation, c0, c1 int) bool {
	k0, ok0 := e.relColumnKind(rels[0], c0)
	k1, ok1 := e.relColumnKind(rels[1], c1)
	return ok0 && ok1 && k0 == value.KindInt && k1 == value.KindInt
}

// relColumnKind reports the declared kind of a relation's column, when
// the relation is backed by a catalog schema (base or transition table).
func (e *Env) relColumnKind(rel *relation, col int) (value.Kind, bool) {
	if rel.table == "" {
		return value.KindNull, false
	}
	schema, err := e.lookupSchema(rel.table)
	if err != nil || col < 0 || col >= len(schema.Columns) {
		return value.KindNull, false
	}
	return schema.Columns[col].Type, true
}

// forEachComboHash drives the hash equi-join for two relations. It emits
// exactly the combinations the nested-loop driver would emit, in the same
// order.
func (e *Env) forEachComboHash(sel *sqlast.Select, sc *scope, rels []*relation, c0, c1 int, fn func() error) error {
	keyOf := value.KeyNumeric
	if e.joinKeysExact(rels, c0, c1) {
		keyOf = value.KeyExact
	}
	// Build the index on the inner (second) relation.
	index := make(map[value.Key][]int, len(rels[1].rows))
	for i, tr := range rels[1].rows {
		if k, ok := keyOf(tr.Values[c1]); ok {
			index[k] = append(index[k], i)
		}
	}
	for _, outer := range rels[0].rows {
		k, ok := keyOf(outer.Values[c0])
		if !ok {
			continue
		}
		for _, i := range index[k] {
			inner := rels[1].rows[i]
			sc.vars[0].row = outer.Values
			sc.vars[0].handle = outer.Handle
			sc.vars[1].row = inner.Values
			sc.vars[1].handle = inner.Handle
			ok, err := e.whereHolds(sel, sc)
			if err != nil {
				return err
			}
			if ok {
				for _, b := range sc.vars {
					e.observe(b)
				}
				if err := fn(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
