package exec

import (
	"fmt"

	"sopr/internal/sqlast"
	"sopr/internal/value"
)

// The paper's introduction argues that set-oriented processing "permits
// efficient execution of non-procedural queries through extensive
// optimization ... not inhibited by the presence of our set-oriented
// production rules; furthermore, it is directly applicable to the rules
// themselves". This file supplies one such optimization: a hash equi-join
// fast path for two-relation FROM lists whose WHERE contains an equi-join
// conjunct. The full WHERE predicate is still evaluated on every candidate
// combination, so residual predicates and three-valued logic are untouched;
// the hash index only skips combinations the equi-conjunct already rules
// out. Result order is identical to the nested-loop order.

// joinKeyable reports whether the expression tree is a conjunction
// containing `a.x = b.y` with the two column references resolving to the
// two different relations; it returns the column indexes.
func equiJoinConjunct(where sqlast.Expr, r0, r1 *relation) (c0, c1 int, ok bool) {
	switch x := where.(type) {
	case *sqlast.Binary:
		if x.Op == sqlast.OpAnd {
			if c0, c1, ok = equiJoinConjunct(x.L, r0, r1); ok {
				return c0, c1, true
			}
			return equiJoinConjunct(x.R, r0, r1)
		}
		if x.Op != sqlast.OpEq {
			return 0, 0, false
		}
		lref, lok := x.L.(*sqlast.ColumnRef)
		rref, rok := x.R.(*sqlast.ColumnRef)
		if !lok || !rok {
			return 0, 0, false
		}
		li, lrel := resolveInPair(lref, r0, r1)
		ri, rrel := resolveInPair(rref, r0, r1)
		if lrel == nil || rrel == nil || lrel == rrel {
			return 0, 0, false
		}
		if lrel == r0 {
			return li, ri, true
		}
		return ri, li, true
	default:
		return 0, 0, false
	}
}

// resolveInPair resolves a column reference against exactly one of the two
// relations. Ambiguous or unresolvable references return nil (the caller
// falls back to nested loops, where full scope resolution applies and will
// report any genuine ambiguity).
func resolveInPair(ref *sqlast.ColumnRef, r0, r1 *relation) (int, *relation) {
	find := func(rel *relation) int {
		if ref.Qualifier != "" && ref.Qualifier != rel.binding {
			return -1
		}
		for i, c := range rel.cols {
			if c == ref.Column {
				return i
			}
		}
		return -1
	}
	i0, i1 := find(r0), find(r1)
	switch {
	case i0 >= 0 && i1 >= 0:
		return 0, nil // ambiguous
	case i0 >= 0:
		return i0, r0
	case i1 >= 0:
		return i1, r1
	default:
		return 0, nil
	}
}

// hashKey normalizes a value for join-key equality, matching
// value.Compare's cross-kind numeric semantics. ok is false for NULL
// (NULL = NULL is unknown, never a join match).
func hashKey(v value.Value) (string, bool) {
	switch v.Kind() {
	case value.KindNull:
		return "", false
	case value.KindInt:
		return fmt.Sprintf("n%g", float64(v.Int())), true
	case value.KindFloat:
		return fmt.Sprintf("n%g", v.Float()), true
	case value.KindString:
		return "s" + v.Str(), true
	case value.KindBool:
		if v.Bool() {
			return "b1", true
		}
		return "b0", true
	default:
		return "", false
	}
}

// forEachComboHash drives the hash equi-join for two relations. It emits
// exactly the combinations the nested-loop driver would emit, in the same
// order.
func (e *Env) forEachComboHash(sel *sqlast.Select, sc *scope, rels []*relation, c0, c1 int, fn func() error) error {
	// Build the index on the inner (second) relation.
	index := make(map[string][]int, len(rels[1].rows))
	for i, tr := range rels[1].rows {
		if k, ok := hashKey(tr.Values[c1]); ok {
			index[k] = append(index[k], i)
		}
	}
	for _, outer := range rels[0].rows {
		k, ok := hashKey(outer.Values[c0])
		if !ok {
			continue
		}
		for _, i := range index[k] {
			inner := rels[1].rows[i]
			sc.vars[0].row = outer.Values
			sc.vars[0].handle = outer.Handle
			sc.vars[1].row = inner.Values
			sc.vars[1].handle = inner.Handle
			ok, err := e.whereHolds(sel, sc)
			if err != nil {
				return err
			}
			if ok {
				for _, b := range sc.vars {
					e.observe(b)
				}
				if err := fn(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
