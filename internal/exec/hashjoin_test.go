package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"sopr/internal/sqlast"
	"sopr/internal/sqlparse"
	"sopr/internal/storage"
)

// joinEnv builds a store with two join tables carrying NULLs, duplicates
// and cross-kind numeric keys.
func joinEnv(t *testing.T, rows int, seed int64) *Env {
	t.Helper()
	e := &Env{Store: storage.New()}
	mustExecDDL(t, e, `create table l (k int, lv varchar)`)
	mustExecDDL(t, e, `create table r (k float, rv varchar)`)
	rng := rand.New(rand.NewSource(seed))
	var lb, rb strings.Builder
	lb.WriteString("insert into l values ")
	rb.WriteString("insert into r values ")
	for i := 0; i < rows; i++ {
		if i > 0 {
			lb.WriteString(", ")
			rb.WriteString(", ")
		}
		lk := fmt.Sprintf("%d", rng.Intn(rows/2+1))
		if rng.Intn(10) == 0 {
			lk = "null"
		}
		rk := fmt.Sprintf("%d.0", rng.Intn(rows/2+1))
		if rng.Intn(10) == 0 {
			rk = "null"
		}
		fmt.Fprintf(&lb, "(%s, 'l%d')", lk, i)
		fmt.Fprintf(&rb, "(%s, 'r%d')", rk, i)
	}
	mustOp(t, e, lb.String())
	mustOp(t, e, rb.String())
	return e
}

// Equivalence property: every join query returns identical results with
// and without the hash fast path.
func TestHashJoinEquivalence(t *testing.T) {
	queries := []string{
		// int = float cross-kind key.
		`select l.lv, r.rv from l, r where l.k = r.k order by l.lv, r.rv`,
		// Reversed sides.
		`select l.lv, r.rv from l, r where r.k = l.k order by l.lv, r.rv`,
		// Residual predicate alongside the equi conjunct.
		`select l.lv, r.rv from l, r where l.k = r.k and l.lv <> r.rv order by l.lv, r.rv`,
		// Aliased relations.
		`select a.lv from l a, r b where a.k = b.k order by a.lv`,
		// No ORDER BY: physical emission order must also match.
		`select l.lv, r.rv from l, r where l.k = r.k and r.k > 1`,
		// Aggregation over the join.
		`select count(*), min(l.lv) from l, r where l.k = r.k`,
	}
	for _, seed := range []int64{1, 2, 3} {
		e := joinEnv(t, 60, seed)
		for _, q := range queries {
			st, err := sqlparse.ParseStatement(q)
			if err != nil {
				t.Fatalf("parse %q: %v", q, err)
			}
			sel := st.(*sqlast.Select)
			fast, err := e.Query(sel)
			if err != nil {
				t.Fatalf("hash: %q: %v", q, err)
			}
			e.NoHashJoin = true
			slow, err := e.Query(sel)
			e.NoHashJoin = false
			if err != nil {
				t.Fatalf("nested: %q: %v", q, err)
			}
			if !reflect.DeepEqual(fast, slow) {
				t.Errorf("seed %d query %q:\nhash:   %v\nnested: %v", seed, q, fast.Rows, slow.Rows)
			}
		}
	}
}

// Queries that must NOT take the fast path still work (three-way joins,
// OR conditions, non-column operands, self-joins with ambiguity).
func TestHashJoinFallbackCases(t *testing.T) {
	e := joinEnv(t, 20, 9)
	mustExecDDL(t, e, `create table m (k int)`)
	mustOp(t, e, `insert into m values (1), (2)`)
	for _, q := range []string{
		`select count(*) from l, r, m where l.k = r.k and l.k = m.k`,
		`select count(*) from l, r where l.k = r.k or l.k is null`,
		`select count(*) from l, r where l.k + 0 = r.k`,
		`select count(*) from l a, l b where a.k = b.k`,
	} {
		st, err := sqlparse.ParseStatement(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		sel := st.(*sqlast.Select)
		fast, err := e.Query(sel)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		e.NoHashJoin = true
		slow, err := e.Query(sel)
		e.NoHashJoin = false
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fast, slow) {
			t.Errorf("%q: hash %v vs nested %v", q, fast.Rows, slow.Rows)
		}
	}
}

// The fast path must not fire for a self-join without distinguishing
// qualifiers (ambiguous resolution returns no key).
func TestEquiJoinConjunctResolution(t *testing.T) {
	r0 := &relation{binding: "a", cols: []string{"k", "v"}}
	r1 := &relation{binding: "b", cols: []string{"k", "w"}}
	parse := func(src string) sqlast.Expr {
		e, err := sqlparse.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		return e
	}
	if c0, c1, ok := equiJoinConjunct(parse(`a.k = b.k`), r0, r1); !ok || c0 != 0 || c1 != 0 {
		t.Errorf("qualified: %d %d %v", c0, c1, ok)
	}
	if c0, c1, ok := equiJoinConjunct(parse(`b.k = a.v`), r0, r1); !ok || c0 != 1 || c1 != 0 {
		t.Errorf("reversed: %d %d %v", c0, c1, ok)
	}
	if _, _, ok := equiJoinConjunct(parse(`k = w`), r0, r1); ok {
		t.Error("ambiguous unqualified k accepted")
	}
	if c0, c1, ok := equiJoinConjunct(parse(`v = w`), r0, r1); !ok || c0 != 1 || c1 != 1 {
		t.Errorf("unambiguous unqualified: %d %d %v", c0, c1, ok)
	}
	if _, _, ok := equiJoinConjunct(parse(`a.k = a.v`), r0, r1); ok {
		t.Error("same-relation equality accepted")
	}
	if _, _, ok := equiJoinConjunct(parse(`a.k > b.k`), r0, r1); ok {
		t.Error("non-equality accepted")
	}
	if _, _, ok := equiJoinConjunct(parse(`a.k = b.k or true`), r0, r1); ok {
		t.Error("disjunction accepted")
	}
	// Conjunct found under nested ANDs.
	if _, _, ok := equiJoinConjunct(parse(`a.v > 'x' and (b.w = 'y' and a.k = b.k)`), r0, r1); !ok {
		t.Error("nested conjunct missed")
	}
}
