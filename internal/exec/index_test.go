package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"sopr/internal/sqlast"
	"sopr/internal/sqlparse"
	"sopr/internal/storage"
)

// indexEnv builds a store with indexed tables carrying NULLs, duplicate
// keys and integers beyond 2^53 (where float64 rounding would conflate
// neighbours), plus a small dimension table for join and subquery probes.
func indexEnv(t *testing.T, rows int, seed int64) *Env {
	t.Helper()
	e := &Env{Store: storage.New()}
	mustExecDDL(t, e, `create table big (id int, grp int, note varchar)`)
	mustExecDDL(t, e, `create table dim (grp int, label varchar)`)
	rng := rand.New(rand.NewSource(seed))
	var bb strings.Builder
	bb.WriteString("insert into big values ")
	huge := int64(1) << 53
	for i := 0; i < rows; i++ {
		if i > 0 {
			bb.WriteString(", ")
		}
		id := fmt.Sprintf("%d", rng.Int63n(int64(rows)))
		switch rng.Intn(12) {
		case 0:
			id = "null"
		case 1:
			// Neighbouring >2^53 ints that collapse under float64.
			id = fmt.Sprintf("%d", huge+rng.Int63n(3))
		}
		grp := fmt.Sprintf("%d", rng.Intn(5))
		if rng.Intn(10) == 0 {
			grp = "null"
		}
		fmt.Fprintf(&bb, "(%s, %s, 'n%d')", id, grp, i)
	}
	mustOp(t, e, bb.String())
	mustOp(t, e, `insert into dim values (0,'a'), (1,'b'), (2,'c'), (2,'c2'), (null,'x')`)
	for _, ix := range [][3]string{
		{"big_id", "big", "id"},
		{"big_grp", "big", "grp"},
		{"dim_grp", "dim", "grp"},
	} {
		if err := e.Store.(*storage.Store).CreateIndex(ix[0], ix[1], ix[2]); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// TestIndexedScanParity: every query returns byte-identical results (rows
// AND order) through the index access path and the heap scan.
func TestIndexedScanParity(t *testing.T) {
	huge := int64(1) << 53
	queries := []string{
		// Plain equality, hit and miss.
		`select note from big where id = 7`,
		`select note from big where id = -1`,
		// Equality never matches NULL ids.
		`select count(*) from big where id = null`,
		// >2^53 neighbours must not be conflated.
		fmt.Sprintf(`select note from big where id = %d`, huge),
		fmt.Sprintf(`select note from big where id = %d`, huge+1),
		// Float probe on an int column: integral, fractional, and huge.
		`select note from big where id = 7.0`,
		`select note from big where id = 7.5`,
		fmt.Sprintf(`select count(*) from big where id = %d.0`, huge),
		// Probe under surrounding conjuncts, both orientations.
		`select note from big where grp = 2 and id > 10`,
		`select note from big where note > 'n' and 3 = grp`,
		// IN-list, including NULL and duplicate members.
		`select note from big where id in (1, 2, 2, null, 3)`,
		`select note from big where grp in (0, 4)`,
		// IN-subselect probe against another table.
		`select note from big where grp in (select grp from dim where label = 'c')`,
		// Correlated outer binding probing the inner index.
		`select label from dim d where exists (select 1 from big b where b.grp = d.grp and b.note < 'n3')`,
		// Join where the build side is index-filtered.
		`select b.note, d.label from big b, dim d where b.grp = d.grp and b.id = 4`,
		// Aggregate over an indexed selection.
		`select count(*), min(note) from big where grp = 1`,
		// Self-referential RHS must decline the probe (scan fallback).
		`select count(*) from big where id = grp`,
		`select note from big b where b.id = b.grp + 1`,
		// OR at the top declines.
		`select count(*) from big where id = 3 or grp = 1`,
	}
	for _, seed := range []int64{11, 12, 13} {
		e := indexEnv(t, 120, seed)
		for _, q := range queries {
			st, err := sqlparse.ParseStatement(q)
			if err != nil {
				t.Fatalf("parse %q: %v", q, err)
			}
			sel := st.(*sqlast.Select)
			indexed, err := e.Query(sel)
			if err != nil {
				t.Fatalf("indexed: %q: %v", q, err)
			}
			e.NoIndex = true
			scanned, err := e.Query(sel)
			e.NoIndex = false
			if err != nil {
				t.Fatalf("scan: %q: %v", q, err)
			}
			if !reflect.DeepEqual(indexed, scanned) {
				t.Errorf("seed %d query %q:\nindexed: %v\nscan:    %v", seed, q, indexed.Rows, scanned.Rows)
			}
		}
	}
}

// TestIndexedDMLParity: DELETE and UPDATE with sargable WHERE clauses
// leave the store in an identical state whether or not the index access
// path is used, and indexes stay consistent afterwards.
func TestIndexedDMLParity(t *testing.T) {
	ops := []string{
		`delete from big where id = 5`,
		`update big set note = 'touched' where grp = 2`,
		`delete from big where grp in (0, 3)`,
		`update big set grp = 4 where id in (select grp from dim where label = 'b')`,
	}
	dump := func(e *Env) [][]string {
		res := mustQuery(t, e, `select id, grp, note from big`)
		var out [][]string
		for _, r := range res.Rows {
			row := make([]string, len(r))
			for i, v := range r {
				row[i] = v.String()
			}
			out = append(out, row)
		}
		return out
	}
	ei := indexEnv(t, 80, 21)
	es := indexEnv(t, 80, 21)
	es.NoIndex = true
	for _, op := range ops {
		mustOp(t, ei, op)
		mustOp(t, es, op)
		if err := ei.Store.(*storage.Store).CheckIndexes(); err != nil {
			t.Fatalf("after %q: %v", op, err)
		}
		di, ds := dump(ei), dump(es)
		if !reflect.DeepEqual(di, ds) {
			t.Fatalf("after %q:\nindexed: %v\nscan:    %v", op, di, ds)
		}
	}
}

// TestIndexAccessCounters: a sargable query is actually served by the
// index (not silently falling back), and NoIndex forces the heap scan.
func TestIndexAccessCounters(t *testing.T) {
	e := indexEnv(t, 40, 31)
	_, lk0 := e.Store.(*storage.Store).AccessStats()
	mustQuery(t, e, `select note from big where id = 3`)
	_, lk1 := e.Store.(*storage.Store).AccessStats()
	if lk1 != lk0+1 {
		t.Errorf("index lookups %d -> %d, want +1", lk0, lk1)
	}
	hs0, _ := e.Store.(*storage.Store).AccessStats()
	e.NoIndex = true
	mustQuery(t, e, `select note from big where id = 3`)
	e.NoIndex = false
	hs1, lk2 := e.Store.(*storage.Store).AccessStats()
	if lk2 != lk1 {
		t.Errorf("NoIndex query used the index (%d -> %d)", lk1, lk2)
	}
	if hs1 != hs0+1 {
		t.Errorf("NoIndex heap scans %d -> %d, want +1", hs0, hs1)
	}
}
