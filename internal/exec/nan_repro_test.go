package exec

import (
	"math"
	"testing"

	"sopr/internal/sqlast"
	"sopr/internal/sqlparse"
	"sopr/internal/storage"
	"sopr/internal/value"
)

// TestNaNIndexDivergenceRepro pins down that a stored NaN (reachable via
// float overflow arithmetic) selects identically under the heap-scan and
// secondary-index access paths.
func TestNaNIndexDivergenceRepro(t *testing.T) {
	e := &Env{Store: storage.New()}
	mustExecDDL(t, e, "create table t (f float)")
	// Inf - Inf stores NaN.
	mustOp(t, e, "insert into t values (1e308 * 10 - 1e308 * 10)")
	mustOp(t, e, "insert into t values (5.0)")

	cmp, ok := value.Compare(value.NewFloat(math.NaN()), value.NewFloat(5.0))
	t.Logf("Compare(NaN,5.0) = %d %v", cmp, ok)

	query := func(src string) *Result {
		t.Helper()
		st, err := sqlparse.ParseStatement(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		res, err := e.Query(st.(*sqlast.Select))
		if err != nil {
			t.Fatalf("query %q: %v", src, err)
		}
		return res
	}

	q := "select f from t where f = 5.0"
	e.NoIndex = true
	scan := query(q)
	e.NoIndex = false
	if err := e.Store.(*storage.Store).CreateIndex("ixf", "t", "f"); err != nil {
		t.Fatalf("create index: %v", err)
	}
	idx := query(q)
	t.Logf("scan rows=%d indexed rows=%d", len(scan.Rows), len(idx.Rows))
	if len(scan.Rows) != len(idx.Rows) {
		t.Fatalf("DIVERGENCE: scan=%d indexed=%d", len(scan.Rows), len(idx.Rows))
	}
}
