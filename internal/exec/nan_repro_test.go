package exec

import (
	"math"
	"testing"

	"sopr/internal/value"
)

func TestNaNIndexDivergenceRepro(t *testing.T) {
	e := newTestEnv(t)
	mustExec(t, e, "create table t (f float)")
	// Inf - Inf stores NaN
	mustExec(t, e, "insert into t values (1e308 * 10 - 1e308 * 10)")
	mustExec(t, e, "insert into t values (5.0)")

	cmp, ok := value.Compare(value.NewFloat(math.NaN()), value.NewFloat(5.0))
	t.Logf("Compare(NaN,5.0) = %d %v", cmp, ok)

	q := "select f from t where f = 5.0"
	e.NoIndex = true
	scan, err := e.Query(q)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	e.NoIndex = false
	mustExec(t, e, "create index ixf on t (f)")
	idx, err := e.Query(q)
	if err != nil {
		t.Fatalf("indexed: %v", err)
	}
	t.Logf("scan rows=%d indexed rows=%d", len(scan.Rows), len(idx.Rows))
	if len(scan.Rows) != len(idx.Rows) {
		t.Fatalf("DIVERGENCE: scan=%d indexed=%d", len(scan.Rows), len(idx.Rows))
	}
}
