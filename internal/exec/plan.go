package exec

// Cost-based Volcano-style join planning. The paper's premise is that
// set-oriented rule processing inherits the full query optimizer: "queries
// resulting from rule conditions and actions are processed by the query
// optimizer just like user-submitted queries" (Section 6). This file is
// that optimizer: multi-relation FROM lists whose WHERE carries equi-join
// conjuncts are executed through a tree of iterator operators — scan at
// the leaves, hash or sort-merge joins above — with the join order chosen
// greedily from per-table cardinality and per-column distinct-value
// statistics maintained incrementally by internal/storage.
//
// Semantics preservation follows the same contract as the access-path and
// two-relation hash-join fast paths: a combination may be skipped only
// when a null-rejecting top-level AND equi-conjunct (`a.x = b.y`) rules
// it out — under three-valued logic a False or Unknown conjunct makes the
// whole AND non-True — and the full WHERE is still evaluated on every
// surviving combination. Surviving combinations are re-sorted into the
// nested-loop odometer's emission order (lexicographic on the position
// vector), so result order, select-observation, and residual-predicate
// behavior are indistinguishable from the naive driver.

import (
	"sort"
	"sync/atomic"

	"sopr/internal/sqlast"
	"sopr/internal/storage"
	"sopr/internal/value"
)

// PlanCounters is planner telemetry, shared by all Envs of one engine.
type PlanCounters struct {
	// Planned counts query blocks executed through the planned join path.
	Planned atomic.Int64
	// ProbeFallbacks counts index probes that were planned but declined at
	// lookup time (storage.probeKey could not answer the probe exactly —
	// the 2^53 integer-keyspace fallback), forcing a heap scan.
	ProbeFallbacks atomic.Int64
}

// maxJoinKeyCols caps the composite join key width; equi-conjuncts beyond
// the cap stay residual (still enforced by the full WHERE).
const maxJoinKeyCols = 4

// defaultJoinBuildBudget is the hash build-side row cap when
// Env.JoinBuildBudget is 0.
const defaultJoinBuildBudget = 1 << 20

func (e *Env) joinBuildBudget() float64 {
	if e.JoinBuildBudget > 0 {
		return float64(e.JoinBuildBudget)
	}
	return float64(defaultJoinBuildBudget)
}

// equiCond is one top-level AND conjunct `a.x = b.y` whose two column
// references resolve uniquely to two different FROM relations.
type equiCond struct {
	lrel, lcol int
	rrel, rcol int
	// exact selects the exact-integer keyspace: both columns are declared
	// INTEGER, so int-int equality needs no float image (see joinKeysExact).
	exact bool
}

// collectEquiConds walks the top-level AND tree of where and returns every
// equi-join conjunct between two distinct relations of rels. A reference
// that is ambiguous at this scope level, or does not resolve here at all
// (it may be a correlated outer reference), never yields a conjunct.
func (e *Env) collectEquiConds(where sqlast.Expr, rels []*relation) []equiCond {
	var out []equiCond
	var walk func(x sqlast.Expr)
	walk = func(x sqlast.Expr) {
		b, ok := x.(*sqlast.Binary)
		if !ok {
			return
		}
		if b.Op == sqlast.OpAnd {
			walk(b.L)
			walk(b.R)
			return
		}
		if b.Op != sqlast.OpEq {
			return
		}
		lref, lok := b.L.(*sqlast.ColumnRef)
		rref, rok := b.R.(*sqlast.ColumnRef)
		if !lok || !rok {
			return
		}
		lc, lr := resolveInRels(lref, rels)
		rc, rr := resolveInRels(rref, rels)
		if lr < 0 || rr < 0 || lr == rr {
			return
		}
		out = append(out, equiCond{
			lrel: lr, lcol: lc, rrel: rr, rcol: rc,
			exact: e.condExact(rels, lr, lc, rr, rc),
		})
	}
	walk(where)
	return out
}

// resolveInRels resolves a column reference uniquely against the block's
// relations, mirroring scope.lookup's innermost-level matching. Ambiguous
// or unresolvable references return rel -1.
func resolveInRels(ref *sqlast.ColumnRef, rels []*relation) (col, rel int) {
	rel, col = -1, -1
	for ri, r := range rels {
		if ref.Qualifier != "" && ref.Qualifier != r.binding {
			continue
		}
		for ci, c := range r.cols {
			if c == ref.Column {
				if rel >= 0 {
					return -1, -1 // ambiguous
				}
				rel, col = ri, ci
			}
		}
	}
	return col, rel
}

func (e *Env) condExact(rels []*relation, lr, lc, rr, rc int) bool {
	k0, ok0 := e.relColumnKind(rels[lr], lc)
	k1, ok1 := e.relColumnKind(rels[rr], rc)
	return ok0 && ok1 && k0 == value.KindInt && k1 == value.KindInt
}

// joinStep joins relation right into the set built so far.
type joinStep struct {
	right int
	// conds are normalized so lrel is already joined and rrel == right.
	// Empty conds means a cross-product step (no connecting conjunct).
	conds []equiCond
	// merge selects a sort-merge join (build side over budget) over the
	// default hash join.
	merge bool
	// est is the estimated number of output combinations after this step.
	est float64
}

// joinPlan is a left-deep join order: start, then each step's relation.
type joinPlan struct {
	start int
	steps []joinStep
}

// planJoins builds the execution-time join plan for the block, or nil when
// planning does not apply (no WHERE, or no equi-join conjunct).
func (e *Env) planJoins(sel *sqlast.Select, rels []*relation) *joinPlan {
	if sel.Where == nil {
		return nil
	}
	conds := e.collectEquiConds(sel.Where, rels)
	if len(conds) == 0 {
		return nil
	}
	rows := make([]float64, len(rels))
	for i, r := range rels {
		rows[i] = float64(len(r.rows))
	}
	dist := e.distinctEstimator(rels, conds)
	start, steps := orderJoins(rows, dist, conds, e.joinBuildBudget())
	return &joinPlan{start: start, steps: steps}
}

// distinctEstimator returns a distinct-value estimator for the join
// columns: base tables use the storage layer's incrementally-maintained
// column statistics; transition tables (rule-local data with no stored
// stats) are counted exactly over their materialized rows.
func (e *Env) distinctEstimator(rels []*relation, conds []equiCond) func(rel, col int) float64 {
	type rc struct{ rel, col int }
	cache := make(map[rc]float64)
	lookup := func(rel, col int) float64 {
		r := rels[rel]
		if !r.trans && r.table != "" {
			if cs, err := e.Store.ColumnStats(r.table, col); err == nil {
				return float64(cs.Distinct)
			}
		}
		seen := make(map[value.Key]bool)
		for _, tr := range r.rows {
			if k, ok := value.KeyNumeric(tr.Values[col]); ok {
				seen[k] = true
			}
		}
		return float64(len(seen))
	}
	return func(rel, col int) float64 {
		key := rc{rel, col}
		if d, ok := cache[key]; ok {
			return d
		}
		d := lookup(rel, col)
		cache[key] = d
		return d
	}
}

// orderJoins picks a left-deep join order greedily: start from the
// smallest relation, then repeatedly join the connected relation with the
// lowest estimated output |S ⋈ R| = est(S)·|R|·∏ 1/max(d_S, d_R) over the
// connecting equi-conjuncts; with no connected relation left, take the
// smallest remaining as a cross-product step. Ties break to the lowest
// FROM position, so the order is deterministic. Shared by the executor
// (materialized row counts) and EXPLAIN (estimated row counts).
func orderJoins(rows []float64, dist func(rel, col int) float64, conds []equiCond, budget float64) (int, []joinStep) {
	n := len(rows)
	start := 0
	for i := 1; i < n; i++ {
		if rows[i] < rows[start] {
			start = i
		}
	}
	joined := make([]bool, n)
	joined[start] = true
	est := rows[start]
	var steps []joinStep
	for len(steps) < n-1 {
		best, bestEst := -1, 0.0
		var bestConds []equiCond
		for r := 0; r < n; r++ {
			if joined[r] {
				continue
			}
			cs := connectingConds(conds, joined, r)
			if len(cs) == 0 {
				continue
			}
			out := est * rows[r]
			for _, c := range cs {
				if d := maxf(dist(c.lrel, c.lcol), dist(c.rrel, c.rcol)); d > 1 {
					out /= d
				}
			}
			if best < 0 || out < bestEst {
				best, bestEst, bestConds = r, out, cs
			}
		}
		if best < 0 {
			for r := 0; r < n; r++ {
				if joined[r] {
					continue
				}
				if best < 0 || rows[r] < rows[best] {
					best = r
				}
			}
			bestEst = est * rows[best]
		}
		steps = append(steps, joinStep{
			right: best,
			conds: bestConds,
			merge: len(bestConds) > 0 && rows[best] > budget,
			est:   bestEst,
		})
		joined[best] = true
		est = bestEst
	}
	return start, steps
}

// connectingConds returns the conjuncts linking relation r to the joined
// set, normalized so the right side is r, capped at maxJoinKeyCols (the
// rest stay residual).
func connectingConds(conds []equiCond, joined []bool, r int) []equiCond {
	var out []equiCond
	for _, c := range conds {
		switch {
		case joined[c.lrel] && c.rrel == r:
			out = append(out, c)
		case joined[c.rrel] && c.lrel == r:
			out = append(out, equiCond{lrel: c.rrel, lcol: c.rcol, rrel: c.lrel, rcol: c.lcol, exact: c.exact})
		}
		if len(out) == maxJoinKeyCols {
			break
		}
	}
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Volcano operators over position vectors
// ---------------------------------------------------------------------------

// A comboOp is a Volcano iterator producing position vectors ("combos"):
// combo[i] is the row index bound for relation i (-1 while unbound).
type comboOp interface {
	open() error
	next() ([]int32, bool, error)
	close()
}

// joinKey is a composite hash/merge key of up to maxJoinKeyCols columns.
type joinKey struct {
	n int8
	k [maxJoinKeyCols]value.Key
}

func joinKeyLess(a, b joinKey) bool {
	for i := 0; i < int(a.n); i++ {
		if a.k[i] != b.k[i] {
			return value.KeyLess(a.k[i], b.k[i])
		}
	}
	return false
}

func condKey(c equiCond, v value.Value) (value.Key, bool) {
	if c.exact {
		return value.KeyExact(v)
	}
	return value.KeyNumeric(v)
}

// rightKey keys a row of the step's right relation. ok is false when any
// key column is NULL (a NULL join key matches nothing).
func rightKey(st joinStep, row storage.Row) (joinKey, bool) {
	var k joinKey
	k.n = int8(len(st.conds))
	for i, c := range st.conds {
		key, ok := condKey(c, row[c.rcol])
		if !ok {
			return joinKey{}, false
		}
		k.k[i] = key
	}
	return k, true
}

// leftKey keys an input combo on the step's left-side columns.
func leftKey(st joinStep, rels []*relation, combo []int32) (joinKey, bool) {
	var k joinKey
	k.n = int8(len(st.conds))
	for i, c := range st.conds {
		v := rels[c.lrel].rows[combo[c.lrel]].Values[c.lcol]
		key, ok := condKey(c, v)
		if !ok {
			return joinKey{}, false
		}
		k.k[i] = key
	}
	return k, true
}

// scanOp emits one combo per row of the starting relation.
type scanOp struct {
	n, rel, rows int
	i            int
}

func (s *scanOp) open() error { s.i = 0; return nil }
func (s *scanOp) close()      {}

func (s *scanOp) next() ([]int32, bool, error) {
	if s.i >= s.rows {
		return nil, false, nil
	}
	c := make([]int32, s.n)
	for j := range c {
		c[j] = -1
	}
	c[s.rel] = int32(s.i)
	s.i++
	return c, true, nil
}

// hashJoinOp joins the input stream with the step's right relation through
// a hash table built on the right side. With no connecting conjuncts it
// degenerates to a cross-product step.
type hashJoinOp struct {
	input comboOp
	rels  []*relation
	step  joinStep

	table map[joinKey][]int32
	all   []int32 // cross-product step: every right row

	cur     []int32
	matches []int32
	mi      int
}

func (o *hashJoinOp) open() error {
	if err := o.input.open(); err != nil {
		return err
	}
	right := o.rels[o.step.right]
	if len(o.step.conds) == 0 {
		o.all = make([]int32, len(right.rows))
		for i := range right.rows {
			o.all[i] = int32(i)
		}
		return nil
	}
	o.table = make(map[joinKey][]int32, len(right.rows))
	for i, tr := range right.rows {
		if k, ok := rightKey(o.step, tr.Values); ok {
			o.table[k] = append(o.table[k], int32(i))
		}
	}
	return nil
}

func (o *hashJoinOp) close() { o.input.close() }

func (o *hashJoinOp) next() ([]int32, bool, error) {
	for {
		if o.mi < len(o.matches) {
			out := make([]int32, len(o.cur))
			copy(out, o.cur)
			out[o.step.right] = o.matches[o.mi]
			o.mi++
			return out, true, nil
		}
		c, ok, err := o.input.next()
		if err != nil || !ok {
			return nil, false, err
		}
		if len(o.step.conds) == 0 {
			o.cur, o.matches, o.mi = c, o.all, 0
			continue
		}
		k, kok := leftKey(o.step, o.rels, c)
		if !kok {
			continue
		}
		o.cur, o.matches, o.mi = c, o.table[k], 0
	}
}

// mergeJoinOp is the sort-merge alternative chosen when the hash build
// side would exceed the join-build budget: both sides are sorted on the
// composite key (value.KeyLess order) and merged group-wise. Output order
// is arbitrary here; restoreOrderOp re-establishes the odometer order.
type mergeJoinOp struct {
	input comboOp
	rels  []*relation
	step  joinStep

	out [][]int32
	i   int
}

type keyedCombo struct {
	key   joinKey
	combo []int32
}

type keyedRow struct {
	key joinKey
	idx int32
}

func (o *mergeJoinOp) open() error {
	if err := o.input.open(); err != nil {
		return err
	}
	var left []keyedCombo
	for {
		c, ok, err := o.input.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if k, kok := leftKey(o.step, o.rels, c); kok {
			left = append(left, keyedCombo{key: k, combo: c})
		}
	}
	right := make([]keyedRow, 0, len(o.rels[o.step.right].rows))
	for i, tr := range o.rels[o.step.right].rows {
		if k, ok := rightKey(o.step, tr.Values); ok {
			right = append(right, keyedRow{key: k, idx: int32(i)})
		}
	}
	sortKeyed(left, right)
	li, ri := 0, 0
	for li < len(left) && ri < len(right) {
		switch {
		case joinKeyLess(left[li].key, right[ri].key):
			li++
		case joinKeyLess(right[ri].key, left[li].key):
			ri++
		default:
			re := ri
			for re < len(right) && right[re].key == right[ri].key {
				re++
			}
			le := li
			for le < len(left) && left[le].key == left[li].key {
				le++
			}
			for ; li < le; li++ {
				for j := ri; j < re; j++ {
					c := make([]int32, len(left[li].combo))
					copy(c, left[li].combo)
					c[o.step.right] = right[j].idx
					o.out = append(o.out, c)
				}
			}
			ri = re
		}
	}
	return nil
}

func (o *mergeJoinOp) close() { o.input.close() }

func (o *mergeJoinOp) next() ([]int32, bool, error) {
	if o.i >= len(o.out) {
		return nil, false, nil
	}
	c := o.out[o.i]
	o.i++
	return c, true, nil
}

func sortKeyed(left []keyedCombo, right []keyedRow) {
	sort.SliceStable(left, func(i, j int) bool { return joinKeyLess(left[i].key, left[j].key) })
	sort.SliceStable(right, func(i, j int) bool { return joinKeyLess(right[i].key, right[j].key) })
}

func sortCombos(out [][]int32) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// restoreOrderOp drains its input and re-emits the combos sorted
// lexicographically on the position vector — exactly the nested-loop
// odometer's emission order (position 0 outermost).
type restoreOrderOp struct {
	input comboOp
	out   [][]int32
	i     int
}

func (o *restoreOrderOp) open() error {
	if err := o.input.open(); err != nil {
		return err
	}
	for {
		c, ok, err := o.input.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		o.out = append(o.out, c)
	}
	sortCombos(o.out)
	return nil
}

func (o *restoreOrderOp) close() { o.input.close() }

func (o *restoreOrderOp) next() ([]int32, bool, error) {
	if o.i >= len(o.out) {
		return nil, false, nil
	}
	c := o.out[o.i]
	o.i++
	return c, true, nil
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

// forEachComboPlanned executes the planned operator tree and drives the
// same contract as forEachCombo: bind sc.vars, evaluate the full WHERE,
// observe, and invoke fn — in odometer order.
func (e *Env) forEachComboPlanned(sel *sqlast.Select, sc *scope, rels []*relation, plan *joinPlan, fn func() error) error {
	if e.Counters != nil {
		e.Counters.Planned.Add(1)
	}
	var op comboOp = &scanOp{n: len(rels), rel: plan.start, rows: len(rels[plan.start].rows)}
	for _, st := range plan.steps {
		if st.merge {
			op = &mergeJoinOp{input: op, rels: rels, step: st}
		} else {
			op = &hashJoinOp{input: op, rels: rels, step: st}
		}
	}
	root := &restoreOrderOp{input: op}
	if err := root.open(); err != nil {
		return err
	}
	defer root.close()
	for {
		c, ok, err := root.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		for i, rel := range rels {
			sc.vars[i].row = rel.rows[c[i]].Values
			sc.vars[i].handle = rel.rows[c[i]].Handle
		}
		hold, err := e.whereHolds(sel, sc)
		if err != nil {
			return err
		}
		if !hold {
			continue
		}
		for _, b := range sc.vars {
			e.observe(b)
		}
		if err := fn(); err != nil {
			return err
		}
	}
}
