package exec

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sopr/internal/sqlast"
	"sopr/internal/sqlparse"
	"sopr/internal/storage"
	"sopr/internal/value"
)

// planEnv builds a three-table store sized so join order matters.
func planEnv(t *testing.T) *Env {
	t.Helper()
	e := &Env{Store: storage.New()}
	for _, src := range []string{
		`create table emp (name varchar, emp_no int not null, salary float, dept_no int)`,
		`create table dept (dept_no int, mgr_no int)`,
		`create table proj (proj_no int, emp_no int, dept_no int)`,
	} {
		mustExecDDL(t, e, src)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		sal := "NULL"
		if i%5 != 0 {
			sal = fmt.Sprintf("%d", 1000+rng.Intn(5000))
		}
		dn := "NULL"
		if i%7 != 0 {
			dn = fmt.Sprintf("%d", rng.Intn(6))
		}
		mustOp(t, e, fmt.Sprintf(`insert into emp values ('e%d', %d, %s, %s)`, i, i, sal, dn))
	}
	for d := 0; d < 6; d++ {
		mustOp(t, e, fmt.Sprintf(`insert into dept values (%d, %d)`, d, d%3))
	}
	for p := 0; p < 15; p++ {
		mustOp(t, e, fmt.Sprintf(`insert into proj values (%d, %d, %d)`, p, rng.Intn(40), rng.Intn(6)))
	}
	return e
}

// runBoth evaluates the same query with the planner on and off and
// requires byte-identical results (columns, rows, order).
func runBoth(t *testing.T, e *Env, src string) {
	t.Helper()
	st, err := sqlparse.ParseStatement(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	sel := st.(*sqlast.Select)
	on := &Env{Store: e.Store}
	off := &Env{Store: e.Store, NoPlanner: true}
	naive := &Env{Store: e.Store, NoPlanner: true, NoHashJoin: true, NoIndex: true}
	want, err := naive.Query(sel)
	if err != nil {
		t.Fatalf("naive %q: %v", src, err)
	}
	for name, env := range map[string]*Env{"planner": on, "noplanner": off} {
		got, err := env.Query(sel)
		if err != nil {
			t.Fatalf("%s %q: %v", name, src, err)
		}
		if got.String() != want.String() {
			t.Errorf("%s diverges on %q:\nplanned:\n%s\nnaive:\n%s", name, src, got, want)
		}
	}
}

// TestPlannerParity: the planned join path must be observationally
// identical to the naive nested-loop driver — same rows, same order —
// across joins of 2..4 relations, residual predicates, NULL join keys,
// aggregates, and correlated subqueries.
func TestPlannerParity(t *testing.T) {
	e := planEnv(t)
	for _, src := range []string{
		`select e.name, d.mgr_no from emp e, dept d where e.dept_no = d.dept_no`,
		`select e.name, d.mgr_no from emp e, dept d where d.dept_no = e.dept_no and e.salary > 2000`,
		`select e.name, p.proj_no from emp e, dept d, proj p
		   where e.dept_no = d.dept_no and p.emp_no = e.emp_no`,
		`select count(*) from emp e, dept d, proj p
		   where e.dept_no = d.dept_no and p.dept_no = d.dept_no and p.emp_no = e.emp_no`,
		`select e.name from emp e, dept d where e.dept_no = d.dept_no and d.mgr_no = 1 order by e.name`,
		`select d.dept_no, count(*) from emp e, dept d where e.dept_no = d.dept_no group by d.dept_no`,
		`select e1.name, e2.name from emp e1, emp e2, dept d
		   where e1.dept_no = e2.dept_no and e2.dept_no = d.dept_no and e1.emp_no < e2.emp_no`,
		`select e.name from emp e, dept d
		   where e.dept_no = d.dept_no
		     and exists (select * from proj p where p.dept_no = d.dept_no)`,
		`select e.name, d.mgr_no, p.proj_no from emp e, dept d, proj p
		   where e.dept_no = d.dept_no and p.dept_no = d.dept_no limit 7`,
		// Cross-product component: emp-dept connected, proj unconnected.
		`select count(*) from emp e, dept d, proj p where e.dept_no = d.dept_no`,
	} {
		runBoth(t, e, src)
	}
}

// TestPlannerParityRandom fuzzes equi-join queries over random data.
func TestPlannerParityRandom(t *testing.T) {
	e := planEnv(t)
	rng := rand.New(rand.NewSource(11))
	cols := []string{"emp_no", "dept_no"}
	for i := 0; i < 60; i++ {
		c1 := cols[rng.Intn(2)]
		c2 := cols[rng.Intn(2)]
		extra := ""
		if rng.Intn(2) == 0 {
			extra = fmt.Sprintf(" and e.salary > %d", 1000+rng.Intn(5000))
		}
		src := fmt.Sprintf(
			`select e.name, p.proj_no from emp e, dept d, proj p where e.%s = p.%s and d.dept_no = e.dept_no%s`,
			c1, c2, extra)
		runBoth(t, e, src)
	}
}

// TestPlannerCounters: the planned path reports itself through
// PlanCounters.
func TestPlannerCounters(t *testing.T) {
	e := planEnv(t)
	var pc PlanCounters
	env := &Env{Store: e.Store, Counters: &pc}
	mustQuery(t, env, `select e.name from emp e, dept d where e.dept_no = d.dept_no`)
	if got := pc.Planned.Load(); got != 1 {
		t.Fatalf("Planned = %d, want 1", got)
	}
	env.NoPlanner = true
	mustQuery(t, env, `select e.name from emp e, dept d where e.dept_no = d.dept_no`)
	if got := pc.Planned.Load(); got != 1 {
		t.Fatalf("Planned after NoPlanner query = %d, want still 1", got)
	}
}

// TestMergeJoinBudget forces the sort-merge join by shrinking the hash
// build budget and checks parity plus plan visibility.
func TestMergeJoinBudget(t *testing.T) {
	e := planEnv(t)
	src := `select e.name, d.mgr_no from emp e, dept d where e.dept_no = d.dept_no order by 1`
	st, _ := sqlparse.ParseStatement(src)
	sel := st.(*sqlast.Select)
	tiny := &Env{Store: e.Store, JoinBuildBudget: 1}
	naive := &Env{Store: e.Store, NoPlanner: true, NoHashJoin: true}
	got, err := tiny.Query(sel)
	if err != nil {
		t.Fatal(err)
	}
	want, err := naive.Query(sel)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("merge join diverges:\n%s\nvs\n%s", got, want)
	}
	res, err := tiny.Explain(sel)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resultText(res), "merge join") {
		t.Fatalf("explain under tiny budget should choose merge join:\n%s", resultText(res))
	}
	res, err = (&Env{Store: e.Store}).Explain(sel)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resultText(res), "hash join") {
		t.Fatalf("explain under default budget should choose hash join:\n%s", resultText(res))
	}
}

func resultText(r *Result) string {
	var b strings.Builder
	for _, row := range r.Rows {
		b.WriteString(row[0].Str())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestPlannerProbeFallbackCosted pins the 2^53 regression end to end: a
// float probe ≥ 2^53 on an INTEGER index cannot be answered exactly, so
// (a) EXPLAIN costs the access as a scan and says why, (b) execution
// falls back to the heap scan, counts the fallback, and still returns the
// right rows.
func TestPlannerProbeFallbackCosted(t *testing.T) {
	e := &Env{Store: storage.New()}
	mustExecDDL(t, e, `create table big (id int, tag varchar)`)
	if err := e.Store.(*storage.Store).CreateIndex("big_id", "big", "id"); err != nil {
		t.Fatal(err)
	}
	huge := int64(1) << 60 // integral, exceeds 2^53: float image is ambiguous
	mustOp(t, e, fmt.Sprintf(`insert into big values (%d, 'hit'), (%d, 'near'), (1, 'small')`, huge, huge+1))

	src := fmt.Sprintf(`select tag from big where id = %d.0`, huge)
	st, err := sqlparse.ParseStatement(src)
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*sqlast.Select)

	exp, err := e.Explain(sel)
	if err != nil {
		t.Fatal(err)
	}
	text := resultText(exp)
	if !strings.Contains(text, "cannot answer probe exactly, costed as scan") {
		t.Fatalf("explain must cost the 2^53 fallback as a scan:\n%s", text)
	}

	var pc PlanCounters
	env := &Env{Store: e.Store, Counters: &pc}
	res, err := env.Query(sel)
	if err != nil {
		t.Fatal(err)
	}
	// float64(2^60) == float64(2^60+1): under float comparison semantics
	// both rows match (value.Compare converts mixed int/float to float64).
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (float-image equality)\n%s", len(res.Rows), res)
	}
	if got := pc.ProbeFallbacks.Load(); got != 1 {
		t.Fatalf("ProbeFallbacks = %d, want 1", got)
	}

	// An in-range probe stays indexed and is costed as a probe.
	exp, err = e.Explain(mustParseSelect(t, `select tag from big where id = 1`))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resultText(exp), "index probe big (id = 1)") {
		t.Fatalf("in-range probe should stay indexed:\n%s", resultText(exp))
	}
}

func mustParseSelect(t *testing.T, src string) *sqlast.Select {
	t.Helper()
	st, err := sqlparse.ParseStatement(src)
	if err != nil {
		t.Fatal(err)
	}
	return st.(*sqlast.Select)
}

// TestLimit pins LIMIT semantics: applied after DISTINCT and ORDER BY,
// zero allowed, over-long limits are no-ops, negative/non-integer reject.
func TestLimit(t *testing.T) {
	e := testEnv(t)
	res := mustQuery(t, e, `select name from emp order by salary desc limit 2`)
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "jane" || res.Rows[1][0].Str() != "mary" {
		t.Fatalf("limit 2 after order by: %s", res)
	}
	if res := mustQuery(t, e, `select distinct dept_no from emp order by 1 limit 2`); len(res.Rows) != 2 {
		t.Fatalf("limit after distinct: %s", res)
	}
	if res := mustQuery(t, e, `select name from emp limit 0`); len(res.Rows) != 0 {
		t.Fatalf("limit 0: %s", res)
	}
	if res := mustQuery(t, e, `select name from emp limit 100`); len(res.Rows) != 6 {
		t.Fatalf("limit beyond rows: %s", res)
	}
	if res := mustQuery(t, e, `select name from emp limit 1 + 1`); len(res.Rows) != 2 {
		t.Fatalf("limit expression: %s", res)
	}
	if err := queryErr(t, e, `select name from emp limit -1`); err == nil {
		t.Fatal("negative limit must error")
	}
	if err := queryErr(t, e, `select name from emp limit 'x'`); err == nil {
		t.Fatal("non-integer limit must error")
	}
}

// TestExplainShapes sanity-checks the EXPLAIN renderer across statement
// kinds (goldens live in the engine package).
func TestExplainShapes(t *testing.T) {
	e := testEnv(t)
	sel := mustParseSelect(t, `select name from emp where dept_no = 1 order by name limit 3`)
	res, err := e.Explain(sel)
	if err != nil {
		t.Fatal(err)
	}
	text := resultText(res)
	for _, want := range []string{"select (cost-based planner)", "limit 3", "order by name", "filter", "seq scan emp (rows 6)"} {
		if !strings.Contains(text, want) {
			t.Errorf("explain select missing %q:\n%s", want, text)
		}
	}
	off := &Env{Store: e.Store, NoPlanner: true}
	res, err = off.Explain(mustParseSelect(t, `select e.name from emp e, dept d where e.dept_no = d.dept_no`))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resultText(res), "planner disabled") {
		t.Errorf("NoPlanner explain must say so:\n%s", resultText(res))
	}
	for src, want := range map[string]string{
		`explain delete from emp where emp_no = 3`:                   "delete from emp",
		`explain update emp set salary = 0 where name = 'sam'`:       "update emp",
		`explain insert into dept values (9, 9)`:                     "insert into dept (1 rows)",
		`explain insert into dept (select dept_no, emp_no from emp)`: "insert into dept (from select)",
	} {
		st, err := sqlparse.ParseStatement(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		res, err := e.Explain(st.(*sqlast.Explain).Stmt)
		if err != nil {
			t.Fatalf("explain %q: %v", src, err)
		}
		if !strings.Contains(resultText(res), want) {
			t.Errorf("explain %q missing %q:\n%s", src, want, resultText(res))
		}
	}
	if _, err := e.Explain(&sqlast.ProcessRules{}); err == nil {
		t.Error("explaining PROCESS RULES must error")
	}
	_ = value.Null
}
