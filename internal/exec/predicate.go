package exec

import (
	"sopr/internal/sqlast"
)

// EvalPredicate evaluates a standalone boolean expression — a rule's
// condition (Section 3 of the paper) — with no row bindings. Embedded
// selects provide access to the current database state and, through the
// environment's TransTableSource, to the rule's transition tables. A nil
// expression is IF TRUE. Unknown (NULL) is not true.
func (e *Env) EvalPredicate(expr sqlast.Expr) (bool, error) {
	if expr == nil {
		return true, nil
	}
	v, err := e.evalExpr(&scope{}, expr)
	if err != nil {
		return false, err
	}
	t, err := truth(v)
	if err != nil {
		return false, err
	}
	return t.IsTrue(), nil
}
