package exec

import (
	"fmt"
	"sort"
	"strings"

	"sopr/internal/sqlast"
	"sopr/internal/storage"
	"sopr/internal/value"
)

// Result is the output of a query: named columns and rows.
type Result struct {
	Columns []string
	Rows    []storage.Row
}

// String renders the result as a simple aligned table (for the shell and
// examples).
func (r *Result) String() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			if v.Kind() == value.KindString {
				s = v.Str() // print strings unquoted in tables
			}
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range r.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	for _, row := range cells {
		b.WriteByte('\n')
		for i, s := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], s)
		}
	}
	return b.String()
}

// Query evaluates a top-level SELECT statement.
func (e *Env) Query(sel *sqlast.Select) (*Result, error) {
	return e.evalSelect(sel, nil)
}

// outCol is one planned output column.
type outCol struct {
	name string
	expr sqlast.Expr
}

// sortedRow pairs an output row with its ORDER BY keys.
type sortedRow struct {
	row  storage.Row
	keys storage.Row
}

// evalSelect evaluates a query block in an optional parent scope (for
// correlated subqueries).
func (e *Env) evalSelect(sel *sqlast.Select, parent *scope) (*Result, error) {
	// Materialize FROM inputs, routing base tables through a secondary
	// index when a sargable WHERE conjunct allows it (see access.go).
	infos := e.planBindings(sel.From)
	rels := make([]*relation, len(sel.From))
	seen := make(map[string]bool)
	for i, tr := range sel.From {
		rel, err := e.materializeFrom(tr, i, sel, infos, parent)
		if err != nil {
			return nil, err
		}
		if seen[rel.binding] {
			return nil, fmt.Errorf("exec: duplicate table binding %q in FROM (use aliases)", rel.binding)
		}
		seen[rel.binding] = true
		rels[i] = rel
	}

	// Plan output columns, expanding * and q.*.
	cols, err := planColumns(sel, rels)
	if err != nil {
		return nil, err
	}

	hasAgg := len(sel.GroupBy) > 0 || sel.Having != nil
	if !hasAgg {
		for _, c := range cols {
			if exprHasAggregate(c.expr) {
				hasAgg = true
				break
			}
		}
	}

	// The evaluation scope for this block.
	sc := &scope{parent: parent, vars: make([]*boundRow, len(rels))}
	for i, rel := range rels {
		sc.vars[i] = &boundRow{binding: rel.binding, table: rel.table, cols: rel.cols, trans: rel.trans}
	}

	var out []sortedRow
	if hasAgg {
		out, err = e.evalAggregateQuery(sel, sc, rels, cols)
	} else {
		out, err = e.evalPlainQuery(sel, sc, rels, cols)
	}
	if err != nil {
		return nil, err
	}

	if sel.Distinct {
		out = distinctRows(out)
	}
	if len(sel.OrderBy) > 0 {
		sortRows(out, sel.OrderBy)
	}
	if sel.Limit != nil {
		n, err := e.limitCount(sel.Limit, parent)
		if err != nil {
			return nil, err
		}
		if n < len(out) {
			out = out[:n]
		}
	}

	res := &Result{Columns: make([]string, len(cols)), Rows: make([]storage.Row, len(out))}
	for i, c := range cols {
		res.Columns[i] = c.name
	}
	for i, sr := range out {
		res.Rows[i] = sr.row
	}
	return res, nil
}

// planColumns expands the projection list into concrete output columns.
func planColumns(sel *sqlast.Select, rels []*relation) ([]outCol, error) {
	var cols []outCol
	for _, it := range sel.Items {
		switch {
		case it.Star && it.Qualifier == "":
			if len(rels) == 0 {
				return nil, fmt.Errorf("exec: SELECT * with no FROM clause")
			}
			for _, rel := range rels {
				for _, c := range rel.cols {
					cols = append(cols, outCol{name: c, expr: &sqlast.ColumnRef{Qualifier: rel.binding, Column: c}})
				}
			}
		case it.Star:
			found := false
			for _, rel := range rels {
				if rel.binding == it.Qualifier {
					for _, c := range rel.cols {
						cols = append(cols, outCol{name: c, expr: &sqlast.ColumnRef{Qualifier: rel.binding, Column: c}})
					}
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("exec: unknown qualifier %q in %s.*", it.Qualifier, it.Qualifier)
			}
		default:
			name := it.Alias
			if name == "" {
				if cr, ok := it.Expr.(*sqlast.ColumnRef); ok {
					name = cr.Column
				} else {
					name = it.Expr.String()
				}
			}
			cols = append(cols, outCol{name: name, expr: it.Expr})
		}
	}
	return cols, nil
}

// forEachCombo drives the nested-loops join: it sets sc.vars to every
// combination of rows from rels that satisfies WHERE and invokes fn.
func (e *Env) forEachCombo(sel *sqlast.Select, sc *scope, rels []*relation, fn func() error) error {
	n := len(rels)
	if n == 0 {
		ok, err := e.whereHolds(sel, sc)
		if err != nil {
			return err
		}
		if ok {
			return fn()
		}
		return nil
	}
	for _, rel := range rels {
		if len(rel.rows) == 0 {
			return nil // empty cross product
		}
	}
	// Cost-based planned join execution for multi-relation blocks with
	// equi-join conjuncts (see plan.go). NoHashJoin also disables it: the
	// planner's operators are hash/merge join machinery, and the ablation
	// configurations want true nested loops.
	if !e.NoPlanner && !e.NoHashJoin && sel.Where != nil {
		if plan := e.planJoins(sel, rels); plan != nil {
			return e.forEachComboPlanned(sel, sc, rels, plan, fn)
		}
	}
	// Legacy hash equi-join fast path for two-relation joins (see
	// hashjoin.go); reached only with the planner disabled.
	if n == 2 && !e.NoHashJoin && sel.Where != nil {
		if c0, c1, ok := equiJoinConjunct(sel.Where, rels[0], rels[1]); ok {
			return e.forEachComboHash(sel, sc, rels, c0, c1, fn)
		}
	}
	idx := make([]int, n)
	for {
		for i, rel := range rels {
			sc.vars[i].row = rel.rows[idx[i]].Values
			sc.vars[i].handle = rel.rows[idx[i]].Handle
		}
		ok, err := e.whereHolds(sel, sc)
		if err != nil {
			return err
		}
		if ok {
			for _, b := range sc.vars {
				e.observe(b)
			}
			if err := fn(); err != nil {
				return err
			}
		}
		// Advance the index vector (odometer).
		k := n - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(rels[k].rows) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			return nil
		}
	}
}

// limitCount evaluates a LIMIT expression, which must be independent of
// the block's rows: it is evaluated once, in the enclosing scope, and must
// yield a non-negative integer.
func (e *Env) limitCount(expr sqlast.Expr, parent *scope) (int, error) {
	if parent == nil {
		parent = &scope{}
	}
	v, err := e.evalExpr(parent, expr)
	if err != nil {
		return 0, err
	}
	if v.Kind() != value.KindInt || v.Int() < 0 {
		return 0, fmt.Errorf("exec: LIMIT must be a non-negative integer, got %s", v)
	}
	return int(v.Int()), nil
}

func (e *Env) whereHolds(sel *sqlast.Select, sc *scope) (bool, error) {
	if sel.Where == nil {
		return true, nil
	}
	v, err := e.evalExpr(sc, sel.Where)
	if err != nil {
		return false, err
	}
	t, err := truth(v)
	if err != nil {
		return false, err
	}
	return t.IsTrue(), nil
}

// evalPlainQuery handles non-aggregate queries.
func (e *Env) evalPlainQuery(sel *sqlast.Select, sc *scope, rels []*relation, cols []outCol) ([]sortedRow, error) {
	var out []sortedRow
	err := e.forEachCombo(sel, sc, rels, func() error {
		row := make(storage.Row, len(cols))
		for i, c := range cols {
			v, err := e.evalExpr(sc, c.expr)
			if err != nil {
				return err
			}
			row[i] = v
		}
		keys, err := e.orderKeys(sel, sc, cols, row)
		if err != nil {
			return err
		}
		out = append(out, sortedRow{row: row, keys: keys})
		return nil
	})
	return out, err
}

// evalAggregateQuery handles GROUP BY / HAVING / aggregate-projection
// queries.
func (e *Env) evalAggregateQuery(sel *sqlast.Select, sc *scope, rels []*relation, cols []outCol) ([]sortedRow, error) {
	type group struct {
		rows [][]*boundRow
	}
	groups := make(map[string]*group)
	var order []string

	err := e.forEachCombo(sel, sc, rels, func() error {
		// Group key from GROUP BY expressions (single group if none).
		key := ""
		for _, g := range sel.GroupBy {
			v, err := e.evalExpr(sc, g)
			if err != nil {
				return err
			}
			key += v.String() + "\x00"
		}
		gr, ok := groups[key]
		if !ok {
			gr = &group{}
			groups[key] = gr
			order = append(order, key)
		}
		// Snapshot the current bindings for the group.
		snap := make([]*boundRow, len(sc.vars))
		for i, b := range sc.vars {
			cp := *b
			snap[i] = &cp
		}
		gr.rows = append(gr.rows, snap)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// With no GROUP BY, an aggregate query over zero rows still produces
	// one row (e.g. SELECT COUNT(*) FROM empty → 0).
	if len(sel.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &group{}
		order = append(order, "")
	}

	var out []sortedRow
	for _, key := range order {
		gr := groups[key]
		if len(gr.rows) > 0 {
			sc.vars = gr.rows[0]
		} else {
			// Zero-row group: bind all-NULL rows so stray column references
			// evaluate to NULL rather than crashing.
			for _, b := range sc.vars {
				b.row = make(storage.Row, len(b.cols))
				for i := range b.row {
					b.row[i] = value.Null
				}
				b.handle = 0
			}
		}
		sc.groupRows = gr.rows
		if sc.groupRows == nil {
			// A zero-row single group (aggregate query over an empty
			// input) still needs a non-nil group context.
			sc.groupRows = [][]*boundRow{}
		}

		if sel.Having != nil {
			v, err := e.evalExpr(sc, sel.Having)
			if err != nil {
				return nil, err
			}
			t, err := truth(v)
			if err != nil {
				return nil, err
			}
			if !t.IsTrue() {
				sc.groupRows = nil
				continue
			}
		}
		row := make(storage.Row, len(cols))
		for i, c := range cols {
			v, err := e.evalExpr(sc, c.expr)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		keys, err := e.orderKeys(sel, sc, cols, row)
		if err != nil {
			return nil, err
		}
		out = append(out, sortedRow{row: row, keys: keys})
		sc.groupRows = nil
	}
	return out, nil
}

// orderKeys computes ORDER BY sort keys for one output row. A bare column
// reference that matches an output column name uses the output value
// (supporting ORDER BY on select-list aliases); otherwise the expression is
// evaluated in the row's input scope.
func (e *Env) orderKeys(sel *sqlast.Select, sc *scope, cols []outCol, row storage.Row) (storage.Row, error) {
	if len(sel.OrderBy) == 0 {
		return nil, nil
	}
	keys := make(storage.Row, len(sel.OrderBy))
	for i, ob := range sel.OrderBy {
		// ORDER BY <ordinal> selects the Nth output column (1-based).
		if lit, ok := ob.Expr.(*sqlast.Literal); ok && lit.Val.Kind() == value.KindInt {
			n := lit.Val.Int()
			if n < 1 || int(n) > len(cols) {
				return nil, fmt.Errorf("exec: ORDER BY position %d is out of range (1..%d)", n, len(cols))
			}
			keys[i] = row[n-1]
			continue
		}
		if cr, ok := ob.Expr.(*sqlast.ColumnRef); ok && cr.Qualifier == "" {
			found := false
			for ci, c := range cols {
				if c.name == cr.Column {
					keys[i] = row[ci]
					found = true
					break
				}
			}
			if found {
				continue
			}
		}
		v, err := e.evalExpr(sc, ob.Expr)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

func distinctRows(rows []sortedRow) []sortedRow {
	seen := make(map[string]bool, len(rows))
	var out []sortedRow
	for _, sr := range rows {
		key := ""
		for _, v := range sr.row {
			key += v.String() + "\x00"
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, sr)
		}
	}
	return out
}

// sortRows sorts by the precomputed keys; NULL sorts before any value,
// incomparable values compare equal.
func sortRows(rows []sortedRow, order []sqlast.OrderItem) {
	sort.SliceStable(rows, func(i, j int) bool {
		for k, ob := range order {
			a, b := rows[i].keys[k], rows[j].keys[k]
			var cmp int
			switch {
			case a.IsNull() && b.IsNull():
				cmp = 0
			case a.IsNull():
				cmp = -1
			case b.IsNull():
				cmp = 1
			default:
				c, ok := value.Compare(a, b)
				if !ok {
					c = 0
				}
				cmp = c
			}
			if ob.Desc {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
}
