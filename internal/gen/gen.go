// Package gen generates random-but-valid rule-system workloads for the
// differential test harness: schemas, secondary indexes, rule sets
// (transition predicates, transition-table references, self- and
// mutually-triggering actions, priority edges, rollback actions) and
// operation-block workloads.
//
// The workload model is deliberately its own small AST, independent of
// sqlast: the renderer turns it into SQL text for the real engine, while
// the reference oracle (internal/oracle) interprets the model directly.
// A divergence anywhere in the parser, executor, access paths, effect
// composition, or rule loop therefore surfaces as a state mismatch.
//
// Every workload serializes to JSON, so minimized failures can be checked
// into testdata/corpus/ and replayed deterministically.
package gen

import (
	"encoding/json"
	"fmt"
	"math"

	"sopr/internal/value"
)

// Lit is a JSON-serializable SQL literal. K is "n" (NULL), "i", "f", "s"
// or "b".
type Lit struct {
	K string  `json:"k"`
	I int64   `json:"i,omitempty"`
	F float64 `json:"f,omitempty"`
	S string  `json:"s,omitempty"`
	B bool    `json:"b,omitempty"`
}

// Null, IntLit, FloatLit, StrLit, BoolLit construct literals.
var Null = Lit{K: "n"}

// IntLit returns an integer literal.
func IntLit(i int64) Lit { return Lit{K: "i", I: i} }

// FloatLit returns a float literal. NaN and infinities are not
// representable in SQL text and are rejected by Validate.
func FloatLit(f float64) Lit { return Lit{K: "f", F: f} }

// StrLit returns a string literal.
func StrLit(s string) Lit { return Lit{K: "s", S: s} }

// BoolLit returns a boolean literal.
func BoolLit(b bool) Lit { return Lit{K: "b", B: b} }

// Value converts the literal to the engine's value representation.
func (l Lit) Value() value.Value {
	switch l.K {
	case "i":
		return value.NewInt(l.I)
	case "f":
		return value.NewFloat(l.F)
	case "s":
		return value.NewString(l.S)
	case "b":
		return value.NewBool(l.B)
	default:
		return value.Null
	}
}

// Col is one generated column. Kind is the value.Kind name used in CREATE
// TABLE ("int", "float", "varchar", "boolean"). All generated columns are
// nullable.
type Col struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// ValueKind maps the column kind name to a value.Kind.
func (c Col) ValueKind() value.Kind {
	switch c.Kind {
	case "int":
		return value.KindInt
	case "float":
		return value.KindFloat
	case "varchar":
		return value.KindString
	case "boolean":
		return value.KindBool
	default:
		return value.KindNull
	}
}

// Table is one generated table.
type Table struct {
	Name string `json:"name"`
	Cols []Col  `json:"cols"`
}

// ColIndex returns the index of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Index is a generated secondary index (engine-side only: the oracle is
// index-free by construction, which is the point).
type Index struct {
	Name   string `json:"name"`
	Table  string `json:"table"`
	Column string `json:"column"`
}

// Source is a FROM source for subqueries and insert-selects: a base table
// (Trans == "") or one of the paper's transition tables. Column is set
// only for "old"/"new" updated forms licensed by a column-level predicate.
type Source struct {
	Trans  string `json:"trans,omitempty"` // "", "inserted", "deleted", "old", "new"
	Table  string `json:"table"`
	Column string `json:"column,omitempty"`
}

// SubQuery is a one-source subquery: `select Col from Src [where ...]`.
// Col is "" for `select *` (exists) and count(*) forms.
type SubQuery struct {
	Col   string `json:"col,omitempty"`
	Src   Source `json:"src"`
	Where *Where `json:"where,omitempty"`
}

// Atom is one comparison in a WHERE tree. Op is one of "=", "<>", "<",
// "<=", ">", ">=", "isnull", "notnull", or "in" (Sub set, Lit unused).
type Atom struct {
	Col string    `json:"col"`
	Op  string    `json:"op"`
	Lit Lit       `json:"lit,omitempty"`
	Sub *SubQuery `json:"sub,omitempty"`
}

// Where is a predicate tree: exactly one of Atom, And, Or, Not is set.
type Where struct {
	Atom *Atom    `json:"atom,omitempty"`
	And  []*Where `json:"and,omitempty"`
	Or   []*Where `json:"or,omitempty"`
	Not  *Where   `json:"not,omitempty"`
}

// JoinSrc is one aliased FROM source of a join condition.
type JoinSrc struct {
	Src   Source `json:"src"`
	Alias string `json:"alias"`
}

// JoinOn is one equi-join conjunct between two join sources, addressed by
// their index in Cond.Srcs: `Srcs[LSrc].LCol = Srcs[RSrc].RCol`.
type JoinOn struct {
	LSrc int    `json:"lsrc"`
	LCol string `json:"lcol"`
	RSrc int    `json:"rsrc"`
	RCol string `json:"rcol"`
}

// JoinAtom is one literal comparison against a single join source. Op is
// one of "=", "<>", "<", "<=", ">", ">=", "isnull", "notnull".
type JoinAtom struct {
	Src int    `json:"src"`
	Col string `json:"col"`
	Op  string `json:"op"`
	Lit Lit    `json:"lit,omitempty"`
}

// Cond is a rule condition. Kind is "exists", "notexists", "agg", "join"
// or "notjoin". For "agg", Agg is "count", "sum", "min" or "max" and the
// condition is `(select agg(...) from sub) Op Lit`. For "join"/"notjoin"
// the condition is `[not] exists (select * from Srcs... where On... and
// Atoms...)` — a multi-source join over transition and base tables that
// exercises the engine's cost-based join planner inside rule conditions
// (Sub is unused).
type Cond struct {
	Kind string   `json:"kind"`
	Sub  SubQuery `json:"sub"`
	Agg  string   `json:"agg,omitempty"`
	Op   string   `json:"op,omitempty"`
	Lit  Lit      `json:"lit,omitempty"`

	Srcs  []JoinSrc  `json:"srcs,omitempty"`
	On    []JoinOn   `json:"on,omitempty"`
	Atoms []JoinAtom `json:"atoms,omitempty"`
}

// SetItem is one assignment of an UPDATE: Col = expr, where expr is a
// literal (From == "") or `From ArithOp Lit` / bare `From` (ArithOp "").
type SetItem struct {
	Col     string `json:"col"`
	Lit     Lit    `json:"lit,omitempty"`
	From    string `json:"from,omitempty"`
	ArithOp string `json:"arith,omitempty"` // "+", "-" or ""
}

// ProjItem is one projected item of an insert-select: a source column
// (Col != "") or a literal.
type ProjItem struct {
	Col string `json:"col,omitempty"`
	Lit Lit    `json:"lit,omitempty"`
}

// Stmt is one operation. Kind:
//
//	"insert"  — INSERT INTO Table VALUES Rows (full schema order)
//	"inssel"  — INSERT INTO Table (SELECT Proj... FROM Src [WHERE Where])
//	"delete"  — DELETE FROM Table [WHERE Where]
//	"update"  — UPDATE Table SET Set... [WHERE Where]
//	"process" — PROCESS RULES (Section 5.3 triggering point)
type Stmt struct {
	Kind  string     `json:"kind"`
	Table string     `json:"table,omitempty"`
	Rows  [][]Lit    `json:"rows,omitempty"`
	Src   *Source    `json:"src,omitempty"`
	Proj  []ProjItem `json:"proj,omitempty"`
	Where *Where     `json:"where,omitempty"`
	Set   []SetItem  `json:"set,omitempty"`
}

// Pred is one basic transition predicate. Op is "inserted", "deleted" or
// "updated"; Column only for column-level updated predicates.
type Pred struct {
	Op     string `json:"op"`
	Table  string `json:"table"`
	Column string `json:"column,omitempty"`
}

// Rule is one generated production rule.
type Rule struct {
	Name     string `json:"name"`
	Scope    string `json:"scope,omitempty"` // "", "considered", "triggered"
	Preds    []Pred `json:"preds"`
	Cond     *Cond  `json:"cond,omitempty"`
	Rollback bool   `json:"rollback,omitempty"`
	Action   []Stmt `json:"action,omitempty"`
}

// Priority is one `create rule priority Before before After` edge.
type Priority struct {
	Before string `json:"before"`
	After  string `json:"after"`
}

// Workload is one complete generated scenario: definitions plus a sequence
// of operation blocks, each executed as one transaction.
type Workload struct {
	Seed       int64      `json:"seed"` // generation seed, informational
	Tables     []Table    `json:"tables"`
	Indexes    []Index    `json:"indexes,omitempty"`
	Rules      []Rule     `json:"rules,omitempty"`
	Priorities []Priority `json:"priorities,omitempty"`
	Txns       [][]Stmt   `json:"txns"`
	// Cap is the MaxRuleTransitions guard applied to the engine and the
	// oracle alike; hitting it is itself compared for parity.
	Cap int `json:"cap"`
	// OrderIndependent marks workloads whose final database state is
	// provably independent of the rule selection order (see markOrder);
	// the harness runs a selection-order permutation check on these.
	OrderIndependent bool `json:"order_independent,omitempty"`
}

// Table returns the named table, or nil.
func (w *Workload) Table(name string) *Table {
	for i := range w.Tables {
		if w.Tables[i].Name == name {
			return &w.Tables[i]
		}
	}
	return nil
}

// Marshal serializes the workload as indented JSON for the corpus.
func (w *Workload) Marshal() ([]byte, error) {
	return json.MarshalIndent(w, "", " ")
}

// Unmarshal parses a corpus entry.
func Unmarshal(data []byte) (*Workload, error) {
	var w Workload
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("gen: invalid workload: %w", err)
	}
	return &w, nil
}

// Validate performs the structural checks the generator guarantees and a
// corpus entry must satisfy: known tables/columns, transition references
// licensed by the owning rule's predicates, representable literals, and a
// positive transition cap. The oracle and renderer both rely on these
// invariants.
func (w *Workload) Validate() error {
	if w.Cap <= 0 {
		return fmt.Errorf("cap must be positive")
	}
	if len(w.Tables) == 0 {
		return fmt.Errorf("no tables")
	}
	names := map[string]bool{}
	for i := range w.Tables {
		t := &w.Tables[i]
		if names[t.Name] {
			return fmt.Errorf("duplicate table %q", t.Name)
		}
		names[t.Name] = true
		if len(t.Cols) == 0 {
			return fmt.Errorf("table %q has no columns", t.Name)
		}
		for _, c := range t.Cols {
			if c.ValueKind() == value.KindNull {
				return fmt.Errorf("table %q column %q has unknown kind %q", t.Name, c.Name, c.Kind)
			}
		}
	}
	for _, ix := range w.Indexes {
		t := w.Table(ix.Table)
		if t == nil || t.ColIndex(ix.Column) < 0 {
			return fmt.Errorf("index %q on unknown %s.%s", ix.Name, ix.Table, ix.Column)
		}
	}
	ruleNames := map[string]bool{}
	for ri := range w.Rules {
		r := &w.Rules[ri]
		if ruleNames[r.Name] {
			return fmt.Errorf("duplicate rule %q", r.Name)
		}
		ruleNames[r.Name] = true
		if len(r.Preds) == 0 {
			return fmt.Errorf("rule %q has no transition predicates", r.Name)
		}
		for _, p := range r.Preds {
			t := w.Table(p.Table)
			if t == nil {
				return fmt.Errorf("rule %q watches unknown table %q", r.Name, p.Table)
			}
			if p.Column != "" && (p.Op != "updated" || t.ColIndex(p.Column) < 0) {
				return fmt.Errorf("rule %q has bad predicate column %s.%s", r.Name, p.Table, p.Column)
			}
			switch p.Op {
			case "inserted", "deleted", "updated":
			default:
				return fmt.Errorf("rule %q has unknown predicate op %q", r.Name, p.Op)
			}
		}
		if r.Rollback && len(r.Action) > 0 {
			return fmt.Errorf("rule %q has both rollback and an action block", r.Name)
		}
		if !r.Rollback && len(r.Action) == 0 {
			return fmt.Errorf("rule %q has no action", r.Name)
		}
		if r.Cond != nil {
			if err := w.validateCond(r.Cond, r); err != nil {
				return fmt.Errorf("rule %q condition: %w", r.Name, err)
			}
		}
		for si := range r.Action {
			if err := w.validateStmt(&r.Action[si], r); err != nil {
				return fmt.Errorf("rule %q action: %w", r.Name, err)
			}
		}
	}
	for _, p := range w.Priorities {
		if !ruleNames[p.Before] || !ruleNames[p.After] {
			return fmt.Errorf("priority references unknown rule (%s before %s)", p.Before, p.After)
		}
	}
	for ti, txn := range w.Txns {
		for si := range txn {
			if err := w.validateStmt(&txn[si], nil); err != nil {
				return fmt.Errorf("txn %d: %w", ti, err)
			}
		}
	}
	return nil
}

// licensed reports whether a transition source is licensed by one of the
// rule's basic transition predicates (the Section 3 restriction the engine
// enforces at rule definition).
func licensed(src *Source, r *Rule) bool {
	if src.Trans == "" {
		return true
	}
	if r == nil {
		return false // transition tables outside a rule
	}
	for _, p := range r.Preds {
		if p.Table != src.Table {
			continue
		}
		switch src.Trans {
		case "inserted":
			if p.Op == "inserted" {
				return true
			}
		case "deleted":
			if p.Op == "deleted" {
				return true
			}
		case "old", "new":
			if p.Op == "updated" && p.Column == src.Column {
				return true
			}
		}
	}
	return false
}

func (w *Workload) validateSub(sub *SubQuery, r *Rule) error {
	t := w.Table(sub.Src.Table)
	if t == nil {
		return fmt.Errorf("unknown table %q", sub.Src.Table)
	}
	if !licensed(&sub.Src, r) {
		return fmt.Errorf("unlicensed transition source %s %s", sub.Src.Trans, sub.Src.Table)
	}
	if sub.Col != "" && t.ColIndex(sub.Col) < 0 {
		return fmt.Errorf("unknown column %s.%s", sub.Src.Table, sub.Col)
	}
	if sub.Src.Column != "" && t.ColIndex(sub.Src.Column) < 0 {
		return fmt.Errorf("unknown column %s.%s", sub.Src.Table, sub.Src.Column)
	}
	return w.validateWhere(sub.Where, t, r)
}

func (w *Workload) validateCond(c *Cond, r *Rule) error {
	switch c.Kind {
	case "exists", "notexists", "agg":
		return w.validateSub(&c.Sub, r)
	case "join", "notjoin":
		return w.validateJoinCond(c, r)
	default:
		return fmt.Errorf("unknown condition kind %q", c.Kind)
	}
}

// joinComparable reports whether two column kinds can be equi-joined
// without an evaluation error: both numeric, or the same kind. The
// restriction keeps join conditions error-free, so a hash or merge join
// that never compares non-matching rows pairwise cannot diverge from a
// nested loop that compares every pair.
func joinComparable(a, b string) bool {
	num := func(k string) bool { return k == "int" || k == "float" }
	return a == b || (num(a) && num(b))
}

func (w *Workload) validateJoinCond(c *Cond, r *Rule) error {
	if len(c.Srcs) < 2 {
		return fmt.Errorf("join condition needs at least two sources")
	}
	seen := map[string]bool{}
	for i, s := range c.Srcs {
		t := w.Table(s.Src.Table)
		if t == nil {
			return fmt.Errorf("unknown table %q", s.Src.Table)
		}
		if !licensed(&s.Src, r) {
			return fmt.Errorf("unlicensed transition source %s %s", s.Src.Trans, s.Src.Table)
		}
		if s.Src.Column != "" && t.ColIndex(s.Src.Column) < 0 {
			return fmt.Errorf("unknown column %s.%s", s.Src.Table, s.Src.Column)
		}
		if s.Alias == "" || seen[s.Alias] {
			return fmt.Errorf("join source %d has missing or duplicate alias %q", i, s.Alias)
		}
		seen[s.Alias] = true
	}
	if len(c.On) == 0 {
		return fmt.Errorf("join condition has no ON conjuncts")
	}
	for _, on := range c.On {
		if on.LSrc < 0 || on.LSrc >= len(c.Srcs) || on.RSrc < 0 || on.RSrc >= len(c.Srcs) || on.LSrc == on.RSrc {
			return fmt.Errorf("ON conjunct references bad sources %d, %d", on.LSrc, on.RSrc)
		}
		lt := w.Table(c.Srcs[on.LSrc].Src.Table)
		rt := w.Table(c.Srcs[on.RSrc].Src.Table)
		li, ri := lt.ColIndex(on.LCol), rt.ColIndex(on.RCol)
		if li < 0 || ri < 0 {
			return fmt.Errorf("ON conjunct references unknown column %s.%s or %s.%s", lt.Name, on.LCol, rt.Name, on.RCol)
		}
		if !joinComparable(lt.Cols[li].Kind, rt.Cols[ri].Kind) {
			return fmt.Errorf("ON conjunct joins incomparable kinds %s and %s", lt.Cols[li].Kind, rt.Cols[ri].Kind)
		}
	}
	for _, a := range c.Atoms {
		if a.Src < 0 || a.Src >= len(c.Srcs) {
			return fmt.Errorf("join atom references bad source %d", a.Src)
		}
		t := w.Table(c.Srcs[a.Src].Src.Table)
		if t.ColIndex(a.Col) < 0 {
			return fmt.Errorf("join atom references unknown column %s.%s", t.Name, a.Col)
		}
		switch a.Op {
		case "=", "<>", "<", "<=", ">", ">=":
			if err := checkLit(a.Lit); err != nil {
				return err
			}
		case "isnull", "notnull":
		default:
			return fmt.Errorf("unknown join atom op %q", a.Op)
		}
	}
	return nil
}

func (w *Workload) validateWhere(wh *Where, t *Table, r *Rule) error {
	if wh == nil {
		return nil
	}
	set := 0
	if wh.Atom != nil {
		set++
	}
	if wh.And != nil {
		set++
	}
	if wh.Or != nil {
		set++
	}
	if wh.Not != nil {
		set++
	}
	if set != 1 {
		return fmt.Errorf("where node must set exactly one of atom/and/or/not")
	}
	switch {
	case wh.Atom != nil:
		a := wh.Atom
		if t.ColIndex(a.Col) < 0 {
			return fmt.Errorf("unknown column %s.%s", t.Name, a.Col)
		}
		switch a.Op {
		case "=", "<>", "<", "<=", ">", ">=":
			if err := checkLit(a.Lit); err != nil {
				return err
			}
		case "isnull", "notnull":
		case "in":
			if a.Sub == nil {
				return fmt.Errorf("IN atom without subquery")
			}
			if a.Sub.Col == "" {
				return fmt.Errorf("IN subquery must project a column")
			}
			return w.validateSub(a.Sub, r)
		default:
			return fmt.Errorf("unknown atom op %q", a.Op)
		}
	case wh.And != nil:
		for _, c := range wh.And {
			if err := w.validateWhere(c, t, r); err != nil {
				return err
			}
		}
	case wh.Or != nil:
		for _, c := range wh.Or {
			if err := w.validateWhere(c, t, r); err != nil {
				return err
			}
		}
	case wh.Not != nil:
		return w.validateWhere(wh.Not, t, r)
	}
	return nil
}

func checkLit(l Lit) error {
	switch l.K {
	case "n", "i", "s", "b":
		return nil
	case "f":
		if math.IsNaN(l.F) || math.IsInf(l.F, 0) {
			return fmt.Errorf("float literal %v is not representable in SQL text", l.F)
		}
		return nil
	default:
		return fmt.Errorf("unknown literal kind %q", l.K)
	}
}

func (w *Workload) validateStmt(s *Stmt, r *Rule) error {
	if s.Kind == "process" {
		if r != nil {
			return fmt.Errorf("PROCESS RULES inside a rule action")
		}
		return nil
	}
	t := w.Table(s.Table)
	if t == nil {
		return fmt.Errorf("unknown table %q", s.Table)
	}
	switch s.Kind {
	case "insert":
		if len(s.Rows) == 0 {
			return fmt.Errorf("insert with no rows")
		}
		for _, row := range s.Rows {
			if len(row) != len(t.Cols) {
				return fmt.Errorf("insert row width %d != %d", len(row), len(t.Cols))
			}
			for _, l := range row {
				if err := checkLit(l); err != nil {
					return err
				}
			}
		}
	case "inssel":
		if s.Src == nil {
			return fmt.Errorf("insert-select without source")
		}
		src := w.Table(s.Src.Table)
		if src == nil {
			return fmt.Errorf("unknown source table %q", s.Src.Table)
		}
		if !licensed(s.Src, r) {
			return fmt.Errorf("unlicensed transition source %s %s", s.Src.Trans, s.Src.Table)
		}
		if s.Src.Column != "" && src.ColIndex(s.Src.Column) < 0 {
			return fmt.Errorf("unknown column %s.%s", s.Src.Table, s.Src.Column)
		}
		if len(s.Proj) != len(t.Cols) {
			return fmt.Errorf("insert-select projection width %d != %d", len(s.Proj), len(t.Cols))
		}
		for _, p := range s.Proj {
			if p.Col != "" {
				if src.ColIndex(p.Col) < 0 {
					return fmt.Errorf("unknown projected column %s.%s", s.Src.Table, p.Col)
				}
			} else if err := checkLit(p.Lit); err != nil {
				return err
			}
		}
		return w.validateWhere(s.Where, src, r)
	case "delete":
		return w.validateWhere(s.Where, t, r)
	case "update":
		if len(s.Set) == 0 {
			return fmt.Errorf("update with no assignments")
		}
		for _, a := range s.Set {
			if t.ColIndex(a.Col) < 0 {
				return fmt.Errorf("unknown column %s.%s", t.Name, a.Col)
			}
			if a.From != "" && t.ColIndex(a.From) < 0 {
				return fmt.Errorf("unknown column %s.%s", t.Name, a.From)
			}
			if err := checkLit(a.Lit); err != nil {
				return err
			}
			switch a.ArithOp {
			case "", "+", "-":
			default:
				return fmt.Errorf("unsupported arithmetic op %q", a.ArithOp)
			}
		}
		return w.validateWhere(s.Where, t, r)
	default:
		return fmt.Errorf("unknown statement kind %q", s.Kind)
	}
	return nil
}
