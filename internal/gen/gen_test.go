package gen

import (
	"bytes"
	"testing"

	"sopr/internal/sqlparse"
)

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a, err := Generate(seed).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(seed).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

func TestGeneratedWorkloadsParse(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		w := Generate(seed)
		if err := w.Validate(); err != nil {
			t.Fatalf("seed %d: invalid workload: %v", seed, err)
		}
		if _, err := sqlparse.ParseStatements(w.SetupSQL()); err != nil {
			t.Fatalf("seed %d: setup does not parse: %v\n%s", seed, err, w.SetupSQL())
		}
		for i := range w.Txns {
			if _, err := sqlparse.ParseStatements(w.TxnSQL(i)); err != nil {
				t.Fatalf("seed %d txn %d: does not parse: %v\n%s", seed, i, err, w.TxnSQL(i))
			}
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		w := Generate(seed)
		data, err := w.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		w2, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		data2, err := w2.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatalf("seed %d: JSON round-trip not stable", seed)
		}
	}
}

func TestOrderIndependentWorkloadsAppear(t *testing.T) {
	n := 0
	for seed := int64(0); seed < 200; seed++ {
		if Generate(seed).OrderIndependent {
			n++
		}
	}
	if n == 0 {
		t.Fatal("no order-independent workloads in 200 seeds; permutation check would never run")
	}
}

func TestShrinkPreservesFailure(t *testing.T) {
	// Failure predicate: the workload inserts somewhere. The minimum should
	// be a single-statement transaction with few rows.
	fails := func(w *Workload) bool {
		for _, txn := range w.Txns {
			for _, s := range txn {
				if s.Kind == "insert" {
					return true
				}
			}
		}
		return false
	}
	shrunk := 0
	for seed := int64(0); seed < 40; seed++ {
		w := Generate(seed)
		if !fails(w) {
			continue
		}
		m := Shrink(w, fails, 400)
		if !fails(m) {
			t.Fatalf("seed %d: shrunk workload no longer fails", seed)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("seed %d: shrunk workload invalid: %v", seed, err)
		}
		total := 0
		for _, txn := range m.Txns {
			total += len(txn)
		}
		if total != 1 || len(m.Rules) != 0 {
			t.Fatalf("seed %d: expected minimal 1-stmt 0-rule workload, got %d stmts %d rules",
				seed, total, len(m.Rules))
		}
		shrunk++
	}
	if shrunk == 0 {
		t.Fatal("no workload exercised the shrinker")
	}
}
