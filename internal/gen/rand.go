package gen

import (
	"fmt"
	"math/rand"
)

// Generation policy notes (these constraints keep engine and oracle
// honestly comparable rather than papering over real divergence):
//
//   - Float literals are multiples of 0.25 with small magnitude, and
//     generated arithmetic uses only + and -. Sums of small dyadic
//     rationals are exact in float64, so aggregate results cannot depend
//     on accumulation order and no generated expression can overflow to
//     ±Inf or produce NaN (neither has an SQL spelling, so a dump
//     containing one would not reload).
//   - No division, so no divide-by-zero errors whose discovery point
//     could differ between access paths.
//   - All columns are nullable and ~15% of generated literals are NULL,
//     exercising three-valued logic in predicates and aggregates.
//   - Where atoms always reference columns of the nearest enclosing
//     source table (no correlated subqueries); the oracle interprets
//     them with exactly that scoping.
//
// Trigger-graph discipline: most rule actions target tables watched only
// by later rules or by no rule, so cascades usually terminate well under
// the transition cap; a minority branch targets arbitrary tables
// (self-triggering and cycles) to exercise the footnote 7 runaway guard,
// whose tripping is itself compared for parity.

type genctx struct {
	rng *rand.Rand
	w   *Workload
}

func (g *genctx) intn(n int) int      { return g.rng.Intn(n) }
func (g *genctx) pct(p int) bool      { return g.rng.Intn(100) < p }
func (g *genctx) pick(n int) int      { return g.rng.Intn(n) }
func (g *genctx) between(a, b int) int { return a + g.rng.Intn(b-a+1) }

var colKinds = []string{"int", "int", "float", "varchar", "boolean"}

var stringPool = []string{"a", "b", "c", "ab", "bc", "x'y", ""}

// Generate produces a random valid workload from the seed. The same seed
// always yields the same workload.
func Generate(seed int64) *Workload {
	// Cap 40 keeps runaway cascades cheap: a divergent rule set trips the
	// footnote 7 guard after at most 40 rule transitions, which together
	// with the insert-select restrictions below bounds the worst-case row
	// count of any generated workload to a few hundred thousand rows (rule
	// firings can move at most their transition tables' rows per firing,
	// and insert-select amplification chains are acyclic).
	g := &genctx{rng: rand.New(rand.NewSource(seed)), w: &Workload{Seed: seed, Cap: 40}}
	orderFree := g.pct(30)

	nTables := g.between(1, 3)
	for i := 0; i < nTables; i++ {
		g.w.Tables = append(g.w.Tables, g.table(fmt.Sprintf("t%d", i)))
	}

	nRules := g.between(0, 4)
	if orderFree && nRules > 0 {
		// One private sink table per rule: unwatched, pairwise disjoint
		// action targets are the core of the order-independence argument.
		for i := 0; i < nRules; i++ {
			g.w.Tables = append(g.w.Tables, g.table(fmt.Sprintf("s%d", i)))
		}
	}

	nIdx := g.between(0, 2)
	for i := 0; i < nIdx; i++ {
		t := &g.w.Tables[g.pick(len(g.w.Tables))]
		c := t.Cols[g.pick(len(t.Cols))]
		name := fmt.Sprintf("ix%d", i)
		dup := false
		for _, ix := range g.w.Indexes {
			if ix.Table == t.Name && ix.Column == c.Name {
				dup = true
			}
		}
		if !dup {
			g.w.Indexes = append(g.w.Indexes, Index{Name: name, Table: t.Name, Column: c.Name})
		}
	}

	for i := 0; i < nRules; i++ {
		if orderFree {
			g.w.Rules = append(g.w.Rules, g.orderFreeRule(i, nTables))
		} else {
			g.w.Rules = append(g.w.Rules, g.rule(i, nRules))
		}
	}

	// Priority edges oriented along a random permutation, which keeps any
	// edge set acyclic.
	if nRules > 1 {
		rank := g.rng.Perm(nRules)
		for i := 0; i < nRules; i++ {
			for j := i + 1; j < nRules; j++ {
				if g.pct(20) {
					a, b := i, j
					if rank[a] > rank[b] {
						a, b = b, a
					}
					g.w.Priorities = append(g.w.Priorities, Priority{
						Before: g.w.Rules[a].Name, After: g.w.Rules[b].Name,
					})
				}
			}
		}
	}

	nTxns := g.between(2, 5)
	for i := 0; i < nTxns; i++ {
		nStmts := g.between(1, 4)
		var txn []Stmt
		for s := 0; s < nStmts; s++ {
			txn = append(txn, g.stmt())
			if g.pct(15) && s < nStmts-1 {
				txn = append(txn, Stmt{Kind: "process"})
			}
		}
		g.w.Txns = append(g.w.Txns, txn)
	}

	g.w.OrderIndependent = g.w.markOrder()
	if err := g.w.Validate(); err != nil {
		// The generator must only emit valid workloads; a violation here is
		// a bug in the generator itself, not in the system under test.
		panic(fmt.Sprintf("gen: seed %d produced invalid workload: %v", seed, err))
	}
	return g.w
}

func (g *genctx) table(name string) Table {
	n := g.between(2, 4)
	t := Table{Name: name}
	for i := 0; i < n; i++ {
		t.Cols = append(t.Cols, Col{
			Name: fmt.Sprintf("c%d", i),
			Kind: colKinds[g.pick(len(colKinds))],
		})
	}
	return t
}

func (g *genctx) lit(kind string) Lit {
	if g.pct(15) {
		return Null
	}
	switch kind {
	case "int":
		return IntLit(int64(g.between(-5, 20)))
	case "float":
		return FloatLit(float64(g.between(-20, 40)) * 0.25)
	case "varchar":
		return StrLit(stringPool[g.pick(len(stringPool))])
	default:
		return BoolLit(g.pct(50))
	}
}

// atomOps lists the comparison operators applicable to a column kind.
func atomOps(kind string) []string {
	if kind == "boolean" {
		return []string{"=", "<>"}
	}
	return []string{"=", "<>", "<", "<=", ">", ">="}
}

// where generates a predicate over t's columns. When allowSub is true, IN
// subqueries over base tables may appear.
func (g *genctx) where(t *Table, depth int, allowSub bool) *Where {
	if depth <= 0 || g.pct(55) {
		return &Where{Atom: g.atom(t, allowSub)}
	}
	switch g.pick(3) {
	case 0:
		n := g.between(2, 3)
		var kids []*Where
		for i := 0; i < n; i++ {
			kids = append(kids, g.where(t, depth-1, allowSub))
		}
		return &Where{And: kids}
	case 1:
		n := g.between(2, 3)
		var kids []*Where
		for i := 0; i < n; i++ {
			kids = append(kids, g.where(t, depth-1, allowSub))
		}
		return &Where{Or: kids}
	default:
		return &Where{Not: g.where(t, depth-1, allowSub)}
	}
}

func (g *genctx) atom(t *Table, allowSub bool) *Atom {
	ci := g.pick(len(t.Cols))
	c := t.Cols[ci]
	roll := g.pick(100)
	switch {
	case roll < 12:
		return &Atom{Col: c.Name, Op: "isnull"}
	case roll < 24:
		return &Atom{Col: c.Name, Op: "notnull"}
	case roll < 36 && allowSub:
		// col IN (select samekind from base [where literal-only]): pick a
		// same-kind column anywhere in the schema.
		type cand struct {
			t  *Table
			cn string
		}
		var cands []cand
		for i := range g.w.Tables {
			st := &g.w.Tables[i]
			for _, sc := range st.Cols {
				if sc.Kind == c.Kind {
					cands = append(cands, cand{st, sc.Name})
				}
			}
		}
		if len(cands) > 0 {
			k := cands[g.pick(len(cands))]
			sub := &SubQuery{Col: k.cn, Src: Source{Table: k.t.Name}}
			if g.pct(50) {
				sub.Where = g.where(k.t, 0, false)
			}
			return &Atom{Col: c.Name, Op: "in", Sub: sub}
		}
		fallthrough
	default:
		ops := atomOps(c.Kind)
		return &Atom{Col: c.Name, Op: ops[g.pick(len(ops))], Lit: g.litNoNull(c.Kind)}
	}
}

// litNoNull is lit without the NULL branch (comparisons against NULL are
// constant-UNKNOWN, which generates dead predicates).
func (g *genctx) litNoNull(kind string) Lit {
	for {
		l := g.lit(kind)
		if l.K != "n" {
			return l
		}
	}
}

// transSources lists the transition tables licensed by the rule's
// predicates (Section 3's restriction).
func transSources(r *Rule) []Source {
	var out []Source
	for _, p := range r.Preds {
		switch p.Op {
		case "inserted":
			out = append(out, Source{Trans: "inserted", Table: p.Table})
		case "deleted":
			out = append(out, Source{Trans: "deleted", Table: p.Table})
		case "updated":
			out = append(out, Source{Trans: "old", Table: p.Table, Column: p.Column})
			out = append(out, Source{Trans: "new", Table: p.Table, Column: p.Column})
		}
	}
	return out
}

func (g *genctx) preds(nTables int) []Pred {
	n := 1
	if g.pct(25) {
		n = 2
	}
	var out []Pred
	for i := 0; i < n; i++ {
		t := &g.w.Tables[g.pick(nTables)]
		p := Pred{Table: t.Name}
		switch g.pick(3) {
		case 0:
			p.Op = "inserted"
		case 1:
			p.Op = "deleted"
		default:
			p.Op = "updated"
			if g.pct(50) {
				p.Column = t.Cols[g.pick(len(t.Cols))].Name
			}
		}
		dup := false
		for _, q := range out {
			if q == p {
				dup = true
			}
		}
		if !dup {
			out = append(out, p)
		}
	}
	return out
}

// rule generates a general rule (index ri of nRules). Action targets
// follow the trigger-graph discipline described at the top of the file.
func (g *genctx) rule(ri, nRules int) Rule {
	nBase := len(g.w.Tables)
	r := Rule{Name: fmt.Sprintf("r%d", ri)}
	switch g.pick(10) {
	case 0:
		r.Scope = "considered"
	case 1:
		r.Scope = "triggered"
	}
	r.Preds = g.preds(nBase)
	if g.pct(80) {
		r.Cond = g.cond(&r)
	}
	if g.pct(10) {
		r.Rollback = true
		return r
	}
	nActs := 1
	if g.pct(30) {
		nActs = 2
	}
	for i := 0; i < nActs; i++ {
		r.Action = append(r.Action, g.actionStmt(&r))
	}
	return r
}

// cond generates a rule condition over either a licensed transition table
// (common: the paper's rules are usually about "the rows just changed") or
// a base table; ~30% of the time it is a multi-source join condition that
// routes the rule's consideration through the cost-based join planner.
func (g *genctx) cond(r *Rule) *Cond {
	if g.pct(30) {
		if jc := g.joinCond(r); jc != nil {
			return jc
		}
	}
	var src Source
	ts := transSources(r)
	if len(ts) > 0 && g.pct(65) {
		src = ts[g.pick(len(ts))]
	} else {
		src = Source{Table: r.Preds[g.pick(len(r.Preds))].Table}
	}
	t := g.w.Table(src.Table)
	c := &Cond{Sub: SubQuery{Src: src}}
	if g.pct(60) {
		c.Sub.Where = g.where(t, 1, src.Trans == "")
	}
	switch g.pick(4) {
	case 0:
		c.Kind = "exists"
	case 1:
		c.Kind = "notexists"
	default:
		c.Kind = "agg"
		// count(*) over anything; sum/min/max over a numeric column.
		var numeric []string
		for _, col := range t.Cols {
			if col.Kind == "int" || col.Kind == "float" {
				numeric = append(numeric, col.Name)
			}
		}
		if len(numeric) == 0 || g.pct(40) {
			c.Agg = "count"
			c.Op = []string{">", ">=", "=", "<"}[g.pick(4)]
			c.Lit = IntLit(int64(g.between(0, 3)))
		} else {
			c.Agg = []string{"sum", "min", "max"}[g.pick(3)]
			c.Sub.Col = numeric[g.pick(len(numeric))]
			c.Op = []string{">", ">=", "<", "<="}[g.pick(4)]
			c.Lit = IntLit(int64(g.between(-3, 10)))
		}
	}
	return c
}

// joinCond generates a 2- or 3-source join condition: a chain of equi-join
// conjuncts over transition tables (mostly) and at most one base table (so
// the oracle's naive nested-loop evaluation stays bounded by the small
// transition-table sizes), plus occasional literal atoms. Returns nil when
// the rule licenses no transition source or a consecutive source pair has
// no join-comparable column pair; the caller falls back to a single-source
// condition.
func (g *genctx) joinCond(r *Rule) *Cond {
	ts := transSources(r)
	if len(ts) == 0 {
		return nil
	}
	n := 2
	if g.pct(30) {
		n = 3
	}
	c := &Cond{Kind: "join"}
	if g.pct(40) {
		c.Kind = "notjoin"
	}
	baseUsed := false
	for i := 0; i < n; i++ {
		var src Source
		if baseUsed || g.pct(70) {
			src = ts[g.pick(len(ts))]
		} else {
			src = Source{Table: g.w.Tables[g.pick(len(g.w.Tables))].Name}
			baseUsed = true
		}
		c.Srcs = append(c.Srcs, JoinSrc{Src: src, Alias: fmt.Sprintf("j%d", i)})
	}
	for i := 1; i < n; i++ {
		on, ok := g.joinOn(c, i-1, i)
		if !ok {
			return nil
		}
		c.On = append(c.On, on)
	}
	// Occasionally close the chain into a cycle (extra selectivity, and a
	// join graph that is not a pure path).
	if n == 3 && g.pct(25) {
		if on, ok := g.joinOn(c, 0, 2); ok {
			c.On = append(c.On, on)
		}
	}
	if g.pct(40) {
		si := g.pick(n)
		t := g.w.Table(c.Srcs[si].Src.Table)
		col := t.Cols[g.pick(len(t.Cols))]
		a := JoinAtom{Src: si, Col: col.Name}
		roll := g.pick(100)
		switch {
		case roll < 15:
			a.Op = "isnull"
		case roll < 30:
			a.Op = "notnull"
		default:
			ops := atomOps(col.Kind)
			a.Op = ops[g.pick(len(ops))]
			a.Lit = g.litNoNull(col.Kind)
		}
		c.Atoms = append(c.Atoms, a)
	}
	return c
}

// joinOn picks a join-comparable column pair between sources li and ri of
// the condition under construction.
func (g *genctx) joinOn(c *Cond, li, ri int) (JoinOn, bool) {
	lt := g.w.Table(c.Srcs[li].Src.Table)
	rt := g.w.Table(c.Srcs[ri].Src.Table)
	type pair struct{ l, r string }
	var pairs []pair
	for _, lc := range lt.Cols {
		for _, rc := range rt.Cols {
			if joinComparable(lc.Kind, rc.Kind) {
				pairs = append(pairs, pair{lc.Name, rc.Name})
			}
		}
	}
	if len(pairs) == 0 {
		return JoinOn{}, false
	}
	p := pairs[g.pick(len(pairs))]
	return JoinOn{LSrc: li, LCol: p.l, RSrc: ri, RCol: p.r}, true
}

// actionTarget picks the target table for rule r's action statement:
// ~75% a table watched neither by r nor by any earlier rule (so cascades
// flow "downhill" toward later rules and terminate), ~25% any table
// (self-triggering and runaway coverage).
func (g *genctx) actionTarget(r *Rule) *Table {
	if g.pct(75) {
		if safe := g.safeTargets(r); len(safe) > 0 {
			return safe[g.pick(len(safe))]
		}
	}
	return &g.w.Tables[g.pick(len(g.w.Tables))]
}

func (g *genctx) actionStmt(r *Rule) Stmt {
	t := g.actionTarget(r)
	roll := g.pick(100)
	switch {
	case roll < 35:
		return g.insertStmt(t)
	case roll < 60:
		// Insert-select from a licensed transition table, but only into a
		// table watched neither by r nor by any rule generated so far.
		// Without this restriction a firing can re-trigger a rule with a
		// transition table as large as everything inserted so far, and row
		// counts grow exponentially in the transition cap; confining
		// insert-select rows to flow strictly "forward" (only later rules
		// may watch the target) makes the amplification graph acyclic.
		ts := transSources(r)
		safe := g.safeTargets(r)
		if len(ts) > 0 && len(safe) > 0 {
			return g.insSelStmt(safe[g.pick(len(safe))], ts[g.pick(len(ts))])
		}
		return g.insertStmt(t)
	case roll < 80:
		return g.updateStmt(t)
	default:
		return g.deleteStmt(t)
	}
}

// safeTargets lists the tables watched neither by r nor by any rule
// generated before it.
func (g *genctx) safeTargets(r *Rule) []*Table {
	var safe []*Table
	for i := range g.w.Tables {
		t := &g.w.Tables[i]
		ok := true
		for _, p := range r.Preds {
			if p.Table == t.Name {
				ok = false
			}
		}
		for rj := range g.w.Rules {
			for _, p := range g.w.Rules[rj].Preds {
				if p.Table == t.Name {
					ok = false
				}
			}
		}
		if ok {
			safe = append(safe, t)
		}
	}
	return safe
}

func (g *genctx) insertStmt(t *Table) Stmt {
	n := g.between(1, 3)
	s := Stmt{Kind: "insert", Table: t.Name}
	for i := 0; i < n; i++ {
		var row []Lit
		for _, c := range t.Cols {
			row = append(row, g.lit(c.Kind))
		}
		s.Rows = append(s.Rows, row)
	}
	return s
}

func (g *genctx) insSelStmt(t *Table, src Source) Stmt {
	srcT := g.w.Table(src.Table)
	s := Stmt{Kind: "inssel", Table: t.Name, Src: &src}
	for _, c := range t.Cols {
		// Project a same-kind source column when one exists, otherwise a
		// literal of the target kind (inserting, say, a varchar into an int
		// column would error and mask the interesting behavior).
		var match []string
		for _, sc := range srcT.Cols {
			if sc.Kind == c.Kind {
				match = append(match, sc.Name)
			}
		}
		if len(match) > 0 && g.pct(70) {
			s.Proj = append(s.Proj, ProjItem{Col: match[g.pick(len(match))]})
		} else {
			s.Proj = append(s.Proj, ProjItem{Lit: g.lit(c.Kind)})
		}
	}
	if g.pct(50) {
		s.Where = g.where(srcT, 1, src.Trans == "")
	}
	return s
}

func (g *genctx) updateStmt(t *Table) Stmt {
	s := Stmt{Kind: "update", Table: t.Name}
	n := 1
	if g.pct(30) && len(t.Cols) > 1 {
		n = 2
	}
	used := map[string]bool{}
	for i := 0; i < n; i++ {
		c := t.Cols[g.pick(len(t.Cols))]
		if used[c.Name] {
			continue
		}
		used[c.Name] = true
		item := SetItem{Col: c.Name}
		if (c.Kind == "int" || c.Kind == "float") && g.pct(50) {
			// col = col ± lit (self-reference keeps kinds aligned).
			item.From = c.Name
			item.ArithOp = []string{"+", "-"}[g.pick(2)]
			item.Lit = g.litNoNull(c.Kind)
		} else {
			item.Lit = g.lit(c.Kind)
		}
		s.Set = append(s.Set, item)
	}
	if g.pct(80) {
		s.Where = g.where(t, 1, true)
	}
	return s
}

func (g *genctx) deleteStmt(t *Table) Stmt {
	s := Stmt{Kind: "delete", Table: t.Name}
	if g.pct(85) {
		s.Where = g.where(t, 1, true)
	}
	return s
}

// stmt generates one external (transaction) operation over any table.
func (g *genctx) stmt() Stmt {
	t := &g.w.Tables[g.pick(len(g.w.Tables))]
	roll := g.pick(100)
	switch {
	case roll < 45:
		return g.insertStmt(t)
	case roll < 55:
		// Base-table insert-select (cross-table copy). A table never feeds
		// itself: a self-copy doubles the table per statement, and chains of
		// transactions would compound that into an exponential row count.
		var others []*Table
		for i := range g.w.Tables {
			if g.w.Tables[i].Name != t.Name {
				others = append(others, &g.w.Tables[i])
			}
		}
		if len(others) == 0 {
			return g.insertStmt(t)
		}
		return g.insSelStmt(t, Source{Table: others[g.pick(len(others))].Name})
	case roll < 80:
		return g.updateStmt(t)
	default:
		return g.deleteStmt(t)
	}
}

// orderFreeRule generates rule ri under the restricted shape that markOrder
// certifies: condition only over own transition tables with literal-only
// predicates, action confined to the rule's private sink table.
func (g *genctx) orderFreeRule(ri, nTables int) Rule {
	r := Rule{Name: fmt.Sprintf("r%d", ri)}
	r.Preds = g.preds(nTables) // preds over the normal (non-sink) tables
	if g.pct(70) {
		ts := transSources(&r)
		src := ts[g.pick(len(ts))]
		t := g.w.Table(src.Table)
		c := &Cond{Sub: SubQuery{Src: src}}
		if g.pct(60) {
			c.Sub.Where = g.where(t, 1, false)
		}
		if g.pct(50) {
			c.Kind = "exists"
		} else {
			c.Kind = "agg"
			c.Agg = "count"
			c.Op = ">"
			c.Lit = IntLit(0)
		}
		r.Cond = c
	}
	sink := g.w.Table(fmt.Sprintf("s%d", ri))
	nActs := 1
	if g.pct(30) {
		nActs = 2
	}
	for i := 0; i < nActs; i++ {
		roll := g.pick(100)
		switch {
		case roll < 40:
			r.Action = append(r.Action, g.insertStmt(sink))
		case roll < 70:
			ts := transSources(&r)
			r.Action = append(r.Action, g.insSelStmt(sink, ts[g.pick(len(ts))]))
		case roll < 85:
			s := g.updateStmt(sink)
			s.Where = g.where(sink, 1, false) // literal atoms only
			r.Action = append(r.Action, s)
		default:
			s := g.deleteStmt(sink)
			s.Where = g.where(sink, 1, false)
			r.Action = append(r.Action, s)
		}
	}
	return r
}

// markOrder conservatively certifies order independence of the final
// database state (as a values-only multiset): no rollback rules, rule
// conditions read only the rule's own transition tables (no base-table
// reads, no subqueries), action targets are unwatched by any rule and
// pairwise disjoint across rules, and action reads are confined to
// transition tables or the statement's own target. Under these conditions
// every rule fires at most once per external transition with the same net
// transition info regardless of selection order, and writes never feed
// another rule, so all selection orders commute.
func (w *Workload) markOrder() bool {
	watched := map[string]bool{}
	for ri := range w.Rules {
		for _, p := range w.Rules[ri].Preds {
			watched[p.Table] = true
		}
	}
	owner := map[string]int{}
	for ri := range w.Rules {
		r := &w.Rules[ri]
		if r.Rollback {
			return false
		}
		if r.Cond != nil {
			if len(r.Cond.Srcs) > 0 {
				// Join conditions may read base tables and see other rules'
				// writes; certify nothing about them.
				return false
			}
			if r.Cond.Sub.Src.Trans == "" {
				return false
			}
			if whereHasSub(r.Cond.Sub.Where) {
				return false
			}
		}
		for si := range r.Action {
			s := &r.Action[si]
			if watched[s.Table] {
				return false
			}
			if prev, ok := owner[s.Table]; ok && prev != ri {
				return false
			}
			owner[s.Table] = ri
			if s.Kind == "inssel" && s.Src.Trans == "" && s.Src.Table != s.Table {
				return false
			}
			if !whereSubsConfined(s.Where, s.Table) {
				return false
			}
		}
	}
	return true
}

func whereHasSub(wh *Where) bool {
	if wh == nil {
		return false
	}
	if wh.Atom != nil {
		return wh.Atom.Sub != nil
	}
	for _, c := range wh.And {
		if whereHasSub(c) {
			return true
		}
	}
	for _, c := range wh.Or {
		if whereHasSub(c) {
			return true
		}
	}
	return whereHasSub(wh.Not)
}

// whereSubsConfined reports whether every IN subquery in the tree reads a
// transition table or the given table.
func whereSubsConfined(wh *Where, table string) bool {
	if wh == nil {
		return true
	}
	if wh.Atom != nil {
		if wh.Atom.Sub == nil {
			return true
		}
		src := wh.Atom.Sub.Src
		return src.Trans != "" || src.Table == table
	}
	for _, c := range wh.And {
		if !whereSubsConfined(c, table) {
			return false
		}
	}
	for _, c := range wh.Or {
		if !whereSubsConfined(c, table) {
			return false
		}
	}
	return whereSubsConfined(wh.Not, table)
}
