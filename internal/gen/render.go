package gen

import (
	"fmt"
	"strconv"
	"strings"
)

// SQL renders a literal in the dialect of GRAMMAR.md. Float literals keep
// a decimal point so they re-parse as floats; Validate has already
// rejected NaN and infinities, which have no SQL spelling.
func (l Lit) SQL() string {
	switch l.K {
	case "i":
		return strconv.FormatInt(l.I, 10)
	case "f":
		s := strconv.FormatFloat(l.F, 'f', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case "s":
		return "'" + strings.ReplaceAll(l.S, "'", "''") + "'"
	case "b":
		if l.B {
			return "true"
		}
		return "false"
	default:
		return "null"
	}
}

func (s *Source) sql() string {
	switch s.Trans {
	case "inserted":
		return "inserted " + s.Table
	case "deleted":
		return "deleted " + s.Table
	case "old", "new":
		out := s.Trans + " updated " + s.Table
		if s.Column != "" {
			out += "." + s.Column
		}
		return out
	default:
		return s.Table
	}
}

func (sub *SubQuery) sql() string {
	col := sub.Col
	if col == "" {
		col = "*"
	}
	out := "select " + col + " from " + sub.Src.sql()
	if sub.Where != nil {
		out += " where " + sub.Where.sql()
	}
	return out
}

func (wh *Where) sql() string {
	switch {
	case wh.Atom != nil:
		a := wh.Atom
		switch a.Op {
		case "isnull":
			return a.Col + " is null"
		case "notnull":
			return a.Col + " is not null"
		case "in":
			return a.Col + " in (" + a.Sub.sql() + ")"
		default:
			return a.Col + " " + a.Op + " " + a.Lit.SQL()
		}
	case wh.And != nil:
		parts := make([]string, len(wh.And))
		for i, c := range wh.And {
			parts[i] = "(" + c.sql() + ")"
		}
		return strings.Join(parts, " and ")
	case wh.Or != nil:
		parts := make([]string, len(wh.Or))
		for i, c := range wh.Or {
			parts[i] = "(" + c.sql() + ")"
		}
		return strings.Join(parts, " or ")
	case wh.Not != nil:
		return "not (" + wh.Not.sql() + ")"
	default:
		return "true"
	}
}

func (c *Cond) sql() string {
	switch c.Kind {
	case "exists":
		return "exists (" + c.Sub.sql() + ")"
	case "notexists":
		return "not exists (" + c.Sub.sql() + ")"
	case "join", "notjoin":
		from := make([]string, len(c.Srcs))
		for i, s := range c.Srcs {
			from[i] = s.Src.sql() + " " + s.Alias
		}
		var conj []string
		for _, on := range c.On {
			conj = append(conj, c.Srcs[on.LSrc].Alias+"."+on.LCol+" = "+c.Srcs[on.RSrc].Alias+"."+on.RCol)
		}
		for _, a := range c.Atoms {
			q := c.Srcs[a.Src].Alias + "." + a.Col
			switch a.Op {
			case "isnull":
				conj = append(conj, q+" is null")
			case "notnull":
				conj = append(conj, q+" is not null")
			default:
				conj = append(conj, q+" "+a.Op+" "+a.Lit.SQL())
			}
		}
		q := "select * from " + strings.Join(from, ", ")
		if len(conj) > 0 {
			q += " where " + strings.Join(conj, " and ")
		}
		if c.Kind == "notjoin" {
			return "not exists (" + q + ")"
		}
		return "exists (" + q + ")"
	default: // "agg"
		inner := c.Agg + "("
		if c.Sub.Col == "" {
			inner += "*"
		} else {
			inner += c.Sub.Col
		}
		inner += ") "
		q := "select " + strings.TrimSpace(inner) + " from " + c.Sub.Src.sql()
		if c.Sub.Where != nil {
			q += " where " + c.Sub.Where.sql()
		}
		return "(" + q + ") " + c.Op + " " + c.Lit.SQL()
	}
}

// SQL renders one operation statement (no trailing semicolon).
func (s *Stmt) SQL() string {
	switch s.Kind {
	case "process":
		return "process rules"
	case "insert":
		rows := make([]string, len(s.Rows))
		for i, row := range s.Rows {
			vals := make([]string, len(row))
			for j, l := range row {
				vals[j] = l.SQL()
			}
			rows[i] = "(" + strings.Join(vals, ", ") + ")"
		}
		return "insert into " + s.Table + " values " + strings.Join(rows, ", ")
	case "inssel":
		items := make([]string, len(s.Proj))
		for i, p := range s.Proj {
			if p.Col != "" {
				items[i] = p.Col
			} else {
				items[i] = p.Lit.SQL()
			}
		}
		q := "select " + strings.Join(items, ", ") + " from " + s.Src.sql()
		if s.Where != nil {
			q += " where " + s.Where.sql()
		}
		return "insert into " + s.Table + " (" + q + ")"
	case "delete":
		out := "delete from " + s.Table
		if s.Where != nil {
			out += " where " + s.Where.sql()
		}
		return out
	case "update":
		assigns := make([]string, len(s.Set))
		for i, a := range s.Set {
			rhs := a.Lit.SQL()
			if a.From != "" {
				rhs = a.From
				if a.ArithOp != "" {
					rhs += " " + a.ArithOp + " " + a.Lit.SQL()
				}
			}
			assigns[i] = a.Col + " = " + rhs
		}
		out := "update " + s.Table + " set " + strings.Join(assigns, ", ")
		if s.Where != nil {
			out += " where " + s.Where.sql()
		}
		return out
	default:
		return "-- unknown statement"
	}
}

// SQL renders a rule definition, always with the explicit END terminator.
func (r *Rule) SQL() string {
	var b strings.Builder
	b.WriteString("create rule " + r.Name)
	switch r.Scope {
	case "considered":
		b.WriteString(" scope since considered")
	case "triggered":
		b.WriteString(" scope since triggered")
	}
	b.WriteString(" when ")
	for i, p := range r.Preds {
		if i > 0 {
			b.WriteString(" or ")
		}
		switch p.Op {
		case "inserted":
			b.WriteString("inserted into " + p.Table)
		case "deleted":
			b.WriteString("deleted from " + p.Table)
		case "updated":
			b.WriteString("updated " + p.Table)
			if p.Column != "" {
				b.WriteString("." + p.Column)
			}
		}
	}
	if r.Cond != nil {
		b.WriteString(" if " + r.Cond.sql())
	}
	b.WriteString(" then ")
	if r.Rollback {
		b.WriteString("rollback")
	} else {
		ops := make([]string, len(r.Action))
		for i := range r.Action {
			ops[i] = r.Action[i].SQL()
		}
		b.WriteString(strings.Join(ops, "; "))
	}
	b.WriteString(" end")
	return b.String()
}

// SetupSQL renders the definition script: tables, indexes, rules and
// priority edges, in that order (mirroring the dump writer's ordering).
func (w *Workload) SetupSQL() string {
	var b strings.Builder
	for i := range w.Tables {
		t := &w.Tables[i]
		cols := make([]string, len(t.Cols))
		for j, c := range t.Cols {
			cols[j] = c.Name + " " + c.Kind
		}
		fmt.Fprintf(&b, "create table %s (%s);\n", t.Name, strings.Join(cols, ", "))
	}
	for _, ix := range w.Indexes {
		fmt.Fprintf(&b, "create index %s on %s (%s);\n", ix.Name, ix.Table, ix.Column)
	}
	for i := range w.Rules {
		b.WriteString(w.Rules[i].SQL())
		b.WriteString(";\n")
	}
	for _, p := range w.Priorities {
		fmt.Fprintf(&b, "create rule priority %s before %s;\n", p.Before, p.After)
	}
	return b.String()
}

// TxnSQL renders transaction i as a single operation-block script.
func (w *Workload) TxnSQL(i int) string {
	var b strings.Builder
	for si := range w.Txns[i] {
		b.WriteString(w.Txns[i][si].SQL())
		b.WriteString(";\n")
	}
	return b.String()
}
