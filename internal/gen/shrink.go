package gen

import "encoding/json"

// Shrink greedily minimizes a failing workload. fails must report whether
// a candidate workload still reproduces the failure; it is only ever
// called with workloads that pass Validate. budget bounds the number of
// fails() evaluations (each one replays the whole workload through engine
// and oracle). The returned workload still fails, or — if fails(w) is
// false to begin with — w itself is returned unchanged.
//
// The pass structure is the classic delta-debugging ladder: drop whole
// transactions, then statements, then rules (with their priority edges),
// then indexes and priorities, then rule parts (conditions, extra
// predicates, extra action statements, insert rows, WHERE clauses), then
// literal values toward zero/empty. Passes repeat until a full sweep makes
// no progress or the budget is exhausted.
func Shrink(w *Workload, fails func(*Workload) bool, budget int) *Workload {
	cur := clone(w)
	if budget <= 0 || !fails(cur) {
		return cur
	}
	budget--
	try := func(cand *Workload) bool {
		if budget <= 0 {
			return false
		}
		if cand.Validate() != nil {
			return false
		}
		budget--
		if fails(cand) {
			cur = cand
			return true
		}
		return false
	}

	for progress := true; progress && budget > 0; {
		progress = false

		// Drop whole transactions, scanning from the end.
		for i := len(cur.Txns) - 1; i >= 0 && budget > 0; i-- {
			c := clone(cur)
			c.Txns = append(c.Txns[:i:i], c.Txns[i+1:]...)
			if len(c.Txns) > 0 && try(c) {
				progress = true
			}
		}

		// Drop individual statements.
		for ti := 0; ti < len(cur.Txns); ti++ {
			for si := len(cur.Txns[ti]) - 1; si >= 0 && budget > 0; si-- {
				if ti >= len(cur.Txns) || si >= len(cur.Txns[ti]) {
					break // an emptied transaction was removed; indices shifted
				}
				c := clone(cur)
				txn := c.Txns[ti]
				c.Txns[ti] = append(txn[:si:si], txn[si+1:]...)
				if len(c.Txns[ti]) == 0 {
					c.Txns = append(c.Txns[:ti:ti], c.Txns[ti+1:]...)
					if len(c.Txns) == 0 {
						continue
					}
				}
				if try(c) {
					progress = true
				}
			}
		}

		// Drop rules (and their priority edges).
		for ri := len(cur.Rules) - 1; ri >= 0 && budget > 0; ri-- {
			c := clone(cur)
			name := c.Rules[ri].Name
			c.Rules = append(c.Rules[:ri:ri], c.Rules[ri+1:]...)
			var prio []Priority
			for _, p := range c.Priorities {
				if p.Before != name && p.After != name {
					prio = append(prio, p)
				}
			}
			c.Priorities = prio
			if try(c) {
				progress = true
			}
		}

		// Drop indexes and priority edges.
		for i := len(cur.Indexes) - 1; i >= 0 && budget > 0; i-- {
			c := clone(cur)
			c.Indexes = append(c.Indexes[:i:i], c.Indexes[i+1:]...)
			if try(c) {
				progress = true
			}
		}
		for i := len(cur.Priorities) - 1; i >= 0 && budget > 0; i-- {
			c := clone(cur)
			c.Priorities = append(c.Priorities[:i:i], c.Priorities[i+1:]...)
			if try(c) {
				progress = true
			}
		}

		// Simplify rules: drop conditions, spare predicates, spare action
		// statements.
		for ri := 0; ri < len(cur.Rules) && budget > 0; ri++ {
			if cur.Rules[ri].Cond != nil {
				c := clone(cur)
				c.Rules[ri].Cond = nil
				if try(c) {
					progress = true
				}
			}
			for pi := len(cur.Rules[ri].Preds) - 1; pi >= 0 && len(cur.Rules[ri].Preds) > 1 && budget > 0; pi-- {
				c := clone(cur)
				p := c.Rules[ri].Preds
				c.Rules[ri].Preds = append(p[:pi:pi], p[pi+1:]...)
				if try(c) {
					progress = true
				}
			}
			for si := len(cur.Rules[ri].Action) - 1; si >= 0 && len(cur.Rules[ri].Action) > 1 && budget > 0; si-- {
				c := clone(cur)
				a := c.Rules[ri].Action
				c.Rules[ri].Action = append(a[:si:si], a[si+1:]...)
				if try(c) {
					progress = true
				}
			}
		}

		// Simplify join conditions: drop literal atoms, then trailing
		// sources (with every ON conjunct and atom that references them).
		for ri := 0; ri < len(cur.Rules) && budget > 0; ri++ {
			c := cur.Rules[ri].Cond
			if c == nil || len(c.Srcs) == 0 {
				continue
			}
			for ai := len(c.Atoms) - 1; ai >= 0 && budget > 0; ai-- {
				cand := clone(cur)
				cc := cand.Rules[ri].Cond
				cc.Atoms = append(cc.Atoms[:ai:ai], cc.Atoms[ai+1:]...)
				if try(cand) {
					progress = true
				}
				c = cur.Rules[ri].Cond
			}
			for len(c.Srcs) > 2 && budget > 0 {
				last := len(c.Srcs) - 1
				cand := clone(cur)
				cc := cand.Rules[ri].Cond
				cc.Srcs = cc.Srcs[:last]
				var on []JoinOn
				for _, o := range cc.On {
					if o.LSrc != last && o.RSrc != last {
						on = append(on, o)
					}
				}
				cc.On = on
				var atoms []JoinAtom
				for _, a := range cc.Atoms {
					if a.Src != last {
						atoms = append(atoms, a)
					}
				}
				cc.Atoms = atoms
				if !try(cand) {
					break
				}
				progress = true
				c = cur.Rules[ri].Cond
			}
		}

		// Simplify statements everywhere: drop WHERE clauses and spare
		// insert rows.
		forEachStmt(cur, func(loc stmtLoc) {
			if budget <= 0 {
				return
			}
			s := loc.get(cur)
			if s.Where != nil {
				c := clone(cur)
				loc.get(c).Where = nil
				if try(c) {
					progress = true
				}
			}
			s = loc.get(cur)
			for ri := len(s.Rows) - 1; ri >= 0 && len(loc.get(cur).Rows) > 1 && budget > 0; ri-- {
				c := clone(cur)
				cs := loc.get(c)
				cs.Rows = append(cs.Rows[:ri:ri], cs.Rows[ri+1:]...)
				if try(c) {
					progress = true
				}
			}
		})

		// Shrink literals toward zero/empty/null.
		forEachStmt(cur, func(loc stmtLoc) {
			s := loc.get(cur)
			for ri := range s.Rows {
				for ci := range s.Rows[ri] {
					if budget <= 0 {
						return
					}
					l := s.Rows[ri][ci]
					for _, cand := range shrunkLits(l) {
						c := clone(cur)
						loc.get(c).Rows[ri][ci] = cand
						if try(c) {
							progress = true
							break
						}
					}
				}
			}
		})
	}
	return cur
}

// shrunkLits proposes strictly simpler literals.
func shrunkLits(l Lit) []Lit {
	switch l.K {
	case "i":
		if l.I == 0 {
			return []Lit{Null}
		}
		return []Lit{IntLit(0), IntLit(l.I / 2), Null}
	case "f":
		if l.F == 0 {
			return []Lit{Null}
		}
		return []Lit{FloatLit(0), Null}
	case "s":
		if l.S == "" {
			return []Lit{Null}
		}
		return []Lit{StrLit(""), Null}
	case "b":
		return []Lit{Null}
	default:
		return nil
	}
}

// stmtLoc addresses one statement in a workload by position, so a clone
// can be edited at the same spot.
type stmtLoc struct {
	rule int // -1 for a transaction statement
	txn  int
	idx  int
}

func (l stmtLoc) get(w *Workload) *Stmt {
	if l.rule >= 0 {
		return &w.Rules[l.rule].Action[l.idx]
	}
	return &w.Txns[l.txn][l.idx]
}

func forEachStmt(w *Workload, fn func(stmtLoc)) {
	for ti := range w.Txns {
		for si := range w.Txns[ti] {
			fn(stmtLoc{rule: -1, txn: ti, idx: si})
		}
	}
	for ri := range w.Rules {
		for si := range w.Rules[ri].Action {
			fn(stmtLoc{rule: ri, idx: si})
		}
	}
}

// clone deep-copies a workload via its JSON form.
func clone(w *Workload) *Workload {
	data, err := json.Marshal(w)
	if err != nil {
		panic("gen: clone marshal: " + err.Error())
	}
	var out Workload
	if err := json.Unmarshal(data, &out); err != nil {
		panic("gen: clone unmarshal: " + err.Error())
	}
	return &out
}
