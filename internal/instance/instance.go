// Package instance implements an instance-oriented (row-level) production
// rule executor over the same storage and query substrate as the
// set-oriented engine. It is the baseline the paper contrasts against
// (Section 1): "rules that are applied once for each data item satisfying
// the condition part of the rule. (For example, one might define an
// instance-oriented rule that is applied once for each tuple inserted into
// the database.)"
//
// Semantics: after each data manipulation operation, every matching rule is
// considered once per affected tuple, with transition tables containing
// exactly that tuple; if the condition holds, the action executes for that
// tuple. Cascading changes recurse, bounded by MaxDepth. This mirrors
// classic per-row trigger systems and is used by the benchmark harness
// (experiment B1) to quantify the per-tuple overhead that set-oriented
// rules amortize.
package instance

import (
	"fmt"

	"sopr/internal/catalog"
	"sopr/internal/exec"
	"sopr/internal/rules"
	"sopr/internal/sqlast"
	"sopr/internal/sqlparse"
	"sopr/internal/storage"
)

// Rule is one instance-oriented rule. The definition syntax is the same as
// the set-oriented language; transition tables in the condition and action
// simply contain a single tuple at a time.
type Rule struct {
	Name      string
	Preds     []sqlast.TransPred
	Condition sqlast.Expr
	Action    []sqlast.Statement
}

// Engine executes operation blocks with row-level rule processing.
type Engine struct {
	store *storage.Store
	rules []*Rule
	// MaxDepth bounds cascade recursion (default 100).
	MaxDepth int
	// Firings counts rule action executions (for tests and benchmarks).
	Firings int
}

// New returns an empty instance-oriented engine.
func New() *Engine {
	return &Engine{store: storage.New(), MaxDepth: 100}
}

// Store exposes the underlying storage engine.
func (e *Engine) Store() *storage.Store { return e.store }

// Exec parses and executes a script of CREATE TABLE, CREATE RULE and DML
// statements. Each DML statement is followed immediately by row-level rule
// processing (there is no deferred, set-oriented consideration).
func (e *Engine) Exec(src string) error {
	stmts, err := sqlparse.ParseStatements(src)
	if err != nil {
		return err
	}
	for _, st := range stmts {
		switch s := st.(type) {
		case *sqlast.CreateTable:
			tab, err := exec.CreateTableSchema(s)
			if err != nil {
				return err
			}
			if err := e.store.CreateTable(tab); err != nil {
				return err
			}
		case *sqlast.CreateIndex:
			if err := e.store.CreateIndex(s.Name, s.Table, s.Column); err != nil {
				return err
			}
		case *sqlast.DropIndex:
			if err := e.store.DropIndex(s.Name); err != nil {
				return err
			}
		case *sqlast.CreateRule:
			if err := e.defineRule(s); err != nil {
				return err
			}
		case *sqlast.Insert, *sqlast.Delete, *sqlast.Update:
			if err := e.execOp(st, 0); err != nil {
				return err
			}
		default:
			return fmt.Errorf("instance: unsupported statement %T", st)
		}
	}
	return nil
}

// Query evaluates a SELECT against the current state.
func (e *Engine) Query(src string) (*exec.Result, error) {
	st, err := sqlparse.ParseStatement(src)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sqlast.Select)
	if !ok {
		return nil, fmt.Errorf("instance: Query requires a SELECT, got %T", st)
	}
	env := &exec.Env{Store: e.store}
	return env.Query(sel)
}

func (e *Engine) defineRule(cr *sqlast.CreateRule) error {
	if cr.Action.Rollback || cr.Action.Call != "" {
		return fmt.Errorf("instance: only operation-block actions are supported")
	}
	for _, op := range cr.Action.Block {
		if _, ok := op.(*sqlast.Select); ok {
			return fmt.Errorf("instance: SELECT in rule actions is not supported")
		}
	}
	if err := rules.ValidateRule(cr, e.store.Catalog()); err != nil {
		return err
	}
	e.rules = append(e.rules, &Rule{
		Name:      cr.Name,
		Preds:     cr.Preds,
		Condition: cr.Condition,
		Action:    cr.Action.Block,
	})
	return nil
}

// execOp executes one DML operation, then processes rules once per affected
// tuple.
func (e *Engine) execOp(st sqlast.Statement, depth int) error {
	env := &exec.Env{Store: e.store}
	res, err := env.ExecOp(st)
	if err != nil {
		return err
	}
	return e.processTuples(res, depth)
}

// processTuples applies each matching rule once per affected tuple.
func (e *Engine) processTuples(res *exec.OpResult, depth int) error {
	cat := e.store.Catalog()
	for _, h := range res.Inserted {
		eff := singleInsert(res.Table, h)
		if err := e.fireMatching(eff, cat, depth); err != nil {
			return err
		}
	}
	for _, d := range res.Deleted {
		eff := singleDelete(res.Table, d)
		if err := e.fireMatching(eff, cat, depth); err != nil {
			return err
		}
	}
	for _, u := range res.Updated {
		eff := singleUpdate(res.Table, u)
		if err := e.fireMatching(eff, cat, depth); err != nil {
			return err
		}
	}
	return nil
}

func singleInsert(table string, h storage.Handle) *rules.Effect {
	eff := rules.NewEffect()
	eff.AddOp(&exec.OpResult{Table: table, Inserted: []storage.Handle{h}})
	return eff
}

func singleDelete(table string, d exec.DeletedTuple) *rules.Effect {
	eff := rules.NewEffect()
	eff.AddOp(&exec.OpResult{Table: table, Deleted: []exec.DeletedTuple{d}})
	return eff
}

func singleUpdate(table string, u exec.UpdatedTuple) *rules.Effect {
	eff := rules.NewEffect()
	eff.AddOp(&exec.OpResult{Table: table, Updated: []exec.UpdatedTuple{u}})
	return eff
}

// fireMatching considers every rule against a single-tuple effect.
func (e *Engine) fireMatching(eff *rules.Effect, cat *catalog.Catalog, depth int) error {
	if depth > e.MaxDepth {
		return fmt.Errorf("instance: cascade depth exceeded %d (possible infinite loop)", e.MaxDepth)
	}
	for _, r := range e.rules {
		ok, err := rules.EffectSatisfies(eff, r.Preds, cat)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		env := &exec.Env{
			Store: e.store,
			Trans: &rules.TransSource{Store: e.store, Effect: eff},
		}
		// For a deleted tuple the row is gone; for inserted/updated the
		// transition tables read live values. A rule may race with its own
		// cascades (classic row-trigger hazard); we follow row-trigger
		// practice and skip rules whose inserted/updated tuple no longer
		// exists.
		if stale(e.store, eff) {
			continue
		}
		hold, err := env.EvalPredicate(r.Condition)
		if err != nil {
			return err
		}
		if !hold {
			continue
		}
		e.Firings++
		// Action operations run with the rule's single-tuple transition
		// tables in scope; their own affected tuples cascade.
		for _, op := range r.Action {
			res, err := env.ExecOp(op)
			if err != nil {
				return err
			}
			if err := e.processTuples(res, depth+1); err != nil {
				return err
			}
		}
	}
	return nil
}

// stale reports whether the effect references an inserted or updated tuple
// that has since been deleted by a cascade.
func stale(st *storage.Store, eff *rules.Effect) bool {
	for h := range eff.Ins {
		if _, ok := st.Get(h); !ok {
			return true
		}
	}
	for h := range eff.Upd {
		if _, ok := st.Get(h); !ok {
			return true
		}
	}
	return false
}
