package instance

import (
	"strings"
	"testing"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	if err := e.Exec(`
		create table emp (name varchar, emp_no int, salary float, dept_no int);
		create table audit (who varchar)
	`); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPerTupleFiring(t *testing.T) {
	e := newEngine(t)
	if err := e.Exec(`
		create rule log when inserted into emp
		then insert into audit (select name from inserted emp)
		end
	`); err != nil {
		t.Fatal(err)
	}
	// A three-row insert fires the rule three times — once per tuple —
	// in contrast to the set-oriented engine's single firing.
	if err := e.Exec(`insert into emp values ('a',1,1,1), ('b',2,1,1), ('c',3,1,1)`); err != nil {
		t.Fatal(err)
	}
	if e.Firings != 3 {
		t.Errorf("firings = %d, want 3", e.Firings)
	}
	res, err := e.Query(`select who from audit order by who`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("audit rows: %v", res.Rows)
	}
}

func TestConditionPerTuple(t *testing.T) {
	e := newEngine(t)
	if err := e.Exec(`
		create rule high when inserted into emp
		if exists (select * from inserted emp where salary > 100)
		then insert into audit (select name from inserted emp)
		end
	`); err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(`insert into emp values ('low',1,50,1), ('high',2,200,1)`); err != nil {
		t.Fatal(err)
	}
	res, _ := e.Query(`select who from audit`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "high" {
		t.Errorf("condition filtering per tuple: %v", res.Rows)
	}
	if e.Firings != 1 {
		t.Errorf("firings = %d", e.Firings)
	}
}

func TestDeleteAndUpdateTriggers(t *testing.T) {
	e := newEngine(t)
	if err := e.Exec(`
		create rule ondelete when deleted from emp
		then insert into audit (select name from deleted emp)
		end;
		create rule onupdate when updated emp.salary
		then insert into audit (select name from new updated emp.salary)
		end
	`); err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(`insert into emp values ('a',1,1,1), ('b',2,1,1)`); err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(`update emp set salary = 2`); err != nil {
		t.Fatal(err)
	}
	if e.Firings != 2 {
		t.Errorf("update firings = %d, want 2", e.Firings)
	}
	if err := e.Exec(`delete from emp`); err != nil {
		t.Fatal(err)
	}
	if e.Firings != 4 {
		t.Errorf("total firings = %d, want 4", e.Firings)
	}
	res, _ := e.Query(`select count(*) from audit`)
	if res.Rows[0][0].Int() != 4 {
		t.Errorf("audit count: %v", res.Rows)
	}
}

func TestCascadeDepthGuard(t *testing.T) {
	e := New()
	e.MaxDepth = 5
	if err := e.Exec(`create table t (a int)`); err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(`
		create rule grow when inserted into t
		then insert into t (select a + 1 from inserted t)
		end
	`); err != nil {
		t.Fatal(err)
	}
	err := e.Exec(`insert into t values (1)`)
	if err == nil || !strings.Contains(err.Error(), "cascade depth") {
		t.Errorf("expected depth error, got %v", err)
	}
}

func TestStaleTupleSkipped(t *testing.T) {
	// Rule A deletes newly inserted tuples; rule B (later) must not fire
	// on the now-gone tuple.
	e := newEngine(t)
	if err := e.Exec(`
		create rule reject when inserted into emp
		then delete from emp where emp_no in (select emp_no from inserted emp)
		end;
		create rule log when inserted into emp
		then insert into audit (select name from inserted emp)
		end
	`); err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(`insert into emp values ('a',1,1,1)`); err != nil {
		t.Fatal(err)
	}
	res, _ := e.Query(`select count(*) from audit`)
	if res.Rows[0][0].Int() != 0 {
		t.Errorf("rule fired on stale tuple: %v", res.Rows)
	}
}

func TestStoreAccessor(t *testing.T) {
	e := newEngine(t)
	if n, err := e.Store().Count("emp"); err != nil || n != 0 {
		t.Errorf("Store().Count: %d, %v", n, err)
	}
}

func TestUnsupportedFeatures(t *testing.T) {
	e := newEngine(t)
	if err := e.Exec(`create rule r when inserted into emp then rollback`); err == nil {
		t.Error("rollback action accepted")
	}
	if err := e.Exec(`drop rule r`); err == nil {
		t.Error("unsupported statement accepted")
	}
	if _, err := e.Query(`insert into emp values ('a',1,1,1)`); err == nil {
		t.Error("Query accepted non-SELECT")
	}
	if err := e.Exec(`create rule bad when inserted into emp
		then insert into audit (select name from deleted emp) end`); err == nil {
		t.Error("invalid transition-table reference accepted")
	}
}
