package oracle

import (
	"bytes"

	"sopr/internal/engine"
	"sopr/internal/gen"
)

// RunBatchDiff checks batch-block parity: executing each transaction's
// statements through the set-oriented batch entry point (ExecBatch, the
// wire protocol's MsgExecBatch path) must be indistinguishable from
// executing the same statements as one script — identical outcomes and
// firing sequences transaction by transaction, and a byte-identical dump
// at the end. Both submissions form ONE operation block, so the paper's
// rule semantics (rules see the block's net effect once) admit no
// difference; any divergence is an engine bug in the batch path.
func RunBatchDiff(w *gen.Workload, opts Options) *Divergence {
	choose := Chooser(opts.Salt)
	script := engine.New(engine.Config{MaxRuleTransitions: w.Cap, SelectHook: choose})
	if _, err := script.Exec(w.SetupSQL()); err != nil {
		return diverge("setup", -1, "script engine rejected setup: %v", err)
	}
	batch := engine.New(engine.Config{MaxRuleTransitions: w.Cap, SelectHook: choose})
	if _, err := batch.Exec(w.SetupSQL()); err != nil {
		return diverge("setup", -1, "batch engine rejected setup: %v", err)
	}

	for i := range w.Txns {
		stmts := make([]string, len(w.Txns[i]))
		for si := range w.Txns[i] {
			stmts[si] = w.Txns[i][si].SQL()
		}
		scriptOut := engineOutcome(script.Exec(w.TxnSQL(i)))
		batchOut := engineOutcome(batch.ExecBatch(stmts))
		if msg := outcomesDiffer(batchOut, scriptOut); msg != "" {
			return diverge("batchparity", i, "batch vs script: %s", msg)
		}
		scriptState, err := engineState(script, w)
		if err != nil {
			return diverge("batchparity", i, "script state: %v", err)
		}
		batchState, err := engineState(batch, w)
		if err != nil {
			return diverge("batchparity", i, "batch state: %v", err)
		}
		if msg := statesDiffer(batchState, scriptState); msg != "" {
			return diverge("batchparity", i, "batch vs script: %s", msg)
		}
	}

	var scriptDump, batchDump bytes.Buffer
	if err := script.Dump(&scriptDump); err != nil {
		return diverge("batchparity", -1, "script dump: %v", err)
	}
	if err := batch.Dump(&batchDump); err != nil {
		return diverge("batchparity", -1, "batch dump: %v", err)
	}
	if !bytes.Equal(scriptDump.Bytes(), batchDump.Bytes()) {
		return diverge("batchparity", -1, "dumps differ\n--- script ---\n%s\n--- batch ---\n%s",
			scriptDump.String(), batchDump.String())
	}
	return nil
}
