package oracle

import (
	"testing"

	"sopr/internal/gen"
)

// TestBatchParity runs the batch-vs-script differential check over at
// least 1000 generated workloads: every transaction submitted through the
// batch entry point must produce the same outcome, firing sequence, and
// exact state as the same statements submitted as one script, ending in
// byte-identical dumps.
func TestBatchParity(t *testing.T) {
	iters := int64(1000)
	if n := int64(*diffIters); n > iters {
		iters = n
	}
	if testing.Short() {
		iters = 100
	}
	for seed := int64(0); seed < iters; seed++ {
		w := gen.Generate(seed)
		if d := RunBatchDiff(w, Options{Salt: uint64(seed)}); d != nil {
			data, err := w.Marshal()
			if err != nil {
				t.Fatalf("seed %d: %v (unmarshalable workload)", seed, d)
			}
			t.Fatalf("seed %d: %v\n%s", seed, d, data)
		}
	}
}
