package oracle

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sopr/internal/gen"
	"sopr/internal/value"
)

var writeCorpus = flag.Bool("writecorpus", false, "rewrite testdata/corpus/ entries from the targeted workloads")

// targetedWorkloads are hand-crafted scenarios aimed at the semantic
// corners of Sections 2-5 where the engine and the oracle are most likely
// to drift apart: scope-modified transition windows, Definition 2.1
// composition edge cases (delete-after-update, insert-then-delete
// cancellation), rollback undo and physical heap order, the exact
// transition-cap boundary, cross-kind coercion, three-valued logic, and
// transitive priority domination. Each is constructed so the interesting
// behavior is observable in the final state or the firing sequence, not
// just incidentally exercised. They run through the full differential
// check on every `go test`, and -writecorpus freezes them into
// testdata/corpus/ where TestCorpusReplays replays them deterministically.
func targetedWorkloads() map[string]*gen.Workload {
	t2 := func(name string, cols ...gen.Col) gen.Table { return gen.Table{Name: name, Cols: cols} }
	ic := func(name string) gen.Col { return gen.Col{Name: name, Kind: "int"} }
	insert := func(table string, rows ...[]gen.Lit) gen.Stmt {
		return gen.Stmt{Kind: "insert", Table: table, Rows: rows}
	}
	row := func(lits ...gen.Lit) []gen.Lit { return lits }
	atom := func(col, op string, lit gen.Lit) *gen.Where {
		return &gen.Where{Atom: &gen.Atom{Col: col, Op: op, Lit: lit}}
	}
	process := gen.Stmt{Kind: "process"}

	ws := map[string]*gen.Workload{}

	// scope_considered_reset: a SINCE CONSIDERED rule whose condition
	// counts the rows in its `new updated` window. The first PROCESS RULES
	// sees two updated rows (count = 2, condition false), which under the
	// considered scope must RESET the window; the second segment updates
	// exactly one row, so the restarted window has count = 1 and the rule
	// fires. Under default (since-activation) scope the windows compose to
	// count = 2 and the rule stays silent — the final state distinguishes
	// the two readings.
	ws["scope_considered_reset"] = &gen.Workload{
		Seed: 9001, Cap: 10,
		Tables: []gen.Table{t2("t", ic("a"), ic("b")), t2("s", ic("x"))},
		Rules: []gen.Rule{{
			Name: "rc", Scope: "considered",
			Preds: []gen.Pred{{Op: "updated", Table: "t", Column: "a"}},
			Cond: &gen.Cond{
				Kind: "agg", Agg: "count",
				Sub: gen.SubQuery{Src: gen.Source{Trans: "new", Table: "t", Column: "a"}},
				Op:  "=", Lit: gen.IntLit(1),
			},
			Action: []gen.Stmt{insert("s", row(gen.IntLit(1)))},
		}},
		Txns: [][]gen.Stmt{
			{insert("t", row(gen.IntLit(1), gen.IntLit(0)), row(gen.IntLit(2), gen.IntLit(0)))},
			{
				{Kind: "update", Table: "t", Set: []gen.SetItem{{Col: "a", From: "a", ArithOp: "+", Lit: gen.IntLit(1)}}},
				process,
				{Kind: "update", Table: "t", Set: []gen.SetItem{{Col: "a", Lit: gen.IntLit(150)}}, Where: atom("a", "=", gen.IntLit(2))},
			},
		},
	}

	// scope_triggered_restart: a SINCE TRIGGERED rule whose window must
	// RESTART (not compose) when another rule's action alone re-satisfies
	// its transition predicate. r0's condition requires exactly one
	// inserted t row; the transaction inserts two, so r0 is first
	// considered false. r1 then fires, inserting a single t row — under
	// the triggered scope r0's window restarts to just that row (count =
	// 1) and r0 fires; under default scope the window would hold three
	// rows and r0 would stay silent. The firing order is deterministic
	// regardless of which rule the selection hook tries first.
	ws["scope_triggered_restart"] = &gen.Workload{
		Seed: 9002, Cap: 10,
		Tables: []gen.Table{t2("t", ic("a")), t2("u", ic("b")), t2("s", ic("x"))},
		Rules: []gen.Rule{
			{
				Name: "r0", Scope: "triggered",
				Preds: []gen.Pred{{Op: "inserted", Table: "t"}},
				Cond: &gen.Cond{
					Kind: "agg", Agg: "count",
					Sub: gen.SubQuery{Src: gen.Source{Trans: "inserted", Table: "t"}},
					Op:  "=", Lit: gen.IntLit(1),
				},
				Action: []gen.Stmt{insert("s", row(gen.IntLit(7)))},
			},
			{
				Name:   "r1",
				Preds:  []gen.Pred{{Op: "inserted", Table: "u"}},
				Action: []gen.Stmt{insert("t", row(gen.IntLit(5)))},
			},
		},
		Txns: [][]gen.Stmt{
			{insert("t", row(gen.IntLit(1)), row(gen.IntLit(2))), insert("u", row(gen.IntLit(1)))},
		},
	}

	// delete_after_update_oldrow: Definition 2.1 says a delete composed
	// after an update must surface the PRE-update value in the deleted
	// transition table (D takes the update's old row, and the update entry
	// disappears). The rule copies `deleted t` into s, so s must receive
	// (1, 'orig'), never (1, 'zz'). The second transaction checks the dual
	// cancellation law: insert-then-delete composes to an empty effect, so
	// the rule must not even trigger.
	ws["delete_after_update_oldrow"] = &gen.Workload{
		Seed: 9003, Cap: 10,
		Tables: []gen.Table{
			t2("t", ic("a"), gen.Col{Name: "b", Kind: "varchar"}),
			t2("s", ic("x"), gen.Col{Name: "y", Kind: "varchar"}),
		},
		Rules: []gen.Rule{{
			Name:  "rd",
			Preds: []gen.Pred{{Op: "deleted", Table: "t"}},
			Action: []gen.Stmt{{
				Kind: "inssel", Table: "s",
				Src:  &gen.Source{Trans: "deleted", Table: "t"},
				Proj: []gen.ProjItem{{Col: "a"}, {Col: "b"}},
			}},
		}},
		Txns: [][]gen.Stmt{
			{insert("t", row(gen.IntLit(1), gen.StrLit("orig")), row(gen.IntLit(2), gen.StrLit("keep")))},
			{
				{Kind: "update", Table: "t", Set: []gen.SetItem{{Col: "b", Lit: gen.StrLit("zz")}}, Where: atom("a", "=", gen.IntLit(1))},
				{Kind: "delete", Table: "t", Where: atom("a", "=", gen.IntLit(1))},
			},
			{
				insert("t", row(gen.IntLit(9), gen.StrLit("new9"))),
				{Kind: "delete", Table: "t", Where: atom("a", "=", gen.IntLit(9))},
			},
		},
	}

	// rollback_physical_order: physical heap order is observable through
	// scan order, and rollback must restore it via the exact reverse-undo
	// discipline (undo-delete re-appends at the END, not the original
	// slot). txn 1 deletes the middle row then triggers a rollback rule;
	// after undo the heap order is [1, 3, 2] — not the original [1, 2, 3].
	// txn 2 then materializes the scan order into s, where exact
	// handle+value comparison pins it. Handles consumed by the rolled-back
	// transaction stay consumed, which the fresh handles in txn 2 verify.
	ws["rollback_physical_order"] = &gen.Workload{
		Seed: 9004, Cap: 10,
		Tables: []gen.Table{t2("t", ic("a")), t2("s", ic("x"))},
		Rules: []gen.Rule{{
			Name:  "rb",
			Preds: []gen.Pred{{Op: "inserted", Table: "t"}},
			Cond: &gen.Cond{
				Kind: "exists",
				Sub: gen.SubQuery{
					Src:   gen.Source{Trans: "inserted", Table: "t"},
					Where: atom("a", ">=", gen.IntLit(50)),
				},
			},
			Rollback: true,
		}},
		Txns: [][]gen.Stmt{
			{insert("t", row(gen.IntLit(1)), row(gen.IntLit(2)), row(gen.IntLit(3)))},
			{
				{Kind: "delete", Table: "t", Where: atom("a", "=", gen.IntLit(2))},
				insert("t", row(gen.IntLit(99))),
			},
			{
				insert("t", row(gen.IntLit(4))),
				{Kind: "inssel", Table: "s", Src: &gen.Source{Table: "t"}, Proj: []gen.ProjItem{{Col: "a"}}},
			},
		},
	}

	// runaway_cap_boundary: a self-triggering rule under Cap = 5 must fire
	// exactly 5 times and then fail on the 6th selection (the counter is
	// incremented before the cap check), rolling the whole transaction
	// back as a runaway error on both sides. The follow-up transaction on
	// an unwatched table must commit, verifying that the handle counter
	// state after a runaway rollback also agrees.
	ws["runaway_cap_boundary"] = &gen.Workload{
		Seed: 9005, Cap: 5,
		Tables: []gen.Table{t2("t", ic("a")), t2("q", ic("c"))},
		Rules: []gen.Rule{{
			Name:   "loop",
			Preds:  []gen.Pred{{Op: "inserted", Table: "t"}},
			Action: []gen.Stmt{insert("t", row(gen.IntLit(1)))},
		}},
		Txns: [][]gen.Stmt{
			{insert("t", row(gen.IntLit(0)))},
			{insert("q", row(gen.IntLit(10)))},
		},
	}

	// exact_cap_quiesce: the dual boundary — a three-rule chain under
	// Cap = 3 performs exactly Cap rule transitions and then quiesces, so
	// the transaction must COMMIT: the cap is a strict bound on cap+1
	// attempts, not on reaching cap.
	ws["exact_cap_quiesce"] = &gen.Workload{
		Seed: 9006, Cap: 3,
		Tables: []gen.Table{t2("t", ic("a")), t2("u", ic("b")), t2("v", ic("c")), t2("w", ic("d"))},
		Rules: []gen.Rule{
			{Name: "c0", Preds: []gen.Pred{{Op: "inserted", Table: "t"}}, Action: []gen.Stmt{insert("u", row(gen.IntLit(1)))}},
			{Name: "c1", Preds: []gen.Pred{{Op: "inserted", Table: "u"}}, Action: []gen.Stmt{insert("v", row(gen.IntLit(1)))}},
			{Name: "c2", Preds: []gen.Pred{{Op: "inserted", Table: "v"}}, Action: []gen.Stmt{insert("w", row(gen.IntLit(1)))}},
		},
		Txns: [][]gen.Stmt{{insert("t", row(gen.IntLit(1)))}},
	}

	// crosskind_coercion: Validate deliberately does not kind-match
	// literals or projections against column kinds, so coercion behavior
	// is itself under test. int -> float widens; an integral float narrows
	// to int; a fractional float must error identically on both sides and
	// roll the transaction back.
	ws["crosskind_coercion"] = &gen.Workload{
		Seed: 9007, Cap: 10,
		Tables: []gen.Table{
			t2("t", ic("i"), gen.Col{Name: "f", Kind: "float"}),
			t2("s", gen.Col{Name: "f2", Kind: "float"}, gen.Col{Name: "i2", Kind: "int"}),
		},
		Txns: [][]gen.Stmt{
			{insert("t", row(gen.IntLit(3), gen.FloatLit(4.0)), row(gen.IntLit(5), gen.FloatLit(2.5)))},
			{{Kind: "inssel", Table: "s", Src: &gen.Source{Table: "t"},
				Proj: []gen.ProjItem{{Col: "i"}, {Col: "f"}}, Where: atom("f", "=", gen.FloatLit(4.0))}},
			{{Kind: "inssel", Table: "s", Src: &gen.Source{Table: "t"},
				Proj: []gen.ProjItem{{Col: "i"}, {Col: "f"}}, Where: atom("f", "=", gen.FloatLit(2.5))}},
			{{Kind: "update", Table: "s", Set: []gen.SetItem{{Col: "f2", Lit: gen.IntLit(7)}}, Where: atom("i2", "=", gen.IntLit(4))}},
		},
	}

	// null_semantics: three-valued logic in every position — an aggregate
	// condition over an all-NULL column is Unknown (rule silent), an IN
	// whose subquery yields NULLs makes non-matching rows Unknown (not
	// updated) while a genuine match still updates, and ISNULL inside an
	// AND selects the right row for deletion.
	ws["null_semantics"] = &gen.Workload{
		Seed: 9008, Cap: 10,
		Tables: []gen.Table{t2("t", ic("a"), ic("b")), t2("s", ic("x"))},
		Rules: []gen.Rule{{
			Name:  "rn",
			Preds: []gen.Pred{{Op: "inserted", Table: "t"}},
			Cond: &gen.Cond{
				Kind: "agg", Agg: "sum",
				Sub: gen.SubQuery{Col: "b", Src: gen.Source{Trans: "inserted", Table: "t"}},
				Op:  ">", Lit: gen.IntLit(0),
			},
			Action: []gen.Stmt{insert("s", row(gen.IntLit(1)))},
		}},
		Txns: [][]gen.Stmt{
			{insert("t", row(gen.IntLit(1), gen.Null), row(gen.IntLit(2), gen.Null))},
			{insert("t", row(gen.IntLit(3), gen.IntLit(5)), row(gen.IntLit(5), gen.Null))},
			{{Kind: "update", Table: "t", Set: []gen.SetItem{{Col: "a", Lit: gen.IntLit(99)}},
				Where: &gen.Where{Atom: &gen.Atom{Col: "a", Op: "in",
					Sub: &gen.SubQuery{Col: "b", Src: gen.Source{Table: "t"}}}}}},
			{{Kind: "delete", Table: "t", Where: &gen.Where{And: []*gen.Where{
				{Atom: &gen.Atom{Col: "b", Op: "isnull"}},
				atom("a", "=", gen.IntLit(99)),
			}}}},
		},
	}

	// priority_transitive: r0 is prioritized before r1 and r1 before r2,
	// with no direct r0-r2 edge, and r1 is never triggered. When r0 and r2
	// are both triggered, r2 is dominated only TRANSITIVELY (through the
	// untriggered r1) — both sides must honor reachability, firing r0
	// first at every selection salt, which the lockstep firing-sequence
	// comparison enforces.
	ws["priority_transitive"] = &gen.Workload{
		Seed: 9009, Cap: 10,
		Tables: []gen.Table{t2("t", ic("a")), t2("u", ic("b")), t2("s0", ic("x")), t2("s2", ic("z"))},
		Rules: []gen.Rule{
			{Name: "r0", Preds: []gen.Pred{{Op: "inserted", Table: "t"}}, Action: []gen.Stmt{insert("s0", row(gen.IntLit(1)))}},
			{Name: "r1", Preds: []gen.Pred{{Op: "inserted", Table: "u"}}, Action: []gen.Stmt{insert("s0", row(gen.IntLit(99)))}},
			{Name: "r2", Preds: []gen.Pred{{Op: "inserted", Table: "t"}}, Action: []gen.Stmt{insert("s2", row(gen.IntLit(1)))}},
		},
		Priorities: []gen.Priority{{Before: "r0", After: "r1"}, {Before: "r1", After: "r2"}},
		Txns:       [][]gen.Stmt{{insert("t", row(gen.IntLit(1)))}},
	}

	// empty_segments: PROCESS RULES in degenerate positions — leading
	// (the init-trans-info segment carries an EMPTY effect), doubled, and
	// trailing after a firing. Both sides must segment identically and
	// treat the empty transitions as no-ops rather than re-firing or
	// resetting anything.
	ws["empty_segments"] = &gen.Workload{
		Seed: 9010, Cap: 10,
		Tables: []gen.Table{t2("t", ic("a")), t2("q", ic("c"))},
		Rules: []gen.Rule{{
			Name:  "re",
			Preds: []gen.Pred{{Op: "inserted", Table: "t"}},
			Cond: &gen.Cond{
				Kind: "exists",
				Sub: gen.SubQuery{
					Src:   gen.Source{Trans: "inserted", Table: "t"},
					Where: atom("a", ">=", gen.IntLit(1)),
				},
			},
			Action: []gen.Stmt{insert("q", row(gen.IntLit(1)))},
		}},
		Txns: [][]gen.Stmt{
			{process, process, insert("t", row(gen.IntLit(1))), process, process},
		},
	}

	return ws
}

// TestTargetedWorkloads validates and differentially executes every
// hand-crafted corner-case workload, at several selection salts so
// chooser-order variation is covered too. With -writecorpus it also
// freezes each one into testdata/corpus/, where TestCorpusReplays replays
// them on every run.
func TestTargetedWorkloads(t *testing.T) {
	for name, w := range targetedWorkloads() {
		name, w := name, w
		t.Run(name, func(t *testing.T) {
			if err := w.Validate(); err != nil {
				t.Fatalf("workload invalid: %v", err)
			}
			for _, salt := range []uint64{uint64(w.Seed), 0, 1, 2} {
				if d := RunDiff(w, Options{Salt: salt}); d != nil {
					t.Fatalf("salt %d: %v", salt, d)
				}
			}
			if *writeCorpus {
				data, err := w.Marshal()
				if err != nil {
					t.Fatal(err)
				}
				dir := filepath.Join("testdata", "corpus")
				if err := os.MkdirAll(dir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dir, name+".json"), append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestTargetedExpectations pins the intended OUTCOME of the trickiest
// targeted workloads against the oracle alone. The differential check
// proves engine == oracle; this proves both match the paper's semantics
// as designed (e.g. that the considered-scope rule really does fire after
// the window reset), guarding against the failure mode where engine and
// oracle share the same misreading.
func TestTargetedExpectations(t *testing.T) {
	ws := targetedWorkloads()
	run := func(name string) (*DB, []Outcome) {
		w := ws[name]
		db := New(w, Chooser(uint64(w.Seed)))
		var outs []Outcome
		for _, txn := range w.Txns {
			outs = append(outs, db.RunTxn(txn))
		}
		return db, outs
	}
	count := func(db *DB, table string) int {
		return len(db.State()[table])
	}

	t.Run("scope_considered_reset", func(t *testing.T) {
		db, outs := run("scope_considered_reset")
		if got := outs[1].Firings; len(got) != 1 || got[0] != "rc" {
			t.Fatalf("considered-scope window did not reset: firings %v, want [rc]", got)
		}
		if n := count(db, "s"); n != 1 {
			t.Fatalf("s has %d rows, want 1", n)
		}
	})
	t.Run("scope_triggered_restart", func(t *testing.T) {
		db, outs := run("scope_triggered_restart")
		want := []string{"r1", "r0"}
		got := outs[0].Firings
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("triggered-scope window did not restart: firings %v, want %v", got, want)
		}
		if n := count(db, "s"); n != 1 {
			t.Fatalf("s has %d rows, want 1", n)
		}
	})
	t.Run("delete_after_update_oldrow", func(t *testing.T) {
		db, outs := run("delete_after_update_oldrow")
		if got := outs[1].Firings; len(got) != 1 {
			t.Fatalf("delete-after-update firings %v, want [rd]", got)
		}
		sRows := db.State()["s"]
		if len(sRows) != 1 || !sRows[0].Row[1].Equal(value.NewString("orig")) {
			t.Fatalf("deleted transition row = %v, want the pre-update value 'orig'", sRows)
		}
		if got := outs[2].Firings; len(got) != 0 {
			t.Fatalf("insert-then-delete did not cancel: firings %v", got)
		}
	})
	t.Run("runaway_cap_boundary", func(t *testing.T) {
		_, outs := run("runaway_cap_boundary")
		if outs[0].Kind != Errored || !outs[0].Runaway {
			t.Fatalf("txn 0 outcome %+v, want runaway error", outs[0])
		}
		if len(outs[0].Firings) != 0 {
			t.Fatalf("rolled-back runaway reported firings %v", outs[0].Firings)
		}
		if outs[1].Kind != Committed {
			t.Fatalf("txn 1 outcome %+v, want committed", outs[1])
		}
	})
	t.Run("exact_cap_quiesce", func(t *testing.T) {
		_, outs := run("exact_cap_quiesce")
		if outs[0].Kind != Committed || len(outs[0].Firings) != 3 {
			t.Fatalf("outcome %+v, want committed with exactly 3 firings", outs[0])
		}
	})
	t.Run("crosskind_coercion", func(t *testing.T) {
		db, outs := run("crosskind_coercion")
		if outs[1].Kind != Committed || outs[2].Kind != Errored || outs[3].Kind != Committed {
			t.Fatalf("outcomes %+v %+v %+v, want committed/errored/committed", outs[1], outs[2], outs[3])
		}
		if n := count(db, "s"); n != 1 {
			t.Fatalf("s has %d rows, want 1 (the fractional-float copy must roll back)", n)
		}
	})
	t.Run("null_semantics", func(t *testing.T) {
		_, outs := run("null_semantics")
		if len(outs[0].Firings) != 0 {
			t.Fatalf("sum over all-NULL fired: %v", outs[0].Firings)
		}
		if len(outs[1].Firings) != 1 {
			t.Fatalf("sum over mixed NULL/5 did not fire: %v", outs[1].Firings)
		}
	})
	t.Run("priority_transitive", func(t *testing.T) {
		_, outs := run("priority_transitive")
		want := []string{"r0", "r2"}
		got := outs[0].Firings
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("transitive domination ignored: firings %v, want %v", got, want)
		}
	})
	t.Run("empty_segments", func(t *testing.T) {
		_, outs := run("empty_segments")
		if outs[0].Kind != Committed || len(outs[0].Firings) != 1 {
			t.Fatalf("outcome %+v, want committed with 1 firing", outs[0])
		}
	})
}
