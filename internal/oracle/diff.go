package oracle

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"sopr/internal/engine"
	"sopr/internal/gen"
	"sopr/internal/value"
	"sopr/internal/wal"
)

// Chooser returns a pure rule-selection function: given the ascending
// candidate names it picks one by hashing the candidate set with the salt.
// Because it depends only on its argument (and the fixed salt), handing the
// same Chooser to the engine's SelectHook and to the oracle drives both
// through identical selection sequences — the precondition for lockstep
// state comparison, since Section 4.4 leaves the tie-break unspecified and
// different picks legitimately reach different final states.
func Chooser(salt uint64) func([]string) string {
	return func(candidates []string) string {
		h := fnv.New64a()
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(salt >> (8 * i))
		}
		h.Write(buf[:])
		for _, c := range candidates {
			h.Write([]byte(c))
			h.Write([]byte{0})
		}
		return candidates[h.Sum64()%uint64(len(candidates))]
	}
}

// Divergence describes one disagreement between the engine and the oracle
// (or between two engine configurations that must agree).
type Divergence struct {
	Check string // which comparison failed
	Txn   int    // transaction index, -1 for end-of-workload checks
	Msg   string
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("%s check, txn %d: %s", d.Check, d.Txn, d.Msg)
}

func diverge(check string, txn int, format string, args ...interface{}) *Divergence {
	return &Divergence{Check: check, Txn: txn, Msg: fmt.Sprintf(format, args...)}
}

// Options configures a differential run.
type Options struct {
	Salt uint64 // selection tie-break salt; runs are deterministic per (workload, salt)

	// SkipMetamorphic drops the end-of-workload checks (index ablation,
	// dump→reload, WAL crash-replay, selection-order permutation), leaving
	// only the engine-vs-oracle lockstep comparison. The shrinker uses it:
	// a minimal repro for a lockstep divergence should not be perturbed by
	// a metamorphic check failing first.
	SkipMetamorphic bool
}

// RunDiff executes the workload through the real engine (cost-based
// planner on), a planner-off engine, and the reference oracle, all under
// the same rule-selection order, and compares the three after every
// transaction: outcome (committed / rolled back by which rule / error,
// runaway or not), firing sequence, and exact database state, handles
// included. The planner-off twin runs even under SkipMetamorphic — plan
// choice must be a pure optimization, so it is part of the lockstep core,
// not a metamorphic extra.
//
// Unless SkipMetamorphic is set it then runs the metamorphic checks:
//
//   - index ablation: an engine with NoIndex+NoHashJoin+NoPlanner (every
//     access-path and join fast path off) must track the primary engine
//     transaction by transaction (access paths must not change
//     semantics);
//   - dump→reload: loading the primary engine's dump into a fresh engine
//     must reproduce every table's contents up to handle renaming;
//   - WAL crash-replay: recovering the log (MemFS, fsync-always, unsynced
//     writes dropped) must reproduce the exact final state, handles
//     included;
//   - permutation: for workloads the generator certifies order-independent,
//     two runs under different selection salts must commit the same
//     transactions and agree on final contents up to handle renaming.
//
// It returns nil if every comparison agrees, else the first divergence.
func RunDiff(w *gen.Workload, opts Options) *Divergence {
	choose := Chooser(opts.Salt)

	// Primary engine, logging to an in-memory WAL for the crash-replay
	// check afterwards.
	mem := wal.NewMemFS()
	log, rec, err := wal.Open("diff", wal.Options{FS: mem, Policy: wal.SyncAlways})
	if err != nil {
		return diverge("setup", -1, "wal open: %v", err)
	}
	defer log.Close()
	if rec.Checkpoint != nil || len(rec.Records) != 0 {
		return diverge("setup", -1, "fresh MemFS recovered state")
	}
	eng := engine.New(engine.Config{MaxRuleTransitions: w.Cap, SelectHook: choose})
	eng.AttachWAL(log)
	if _, err := eng.Exec(w.SetupSQL()); err != nil {
		return diverge("setup", -1, "engine rejected setup: %v\n%s", err, w.SetupSQL())
	}

	// Planner-off twin: identical configuration except the cost-based
	// planner is disabled, so every query runs the naive FROM-order nested
	// loop (with the legacy two-way hash fast path).
	nop := engine.New(engine.Config{MaxRuleTransitions: w.Cap, SelectHook: choose, NoPlanner: true})
	if _, err := nop.Exec(w.SetupSQL()); err != nil {
		return diverge("setup", -1, "noplanner engine rejected setup: %v", err)
	}

	// Ablation engine: all access-path fast paths off.
	var slow *engine.Engine
	if !opts.SkipMetamorphic {
		slow = engine.New(engine.Config{MaxRuleTransitions: w.Cap, SelectHook: choose, NoIndex: true, NoHashJoin: true, NoPlanner: true})
		if _, err := slow.Exec(w.SetupSQL()); err != nil {
			return diverge("setup", -1, "ablation engine rejected setup: %v", err)
		}
	}

	odb := New(w, choose)

	for i := range w.Txns {
		engOut := engineOutcome(eng.Exec(w.TxnSQL(i)))
		oraOut := odb.RunTxn(w.Txns[i])
		if msg := outcomesDiffer(engOut, oraOut); msg != "" {
			return diverge("lockstep", i, "%s", msg)
		}
		engState, err := engineState(eng, w)
		if err != nil {
			return diverge("lockstep", i, "engine state: %v", err)
		}
		if msg := statesDiffer(engState, odb.State()); msg != "" {
			return diverge("lockstep", i, "%s", msg)
		}
		nopOut := engineOutcome(nop.Exec(w.TxnSQL(i)))
		if msg := outcomesDiffer(nopOut, oraOut); msg != "" {
			return diverge("noplanner", i, "%s", msg)
		}
		nopState, err := engineState(nop, w)
		if err != nil {
			return diverge("noplanner", i, "engine state: %v", err)
		}
		if msg := statesDiffer(engState, nopState); msg != "" {
			return diverge("noplanner", i, "%s", msg)
		}
		if slow != nil {
			slowOut := engineOutcome(slow.Exec(w.TxnSQL(i)))
			if msg := outcomesDiffer(slowOut, oraOut); msg != "" {
				return diverge("noindex", i, "%s", msg)
			}
			slowState, err := engineState(slow, w)
			if err != nil {
				return diverge("noindex", i, "engine state: %v", err)
			}
			if msg := statesDiffer(engState, slowState); msg != "" {
				return diverge("noindex", i, "%s", msg)
			}
		}
	}
	if opts.SkipMetamorphic {
		return nil
	}
	final, err := engineState(eng, w)
	if err != nil {
		return diverge("final", -1, "engine state: %v", err)
	}

	// Dump → reload: contents must survive serialization, handles may not.
	var dump bytes.Buffer
	if err := eng.Dump(&dump); err != nil {
		return diverge("dumpreload", -1, "dump: %v", err)
	}
	fresh := engine.New(engine.Config{MaxRuleTransitions: w.Cap, SelectHook: choose})
	if err := fresh.Load(bytes.NewReader(dump.Bytes())); err != nil {
		return diverge("dumpreload", -1, "reload: %v\n%s", err, dump.String())
	}
	freshState, err := engineState(fresh, w)
	if err != nil {
		return diverge("dumpreload", -1, "engine state: %v", err)
	}
	if msg := valuesDiffer(final, freshState); msg != "" {
		return diverge("dumpreload", -1, "%s", msg)
	}

	// WAL crash-replay: drop unsynced bytes, recover into a fresh engine,
	// demand the exact state back. Commit records are appended without an
	// inline fsync (group commit defers durability to the owner's
	// WaitDurable); this harness drives the engine directly, so the Sync
	// here stands in for that wait — after it, every commit above counts
	// as acknowledged and must survive the crash.
	if err := log.Sync(); err != nil {
		return diverge("walreplay", -1, "sync: %v", err)
	}
	mem.DropUnsynced()
	log2, rec2, err := wal.Open("diff", wal.Options{FS: mem, Policy: wal.SyncAlways})
	if err != nil {
		return diverge("walreplay", -1, "reopen: %v", err)
	}
	defer log2.Close()
	recovered := engine.New(engine.Config{MaxRuleTransitions: w.Cap, SelectHook: choose})
	if rec2.Checkpoint != nil {
		if err := recovered.LoadCheckpoint(rec2.Checkpoint); err != nil {
			return diverge("walreplay", -1, "checkpoint: %v", err)
		}
	}
	for _, r := range rec2.Records {
		if err := recovered.ReplayRecord(r); err != nil {
			return diverge("walreplay", -1, "replay: %v", err)
		}
	}
	recState, err := engineState(recovered, w)
	if err != nil {
		return diverge("walreplay", -1, "engine state: %v", err)
	}
	if msg := statesDiffer(final, recState); msg != "" {
		return diverge("walreplay", -1, "%s", msg)
	}

	// Permutation: certified order-independent workloads must not care
	// which legal selection order the engine uses.
	if w.OrderIndependent {
		for _, salt := range []uint64{opts.Salt + 1, opts.Salt ^ 0x9e3779b97f4a7c15} {
			alt := engine.New(engine.Config{MaxRuleTransitions: w.Cap, SelectHook: Chooser(salt)})
			if _, err := alt.Exec(w.SetupSQL()); err != nil {
				return diverge("permutation", -1, "setup: %v", err)
			}
			for i := range w.Txns {
				out := engineOutcome(alt.Exec(w.TxnSQL(i)))
				if out.Kind != Committed {
					return diverge("permutation", i, "salt %d: order-independent workload did not commit: %s", salt, out)
				}
			}
			altState, err := engineState(alt, w)
			if err != nil {
				return diverge("permutation", -1, "engine state: %v", err)
			}
			if msg := valuesDiffer(final, altState); msg != "" {
				return diverge("permutation", -1, "salt %d: %s", salt, msg)
			}
		}
	}
	return nil
}

// Minimize shrinks a diverging workload to a smaller one that still
// diverges, spending at most budget differential runs. Metamorphic checks
// stay enabled only if the original divergence came from one — shrinking a
// lockstep bug must not wander off to a different check's failure.
func Minimize(w *gen.Workload, opts Options, budget int) *gen.Workload {
	orig := RunDiff(w, opts)
	if orig == nil {
		return w
	}
	lockstepOnly := orig.Check == "lockstep" || orig.Check == "noplanner" || orig.Check == "setup"
	shrinkOpts := opts
	shrinkOpts.SkipMetamorphic = lockstepOnly
	return gen.Shrink(w, func(c *gen.Workload) bool {
		d := RunDiff(c, shrinkOpts)
		return d != nil && d.Check == orig.Check
	}, budget)
}

// engineOutcome maps an engine transaction result onto the oracle's
// outcome domain.
func engineOutcome(res *engine.TxnResult, err error) Outcome {
	if err != nil {
		return Outcome{Kind: Errored, Runaway: errors.Is(err, engine.ErrRunaway), Err: err.Error()}
	}
	out := Outcome{Kind: Committed}
	if res.RolledBack {
		out = Outcome{Kind: RolledBack, Rule: res.RollbackRule}
	}
	for _, f := range res.Firings {
		out.Firings = append(out.Firings, f.Rule)
	}
	return out
}

func outcomesDiffer(engOut, oraOut Outcome) string {
	if engOut.Kind != oraOut.Kind || engOut.Rule != oraOut.Rule || engOut.Runaway != oraOut.Runaway {
		return fmt.Sprintf("outcome: engine %s, oracle %s", engOut, oraOut)
	}
	// The firing sequence must match too (the engine drops it on an
	// errored transaction, so only compare it when one was reported).
	if engOut.Kind != Errored {
		if len(engOut.Firings) != len(oraOut.Firings) {
			return fmt.Sprintf("firings: engine %v, oracle %v", engOut.Firings, oraOut.Firings)
		}
		for i := range engOut.Firings {
			if engOut.Firings[i] != oraOut.Firings[i] {
				return fmt.Sprintf("firings: engine %v, oracle %v", engOut.Firings, oraOut.Firings)
			}
		}
	}
	return ""
}

// engineState extracts the engine's database state in canonical form.
func engineState(eng *engine.Engine, w *gen.Workload) (State, error) {
	out := State{}
	for i := range w.Tables {
		name := w.Tables[i].Name
		tuples, err := eng.Store().Tuples(name)
		if err != nil {
			return nil, err
		}
		rows := make([]TupleState, len(tuples))
		for j, t := range tuples {
			rows[j] = TupleState{Handle: uint64(t.Handle), Row: t.Values}
		}
		out[name] = rows
	}
	return out, nil
}

// renderRow is kind-exact: INTEGER 3 and FLOAT 3.0 render differently, so
// a coercion bug on either side cannot hide behind numeric equality.
func renderRow(row []value.Value) string {
	parts := make([]string, len(row))
	for i, v := range row {
		if v.IsNull() {
			parts[i] = "NULL"
		} else {
			parts[i] = v.Kind().String() + ":" + v.String()
		}
	}
	return strings.Join(parts, ", ")
}

// statesDiffer compares two states exactly — same tables, same handles,
// same values — and describes the first difference.
func statesDiffer(a, b State) string {
	names := make([]string, 0, len(a))
	for n := range a {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ra, rb := a[n], b[n]
		if len(ra) != len(rb) {
			return fmt.Sprintf("table %s: %d rows vs %d rows", n, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i].Handle != rb[i].Handle {
				return fmt.Sprintf("table %s row %d: handle %d vs %d", n, i, ra[i].Handle, rb[i].Handle)
			}
			sa, sb := renderRow(ra[i].Row), renderRow(rb[i].Row)
			if sa != sb {
				return fmt.Sprintf("table %s handle %d: (%s) vs (%s)", n, ra[i].Handle, sa, sb)
			}
		}
	}
	return ""
}

// valuesDiffer compares two states as per-table multisets of rows,
// ignoring handles — for checks that legitimately renumber tuples.
func valuesDiffer(a, b State) string {
	names := make([]string, 0, len(a))
	for n := range a {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ra := sortedRows(a[n])
		rb := sortedRows(b[n])
		if len(ra) != len(rb) {
			return fmt.Sprintf("table %s: %d rows vs %d rows", n, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				return fmt.Sprintf("table %s: row multisets differ at sorted position %d: (%s) vs (%s)", n, i, ra[i], rb[i])
			}
		}
	}
	return ""
}

func sortedRows(rows []TupleState) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = renderRow(r.Row)
	}
	sort.Strings(out)
	return out
}
