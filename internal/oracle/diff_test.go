package oracle

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sopr/internal/gen"
)

// -diffiters sets how many generated workloads the differential property
// test runs. CI uses 200 (the acceptance floor); crank it up locally for a
// longer hunt: go test ./internal/oracle -diffiters=5000
var diffIters = flag.Int("diffiters", 200, "number of generated workloads for TestDifferentialHarness")

// reportDivergence shrinks a diverging workload, writes the minimal repro
// where a developer can move it into testdata/corpus/, and fails the test.
func reportDivergence(t *testing.T, w *gen.Workload, opts Options, d *Divergence) {
	t.Helper()
	min := Minimize(w, opts, 400)
	minD := RunDiff(min, opts)
	data, err := min.Marshal()
	if err != nil {
		t.Fatalf("divergence (unmarshalable minimum): %v", d)
	}
	dir := filepath.Join("testdata", "failures")
	_ = os.MkdirAll(dir, 0o755)
	path := filepath.Join(dir, fmt.Sprintf("seed-%d.json", w.Seed))
	_ = os.WriteFile(path, data, 0o644)
	t.Fatalf("divergence: %v\nminimized (%v) written to %s:\n%s", d, minD, path, data)
}

func TestDifferentialHarness(t *testing.T) {
	for seed := int64(0); seed < int64(*diffIters); seed++ {
		w := gen.Generate(seed)
		opts := Options{Salt: uint64(seed)}
		if d := RunDiff(w, opts); d != nil {
			reportDivergence(t, w, opts, d)
		}
	}
}

// TestCorpusReplays replays every minimized repro kept from past hunts.
// Each one is a workload that once exposed a real engine/oracle divergence;
// after the fix it must pass, and it must do so deterministically.
func TestCorpusReplays(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Skip("no corpus entries")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			w, err := gen.Unmarshal(data)
			if err != nil {
				t.Fatalf("corpus entry does not parse: %v", err)
			}
			if err := w.Validate(); err != nil {
				t.Fatalf("corpus entry invalid: %v", err)
			}
			opts := Options{Salt: uint64(w.Seed)}
			if d := RunDiff(w, opts); d != nil {
				t.Fatalf("regressed: %v", d)
			}
			// Determinism: a second run must agree with the first.
			if d := RunDiff(w, opts); d != nil {
				t.Fatalf("non-deterministic replay: second run diverged: %v", d)
			}
		})
	}
}

// TestHarnessCoverage guards against the generator drifting into
// vacuousness: across a fixed seed range the workloads must actually fire
// rules, roll transactions back, trip the runaway guard, and include
// order-independent instances — otherwise the differential comparisons
// stop proving anything about rule processing.
func TestHarnessCoverage(t *testing.T) {
	var firings, rollbacks, runaways, committed, joinConds int
	for seed := int64(0); seed < 300; seed++ {
		w := gen.Generate(seed)
		for _, r := range w.Rules {
			if r.Cond != nil && len(r.Cond.Srcs) > 0 {
				joinConds++
			}
		}
		odb := New(w, Chooser(uint64(seed)))
		for _, txn := range w.Txns {
			out := odb.RunTxn(txn)
			firings += len(out.Firings)
			switch {
			case out.Kind == RolledBack:
				rollbacks++
			case out.Kind == Errored && out.Runaway:
				runaways++
			case out.Kind == Committed:
				committed++
			}
		}
	}
	t.Logf("coverage over 300 seeds: %d firings, %d commits, %d rollbacks, %d runaways, %d join conditions",
		firings, committed, rollbacks, runaways, joinConds)
	if joinConds < 20 {
		t.Errorf("only %d multi-source join conditions across 300 seeds; the planner is barely exercised in rule conditions", joinConds)
	}
	if firings < 100 {
		t.Errorf("only %d rule firings across 300 seeds; rule processing is barely exercised", firings)
	}
	if rollbacks == 0 {
		t.Error("no rollback-action transactions across 300 seeds")
	}
	if runaways == 0 {
		t.Error("no runaway-capped transactions across 300 seeds; the footnote 7 guard is unexercised")
	}
	if committed < 100 {
		t.Errorf("only %d committed transactions across 300 seeds", committed)
	}
}

// FuzzDifferential lets the Go fuzzer drive the generator seed (and the
// selection salt independently, so the fuzzer can hunt order-sensitive
// engine bugs that one canonical order per seed would miss).
func FuzzDifferential(f *testing.F) {
	f.Add(int64(1), uint64(1))
	f.Add(int64(42), uint64(7))
	f.Add(int64(1337), uint64(0))
	f.Fuzz(func(t *testing.T, seed int64, salt uint64) {
		w := gen.Generate(seed)
		opts := Options{Salt: salt, SkipMetamorphic: true}
		if d := RunDiff(w, opts); d != nil {
			min := Minimize(w, opts, 200)
			data, _ := min.Marshal()
			t.Fatalf("divergence: %v\nminimized:\n%s", d, data)
		}
	})
}
