// Package oracle is a deliberately slow, obviously-correct reference
// interpreter of the paper's Sections 2–4, used to differentially test the
// real engine. It interprets gen.Workload models directly — it shares no
// parser, planner, executor, access-path, or rule-engine code with the
// system under test. The only shared substrate is internal/value (the
// scalar domain: comparison, arithmetic, coercion), deliberately, so both
// sides agree on what the values themselves mean.
//
// What it re-implements, straight from the paper:
//
//   - transition effects and their composition, from Definition 2.1's four
//     cases, with old-value maintenance as in Figure 1's trans-info;
//   - the Figure 1 rule-processing loop: init-trans-info on the first
//     external transition, modify-trans-info for every subsequent
//     transition, per-rule net-transition triggering, consideration,
//     rollback actions, and the footnote 7 runaway guard;
//   - the footnote 8 scope alternatives (since considered / since
//     triggered) and Section 5.3 PROCESS RULES triggering points;
//   - Section 4.4 priority selection with an injectable tie-break, so a
//     differential run can drive engine and oracle through the same
//     selection sequence.
//
// Evaluation is naive full scan everywhere: no indexes, no sargability
// analysis, no hash joins. One representation choice is load-bearing: the
// paper's system tuple handles are assigned in row-arrival order, and an
// insert-select's row order follows the physical order of its source
// table, so the oracle keeps tuples in a heap with the same
// swap-with-last deletion discipline the storage engine uses — otherwise
// identical executions would assign the same values to different handles
// and every comparison after the first delete would be noise.
package oracle

import (
	"fmt"
	"sort"

	"sopr/internal/gen"
	"sopr/internal/value"
)

// ---------------------------------------------------------------------------
// Transition effects (Definition 2.1 with Figure 1's value maintenance)
// ---------------------------------------------------------------------------

type delEnt struct {
	table string
	old   []value.Value
}

type updEnt struct {
	table string
	old   []value.Value
	cols  map[int]bool
}

// eff is a composite transition effect [I, D, U].
type eff struct {
	ins map[uint64]string
	del map[uint64]delEnt
	upd map[uint64]updEnt
}

func newEff() *eff {
	return &eff{ins: map[uint64]string{}, del: map[uint64]delEnt{}, upd: map[uint64]updEnt{}}
}

func (e *eff) clone() *eff {
	c := newEff()
	for h, t := range e.ins {
		c.ins[h] = t
	}
	for h, d := range e.del {
		c.del[h] = d
	}
	for h, u := range e.upd {
		cols := make(map[int]bool, len(u.cols))
		for i := range u.cols {
			cols[i] = true
		}
		c.upd[h] = updEnt{table: u.table, old: u.old, cols: cols}
	}
	return c
}

// addOp folds one operation's affected set into the effect — composition
// with a single-operation transition, per Definition 2.1:
//
//	insert then delete  → nothing (handle leaves I, never enters D)
//	update then delete  → delete with the pre-transition value
//	insert then update  → still an insert (current value read live)
//	update then update  → one update, columns unioned, first old value
func (e *eff) addOp(res *opResult) {
	for _, h := range res.inserted {
		e.ins[h] = res.table
	}
	for _, d := range res.deleted {
		if _, ok := e.ins[d.handle]; ok {
			delete(e.ins, d.handle)
			continue
		}
		old := d.old
		if u, ok := e.upd[d.handle]; ok {
			old = u.old
			delete(e.upd, d.handle)
		}
		e.del[d.handle] = delEnt{table: res.table, old: old}
	}
	for _, u := range res.updated {
		if _, ok := e.ins[u.handle]; ok {
			continue
		}
		entry, ok := e.upd[u.handle]
		if !ok {
			entry = updEnt{table: res.table, old: u.old, cols: map[int]bool{}}
		}
		for _, c := range u.cols {
			entry.cols[c] = true
		}
		e.upd[u.handle] = entry
	}
}

// apply composes a subsequent transition into this one (Definition 2.1):
//
//	I = (I1 ∪ I2) − D2
//	D = (D1 ∪ D2) − I1
//	U = (U1 ∪ U2) − (D2 ∪ I1)
func (e *eff) apply(next *eff) {
	for h, t := range next.ins {
		e.ins[h] = t
	}
	for h, d := range next.del {
		if _, ok := e.ins[h]; ok {
			delete(e.ins, h) // tuple born and dead within the composite: nothing
			continue
		}
		old := d.old
		if u, ok := e.upd[h]; ok {
			old = u.old
			delete(e.upd, h)
		}
		e.del[h] = delEnt{table: d.table, old: old}
	}
	for h, nu := range next.upd {
		if _, ok := e.ins[h]; ok {
			continue
		}
		entry, ok := e.upd[h]
		if !ok {
			entry = updEnt{table: nu.table, old: nu.old, cols: map[int]bool{}}
		}
		for c := range nu.cols {
			entry.cols[c] = true
		}
		e.upd[h] = entry
	}
}

// satisfies reports whether the effect satisfies any of the rule's basic
// transition predicates (the Section 3 triggering test).
func (db *DB) satisfies(e *eff, preds []gen.Pred) bool {
	for _, p := range preds {
		switch p.Op {
		case "inserted":
			for _, t := range e.ins {
				if t == p.Table {
					return true
				}
			}
		case "deleted":
			for _, d := range e.del {
				if d.table == p.Table {
					return true
				}
			}
		case "updated":
			colIdx := -1
			if p.Column != "" {
				colIdx = db.w.Table(p.Table).ColIndex(p.Column)
			}
			for _, u := range e.upd {
				if u.table != p.Table {
					continue
				}
				if colIdx < 0 || u.cols[colIdx] {
					return true
				}
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Storage: heap tables with system tuple handles and an undo log
// ---------------------------------------------------------------------------

type tuple struct {
	handle uint64
	row    []value.Value
}

type table struct {
	def  *gen.Table
	rows []*tuple
	pos  map[uint64]int
}

func (t *table) insertTuple(tp *tuple) {
	t.pos[tp.handle] = len(t.rows)
	t.rows = append(t.rows, tp)
}

// removeHandle deletes by swap-with-last — the same physical discipline as
// the storage engine, so insert-select row order (and hence handle
// assignment) matches.
func (t *table) removeHandle(h uint64) *tuple {
	p := t.pos[h]
	tp := t.rows[p]
	last := len(t.rows) - 1
	if p != last {
		t.rows[p] = t.rows[last]
		t.pos[t.rows[p].handle] = p
	}
	t.rows = t.rows[:last]
	delete(t.pos, h)
	return tp
}

const (
	undoInsert = iota
	undoDelete
	undoUpdate
)

type undoRec struct {
	kind   int
	handle uint64
	table  string
	old    []value.Value
}

// DB is the oracle's database: tables, rules, and the Figure 1 machinery.
type DB struct {
	w      *gen.Workload
	tables map[string]*table
	next   uint64
	undo   []undoRec

	rules  []*orule
	higher map[string][]string // priority edges: before → afters
	choose func([]string) string
}

type orule struct {
	def       *gen.Rule
	transInfo *eff
}

// New builds an oracle database for the workload's schema and rules.
// choose injects the rule-selection order: it receives the maximal (by
// priority) triggered rule names in ascending order and must return one of
// them. It must be the same pure function the engine's SelectHook uses.
func New(w *gen.Workload, choose func([]string) string) *DB {
	db := &DB{
		w:      w,
		tables: map[string]*table{},
		higher: map[string][]string{},
		choose: choose,
	}
	for i := range w.Tables {
		t := &w.Tables[i]
		db.tables[t.Name] = &table{def: t, pos: map[uint64]int{}}
	}
	for i := range w.Rules {
		db.rules = append(db.rules, &orule{def: &w.Rules[i]})
	}
	for _, p := range w.Priorities {
		db.higher[p.Before] = append(db.higher[p.Before], p.After)
	}
	return db
}

// isHigher reports a strictly-higher priority via the transitive closure
// of declared edges.
func (db *DB) isHigher(a, b string) bool {
	if a == b {
		return false
	}
	seen := map[string]bool{a: true}
	stack := []string{a}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range db.higher[n] {
			if m == b {
				return true
			}
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Operations (Section 2.1), naive full-scan evaluation
// ---------------------------------------------------------------------------

type delTuple struct {
	handle uint64
	old    []value.Value
}

type updTuple struct {
	handle uint64
	old    []value.Value
	cols   []int
}

type opResult struct {
	table    string
	inserted []uint64
	deleted  []delTuple
	updated  []updTuple
}

// coerce stores v into a column of the given kind (NULL passes through).
func coerce(v value.Value, kind value.Kind) (value.Value, error) {
	if v.IsNull() {
		return v, nil
	}
	return value.Coerce(v, kind)
}

func (db *DB) insertRow(t *table, row []value.Value) (uint64, error) {
	coerced := make([]value.Value, len(row))
	for i, v := range row {
		cv, err := coerce(v, t.def.Cols[i].ValueKind())
		if err != nil {
			return 0, fmt.Errorf("oracle: column %s.%s: %v", t.def.Name, t.def.Cols[i].Name, err)
		}
		coerced[i] = cv
	}
	db.next++
	h := db.next
	t.insertTuple(&tuple{handle: h, row: coerced})
	db.undo = append(db.undo, undoRec{kind: undoInsert, handle: h, table: t.def.Name})
	return h, nil
}

// srcRows returns the full-width rows of a FROM source: a base table in
// physical (heap) order, or a transition table in ascending handle order
// as Section 3 materializes them from the rule's trans-info.
func (db *DB) srcRows(src gen.Source, ti *eff) ([][]value.Value, error) {
	if src.Trans == "" {
		t := db.tables[src.Table]
		out := make([][]value.Value, len(t.rows))
		for i, tp := range t.rows {
			out[i] = tp.row
		}
		return out, nil
	}
	if ti == nil {
		return nil, nil
	}
	colIdx := -1
	if src.Column != "" {
		colIdx = db.w.Table(src.Table).ColIndex(src.Column)
	}
	var handles []uint64
	switch src.Trans {
	case "inserted":
		for h, t := range ti.ins {
			if t == src.Table {
				handles = append(handles, h)
			}
		}
	case "deleted":
		for h, d := range ti.del {
			if d.table == src.Table {
				handles = append(handles, h)
			}
		}
	case "old", "new":
		for h, u := range ti.upd {
			if u.table != src.Table {
				continue
			}
			if colIdx >= 0 && !u.cols[colIdx] {
				continue
			}
			handles = append(handles, h)
		}
	}
	sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
	out := make([][]value.Value, 0, len(handles))
	for _, h := range handles {
		switch src.Trans {
		case "inserted", "new":
			t := db.tables[src.Table]
			p, ok := t.pos[h]
			if !ok {
				return nil, fmt.Errorf("oracle: transition tuple %d vanished", h)
			}
			out = append(out, t.rows[p].row)
		case "deleted":
			out = append(out, ti.del[h].old)
		case "old":
			out = append(out, ti.upd[h].old)
		}
	}
	return out, nil
}

// subRows evaluates a one-source subquery: source rows filtered by the
// WHERE predicate (kept only on True — three-valued logic).
func (db *DB) subRows(sub *gen.SubQuery, ti *eff) ([][]value.Value, error) {
	rows, err := db.srcRows(sub.Src, ti)
	if err != nil {
		return nil, err
	}
	if sub.Where == nil {
		return rows, nil
	}
	t := db.w.Table(sub.Src.Table)
	var out [][]value.Value
	for _, row := range rows {
		tb, err := db.evalWhere(sub.Where, t, row, ti)
		if err != nil {
			return nil, err
		}
		if tb.IsTrue() {
			out = append(out, row)
		}
	}
	return out, nil
}

// evalWhere evaluates a predicate tree against one row with SQL
// three-valued logic. Atoms reference the row's own table columns (the
// generator emits no correlated subqueries).
func (db *DB) evalWhere(wh *gen.Where, t *gen.Table, row []value.Value, ti *eff) (value.Tribool, error) {
	switch {
	case wh == nil:
		return value.True, nil
	case wh.Atom != nil:
		return db.evalAtom(wh.Atom, t, row, ti)
	case wh.And != nil:
		out := value.True
		for _, c := range wh.And {
			tb, err := db.evalWhere(c, t, row, ti)
			if err != nil {
				return value.Unknown, err
			}
			out = out.And(tb)
			if out == value.False {
				break // short-circuit, as the evaluator does
			}
		}
		return out, nil
	case wh.Or != nil:
		out := value.False
		for _, c := range wh.Or {
			tb, err := db.evalWhere(c, t, row, ti)
			if err != nil {
				return value.Unknown, err
			}
			out = out.Or(tb)
			if out == value.True {
				break
			}
		}
		return out, nil
	default:
		tb, err := db.evalWhere(wh.Not, t, row, ti)
		if err != nil {
			return value.Unknown, err
		}
		return tb.Not(), nil
	}
}

// cmpTri applies a comparison operator with NULL → Unknown.
func cmpTri(a, b value.Value, op string) (value.Tribool, error) {
	if a.IsNull() || b.IsNull() {
		return value.Unknown, nil
	}
	cmp, ok := value.Compare(a, b)
	if !ok {
		return value.Unknown, fmt.Errorf("oracle: cannot compare %s with %s", a.Kind(), b.Kind())
	}
	switch op {
	case "=":
		return value.FromBool(cmp == 0), nil
	case "<>":
		return value.FromBool(cmp != 0), nil
	case "<":
		return value.FromBool(cmp < 0), nil
	case "<=":
		return value.FromBool(cmp <= 0), nil
	case ">":
		return value.FromBool(cmp > 0), nil
	case ">=":
		return value.FromBool(cmp >= 0), nil
	default:
		return value.Unknown, fmt.Errorf("oracle: unknown operator %q", op)
	}
}

func (db *DB) evalAtom(a *gen.Atom, t *gen.Table, row []value.Value, ti *eff) (value.Tribool, error) {
	v := row[t.ColIndex(a.Col)]
	switch a.Op {
	case "isnull":
		return value.FromBool(v.IsNull()), nil
	case "notnull":
		return value.FromBool(!v.IsNull()), nil
	case "in":
		rows, err := db.subRows(a.Sub, ti)
		if err != nil {
			return value.Unknown, err
		}
		ci := db.w.Table(a.Sub.Src.Table).ColIndex(a.Sub.Col)
		if v.IsNull() {
			if len(rows) > 0 {
				return value.Unknown, nil
			}
			return value.False, nil
		}
		sawNull := false
		for _, r := range rows {
			m := r[ci]
			if m.IsNull() {
				sawNull = true
				continue
			}
			if cmp, ok := value.Compare(v, m); ok && cmp == 0 {
				return value.True, nil
			}
		}
		if sawNull {
			return value.Unknown, nil
		}
		return value.False, nil
	default:
		return cmpTri(v, a.Lit.Value(), a.Op)
	}
}

// evalJoin evaluates a multi-source join condition by brute force: a
// nested loop over the cross product of the sources in declared order,
// stopping at the first combination where every ON conjunct and atom is
// True. No join ordering, no hashing — the planner in the system under
// test must be observationally equivalent to this.
func (db *DB) evalJoin(c *gen.Cond, ti *eff) (bool, error) {
	rowsets := make([][][]value.Value, len(c.Srcs))
	defs := make([]*gen.Table, len(c.Srcs))
	for i, s := range c.Srcs {
		rows, err := db.srcRows(s.Src, ti)
		if err != nil {
			return false, err
		}
		rowsets[i] = rows
		defs[i] = db.w.Table(s.Src.Table)
	}
	combo := make([][]value.Value, len(c.Srcs))
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		if i == len(c.Srcs) {
			for _, on := range c.On {
				l := combo[on.LSrc][defs[on.LSrc].ColIndex(on.LCol)]
				r := combo[on.RSrc][defs[on.RSrc].ColIndex(on.RCol)]
				tb, err := cmpTri(l, r, "=")
				if err != nil || !tb.IsTrue() {
					return false, err
				}
			}
			for ai := range c.Atoms {
				a := &c.Atoms[ai]
				v := combo[a.Src][defs[a.Src].ColIndex(a.Col)]
				var tb value.Tribool
				var err error
				switch a.Op {
				case "isnull":
					tb = value.FromBool(v.IsNull())
				case "notnull":
					tb = value.FromBool(!v.IsNull())
				default:
					tb, err = cmpTri(v, a.Lit.Value(), a.Op)
				}
				if err != nil || !tb.IsTrue() {
					return false, err
				}
			}
			return true, nil
		}
		for _, row := range rowsets[i] {
			combo[i] = row
			ok, err := rec(i + 1)
			if err != nil || ok {
				return ok, err
			}
		}
		return false, nil
	}
	return rec(0)
}

// evalCond evaluates a rule condition (IF TRUE when nil); only a True
// result lets the rule fire.
func (db *DB) evalCond(c *gen.Cond, ti *eff) (bool, error) {
	if c == nil {
		return true, nil
	}
	if c.Kind == "join" || c.Kind == "notjoin" {
		match, err := db.evalJoin(c, ti)
		if err != nil {
			return false, err
		}
		return match == (c.Kind == "join"), nil
	}
	rows, err := db.subRows(&c.Sub, ti)
	if err != nil {
		return false, err
	}
	switch c.Kind {
	case "exists":
		return len(rows) > 0, nil
	case "notexists":
		return len(rows) == 0, nil
	}
	// Aggregate compare: (select agg(...) from ...) op lit.
	var agg value.Value
	if c.Agg == "count" && c.Sub.Col == "" {
		agg = value.NewInt(int64(len(rows)))
	} else {
		ci := db.w.Table(c.Sub.Src.Table).ColIndex(c.Sub.Col)
		var vals []value.Value
		for _, r := range rows {
			if !r[ci].IsNull() {
				vals = append(vals, r[ci])
			}
		}
		switch c.Agg {
		case "count":
			agg = value.NewInt(int64(len(vals)))
		case "sum":
			if len(vals) == 0 {
				agg = value.Null
				break
			}
			sumI := int64(0)
			sumF := 0.0
			allInt := true
			for _, v := range vals {
				if v.Kind() == value.KindInt {
					sumI += v.Int()
					sumF += float64(v.Int())
				} else {
					allInt = false
					sumF += v.Float()
				}
			}
			if allInt {
				agg = value.NewInt(sumI)
			} else {
				agg = value.NewFloat(sumF)
			}
		case "min", "max":
			if len(vals) == 0 {
				agg = value.Null
				break
			}
			best := vals[0]
			for _, v := range vals[1:] {
				cmp, ok := value.Compare(v, best)
				if !ok {
					return false, fmt.Errorf("oracle: %s over incomparable values", c.Agg)
				}
				if (c.Agg == "min" && cmp < 0) || (c.Agg == "max" && cmp > 0) {
					best = v
				}
			}
			agg = best
		default:
			return false, fmt.Errorf("oracle: unknown aggregate %q", c.Agg)
		}
	}
	tb, err := cmpTri(agg, c.Lit.Value(), c.Op)
	if err != nil {
		return false, err
	}
	return tb.IsTrue(), nil
}

// matchRows returns the tuples of the statement's target satisfying the
// WHERE predicate, in physical (heap) order — a full scan with the whole
// predicate applied to every row.
func (db *DB) matchRows(t *table, wh *gen.Where, ti *eff) ([]*tuple, error) {
	var out []*tuple
	for _, tp := range t.rows {
		tb, err := db.evalWhere(wh, t.def, tp.row, ti)
		if err != nil {
			return nil, err
		}
		if tb.IsTrue() {
			out = append(out, tp)
		}
	}
	return out, nil
}

// execStmt executes one operation and returns its affected set.
func (db *DB) execStmt(s *gen.Stmt, ti *eff) (*opResult, error) {
	t := db.tables[s.Table]
	res := &opResult{table: s.Table}
	switch s.Kind {
	case "insert":
		// All rows are materialized before the first insert (the engine
		// gathers, then inserts), though for literal rows it cannot matter.
		for _, litRow := range s.Rows {
			row := make([]value.Value, len(litRow))
			for i, l := range litRow {
				row[i] = l.Value()
			}
			h, err := db.insertRow(t, row)
			if err != nil {
				return nil, err
			}
			res.inserted = append(res.inserted, h)
		}
	case "inssel":
		// Gather source rows first so an insert-select reading its own
		// target sees the pre-insert state.
		srcT := db.w.Table(s.Src.Table)
		rows, err := db.srcRows(*s.Src, ti)
		if err != nil {
			return nil, err
		}
		var toInsert [][]value.Value
		for _, row := range rows {
			if s.Where != nil {
				tb, err := db.evalWhere(s.Where, srcT, row, ti)
				if err != nil {
					return nil, err
				}
				if !tb.IsTrue() {
					continue
				}
			}
			proj := make([]value.Value, len(s.Proj))
			for i, p := range s.Proj {
				if p.Col != "" {
					proj[i] = row[srcT.ColIndex(p.Col)]
				} else {
					proj[i] = p.Lit.Value()
				}
			}
			toInsert = append(toInsert, proj)
		}
		for _, row := range toInsert {
			h, err := db.insertRow(t, row)
			if err != nil {
				return nil, err
			}
			res.inserted = append(res.inserted, h)
		}
	case "delete":
		matched, err := db.matchRows(t, s.Where, ti)
		if err != nil {
			return nil, err
		}
		for _, tp := range matched {
			t.removeHandle(tp.handle)
			db.undo = append(db.undo, undoRec{kind: undoDelete, handle: tp.handle, table: s.Table, old: tp.row})
			res.deleted = append(res.deleted, delTuple{handle: tp.handle, old: tp.row})
		}
	case "update":
		matched, err := db.matchRows(t, s.Where, ti)
		if err != nil {
			return nil, err
		}
		colIdx := make([]int, len(s.Set))
		for i, a := range s.Set {
			colIdx[i] = t.def.ColIndex(a.Col)
		}
		// Set-oriented semantics: evaluate every assignment against the
		// pre-update state before applying any change.
		type plan struct {
			tp   *tuple
			next []value.Value
		}
		var plans []plan
		for _, tp := range matched {
			next := make([]value.Value, len(tp.row))
			copy(next, tp.row)
			for i, a := range s.Set {
				var v value.Value
				if a.From != "" {
					v = tp.row[t.def.ColIndex(a.From)]
					if a.ArithOp != "" {
						op := value.OpAdd
						if a.ArithOp == "-" {
							op = value.OpSub
						}
						av, err := value.Arith(op, v, a.Lit.Value())
						if err != nil {
							return nil, err
						}
						v = av
					}
				} else {
					v = a.Lit.Value()
				}
				cv, err := coerce(v, t.def.Cols[colIdx[i]].ValueKind())
				if err != nil {
					return nil, fmt.Errorf("oracle: column %s.%s: %v", s.Table, a.Col, err)
				}
				next[colIdx[i]] = cv
			}
			plans = append(plans, plan{tp: tp, next: next})
		}
		cols := append([]int(nil), colIdx...)
		sort.Ints(cols)
		for _, p := range plans {
			old := p.tp.row
			p.tp.row = p.next
			db.undo = append(db.undo, undoRec{kind: undoUpdate, handle: p.tp.handle, table: s.Table, old: old})
			res.updated = append(res.updated, updTuple{handle: p.tp.handle, old: old, cols: cols})
		}
	default:
		return nil, fmt.Errorf("oracle: unexpected statement kind %q", s.Kind)
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Transactions and the Figure 1 loop
// ---------------------------------------------------------------------------

// OutcomeKind classifies how a transaction ended.
type OutcomeKind int

// Transaction outcomes.
const (
	Committed OutcomeKind = iota
	RolledBack
	Errored
)

// Outcome is the observable result of one transaction.
type Outcome struct {
	Kind    OutcomeKind
	Rule    string   // the rollback rule, for RolledBack
	Runaway bool     // the footnote 7 guard tripped, for Errored
	Err     string   // oracle-side diagnostic, not compared against the engine
	Firings []string // rule names in action-execution order (a rollback is not a firing)
}

func (o Outcome) String() string {
	switch o.Kind {
	case Committed:
		return "committed"
	case RolledBack:
		return "rolled-back(" + o.Rule + ")"
	default:
		if o.Runaway {
			return "error(runaway)"
		}
		return "error: " + o.Err
	}
}

// rollback undoes the open transaction in reverse order. Handles consumed
// by the transaction are not reused — the counter stays where it is.
func (db *DB) rollback() {
	for i := len(db.undo) - 1; i >= 0; i-- {
		rec := db.undo[i]
		t := db.tables[rec.table]
		switch rec.kind {
		case undoInsert:
			t.removeHandle(rec.handle)
		case undoDelete:
			t.insertTuple(&tuple{handle: rec.handle, row: rec.old})
		case undoUpdate:
			t.rows[t.pos[rec.handle]].row = rec.old
		}
	}
	db.undo = db.undo[:0]
}

// RunTxn executes one operation block as a transaction: external segments
// split at PROCESS RULES triggering points, rule processing after each
// segment, commit or rollback at the end (Figure 1).
func (db *DB) RunTxn(stmts []gen.Stmt) Outcome {
	db.undo = db.undo[:0]
	clear := func() {
		for _, r := range db.rules {
			r.transInfo = nil
		}
	}
	fail := func(runaway bool, err error) Outcome {
		db.rollback()
		clear()
		return Outcome{Kind: Errored, Runaway: runaway, Err: err.Error()}
	}

	// Split at triggering points (Section 5.3); a trailing segment always
	// exists, so rules run before commit even with no trailing operations.
	var segments [][]gen.Stmt
	var cur []gen.Stmt
	for i := range stmts {
		if stmts[i].Kind == "process" {
			segments = append(segments, cur)
			cur = nil
			continue
		}
		cur = append(cur, stmts[i])
	}
	segments = append(segments, cur)

	first := true
	transitions := 0
	var firings []string
	for _, seg := range segments {
		blockEff := newEff()
		for i := range seg {
			res, err := db.execStmt(&seg[i], nil)
			if err != nil {
				return fail(false, err)
			}
			blockEff.addOp(res)
		}
		if first {
			// init-trans-info: every rule starts from the composite effect
			// of the first externally-generated transition.
			for _, r := range db.rules {
				r.transInfo = blockEff.clone()
			}
			first = false
		} else {
			db.applyToAll(nil, blockEff)
		}
		done, runaway, err := db.processRules(&transitions, &firings)
		if err != nil {
			return fail(runaway, err)
		}
		if done.Kind == RolledBack {
			clear()
			done.Firings = firings
			return done
		}
	}
	db.undo = db.undo[:0]
	clear()
	return Outcome{Kind: Committed, Firings: firings}
}

// processRules is the Figure 1 loop: select a triggered rule maximal in
// the priority order, consider its condition, execute its action, compose
// the resulting transition into every rule's trans-info; repeat until no
// rule is eligible. Rules whose condition was found false are reconsidered
// only after a new transition (Section 4.2).
func (db *DB) processRules(transitions *int, firings *[]string) (Outcome, bool, error) {
	consideredFalse := map[string]bool{}
	for {
		r := db.selectRule(consideredFalse)
		if r == nil {
			return Outcome{Kind: Committed}, false, nil
		}
		condHeld, err := db.evalCond(r.def.Cond, r.transInfo)
		if err != nil {
			return Outcome{}, false, fmt.Errorf("rule %q condition: %w", r.def.Name, err)
		}
		if r.def.Scope == "considered" && !condHeld {
			// Footnote 8: the evaluation window restarts at every
			// consideration.
			r.transInfo = newEff()
		}
		if !condHeld {
			consideredFalse[r.def.Name] = true
			continue
		}
		if r.def.Rollback {
			db.rollback()
			return Outcome{Kind: RolledBack, Rule: r.def.Name}, false, nil
		}
		*transitions++
		if *transitions > db.w.Cap {
			return Outcome{}, true, fmt.Errorf("runaway rules (rule %q, limit %d)", r.def.Name, db.w.Cap)
		}
		actEff := newEff()
		for i := range r.def.Action {
			res, err := db.execStmt(&r.def.Action[i], r.transInfo)
			if err != nil {
				return Outcome{}, false, fmt.Errorf("rule %q action: %w", r.def.Name, err)
			}
			actEff.addOp(res)
		}
		*firings = append(*firings, r.def.Name)
		// Figure 1: the executing rule gets fresh transition information
		// (init-trans-info); every other rule composes (modify-trans-info).
		r.transInfo = actEff.clone()
		db.applyToAll(r, actEff)
		consideredFalse = map[string]bool{}
	}
}

// applyToAll folds a new transition into every rule's trans-info except
// the rule that generated it. The since-triggered scope restarts a rule's
// window at any transition that by itself satisfies its predicate.
func (db *DB) applyToAll(exclude *orule, e *eff) {
	for _, r := range db.rules {
		if r == exclude {
			continue
		}
		if r.transInfo == nil {
			r.transInfo = e.clone()
			continue
		}
		if r.def.Scope == "triggered" && db.satisfies(e, r.def.Preds) {
			r.transInfo = e.clone()
			continue
		}
		r.transInfo.apply(e)
	}
}

// selectRule returns a triggered, not-yet-rejected rule that is maximal in
// the priority partial order, chosen by the injected tie-break.
func (db *DB) selectRule(consideredFalse map[string]bool) *orule {
	var triggered []*orule
	for _, r := range db.rules {
		if consideredFalse[r.def.Name] || r.transInfo == nil {
			continue
		}
		if db.satisfies(r.transInfo, r.def.Preds) {
			triggered = append(triggered, r)
		}
	}
	if len(triggered) == 0 {
		return nil
	}
	var maximal []*orule
	for _, r := range triggered {
		dominated := false
		for _, q := range triggered {
			if q != r && db.isHigher(q.def.Name, r.def.Name) {
				dominated = true
				break
			}
		}
		if !dominated {
			maximal = append(maximal, r)
		}
	}
	names := make([]string, len(maximal))
	for i, r := range maximal {
		names[i] = r.def.Name
	}
	sort.Strings(names)
	picked := db.choose(names)
	for _, r := range maximal {
		if r.def.Name == picked {
			return r
		}
	}
	for _, r := range maximal {
		if r.def.Name == names[0] {
			return r
		}
	}
	return maximal[0]
}

// ---------------------------------------------------------------------------
// Canonical state
// ---------------------------------------------------------------------------

// TupleState is one tuple in canonical form.
type TupleState struct {
	Handle uint64
	Row    []value.Value
}

// State maps table name → tuples in ascending handle order.
type State map[string][]TupleState

// State captures the oracle's current database state.
func (db *DB) State() State {
	out := State{}
	for name, t := range db.tables {
		rows := make([]TupleState, 0, len(t.rows))
		for _, tp := range t.rows {
			rows = append(rows, TupleState{Handle: tp.handle, Row: tp.row})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].Handle < rows[j].Handle })
		out[name] = rows
	}
	return out
}
