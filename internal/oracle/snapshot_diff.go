package oracle

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"sopr/internal/engine"
	"sopr/internal/gen"
	"sopr/internal/storage"
)

// This file adds the snapshot-isolation dimension to the differential
// harness. RunDiff establishes that the engine's *final* state after each
// transaction matches the oracle; RunSnapshotDiff additionally races
// lock-free readers against the write stream and demands that every state
// a reader observes through the published snapshot is byte-for-byte equal
// to some committed oracle state — never a torn mix of two transactions,
// never an uncommitted intermediate, never a rolled-back mutation.
//
// The protocol exploits engine/oracle determinism: for each transaction
// the oracle runs first and its post-state is registered as "legal" before
// the engine executes the same transaction. The engine publishes a new
// snapshot only at commit (or rollback completion, which restores the
// prior state), so by the time any reader can observe a state, that state
// is already in the legal set — a reader observing anything else has
// caught a real isolation violation.

// stateSet is the mutex-protected set of canonical committed states.
// Writers (the main differential loop) add; readers only test membership.
type stateSet struct {
	mu sync.Mutex
	m  map[string]bool
}

func (s *stateSet) add(k string)      { s.mu.Lock(); s.m[k] = true; s.mu.Unlock() }
func (s *stateSet) has(k string) bool { s.mu.Lock(); defer s.mu.Unlock(); return s.m[k] }
func newStateSet() *stateSet          { return &stateSet{m: map[string]bool{}} }

// canonicalState renders a State deterministically — sorted table names,
// rows in ascending handle order, kind-exact values — so set membership is
// exact state equality.
func canonicalState(s State) string {
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		b.WriteString(n)
		b.WriteString(":{")
		for _, r := range s[n] {
			fmt.Fprintf(&b, "%d=(%s);", r.Handle, renderRow(r.Row))
		}
		b.WriteString("} ")
	}
	return b.String()
}

// snapshotState extracts a workload's state from an immutable storage
// snapshot — the lock-free analogue of engineState.
func snapshotState(sn *storage.Snapshot, w *gen.Workload) (State, error) {
	out := State{}
	for i := range w.Tables {
		name := w.Tables[i].Name
		tuples, err := sn.Tuples(name)
		if err != nil {
			return nil, err
		}
		rows := make([]TupleState, len(tuples))
		for j, t := range tuples {
			rows[j] = TupleState{Handle: uint64(t.Handle), Row: t.Values}
		}
		out[name] = rows
	}
	return out, nil
}

// RunSnapshotDiff executes the workload through the engine and oracle in
// lockstep (like RunDiff with SkipMetamorphic) while `readers` goroutines
// continuously load the engine's published snapshot and verify each
// observed state against the set of committed oracle states. It returns
// nil if the run is divergence-free and every observed snapshot was a
// committed state; run it under -race to also catch data races on the
// snapshot structures themselves.
func RunSnapshotDiff(w *gen.Workload, opts Options, readers int) *Divergence {
	choose := Chooser(opts.Salt)
	eng := engine.New(engine.Config{MaxRuleTransitions: w.Cap, SelectHook: choose})
	if _, err := eng.Exec(w.SetupSQL()); err != nil {
		return diverge("setup", -1, "engine rejected setup: %v\n%s", err, w.SetupSQL())
	}
	odb := New(w, choose)

	legal := newStateSet()
	legal.add(canonicalState(odb.State()))

	// Reader side: spin over the published snapshot until told to stop,
	// recording the first observation that is not a committed state.
	var (
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		readerMu sync.Mutex
		readerD  *Divergence
		observed int64
	)
	fail := func(d *Divergence) {
		readerMu.Lock()
		if readerD == nil {
			readerD = d
		}
		readerMu.Unlock()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := int64(0)
			for {
				// Observe before checking stop: short workloads finish
				// before the scheduler runs the readers at all, and every
				// reader must make at least one observation (the final
				// committed state is still a meaningful check).
				st, err := snapshotState(eng.Snapshot(), w)
				if err != nil {
					fail(diverge("snapshot-isolation", -1, "snapshot read: %v", err))
					return
				}
				n++
				if key := canonicalState(st); !legal.has(key) {
					fail(diverge("snapshot-isolation", -1,
						"reader observed a state that was never committed:\n%s", key))
					return
				}
				select {
				case <-stop:
					readerMu.Lock()
					observed += n
					readerMu.Unlock()
					return
				default:
				}
			}
		}()
	}

	// Write side: oracle first, register its post-state, then the engine —
	// so every state the engine can publish is already legal.
	var final *Divergence
	for i := range w.Txns {
		oraOut := odb.RunTxn(w.Txns[i])
		legal.add(canonicalState(odb.State()))
		engOut := engineOutcome(eng.Exec(w.TxnSQL(i)))
		if msg := outcomesDiffer(engOut, oraOut); msg != "" {
			final = diverge("lockstep", i, "%s", msg)
			break
		}
	}
	close(stop)
	wg.Wait()
	if final != nil {
		return final
	}
	if readerD != nil {
		return readerD
	}
	if observed == 0 && len(w.Txns) > 0 {
		return diverge("snapshot-isolation", -1, "readers made no observations (harness bug)")
	}

	// The engine's own final state must still match the oracle exactly —
	// both through the store and through the snapshot the readers used.
	engState, err := engineState(eng, w)
	if err != nil {
		return diverge("final", -1, "engine state: %v", err)
	}
	if msg := statesDiffer(engState, odb.State()); msg != "" {
		return diverge("final", -1, "%s", msg)
	}
	snapState, err := snapshotState(eng.Snapshot(), w)
	if err != nil {
		return diverge("final", -1, "snapshot state: %v", err)
	}
	if msg := statesDiffer(engState, snapState); msg != "" {
		return diverge("final", -1, "store vs snapshot: %s", msg)
	}
	return nil
}
