package oracle

import (
	"flag"
	"testing"

	"sopr/internal/gen"
)

// -snapiters sets how many generated workloads the snapshot-isolation
// differential test races readers against. Each iteration spins up reader
// goroutines, so it is heavier per workload than TestDifferentialHarness;
// CI runs it under -race with -cpu 2,4.
var snapIters = flag.Int("snapiters", 40, "number of generated workloads for TestSnapshotIsolationDifferential")

// TestSnapshotIsolationDifferential races lock-free snapshot readers
// against the engine's write stream across generated workloads: every
// state a reader observes must be byte-for-byte equal to some committed
// oracle state. Run with -race to also check the snapshot structures for
// data races — the whole point of the MVCC read path is that readers
// touch only frozen memory and atomic counters.
func TestSnapshotIsolationDifferential(t *testing.T) {
	iters := int64(*snapIters)
	if testing.Short() {
		iters = 10
	}
	const readers = 4
	for seed := int64(0); seed < iters; seed++ {
		w := gen.Generate(seed)
		opts := Options{Salt: uint64(seed)}
		if d := RunSnapshotDiff(w, opts, readers); d != nil {
			t.Fatalf("seed %d: %v", seed, d)
		}
	}
}
