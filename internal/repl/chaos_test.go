// Partition/chaos harness for consensus-grade failover. A 4-node cluster
// — durable primary P behind a severable TCP link, durable followers A
// and B, in-memory follower C — is driven through a full partition
// lifecycle under a write storm:
//
//	storm → sever P → zombie degraded writes → failover (epoch 1) →
//	storm → fence the zombie → heal → demote P → converge
//
// The acceptance invariants, asserted at each phase boundary:
//
//   - no write acknowledged with Synced=true is ever lost;
//   - no two nodes accept writes in the same epoch (the zombie's writes
//     all carry epoch 0, the new leader's epoch 1, and once fenced the
//     zombie refuses with the typed error);
//   - every survivor — including the truncated ex-primary — converges to
//     a byte-identical dump.
package repl_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sopr"
	"sopr/client"
	"sopr/internal/repl"
	"sopr/internal/server"
)

// linkProxy is a severable TCP link: it forwards byte streams to target
// until sever(), which kills every live session and refuses new ones
// (accept-then-close, the shape of a partitioned peer) until heal().
type linkProxy struct {
	ln     net.Listener
	target string

	mu      sync.Mutex
	severed bool
	conns   map[net.Conn]struct{}
}

func startLinkProxy(t *testing.T, target string) *linkProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lp := &linkProxy{ln: ln, target: target, conns: map[net.Conn]struct{}{}}
	go lp.run()
	t.Cleanup(func() {
		ln.Close()
		lp.sever() // kill whatever is still flowing
	})
	return lp
}

func (lp *linkProxy) addr() string { return lp.ln.Addr().String() }

func (lp *linkProxy) sever() {
	lp.mu.Lock()
	lp.severed = true
	for c := range lp.conns {
		c.Close()
		delete(lp.conns, c)
	}
	lp.mu.Unlock()
}

func (lp *linkProxy) heal() {
	lp.mu.Lock()
	lp.severed = false
	lp.mu.Unlock()
}

func (lp *linkProxy) run() {
	for {
		down, err := lp.ln.Accept()
		if err != nil {
			return
		}
		lp.mu.Lock()
		if lp.severed {
			lp.mu.Unlock()
			down.Close()
			continue
		}
		lp.mu.Unlock()
		go lp.session(down)
	}
}

func (lp *linkProxy) session(down net.Conn) {
	up, err := net.Dial("tcp", lp.target)
	if err != nil {
		down.Close()
		return
	}
	lp.mu.Lock()
	if lp.severed {
		lp.mu.Unlock()
		down.Close()
		up.Close()
		return
	}
	lp.conns[down] = struct{}{}
	lp.conns[up] = struct{}{}
	lp.mu.Unlock()
	done := make(chan struct{}, 2)
	cp := func(dst, src net.Conn) {
		_, _ = io.Copy(dst, src)
		done <- struct{}{}
	}
	go cp(up, down)
	go cp(down, up)
	<-done // either direction failing kills the link
	lp.mu.Lock()
	delete(lp.conns, down)
	delete(lp.conns, up)
	lp.mu.Unlock()
	down.Close()
	up.Close()
}

// chaosNode is one server-fronted node: either a repl.Primary or a
// repl.Follower behind a server.Server.
type chaosNode struct {
	addr string
	p    *repl.Primary
	fl   *repl.Follower
	srv  *server.Server
}

func (n *chaosNode) dump(t *testing.T) string {
	t.Helper()
	c, err := client.Dial(n.addr)
	if err != nil {
		t.Fatalf("dial %s: %v", n.addr, err)
	}
	defer c.Close()
	s, err := c.Dump()
	if err != nil {
		t.Fatalf("dump %s: %v", n.addr, err)
	}
	return s
}

func startChaosPrimary(t *testing.T, dir string, syncFollowers int, syncTimeout time.Duration) *chaosNode {
	t.Helper()
	db, err := sopr.OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	p, err := repl.NewPrimary(db, repl.PrimaryConfig{
		SyncFollowers: syncFollowers,
		SyncTimeout:   syncTimeout,
		Source:        repl.SourceConfig{Heartbeat: 25 * time.Millisecond},
		Follower: repl.FollowerConfig{
			ReconnectMin: 10 * time.Millisecond,
			ReconnectMax: 200 * time.Millisecond,
			AckInterval:  10 * time.Millisecond,
			Logf:         t.Logf,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(p, server.Config{ReplWaitTimeout: 2 * time.Second})
	ln, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	n := &chaosNode{addr: ln.Addr().String(), p: p, srv: srv}
	t.Cleanup(func() { stopChaosNode(t, n) })
	return n
}

// startChaosFollower boots a follower of upstream; dir != "" makes it
// durable (its own WAL, promotable into a stream source).
func startChaosFollower(t *testing.T, upstream, dir string, syncFollowers int, syncTimeout time.Duration) *chaosNode {
	t.Helper()
	fl, err := repl.NewFollower(repl.FollowerConfig{
		Primary:       upstream,
		DataDir:       dir,
		SyncFollowers: syncFollowers,
		SyncTimeout:   syncTimeout,
		Heartbeat:     25 * time.Millisecond,
		ReconnectMin:  10 * time.Millisecond,
		ReconnectMax:  200 * time.Millisecond,
		AckInterval:   10 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	go fl.Run()
	srv := server.New(fl, server.Config{ReplWaitTimeout: 2 * time.Second})
	ln, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	n := &chaosNode{addr: ln.Addr().String(), fl: fl, srv: srv}
	t.Cleanup(func() { stopChaosNode(t, n) })
	return n
}

func stopChaosNode(t *testing.T, n *chaosNode) {
	t.Helper()
	if n.srv == nil {
		return
	}
	shutdownServer(t, n.srv)
	if n.p != nil {
		_ = n.p.Close()
	}
	if n.fl != nil {
		n.fl.Close()
	}
	n.srv = nil
}

func shutdownServer(t *testing.T, srv *server.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
}

func TestPartitionFailoverChaos(t *testing.T) {
	base := t.TempDir()
	const syncTimeout = 500 * time.Millisecond

	p := startChaosPrimary(t, filepath.Join(base, "p"), 2, syncTimeout)
	lp := startLinkProxy(t, p.addr) // every peer reaches P through this link
	a := startChaosFollower(t, lp.addr(), filepath.Join(base, "a"), 1, syncTimeout)
	b := startChaosFollower(t, lp.addr(), filepath.Join(base, "b"), 1, syncTimeout)
	c := startChaosFollower(t, lp.addr(), "", 0, 0) // in-memory: cannot lead durably

	cl, err := client.DialCluster([]string{lp.addr(), a.addr, b.addr, c.addr}, client.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Schema, then wait for the full fan-in before the storm: synchronous
	// commit needs the followers connected and acking.
	if _, err := cl.Exec(`create table kv (k string, v int);`); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "three followers connected and caught up", func() bool {
		want := p.p.CurrentLSN()
		return a.fl.AppliedLSN() >= want && b.fl.AppliedLSN() >= want && c.fl.AppliedLSN() >= want
	})

	// Phase 1: write storm under sync-commit (N=2). Every ack must carry
	// Synced=true and epoch 0 — P is the only accepting node.
	syncedKeys := []string{}
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("pre%d", i)
		res, err := cl.Exec(fmt.Sprintf(`insert into kv values ('%s', %d);`, k, i))
		if err != nil {
			t.Fatalf("storm write %d: %v", i, err)
		}
		if !res.Synced {
			t.Fatalf("storm write %d not synced with 3 live followers (sync-followers=2)", i)
		}
		if res.Epoch != 0 {
			t.Fatalf("pre-partition write carries epoch %d, want 0", res.Epoch)
		}
		syncedKeys = append(syncedKeys, k)
	}

	// Phase 2: partition P away from everything. A client still on the
	// zombie's side keeps getting acks — but degraded ones (Synced=false):
	// no follower can confirm, so after the sync timeout the commit
	// downgrades and says so.
	lp.sever()
	zc, err := client.Dial(p.addr) // the minority-side client dials P directly
	if err != nil {
		t.Fatal(err)
	}
	defer zc.Close()
	for i := 0; i < 2; i++ {
		res, err := zc.Exec(fmt.Sprintf(`insert into kv values ('zombie%d', %d);`, i, i))
		if err != nil {
			t.Fatalf("zombie write %d: %v", i, err)
		}
		if res.Synced {
			t.Fatalf("zombie write %d reported synced with every follower severed", i)
		}
		if res.Epoch != 0 {
			t.Fatalf("zombie write carries epoch %d, want 0", res.Epoch)
		}
	}
	if st := p.p.ReplStats(); st.SyncTimeouts == 0 {
		t.Fatalf("no sync timeout recorded on the partitioned primary: %+v", st)
	}

	// Phase 3: the majority side fails over. The cluster promotes the best
	// durable follower into epoch 1 and re-points the survivors at it.
	res, err := cl.Exec(`insert into kv values ('post0', 0);`)
	if err != nil {
		t.Fatalf("first write after partition: %v", err)
	}
	if res.Epoch != 1 {
		t.Fatalf("post-failover write carries epoch %d, want 1", res.Epoch)
	}
	leaderAddr, epoch := cl.Leader()
	if epoch != 1 {
		t.Fatalf("cluster epoch after failover = %d, want 1", epoch)
	}
	var leader, sibling *chaosNode
	switch {
	case a.fl.Promoted() && !b.fl.Promoted():
		leader, sibling = a, b
	case b.fl.Promoted() && !a.fl.Promoted():
		leader, sibling = b, a
	default:
		t.Fatalf("promoted: a=%v b=%v, want exactly one durable follower promoted",
			a.fl.Promoted(), b.fl.Promoted())
	}
	if c.fl.Promoted() {
		t.Fatal("in-memory follower was promoted over a durable sibling")
	}
	if leaderAddr != leader.addr {
		t.Fatalf("cluster leader %s, promoted node %s", leaderAddr, leader.addr)
	}
	syncedKeys = append(syncedKeys, "post0") // durable on the new leader even if ack raced the re-point

	// The re-pointed survivors resume from their applied LSN against the
	// new leader — no re-bootstrap, no divergence.
	waitFor(t, "siblings re-pointed at the new leader", func() bool {
		return sibling.fl.Leader() == leader.addr && c.fl.Leader() == leader.addr &&
			sibling.fl.AppliedLSN() >= leader.fl.CurrentLSN() &&
			c.fl.AppliedLSN() >= leader.fl.CurrentLSN()
	})
	if st := sibling.fl.ReplStats(); st.Resets != 0 {
		t.Fatalf("re-pointed durable sibling reset %d times; it shares the leader's history", st.Resets)
	}

	// Storm continues in epoch 1, synchronous again (N=1 on the leader).
	for i := 1; i <= 10; i++ {
		k := fmt.Sprintf("post%d", i)
		res, err := cl.Exec(fmt.Sprintf(`insert into kv values ('%s', %d);`, k, i))
		if err != nil {
			t.Fatalf("post-failover write %d: %v", i, err)
		}
		if res.Epoch != 1 {
			t.Fatalf("post-failover write %d carries epoch %d, want 1", i, res.Epoch)
		}
		if !res.Synced {
			t.Fatalf("post-failover write %d not synced; siblings are re-pointed and caught up", i)
		}
		syncedKeys = append(syncedKeys, k)
	}

	// Phase 4: a write carrying the cluster's epoch reaches the zombie —
	// it must fence itself and answer the typed error, and stay fenced for
	// epoch-less writers too. No node but the leader accepts in epoch 1.
	_, err = zc.ExecAt(`insert into kv values ('fenced', 1);`, cl.Epoch())
	var re *client.RemoteError
	if !errors.As(err, &re) || re.Code != client.CodeFenced {
		t.Fatalf("epoch-carrying write to zombie = %v, want remote %s", err, client.CodeFenced)
	}
	if re.Epoch != 1 {
		t.Fatalf("fenced error carries epoch %d, want 1", re.Epoch)
	}
	if _, err := zc.Exec(`insert into kv values ('fenced2', 1);`); !client.IsRemote(err, client.CodeFenced) {
		t.Fatalf("write to fenced zombie = %v, want remote %s", err, client.CodeFenced)
	}
	if st := p.p.ReplStats(); !st.Fenced {
		t.Fatalf("zombie stats not fenced: %+v", st)
	}

	// Phase 5: heal the link. Refresh discovers the returning ex-primary
	// and demotes it under the leader; its zombie suffix (two accepted but
	// never-synced writes) is truncated — loudly — and it re-bootstraps.
	lp.heal()
	waitFor(t, "healed ex-primary demoted under the new leader", func() bool {
		cl.Refresh()
		st := p.p.ReplStats()
		return st.Role == "replica" && st.Leader == leader.addr
	})
	waitFor(t, "demoted ex-primary caught up to the leader", func() bool {
		st := p.p.ReplStats()
		return st.Connected && p.p.CurrentLSN() >= leader.fl.CurrentLSN()
	})
	if st := p.p.ReplStats(); st.Resets == 0 || st.DiscardedRecords == 0 {
		t.Fatalf("returning primary kept its zombie suffix: resets=%d discarded=%d",
			st.Resets, st.DiscardedRecords)
	}

	// Final write sweeps every survivor to one LSN, then: byte-identical
	// dumps on all four nodes.
	res, err = cl.Exec(`insert into kv values ('final', 1);`)
	if err != nil {
		t.Fatal(err)
	}
	syncedKeys = append(syncedKeys, "final")
	waitFor(t, "all four nodes at the final LSN", func() bool {
		return p.p.CurrentLSN() >= res.LSN && sibling.fl.AppliedLSN() >= res.LSN &&
			c.fl.AppliedLSN() >= res.LSN && leader.fl.CurrentLSN() >= res.LSN
	})
	want := leader.dump(t)
	for _, n := range []*chaosNode{p, sibling, c} {
		if got := n.dump(t); got != want {
			t.Errorf("node %s diverged from leader:\n--- leader ---\n%s\n--- node ---\n%s", n.addr, want, got)
		}
	}

	// No acknowledged-synchronous write was lost across the whole run...
	for _, k := range syncedKeys {
		rows, err := cl.Query(fmt.Sprintf(`select v from kv where k = '%s';`, k))
		if err != nil {
			t.Fatalf("query %s: %v", k, err)
		}
		if len(rows.Data) != 1 {
			t.Errorf("synced write %q lost: %d rows", k, len(rows.Data))
		}
	}
	// ...and the zombie's unsynced suffix is gone everywhere.
	for _, k := range []string{"zombie0", "zombie1", "fenced", "fenced2"} {
		rows, err := cl.Query(fmt.Sprintf(`select v from kv where k = '%s';`, k))
		if err != nil {
			t.Fatalf("query %s: %v", k, err)
		}
		if len(rows.Data) != 0 {
			t.Errorf("zombie write %q survived truncation", k)
		}
	}
}
