// Durable-follower lifecycle tests: local WAL recovery across restarts,
// the reset-and-rebootstrap path when histories diverge, and the idle-ack
// timer that keeps the primary's retention pin moving.
package repl_test

import (
	"strings"
	"testing"
	"time"

	"sopr"
	"sopr/internal/repl"
	"sopr/internal/server"
)

// startReplicaDir is startReplica with a data directory: the follower
// persists the stream into its own WAL and recovers from it at startup.
func startReplicaDir(t *testing.T, primaryAddr, dir string) *replica {
	t.Helper()
	fl, err := repl.NewFollower(repl.FollowerConfig{
		Primary:      primaryAddr,
		DataDir:      dir,
		ReconnectMin: 10 * time.Millisecond,
		ReconnectMax: 250 * time.Millisecond,
		AckInterval:  10 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("NewFollower: %v", err)
	}
	go fl.Run()
	srv := server.New(fl, server.Config{ReplWaitTimeout: 500 * time.Millisecond})
	ln, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go srv.Serve(ln)
	r := &replica{addr: ln.Addr().String(), fl: fl, srv: srv}
	t.Cleanup(func() { r.stop(t) })
	return r
}

// TestDurableFollowerRestartResumesLocally: a restarted durable follower
// recovers its applied position from its own WAL before touching the
// network, then resumes the stream from there — no reset, no re-bootstrap.
func TestDurableFollowerRestartResumesLocally(t *testing.T) {
	p := startPrimary(t, t.TempDir())
	p.exec(t, testSchema)
	for i := 0; i < 5; i++ {
		p.exec(t, `insert into emp values ('e`+string(rune('0'+i))+`', 1, 1000, 0);`)
	}
	fdir := t.TempDir()
	r := startReplicaDir(t, p.addr, fdir)
	waitCaughtUp(t, r, p.db.CurrentLSN())
	applied := r.fl.AppliedLSN()
	if st := r.fl.ReplStats(); !st.Durable {
		t.Fatalf("follower with a data dir reports Durable=false: %+v", st)
	}
	r.stop(t)

	p.exec(t, `insert into emp values ('late', 9, 9, 0);`) // written while the follower was down

	// Recovery happens in NewFollower, before Run ever dials: the applied
	// position must already be there.
	fl, err := repl.NewFollower(repl.FollowerConfig{
		Primary:      p.addr,
		DataDir:      fdir,
		ReconnectMin: 10 * time.Millisecond,
		ReconnectMax: 250 * time.Millisecond,
		AckInterval:  10 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("reopen follower: %v", err)
	}
	defer fl.Close()
	if got := fl.AppliedLSN(); got != applied {
		t.Fatalf("recovered applied = %d, want %d (local WAL replay)", got, applied)
	}
	go fl.Run()
	waitFor(t, "restarted follower to catch up", func() bool {
		return fl.AppliedLSN() >= p.db.CurrentLSN()
	})
	if st := fl.ReplStats(); st.Resets != 0 {
		t.Fatalf("restarted durable follower reset %d times; it should resume from its WAL", st.Resets)
	}
	var b strings.Builder
	if err := fl.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != p.dump(t) {
		t.Fatal("restarted durable follower diverged from primary")
	}
}

// TestFollowerResetAndRebootstrap: a follower whose applied history the
// source does not share (here: the primary's data dir was replaced with a
// shorter history on the same address) must discard everything — old
// engine, local WAL — and rebuild from the source's checkpoint, ending
// byte-identical. The discard is loud: Resets and DiscardedRecords count
// it in stats.
func TestFollowerResetAndRebootstrap(t *testing.T) {
	p := startPrimary(t, t.TempDir())
	p.exec(t, testSchema)
	for i := 0; i < 5; i++ {
		p.exec(t, `insert into emp values ('old', 1, 1, 0);`)
	}
	r := startReplicaDir(t, p.addr, t.TempDir())
	waitCaughtUp(t, r, p.db.CurrentLSN())
	applied := r.fl.AppliedLSN()

	// Replace the primary wholesale: same address, fresh shorter history.
	addr := p.addr
	p.stop(t)
	p2 := restartPrimary(t, t.TempDir(), addr)
	p2.exec(t, testSchema)
	p2.exec(t, `insert into emp values ('new', 2, 2, 0);`)
	if p2.db.CurrentLSN() >= applied {
		t.Fatalf("new history too long (%d >= %d); divergence not exercised", p2.db.CurrentLSN(), applied)
	}

	waitFor(t, "follower to reset against the replaced history", func() bool {
		return r.fl.ReplStats().Resets >= 1
	})
	waitCaughtUp(t, r, p2.db.CurrentLSN())
	st := r.fl.ReplStats()
	if st.DiscardedRecords < int64(applied) {
		t.Fatalf("discarded %d records, want >= %d (the whole diverged history)", st.DiscardedRecords, applied)
	}
	// The rebuilt engine is byte-identical to the new primary; nothing of
	// the old engine leaks through.
	var b strings.Builder
	if err := r.fl.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if got, want := b.String(), p2.dump(t); got != want {
		t.Fatalf("rebootstrapped follower diverges:\n--- primary ---\n%s\n--- follower ---\n%s", want, got)
	}
	if strings.Contains(b.String(), "'old'") {
		t.Fatal("old engine's rows leaked into the rebootstrapped state")
	}
}

// TestIdleAckReleasesRetentionPromptly: when the stream goes idle right
// after a burst, the follower's timer must still deliver the final ack —
// otherwise the primary's retention pin (MinFollowerLSN) sticks at the
// previous ack until the next record or heartbeat arrives. The heartbeat
// here is far longer than the assertion window, so only the ack timer can
// satisfy it.
func TestIdleAckReleasesRetentionPromptly(t *testing.T) {
	db, err := sopr.OpenDurable(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sdb := sopr.Synchronized(db)
	defer sdb.Close()
	src := repl.NewSource(db.WALLog(), repl.SourceConfig{Heartbeat: 30 * time.Second, Logf: t.Logf})
	srv := server.New(sdb, server.Config{Repl: src})
	ln, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() { _ = ln.Close() }()

	fl, err := repl.NewFollower(repl.FollowerConfig{
		Primary:       ln.Addr().String(),
		ReconnectMin:  10 * time.Millisecond,
		ReconnectMax:  250 * time.Millisecond,
		AckInterval:   20 * time.Millisecond,
		StreamTimeout: 60 * time.Second, // outlast the silent heartbeat
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	go fl.Run()

	if _, err := sdb.Exec(testSchema); err != nil {
		t.Fatal(err)
	}
	// A quick burst, then silence: the final LSN's ack can only come from
	// the idle timer.
	for i := 0; i < 5; i++ {
		if _, err := sdb.Exec(`insert into emp values ('burst', 1, 1, 0);`); err != nil {
			t.Fatal(err)
		}
	}
	last := db.CurrentLSN()
	start := time.Now()
	deadline := start.Add(5 * time.Second)
	for {
		if st := src.Stats(); st.MinFollowerLSN >= last {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retention pin stuck: MinFollowerLSN %d, want %d (idle ack never arrived)",
				src.Stats().MinFollowerLSN, last)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("idle ack took %v; the timer should deliver it in milliseconds", elapsed)
	}
}
