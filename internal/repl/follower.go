package repl

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"sopr"
	"sopr/internal/engine"
	"sopr/internal/wal"
	"sopr/internal/wire"
)

// FollowerConfig tunes a replica.
type FollowerConfig struct {
	// Primary is the primary soprd's address (host:port). Required.
	Primary string
	// SelectTriggers and MaxRuleTransitions mirror the primary's engine
	// options; they only matter after promotion (replay runs with rules
	// disabled regardless).
	SelectTriggers     bool
	MaxRuleTransitions int
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// StreamTimeout is the silence tolerated on the stream before the
	// follower reconnects (default 10s; the primary heartbeats every
	// second when idle).
	StreamTimeout time.Duration
	// AckInterval rate-limits progress acks while records are flowing
	// (default 200ms). Heartbeats are always acked immediately.
	AckInterval time.Duration
	// ReconnectMin/ReconnectMax bound the reconnect backoff
	// (defaults 100ms / 5s).
	ReconnectMin, ReconnectMax time.Duration
	// MaxFrame caps inbound stream frames (default wire.ReplMaxFrame).
	MaxFrame int
	// Logf receives follower log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c *FollowerConfig) fill() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.StreamTimeout <= 0 {
		c.StreamTimeout = 10 * time.Second
	}
	if c.AckInterval <= 0 {
		c.AckInterval = 200 * time.Millisecond
	}
	if c.ReconnectMin <= 0 {
		c.ReconnectMin = 100 * time.Millisecond
	}
	if c.ReconnectMax <= 0 {
		c.ReconnectMax = 5 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = wire.ReplMaxFrame
	}
}

// Follower is a read replica: an in-memory engine kept current by
// replaying the primary's WAL stream with rule processing disabled — the
// same replay crash recovery runs, so the state cannot diverge from what
// the primary committed. It implements the server backend interface;
// Exec returns ErrReadOnly until Promote flips the node writable.
//
// Followers keep no local log. A restarted follower rejoins from LSN 0
// and the primary bootstraps it from its newest checkpoint image.
type Follower struct {
	cfg FollowerConfig

	// mu guards the engine: stream apply and promoted writes take it
	// exclusively, queries/dumps/stats share it (the same discipline as
	// SynchronizedDB on the primary).
	mu  sync.RWMutex
	eng *engine.Engine

	// smu guards replication status, separate from mu so stats and
	// read-your-writes waits never queue behind a large apply.
	smu        sync.Mutex
	applied    uint64
	primaryLSN uint64
	connected  bool
	promoted   bool
	appliedCh  chan struct{} // closed on each applied/promoted change

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	connMu sync.Mutex
	conn   net.Conn // live stream connection, closed by Close/Promote
}

// NewFollower builds a replica targeting cfg.Primary. Call Run to start
// the stream loop.
func NewFollower(cfg FollowerConfig) *Follower {
	cfg.fill()
	f := &Follower{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	f.eng = engine.New(f.engineConfig())
	return f
}

func (f *Follower) engineConfig() engine.Config {
	return engine.Config{
		EnableSelectTriggers: f.cfg.SelectTriggers,
		MaxRuleTransitions:   f.cfg.MaxRuleTransitions,
	}
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// Run drives the stream: dial, join, apply until the session drops, back
// off, rejoin from the last applied LSN. It returns when Close or Promote
// is called.
func (f *Follower) Run() {
	defer close(f.done)
	backoff := f.cfg.ReconnectMin
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		nc, err := net.DialTimeout("tcp", f.cfg.Primary, f.cfg.DialTimeout)
		if err == nil {
			f.setConn(nc)
			start := f.AppliedLSN()
			err = f.stream(nc)
			_ = nc.Close()
			f.setConn(nil)
			f.setConnected(false)
			if f.AppliedLSN() > start {
				backoff = f.cfg.ReconnectMin // the session made progress
			}
		}
		if err != nil {
			f.logf("repl: stream to %s: %v", f.cfg.Primary, err)
		}
		select {
		case <-f.stop:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > f.cfg.ReconnectMax {
			backoff = f.cfg.ReconnectMax
		}
	}
}

// stream runs one session: join at the applied LSN, then decode and apply
// frames until the connection breaks or the primary goes silent.
func (f *Follower) stream(nc net.Conn) error {
	from := f.AppliedLSN()
	if err := nc.SetWriteDeadline(time.Now().Add(f.cfg.StreamTimeout)); err != nil {
		return err
	}
	if err := wire.WriteMessage(nc, wire.MsgReplJoin, &wire.ReplJoinRequest{FromLSN: from}, f.cfg.MaxFrame); err != nil {
		return fmt.Errorf("join: %w", err)
	}

	var snap []wal.CkptPart // in-flight checkpoint bootstrap
	acked := from
	lastAck := time.Now()
	sendAck := func(force bool) error {
		app := f.AppliedLSN()
		if app == acked && !force {
			return nil
		}
		if !force && time.Since(lastAck) < f.cfg.AckInterval {
			return nil
		}
		if err := nc.SetWriteDeadline(time.Now().Add(f.cfg.StreamTimeout)); err != nil {
			return err
		}
		if err := wire.WriteMessage(nc, wire.MsgReplAck, &wire.ReplAck{LSN: app}, f.cfg.MaxFrame); err != nil {
			return fmt.Errorf("ack: %w", err)
		}
		acked, lastAck = app, time.Now()
		return nil
	}

	for {
		if err := nc.SetReadDeadline(time.Now().Add(f.cfg.StreamTimeout)); err != nil {
			return err
		}
		typ, payload, err := wire.ReadFrame(nc, f.cfg.MaxFrame)
		if err != nil {
			return fmt.Errorf("read stream: %w", err)
		}
		msg, err := wire.DecodeReplStream(typ, payload)
		if err != nil {
			return err
		}
		f.setConnected(true)
		switch m := msg.(type) {
		case *wire.ErrorResponse:
			if m.Code == wire.CodeDiverged {
				// Our state is ahead of this primary's log (e.g. it was
				// restored from an older backup). Drop everything and
				// rebuild from its checkpoint on the next join.
				f.reset()
				return fmt.Errorf("primary reports divergence (%s); reset for re-bootstrap", m.Message)
			}
			return fmt.Errorf("primary refused stream: %s: %s", m.Code, m.Message)
		case *wire.ReplSnapFrame:
			snap = append(snap, wal.CkptPart{Kind: m.Kind, Payload: m.Payload})
			if m.Kind == wal.KindCkptEnd {
				if err := f.installSnapshot(snap); err != nil {
					f.reset()
					return fmt.Errorf("install snapshot: %w", err)
				}
				snap = nil
				if err := sendAck(true); err != nil {
					return err
				}
			}
		case *wire.ReplRecord:
			if snap != nil {
				return fmt.Errorf("record lsn %d arrived inside a snapshot", m.LSN)
			}
			if err := f.applyRecord(m); err != nil {
				return err
			}
			if err := sendAck(false); err != nil {
				return err
			}
		case *wire.ReplHeartbeat:
			f.setPrimaryLSN(m.LSN)
			if err := sendAck(true); err != nil {
				return err
			}
		}
	}
}

// installSnapshot replaces the engine with one rebuilt from checkpoint
// parts, exactly as crash recovery loads a checkpoint image.
func (f *Follower) installSnapshot(parts []wal.CkptPart) error {
	ck, err := wal.AssembleCheckpoint(parts)
	if err != nil {
		return err
	}
	eng := engine.New(f.engineConfig())
	if err := eng.LoadCheckpoint(ck); err != nil {
		return err
	}
	f.mu.Lock()
	f.eng = eng
	f.mu.Unlock()
	f.advanceTo(ck.Meta.LSN)
	f.setPrimaryLSN(ck.Meta.LSN)
	f.logf("repl: installed checkpoint image at lsn %d", ck.Meta.LSN)
	return nil
}

// applyRecord replays one WAL record, enforcing LSN continuity. An apply
// failure resets the follower: partial application of a composed net
// effect cannot be reconciled in place, but a checkpoint re-bootstrap
// always can.
func (f *Follower) applyRecord(m *wire.ReplRecord) error {
	want := f.AppliedLSN() + 1
	if m.LSN != want {
		return fmt.Errorf("stream gap: got record lsn %d, want %d", m.LSN, want)
	}
	rec, err := wal.RawRecord{LSN: m.LSN, Kind: m.Kind, Payload: m.Payload}.Decode()
	if err != nil {
		return fmt.Errorf("decode record lsn %d: %w", m.LSN, err)
	}
	f.mu.Lock()
	err = f.eng.ReplayRecord(rec)
	if err == nil {
		// Publish per applied record so snapshot-based reads (Query, Dump,
		// Stats) see replicated state as it arrives. This re-freezes the
		// touched tables — the next record pays one copy-on-write clone —
		// which is the price of per-record read visibility; bulk recovery
		// paths publish once at the end instead (see engine.ReplayRecord).
		f.eng.PublishSnapshot()
	}
	f.mu.Unlock()
	if err != nil {
		f.reset()
		return fmt.Errorf("apply record lsn %d failed; reset for re-bootstrap: %w", m.LSN, err)
	}
	f.advanceTo(m.LSN)
	f.setPrimaryLSN(m.LSN)
	return nil
}

// reset discards all replayed state so the next join starts from LSN 0
// (checkpoint bootstrap).
func (f *Follower) reset() {
	eng := engine.New(f.engineConfig())
	f.mu.Lock()
	f.eng = eng
	f.mu.Unlock()
	f.smu.Lock()
	f.applied = 0
	f.primaryLSN = 0
	f.smu.Unlock()
}

func (f *Follower) setConn(nc net.Conn) {
	f.connMu.Lock()
	f.conn = nc
	f.connMu.Unlock()
}

func (f *Follower) closeConn() {
	f.connMu.Lock()
	if f.conn != nil {
		_ = f.conn.Close()
	}
	f.connMu.Unlock()
}

func (f *Follower) setConnected(v bool) {
	f.smu.Lock()
	f.connected = v
	f.smu.Unlock()
}

func (f *Follower) setPrimaryLSN(lsn uint64) {
	f.smu.Lock()
	if lsn > f.primaryLSN {
		f.primaryLSN = lsn
	}
	f.smu.Unlock()
}

// advanceTo publishes a new applied LSN and wakes read-your-writes
// waiters.
func (f *Follower) advanceTo(lsn uint64) {
	f.smu.Lock()
	if lsn > f.applied {
		f.applied = lsn
	}
	if f.appliedCh != nil {
		close(f.appliedCh)
		f.appliedCh = nil
	}
	f.smu.Unlock()
}

// AppliedLSN reports the last LSN this follower has applied.
func (f *Follower) AppliedLSN() uint64 {
	f.smu.Lock()
	defer f.smu.Unlock()
	return f.applied
}

// CurrentLSN implements the server's LSN-token capability: on a replica
// it is the applied LSN.
func (f *Follower) CurrentLSN() uint64 { return f.AppliedLSN() }

// WaitForLSN blocks until the follower has applied lsn, the timeout
// elapses (LagError), or the node is promoted (a promoted node is the
// freshest state there is).
func (f *Follower) WaitForLSN(lsn uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		f.smu.Lock()
		if f.promoted || f.applied >= lsn {
			f.smu.Unlock()
			return nil
		}
		have := f.applied
		if f.appliedCh == nil {
			f.appliedCh = make(chan struct{})
		}
		ch := f.appliedCh
		f.smu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return &LagError{Need: lsn, Have: have}
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
		}
	}
}

// Promoted reports whether this node has been promoted to accept writes.
func (f *Follower) Promoted() bool {
	f.smu.Lock()
	defer f.smu.Unlock()
	return f.promoted
}

// Promote detaches the node from the primary and makes it writable. The
// promoted node runs in-memory from its applied state (rules re-enabled
// for new work); it keeps no WAL, so it cannot itself serve replication —
// promotion is a failover stopgap, not a durable primary.
func (f *Follower) Promote() error {
	f.smu.Lock()
	already := f.promoted
	f.promoted = true
	if f.appliedCh != nil {
		close(f.appliedCh) // wake read-your-writes waiters
		f.appliedCh = nil
	}
	f.smu.Unlock()
	if already {
		return nil
	}
	f.stopOnce.Do(func() { close(f.stop) })
	f.closeConn()
	f.logf("repl: promoted at lsn %d; stream to %s stopped", f.AppliedLSN(), f.cfg.Primary)
	return nil
}

// Close stops the stream loop and waits for it to exit.
func (f *Follower) Close() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.closeConn()
	<-f.done
}

// --- server backend ---

// Exec rejects writes until the node is promoted; after promotion it
// executes the script with full rule processing, like a primary.
func (f *Follower) Exec(src string) (*sopr.Result, error) {
	if !f.Promoted() {
		return nil, ErrReadOnly
	}
	f.mu.Lock()
	txn, err := f.eng.Exec(src)
	f.mu.Unlock()
	// Keep the logical clock moving: each write advances the promoted
	// node's LSN so read-your-writes tokens issued here are strictly newer
	// than anything the old primary's other replicas have applied — a
	// promoted node ships no WAL, so those replicas are permanently stale
	// and must answer such tokens with CodeLagging, not old data.
	f.advanceTo(f.AppliedLSN() + 1)
	return resultFromTxn(txn), wrapParse(err)
}

// Query runs a read-only query against the replayed state.
func (f *Follower) Query(src string) (*sopr.Rows, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	res, err := f.eng.QueryString(src)
	if err != nil {
		return nil, wrapParse(err)
	}
	return rowsFromExec(res), nil
}

// Dump writes the replayed state as an executable script.
func (f *Follower) Dump(w io.Writer) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.eng.Dump(w)
}

// Stats reports engine counters for the replayed state.
func (f *Follower) Stats() sopr.Stats {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return sopr.Stats(f.eng.Stats())
}

// ReplStats reports the node's replication position and lag.
func (f *Follower) ReplStats() *wire.ReplStats {
	f.smu.Lock()
	defer f.smu.Unlock()
	st := &wire.ReplStats{
		Role:       "replica",
		LSN:        f.applied,
		PrimaryLSN: f.primaryLSN,
		Connected:  f.connected,
		Promoted:   f.promoted,
	}
	if f.primaryLSN > f.applied {
		st.Lag = int64(f.primaryLSN - f.applied)
	}
	if f.promoted {
		st.Role = "primary"
	}
	return st
}
