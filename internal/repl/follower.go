package repl

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"sopr"
	"sopr/internal/engine"
	"sopr/internal/wal"
	"sopr/internal/wire"
)

// FollowerConfig tunes a replica.
type FollowerConfig struct {
	// Primary is the leader soprd's address (host:port). Required; Follow
	// re-points it at failover.
	Primary string
	// DataDir, when set, makes the follower durable: every applied stream
	// record is written into its own wal.Log before the engine applies it,
	// and checkpoint bootstraps seed the log. A durable follower restarts
	// from local state, and after promotion it is a full WAL-shipping
	// source that siblings can re-point to. Empty keeps the follower
	// in-memory (PR 6 behavior: rejoin from LSN 0 after a restart).
	DataDir string
	// FS routes the durable follower's log through an alternate filesystem
	// (fault-injection tests); nil uses the real one.
	FS wal.FS
	// SyncFollowers, on a promoted durable follower, is the number of
	// follower acks each commit waits for before acknowledging (0 = async).
	SyncFollowers int
	// SyncTimeout bounds the synchronous-commit wait (default 2s); on
	// timeout the commit degrades to an async ack with Synced=false.
	SyncTimeout time.Duration
	// Heartbeat configures the follower's own Source (durable mode).
	Heartbeat time.Duration
	// SelectTriggers and MaxRuleTransitions mirror the primary's engine
	// options; they only matter after promotion (replay runs with rules
	// disabled regardless).
	SelectTriggers     bool
	MaxRuleTransitions int
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// StreamTimeout is the silence tolerated on the stream before the
	// follower reconnects (default 10s; the primary heartbeats every
	// second when idle).
	StreamTimeout time.Duration
	// AckInterval is the progress-ack cadence (default 200ms). Acks are
	// sent on this timer whenever the applied LSN moved — including when
	// the stream then went idle — so the source's retention pin releases
	// promptly instead of waiting for the next record or heartbeat.
	AckInterval time.Duration
	// ReconnectMin/ReconnectMax bound the reconnect backoff
	// (defaults 100ms / 5s).
	ReconnectMin, ReconnectMax time.Duration
	// MaxFrame caps inbound stream frames (default wire.ReplMaxFrame).
	MaxFrame int
	// Logf receives follower log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c *FollowerConfig) fill() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.StreamTimeout <= 0 {
		c.StreamTimeout = 10 * time.Second
	}
	if c.AckInterval <= 0 {
		c.AckInterval = 200 * time.Millisecond
	}
	if c.ReconnectMin <= 0 {
		c.ReconnectMin = 100 * time.Millisecond
	}
	if c.ReconnectMax <= 0 {
		c.ReconnectMax = 5 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = wire.ReplMaxFrame
	}
	if c.SyncTimeout <= 0 {
		c.SyncTimeout = 2 * time.Second
	}
}

// Follower is a replica: an engine kept current by replaying the leader's
// WAL stream with rule processing disabled — the same replay crash
// recovery runs, so the state cannot diverge from what the leader
// committed. It implements the server backend interface; Exec returns
// ErrReadOnly (or FencedError after a fencing step-down) until Promote
// flips the node writable.
//
// An in-memory follower keeps no local log: a restarted one rejoins from
// LSN 0 and the leader bootstraps it from its newest checkpoint image. A
// durable follower (DataDir) persists the stream into its own wal.Log and
// recovers from it at startup; after promotion it appends an epoch record,
// attaches the log to its engine, and serves as a WAL-shipping source for
// re-pointed siblings.
type Follower struct {
	cfg FollowerConfig
	log *wal.Log // nil in-memory
	src *Source  // non-nil when durable: serves joins over log

	// mu guards the engine: stream apply and promoted writes take it
	// exclusively, queries/dumps/stats share it (the same discipline as
	// SynchronizedDB on the primary). Promote takes it to exclude an
	// in-flight apply while it appends the epoch record.
	mu  sync.RWMutex
	eng *engine.Engine

	// smu guards replication status, separate from mu so stats and
	// read-your-writes waits never queue behind a large apply. Lock order:
	// mu before smu (never the reverse).
	smu        sync.Mutex
	applied    uint64
	primaryLSN uint64
	epoch      uint64 // epoch of the local history (join token)
	known      uint64 // highest epoch observed anywhere (>= epoch)
	fencedBy   uint64 // epoch that forced a step-down; 0 when not fenced
	leader     string // current upstream address
	connected  bool
	promoted   bool
	appliedCh  chan struct{} // closed on each applied/promoted change

	resets       int64 // reset-and-rebootstrap cycles
	discarded    int64 // locally-held records dropped by resets
	syncTimeouts int64 // degraded synchronous commits

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	wake     chan struct{} // nudges Run out of parking/backoff

	connMu sync.Mutex
	conn   net.Conn // live stream connection, closed by Close/Promote/Follow
}

// NewFollower builds a replica targeting cfg.Primary, recovering local
// state from cfg.DataDir when set. Call Run to start the stream loop.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	cfg.fill()
	f := &Follower{
		cfg:    cfg,
		leader: cfg.Primary,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		wake:   make(chan struct{}, 1),
	}
	if cfg.DataDir == "" {
		f.eng = engine.New(f.engineConfig())
		return f, nil
	}
	l, rec, err := wal.Open(cfg.DataDir, wal.Options{FS: cfg.FS})
	if err != nil {
		return nil, fmt.Errorf("repl: open follower log: %w", err)
	}
	// Recover exactly as OpenDurable does, but leave the WAL detached:
	// stream applies are already in the log (AppendRaw precedes the engine
	// apply), so the engine must not re-log them. Promote attaches it.
	eng := engine.New(f.engineConfig())
	if rec.Checkpoint != nil {
		if err := eng.LoadCheckpoint(rec.Checkpoint); err != nil {
			_ = l.Close()
			return nil, fmt.Errorf("repl: recover follower %s: %w", cfg.DataDir, err)
		}
	}
	for _, r := range rec.Records {
		if err := eng.ReplayRecord(r); err != nil {
			_ = l.Close()
			return nil, fmt.Errorf("repl: recover follower %s: %w", cfg.DataDir, err)
		}
	}
	eng.PublishSnapshot()
	f.log, f.eng = l, eng
	f.applied = l.NextLSN() - 1
	f.primaryLSN = f.applied
	f.epoch = l.Epoch()
	f.known = l.Epoch()
	f.src = NewSource(l, SourceConfig{Heartbeat: cfg.Heartbeat, OnFenced: f.ObserveEpoch, Logf: cfg.Logf})
	return f, nil
}

// newFollowerShared wraps an existing engine and log — a demoted primary's
// — as a follower. The engine keeps its attached WAL (replay never
// re-logs), and the demoted node keeps serving its existing Source.
func newFollowerShared(cfg FollowerConfig, eng *engine.Engine, l *wal.Log, src *Source, knownEpoch uint64) *Follower {
	cfg.fill()
	f := &Follower{
		cfg:    cfg,
		log:    l,
		src:    src,
		eng:    eng,
		leader: cfg.Primary,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		wake:   make(chan struct{}, 1),
	}
	f.applied = l.NextLSN() - 1
	f.primaryLSN = f.applied
	f.epoch = l.Epoch()
	f.known = knownEpoch
	if f.epoch > f.known {
		f.known = f.epoch
	}
	return f
}

func (f *Follower) engineConfig() engine.Config {
	return engine.Config{
		EnableSelectTriggers: f.cfg.SelectTriggers,
		MaxRuleTransitions:   f.cfg.MaxRuleTransitions,
	}
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// ReplSource exposes the follower's own stream source (durable mode): the
// server serves MsgReplJoin sessions through it, which is how re-pointed
// siblings resume from a promoted follower. Nil on an in-memory follower.
func (f *Follower) ReplSource() *Source { return f.src }

// Run drives the stream: dial the current leader, join, apply until the
// session drops, back off, rejoin from the applied LSN. A promoted node
// parks until Follow demotes it (or Close). Run returns when Close is
// called.
func (f *Follower) Run() {
	defer close(f.done)
	backoff := f.cfg.ReconnectMin
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		if f.Promoted() {
			select {
			case <-f.stop:
				return
			case <-f.wake:
			}
			continue
		}
		leader := f.Leader()
		nc, err := net.DialTimeout("tcp", leader, f.cfg.DialTimeout)
		if err == nil {
			f.setConn(nc)
			start := f.AppliedLSN()
			err = f.stream(nc)
			_ = nc.Close()
			f.setConn(nil)
			f.setConnected(false)
			if f.AppliedLSN() > start {
				backoff = f.cfg.ReconnectMin // the session made progress
			}
		}
		if err != nil && !f.Promoted() {
			f.logf("repl: stream to %s: %v", leader, err)
		}
		select {
		case <-f.stop:
			return
		case <-f.wake:
			// Re-pointed, demoted, or promoted: re-evaluate immediately.
			backoff = f.cfg.ReconnectMin
			continue
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > f.cfg.ReconnectMax {
			backoff = f.cfg.ReconnectMax
		}
	}
}

func (f *Follower) wakeLoop() {
	select {
	case f.wake <- struct{}{}:
	default:
	}
}

// stream runs one session: join at the applied LSN with the local
// history's epoch, then decode and apply frames until the connection
// breaks, the leader goes silent, or the leader turns out to be stale.
func (f *Follower) stream(nc net.Conn) error {
	f.smu.Lock()
	from, hist := f.applied, f.epoch
	f.smu.Unlock()
	if err := nc.SetWriteDeadline(time.Now().Add(f.cfg.StreamTimeout)); err != nil {
		return err
	}
	if err := wire.WriteMessage(nc, wire.MsgReplJoin, &wire.ReplJoinRequest{FromLSN: from, Epoch: hist}, f.cfg.MaxFrame); err != nil {
		return fmt.Errorf("join: %w", err)
	}

	var snap []wal.CkptPart // in-flight checkpoint bootstrap

	// Acks share the connection with this loop's reads only, but two
	// writers exist: the forced acks below and the idle ticker goroutine.
	var ackMu sync.Mutex
	acked := from
	sendAck := func(force bool) error {
		ackMu.Lock()
		defer ackMu.Unlock()
		f.smu.Lock()
		app, known := f.applied, f.known
		f.smu.Unlock()
		if app == acked && !force {
			return nil
		}
		if err := nc.SetWriteDeadline(time.Now().Add(f.cfg.StreamTimeout)); err != nil {
			return err
		}
		if err := wire.WriteMessage(nc, wire.MsgReplAck, &wire.ReplAck{LSN: app, Epoch: known}, f.cfg.MaxFrame); err != nil {
			return fmt.Errorf("ack: %w", err)
		}
		acked = app
		return nil
	}

	// The ack ticker keeps the source's retention pin moving even when no
	// new frame prompts an ack — without it, rapid applies followed by an
	// idle stream leave the last rate-limited ack unsent until the next
	// heartbeat, pinning WAL segments the whole while.
	tickStop := make(chan struct{})
	defer close(tickStop)
	go func() {
		t := time.NewTicker(f.cfg.AckInterval)
		defer t.Stop()
		for {
			select {
			case <-tickStop:
				return
			case <-t.C:
				if err := sendAck(false); err != nil {
					_ = nc.Close() // surface on the main read loop
					return
				}
			}
		}
	}()

	for {
		if err := nc.SetReadDeadline(time.Now().Add(f.cfg.StreamTimeout)); err != nil {
			return err
		}
		typ, payload, err := wire.ReadFrame(nc, f.cfg.MaxFrame)
		if err != nil {
			return fmt.Errorf("read stream: %w", err)
		}
		msg, err := wire.DecodeReplStream(typ, payload)
		if err != nil {
			return err
		}
		f.setConnected(true)
		switch m := msg.(type) {
		case *wire.ErrorResponse:
			switch m.Code {
			case wire.CodeDiverged:
				// Our history forked from this leader's (an unshipped
				// suffix, or state restored from an older backup). Drop
				// everything and rebuild from its checkpoint on rejoin.
				f.reset()
				return fmt.Errorf("leader reports divergence (%s); reset for re-bootstrap", m.Message)
			case wire.CodeFenced:
				// We fenced the source: it is staler than our own history.
				// Disconnect; Follow will re-point us at the real leader.
				return fmt.Errorf("source is stale (our epoch fences it): %s", m.Message)
			}
			return fmt.Errorf("leader refused stream: %s: %s", m.Code, m.Message)
		case *wire.ReplSnapFrame:
			snap = append(snap, wal.CkptPart{Kind: m.Kind, Payload: m.Payload})
			if m.Kind == wal.KindCkptEnd {
				if err := f.installSnapshot(snap); err != nil {
					f.reset()
					return fmt.Errorf("install snapshot: %w", err)
				}
				snap = nil
				if err := sendAck(true); err != nil {
					return err
				}
			}
		case *wire.ReplRecord:
			if snap != nil {
				return fmt.Errorf("record lsn %d arrived inside a snapshot", m.LSN)
			}
			if m.Epoch != 0 && m.Epoch < f.KnownEpoch() {
				return fmt.Errorf("stream record from stale epoch %d (cluster is at %d); disconnecting", m.Epoch, f.KnownEpoch())
			}
			if err := f.applyRecord(m); err != nil {
				return err
			}
			if err := sendAck(false); err != nil {
				return err
			}
		case *wire.ReplHeartbeat:
			if m.Epoch != 0 && m.Epoch < f.KnownEpoch() {
				return fmt.Errorf("heartbeat from stale epoch %d (cluster is at %d); disconnecting", m.Epoch, f.KnownEpoch())
			}
			f.setPrimaryLSN(m.LSN)
			if err := sendAck(true); err != nil {
				return err
			}
		}
	}
}

// installSnapshot replaces the engine with one rebuilt from checkpoint
// parts, exactly as crash recovery loads a checkpoint image. A durable
// follower first seeds its own log with the image (InstallCheckpoint), so
// its local history carries the same coverage — and epoch table — as the
// leader's.
func (f *Follower) installSnapshot(parts []wal.CkptPart) error {
	ck, err := wal.AssembleCheckpoint(parts)
	if err != nil {
		return err
	}
	if f.log != nil {
		if _, err := f.log.InstallCheckpoint(parts); err != nil {
			return err
		}
	}
	eng := engine.New(f.engineConfig())
	if err := eng.LoadCheckpoint(ck); err != nil {
		return err
	}
	f.mu.Lock()
	f.eng = eng
	f.mu.Unlock()
	f.smu.Lock()
	if f.log != nil {
		f.epoch = f.log.Epoch()
	} else {
		// The image's epoch is at most the leader's; in-memory followers
		// learn the exact value from in-band epoch records.
		f.epoch = 0
	}
	if f.epoch > f.known {
		f.known = f.epoch
	}
	f.smu.Unlock()
	f.advanceTo(ck.Meta.LSN)
	f.setPrimaryLSN(ck.Meta.LSN)
	f.logf("repl: installed checkpoint image at lsn %d", ck.Meta.LSN)
	return nil
}

// applyRecord replays one WAL record, enforcing LSN continuity. A durable
// follower appends the record to its own log before the engine applies it
// (log-before-apply: a crash between the two replays the record from the
// local log at restart). An apply failure resets the follower: partial
// application of a composed net effect cannot be reconciled in place, but
// a checkpoint re-bootstrap always can.
func (f *Follower) applyRecord(m *wire.ReplRecord) error {
	want := f.AppliedLSN() + 1
	if m.LSN != want {
		return fmt.Errorf("stream gap: got record lsn %d, want %d", m.LSN, want)
	}
	rec, err := wal.RawRecord{LSN: m.LSN, Kind: m.Kind, Payload: m.Payload}.Decode()
	if err != nil {
		return fmt.Errorf("decode record lsn %d: %w", m.LSN, err)
	}
	f.mu.Lock()
	if f.Promoted() {
		f.mu.Unlock()
		return fmt.Errorf("promoted mid-stream; discarding record lsn %d", m.LSN)
	}
	if f.log != nil {
		if err := f.log.AppendRaw(wal.RawRecord{LSN: m.LSN, Kind: m.Kind, Payload: m.Payload}); err != nil {
			f.mu.Unlock()
			f.reset()
			return fmt.Errorf("append record lsn %d to local log failed; reset for re-bootstrap: %w", m.LSN, err)
		}
	}
	err = f.eng.ReplayRecord(rec)
	if err == nil {
		// Publish per applied record so snapshot-based reads (Query, Dump,
		// Stats) see replicated state as it arrives. This re-freezes the
		// touched tables — the next record pays one copy-on-write clone —
		// which is the price of per-record read visibility; bulk recovery
		// paths publish once at the end instead (see engine.ReplayRecord).
		f.eng.PublishSnapshot()
	}
	f.mu.Unlock()
	if err != nil {
		f.reset()
		return fmt.Errorf("apply record lsn %d failed; reset for re-bootstrap: %w", m.LSN, err)
	}
	if rec.Kind == wal.KindEpoch {
		f.smu.Lock()
		if rec.Epoch.Epoch > f.epoch {
			f.epoch = rec.Epoch.Epoch
		}
		if rec.Epoch.Epoch > f.known {
			f.known = rec.Epoch.Epoch
		}
		f.smu.Unlock()
		f.logf("repl: adopted epoch %d at lsn %d", rec.Epoch.Epoch, m.LSN)
	}
	f.advanceTo(m.LSN)
	f.setPrimaryLSN(m.LSN)
	return nil
}

// reset discards all replayed state — including a durable follower's
// local log — so the next join starts from LSN 0 (checkpoint bootstrap).
// Discarded records are the loud report the tentpole demands: a returning
// primary's unshipped suffix dies here, visibly.
func (f *Follower) reset() {
	f.smu.Lock()
	discarded := f.applied
	f.smu.Unlock()
	if f.log != nil {
		if err := f.log.Reset(); err != nil {
			f.logf("repl: RESET FAILED to clear local log: %v (follower may be unable to recover locally)", err)
		}
	}
	eng := engine.New(f.engineConfig())
	f.mu.Lock()
	f.eng = eng
	f.mu.Unlock()
	f.smu.Lock()
	f.applied = 0
	f.primaryLSN = 0
	f.epoch = 0
	f.resets++
	f.discarded += int64(discarded)
	f.smu.Unlock()
	if discarded > 0 {
		f.logf("repl: RESET discarded %d locally-held records (history diverged from the leader); rebootstrapping from scratch", discarded)
	}
}

func (f *Follower) setConn(nc net.Conn) {
	f.connMu.Lock()
	f.conn = nc
	f.connMu.Unlock()
}

func (f *Follower) closeConn() {
	f.connMu.Lock()
	if f.conn != nil {
		_ = f.conn.Close()
	}
	f.connMu.Unlock()
}

func (f *Follower) setConnected(v bool) {
	f.smu.Lock()
	f.connected = v
	f.smu.Unlock()
}

func (f *Follower) setPrimaryLSN(lsn uint64) {
	f.smu.Lock()
	if lsn > f.primaryLSN {
		f.primaryLSN = lsn
	}
	f.smu.Unlock()
}

// advanceTo publishes a new applied LSN and wakes read-your-writes
// waiters.
func (f *Follower) advanceTo(lsn uint64) {
	f.smu.Lock()
	if lsn > f.applied {
		f.applied = lsn
	}
	if f.appliedCh != nil {
		close(f.appliedCh)
		f.appliedCh = nil
	}
	f.smu.Unlock()
}

// AppliedLSN reports the last LSN this follower has applied.
func (f *Follower) AppliedLSN() uint64 {
	f.smu.Lock()
	defer f.smu.Unlock()
	return f.applied
}

// CurrentLSN implements the server's LSN-token capability: on a replica
// it is the applied LSN.
func (f *Follower) CurrentLSN() uint64 { return f.AppliedLSN() }

// Leader reports the current upstream address.
func (f *Follower) Leader() string {
	f.smu.Lock()
	defer f.smu.Unlock()
	return f.leader
}

// KnownEpoch reports the highest promotion epoch this node has observed.
func (f *Follower) KnownEpoch() uint64 {
	f.smu.Lock()
	defer f.smu.Unlock()
	return f.known
}

// Epoch implements the server's epoch-gate capability.
func (f *Follower) Epoch() uint64 { return f.KnownEpoch() }

// ObserveEpoch records that epoch e exists somewhere in the cluster. A
// promoted node seeing an epoch above its own steps down on the spot: it
// stops accepting writes (FencedError) until Follow re-integrates it
// under the new leader. An in-memory promoted node also resets — its
// post-promotion state was never shipped anywhere and cannot be
// reconciled.
func (f *Follower) ObserveEpoch(e uint64) {
	f.smu.Lock()
	if e <= f.known {
		f.smu.Unlock()
		return
	}
	f.known = e
	steppedDown := f.promoted
	if steppedDown {
		f.promoted = false
		f.fencedBy = e
	}
	f.smu.Unlock()
	if steppedDown {
		f.logf("repl: FENCED by epoch %d; stepping down (writes refused until re-pointed at the new leader)", e)
		if f.log == nil {
			f.reset()
		}
		f.closeConn()
		f.wakeLoop()
	}
}

// WaitForLSN blocks until the follower has applied lsn, the timeout
// elapses (LagError), or the node is promoted (a promoted node is the
// freshest state there is).
func (f *Follower) WaitForLSN(lsn uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		f.smu.Lock()
		if f.promoted || f.applied >= lsn {
			f.smu.Unlock()
			return nil
		}
		have := f.applied
		if f.appliedCh == nil {
			f.appliedCh = make(chan struct{})
		}
		ch := f.appliedCh
		f.smu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return &LagError{Need: lsn, Have: have}
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
		}
	}
}

// Promoted reports whether this node currently accepts writes.
func (f *Follower) Promoted() bool {
	f.smu.Lock()
	defer f.smu.Unlock()
	return f.promoted
}

// Promote detaches the node from its leader and makes it writable in a
// new epoch: max(epoch, highest seen + 1), so epochs never move backward.
// A durable follower appends the epoch record to its own log and attaches
// the log to its engine — from here on it is a complete primary: commits
// are logged, siblings can join its Source, sync-commit applies. An
// in-memory follower promotes too (rules re-enabled, logical-clock LSNs)
// but ships no WAL: a failover stopgap, its siblings go stale.
// The returned epoch is the one actually opened.
func (f *Follower) Promote(epoch uint64) (uint64, error) {
	f.mu.Lock() // exclude an in-flight stream apply
	f.smu.Lock()
	if f.promoted {
		cur := f.known
		f.smu.Unlock()
		f.mu.Unlock()
		return cur, nil
	}
	newEpoch := f.known + 1
	if epoch > newEpoch {
		newEpoch = epoch
	}
	f.smu.Unlock()
	if f.log != nil {
		if _, err := f.log.AppendEpoch(newEpoch); err != nil {
			f.mu.Unlock()
			return 0, fmt.Errorf("repl: promote: %w", err)
		}
		if f.eng.WAL() == nil {
			f.eng.AttachWAL(f.log)
		}
	}
	f.mu.Unlock()
	f.smu.Lock()
	f.promoted = true
	f.fencedBy = 0
	f.epoch = newEpoch
	f.known = newEpoch
	if f.log != nil {
		if lsn := f.log.NextLSN() - 1; lsn > f.applied {
			f.applied = lsn
		}
	}
	if f.appliedCh != nil {
		close(f.appliedCh) // wake read-your-writes waiters
		f.appliedCh = nil
	}
	f.smu.Unlock()
	f.closeConn()
	f.wakeLoop()
	f.logf("repl: PROMOTED at lsn %d, epoch %d (durable=%v)", f.AppliedLSN(), newEpoch, f.log != nil)
	return newEpoch, nil
}

// Follow makes this node a follower of leader in the given epoch. On a
// replica it re-points the stream (the failover path for a promoted
// durable sibling: resume from the applied LSN instead of going stale).
// On a promoted node it is a demotion order and requires a strictly newer
// epoch; the local log keeps only the prefix the new leader shares — any
// unshipped suffix is discarded on the divergence reset that follows.
func (f *Follower) Follow(leader string, epoch uint64) error {
	f.smu.Lock()
	if epoch < f.known || (f.promoted && epoch <= f.known) {
		cur := f.known
		f.smu.Unlock()
		return &StaleEpochError{Epoch: cur}
	}
	wasPromoted := f.promoted
	f.promoted = false
	f.fencedBy = 0
	if epoch > f.known {
		f.known = epoch
	}
	oldLeader := f.leader
	f.leader = leader
	f.smu.Unlock()
	if wasPromoted {
		f.logf("repl: DEMOTED into follower of %s at epoch %d; any unshipped suffix will be truncated on rejoin", leader, epoch)
		if f.log == nil {
			// An in-memory promoted node's post-promotion state was never
			// shipped; only a full rebuild can align it with the new leader.
			f.reset()
		}
	} else if oldLeader != leader {
		f.logf("repl: re-pointing stream from %s to %s (epoch %d)", oldLeader, leader, epoch)
	}
	f.closeConn()
	f.wakeLoop()
	return nil
}

// Checkpoint writes the follower's state as a checkpoint image into its
// own log (durable mode), pruning shipped segments and refreshing the
// bootstrap image it can serve to siblings.
func (f *Follower) Checkpoint() error {
	if f.log == nil {
		return fmt.Errorf("repl: in-memory follower has no log to checkpoint")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.eng.CheckpointTo(f.log)
}

// Close stops the stream loop and waits for it to exit, then closes the
// local log (durable mode).
func (f *Follower) Close() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.closeConn()
	<-f.done
	if f.log != nil {
		if err := f.log.Close(); err != nil {
			f.logf("repl: close follower log: %v", err)
		}
	}
}

// --- server backend ---

// Exec rejects writes until the node is promoted (FencedError when the
// refusal is due to a fencing step-down); after promotion it executes the
// script with full rule processing, like a primary, and — durable, with
// SyncFollowers configured — holds the ack until enough followers confirm.
func (f *Follower) Exec(src string) (*sopr.Result, error) {
	f.smu.Lock()
	promoted, fencedBy := f.promoted, f.fencedBy
	f.smu.Unlock()
	if !promoted {
		if fencedBy != 0 {
			return nil, &FencedError{Epoch: fencedBy}
		}
		return nil, ErrReadOnly
	}
	var before uint64
	if f.log != nil {
		before = f.log.NextLSN() - 1
	}
	f.mu.Lock()
	txn, err := f.eng.Exec(src)
	f.mu.Unlock()
	if f.log != nil {
		f.advanceTo(f.log.NextLSN() - 1)
	} else {
		// Keep the logical clock moving: each write advances the promoted
		// node's LSN so read-your-writes tokens issued here are strictly
		// newer than anything the old primary's other replicas have
		// applied — an in-memory promoted node ships no WAL, so those
		// replicas are permanently stale and must answer such tokens with
		// CodeLagging, not old data.
		f.advanceTo(f.AppliedLSN() + 1)
	}
	res := resultFromTxn(txn)
	if err == nil && res != nil && f.log != nil && f.src != nil && f.cfg.SyncFollowers > 0 {
		if lsn := f.log.NextLSN() - 1; lsn > before {
			if f.src.WaitForAcks(lsn, f.cfg.SyncFollowers, f.cfg.SyncTimeout) {
				res.Synced = true
			} else {
				f.smu.Lock()
				f.syncTimeouts++
				f.smu.Unlock()
				f.logf("repl: WARNING sync-commit wait for %d follower ack(s) at lsn %d timed out after %v; acking async",
					f.cfg.SyncFollowers, lsn, f.cfg.SyncTimeout)
			}
		}
	}
	return res, wrapParse(err)
}

// Query runs a read-only query against the replayed state.
func (f *Follower) Query(src string) (*sopr.Rows, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	res, err := f.eng.QueryString(src)
	if err != nil {
		return nil, wrapParse(err)
	}
	return rowsFromExec(res), nil
}

// Dump writes the replayed state as an executable script.
func (f *Follower) Dump(w io.Writer) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.eng.Dump(w)
}

// Stats reports engine counters for the replayed state. (A follower's
// engine only replays; the group-commit counters stay zero — its own
// log's appends are synced by the apply loop, not a commit queue.)
func (f *Follower) Stats() sopr.Stats {
	f.mu.RLock()
	defer f.mu.RUnlock()
	s := f.eng.Stats()
	return sopr.Stats{
		Committed:           s.Committed,
		RolledBack:          s.RolledBack,
		ExternalTransitions: s.ExternalTransitions,
		RuleConsiderations:  s.RuleConsiderations,
		RuleFirings:         s.RuleFirings,
		IndexLookups:        s.IndexLookups,
		HeapScans:           s.HeapScans,
		WALAppends:          s.WALAppends,
		WALBytes:            s.WALBytes,
		RecoveredRecords:    s.RecoveredRecords,
		Checkpoints:         s.Checkpoints,
		GroupCommits:        s.WALGroupCommits,
		GroupedTxns:         s.WALGroupedTxns,
		PlannedQueries:      s.PlannedQueries,
		PlanProbeFallbacks:  s.PlanProbeFallbacks,
	}
}

// ReplStats reports the node's replication position, epoch, and lag.
func (f *Follower) ReplStats() *wire.ReplStats {
	f.smu.Lock()
	st := &wire.ReplStats{
		Role:             "replica",
		LSN:              f.applied,
		PrimaryLSN:       f.primaryLSN,
		Connected:        f.connected,
		Promoted:         f.promoted,
		Epoch:            f.known,
		Durable:          f.log != nil,
		Fenced:           f.fencedBy != 0,
		Leader:           f.leader,
		Resets:           f.resets,
		DiscardedRecords: f.discarded,
		SyncTimeouts:     f.syncTimeouts,
	}
	if f.primaryLSN > f.applied {
		st.Lag = int64(f.primaryLSN - f.applied)
	}
	promoted := f.promoted
	f.smu.Unlock()
	if promoted {
		st.Role = "primary"
		st.Leader = ""
		st.PrimaryLSN, st.Lag = 0, 0
		if f.src != nil {
			ss := f.src.Stats()
			st.Followers, st.MinFollowerLSN = ss.Followers, ss.MinFollowerLSN
			st.SyncFollowers = f.cfg.SyncFollowers
		}
	}
	return st
}
