package repl

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"sopr/internal/wire"
)

// TestApplyRecordRejectsGaps: a record whose LSN is not exactly
// applied+1 means the stream skipped or repeated something — the
// follower must refuse it rather than apply out of order.
func TestApplyRecordRejectsGaps(t *testing.T) {
	f, err := NewFollower(FollowerConfig{Primary: "unused:0"})
	if err != nil {
		t.Fatal(err)
	}
	rec := func(lsn uint64) *wire.ReplRecord {
		payload, _ := json.Marshal(map[string]any{"last_handle": lsn})
		return &wire.ReplRecord{LSN: lsn, Kind: 1, Payload: payload}
	}
	if err := f.applyRecord(rec(3)); err == nil {
		t.Fatal("gap (first record lsn 3, want 1) accepted")
	}
	if err := f.applyRecord(rec(1)); err != nil {
		t.Fatalf("in-order record rejected: %v", err)
	}
	if err := f.applyRecord(rec(1)); err == nil {
		t.Fatal("repeated lsn 1 accepted")
	}
	if got := f.AppliedLSN(); got != 1 {
		t.Fatalf("applied = %d, want 1", got)
	}
}

// TestApplyFailureResets: a record that decodes but cannot be applied
// leaves the follower reset to lsn 0, forcing a checkpoint re-bootstrap
// instead of serving half-applied state.
func TestApplyFailureResets(t *testing.T) {
	f, err := NewFollower(FollowerConfig{Primary: "unused:0"})
	if err != nil {
		t.Fatal(err)
	}
	// A DDL record whose script is garbage fails replay.
	payload, _ := json.Marshal(map[string]any{"sql": "definitely not sql ;"})
	if err := f.applyRecord(&wire.ReplRecord{LSN: 1, Kind: 2, Payload: payload}); err == nil {
		t.Fatal("unreplayable record accepted")
	}
	if got := f.AppliedLSN(); got != 0 {
		t.Fatalf("applied = %d after failed apply, want 0 (reset)", got)
	}
}

func TestWaitForLSN(t *testing.T) {
	f, err := NewFollower(FollowerConfig{Primary: "unused:0"})
	if err != nil {
		t.Fatal(err)
	}
	// Timeout path: the typed lag error carries both positions.
	err = f.WaitForLSN(5, 20*time.Millisecond)
	var le *LagError
	if !errors.As(err, &le) || le.Need != 5 || le.Have != 0 {
		t.Fatalf("WaitForLSN = %v, want LagError{Need:5, Have:0}", err)
	}
	// Wake path: an advance past the floor releases the waiter.
	done := make(chan error, 1)
	go func() { done <- f.WaitForLSN(2, 5*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	f.advanceTo(2)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitForLSN after advance: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitForLSN never woke after advance")
	}
	// Promotion path: a promoted node satisfies any floor immediately.
	if _, err := f.Promote(0); err != nil {
		t.Fatal(err)
	}
	if err := f.WaitForLSN(1_000_000, 10*time.Millisecond); err != nil {
		t.Fatalf("WaitForLSN on promoted node = %v, want nil", err)
	}
}

func TestExecReadOnlyUntilPromoted(t *testing.T) {
	f, err := NewFollower(FollowerConfig{Primary: "unused:0"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Exec(`create table t (a int);`); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Exec before promotion = %v, want ErrReadOnly", err)
	}
	if _, err := f.Promote(0); err != nil {
		t.Fatal(err)
	}
	if !f.Promoted() {
		t.Fatal("Promoted() false after Promote")
	}
	if _, err := f.Exec(`create table t (a int);`); err != nil {
		t.Fatalf("Exec after promotion: %v", err)
	}
	if st := f.ReplStats(); st.Role != "primary" || !st.Promoted {
		t.Fatalf("promoted stats = %+v", st)
	}
}
