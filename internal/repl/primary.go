package repl

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"sopr"
	"sopr/internal/wal"
	"sopr/internal/wire"
)

// PrimaryConfig tunes the leader-side server backend.
type PrimaryConfig struct {
	// SyncFollowers is the number of follower acks each commit waits for
	// before the client is acknowledged (0 = asynchronous replication).
	SyncFollowers int
	// SyncTimeout bounds the synchronous-commit wait (default 2s); on
	// timeout the commit degrades to an async ack: the write is durable
	// locally and the response carries Synced=false.
	SyncTimeout time.Duration
	// Source tunes the WAL stream source (heartbeat cadence, ack timeout).
	Source SourceConfig
	// Follower tunes the follower this node becomes if it is demoted
	// (reconnect backoff, stream timeouts); its Primary and DataDir fields
	// are ignored — the demoted follower shares this node's engine and log.
	Follower FollowerConfig
	// Logf receives primary log lines; nil discards them.
	Logf func(format string, args ...any)
}

// Primary wraps a durable sopr.DB as the leader-side server backend. On
// top of the plain synchronized database it adds the failover machinery:
//
//   - fencing: when any channel (an exec request, a stream join, a
//     follower ack) reveals a promotion epoch above this log's, the node
//     stops accepting writes — Exec returns the typed FencedError — so a
//     zombie primary on the losing side of a partition cannot extend a
//     history the cluster has moved past.
//   - synchronous commit: with SyncFollowers > 0, Exec holds the client's
//     ack until that many followers have acknowledged the commit's LSN.
//   - demotion: Follow turns the node into a follower of the new leader,
//     sharing the same engine and log. The rejoin truncates (by reset and
//     re-bootstrap) any suffix the new leader's history does not share.
type Primary struct {
	cfg PrimaryConfig
	db  *sopr.DB
	sdb *sopr.SynchronizedDB
	log *wal.Log
	src *Source

	mu           sync.Mutex
	fencedAt     uint64    // epoch that fenced this node; 0 while leading
	demoted      *Follower // non-nil after Follow: all traffic routes here
	syncTimeouts int64

	// execWG counts in-flight writes against the shared engine; demotion
	// waits on it so the follower never races a still-running Exec.
	execWG sync.WaitGroup
}

// NewPrimary wraps an open durable database for serving. The database
// must have a write-ahead log (OpenDurable); the wrapped DB must not be
// used directly afterwards.
func NewPrimary(db *sopr.DB, cfg PrimaryConfig) (*Primary, error) {
	l := db.WALLog()
	if l == nil {
		return nil, errors.New("repl: primary requires a durable database (no WAL attached)")
	}
	if cfg.SyncTimeout <= 0 {
		cfg.SyncTimeout = 2 * time.Second
	}
	p := &Primary{cfg: cfg, db: db, sdb: sopr.Synchronized(db), log: l}
	scfg := cfg.Source
	scfg.OnFenced = p.ObserveEpoch
	if scfg.Logf == nil {
		scfg.Logf = cfg.Logf
	}
	p.src = NewSource(l, scfg)
	return p, nil
}

func (p *Primary) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// DB exposes the synchronized database for leader-local plumbing (init
// scripts, tracing). Routing Exec through it bypasses fencing and
// sync-commit; servers must use the Primary itself as the backend.
func (p *Primary) DB() *sopr.SynchronizedDB { return p.sdb }

// ReplSource exposes the WAL stream source for MsgReplJoin sessions.
func (p *Primary) ReplSource() *Source { return p.src }

// backend returns the demoted follower, or nil while this node leads.
func (p *Primary) backend() *Follower {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.demoted
}

// Epoch reports the highest promotion epoch this node has observed — its
// own log's, or the fencing epoch once one has been seen.
func (p *Primary) Epoch() uint64 {
	if f := p.backend(); f != nil {
		return f.KnownEpoch()
	}
	p.mu.Lock()
	fenced := p.fencedAt
	p.mu.Unlock()
	if e := p.log.Epoch(); e > fenced {
		return e
	}
	return fenced
}

// ObserveEpoch records that epoch e exists in the cluster. Seeing one
// above this log's fences the node: writes refuse with FencedError until
// Follow demotes it under the new leader.
func (p *Primary) ObserveEpoch(e uint64) {
	p.mu.Lock()
	if f := p.demoted; f != nil {
		p.mu.Unlock()
		f.ObserveEpoch(e)
		return
	}
	if e <= p.log.Epoch() || e <= p.fencedAt {
		p.mu.Unlock()
		return
	}
	p.fencedAt = e
	p.mu.Unlock()
	p.logf("repl: FENCED by epoch %d (local epoch %d); refusing writes until demoted under the new leader", e, p.log.Epoch())
}

// Promote on a leading node is mostly a no-op (it is already primary);
// with an explicit target epoch above the log's it opens that epoch,
// un-fencing the node — the cluster-client path for re-electing a healed
// ex-primary. On a demoted node it delegates to the inner follower.
func (p *Primary) Promote(epoch uint64) (uint64, error) {
	p.mu.Lock()
	if f := p.demoted; f != nil {
		p.mu.Unlock()
		return f.Promote(epoch)
	}
	cur := p.log.Epoch()
	if p.fencedAt == 0 && epoch <= cur {
		p.mu.Unlock()
		return cur, nil
	}
	newEpoch := cur + 1
	if p.fencedAt >= newEpoch {
		newEpoch = p.fencedAt + 1
	}
	if epoch > newEpoch {
		newEpoch = epoch
	}
	if _, err := p.log.AppendEpoch(newEpoch); err != nil {
		p.mu.Unlock()
		return 0, fmt.Errorf("repl: promote: %w", err)
	}
	p.fencedAt = 0
	p.mu.Unlock()
	p.logf("repl: PROMOTED (re-opened leadership) at epoch %d", newEpoch)
	return newEpoch, nil
}

// Follow demotes this node into a follower of leader at the given epoch,
// which must be strictly newer than anything in the local history. All
// in-flight writes drain first; from then on every request routes through
// the demoted follower, which rejoins the new leader from its applied LSN
// — discarding, loudly, any suffix the new leader does not share.
func (p *Primary) Follow(leader string, epoch uint64) error {
	p.mu.Lock()
	if f := p.demoted; f != nil {
		p.mu.Unlock()
		return f.Follow(leader, epoch)
	}
	cur := p.log.Epoch()
	if epoch <= cur || epoch < p.fencedAt {
		have := cur
		if p.fencedAt > have {
			have = p.fencedAt
		}
		p.mu.Unlock()
		return &StaleEpochError{Epoch: have}
	}
	// Fence before draining: no new Exec can start, and none can be
	// running once execWG settles — the follower takes the engine cold.
	p.fencedAt = epoch
	p.mu.Unlock()
	p.execWG.Wait()

	fcfg := p.cfg.Follower
	fcfg.Primary = leader
	fcfg.DataDir, fcfg.FS = "", nil
	fcfg.SyncFollowers = p.cfg.SyncFollowers
	fcfg.SyncTimeout = p.cfg.SyncTimeout
	if fcfg.Logf == nil {
		fcfg.Logf = p.cfg.Logf
	}
	f := newFollowerShared(fcfg, p.db.Engine(), p.log, p.src, epoch)
	p.mu.Lock()
	p.demoted = f
	p.mu.Unlock()
	go f.Run()
	p.logf("repl: DEMOTED into follower of %s at epoch %d; any unshipped suffix will be truncated on rejoin", leader, epoch)
	return nil
}

// Exec runs a write through the engine, then (with SyncFollowers set)
// holds the ack until enough followers confirm the commit's LSN. A fenced
// node refuses with FencedError; a demoted one routes to its follower.
func (p *Primary) Exec(src string) (*sopr.Result, error) {
	return p.execSync(
		func(f *Follower) (*sopr.Result, error) { return f.Exec(src) },
		func() (*sopr.Result, error) { return p.sdb.Exec(src) },
	)
}

// ExecBatch runs a batch of statements as one operation block (see
// sopr.DB.ExecBatch) behind the same fencing gate and synchronous-commit
// ack hold as Exec: the whole block is one commit record, so a sync-commit
// cluster pays one follower-ack wait per batch instead of per statement.
func (p *Primary) ExecBatch(stmts []string) (*sopr.Result, error) {
	return p.execSync(
		// A demoted node routes to its follower, which refuses writes with
		// the typed read-only error; joining the batch gives it one script
		// to refuse.
		func(f *Follower) (*sopr.Result, error) { return f.Exec(strings.Join(stmts, ";\n")) },
		func() (*sopr.Result, error) { return p.sdb.ExecBatch(stmts) },
	)
}

// execSync is the shared write wrapper: the fencing gate, in-flight write
// accounting (demotion drains it), and the synchronous-commit ack hold.
func (p *Primary) execSync(onFollower func(*Follower) (*sopr.Result, error), run func() (*sopr.Result, error)) (*sopr.Result, error) {
	p.mu.Lock()
	if f := p.demoted; f != nil {
		p.mu.Unlock()
		return onFollower(f)
	}
	if p.fencedAt > 0 {
		e := p.fencedAt
		p.mu.Unlock()
		return nil, &FencedError{Epoch: e}
	}
	p.execWG.Add(1)
	p.mu.Unlock()
	defer p.execWG.Done()

	before := p.log.NextLSN() - 1
	res, err := run()
	if err != nil || res == nil || p.cfg.SyncFollowers <= 0 {
		return res, err
	}
	if lsn := p.log.NextLSN() - 1; lsn > before {
		if p.src.WaitForAcks(lsn, p.cfg.SyncFollowers, p.cfg.SyncTimeout) {
			res.Synced = true
		} else {
			p.mu.Lock()
			p.syncTimeouts++
			p.mu.Unlock()
			p.logf("repl: WARNING sync-commit wait for %d follower ack(s) at lsn %d timed out after %v; acking async",
				p.cfg.SyncFollowers, lsn, p.cfg.SyncTimeout)
		}
	}
	return res, nil
}

// Query serves reads from the committed snapshot (or the demoted
// follower's replayed state).
func (p *Primary) Query(src string) (*sopr.Rows, error) {
	if f := p.backend(); f != nil {
		return f.Query(src)
	}
	return p.sdb.Query(src)
}

// Dump writes the committed state as an executable script.
func (p *Primary) Dump(w io.Writer) error {
	if f := p.backend(); f != nil {
		return f.Dump(w)
	}
	return p.sdb.Dump(w)
}

// Stats reports engine counters.
func (p *Primary) Stats() sopr.Stats {
	if f := p.backend(); f != nil {
		return f.Stats()
	}
	return p.sdb.Stats()
}

// CurrentLSN reports the last durable LSN (the read-your-writes token).
func (p *Primary) CurrentLSN() uint64 {
	if f := p.backend(); f != nil {
		return f.CurrentLSN()
	}
	return p.sdb.CurrentLSN()
}

// WaitForLSN implements read-your-writes waits; a leading primary is
// always current, a demoted node waits on its follower's applied LSN.
func (p *Primary) WaitForLSN(lsn uint64, timeout time.Duration) error {
	if f := p.backend(); f != nil {
		return f.WaitForLSN(lsn, timeout)
	}
	return nil
}

// Checkpoint writes a checkpoint image and prunes shipped segments.
func (p *Primary) Checkpoint() error {
	if f := p.backend(); f != nil {
		return f.Checkpoint()
	}
	return p.sdb.Checkpoint()
}

// Recovered reports whether the wrapped database recovered prior state.
func (p *Primary) Recovered() bool { return p.sdb.Recovered() }

// Close shuts the node down: a demoted node stops its follower loop (which
// closes the shared log); a leading one closes the database.
func (p *Primary) Close() error {
	if f := p.backend(); f != nil {
		f.Close()
		return nil
	}
	return p.sdb.Close()
}

// ReplStats reports the node's replication state.
func (p *Primary) ReplStats() *wire.ReplStats {
	if f := p.backend(); f != nil {
		return f.ReplStats()
	}
	st := p.src.Stats()
	p.mu.Lock()
	st.Fenced = p.fencedAt > 0
	if p.fencedAt > st.Epoch {
		st.Epoch = p.fencedAt
	}
	st.SyncFollowers = p.cfg.SyncFollowers
	st.SyncTimeouts = p.syncTimeouts
	p.mu.Unlock()
	return st
}
