// Package repl implements WAL-shipping streaming replication: one durable
// primary ships its write-ahead log to followers over the wire transport,
// with epoch-fenced failover and optional synchronous commit.
//
// The design leans entirely on the durability layer's determinism argument
// (paper Definition 2.1, Section 4): the log records the composed net
// effect of each committed transaction, and replaying net effects with
// rule processing disabled cannot diverge no matter how rule selection
// would have gone. A replica is therefore just a process that runs crash
// recovery forever — it bootstraps from the newest checkpoint image,
// applies the record stream in LSN order with rules disabled, and serves
// queries from the resulting state. The primary keeps the paper's single
// write stream (Section 2.1); replicas multiply read capacity.
//
// Failover keeps that stream single under partitions with promotion
// epochs (wal.EpochRecord): every promotion appends an epoch record to
// the new leader's log, and the epoch travels on exec requests, stream
// records, and acks. A node that sees a higher epoch than its own fences
// itself — its writes answer the typed FencedError until it is demoted
// (Follow) into the new leader's follower, truncating any unshipped
// suffix (reported loudly in stats). A durable follower (FollowerConfig
// .DataDir) persists the stream into its own wal.Log, so after promotion
// it serves as a WAL-shipping source itself and its former siblings
// re-point to it and resume from their applied LSN.
//
// Source is the leader side: it serves stream sessions from an open
// wal.Log, pinning WAL retention at the slowest connected follower,
// refusing joins from diverged histories (the epoch table makes the check
// exact), and releasing synchronous commits as follower acks arrive.
// Follower is the replica side: a reconnecting apply loop plus the server
// backend (Exec is rejected with ErrReadOnly until promotion). Primary
// wraps a durable sopr.DB as the leader-side server backend, adding
// fencing, sync-commit waits, and demotion into a shared-engine Follower.
package repl

import (
	"errors"
	"fmt"

	"sopr"
	"sopr/internal/engine"
	"sopr/internal/exec"
	"sopr/internal/sqlparse"
	"sopr/internal/value"
)

// ErrReadOnly rejects writes on a replica. The server maps it to the wire
// protocol's CodeReadOnly so clients can route the write to the primary.
var ErrReadOnly = errors.New("repl: replica is read-only; writes go to the primary")

// LagError reports that a read-your-writes wait timed out: the replica
// had applied Have when the caller needed Need. The server maps it to
// CodeLagging; clients retry on a less-lagged endpoint or the primary.
type LagError struct {
	Need, Have uint64
}

func (e *LagError) Error() string {
	return fmt.Sprintf("repl: replica at lsn %d has not reached lsn %d", e.Have, e.Need)
}

// FencedError rejects a write on a node that observed a promotion epoch
// higher than its own: the cluster elected a new leader and this node's
// writes can no longer join the single ordered stream. The server maps it
// to CodeFenced with the fencing epoch so clients re-probe immediately.
type FencedError struct {
	Epoch uint64 // the epoch that fenced this node
}

func (e *FencedError) Error() string {
	return fmt.Sprintf("repl: node fenced by epoch %d; writes go to the new leader", e.Epoch)
}

// StaleEpochError rejects a request carrying an epoch older than the
// node's own: the caller's cluster view is out of date. The server maps
// it to CodeStaleEpoch with the node's epoch.
type StaleEpochError struct {
	Epoch uint64 // the node's current epoch
}

func (e *StaleEpochError) Error() string {
	return fmt.Sprintf("repl: request epoch is older than node epoch %d", e.Epoch)
}

// rowsFromExec converts an executor result into the public Rows type, the
// same cell mapping the sopr package applies to local query results.
func rowsFromExec(res *exec.Result) *sopr.Rows {
	if res == nil {
		return nil
	}
	data := make([][]any, 0, len(res.Rows))
	for _, row := range res.Rows {
		vals := make([]any, len(row))
		for i, v := range row {
			switch v.Kind() {
			case value.KindNull:
				vals[i] = nil
			case value.KindInt:
				vals[i] = v.Int()
			case value.KindFloat:
				vals[i] = v.Float()
			case value.KindString:
				vals[i] = v.Str()
			case value.KindBool:
				vals[i] = v.Bool()
			}
		}
		data = append(data, vals)
	}
	return sopr.NewRows(res.Columns, data)
}

// resultFromTxn converts an engine transaction result into the public
// Result type (used by a promoted follower's write path).
func resultFromTxn(txn *engine.TxnResult) *sopr.Result {
	if txn == nil {
		return nil
	}
	res := &sopr.Result{RolledBack: txn.RolledBack, RollbackRule: txn.RollbackRule}
	for _, f := range txn.Firings {
		res.Firings = append(res.Firings, sopr.Firing{Rule: f.Rule, Effect: f.Effect})
	}
	for _, q := range txn.Queries {
		res.Results = append(res.Results, rowsFromExec(q))
	}
	return res
}

// wrapParse converts internal syntax errors to the public ParseError, as
// the sopr package does for local execution, so the server reports the
// offending line for scripts rejected by a replica.
func wrapParse(err error) error {
	var se *sqlparse.SyntaxError
	if errors.As(err, &se) {
		return &sopr.ParseError{Line: se.Line, Col: se.Col, Msg: se.Msg}
	}
	return err
}
