// Package repl implements WAL-shipping streaming replication: one durable
// primary ships its write-ahead log to any number of in-memory read
// replicas over the wire transport.
//
// The design leans entirely on the durability layer's determinism argument
// (paper Definition 2.1, Section 4): the log records the composed net
// effect of each committed transaction, and replaying net effects with
// rule processing disabled cannot diverge no matter how rule selection
// would have gone. A replica is therefore just a process that runs crash
// recovery forever — it bootstraps from the newest checkpoint image,
// applies the record stream in LSN order with rules disabled, and serves
// queries from the resulting state. The primary keeps the paper's single
// write stream (Section 2.1); replicas multiply read capacity.
//
// Source is the primary side: it serves stream sessions from an open
// wal.Log, pinning WAL retention at the slowest connected follower so
// checkpoint pruning never deletes a segment a lagging stream still
// needs. Follower is the replica side: a reconnecting apply loop plus the
// read-only server backend (Exec is rejected with ErrReadOnly until the
// follower is promoted).
package repl

import (
	"errors"
	"fmt"

	"sopr"
	"sopr/internal/engine"
	"sopr/internal/exec"
	"sopr/internal/sqlparse"
	"sopr/internal/value"
)

// ErrReadOnly rejects writes on a replica. The server maps it to the wire
// protocol's CodeReadOnly so clients can route the write to the primary.
var ErrReadOnly = errors.New("repl: replica is read-only; writes go to the primary")

// LagError reports that a read-your-writes wait timed out: the replica
// had applied Have when the caller needed Need. The server maps it to
// CodeLagging; clients retry on a less-lagged endpoint or the primary.
type LagError struct {
	Need, Have uint64
}

func (e *LagError) Error() string {
	return fmt.Sprintf("repl: replica at lsn %d has not reached lsn %d", e.Have, e.Need)
}

// rowsFromExec converts an executor result into the public Rows type, the
// same cell mapping the sopr package applies to local query results.
func rowsFromExec(res *exec.Result) *sopr.Rows {
	if res == nil {
		return nil
	}
	data := make([][]any, 0, len(res.Rows))
	for _, row := range res.Rows {
		vals := make([]any, len(row))
		for i, v := range row {
			switch v.Kind() {
			case value.KindNull:
				vals[i] = nil
			case value.KindInt:
				vals[i] = v.Int()
			case value.KindFloat:
				vals[i] = v.Float()
			case value.KindString:
				vals[i] = v.Str()
			case value.KindBool:
				vals[i] = v.Bool()
			}
		}
		data = append(data, vals)
	}
	return sopr.NewRows(res.Columns, data)
}

// resultFromTxn converts an engine transaction result into the public
// Result type (used by a promoted follower's write path).
func resultFromTxn(txn *engine.TxnResult) *sopr.Result {
	if txn == nil {
		return nil
	}
	res := &sopr.Result{RolledBack: txn.RolledBack, RollbackRule: txn.RollbackRule}
	for _, f := range txn.Firings {
		res.Firings = append(res.Firings, sopr.Firing{Rule: f.Rule, Effect: f.Effect})
	}
	for _, q := range txn.Queries {
		res.Results = append(res.Results, rowsFromExec(q))
	}
	return res
}

// wrapParse converts internal syntax errors to the public ParseError, as
// the sopr package does for local execution, so the server reports the
// offending line for scripts rejected by a replica.
func wrapParse(err error) error {
	var se *sqlparse.SyntaxError
	if errors.As(err, &se) {
		return &sopr.ParseError{Line: se.Line, Col: se.Col, Msg: se.Msg}
	}
	return err
}
