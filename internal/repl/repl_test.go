// End-to-end replication tests: a real durable primary serving stream
// sessions, real followers replaying them, and real clients routing
// around them. The invariant under test everywhere: a follower's state at
// LSN n is byte-identical (as a dump) to the primary's state at LSN n, no
// matter how the stream got there — live tail, checkpoint bootstrap,
// kill/rejoin, primary restart, or a connection that keeps dying mid-frame.
package repl_test

import (
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sopr"
	"sopr/client"
	"sopr/internal/repl"
	"sopr/internal/server"
	"sopr/internal/wire"
)

const testSchema = `
create table emp (name string, dno int, sal int, bonus int);
create rule raise when inserted into emp
then update emp set bonus = 100 where name in (select name from inserted emp) end;
`

// primary is a durable soprd-shaped node under test.
type primary struct {
	addr string
	sdb  *sopr.SynchronizedDB
	db   *sopr.DB
	srv  *server.Server
}

func startPrimary(t *testing.T, dir string) *primary {
	t.Helper()
	db, err := sopr.OpenDurable(dir)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	sdb := sopr.Synchronized(db)
	src := repl.NewSource(db.WALLog(), repl.SourceConfig{Heartbeat: 50 * time.Millisecond, Logf: t.Logf})
	srv := server.New(sdb, server.Config{Repl: src, ReplWaitTimeout: 2 * time.Second})
	ln, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go srv.Serve(ln)
	p := &primary{addr: ln.Addr().String(), sdb: sdb, db: db, srv: srv}
	t.Cleanup(func() { p.stop(t) })
	return p
}

// restart brings a stopped primary back on its old address and data dir.
func restartPrimary(t *testing.T, dir, addr string) *primary {
	t.Helper()
	db, err := sopr.OpenDurable(dir)
	if err != nil {
		t.Fatalf("reopen durable: %v", err)
	}
	sdb := sopr.Synchronized(db)
	src := repl.NewSource(db.WALLog(), repl.SourceConfig{Heartbeat: 50 * time.Millisecond, Logf: t.Logf})
	srv := server.New(sdb, server.Config{Repl: src, ReplWaitTimeout: 2 * time.Second})
	var ln net.Listener
	deadline := time.Now().Add(10 * time.Second)
	for {
		ln, err = server.Listen(addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("relisten on %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	go srv.Serve(ln)
	p := &primary{addr: addr, sdb: sdb, db: db, srv: srv}
	t.Cleanup(func() { p.stop(t) })
	return p
}

func (p *primary) stop(t *testing.T) {
	t.Helper()
	if p.srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = p.srv.Shutdown(ctx)
	_ = p.sdb.Close()
	p.srv = nil
}

func (p *primary) exec(t *testing.T, src string) *sopr.Result {
	t.Helper()
	res, err := p.sdb.Exec(src)
	if err != nil {
		t.Fatalf("primary exec: %v", err)
	}
	return res
}

func (p *primary) dump(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	if err := p.sdb.Dump(&b); err != nil {
		t.Fatalf("primary dump: %v", err)
	}
	return b.String()
}

// replica is a follower plus the server that fronts it.
type replica struct {
	addr string
	fl   *repl.Follower
	srv  *server.Server
}

func startReplica(t *testing.T, primaryAddr string) *replica {
	t.Helper()
	fl, err := repl.NewFollower(repl.FollowerConfig{
		Primary:      primaryAddr,
		ReconnectMin: 10 * time.Millisecond,
		ReconnectMax: 250 * time.Millisecond,
		AckInterval:  10 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("NewFollower: %v", err)
	}
	go fl.Run()
	srv := server.New(fl, server.Config{ReplWaitTimeout: 500 * time.Millisecond})
	ln, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go srv.Serve(ln)
	r := &replica{addr: ln.Addr().String(), fl: fl, srv: srv}
	t.Cleanup(func() { r.stop(t) })
	return r
}

func (r *replica) stop(t *testing.T) {
	t.Helper()
	if r.srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = r.srv.Shutdown(ctx)
	r.fl.Close()
	r.srv = nil
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitCaughtUp(t *testing.T, r *replica, lsn uint64) {
	t.Helper()
	waitFor(t, fmt.Sprintf("replica to reach lsn %d (at %d)", lsn, r.fl.AppliedLSN()),
		func() bool { return r.fl.AppliedLSN() >= lsn })
}

func TestFollowerStreamsAndServesReads(t *testing.T) {
	p := startPrimary(t, t.TempDir())
	p.exec(t, testSchema)
	p.exec(t, `insert into emp values ('jane', 1, 60000, 0);`)
	r := startReplica(t, p.addr)
	waitCaughtUp(t, r, p.db.CurrentLSN())

	c, err := client.Dial(r.addr)
	if err != nil {
		t.Fatalf("dial replica: %v", err)
	}
	defer c.Close()

	// Reads are served, and the rule's effect (bonus 100) arrived via the
	// composed net effect — the replica never ran the rule itself.
	rows, err := c.Query(`select name, bonus from emp;`)
	if err != nil {
		t.Fatalf("query replica: %v", err)
	}
	if len(rows.Data) != 1 || rows.Data[0][1].(int64) != 100 {
		t.Fatalf("replica rows = %+v", rows.Data)
	}

	// Writes are refused with the typed read-only code.
	if _, err := c.Exec(`insert into emp values ('bob', 1, 50000, 0);`); !client.IsRemote(err, client.CodeReadOnly) {
		t.Fatalf("exec on replica = %v, want remote %s", err, client.CodeReadOnly)
	}

	// Stats carry the replica's position.
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Repl == nil || st.Repl.Role != "replica" || st.Repl.LSN != p.db.CurrentLSN() {
		t.Fatalf("replica repl stats = %+v", st.Repl)
	}

	// Dump equality at the same LSN: the acceptance bar for convergence.
	got, err := c.Dump()
	if err != nil {
		t.Fatalf("dump replica: %v", err)
	}
	if want := p.dump(t); got != want {
		t.Fatalf("replica dump diverges from primary:\n--- primary ---\n%s\n--- replica ---\n%s", want, got)
	}

	// The primary sees the follower and pins retention at its position.
	pst, err := client.Dial(p.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pst.Close()
	waitFor(t, "primary to report the follower caught up", func() bool {
		s, err := pst.Stats()
		return err == nil && s.Repl != nil && s.Repl.Followers == 1 && s.Repl.MinFollowerLSN == p.db.CurrentLSN()
	})
}

// TestCheckpointBootstrap covers the snapshot path: the follower joins
// after the records it would need were pruned by a checkpoint, so the
// primary ships its checkpoint image first, then the tail.
func TestCheckpointBootstrap(t *testing.T) {
	p := startPrimary(t, t.TempDir())
	p.exec(t, testSchema)
	for i := 0; i < 10; i++ {
		p.exec(t, fmt.Sprintf(`insert into emp values ('e%d', %d, 1000, 0);`, i, i))
	}
	// Checkpoint rotates and prunes: LSN 1 is no longer in any segment.
	if err := p.sdb.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	p.exec(t, `insert into emp values ('late', 99, 1, 0);`) // tail after the image

	r := startReplica(t, p.addr)
	waitCaughtUp(t, r, p.db.CurrentLSN())
	var b strings.Builder
	if err := r.fl.Dump(&b); err != nil {
		t.Fatalf("replica dump: %v", err)
	}
	if want := p.dump(t); b.String() != want {
		t.Fatal("replica dump diverges from primary after checkpoint bootstrap")
	}
	if st := r.fl.ReplStats(); !st.Connected || st.Lag != 0 {
		t.Fatalf("replica stats after catch-up = %+v", st)
	}
}

// TestFollowerKillRejoin kills a caught-up follower, keeps writing, and
// brings up a replacement that must bootstrap from scratch and converge.
func TestFollowerKillRejoin(t *testing.T) {
	p := startPrimary(t, t.TempDir())
	p.exec(t, testSchema)
	p.exec(t, `insert into emp values ('a', 1, 1, 0);`)
	r := startReplica(t, p.addr)
	waitCaughtUp(t, r, p.db.CurrentLSN())
	r.stop(t) // follower dies; its pin is released

	p.exec(t, `insert into emp values ('b', 2, 2, 0);`)
	if err := p.sdb.Checkpoint(); err != nil { // prune past the dead follower
		t.Fatalf("checkpoint: %v", err)
	}
	p.exec(t, `insert into emp values ('c', 3, 3, 0);`)

	r2 := startReplica(t, p.addr)
	waitCaughtUp(t, r2, p.db.CurrentLSN())
	var b strings.Builder
	if err := r2.fl.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != p.dump(t) {
		t.Fatal("rejoined replica diverges from primary")
	}
}

// TestPrimaryRestartFollowerReconnects restarts the primary under a live
// follower: the follower must ride out the outage and resume from its
// applied LSN (no re-bootstrap needed — the records survive in the WAL).
func TestPrimaryRestartFollowerReconnects(t *testing.T) {
	dir := t.TempDir()
	p := startPrimary(t, dir)
	p.exec(t, testSchema)
	p.exec(t, `insert into emp values ('a', 1, 1, 0);`)
	r := startReplica(t, p.addr)
	waitCaughtUp(t, r, p.db.CurrentLSN())

	addr := p.addr
	p.stop(t)
	p2 := restartPrimary(t, dir, addr)
	p2.exec(t, `insert into emp values ('b', 2, 2, 0);`)
	waitCaughtUp(t, r, p2.db.CurrentLSN())
	var b strings.Builder
	if err := r.fl.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != p2.dump(t) {
		t.Fatal("replica diverges from restarted primary")
	}
}

func TestReadYourWrites(t *testing.T) {
	p := startPrimary(t, t.TempDir())
	p.exec(t, testSchema)
	r := startReplica(t, p.addr)
	waitCaughtUp(t, r, p.db.CurrentLSN())

	pc, err := client.Dial(p.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	rc, err := client.Dial(r.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	res, err := pc.Exec(`insert into emp values ('rw', 5, 5, 0);`)
	if err != nil {
		t.Fatal(err)
	}
	if res.LSN == 0 {
		t.Fatal("durable exec returned no LSN token")
	}
	// The replica read with the token must include the write, even if the
	// stream has not delivered it at the moment the query arrives.
	rows, err := rc.QueryAt(`select name from emp where name = 'rw';`, res.LSN)
	if err != nil {
		t.Fatalf("QueryAt(min %d): %v", res.LSN, err)
	}
	if len(rows.Data) != 1 {
		t.Fatalf("read-your-writes returned %d rows", len(rows.Data))
	}
	// A floor the replica can never reach within the wait bound comes back
	// as the typed lagging error.
	if _, err := rc.QueryAt(`select name from emp;`, res.LSN+1000); !client.IsRemote(err, client.CodeLagging) {
		t.Fatalf("unreachable MinLSN = %v, want remote %s", err, client.CodeLagging)
	}
}

func TestPromoteMakesReplicaWritable(t *testing.T) {
	p := startPrimary(t, t.TempDir())
	p.exec(t, testSchema)
	p.exec(t, `insert into emp values ('a', 1, 1, 0);`)
	r := startReplica(t, p.addr)
	waitCaughtUp(t, r, p.db.CurrentLSN())

	c, err := client.Dial(r.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	// Writable now — and rules fire again (bonus set by the raise rule).
	res, err := c.Exec(`insert into emp values ('new', 9, 9, 0);`)
	if err != nil {
		t.Fatalf("exec after promote: %v", err)
	}
	if len(res.Firings) == 0 {
		t.Fatal("no rule firing on promoted node; rules must re-enable after promotion")
	}
	rows, err := c.Query(`select bonus from emp where name = 'new';`)
	if err != nil || len(rows.Data) != 1 || rows.Data[0][0].(int64) != 100 {
		t.Fatalf("promoted write visible = %+v, err %v", rows, err)
	}
	st, err := c.Stats()
	if err != nil || st.Repl == nil || !st.Repl.Promoted {
		t.Fatalf("promoted stats = %+v, err %v", st.Repl, err)
	}
	// Promoting a primary is refused.
	pc, err := client.Dial(p.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if err := pc.Promote(); !client.IsRemote(err, "") {
		t.Fatalf("promote on primary = %v, want remote error", err)
	}
}

func TestJoinRefusedOffPrimary(t *testing.T) {
	// A replica does not serve streams: joining one is a typed refusal.
	p := startPrimary(t, t.TempDir())
	p.exec(t, testSchema)
	r := startReplica(t, p.addr)
	waitCaughtUp(t, r, p.db.CurrentLSN())

	nc, err := net.Dial("tcp", r.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.WriteMessage(nc, wire.MsgReplJoin, &wire.ReplJoinRequest{}, wire.DefaultMaxFrame); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(nc, wire.DefaultMaxFrame)
	if err != nil || typ != wire.MsgError {
		t.Fatalf("join on replica: typ %#x, err %v", typ, err)
	}
	var er wire.ErrorResponse
	if err := wire.Unmarshal(payload, &er); err != nil || er.Code != wire.CodeNotPrimary {
		t.Fatalf("join on replica = %+v, want %s", er, wire.CodeNotPrimary)
	}
}

// chaosProxy sits between a follower and its primary and kills each
// stream session after a byte budget, cutting connections mid-frame. The
// budget grows per session so the follower always eventually converges.
type chaosProxy struct {
	ln      net.Listener
	target  string
	budget  atomic.Int64
	killed  atomic.Int64
	stopped atomic.Bool
}

func startChaosProxy(t *testing.T, target string) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cp := &chaosProxy{ln: ln, target: target}
	cp.budget.Store(64) // first session dies inside the very first frames
	go cp.run()
	t.Cleanup(func() {
		cp.stopped.Store(true)
		ln.Close()
	})
	return cp
}

func (cp *chaosProxy) addr() string { return cp.ln.Addr().String() }

func (cp *chaosProxy) run() {
	for {
		down, err := cp.ln.Accept()
		if err != nil {
			return
		}
		go cp.session(down)
	}
}

func (cp *chaosProxy) session(down net.Conn) {
	defer down.Close()
	up, err := net.Dial("tcp", cp.target)
	if err != nil {
		return
	}
	defer up.Close()
	budget := cp.budget.Load()
	cp.budget.Store(budget * 4)
	go func() { _, _ = io.Copy(up, down) }() // acks flow freely upstream
	// Downstream stops mid-byte-stream at the budget: a torn frame from
	// the follower's point of view.
	_, _ = io.CopyN(down, up, budget)
	if !cp.stopped.Load() {
		cp.killed.Add(1)
	}
}

// TestTornStreamNeverDiverges is the fault-injection acceptance test: a
// stream that keeps dying mid-frame (including inside the checkpoint
// bootstrap) must never leave the follower divergent or wedged — every
// session either resumes or re-bootstraps, and the follower converges to
// a byte-identical dump.
func TestTornStreamNeverDiverges(t *testing.T) {
	p := startPrimary(t, t.TempDir())
	p.exec(t, testSchema)
	for i := 0; i < 8; i++ {
		p.exec(t, fmt.Sprintf(`insert into emp values ('pre%d', %d, 100, 0);`, i, i))
	}
	if err := p.sdb.Checkpoint(); err != nil { // force the bootstrap path through the proxy
		t.Fatal(err)
	}

	cp := startChaosProxy(t, p.addr)
	r := startReplica(t, cp.addr())

	// Keep writing while sessions are being killed.
	for i := 0; i < 8; i++ {
		p.exec(t, fmt.Sprintf(`insert into emp values ('live%d', %d, 200, 0);`, i, i))
		time.Sleep(10 * time.Millisecond)
	}

	waitCaughtUp(t, r, p.db.CurrentLSN())
	if cp.killed.Load() == 0 {
		t.Fatal("chaos proxy never killed a session; the test exercised nothing")
	}
	var b strings.Builder
	if err := r.fl.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != p.dump(t) {
		t.Fatal("follower diverged after torn streams")
	}
	t.Logf("converged after %d killed sessions", cp.killed.Load())
}
