package repl

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"sopr/internal/wal"
	"sopr/internal/wire"
)

// SourceConfig tunes the primary side of replication.
type SourceConfig struct {
	// Heartbeat is how often an idle stream sends MsgReplHeartbeat
	// (default 1s). Followers size their read deadlines from it.
	Heartbeat time.Duration
	// WriteTimeout bounds each stream frame write (default 30s).
	WriteTimeout time.Duration
	// AckTimeout bounds the silence tolerated on the upstream ack channel
	// (default 10x Heartbeat, at least 30s). A follower that stops acking
	// is disconnected so it cannot pin WAL retention forever.
	AckTimeout time.Duration
	// BatchBytes caps the payload bytes read per ReadRaw call
	// (default 1 MiB).
	BatchBytes int
	// Logf receives stream-session log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c *SourceConfig) fill() {
	if c.Heartbeat <= 0 {
		c.Heartbeat = time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 10 * c.Heartbeat
		if c.AckTimeout < 30*time.Second {
			c.AckTimeout = 30 * time.Second
		}
	}
	if c.BatchBytes <= 0 {
		c.BatchBytes = 1 << 20
	}
}

// Source serves WAL stream sessions from a primary's open log. One Source
// is shared by every follower connection; each ServeConn call runs one
// session, holding a retention Pin that tracks the follower's
// acknowledged position so checkpoint pruning never deletes a segment the
// stream still needs (the log keeps every record at or after the minimum
// pin across sessions).
type Source struct {
	log *wal.Log
	cfg SourceConfig

	mu       sync.Mutex
	sessions map[*session]struct{}
}

// session is the per-follower accounting visible in Stats.
type session struct {
	addr  string
	acked uint64 // last LSN the follower acknowledged
}

// NewSource wraps an open WAL log for stream serving.
func NewSource(log *wal.Log, cfg SourceConfig) *Source {
	cfg.fill()
	return &Source{log: log, cfg: cfg, sessions: make(map[*session]struct{})}
}

func (s *Source) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Stats reports the primary's replication state: its durable LSN, the
// number of connected stream sessions, and the minimum acknowledged LSN
// across them (the current retention horizon).
func (s *Source) Stats() *wire.ReplStats {
	st := &wire.ReplStats{Role: "primary", LSN: s.log.NextLSN() - 1}
	s.mu.Lock()
	defer s.mu.Unlock()
	st.Followers = len(s.sessions)
	first := true
	for sess := range s.sessions {
		if first || sess.acked < st.MinFollowerLSN {
			st.MinFollowerLSN = sess.acked
			first = false
		}
	}
	return st
}

// write sends one stream frame under the write deadline.
func (s *Source) write(nc net.Conn, typ byte, v any) error {
	if err := nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err != nil {
		return err
	}
	return wire.WriteMessage(nc, typ, v, wire.ReplMaxFrame)
}

func (s *Source) writeError(nc net.Conn, code, format string, args ...any) error {
	return s.write(nc, wire.MsgError, &wire.ErrorResponse{Code: code, Message: fmt.Sprintf(format, args...)})
}

// ServeConn runs one stream session on nc after a MsgReplJoin whose
// FromLSN was from (the last LSN the follower applied; 0 for a fresh
// replica). It sends a checkpoint bootstrap when from+1 was pruned, then
// streams records in LSN order with heartbeats when idle, advancing the
// session's retention pin as acknowledgements arrive. It returns when the
// connection fails or the follower goes silent past AckTimeout; the
// caller closes nc.
func (s *Source) ServeConn(nc net.Conn, from uint64) error {
	last := s.log.NextLSN() - 1
	if from > last {
		// The follower applied records this log never wrote. Streaming from
		// here could silently fork history, so refuse loudly; the follower
		// resets and rejoins from zero.
		_ = s.writeError(nc, wire.CodeDiverged,
			"follower at lsn %d is ahead of the log (last lsn %d)", from, last)
		return fmt.Errorf("follower %s at lsn %d ahead of log (last %d)", nc.RemoteAddr(), from, last)
	}

	next := from + 1
	// Pin before deciding how to start: from this point pruning cannot pass
	// us, so the bootstrap decision below cannot be invalidated by a
	// concurrent checkpoint.
	pin := s.log.NewPin(next)
	defer pin.Release()

	if next < s.log.OldestLSN() {
		parts, ckptLSN, ok, err := s.log.NewestCheckpointRaw()
		if err != nil || !ok {
			// Records before the oldest segment are gone and no checkpoint
			// covers them: nothing can rebuild this follower.
			_ = s.writeError(nc, wire.CodeInternal, "resume lsn %d pruned and no checkpoint available", next)
			return fmt.Errorf("follower %s: resume lsn %d pruned, no checkpoint (err=%v)", nc.RemoteAddr(), next, err)
		}
		for _, part := range parts {
			if err := s.write(nc, wire.MsgReplSnapFrame, &wire.ReplSnapFrame{Kind: part.Kind, Payload: part.Payload}); err != nil {
				return fmt.Errorf("send snapshot: %w", err)
			}
		}
		next = ckptLSN + 1
		pin.Advance(next)
		s.logf("repl: %s bootstrapped from checkpoint lsn %d", nc.RemoteAddr(), ckptLSN)
	}

	sess := &session{addr: nc.RemoteAddr().String(), acked: next - 1}
	s.mu.Lock()
	s.sessions[sess] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.sessions, sess)
		s.mu.Unlock()
	}()

	// The upstream direction runs in its own goroutine: acks advance the
	// retention pin; silence past AckTimeout or any read error ends the
	// session (the caller then closes nc, unblocking our writes).
	ackErr := make(chan error, 1)
	go s.readAcks(nc, sess, pin, ackErr)

	for {
		select {
		case err := <-ackErr:
			return err
		default:
		}
		recs, err := s.log.ReadRaw(next, s.cfg.BatchBytes)
		if err != nil {
			// ErrCompacted cannot happen while our pin holds next; anything
			// here is a real log failure.
			_ = s.writeError(nc, wire.CodeInternal, "log read failed: %v", err)
			return fmt.Errorf("read log at lsn %d: %w", next, err)
		}
		if len(recs) > 0 {
			for _, r := range recs {
				msg := &wire.ReplRecord{LSN: r.LSN, Kind: r.Kind, Payload: r.Payload}
				if err := s.write(nc, wire.MsgReplRecord, msg); err != nil {
					return fmt.Errorf("send record lsn %d: %w", r.LSN, err)
				}
			}
			next = recs[len(recs)-1].LSN + 1
			continue
		}
		// Caught up: park until the next append, but re-check first — a
		// record may have landed between ReadRaw and Appended.
		ch := s.log.Appended()
		if s.log.NextLSN() > next {
			continue
		}
		select {
		case <-ch:
		case <-time.After(s.cfg.Heartbeat):
			if err := s.write(nc, wire.MsgReplHeartbeat, &wire.ReplHeartbeat{LSN: next - 1}); err != nil {
				return fmt.Errorf("send heartbeat: %w", err)
			}
		case err := <-ackErr:
			return err
		}
	}
}

// readAcks consumes the follower's upstream frames, advancing its
// retention pin and lag accounting. It reports on ackErr exactly once.
func (s *Source) readAcks(nc net.Conn, sess *session, pin *wal.Pin, ackErr chan<- error) {
	for {
		if err := nc.SetReadDeadline(time.Now().Add(s.cfg.AckTimeout)); err != nil {
			ackErr <- err
			return
		}
		typ, payload, err := wire.ReadFrame(nc, wire.ReplMaxFrame)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				err = fmt.Errorf("follower silent for %v (no acks): %w", s.cfg.AckTimeout, err)
			}
			ackErr <- err
			return
		}
		if typ != wire.MsgReplAck {
			ackErr <- fmt.Errorf("unexpected %s frame on ack channel", wire.TypeName(typ))
			return
		}
		var ack wire.ReplAck
		if err := wire.Unmarshal(payload, &ack); err != nil {
			ackErr <- err
			return
		}
		s.mu.Lock()
		if ack.LSN > sess.acked {
			sess.acked = ack.LSN
		}
		s.mu.Unlock()
		pin.Advance(ack.LSN + 1)
	}
}
