package repl

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"sopr/internal/wal"
	"sopr/internal/wire"
)

// SourceConfig tunes the leader side of replication.
type SourceConfig struct {
	// Heartbeat is how often an idle stream sends MsgReplHeartbeat
	// (default 1s). Followers size their read deadlines from it.
	Heartbeat time.Duration
	// WriteTimeout bounds each stream frame write (default 30s).
	WriteTimeout time.Duration
	// AckTimeout bounds the silence tolerated on the upstream ack channel
	// (default 10x Heartbeat, at least 30s). A follower that stops acking
	// is disconnected so it cannot pin WAL retention forever.
	AckTimeout time.Duration
	// BatchBytes caps the payload bytes read per ReadRaw call
	// (default 1 MiB).
	BatchBytes int
	// OnFenced is invoked (outside the source mutex) when a join or an ack
	// reveals an epoch higher than this log's: the cluster moved on, and
	// the node owning this source must stop accepting writes. May be nil.
	OnFenced func(epoch uint64)
	// Logf receives stream-session log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c *SourceConfig) fill() {
	if c.Heartbeat <= 0 {
		c.Heartbeat = time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 10 * c.Heartbeat
		if c.AckTimeout < 30*time.Second {
			c.AckTimeout = 30 * time.Second
		}
	}
	if c.BatchBytes <= 0 {
		c.BatchBytes = 1 << 20
	}
}

// Source serves WAL stream sessions from an open log. One Source is shared
// by every follower connection; each ServeConn call runs one session,
// holding a retention Pin that tracks the follower's acknowledged position
// so checkpoint pruning never deletes a segment the stream still needs
// (the log keeps every record at or after the minimum pin across
// sessions). Both a durable primary and a durable follower own a Source —
// the latter serves joins from its own log, which is what lets siblings
// re-point to it after a promotion.
type Source struct {
	log *wal.Log
	cfg SourceConfig

	mu       sync.Mutex
	sessions map[*session]struct{}
	// ackCh is a broadcast channel for synchronous commit: closed and
	// replaced whenever any session's acked LSN advances, waking
	// WaitForAcks callers to re-count.
	ackCh chan struct{}
}

// session is the per-follower accounting visible in Stats.
type session struct {
	addr  string
	acked uint64 // last LSN the follower acknowledged
}

// NewSource wraps an open WAL log for stream serving.
func NewSource(log *wal.Log, cfg SourceConfig) *Source {
	cfg.fill()
	return &Source{log: log, cfg: cfg, sessions: make(map[*session]struct{})}
}

func (s *Source) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Source) fence(epoch uint64) {
	s.logf("repl: observed epoch %d above local epoch %d; fencing", epoch, s.log.Epoch())
	if s.cfg.OnFenced != nil {
		s.cfg.OnFenced(epoch)
	}
}

// Stats reports the source's replication state: its durable LSN and epoch,
// the number of connected stream sessions, and the minimum acknowledged
// LSN across them (the current retention horizon).
func (s *Source) Stats() *wire.ReplStats {
	st := &wire.ReplStats{Role: "primary", LSN: s.log.NextLSN() - 1, Epoch: s.log.Epoch(), Durable: true}
	s.mu.Lock()
	defer s.mu.Unlock()
	st.Followers = len(s.sessions)
	first := true
	for sess := range s.sessions {
		if first || sess.acked < st.MinFollowerLSN {
			st.MinFollowerLSN = sess.acked
			first = false
		}
	}
	return st
}

// ackedCount reports how many connected followers have acknowledged lsn.
func (s *Source) ackedCount(lsn uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for sess := range s.sessions {
		if sess.acked >= lsn {
			n++
		}
	}
	return n
}

// ackWait returns a channel closed the next time any follower ack
// advances (or a session ends).
func (s *Source) ackWait() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ackCh == nil {
		s.ackCh = make(chan struct{})
	}
	return s.ackCh
}

// ackBroadcast wakes WaitForAcks callers. Called whenever a session's
// acked LSN advances or the session set changes.
func (s *Source) ackBroadcast() {
	s.mu.Lock()
	if s.ackCh != nil {
		close(s.ackCh)
		s.ackCh = nil
	}
	s.mu.Unlock()
}

// WaitForAcks blocks until n connected followers have acknowledged lsn or
// the timeout elapses, reporting whether the quorum was met. Synchronous
// commit calls it after the local append: met=true means the record
// survives the loss of this node plus any n-1 of the acking followers.
func (s *Source) WaitForAcks(lsn uint64, n int, timeout time.Duration) bool {
	if n <= 0 {
		return true
	}
	deadline := time.Now().Add(timeout)
	for {
		if s.ackedCount(lsn) >= n {
			return true
		}
		ch := s.ackWait()
		// Re-check after arming the channel: an ack between the count and
		// ackWait would otherwise be missed.
		if s.ackedCount(lsn) >= n {
			return true
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return false
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
			return s.ackedCount(lsn) >= n
		}
	}
}

// write sends one stream frame under the write deadline.
func (s *Source) write(nc net.Conn, typ byte, v any) error {
	if err := nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err != nil {
		return err
	}
	return wire.WriteMessage(nc, typ, v, wire.ReplMaxFrame)
}

func (s *Source) writeError(nc net.Conn, code string, epoch uint64, format string, args ...any) error {
	return s.write(nc, wire.MsgError, &wire.ErrorResponse{Code: code, Epoch: epoch, Message: fmt.Sprintf(format, args...)})
}

// ServeConn runs one stream session on nc after a MsgReplJoin. The join
// carries the follower's applied LSN and the epoch of its local history;
// the pair decides the session's fate exactly:
//
//   - join epoch above ours: we are the stale party. Fence this node and
//     refuse with CodeFenced.
//   - join epoch below ours and the follower's history reaches into an
//     epoch it never saw (FromLSN >= that epoch's boundary): the histories
//     forked. Refuse with CodeDiverged; the follower resets and
//     rebootstraps.
//   - otherwise the follower's history is a prefix of ours: stream from
//     FromLSN+1 (bootstrapping from a checkpoint when that point is
//     pruned). Epoch records travel in-band and the follower adopts them.
//
// It returns when the connection fails or the follower goes silent past
// AckTimeout; the caller closes nc.
func (s *Source) ServeConn(nc net.Conn, join wire.ReplJoinRequest) error {
	from := join.FromLSN
	epoch := s.log.Epoch()
	if join.Epoch > epoch {
		s.fence(join.Epoch)
		_ = s.writeError(nc, wire.CodeFenced, join.Epoch,
			"this log is at epoch %d; follower's history is at epoch %d", epoch, join.Epoch)
		return fmt.Errorf("follower %s at epoch %d fences this log (epoch %d)", nc.RemoteAddr(), join.Epoch, epoch)
	}
	if join.Epoch < epoch {
		boundary, ok := s.log.BoundaryFor(join.Epoch)
		// The claimed history epoch must exist in our own table: a follower
		// at an epoch we never recorded wrote records under a promotion we
		// never saw (racing promoters), so nothing past an empty history is
		// a shared prefix. With the epoch present, the fork test is exact:
		// the follower diverged iff its history reaches the boundary where
		// a newer epoch rewrote those positions.
		if !s.log.HasEpoch(join.Epoch) || (ok && from >= boundary) || (!ok && from > 0) {
			_ = s.writeError(nc, wire.CodeDiverged, epoch,
				"follower history at epoch %d reaches lsn %d, past the epoch boundary %d; histories forked", join.Epoch, from, boundary)
			return fmt.Errorf("follower %s diverged: epoch %d history at lsn %d crosses boundary %d", nc.RemoteAddr(), join.Epoch, from, boundary)
		}
	}
	last := s.log.NextLSN() - 1
	if from > last {
		// The follower applied records this log never wrote. Streaming from
		// here could silently fork history, so refuse loudly; the follower
		// resets and rejoins from zero.
		_ = s.writeError(nc, wire.CodeDiverged, epoch,
			"follower at lsn %d is ahead of the log (last lsn %d)", from, last)
		return fmt.Errorf("follower %s at lsn %d ahead of log (last %d)", nc.RemoteAddr(), from, last)
	}

	next := from + 1
	// Pin before deciding how to start: from this point pruning cannot pass
	// us, so the bootstrap decision below cannot be invalidated by a
	// concurrent checkpoint.
	pin := s.log.NewPin(next)
	defer pin.Release()

	if next < s.log.OldestLSN() {
		parts, ckptLSN, ok, err := s.log.NewestCheckpointRaw()
		if err != nil || !ok {
			// Records before the oldest segment are gone and no checkpoint
			// covers them: nothing can rebuild this follower.
			_ = s.writeError(nc, wire.CodeInternal, 0, "resume lsn %d pruned and no checkpoint available", next)
			return fmt.Errorf("follower %s: resume lsn %d pruned, no checkpoint (err=%v)", nc.RemoteAddr(), next, err)
		}
		for _, part := range parts {
			if err := s.write(nc, wire.MsgReplSnapFrame, &wire.ReplSnapFrame{Kind: part.Kind, Payload: part.Payload}); err != nil {
				return fmt.Errorf("send snapshot: %w", err)
			}
		}
		next = ckptLSN + 1
		pin.Advance(next)
		s.logf("repl: %s bootstrapped from checkpoint lsn %d", nc.RemoteAddr(), ckptLSN)
	}

	sess := &session{addr: nc.RemoteAddr().String(), acked: next - 1}
	s.mu.Lock()
	s.sessions[sess] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.sessions, sess)
		s.mu.Unlock()
		// Wake sync-commit waiters so a lost follower is recounted now
		// rather than at their timeout.
		s.ackBroadcast()
	}()

	// The upstream direction runs in its own goroutine: acks advance the
	// retention pin; silence past AckTimeout or any read error ends the
	// session (the caller then closes nc, unblocking our writes).
	ackErr := make(chan error, 1)
	go s.readAcks(nc, sess, pin, ackErr)

	for {
		select {
		case err := <-ackErr:
			return err
		default:
		}
		recs, err := s.log.ReadRaw(next, s.cfg.BatchBytes)
		if err != nil {
			// ErrCompacted cannot happen while our pin holds next; anything
			// here is a real log failure.
			_ = s.writeError(nc, wire.CodeInternal, 0, "log read failed: %v", err)
			return fmt.Errorf("read log at lsn %d: %w", next, err)
		}
		if len(recs) > 0 {
			epoch = s.log.Epoch()
			for _, r := range recs {
				msg := &wire.ReplRecord{LSN: r.LSN, Kind: r.Kind, Payload: r.Payload, Epoch: epoch}
				if err := s.write(nc, wire.MsgReplRecord, msg); err != nil {
					return fmt.Errorf("send record lsn %d: %w", r.LSN, err)
				}
			}
			next = recs[len(recs)-1].LSN + 1
			continue
		}
		// Caught up: park until the next append, but re-check first — a
		// record may have landed between ReadRaw and Appended.
		ch := s.log.Appended()
		if s.log.NextLSN() > next {
			continue
		}
		select {
		case <-ch:
		case <-time.After(s.cfg.Heartbeat):
			if err := s.write(nc, wire.MsgReplHeartbeat, &wire.ReplHeartbeat{LSN: next - 1, Epoch: s.log.Epoch()}); err != nil {
				return fmt.Errorf("send heartbeat: %w", err)
			}
		case err := <-ackErr:
			return err
		}
	}
}

// readAcks consumes the follower's upstream frames, advancing its
// retention pin, lag accounting, and sync-commit counts. An ack carrying
// an epoch above the log's fences this node. It reports on ackErr exactly
// once.
func (s *Source) readAcks(nc net.Conn, sess *session, pin *wal.Pin, ackErr chan<- error) {
	for {
		if err := nc.SetReadDeadline(time.Now().Add(s.cfg.AckTimeout)); err != nil {
			ackErr <- err
			return
		}
		typ, payload, err := wire.ReadFrame(nc, wire.ReplMaxFrame)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				err = fmt.Errorf("follower silent for %v (no acks): %w", s.cfg.AckTimeout, err)
			}
			ackErr <- err
			return
		}
		if typ != wire.MsgReplAck {
			ackErr <- fmt.Errorf("unexpected %s frame on ack channel", wire.TypeName(typ))
			return
		}
		var ack wire.ReplAck
		if err := wire.Unmarshal(payload, &ack); err != nil {
			ackErr <- err
			return
		}
		if ack.Epoch > s.log.Epoch() {
			s.fence(ack.Epoch)
			ackErr <- fmt.Errorf("follower ack at epoch %d fences this log (epoch %d)", ack.Epoch, s.log.Epoch())
			return
		}
		s.mu.Lock()
		advanced := ack.LSN > sess.acked
		if advanced {
			sess.acked = ack.LSN
		}
		s.mu.Unlock()
		if advanced {
			s.ackBroadcast()
		}
		pin.Advance(ack.LSN + 1)
	}
}
