package rules

// Tests exercising branches that the main test files do not reach:
// SetEffect helpers, Apply with selections, validation walks over every
// expression form, and selector edge listing.

import (
	"math/rand"
	"reflect"
	"testing"

	"sopr/internal/storage"
)

func TestSetEffectCloneCoversUpdates(t *testing.T) {
	e := NewSetEffect()
	e.I[1] = true
	e.D[2] = true
	e.U[3] = map[int]bool{0: true, 2: true}
	c := e.Clone()
	if !c.Equal(e) {
		t.Fatal("clone not equal")
	}
	c.U[3][5] = true
	if e.U[3][5] {
		t.Error("clone shares U column sets")
	}
	// Equal detects column-set differences.
	d := e.Clone()
	d.U[3] = map[int]bool{0: true}
	if d.Equal(e) {
		t.Error("Equal ignored column-set size")
	}
	d.U[3] = map[int]bool{0: true, 1: true}
	if d.Equal(e) {
		t.Error("Equal ignored column identity")
	}
	d = e.Clone()
	d.D[9] = true
	delete(d.D, 2)
	if d.Equal(e) {
		t.Error("Equal ignored D membership")
	}
	d = e.Clone()
	d.U[99] = map[int]bool{1: true}
	delete(d.U, 3)
	if d.Equal(e) {
		t.Error("Equal ignored U handle membership")
	}
}

func TestCheckDisjointViolations(t *testing.T) {
	mk := func() SetEffect { return NewSetEffect() }
	e := mk()
	e.I[1] = true
	e.D[1] = true
	if err := e.CheckDisjoint(); err == nil {
		t.Error("I∩D accepted")
	}
	e = mk()
	e.I[1] = true
	e.U[1] = map[int]bool{0: true}
	if err := e.CheckDisjoint(); err == nil {
		t.Error("I∩U accepted")
	}
	e = mk()
	e.D[1] = true
	e.U[1] = map[int]bool{0: true}
	if err := e.CheckDisjoint(); err == nil {
		t.Error("D∩U accepted")
	}
	e = mk()
	e.I[1] = true
	e.D[2] = true
	e.U[3] = map[int]bool{0: true}
	if err := e.CheckDisjoint(); err != nil {
		t.Errorf("disjoint rejected: %v", err)
	}
}

func TestApplyPropagatesSelections(t *testing.T) {
	e1 := NewEffect()
	e1.AddSelected("t", []storage.Handle{1, 2})
	e2 := NewEffect()
	e2.AddSelected("t", []storage.Handle{3})
	e2.AddOp(insOp("t", 4))
	e2.AddSelected("t", []storage.Handle{4}) // own insert: ignored
	e1.Apply(e2)
	if len(e1.Sel) != 3 {
		t.Errorf("Sel after Apply: %v", e1.Sel)
	}
	// A later deletion drops the selection.
	e3 := NewEffect()
	e3.AddOp(delOp("t", storage.Handle(3), row(0)))
	e1.Apply(e3)
	if _, ok := e1.Sel[3]; ok {
		t.Error("deleted tuple still selected")
	}
	// Selection of a tuple the base effect inserted is ignored on Apply.
	base := NewEffect()
	base.AddOp(insOp("t", 9))
	next := NewEffect()
	next.AddSelected("t", []storage.Handle{9})
	// next doesn't know 9 is new; Apply must notice.
	base.Apply(next)
	if _, ok := base.Sel[9]; ok {
		t.Error("selection of effect-local insert recorded")
	}
}

func TestApplyDeleteOfUnknownTupleUsesNextValues(t *testing.T) {
	// Deleting a tuple this composite never touched records the deleted
	// value reported by the incoming transition.
	e1 := NewEffect()
	e2 := NewEffect()
	e2.AddOp(delOp("t", storage.Handle(5), row(42)))
	e1.Apply(e2)
	if e1.Del[5].OldRow[0].Int() != 42 {
		t.Errorf("del value: %v", e1.Del[5])
	}
}

// Property: filtering commutes with composition — maintaining a filtered
// composite with ApplyFiltered equals maintaining the full composite and
// filtering at the end.
func TestFilteredApplyCommutesProperty(t *testing.T) {
	keep := func(table string) bool { return table == "a" }
	for trial := 0; trial < 100; trial++ {
		// Build a stream of two-table effects.
		full := NewEffect()
		filtered := NewEffect()
		var handles []storage.Handle
		next := storage.Handle(trial * 1000)
		for step := 0; step < 10; step++ {
			e := NewEffect()
			for k := 0; k < 4; k++ {
				table := "a"
				if (int(next)+k)%3 == 0 {
					table = "b"
				}
				switch (int(next) + k) % 4 {
				case 0, 1:
					next++
					handles = append(handles, next)
					e.AddOp(insOp(table, next))
				case 2:
					if len(handles) > 0 {
						h := handles[(int(next)+k)%len(handles)]
						tbl := tableOf(full, h, table)
						e.AddOp(updOp(tbl, h, row(1, 2), k%2))
					}
				default:
					if len(handles) > 0 {
						j := (int(next) + k) % len(handles)
						h := handles[j]
						tbl := tableOf(full, h, table)
						handles = append(handles[:j], handles[j+1:]...)
						e.AddOp(delOp(tbl, h, row(9)))
					}
				}
			}
			full.Apply(e)
			filtered.ApplyFiltered(e, keep)
		}
		want := full.CloneFiltered(keep)
		got := filtered
		if !got.SetEffect().Equal(want.SetEffect()) {
			t.Fatalf("trial %d: filtered maintenance diverged\n got: %v\nwant: %v", trial, got, want)
		}
	}
}

// tableOf keeps a handle's table stable across the random stream (a handle
// belongs to one table for life).
func tableOf(e *Effect, h storage.Handle, fallback string) string {
	if t, ok := e.Ins[h]; ok {
		return t
	}
	if u, ok := e.Upd[h]; ok {
		return u.Table
	}
	if d, ok := e.Del[h]; ok {
		return d.Table
	}
	return fallback
}

func TestCloneFiltered(t *testing.T) {
	e := NewEffect()
	e.AddOp(insOp("a", 1))
	e.AddOp(insOp("b", 2))
	e.AddOp(updOp("a", 3, row(1), 0))
	e.AddOp(delOp("b", storage.Handle(4), row(2)))
	e.AddSelected("a", []storage.Handle{5})
	c := e.CloneFiltered(func(tbl string) bool { return tbl == "a" })
	if len(c.Ins) != 1 || c.Ins[1] != "a" {
		t.Errorf("Ins: %v", c.Ins)
	}
	if len(c.Del) != 0 {
		t.Errorf("Del: %v", c.Del)
	}
	if len(c.Upd) != 1 {
		t.Errorf("Upd: %v", c.Upd)
	}
	if len(c.Sel) != 1 {
		t.Errorf("Sel: %v", c.Sel)
	}
}

func TestRuleKeep(t *testing.T) {
	r := &Rule{}
	if !r.Keep("anything") {
		t.Error("nil PredTables must keep everything")
	}
	r.PredTables = map[string]bool{"emp": true}
	if !r.Keep("emp") || r.Keep("dept") {
		t.Error("PredTables filtering wrong")
	}
}

func TestSelectorEdges(t *testing.T) {
	s := NewSelector()
	if edges := s.Edges(); len(edges) != 0 {
		t.Errorf("empty selector edges: %v", edges)
	}
	s.AddPriority("b", "c")
	s.AddPriority("a", "c")
	s.AddPriority("a", "b")
	want := [][2]string{{"a", "b"}, {"a", "c"}, {"b", "c"}}
	if got := s.Edges(); !reflect.DeepEqual(got, want) {
		t.Errorf("Edges = %v, want %v", got, want)
	}
	s.DropRule("a")
	want = [][2]string{{"b", "c"}}
	if got := s.Edges(); !reflect.DeepEqual(got, want) {
		t.Errorf("after drop: %v", got)
	}
}

// Property (§4.4): whatever the declared priority DAG and the triggered
// subset, Select returns a rule not strictly dominated by any other
// triggered rule, and acyclicity is always preserved.
func TestSelectorMaximalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	names := []string{"a", "b", "c", "d", "e", "f", "g"}
	for trial := 0; trial < 200; trial++ {
		s := NewSelector()
		// Random edge attempts; cycle-creating ones must be rejected.
		for k := 0; k < 10; k++ {
			i, j := rng.Intn(len(names)), rng.Intn(len(names))
			err := s.AddPriority(names[i], names[j])
			if err == nil && s.Higher(names[j], names[i]) {
				t.Fatal("accepted edge created a cycle")
			}
		}
		// Random triggered subset.
		var triggered []*Rule
		for _, n := range names {
			if rng.Intn(2) == 0 {
				triggered = append(triggered, &Rule{Name: n, LastConsidered: int64(rng.Intn(5))})
			}
		}
		got := s.Select(triggered)
		if len(triggered) == 0 {
			if got != nil {
				t.Fatal("Select of empty set returned a rule")
			}
			continue
		}
		if got == nil {
			t.Fatal("Select returned nil for non-empty set")
		}
		for _, r := range triggered {
			if r != got && s.Higher(r.Name, got.Name) {
				t.Fatalf("trial %d: selected %q is dominated by triggered %q", trial, got.Name, r.Name)
			}
		}
	}
}

// TestValidateRuleWalksEveryExprForm drives the reference walker through
// every expression node kind via a condition that buries an illegal
// transition-table reference inside each construct.
func TestValidateRuleWalksEveryExprForm(t *testing.T) {
	cat := testCatalog(t)
	// Each condition hides `deleted emp` (not licensed by the predicate)
	// inside a different expression form; all must be rejected.
	conditions := []string{
		`not exists (select * from deleted emp)`,
		`(select count(*) from deleted emp) > 0 and true`,
		`true or (select count(*) from deleted emp) > 0`,
		`(select count(*) from deleted emp) is null`,
		`1 between 0 and (select count(*) from deleted emp)`,
		`(select min(name) from deleted emp) like 'a%'`,
		`1 in (2, (select count(*) from deleted emp))`,
		`1 in (select emp_no from deleted emp)`,
		`salary > all (select salary from deleted emp)`,
		`coalesce((select count(*) from deleted emp), 0) > 0`,
		`-(select count(*) from deleted emp) < 0`,
	}
	for _, cond := range conditions {
		src := `create rule r when inserted into emp if ` + cond + ` then delete from emp end`
		if err := ValidateRule(parseRule(t, src), cat); err == nil {
			t.Errorf("condition %q: illegal reference not caught", cond)
		}
	}
	// And inside each action operation form.
	actions := []string{
		`insert into emp (select * from deleted emp)`,
		`insert into dept values ((select count(*) from deleted emp), 1)`,
		`delete from emp where emp_no in (select emp_no from deleted emp)`,
		`update emp set salary = (select count(*) from deleted emp)`,
		`update emp set salary = 0 where emp_no in (select emp_no from deleted emp)`,
		`select * from deleted emp`,
	}
	for _, act := range actions {
		src := `create rule r when inserted into emp then ` + act + ` end`
		if err := ValidateRule(parseRule(t, src), cat); err == nil {
			t.Errorf("action %q: illegal reference not caught", act)
		}
	}
	// Select-list, group-by, having and order-by positions inside a
	// licensed subquery also walk.
	src := `create rule r when inserted into emp
		if exists (select (select count(*) from deleted emp) from emp group by name having count(*) > 0 order by name)
		then delete from emp end`
	if err := ValidateRule(parseRule(t, src), cat); err == nil {
		t.Error("select-list reference not caught")
	}
}
