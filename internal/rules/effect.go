// Package rules implements the core contribution of the paper: set-oriented
// production rules over relational transitions. It provides
//
//   - transition effects [I, D, U] and their composition (Definition 2.1),
//     both in pure handle-set form (SetEffect) and in the value-carrying
//     form the execution algorithm needs (Effect, mirroring Figure 1's
//     per-rule trans-info [ins, del, upd]);
//   - rule definitions with transition predicates, conditions, actions, and
//     the triggering test of Section 3;
//   - transition-table materialization (inserted t, deleted t,
//     old/new updated t[.c], and the Section 5.1 selected t);
//   - rule selection strategies over the priority partial order of
//     Section 4.4.
//
// The engine package drives these pieces with the Figure 1 algorithm.
package rules

import (
	"fmt"
	"sort"

	"sopr/internal/exec"
	"sopr/internal/storage"
)

// ---------------------------------------------------------------------------
// Pure Definition 2.1 composition over handle sets
// ---------------------------------------------------------------------------

// HandleSet is a set of tuple handles.
type HandleSet map[storage.Handle]bool

// HandleColSet is a set of (handle, column) pairs, represented as handle →
// set of column indexes.
type HandleColSet map[storage.Handle]map[int]bool

// SetEffect is a transition effect in the pure form of Section 2.2: three
// sets [I, D, U] with no values attached. It exists to state and test the
// algebra of Definition 2.1 directly; the engine uses the value-carrying
// Effect below.
type SetEffect struct {
	I HandleSet
	D HandleSet
	U HandleColSet
}

// NewSetEffect returns an empty effect.
func NewSetEffect() SetEffect {
	return SetEffect{I: HandleSet{}, D: HandleSet{}, U: HandleColSet{}}
}

// Clone deep-copies the effect.
func (e SetEffect) Clone() SetEffect {
	c := NewSetEffect()
	for h := range e.I {
		c.I[h] = true
	}
	for h := range e.D {
		c.D[h] = true
	}
	for h, cols := range e.U {
		m := make(map[int]bool, len(cols))
		for i := range cols {
			m[i] = true
		}
		c.U[h] = m
	}
	return c
}

// Equal reports set equality of two effects.
func (e SetEffect) Equal(f SetEffect) bool {
	if len(e.I) != len(f.I) || len(e.D) != len(f.D) || len(e.U) != len(f.U) {
		return false
	}
	for h := range e.I {
		if !f.I[h] {
			return false
		}
	}
	for h := range e.D {
		if !f.D[h] {
			return false
		}
	}
	for h, cols := range e.U {
		fc, ok := f.U[h]
		if !ok || len(fc) != len(cols) {
			return false
		}
		for i := range cols {
			if !fc[i] {
				return false
			}
		}
	}
	return true
}

// Compose implements Definition 2.1: the net effect of performing e then f
// as one indivisible transition.
//
//	I = (I1 ∪ I2) − D2
//	D = (D1 ∪ D2) − I1
//	U = (U1 ∪ U2) − (D2 ∪ I1)   (per handle, all columns removed)
func (e SetEffect) Compose(f SetEffect) SetEffect {
	out := NewSetEffect()
	for h := range e.I {
		if !f.D[h] {
			out.I[h] = true
		}
	}
	for h := range f.I {
		if !f.D[h] {
			out.I[h] = true
		}
	}
	for h := range e.D {
		out.D[h] = true // D1 handles cannot be in I1 (disjointness)
	}
	for h := range f.D {
		if !e.I[h] {
			out.D[h] = true
		}
	}
	addU := func(h storage.Handle, cols map[int]bool) {
		if f.D[h] || e.I[h] {
			return
		}
		m, ok := out.U[h]
		if !ok {
			m = make(map[int]bool, len(cols))
			out.U[h] = m
		}
		for i := range cols {
			m[i] = true
		}
	}
	for h, cols := range e.U {
		addU(h, cols)
	}
	for h, cols := range f.U {
		addU(h, cols)
	}
	return out
}

// CheckDisjoint verifies the invariant of Section 2.2: a handle appears in
// at most one of I, D, U of a composed effect.
func (e SetEffect) CheckDisjoint() error {
	for h := range e.I {
		if e.D[h] {
			return fmt.Errorf("rules: handle %d in both I and D", h)
		}
		if _, ok := e.U[h]; ok {
			return fmt.Errorf("rules: handle %d in both I and U", h)
		}
	}
	for h := range e.D {
		if _, ok := e.U[h]; ok {
			return fmt.Errorf("rules: handle %d in both D and U", h)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Value-carrying effects (Figure 1 trans-info)
// ---------------------------------------------------------------------------

// DelEntry records a deleted tuple: its containing table and its value at
// the start of the composite transition (Figure 1: "del contains values for
// deleted tuples", captured via get-old-value so that update-then-delete
// records the pre-update value).
type DelEntry struct {
	Table  string
	OldRow storage.Row
}

// UpdEntry records an updated tuple: its table, its value at the start of
// the composite transition, and the set of updated column indexes.
// (Figure 1: "upd contains handles and columns for updated tuples along
// with relevant old values; new values may be obtained from the database".)
type UpdEntry struct {
	Table  string
	OldRow storage.Row
	Cols   map[int]bool
}

// Effect is a composite transition effect with captured old values — the
// paper's [I, D, U] triple in exactly the representation of Figure 1's
// trans-info [ins, del, upd], plus the optional S component of Section 5.1.
// Inserted-tuple values are read from the live database when needed.
type Effect struct {
	Ins map[storage.Handle]string
	Del map[storage.Handle]DelEntry
	Upd map[storage.Handle]UpdEntry
	Sel map[storage.Handle]string // Section 5.1 extension; nil unless enabled
}

// NewEffect returns an empty effect.
func NewEffect() *Effect {
	return &Effect{
		Ins: make(map[storage.Handle]string),
		Del: make(map[storage.Handle]DelEntry),
		Upd: make(map[storage.Handle]UpdEntry),
	}
}

// IsEmpty reports whether the effect contains no changes (selections do not
// count as changes unless select triggering is enabled, in which case they
// do trigger rules but still represent no change to the database).
func (e *Effect) IsEmpty() bool {
	return len(e.Ins) == 0 && len(e.Del) == 0 && len(e.Upd) == 0 && len(e.Sel) == 0
}

// keepAll retains every table (unfiltered clone/apply).
func keepAll(string) bool { return true }

// Clone deep-copies the effect. Old rows are shared (they are immutable
// snapshots).
func (e *Effect) Clone() *Effect {
	c := e.CloneFiltered(keepAll)
	if e.Sel != nil && c.Sel == nil {
		c.Sel = make(map[storage.Handle]string)
	}
	return c
}

// SetEffect projects the value-carrying effect onto its pure [I, D, U]
// sets.
func (e *Effect) SetEffect() SetEffect {
	s := NewSetEffect()
	for h := range e.Ins {
		s.I[h] = true
	}
	for h := range e.Del {
		s.D[h] = true
	}
	for h, u := range e.Upd {
		cols := make(map[int]bool, len(u.Cols))
		for i := range u.Cols {
			cols[i] = true
		}
		s.U[h] = cols
	}
	return s
}

// AddOp folds the affected set of one executed operation into the running
// effect. This is the within-transition analogue of modify-trans-info in
// Figure 1 (composition with a single-operation effect), capturing old
// values at the right moment:
//
//   - an insert adds the handle to I;
//   - a delete of a tuple inserted earlier in the transition removes it
//     from I entirely (net effect: nothing); otherwise it records the
//     pre-transition value — the old row already stored in U if the tuple
//     was updated earlier (get-old-value), else the value at deletion;
//   - an update of a tuple inserted earlier is folded into the insertion
//     (net effect: insert of the updated tuple); otherwise it records the
//     pre-transition value for any columns not already recorded.
func (e *Effect) AddOp(res *exec.OpResult) {
	for _, h := range res.Inserted {
		e.Ins[h] = res.Table
	}
	for _, d := range res.Deleted {
		if _, ok := e.Ins[d.Handle]; ok {
			delete(e.Ins, d.Handle)
			delete(e.Sel, d.Handle)
			continue
		}
		old := d.OldRow
		if u, ok := e.Upd[d.Handle]; ok {
			old = u.OldRow
			delete(e.Upd, d.Handle)
		}
		e.Del[d.Handle] = DelEntry{Table: res.Table, OldRow: old}
		delete(e.Sel, d.Handle)
	}
	for _, u := range res.Updated {
		if _, ok := e.Ins[u.Handle]; ok {
			continue // insert-then-update is just an insert
		}
		entry, ok := e.Upd[u.Handle]
		if !ok {
			entry = UpdEntry{Table: res.Table, OldRow: u.OldRow, Cols: make(map[int]bool, len(u.Cols))}
		}
		for _, c := range u.Cols {
			entry.Cols[c] = true
		}
		e.Upd[u.Handle] = entry
	}
}

// AddSelected records tuples read by a select operation (Section 5.1).
// Selections of tuples inserted earlier in the same transition are ignored
// (the paper leaves this open; we take the view that reading data the
// transition itself created is not a selection of pre-existing data).
func (e *Effect) AddSelected(table string, handles []storage.Handle) {
	if e.Sel == nil {
		e.Sel = make(map[storage.Handle]string)
	}
	for _, h := range handles {
		if _, ok := e.Ins[h]; ok {
			continue
		}
		if _, ok := e.Del[h]; ok {
			continue
		}
		e.Sel[h] = table
	}
}

// CloneFiltered is Clone restricted to entries whose table satisfies keep.
// The paper's Figure 1 discussion notes that "in actuality we need only
// save the subset of that information relevant to the particular rule";
// the engine keeps, per rule, only the tables named in its transition
// predicates (the Section 3 validation guarantees the rule's condition and
// action can reference nothing else).
func (e *Effect) CloneFiltered(keep func(table string) bool) *Effect {
	c := &Effect{
		Ins: make(map[storage.Handle]string),
		Del: make(map[storage.Handle]DelEntry),
		Upd: make(map[storage.Handle]UpdEntry),
	}
	for h, t := range e.Ins {
		if keep(t) {
			c.Ins[h] = t
		}
	}
	for h, d := range e.Del {
		if keep(d.Table) {
			c.Del[h] = d
		}
	}
	for h, u := range e.Upd {
		if !keep(u.Table) {
			continue
		}
		cols := make(map[int]bool, len(u.Cols))
		for i := range u.Cols {
			cols[i] = true
		}
		c.Upd[h] = UpdEntry{Table: u.Table, OldRow: u.OldRow, Cols: cols}
	}
	for h, t := range e.Sel {
		if keep(t) {
			if c.Sel == nil {
				c.Sel = make(map[storage.Handle]string)
			}
			c.Sel[h] = t
		}
	}
	return c
}

// ApplyFiltered is Apply restricted to entries whose table satisfies keep.
// Deletions are always processed (they may cancel retained insertions of a
// kept table — but an insertion is only retained if its table is kept, and
// a deletion of that tuple carries the same table, so filtering deletions
// by table is sound; we still process all deletions defensively since a
// handle is bound to one table for life).
func (e *Effect) ApplyFiltered(next *Effect, keep func(table string) bool) {
	for h, t := range next.Ins {
		if keep(t) {
			e.Ins[h] = t
		}
	}
	for h, d := range next.Del {
		if !keep(d.Table) {
			continue
		}
		if _, ok := e.Ins[h]; ok {
			delete(e.Ins, h)
			delete(e.Sel, h)
			continue
		}
		old := d.OldRow
		if u, ok := e.Upd[h]; ok {
			old = u.OldRow
			delete(e.Upd, h)
		}
		e.Del[h] = DelEntry{Table: d.Table, OldRow: old}
		delete(e.Sel, h)
	}
	for h, nu := range next.Upd {
		if !keep(nu.Table) {
			continue
		}
		if _, ok := e.Ins[h]; ok {
			continue
		}
		entry, ok := e.Upd[h]
		if !ok {
			entry = UpdEntry{Table: nu.Table, OldRow: nu.OldRow, Cols: make(map[int]bool, len(nu.Cols))}
		}
		for c := range nu.Cols {
			entry.Cols[c] = true
		}
		e.Upd[h] = entry
	}
	for h, t := range next.Sel {
		if !keep(t) {
			continue
		}
		if e.Sel == nil {
			e.Sel = make(map[storage.Handle]string)
		}
		if _, ok := e.Ins[h]; ok {
			continue
		}
		if _, ok := e.Del[h]; ok {
			continue
		}
		e.Sel[h] = t
	}
}

// Apply composes a subsequent transition's effect into this one — Figure
// 1's modify-trans-info([ins,del,upd], E, old-state), where next carries
// its own captured old values in place of the algorithm's old-state
// argument. It implements Definition 2.1 with value maintenance.
func (e *Effect) Apply(next *Effect) { e.ApplyFiltered(next, keepAll) }

// sortedHandles returns the map keys in ascending handle order, for
// deterministic iteration.
func sortedHandles[V any](m map[storage.Handle]V) []storage.Handle {
	hs := make([]storage.Handle, 0, len(m))
	for h := range m {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	return hs
}

// String summarizes the effect (for traces and debugging).
func (e *Effect) String() string {
	return fmt.Sprintf("[I:%d D:%d U:%d S:%d]", len(e.Ins), len(e.Del), len(e.Upd), len(e.Sel))
}
