package rules

import (
	"math/rand"
	"testing"

	"sopr/internal/exec"
	"sopr/internal/storage"
	"sopr/internal/value"
)

// --- helpers to build OpResults without a store ---

func insOp(table string, hs ...storage.Handle) *exec.OpResult {
	return &exec.OpResult{Table: table, Inserted: hs}
}

func delOp(table string, pairs ...any) *exec.OpResult {
	res := &exec.OpResult{Table: table}
	for i := 0; i < len(pairs); i += 2 {
		res.Deleted = append(res.Deleted, exec.DeletedTuple{
			Handle: pairs[i].(storage.Handle),
			OldRow: pairs[i+1].(storage.Row),
		})
	}
	return res
}

func updOp(table string, h storage.Handle, old storage.Row, cols ...int) *exec.OpResult {
	return &exec.OpResult{Table: table, Updated: []exec.UpdatedTuple{{Handle: h, OldRow: old, Cols: cols}}}
}

func row(vals ...int64) storage.Row {
	r := make(storage.Row, len(vals))
	for i, v := range vals {
		r[i] = value.NewInt(v)
	}
	return r
}

func TestEffectNetInsertDelete(t *testing.T) {
	// Insert then delete within one transition: net effect is nothing
	// (paper §2.2: "an insertion followed by a deletion is not considered
	// at all").
	e := NewEffect()
	e.AddOp(insOp("t", 1))
	e.AddOp(delOp("t", storage.Handle(1), row(9)))
	if !e.IsEmpty() {
		t.Errorf("insert+delete should vanish: %v", e)
	}
}

func TestEffectNetInsertUpdate(t *testing.T) {
	// Insert then update: "an insertion followed by an update is
	// considered as an insertion of the updated tuple".
	e := NewEffect()
	e.AddOp(insOp("t", 1))
	e.AddOp(updOp("t", 1, row(1), 0))
	if len(e.Ins) != 1 || len(e.Upd) != 0 || len(e.Del) != 0 {
		t.Errorf("insert+update should be insert only: %v", e)
	}
}

func TestEffectNetUpdateDelete(t *testing.T) {
	// Update then delete: "if a tuple is updated by several operations and
	// then deleted, we consider only the deletion" — and the recorded value
	// is the pre-transition one (Figure 1 get-old-value).
	e := NewEffect()
	e.AddOp(updOp("t", 1, row(10), 0)) // old value 10
	e.AddOp(updOp("t", 1, row(20), 0)) // old value 20 (ignored)
	e.AddOp(delOp("t", storage.Handle(1), row(30)))
	if len(e.Del) != 1 || len(e.Upd) != 0 {
		t.Fatalf("update+delete should be delete only: %v", e)
	}
	if got := e.Del[1].OldRow[0].Int(); got != 10 {
		t.Errorf("deleted value = %d, want pre-transition 10", got)
	}
}

func TestEffectMultipleUpdatesCollapse(t *testing.T) {
	// "multiple updates of a tuple are considered as a single update" with
	// the old value from before the first update.
	e := NewEffect()
	e.AddOp(updOp("t", 1, row(10, 100), 0))
	e.AddOp(updOp("t", 1, row(20, 100), 1)) // second update touches col 1
	if len(e.Upd) != 1 {
		t.Fatalf("updates did not collapse: %v", e)
	}
	u := e.Upd[1]
	if !u.Cols[0] || !u.Cols[1] || len(u.Cols) != 2 {
		t.Errorf("columns should union: %v", u.Cols)
	}
	if u.OldRow[0].Int() != 10 || u.OldRow[1].Int() != 100 {
		t.Errorf("old row should be pre-transition: %v", u.OldRow)
	}
}

func TestEffectDeleteThenInsertIsNotUpdate(t *testing.T) {
	// "we never consider deletion of a tuple followed by insertion of a
	// new tuple as an update" — distinct handles keep them separate.
	e := NewEffect()
	e.AddOp(delOp("t", storage.Handle(1), row(10)))
	e.AddOp(insOp("t", 2))
	if len(e.Del) != 1 || len(e.Ins) != 1 || len(e.Upd) != 0 {
		t.Errorf("delete+insert must stay separate: %v", e)
	}
}

func TestEffectDisjointnessAfterOps(t *testing.T) {
	e := NewEffect()
	e.AddOp(insOp("t", 1, 2, 3))
	e.AddOp(updOp("t", 2, row(0), 0))
	e.AddOp(delOp("t", storage.Handle(3), row(0)))
	e.AddOp(updOp("t", 4, row(7), 0))
	e.AddOp(delOp("t", storage.Handle(5), row(8)))
	if err := e.SetEffect().CheckDisjoint(); err != nil {
		t.Error(err)
	}
	if len(e.Ins) != 2 || len(e.Del) != 1 || len(e.Upd) != 1 {
		t.Errorf("unexpected effect: %v", e)
	}
}

func TestApplyMatchesPaperExample(t *testing.T) {
	// Two transitions composed via Apply behave like Definition 2.1.
	e1 := NewEffect()
	e1.AddOp(insOp("t", 1))
	e1.AddOp(updOp("t", 10, row(5), 0))

	e2 := NewEffect()
	e2.AddOp(delOp("t", storage.Handle(1), row(0)))  // deletes tuple inserted by e1
	e2.AddOp(updOp("t", 10, row(6), 1))              // more columns on same tuple
	e2.AddOp(delOp("t", storage.Handle(20), row(3))) // deletes pre-existing tuple
	e2.AddOp(insOp("t", 2))

	e1.Apply(e2)
	if len(e1.Ins) != 1 || !hasHandle(e1.Ins, 2) {
		t.Errorf("I: %v", e1.Ins)
	}
	if len(e1.Del) != 1 || e1.Del[20].OldRow[0].Int() != 3 {
		t.Errorf("D: %v", e1.Del)
	}
	u := e1.Upd[10]
	if len(e1.Upd) != 1 || !u.Cols[0] || !u.Cols[1] || u.OldRow[0].Int() != 5 {
		t.Errorf("U: %v", e1.Upd)
	}
	if err := e1.SetEffect().CheckDisjoint(); err != nil {
		t.Error(err)
	}
}

func hasHandle(m map[storage.Handle]string, h storage.Handle) bool {
	_, ok := m[h]
	return ok
}

func TestApplyUpdateThenDeleteAcrossTransitions(t *testing.T) {
	// Rule-visible semantics of Example-4-style cascades: tuple updated in
	// T1, deleted in T2 → composite shows a deletion with the T1
	// pre-update value.
	e1 := NewEffect()
	e1.AddOp(updOp("t", 7, row(100), 0))
	e2 := NewEffect()
	e2.AddOp(delOp("t", storage.Handle(7), row(150)))
	e1.Apply(e2)
	if len(e1.Upd) != 0 || len(e1.Del) != 1 {
		t.Fatalf("composite: %v", e1)
	}
	if e1.Del[7].OldRow[0].Int() != 100 {
		t.Errorf("old value = %v, want 100 (pre-transition)", e1.Del[7].OldRow[0])
	}
}

func TestCloneIndependence(t *testing.T) {
	e := NewEffect()
	e.AddOp(insOp("t", 1))
	e.AddOp(updOp("t", 2, row(9), 0))
	e.AddSelected("t", []storage.Handle{5})
	c := e.Clone()
	c.AddOp(delOp("t", storage.Handle(2), row(9)))
	if len(e.Upd) != 1 {
		t.Error("clone mutation leaked into original Upd")
	}
	c.Upd[99] = UpdEntry{Table: "t", Cols: map[int]bool{1: true}}
	if _, ok := e.Upd[99]; ok {
		t.Error("clone map shared")
	}
	if len(c.Sel) != 1 || c.Sel[5] != "t" {
		t.Error("Sel not cloned")
	}
}

func TestAddSelected(t *testing.T) {
	e := NewEffect()
	e.AddOp(insOp("t", 1))
	e.AddSelected("t", []storage.Handle{1, 2, 3})
	if len(e.Sel) != 2 {
		t.Errorf("selection of own insert should be ignored: %v", e.Sel)
	}
	// Selected-then-deleted drops from S.
	e.AddOp(delOp("t", storage.Handle(2), row(0)))
	if _, ok := e.Sel[2]; ok {
		t.Error("deleted tuple still in S")
	}
	if e.IsEmpty() {
		t.Error("effect with selections is not empty")
	}
}

// --- SetEffect algebra (Definition 2.1), experiment E3 ---

func TestSetEffectComposeBasics(t *testing.T) {
	mk := func(ins, del []storage.Handle, upd map[storage.Handle][]int) SetEffect {
		e := NewSetEffect()
		for _, h := range ins {
			e.I[h] = true
		}
		for _, h := range del {
			e.D[h] = true
		}
		for h, cols := range upd {
			m := map[int]bool{}
			for _, c := range cols {
				m[c] = true
			}
			e.U[h] = m
		}
		return e
	}
	e1 := mk([]storage.Handle{1}, nil, map[storage.Handle][]int{10: {0}})
	e2 := mk([]storage.Handle{2}, []storage.Handle{1, 10}, nil)
	c := e1.Compose(e2)
	// I = ({1} ∪ {2}) − {1,10} = {2}
	if len(c.I) != 1 || !c.I[2] {
		t.Errorf("I = %v", c.I)
	}
	// D = (∅ ∪ {1,10}) − {1} = {10}
	if len(c.D) != 1 || !c.D[10] {
		t.Errorf("D = %v", c.D)
	}
	// U = {10:{0}} − ({1,10} ∪ {1}) = ∅
	if len(c.U) != 0 {
		t.Errorf("U = %v", c.U)
	}
	if err := c.CheckDisjoint(); err != nil {
		t.Error(err)
	}
}

// opStream simulates a random but *realistic* stream of operations over a
// handle universe: handles are unique, only live tuples are deleted or
// updated. This matches the paper's model, under which Definition 2.1
// composition is associative.
type opStream struct {
	rng  *rand.Rand
	next storage.Handle
	live []storage.Handle
}

// step produces one random operation as a singleton SetEffect and the
// corresponding OpResult.
func (s *opStream) step() (SetEffect, *exec.OpResult) {
	e := NewSetEffect()
	roll := s.rng.Intn(3)
	if len(s.live) == 0 {
		roll = 0
	}
	switch roll {
	case 0: // insert
		s.next++
		h := s.next
		s.live = append(s.live, h)
		e.I[h] = true
		return e, insOp("t", h)
	case 1: // delete
		i := s.rng.Intn(len(s.live))
		h := s.live[i]
		s.live = append(s.live[:i], s.live[i+1:]...)
		e.D[h] = true
		return e, delOp("t", h, row(int64(h)))
	default: // update
		h := s.live[s.rng.Intn(len(s.live))]
		col := s.rng.Intn(3)
		e.U[h] = map[int]bool{col: true}
		return e, updOp("t", h, row(int64(h), 0, 0), col)
	}
}

func TestComposeAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		s := &opStream{rng: rng}
		// Three groups of ops → three composed effects.
		var parts [3]SetEffect
		for g := 0; g < 3; g++ {
			eff := NewSetEffect()
			for k := 0; k < 1+rng.Intn(6); k++ {
				op, _ := s.step()
				eff = eff.Compose(op)
			}
			parts[g] = eff
		}
		left := parts[0].Compose(parts[1]).Compose(parts[2])
		right := parts[0].Compose(parts[1].Compose(parts[2]))
		if !left.Equal(right) {
			t.Fatalf("trial %d: associativity violated:\nleft  I=%v D=%v U=%v\nright I=%v D=%v U=%v",
				trial, left.I, left.D, left.U, right.I, right.D, right.U)
		}
		if err := left.CheckDisjoint(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestComposeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := &opStream{rng: rng}
	eff := NewSetEffect()
	for k := 0; k < 10; k++ {
		op, _ := s.step()
		eff = eff.Compose(op)
	}
	empty := NewSetEffect()
	if !eff.Compose(empty).Equal(eff) || !empty.Compose(eff).Equal(eff) {
		t.Error("empty effect is not an identity")
	}
}

// Property (experiment E4 core): the value-carrying Effect built
// incrementally with AddOp projects to exactly the SetEffect obtained by
// folding per-op effects with Definition 2.1.
func TestAddOpMatchesComposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		s := &opStream{rng: rng}
		folded := NewSetEffect()
		incremental := NewEffect()
		for k := 0; k < 2+rng.Intn(40); k++ {
			opSet, opRes := s.step()
			folded = folded.Compose(opSet)
			incremental.AddOp(opRes)
		}
		if !incremental.SetEffect().Equal(folded) {
			t.Fatalf("trial %d: AddOp diverged from Definition 2.1:\nincr: %v\nfold: I=%v D=%v U=%v",
				trial, incremental, folded.I, folded.D, folded.U)
		}
	}
}

// Property: Apply (cross-transition maintenance) agrees with Definition 2.1
// composition of the projected sets.
func TestApplyMatchesComposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 200; trial++ {
		s := &opStream{rng: rng}
		mkEffect := func(nOps int) *Effect {
			e := NewEffect()
			for k := 0; k < nOps; k++ {
				_, opRes := s.step()
				e.AddOp(opRes)
			}
			return e
		}
		e1 := mkEffect(1 + rng.Intn(10))
		e2 := mkEffect(1 + rng.Intn(10))
		want := e1.SetEffect().Compose(e2.SetEffect())
		e1.Apply(e2)
		if !e1.SetEffect().Equal(want) {
			t.Fatalf("trial %d: Apply diverged from Definition 2.1", trial)
		}
		if err := e1.SetEffect().CheckDisjoint(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSetEffectCloneEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := &opStream{rng: rng}
	eff := NewSetEffect()
	for k := 0; k < 20; k++ {
		op, _ := s.step()
		eff = eff.Compose(op)
	}
	c := eff.Clone()
	if !c.Equal(eff) {
		t.Error("clone not equal")
	}
	c.I[9999] = true
	if c.Equal(eff) {
		t.Error("Equal missed difference in I")
	}
	if eff.I[9999] {
		t.Error("clone shares I map")
	}
}

func TestEffectString(t *testing.T) {
	e := NewEffect()
	e.AddOp(insOp("t", 1))
	if got := e.String(); got != "[I:1 D:0 U:0 S:0]" {
		t.Errorf("String = %q", got)
	}
}
