package rules

import (
	"fmt"

	"sopr/internal/catalog"
	"sopr/internal/sqlast"
)

// TriggerScope selects which composite transition a rule is evaluated
// against (Section 4.2 and footnote 8 of the paper).
type TriggerScope int

const (
	// ScopeSinceAction — the paper's semantics: the composite effect since
	// the state in which the rule's action was last executed (or the state
	// preceding the initial externally-generated transition).
	ScopeSinceAction TriggerScope = iota
	// ScopeSinceConsidered — footnote 8 alternative: since the rule was
	// last chosen for consideration, whether or not its action ran.
	ScopeSinceConsidered
	// ScopeSinceTriggered — the [WF89b] alternative: since the state
	// preceding the most recent triggering of the rule.
	ScopeSinceTriggered
)

// String names the scope.
func (s TriggerScope) String() string {
	switch s {
	case ScopeSinceAction:
		return "since-action"
	case ScopeSinceConsidered:
		return "since-considered"
	case ScopeSinceTriggered:
		return "since-triggered"
	default:
		return fmt.Sprintf("TriggerScope(%d)", int(s))
	}
}

// Rule is one defined production rule (Section 3):
//
//	create rule Name when Preds [if Condition] then Action
type Rule struct {
	Name      string
	Preds     []sqlast.TransPred
	Condition sqlast.Expr // nil means IF TRUE
	Action    sqlast.RuleAction
	Active    bool
	Scope     TriggerScope

	// TransInfo is the rule's composite transition information, maintained
	// by the engine per Figure 1 (init-trans-info / modify-trans-info).
	TransInfo *Effect
	// LastConsidered is a monotone sequence number stamped when the rule
	// was last chosen for consideration; used by recency tie-breaks.
	LastConsidered int64
	// PredTables caches the tables named in Preds. When set, the engine
	// restricts the rule's transition information to these tables — the
	// optimization Figure 1's discussion calls out ("we need only save the
	// subset of that information relevant to the particular rule"), sound
	// because Section 3 restricts transition-table references to the
	// rule's own predicates.
	PredTables map[string]bool
}

// Keep reports whether transition information about the given table is
// relevant to the rule. A nil PredTables keeps everything.
func (r *Rule) Keep(table string) bool {
	return r.PredTables == nil || r.PredTables[table]
}

// Triggered implements the triggering test of Section 3: the rule's
// transition predicate (a disjunction of basic predicates) holds with
// respect to the composite effect in TransInfo. The catalog maps predicate
// column names to indexes.
func (r *Rule) Triggered(cat *catalog.Catalog) (bool, error) {
	if r.TransInfo == nil {
		return false, nil
	}
	return EffectSatisfies(r.TransInfo, r.Preds, cat)
}

// EffectSatisfies reports whether the effect satisfies any of the basic
// transition predicates.
func EffectSatisfies(e *Effect, preds []sqlast.TransPred, cat *catalog.Catalog) (bool, error) {
	for _, p := range preds {
		ok, err := effectSatisfiesOne(e, p, cat)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

func effectSatisfiesOne(e *Effect, p sqlast.TransPred, cat *catalog.Catalog) (bool, error) {
	switch p.Op {
	case sqlast.PredInserted:
		for _, t := range e.Ins {
			if t == p.Table {
				return true, nil
			}
		}
		return false, nil
	case sqlast.PredDeleted:
		for _, d := range e.Del {
			if d.Table == p.Table {
				return true, nil
			}
		}
		return false, nil
	case sqlast.PredUpdated:
		colIdx := -1
		if p.Column != "" {
			schema, err := cat.Lookup(p.Table)
			if err != nil {
				return false, err
			}
			colIdx = schema.ColumnIndex(p.Column)
			if colIdx < 0 {
				return false, fmt.Errorf("rules: table %q has no column %q", p.Table, p.Column)
			}
		}
		for _, u := range e.Upd {
			if u.Table != p.Table {
				continue
			}
			if colIdx < 0 || u.Cols[colIdx] {
				return true, nil
			}
		}
		return false, nil
	case sqlast.PredSelected:
		// Column-level select predicates degrade to table level: the S
		// component records whole tuples (Section 5.1 leaves the
		// column granularity open).
		for _, t := range e.Sel {
			if t == p.Table {
				return true, nil
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("rules: unknown transition predicate op %d", int(p.Op))
	}
}

// ValidateRule checks the static restrictions of Section 3: the rule's
// condition and action may reference only transition tables corresponding
// to the rule's own basic transition predicates, over known tables and
// columns. ("This restriction is syntactic, however, therefore easily
// checked.")
func ValidateRule(r *sqlast.CreateRule, cat *catalog.Catalog) error {
	for _, p := range r.Preds {
		schema, err := cat.Lookup(p.Table)
		if err != nil {
			return fmt.Errorf("rules: rule %q: %v", r.Name, err)
		}
		if p.Column != "" && !schema.HasColumn(p.Column) {
			return fmt.Errorf("rules: rule %q: table %q has no column %q", r.Name, p.Table, p.Column)
		}
	}
	check := func(tr *sqlast.TableRef) error {
		if tr.Trans == sqlast.TransNone {
			return nil
		}
		for _, p := range r.Preds {
			if transMatchesPred(tr, p) {
				return nil
			}
		}
		return fmt.Errorf("rules: rule %q references transition table %q with no corresponding transition predicate",
			r.Name, tr.String())
	}
	if err := walkExprTableRefs(r.Condition, check); err != nil {
		return err
	}
	for _, op := range r.Action.Block {
		if err := walkStmtTableRefs(op, check); err != nil {
			return err
		}
	}
	return nil
}

// transMatchesPred reports whether a transition-table reference is licensed
// by a basic transition predicate. Per Section 3, `updated t.c` licenses
// old/new updated t.c; `updated t` licenses old/new updated t (the
// whole-table form). We additionally allow the whole-table transition table
// under a column predicate and vice versa only when exact: the paper pairs
// each predicate with its own transition tables, so we require table match
// and, for updated forms, column match.
func transMatchesPred(tr *sqlast.TableRef, p sqlast.TransPred) bool {
	if tr.Table != p.Table {
		return false
	}
	switch tr.Trans {
	case sqlast.TransInserted:
		return p.Op == sqlast.PredInserted
	case sqlast.TransDeleted:
		return p.Op == sqlast.PredDeleted
	case sqlast.TransOldUpdated, sqlast.TransNewUpdated:
		return p.Op == sqlast.PredUpdated && tr.Column == p.Column
	case sqlast.TransSelected:
		return p.Op == sqlast.PredSelected && (tr.Column == p.Column || tr.Column == "")
	default:
		return false
	}
}

// walkExprTableRefs visits every transition-capable table reference in the
// FROM lists of subqueries embedded in an expression.
func walkExprTableRefs(e sqlast.Expr, fn func(*sqlast.TableRef) error) error {
	switch x := e.(type) {
	case nil:
		return nil
	case *sqlast.Unary:
		return walkExprTableRefs(x.X, fn)
	case *sqlast.Binary:
		if err := walkExprTableRefs(x.L, fn); err != nil {
			return err
		}
		return walkExprTableRefs(x.R, fn)
	case *sqlast.IsNull:
		return walkExprTableRefs(x.X, fn)
	case *sqlast.Between:
		if err := walkExprTableRefs(x.X, fn); err != nil {
			return err
		}
		if err := walkExprTableRefs(x.Lo, fn); err != nil {
			return err
		}
		return walkExprTableRefs(x.Hi, fn)
	case *sqlast.Like:
		if err := walkExprTableRefs(x.X, fn); err != nil {
			return err
		}
		return walkExprTableRefs(x.Pattern, fn)
	case *sqlast.InList:
		if err := walkExprTableRefs(x.X, fn); err != nil {
			return err
		}
		for _, el := range x.List {
			if err := walkExprTableRefs(el, fn); err != nil {
				return err
			}
		}
		return nil
	case *sqlast.InSelect:
		if err := walkExprTableRefs(x.X, fn); err != nil {
			return err
		}
		return walkSelectTableRefs(x.Sub, fn)
	case *sqlast.Exists:
		return walkSelectTableRefs(x.Sub, fn)
	case *sqlast.ScalarSub:
		return walkSelectTableRefs(x.Sub, fn)
	case *sqlast.SubCompare:
		if err := walkExprTableRefs(x.X, fn); err != nil {
			return err
		}
		return walkSelectTableRefs(x.Sub, fn)
	case *sqlast.FuncCall:
		for _, a := range x.Args {
			if err := walkExprTableRefs(a, fn); err != nil {
				return err
			}
		}
		return nil
	case *sqlast.Case:
		if err := walkExprTableRefs(x.Operand, fn); err != nil {
			return err
		}
		for _, w := range x.Whens {
			if err := walkExprTableRefs(w.Cond, fn); err != nil {
				return err
			}
			if err := walkExprTableRefs(w.Result, fn); err != nil {
				return err
			}
		}
		return walkExprTableRefs(x.Else, fn)
	default:
		return nil
	}
}

func walkSelectTableRefs(sel *sqlast.Select, fn func(*sqlast.TableRef) error) error {
	if sel == nil {
		return nil
	}
	for _, tr := range sel.From {
		if err := fn(tr); err != nil {
			return err
		}
	}
	for _, it := range sel.Items {
		if err := walkExprTableRefs(it.Expr, fn); err != nil {
			return err
		}
	}
	if err := walkExprTableRefs(sel.Where, fn); err != nil {
		return err
	}
	for _, g := range sel.GroupBy {
		if err := walkExprTableRefs(g, fn); err != nil {
			return err
		}
	}
	if err := walkExprTableRefs(sel.Having, fn); err != nil {
		return err
	}
	for _, o := range sel.OrderBy {
		if err := walkExprTableRefs(o.Expr, fn); err != nil {
			return err
		}
	}
	return nil
}

// walkStmtTableRefs visits transition-table references within a DML
// statement (action operation).
func walkStmtTableRefs(st sqlast.Statement, fn func(*sqlast.TableRef) error) error {
	switch s := st.(type) {
	case *sqlast.Insert:
		for _, row := range s.Rows {
			for _, e := range row {
				if err := walkExprTableRefs(e, fn); err != nil {
					return err
				}
			}
		}
		return walkSelectTableRefs(s.Query, fn)
	case *sqlast.Delete:
		return walkExprTableRefs(s.Where, fn)
	case *sqlast.Update:
		for _, a := range s.Set {
			if err := walkExprTableRefs(a.Expr, fn); err != nil {
				return err
			}
		}
		return walkExprTableRefs(s.Where, fn)
	case *sqlast.Select:
		return walkSelectTableRefs(s, fn)
	default:
		return nil
	}
}
