package rules

import (
	"strings"
	"testing"

	"sopr/internal/catalog"
	"sopr/internal/sqlast"
	"sopr/internal/sqlparse"
	"sopr/internal/storage"
	"sopr/internal/value"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	emp, err := catalog.NewTable("emp", []catalog.Column{
		{Name: "name", Type: value.KindString},
		{Name: "emp_no", Type: value.KindInt},
		{Name: "salary", Type: value.KindFloat},
		{Name: "dept_no", Type: value.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	dept, err := catalog.NewTable("dept", []catalog.Column{
		{Name: "dept_no", Type: value.KindInt},
		{Name: "mgr_no", Type: value.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Create(emp); err != nil {
		t.Fatal(err)
	}
	if err := cat.Create(dept); err != nil {
		t.Fatal(err)
	}
	return cat
}

func pred(op sqlast.TransPredOp, table, col string) sqlast.TransPred {
	return sqlast.TransPred{Op: op, Table: table, Column: col}
}

func TestEffectSatisfies(t *testing.T) {
	cat := testCatalog(t)
	e := NewEffect()
	e.AddOp(insOp("emp", 1))
	e.AddOp(updOp("dept", 5, row(1, 2), 1)) // dept.mgr_no is column 1

	cases := []struct {
		p    sqlast.TransPred
		want bool
	}{
		{pred(sqlast.PredInserted, "emp", ""), true},
		{pred(sqlast.PredInserted, "dept", ""), false},
		{pred(sqlast.PredDeleted, "emp", ""), false},
		{pred(sqlast.PredUpdated, "dept", ""), true},
		{pred(sqlast.PredUpdated, "dept", "mgr_no"), true},
		{pred(sqlast.PredUpdated, "dept", "dept_no"), false},
		{pred(sqlast.PredUpdated, "emp", ""), false},
		{pred(sqlast.PredSelected, "emp", ""), false},
	}
	for _, c := range cases {
		got, err := EffectSatisfies(e, []sqlast.TransPred{c.p}, cat)
		if err != nil {
			t.Errorf("%s: %v", c.p, err)
			continue
		}
		if got != c.want {
			t.Errorf("EffectSatisfies(%s) = %v, want %v", c.p, got, c.want)
		}
	}
	// Disjunction: any satisfied basic predicate triggers.
	got, err := EffectSatisfies(e, []sqlast.TransPred{
		pred(sqlast.PredDeleted, "emp", ""),
		pred(sqlast.PredInserted, "emp", ""),
	}, cat)
	if err != nil || !got {
		t.Errorf("disjunction: %v, %v", got, err)
	}
	// Deleted predicate against a delete effect.
	e2 := NewEffect()
	e2.AddOp(delOp("emp", storage.Handle(9), row(0, 0, 0, 0)))
	got, _ = EffectSatisfies(e2, []sqlast.TransPred{pred(sqlast.PredDeleted, "emp", "")}, cat)
	if !got {
		t.Error("deleted predicate failed")
	}
	// Selected predicate (Section 5.1).
	e3 := NewEffect()
	e3.AddSelected("emp", []storage.Handle{4})
	got, _ = EffectSatisfies(e3, []sqlast.TransPred{pred(sqlast.PredSelected, "emp", "")}, cat)
	if !got {
		t.Error("selected predicate failed")
	}
	// Bad column errors.
	if _, err := EffectSatisfies(e, []sqlast.TransPred{pred(sqlast.PredUpdated, "dept", "nosuch")}, cat); err == nil {
		t.Error("bad predicate column accepted")
	}
}

func TestRuleTriggered(t *testing.T) {
	cat := testCatalog(t)
	r := &Rule{Name: "r", Preds: []sqlast.TransPred{pred(sqlast.PredInserted, "emp", "")}, Active: true}
	if got, _ := r.Triggered(cat); got {
		t.Error("rule with nil TransInfo triggered")
	}
	r.TransInfo = NewEffect()
	if got, _ := r.Triggered(cat); got {
		t.Error("rule with empty TransInfo triggered")
	}
	r.TransInfo.AddOp(insOp("emp", 3))
	if got, _ := r.Triggered(cat); !got {
		t.Error("rule not triggered by matching insert")
	}
}

func parseRule(t *testing.T, src string) *sqlast.CreateRule {
	t.Helper()
	st, err := sqlparse.ParseStatement(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return st.(*sqlast.CreateRule)
}

func TestValidateRule(t *testing.T) {
	cat := testCatalog(t)
	good := []string{
		`create rule r1 when deleted from dept
		 then delete from emp where dept_no in (select dept_no from deleted dept)`,
		`create rule r2 when updated emp.salary
		 if (select sum(salary) from new updated emp.salary) > (select sum(salary) from old updated emp.salary)
		 then delete from emp where emp_no = 0`,
		`create rule r3 when inserted into emp
		 then insert into dept (select dept_no, emp_no from inserted emp)`,
		`create rule r4 when updated emp
		 then delete from emp where emp_no in (select emp_no from old updated emp)`,
		`create rule r5 when inserted into emp then rollback`,
	}
	for _, src := range good {
		if err := ValidateRule(parseRule(t, src), cat); err != nil {
			t.Errorf("valid rule rejected: %q: %v", src, err)
		}
	}
	bad := []struct{ src, frag string }{
		{`create rule b1 when deleted from nosuch then delete from emp`, "does not exist"},
		{`create rule b2 when updated emp.nosuch then delete from emp`, "no column"},
		{`create rule b3 when inserted into emp
		  then delete from emp where dept_no in (select dept_no from deleted emp)`, "no corresponding"},
		{`create rule b4 when updated emp.salary
		  then delete from emp where emp_no in (select emp_no from new updated emp.dept_no)`, "no corresponding"},
		{`create rule b5 when updated emp.salary
		  if exists (select * from old updated emp) then delete from emp`, "no corresponding"},
		{`create rule b6 when inserted into emp
		  if exists (select * from inserted dept) then delete from emp`, "no corresponding"},
	}
	for _, c := range bad {
		err := ValidateRule(parseRule(t, c.src), cat)
		if err == nil {
			t.Errorf("invalid rule accepted: %q", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("error %q does not mention %q", err, c.frag)
		}
	}
}

func TestTriggerScopeString(t *testing.T) {
	if ScopeSinceAction.String() != "since-action" ||
		ScopeSinceConsidered.String() != "since-considered" ||
		ScopeSinceTriggered.String() != "since-triggered" {
		t.Error("TriggerScope names wrong")
	}
}

func TestSelectorPriorities(t *testing.T) {
	s := NewSelector()
	if err := s.AddPriority("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPriority("b", "c"); err != nil {
		t.Fatal(err)
	}
	if !s.Higher("a", "b") || !s.Higher("a", "c") || !s.Higher("b", "c") {
		t.Error("transitive closure wrong")
	}
	if s.Higher("c", "a") || s.Higher("b", "a") || s.Higher("a", "a") {
		t.Error("spurious priority")
	}
	if err := s.AddPriority("c", "a"); err == nil {
		t.Error("cycle accepted")
	}
	if err := s.AddPriority("a", "a"); err == nil {
		t.Error("self-priority accepted")
	}
	// Dropping a rule removes its edges.
	s.DropRule("b")
	if s.Higher("a", "c") {
		t.Error("edges through dropped rule should disappear (direct edges only remain)")
	}
}

func TestSelectorSelect(t *testing.T) {
	s := NewSelector()
	ra := &Rule{Name: "a", LastConsidered: 3}
	rb := &Rule{Name: "b", LastConsidered: 1}
	rc := &Rule{Name: "c", LastConsidered: 2}

	if got := s.Select(nil); got != nil {
		t.Error("Select(empty) should be nil")
	}
	// No priorities: least-recently-considered wins.
	if got := s.Select([]*Rule{ra, rb, rc}); got != rb {
		t.Errorf("LRU pick = %s", got.Name)
	}
	s.Strategy = StrategyMostRecent
	if got := s.Select([]*Rule{ra, rb, rc}); got != ra {
		t.Errorf("MRU pick = %s", got.Name)
	}
	s.Strategy = StrategyNameOrder
	if got := s.Select([]*Rule{rc, ra, rb}); got != ra {
		t.Errorf("name pick = %s", got.Name)
	}
	// Priorities dominate any strategy: c before everything.
	s.Strategy = StrategyLeastRecent
	if err := s.AddPriority("c", "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPriority("c", "b"); err != nil {
		t.Fatal(err)
	}
	if got := s.Select([]*Rule{ra, rb, rc}); got != rc {
		t.Errorf("priority pick = %s", got.Name)
	}
	// Example 4.3 setup: R2 before R1 → R2 chosen first.
	s2 := NewSelector()
	r1 := &Rule{Name: "r1"}
	r2 := &Rule{Name: "r2"}
	if err := s2.AddPriority("r2", "r1"); err != nil {
		t.Fatal(err)
	}
	if got := s2.Select([]*Rule{r1, r2}); got != r2 {
		t.Errorf("Example 4.3 priority pick = %s", got.Name)
	}
	// Ties among equal-priority maximal rules are deterministic.
	if got := s2.Select([]*Rule{r1}); got != r1 {
		t.Error("single rule not selected")
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyLeastRecent.String() == "" || StrategyMostRecent.String() == "" || StrategyNameOrder.String() == "" {
		t.Error("strategy names empty")
	}
}

func TestTransSourceMaterialization(t *testing.T) {
	// Build a real store so `inserted`/`new updated` can read live values.
	st := storage.New()
	emp, err := catalog.NewTable("emp", []catalog.Column{
		{Name: "name", Type: value.KindString},
		{Name: "salary", Type: value.KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateTable(emp); err != nil {
		t.Fatal(err)
	}
	h1, _ := st.Insert("emp", storage.Row{value.NewString("a"), value.NewFloat(10)})
	h2, _ := st.Insert("emp", storage.Row{value.NewString("b"), value.NewFloat(20)})

	eff := NewEffect()
	eff.AddOp(insOp("emp", h2))
	oldRow := storage.Row{value.NewString("a"), value.NewFloat(5)}
	eff.Upd[h1] = UpdEntry{Table: "emp", OldRow: oldRow, Cols: map[int]bool{1: true}}
	eff.Del[999] = DelEntry{Table: "emp", OldRow: storage.Row{value.NewString("gone"), value.NewFloat(1)}}

	ts := &TransSource{Store: st, Effect: eff}

	rows, err := ts.TransRows(sqlast.TransInserted, "emp", "")
	if err != nil || len(rows) != 1 || rows[0].Values[0].Str() != "b" {
		t.Errorf("inserted: %v, %v", rows, err)
	}
	rows, err = ts.TransRows(sqlast.TransDeleted, "emp", "")
	if err != nil || len(rows) != 1 || rows[0].Values[0].Str() != "gone" {
		t.Errorf("deleted: %v, %v", rows, err)
	}
	rows, err = ts.TransRows(sqlast.TransOldUpdated, "emp", "salary")
	if err != nil || len(rows) != 1 || rows[0].Values[1].Float() != 5 {
		t.Errorf("old updated: %v, %v", rows, err)
	}
	rows, err = ts.TransRows(sqlast.TransNewUpdated, "emp", "salary")
	if err != nil || len(rows) != 1 || rows[0].Values[1].Float() != 10 {
		t.Errorf("new updated: %v, %v", rows, err)
	}
	// Column filter: no update touched "name".
	rows, err = ts.TransRows(sqlast.TransOldUpdated, "emp", "name")
	if err != nil || len(rows) != 0 {
		t.Errorf("old updated name: %v, %v", rows, err)
	}
	// Whole-table form sees all updates.
	rows, err = ts.TransRows(sqlast.TransNewUpdated, "emp", "")
	if err != nil || len(rows) != 1 {
		t.Errorf("new updated whole-table: %v, %v", rows, err)
	}
	// Bad column.
	if _, err := ts.TransRows(sqlast.TransOldUpdated, "emp", "nosuch"); err == nil {
		t.Error("bad column accepted")
	}
	// Selected tuples (Section 5.1): live ones materialize.
	eff.AddSelected("emp", []storage.Handle{h1})
	rows, err = ts.TransRows(sqlast.TransSelected, "emp", "")
	if err != nil || len(rows) != 1 || rows[0].Handle != h1 {
		t.Errorf("selected: %v, %v", rows, err)
	}
	// Nil effect → empty tables.
	empty := &TransSource{Store: st}
	n, err := ts2Rows(empty)
	if err != nil || n != 0 {
		t.Errorf("nil effect: %d, %v", n, err)
	}
	// Non-transition kind errors.
	if _, err := ts.TransRows(sqlast.TransNone, "emp", ""); err == nil {
		t.Error("TransNone accepted")
	}
}

func ts2Rows(ts *TransSource) (int, error) {
	rows, err := ts.TransRows(sqlast.TransInserted, "emp", "")
	return len(rows), err
}

func TestTransSourceDeterministicOrder(t *testing.T) {
	st := storage.New()
	tab, _ := catalog.NewTable("t", []catalog.Column{{Name: "a", Type: value.KindInt}})
	st.CreateTable(tab)
	eff := NewEffect()
	var want []storage.Handle
	for i := 0; i < 20; i++ {
		h, _ := st.Insert("t", storage.Row{value.NewInt(int64(i))})
		eff.AddOp(insOp("t", h))
		want = append(want, h)
	}
	ts := &TransSource{Store: st, Effect: eff}
	for trial := 0; trial < 3; trial++ {
		rows, err := ts.TransRows(sqlast.TransInserted, "t", "")
		if err != nil || len(rows) != 20 {
			t.Fatalf("rows: %d, %v", len(rows), err)
		}
		for i, r := range rows {
			if r.Handle != want[i] {
				t.Fatalf("order not ascending-handle: pos %d has %d", i, r.Handle)
			}
		}
	}
}
