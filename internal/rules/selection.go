package rules

import (
	"fmt"
	"sort"
)

// Strategy selects among the rule-selection policies of Section 4.4. All
// strategies first restrict to rules that are maximal in the priority
// partial order ("a rule is chosen such that no other triggered rule is
// strictly higher in the ordering"); they differ in the tie-break.
type Strategy int

const (
	// StrategyLeastRecent prefers the rule considered least recently
	// (first-definition order initially). This is the default: it is
	// deterministic and gives starvation-free round-robin behavior among
	// equal-priority rules.
	StrategyLeastRecent Strategy = iota
	// StrategyMostRecent prefers the rule considered most recently
	// (depth-first cascades).
	StrategyMostRecent
	// StrategyNameOrder breaks ties by rule name (fully static order).
	StrategyNameOrder
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyLeastRecent:
		return "least-recently-considered"
	case StrategyMostRecent:
		return "most-recently-considered"
	case StrategyNameOrder:
		return "name-order"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Selector maintains the user-declared priority partial order
// (`create rule priority r1 before r2`, Section 4.4) and chooses among
// triggered rules.
type Selector struct {
	Strategy Strategy
	// Choose, when non-nil, replaces the Strategy tie-break: it receives
	// the names of the maximal (by priority) triggered rules in ascending
	// name order and returns the chosen name. The paper leaves the choice
	// among maximal rules open (Section 4.4); this hook lets a test
	// harness pin any legal order — in particular the differential oracle
	// drives the engine and a reference interpreter through the same
	// selection sequence. Choose must return one of its arguments; any
	// other return falls back to the first candidate. It must be a pure
	// function of the candidate list so that independent executions with
	// equal histories make equal choices.
	Choose func(candidates []string) string
	// higher[a][b] records a declared edge: a has priority over b.
	higher map[string]map[string]bool
}

// NewSelector returns a selector with no priority edges and the default
// strategy.
func NewSelector() *Selector {
	return &Selector{higher: make(map[string]map[string]bool)}
}

// AddPriority declares that rule before has higher priority than rule
// after. It fails if the edge would create a cycle ("any acyclic group of
// such pairings induces a partial order").
func (s *Selector) AddPriority(before, after string) error {
	if before == after {
		return fmt.Errorf("rules: priority of %q over itself", before)
	}
	if s.reachable(after, before) {
		return fmt.Errorf("rules: priority %q before %q would create a cycle", before, after)
	}
	m, ok := s.higher[before]
	if !ok {
		m = make(map[string]bool)
		s.higher[before] = m
	}
	m[after] = true
	return nil
}

// Edges returns the declared priority pairs [before, after], sorted.
func (s *Selector) Edges() [][2]string {
	var out [][2]string
	for before, afters := range s.higher {
		for after := range afters {
			out = append(out, [2]string{before, after})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// DropRule removes all priority edges involving the named rule.
func (s *Selector) DropRule(name string) {
	delete(s.higher, name)
	for _, m := range s.higher {
		delete(m, name)
	}
}

// Higher reports whether rule a is strictly higher than rule b in the
// transitive closure of the declared pairings.
func (s *Selector) Higher(a, b string) bool { return s.reachable(a, b) }

// reachable performs a DFS over declared edges.
func (s *Selector) reachable(from, to string) bool {
	if from == to {
		return false
	}
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for m := range s.higher[n] {
			if m == to {
				return true
			}
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return false
}

// Select returns one rule from the triggered set such that no other rule in
// the set is strictly higher in the priority order, breaking ties by the
// configured strategy. It returns nil for an empty set.
func (s *Selector) Select(triggered []*Rule) *Rule {
	if len(triggered) == 0 {
		return nil
	}
	// Maximal elements of the partial order.
	var maximal []*Rule
	for _, r := range triggered {
		dominated := false
		for _, q := range triggered {
			if q != r && s.Higher(q.Name, r.Name) {
				dominated = true
				break
			}
		}
		if !dominated {
			maximal = append(maximal, r)
		}
	}
	if s.Choose != nil {
		names := make([]string, len(maximal))
		for i, r := range maximal {
			names[i] = r.Name
		}
		sort.Strings(names)
		picked := s.Choose(names)
		for _, r := range maximal {
			if r.Name == picked {
				return r
			}
		}
		for _, r := range maximal {
			if r.Name == names[0] {
				return r
			}
		}
	}
	sort.Slice(maximal, func(i, j int) bool {
		a, b := maximal[i], maximal[j]
		switch s.Strategy {
		case StrategyMostRecent:
			if a.LastConsidered != b.LastConsidered {
				return a.LastConsidered > b.LastConsidered
			}
		case StrategyNameOrder:
			// fall through to the name tie-break below
		default: // StrategyLeastRecent
			if a.LastConsidered != b.LastConsidered {
				return a.LastConsidered < b.LastConsidered
			}
		}
		return a.Name < b.Name
	})
	return maximal[0]
}
