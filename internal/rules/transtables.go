package rules

import (
	"fmt"

	"sopr/internal/exec"
	"sopr/internal/sqlast"
	"sopr/internal/storage"
)

// TransSource materializes a rule's transition tables from its composite
// transition information, per Section 3 of the paper:
//
//   - `inserted t` — the tuples of t in the *current* state that were
//     inserted by the (composite) transition;
//   - `deleted t` — the tuples of t in the *previous* state (the state the
//     composite transition started from) that were deleted;
//   - `old updated t[.c]` — the previous values of updated tuples;
//   - `new updated t[.c]` — the current values of the same tuples;
//   - `selected t[.c]` — tuples read, when Section 5.1 is enabled.
//
// It implements exec.TransTableSource. Rows are produced in ascending
// handle order for deterministic query results.
type TransSource struct {
	Store  *storage.Store
	Effect *Effect
}

var _ exec.TransTableSource = (*TransSource)(nil)

// TransRows implements exec.TransTableSource.
func (ts *TransSource) TransRows(kind sqlast.TransKind, table, column string) ([]exec.TransRow, error) {
	if ts.Effect == nil {
		return nil, nil
	}
	colIdx := -1
	if column != "" {
		schema, err := ts.Store.Catalog().Lookup(table)
		if err != nil {
			return nil, err
		}
		colIdx = schema.ColumnIndex(column)
		if colIdx < 0 {
			return nil, fmt.Errorf("rules: table %q has no column %q", table, column)
		}
	}
	switch kind {
	case sqlast.TransInserted:
		var out []exec.TransRow
		for _, h := range sortedHandles(ts.Effect.Ins) {
			if ts.Effect.Ins[h] != table {
				continue
			}
			tup, ok := ts.Store.Get(h)
			if !ok {
				return nil, fmt.Errorf("rules: inserted tuple %d vanished (internal error)", h)
			}
			out = append(out, exec.TransRow{Handle: h, Values: tup.Values})
		}
		return out, nil

	case sqlast.TransDeleted:
		var out []exec.TransRow
		for _, h := range sortedHandles(ts.Effect.Del) {
			d := ts.Effect.Del[h]
			if d.Table != table {
				continue
			}
			out = append(out, exec.TransRow{Handle: h, Values: d.OldRow})
		}
		return out, nil

	case sqlast.TransOldUpdated, sqlast.TransNewUpdated:
		var out []exec.TransRow
		for _, h := range sortedHandles(ts.Effect.Upd) {
			u := ts.Effect.Upd[h]
			if u.Table != table {
				continue
			}
			if colIdx >= 0 && !u.Cols[colIdx] {
				continue
			}
			if kind == sqlast.TransOldUpdated {
				out = append(out, exec.TransRow{Handle: h, Values: u.OldRow})
				continue
			}
			tup, ok := ts.Store.Get(h)
			if !ok {
				return nil, fmt.Errorf("rules: updated tuple %d vanished (internal error)", h)
			}
			out = append(out, exec.TransRow{Handle: h, Values: tup.Values})
		}
		return out, nil

	case sqlast.TransSelected:
		var out []exec.TransRow
		for _, h := range sortedHandles(ts.Effect.Sel) {
			if ts.Effect.Sel[h] != table {
				continue
			}
			tup, ok := ts.Store.Get(h)
			if !ok {
				continue // selected tuple later deleted by an external block
			}
			out = append(out, exec.TransRow{Handle: h, Values: tup.Values})
		}
		return out, nil

	default:
		return nil, fmt.Errorf("rules: not a transition table kind: %d", int(kind))
	}
}
