// Batch exec end to end: MsgExecBatch through client.ExecBatch against
// in-memory and durable backends, concurrent batch committers sharing
// group-commit fsyncs (run with -race; CI does), and the frame-size
// boundary — a payload at exactly the cap is served, one byte over gets
// the typed frame_too_large error on a connection that stays usable.
package server

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"sopr"
	"sopr/client"
	"sopr/internal/wire"
)

func TestExecBatchEndToEnd(t *testing.T) {
	db := sopr.Open()
	db.MustExec(`create table t (a int)`)
	db.MustExec(`create rule cap when inserted into t
		then delete from t where a > 100 end`)
	_, addr := startServer(t, sopr.Synchronized(db), Config{})
	c := dial(t, addr)

	// One block: the rule sees the batch's net effect once, and the
	// SELECT rides along inside the same block.
	res, err := c.ExecBatch([]string{
		`insert into t values (1), (2)`,
		`insert into t values (200)`,
		`select a from t where a <= 100`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Firings) == 0 || res.Firings[0].Rule != "cap" {
		t.Fatalf("firings = %+v, want rule cap", res.Firings)
	}
	if len(res.Results) != 1 || len(res.Results[0].Data) != 2 {
		t.Fatalf("results = %+v, want one 2-row result set", res.Results)
	}
	rows, err := c.Query(`select count(*) from t`)
	if err != nil {
		t.Fatal(err)
	}
	if n := rows.Data[0][0].(int64); n != 2 {
		t.Fatalf("count = %d, want 2 (rule deleted the overflow)", n)
	}

	// Definitions cannot join a batch block.
	_, err = c.ExecBatch([]string{`insert into t values (3)`, `create table u (x int)`})
	if !client.IsRemote(err, client.CodeExec) {
		t.Fatalf("definition in batch: err = %v, want remote exec error", err)
	}
	// And the rejected batch left no partial state.
	rows, err = c.Query(`select count(*) from t`)
	if err != nil {
		t.Fatal(err)
	}
	if n := rows.Data[0][0].(int64); n != 2 {
		t.Fatalf("count after rejected batch = %d, want 2", n)
	}
}

// TestConcurrentBatchCommitDurable drives a durable fsync-always server
// with concurrent ExecBatch clients: every batch is one commit record, the
// overlapping commits share group fsyncs, and the stats must show it.
func TestConcurrentBatchCommitDurable(t *testing.T) {
	db, err := sopr.OpenDurable(t.TempDir(), sopr.WithFsync(sopr.FsyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	sdb := sopr.Synchronized(db)
	defer sdb.Close()
	sdb.MustExec(`create table t (w int, a int)`)
	_, addr := startServer(t, sdb, Config{})

	const clients = 8
	const batches = 6
	const perBatch = 4
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			for b := 0; b < batches; b++ {
				stmts := make([]string, perBatch)
				for i := range stmts {
					stmts[i] = fmt.Sprintf(`insert into t values (%d, %d)`, w, b*perBatch+i)
				}
				res, err := c.ExecBatch(stmts)
				if err != nil {
					errc <- fmt.Errorf("client %d batch %d: %w", w, b, err)
					return
				}
				if res.LSN == 0 {
					errc <- fmt.Errorf("client %d batch %d: no LSN token on a durable server", w, b)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	c := dial(t, addr)
	rows, err := c.Query(`select count(*) from t`)
	if err != nil {
		t.Fatal(err)
	}
	if n := rows.Data[0][0].(int64); n != clients*batches*perBatch {
		t.Fatalf("count = %d, want %d", n, clients*batches*perBatch)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Server.BatchExecs != clients*batches {
		t.Errorf("BatchExecs = %d, want %d", st.Server.BatchExecs, clients*batches)
	}
	e := st.Engine
	if e.GroupCommits < 1 || e.GroupedTxns < e.GroupCommits {
		t.Errorf("group-commit stats out of range: commits=%d grouped=%d", e.GroupCommits, e.GroupedTxns)
	}
	// Each batch was ONE commit record regardless of its statement count.
	if e.WALAppends > int64(clients*batches)+2 { // +1 DDL, +1 slack for the epoch record
		t.Errorf("WALAppends = %d for %d batch blocks: batches are not one record each",
			e.WALAppends, clients*batches)
	}
}

// TestFrameSizeBoundary pins the cap semantics: a payload of exactly
// MaxFrame is read and served, one byte over is answered with the typed
// frame_too_large error and the session survives to serve the next
// request.
func TestFrameSizeBoundary(t *testing.T) {
	const cap = 4096
	db := sopr.Open()
	db.MustExec(`create table t (s varchar)`)
	_, addr := startServer(t, sopr.Synchronized(db), Config{MaxFrame: cap})

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	// Exactly at the cap: the frame is read and dispatched. The payload is
	// a valid exec request padded to precisely cap bytes with trailing
	// spaces in the SQL, so it must execute.
	const stmt = `insert into t values ('x')`
	src := stmt + strings.Repeat(" ", cap-len(`{"src":""}`)-len(stmt))
	payload := []byte(`{"src":"` + src + `"}`)
	if len(payload) != cap {
		t.Fatalf("test bug: payload is %d bytes, want exactly %d", len(payload), cap)
	}
	if err := wire.WriteFrame(nc, wire.MsgExec, payload, cap); err != nil {
		t.Fatal(err)
	}
	typ, _, err := wire.ReadFrame(nc, cap)
	if err != nil || typ != wire.MsgExecResult {
		t.Fatalf("at-cap frame: got %s err %v, want exec_result", wire.TypeName(typ), err)
	}

	// One byte over: typed error, session stays up.
	if err := wire.WriteFrame(nc, wire.MsgExec, make([]byte, cap+1), cap+1); err != nil {
		t.Fatal(err)
	}
	typ, p, err := wire.ReadFrame(nc, cap)
	if err != nil || typ != wire.MsgError {
		t.Fatalf("over-cap frame: got %s err %v, want error", wire.TypeName(typ), err)
	}
	var er wire.ErrorResponse
	if err := wire.Unmarshal(p, &er); err != nil || er.Code != wire.CodeFrameTooLarge {
		t.Fatalf("code = %q err %v, want frame_too_large", er.Code, err)
	}
	if err := wire.WriteFrame(nc, wire.MsgPing, nil, cap); err != nil {
		t.Fatal(err)
	}
	if typ, _, err = wire.ReadFrame(nc, cap); err != nil || typ != wire.MsgPong {
		t.Fatalf("ping after over-cap frame: got %s err %v", wire.TypeName(typ), err)
	}

	// The same boundary through the client: an oversized batch gets the
	// typed RemoteError and the connection remains usable for a smaller
	// retry — the documented split-and-resend recovery.
	c := dial(t, addr)
	big := []string{`insert into t values ('` + strings.Repeat("y", 2*cap) + `')`}
	_, err = c.ExecBatch(big)
	if !client.IsRemote(err, client.CodeFrameTooLarge) {
		t.Fatalf("oversized batch: err = %v, want remote frame_too_large", err)
	}
	if _, err := c.ExecBatch([]string{`insert into t values ('small')`}); err != nil {
		t.Fatalf("small batch after oversized one: %v", err)
	}
}
